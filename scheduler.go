package gridcma

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gridcma/internal/evalpool"
	"gridcma/internal/runner"
	"gridcma/internal/schedule"
)

// Scheduler is the public face of every batch scheduling algorithm in the
// library. Run executes one search on in; it stops when the configured
// budget is exhausted or ctx is cancelled, whichever comes first, and a
// cancelled run still returns the best schedule found so far alongside
// ctx's error. Implementations must be safe for concurrent Run calls —
// the batch executor and the portfolio racer share one Scheduler value
// across goroutines.
type Scheduler interface {
	// Name identifies the algorithm in results and reports.
	Name() string
	// Run searches in within the options' budget. With no WithBudget
	// option and no context deadline, Run fails with ErrUnbounded rather
	// than looping forever.
	Run(ctx context.Context, in *Instance, opts ...RunOption) (Result, error)
}

// ErrUnbounded is returned by Run when neither a budget option nor a
// context deadline bounds the search.
var ErrUnbounded = errors.New("gridcma: unbounded run: pass WithBudget/WithMaxTime/WithMaxIterations or a context deadline")

// runSettings is the per-call state the RunOption set edits.
type runSettings struct {
	budget     Budget
	seed       uint64
	observer   Observer
	lambda     float64
	lambdaSet  bool
	workers    int
	workersSet bool
}

func newRunSettings() runSettings { return runSettings{seed: 1} }

// RunOption configures one Run call. Options passed to New become the
// scheduler's defaults; options passed to Run override them call by call.
type RunOption func(*runSettings)

// WithBudget bounds the run with an explicit Budget.
func WithBudget(b Budget) RunOption { return func(s *runSettings) { s.budget = b } }

// WithMaxTime bounds the run by wall-clock time (the paper's protocol
// uses 90s).
func WithMaxTime(d time.Duration) RunOption {
	return func(s *runSettings) { s.budget.MaxTime = d }
}

// WithMaxIterations bounds the run by engine iterations — the
// deterministic budget tests and reproducible comparisons use.
func WithMaxIterations(n int) RunOption {
	return func(s *runSettings) { s.budget.MaxIterations = n }
}

// WithSeed sets the deterministic RNG seed (default 1). Equal seeds and
// equal iteration budgets reproduce a run exactly.
func WithSeed(seed uint64) RunOption { return func(s *runSettings) { s.seed = seed } }

// WithObserver streams progress samples from the running search.
func WithObserver(obs Observer) RunOption { return func(s *runSettings) { s.observer = obs } }

// WithLambda overrides the makespan weight of the scalarised objective
// fitness = λ·makespan + (1−λ)·mean_flowtime (default DefaultLambda,
// 0.75).
func WithLambda(lambda float64) RunOption {
	return func(s *runSettings) { s.lambda, s.lambdaSet = lambda, true }
}

// WithWorkers sets the number of goroutines an engine may use to evaluate
// offspring. For the cellular schedulers any n >= 1 selects the
// partitioned parallel engine, whose results depend only on the seed —
// never on n — so a run is reproducible across machines with different
// core counts; n = 0 restores the engine's configured default. Engines
// without a parallel evaluation path ignore the option.
func WithWorkers(n int) RunOption {
	return func(s *runSettings) {
		if n == 0 {
			// Restore the engine's configured default, undoing any earlier
			// WithWorkers in the merged option list.
			s.workers, s.workersSet = 0, false
			return
		}
		s.workers, s.workersSet = n, true
	}
}

// engineRunner is the internal positional contract every engine
// implements; context rides inside the Budget.
type engineRunner = runner.Scheduler

// buildParams carries the construction-affecting Run options to an engine
// builder: the λ override and the worker-count override.
type buildParams struct {
	lambdaSet  bool
	lambda     float64
	workersSet bool
	workers    int
}

// engineScheduler adapts an internal engine to the public Scheduler
// interface. build constructs the engine for the given option overrides,
// so WithLambda and WithWorkers rewire the engine without the caller
// touching engine configs. (Construction-time defaults are layered on by
// the registry's withDefaults wrapper, not here.)
type engineScheduler struct {
	name  string
	build func(buildParams) (engineRunner, error)
}

// newEngineScheduler validates the default construction eagerly so
// configuration errors surface at New time, not at first Run.
func newEngineScheduler(name string, build func(buildParams) (engineRunner, error)) (Scheduler, error) {
	if _, err := build(buildParams{}); err != nil {
		return nil, err
	}
	return &engineScheduler{name: name, build: build}, nil
}

func (s *engineScheduler) Name() string { return s.name }

func (s *engineScheduler) Run(ctx context.Context, in *Instance, opts ...RunOption) (Result, error) {
	return s.run(ctx, in, nil, opts...)
}

// runPooled implements the package's pooledRunner extension (batch.go):
// Run with a caller-supplied scratch pool, handed through to engines that
// can exploit it. The pool is advisory end to end — engines without a
// pooled entry point simply run without it.
func (s *engineScheduler) runPooled(ctx context.Context, in *Instance, pool *evalpool.Pool, opts ...RunOption) (Result, error) {
	return s.run(ctx, in, pool, opts...)
}

func (s *engineScheduler) run(ctx context.Context, in *Instance, pool *evalpool.Pool, opts ...RunOption) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if in == nil {
		return Result{}, fmt.Errorf("gridcma: %s: nil instance", s.name)
	}
	st := newRunSettings()
	for _, o := range opts {
		o(&st)
	}
	if st.lambdaSet && (st.lambda < 0 || st.lambda > 1) {
		return Result{}, fmt.Errorf("gridcma: %s: lambda %v outside [0,1]", s.name, st.lambda)
	}
	if st.workersSet && st.workers < 0 {
		return Result{}, fmt.Errorf("gridcma: %s: negative workers %d", s.name, st.workers)
	}
	b := st.budget
	if b.MaxTime < 0 || b.MaxIterations < 0 {
		return Result{}, fmt.Errorf("gridcma: %s: negative budget", s.name)
	}
	// A budget passed via WithBudget may carry its own context
	// (Budget.WithContext); honour it alongside the Run context rather
	// than overwriting it.
	bctx := b.Context()
	if bctx != context.Background() && bctx != ctx {
		if ctx == context.Background() {
			ctx = bctx
		} else {
			merged, cancel := context.WithCancel(ctx)
			defer cancel()
			stop := context.AfterFunc(bctx, cancel)
			defer stop()
			ctx = merged
		}
	}
	if b.MaxTime == 0 && b.MaxIterations == 0 {
		// The engines insist on an explicit bound; mirror a deadline
		// from either context into the time budget (cancellation still
		// fires first if the caller's clock disagrees).
		dl, ok := ctx.Deadline()
		if !ok {
			dl, ok = bctx.Deadline()
		}
		if !ok {
			return Result{}, ErrUnbounded
		}
		b.MaxTime = time.Until(dl)
		if b.MaxTime <= 0 {
			return Result{}, context.DeadlineExceeded
		}
	}
	eng, err := s.build(buildParams{
		lambdaSet: st.lambdaSet, lambda: st.lambda,
		workersSet: st.workersSet, workers: st.workers,
	})
	if err != nil {
		return Result{}, err
	}
	if pool != nil {
		if ps, ok := eng.(runner.PooledScheduler); ok {
			res := ps.RunPooled(in, b.WithContext(ctx), st.seed, st.observer, pool)
			return res, ctx.Err()
		}
	}
	res := eng.Run(in, b.WithContext(ctx), st.seed, st.observer)
	return res, ctx.Err()
}

// objectiveFor resolves a λ override against a config's default.
func objectiveFor(lambdaSet bool, lambda float64, def schedule.Objective) schedule.Objective {
	if lambdaSet {
		return schedule.Objective{Lambda: lambda}
	}
	return def
}
