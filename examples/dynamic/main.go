// Dynamic: the paper's deployment story. A real grid never sees a static
// batch: jobs arrive continuously and machines come and go. The paper
// proposes running the batch cMA periodically over the jobs that arrived
// since its last activation. This example simulates exactly that with the
// discrete-event grid simulator and contrasts the cMA policy against
// Min-Min and opportunistic load balancing under machine churn.
package main

import (
	"fmt"
	"log"

	"gridcma"
)

func main() {
	cfg := gridcma.DefaultSimConfig()
	cfg.Horizon = 2000
	cfg.ArrivalRate = 1.5 // a loaded grid
	cfg.JoinRate, cfg.LeaveRate = 0.005, 0.005

	// The cMA as a dynamic policy: a short iteration budget per
	// activation keeps each planning step "very short" (paper §1).
	cmaCfg := gridcma.DefaultCMAConfig()
	ls, err := gridcma.LocalSearch("LMCTS-sampled")
	if err != nil {
		log.Fatal(err)
	}
	cmaCfg.LocalSearch = ls
	sched, err := gridcma.NewCMA(cmaCfg)
	if err != nil {
		log.Fatal(err)
	}
	// BatchPolicy takes any Scheduler — dynamic-grid policies and batch
	// runs share the one interface.
	cmaPolicy := gridcma.BatchPolicy("cMA", sched, gridcma.Budget{MaxIterations: 10})

	policies := []gridcma.SimPolicy{cmaPolicy}
	for _, h := range []string{"minmin", "olb", "ljfr-sjfr"} {
		p, err := gridcma.HeuristicPolicy(h)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, p)
	}

	fmt.Printf("dynamic grid: horizon %.0f, arrival rate %.1f, %d initial machines, churn %.3f\n\n",
		cfg.Horizon, cfg.ArrivalRate, cfg.InitialMachines, cfg.LeaveRate)
	fmt.Printf("%-10s %10s %9s %11s %9s %7s\n",
		"policy", "completed", "restarts", "response", "wait", "util")
	for _, p := range policies {
		m, err := gridcma.Simulate(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %5d/%4d %9d %11.2f %9.2f %6.1f%%\n",
			p.Name(), m.JobsCompleted, m.JobsArrived, m.JobsRestarted,
			m.MeanResponse, m.MeanWait, 100*m.Utilization)
	}
	fmt.Println("\nlower response/wait is better; the cMA buys QoS with planning time")
}
