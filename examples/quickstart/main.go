// Quickstart: schedule one Braun benchmark instance with the paper's tuned
// cellular memetic algorithm and compare it against the LJFR-SJFR seed
// heuristic — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"gridcma"
)

func main() {
	// The 12 benchmark instances regenerate deterministically by name.
	in, err := gridcma.BenchmarkInstance("u_c_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d jobs × %d machines\n\n", in.Name, in.Jobs, in.Machs)

	// Baseline: the constructive heuristic the paper seeds with.
	ljfr, err := gridcma.Heuristic("ljfr-sjfr")
	if err != nil {
		log.Fatal(err)
	}
	hm, hf, hfit := gridcma.Evaluate(in, ljfr(in))
	fmt.Printf("LJFR-SJFR  makespan %12.1f  flowtime %16.1f  fitness %14.1f\n", hm, hf, hfit)

	// The paper's tuned cMA (Table 1), two seconds of wall clock.
	sched, err := gridcma.NewCMA(gridcma.DefaultCMAConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := sched.Run(in, gridcma.Budget{MaxTime: 2 * time.Second}, 1, nil)
	fmt.Printf("cMA (2s)   makespan %12.1f  flowtime %16.1f  fitness %14.1f\n",
		res.Makespan, res.Flowtime, res.Fitness)

	fmt.Printf("\ncMA improved makespan by %.1f%% and flowtime by %.1f%% over LJFR-SJFR\n",
		100*(hm-res.Makespan)/hm, 100*(hf-res.Flowtime)/hf)
	fmt.Printf("(%d iterations, %d fitness evaluations)\n", res.Iterations, res.Evals)
}
