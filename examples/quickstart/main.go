// Quickstart: schedule one Braun benchmark instance with the paper's tuned
// cellular memetic algorithm and compare it against the LJFR-SJFR seed
// heuristic — the smallest end-to-end use of the library.
//
// Algorithms are built by name from the registry (gridcma.Algorithms lists
// the portfolio) and run through the context-aware Scheduler interface:
// cancel the context or let the budget expire, whichever comes first.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gridcma"
)

func main() {
	// The 12 benchmark instances regenerate deterministically by name.
	in, err := gridcma.BenchmarkInstance("u_c_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d jobs × %d machines\n\n", in.Name, in.Jobs, in.Machs)

	// Baseline: the constructive heuristic the paper seeds with.
	ljfr, err := gridcma.Heuristic("ljfr-sjfr")
	if err != nil {
		log.Fatal(err)
	}
	hm, hf, hfit := gridcma.Evaluate(in, ljfr(in))
	fmt.Printf("LJFR-SJFR  makespan %12.1f  flowtime %16.1f  fitness %14.1f\n", hm, hf, hfit)

	// The paper's tuned cMA (Table 1), by registry name. A context
	// deadline bounds the run; Ctrl-C-style cancellation would stop it
	// just as promptly.
	sched, err := gridcma.New("cma")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := sched.Run(ctx, in,
		gridcma.WithMaxTime(2*time.Second),
		gridcma.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cMA (2s)   makespan %12.1f  flowtime %16.1f  fitness %14.1f\n",
		res.Makespan, res.Flowtime, res.Fitness)

	fmt.Printf("\ncMA improved makespan by %.1f%% and flowtime by %.1f%% over LJFR-SJFR\n",
		100*(hm-res.Makespan)/hm, 100*(hf-res.Flowtime)/hf)
	fmt.Printf("(%d iterations, %d fitness evaluations)\n", res.Iterations, res.Evals)
	fmt.Printf("\nregistered algorithms: %v\n", gridcma.Algorithms())
}
