// Portfolio: race several schedulers on the same instance and keep the
// first (and best) answer. In a real grid deployment the scheduler has a
// hard planning deadline; racing a portfolio — the cMA against cheaper
// baselines — hedges against any single algorithm stalling, and the racer
// cancels the losers instead of letting them waste cores after the race
// is decided.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gridcma"
)

func main() {
	in, err := gridcma.BenchmarkInstance("u_i_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d jobs × %d machines\n\n", in.Name, in.Jobs, in.Machs)

	names := []string{"cma", "struggle-ga", "sa", "tabu"}
	var algs []gridcma.Scheduler
	for _, n := range names {
		a, err := gridcma.New(n)
		if err != nil {
			log.Fatal(err)
		}
		algs = append(algs, a)
	}

	// A hard planning deadline bounds the whole race; each contender also
	// has its own per-run budget. The first to finish ends the race.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := gridcma.Race(ctx, in, algs,
		gridcma.WithMaxTime(2*time.Second),
		gridcma.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-15s %14s %16s %12s %10s\n", "contender", "makespan", "fitness", "iterations", "elapsed")
	for i, r := range out.Results {
		marker := " "
		if i == out.Winner {
			marker = "*"
		}
		fmt.Printf("%s%-14s %14.1f %16.1f %12d %10s\n",
			marker, names[i], r.Makespan, r.Fitness, r.Iterations, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\nwinner: %s (fitness %.1f) — losers were cancelled at their next budget check\n",
		out.Best.Algorithm, out.Best.Fitness)
}
