// Compare: run every scheduler in the library — eight constructive
// heuristics plus the full metaheuristic registry (three genetic
// algorithms, GSA, simulated annealing, tabu search, the island model and
// the cellular memetic algorithm) — on one benchmark instance and rank
// them. This is the "which scheduler should I use" tour of the library.
//
// The metaheuristics all go through one RunBatch call: the batch executor
// fans them out over a worker pool with deterministic per-task seeds.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"gridcma"
)

type row struct {
	name     string
	makespan float64
	flowtime float64
	fitness  float64
	elapsed  time.Duration
}

func main() {
	in, err := gridcma.BenchmarkInstance("u_s_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d jobs × %d machines\n\n", in.Name, in.Jobs, in.Machs)
	var rows []row

	// Constructive heuristics (deterministic, effectively instant).
	for _, name := range gridcma.HeuristicNames() {
		h, err := gridcma.Heuristic(name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s := h(in)
		ms, ft, fit := gridcma.Evaluate(in, s)
		rows = append(rows, row{name, ms, ft, fit, time.Since(start)})
	}

	// Every registered metaheuristic, one second of wall clock each,
	// fanned out by the batch executor.
	var algs []gridcma.Scheduler
	for _, name := range gridcma.Algorithms() {
		a, err := gridcma.New(name)
		if err != nil {
			log.Fatal(err)
		}
		algs = append(algs, a)
	}
	// Workers: 1 — these are wall-clock budgets, so running contenders
	// concurrently would split the CPU between them and distort the very
	// ranking this example exists to show.
	batch, err := gridcma.RunBatch(context.Background(), gridcma.BatchSpec{
		Instances:  []*gridcma.Instance{in},
		Algorithms: algs,
		Budget:     gridcma.Budget{MaxTime: time.Second},
		Repeats:    1,
		BaseSeed:   1,
		Workers:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range batch {
		rows = append(rows, row{b.Algorithm, b.Result.Makespan, b.Result.Flowtime,
			b.Result.Fitness, b.Result.Elapsed})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].fitness < rows[j].fitness })
	fmt.Printf("%-15s %14s %18s %16s %10s\n", "algorithm", "makespan", "flowtime", "fitness", "elapsed")
	for _, r := range rows {
		fmt.Printf("%-15s %14.1f %18.1f %16.1f %10s\n",
			r.name, r.makespan, r.flowtime, r.fitness, r.elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\nbest by fitness: %s\n", rows[0].name)
}
