// Compare: run every scheduler in the library — eight constructive
// heuristics, three genetic algorithms, simulated annealing, tabu search
// and the cellular memetic algorithm — on one benchmark instance and rank
// them. This is the "which scheduler should I use" tour of the library.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"gridcma"
)

type row struct {
	name     string
	makespan float64
	flowtime float64
	fitness  float64
	elapsed  time.Duration
}

func main() {
	in, err := gridcma.BenchmarkInstance("u_s_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: %d jobs × %d machines\n\n", in.Name, in.Jobs, in.Machs)
	budget := gridcma.Budget{MaxTime: time.Second}
	var rows []row

	// Constructive heuristics (deterministic, effectively instant).
	for _, name := range gridcma.HeuristicNames() {
		h, err := gridcma.Heuristic(name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s := h(in)
		ms, ft, fit := gridcma.Evaluate(in, s)
		rows = append(rows, row{name, ms, ft, fit, time.Since(start)})
	}

	// Metaheuristics, one second of wall clock each.
	type alg interface {
		Name() string
		Run(*gridcma.Instance, gridcma.Budget, uint64, gridcma.Observer) gridcma.Result
	}
	var metas []alg
	cmaSched, err := gridcma.NewCMA(gridcma.DefaultCMAConfig())
	if err != nil {
		log.Fatal(err)
	}
	metas = append(metas, cmaSched)
	for _, v := range []gridcma.GAVariant{gridcma.BraunGA, gridcma.SteadyStateGA, gridcma.StruggleGA, gridcma.GSAGA} {
		g, err := gridcma.NewGA(v)
		if err != nil {
			log.Fatal(err)
		}
		metas = append(metas, g)
	}
	if s, err := gridcma.NewSA(); err == nil {
		metas = append(metas, s)
	}
	if t, err := gridcma.NewTabu(); err == nil {
		metas = append(metas, t)
	}
	for _, m := range metas {
		res := m.Run(in, budget, 1, nil)
		rows = append(rows, row{m.Name(), res.Makespan, res.Flowtime, res.Fitness, res.Elapsed})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].fitness < rows[j].fitness })
	fmt.Printf("%-15s %14s %18s %16s %10s\n", "algorithm", "makespan", "flowtime", "fitness", "elapsed")
	for _, r := range rows {
		fmt.Printf("%-15s %14.1f %18.1f %16.1f %10s\n",
			r.name, r.makespan, r.flowtime, r.fitness, r.elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\nbest by fitness: %s\n", rows[0].name)
}
