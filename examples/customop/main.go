// Customop: extend the cMA with a user-defined memetic component. The
// cellular engine accepts any LocalSearchMethod, so this example plugs in
// a custom "drain the critical machine" local search and compares it with
// the paper's tuned LMCTS on equal budgets — the intended extension point
// for schedulers with domain-specific moves.
package main

import (
	"context"
	"fmt"
	"log"

	"gridcma"
)

// drainCritical is a custom local search: each iteration it takes the
// longest job of the current makespan machine and moves it to the machine
// that minimises the resulting completion time, keeping the move only if
// the scalarised fitness improves.
type drainCritical struct{}

func (drainCritical) Name() string { return "DrainCritical" }

func (drainCritical) Improve(st *gridcma.State, o gridcma.Objective, iters int, r *gridcma.RNG) {
	in := st.Instance()
	for k := 0; k < iters; k++ {
		crit := st.MakespanMachine()
		jobs := st.JobsOn(crit)
		if len(jobs) == 0 {
			return
		}
		j := int(jobs[len(jobs)-1]) // SPT order: last = longest on machine
		bestTo, bestC := crit, st.Completion(crit)
		for m := 0; m < in.Machs; m++ {
			if m == crit {
				continue
			}
			if c := st.Completion(m) + in.At(j, m); c < bestC {
				bestTo, bestC = m, c
			}
		}
		if bestTo == crit {
			return // no machine can absorb the job profitably
		}
		before := o.Of(st)
		st.Move(j, bestTo)
		if o.Of(st) >= before {
			st.Move(j, crit)
			return
		}
	}
}

func main() {
	in, err := gridcma.BenchmarkInstance("u_i_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	for _, tc := range []struct {
		label string
		ls    gridcma.LocalSearchMethod
	}{
		{"tuned LMCTS (paper)", mustLS("LMCTS")},
		{"custom DrainCritical", drainCritical{}},
	} {
		cfg := gridcma.DefaultCMAConfig()
		cfg.LocalSearch = tc.ls
		sched, err := gridcma.NewCMA(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sched.Run(ctx, in, gridcma.WithMaxIterations(40), gridcma.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s makespan %12.1f  flowtime %16.1f  fitness %14.1f (%d evals)\n",
			tc.label, res.Makespan, res.Flowtime, res.Fitness, res.Evals)
	}
	fmt.Println("\nany type implementing LocalSearchMethod plugs into the cellular engine")
}

func mustLS(name string) gridcma.LocalSearchMethod {
	ls, err := gridcma.LocalSearch(name)
	if err != nil {
		panic(err)
	}
	return ls
}
