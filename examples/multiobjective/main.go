// Multiobjective: the paper's future-work direction, implemented. Instead
// of collapsing makespan and flowtime into one weighted fitness, the
// cellular multi-objective memetic algorithm (MOCellMA) returns a whole
// Pareto front of non-dominated schedules, and a λ-sweep of the original
// scalarised cMA provides the comparison front. The hypervolume and
// C-metric quantify which approach covers the trade-off space better.
package main

import (
	"context"
	"fmt"
	"log"

	"gridcma"
)

func main() {
	in, err := gridcma.BenchmarkInstance("u_i_hihi.0")
	if err != nil {
		log.Fatal(err)
	}
	// Budgets carry the cancellation context into every engine loop; a
	// Ctrl-C handler wired to this context would stop the search cleanly.
	ctx := context.Background()
	budget := gridcma.Budget{MaxIterations: 30}.WithContext(ctx)

	// Dominance-based cellular search: one run, a whole front.
	mo, err := gridcma.NewMOCellMA(gridcma.DefaultMOCellConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := mo.Run(in, budget, 1)
	fmt.Printf("MOCellMA: %d non-dominated schedules after %d iterations (%d evals)\n\n",
		res.Front.Len(), res.Iterations, res.Evals)
	fmt.Printf("%14s %18s\n", "makespan", "flowtime")
	for _, s := range res.Front.Solutions() {
		fmt.Printf("%14.1f %18.1f\n", s.Obj.Makespan, s.Obj.Flowtime)
	}

	// Comparison: sweep the scalarised cMA over five λ values.
	sweep, err := gridcma.LambdaSweep(in, gridcma.DefaultCMAConfig(),
		[]float64{0, 0.25, 0.5, 0.75, 1}, gridcma.Budget{MaxIterations: 6}.WithContext(ctx), 1, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nλ-sweep front: %d schedules (5 full cMA runs)\n", sweep.Len())

	ref := gridcma.ParetoVec{Makespan: 1e9, Flowtime: 1e12}
	fmt.Printf("\nhypervolume (higher is better):\n  MOCellMA %.4g\n  λ-sweep  %.4g\n",
		res.Front.Hypervolume(ref), sweep.Hypervolume(ref))
}
