package gridcma

import (
	"context"
	"testing"

	"gridcma/internal/evalpool"
	"gridcma/internal/run"
	"gridcma/internal/runner"
)

// Compile-time wiring of the pool-forwarding chain: the batch executor
// sees every public algorithm as a PooledScheduler through the shim, and
// both public wrapper layers speak the unexported pooledRunner extension.
var (
	_ runner.PooledScheduler = publicShim{}
	_ pooledRunner           = (*engineScheduler)(nil)
	_ pooledRunner           = (*withDefaults)(nil)
)

// TestPublicPoolForwarding runs one registry algorithm through the shim
// twice — plain and with a shared per-instance pool, including through
// the withDefaults wrapper — and requires identical schedules: pool
// sharing is a pure allocation optimisation, never a behaviour change.
// It also checks the pool actually sees traffic (the engine's scratches
// are returned to it) and that a nil pool degrades to a plain Run.
func TestPublicPoolForwarding(t *testing.T) {
	in := GenerateInstance(InstanceClass{}, 48, 6, 11)
	budget := run.Budget{MaxIterations: 3}

	// Through withDefaults: New with default options wraps the engine
	// scheduler, and runPooled must still reach the engine.
	s, err := New("cma", WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var errs errCollector
	shim := publicShim{s: s, errs: &errs}
	plain := shim.Run(in, budget, 5, nil)

	pool := evalpool.New(in)
	pooled := shim.RunPooled(in, budget, 5, nil, pool)
	if err := errs.first(); err != nil {
		t.Fatal(err)
	}
	if !pooled.Best.Equal(plain.Best) || pooled.Fitness != plain.Fitness {
		t.Fatal("pooled run diverged from plain run")
	}
	sc := pool.Get()
	if sc == nil || sc.St.Instance() != in {
		t.Fatal("engine did not return its scratches to the shared pool")
	}
	pool.Put(sc)

	if res := shim.RunPooled(in, budget, 5, nil, nil); !res.Best.Equal(plain.Best) {
		t.Fatal("nil pool diverged from plain run")
	}
}

// TestRunBatchSharesPools drives the public RunBatch over two pooled
// algorithms and two instances and checks the results stay deterministic
// and identical across worker counts — the pool sharing behind it must be
// invisible in every output.
func TestRunBatchSharesPools(t *testing.T) {
	a := GenerateInstance(InstanceClass{}, 48, 6, 21)
	a.Name = "a"
	b := GenerateInstance(InstanceClass{}, 64, 4, 22)
	b.Name = "b"
	cmaS, err := New("cma")
	if err != nil {
		t.Fatal(err)
	}
	islandS, err := New("island")
	if err != nil {
		t.Fatal(err)
	}
	spec := BatchSpec{
		Instances:  []*Instance{a, b},
		Algorithms: []Scheduler{cmaS, islandS},
		Budget:     Budget{MaxIterations: 2},
		Repeats:    2,
		BaseSeed:   9,
	}
	var ref []BatchResult
	for _, workers := range []int{1, 4} {
		spec.Workers = workers
		got, err := RunBatch(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if !got[i].Result.Best.Equal(ref[i].Result.Best) {
				t.Fatalf("workers=%d: result %d diverged", workers, i)
			}
		}
	}
}
