package gridcma_test

import (
	"context"
	"testing"

	"gridcma"
	"gridcma/internal/schedule"
)

// TestDirtySetDrainedAfterRun is the leak check of the dirty-machine
// delta engine at the public surface: with the schedule package's dirty
// audit gauge armed, every registered algorithm's Run must return with
// zero pending dirty marks across every State it created — local search
// methods and mutators drain after their commits, SA/tabu drain before
// returning, and wholesale re-evaluations (SetSchedule/CopyFrom) reset
// the log. A positive residue means some engine path commits moves and
// hands the state onward (or drops it) without acknowledging the events,
// which would leave pooled states carrying stale invalidation marks into
// their next run.
func TestDirtySetDrainedAfterRun(t *testing.T) {
	schedule.DirtyAuditStart()
	defer schedule.DirtyAuditStop()
	in := smallInstance()
	for _, name := range gridcma.Algorithms() {
		s, err := gridcma.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background(), in,
			gridcma.WithMaxIterations(2), gridcma.WithSeed(11)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n := schedule.DirtyAuditPending(); n != 0 {
			t.Errorf("%s: %d dirty marks pending after Run", name, n)
			schedule.DirtyAuditStart() // rezero so later algorithms report their own residue
		}
	}
}
