package gridcma_test

import (
	"context"
	"testing"

	"gridcma"
)

// WithWorkers must never change the outcome of a parallel run — only its
// wall-clock. This is the public-API face of the engine-level guarantee.
func TestWithWorkersDeterministicResults(t *testing.T) {
	in := gridcma.GenerateInstance(gridcma.InstanceClass{}, 96, 8, 7)
	var ref gridcma.Result
	for i, workers := range []int{1, 2, 8} {
		s, err := gridcma.New("cma-par")
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background(), in,
			gridcma.WithMaxIterations(5), gridcma.WithSeed(3), gridcma.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !ref.Best.Equal(res.Best) || ref.Fitness != res.Fitness {
			t.Fatalf("WithWorkers(%d) changed the result", workers)
		}
	}
}

// WithWorkers on the sequential cma switches it to the parallel engine
// for that call; the result must match cma-par at the same seed.
func TestWithWorkersSwitchesEngine(t *testing.T) {
	in := gridcma.GenerateInstance(gridcma.InstanceClass{}, 96, 8, 8)
	seq, err := gridcma.New("cma")
	if err != nil {
		t.Fatal(err)
	}
	par, err := gridcma.New("cma-par")
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.Run(context.Background(), in,
		gridcma.WithMaxIterations(4), gridcma.WithSeed(5), gridcma.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(context.Background(), in,
		gridcma.WithMaxIterations(4), gridcma.WithSeed(5), gridcma.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Equal(b.Best) || a.Fitness != b.Fitness {
		t.Fatal("cma+WithWorkers and cma-par diverged at the same seed")
	}
	if a.Algorithm != "cMA-par" {
		t.Fatalf("engine name %q, want cMA-par", a.Algorithm)
	}
}

// WithWorkers(0) must restore the scheduler's configured default — for
// cma-par that is the parallel engine, so the result must match a plain
// cma-par run, not the sequential engine.
func TestWithWorkersZeroRestoresDefault(t *testing.T) {
	in := gridcma.GenerateInstance(gridcma.InstanceClass{}, 96, 8, 9)
	par, err := gridcma.New("cma-par")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := par.Run(context.Background(), in,
		gridcma.WithMaxIterations(4), gridcma.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	reset, err := par.Run(context.Background(), in,
		gridcma.WithMaxIterations(4), gridcma.WithSeed(5), gridcma.WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if reset.Algorithm != plain.Algorithm || !reset.Best.Equal(plain.Best) {
		t.Fatalf("WithWorkers(0) did not restore the default engine: %q vs %q",
			reset.Algorithm, plain.Algorithm)
	}
}

// The probe path (speculative FitnessAfterMove scoring inside SLM's
// steepest descent) must preserve the cross-worker determinism contract
// end to end: a custom cMA whose memetic step is pure probe evaluation
// yields byte-identical schedules for every worker count.
func TestWithWorkersDeterministicProbePath(t *testing.T) {
	in := gridcma.GenerateInstance(gridcma.InstanceClass{}, 96, 8, 11)
	cfg := gridcma.DefaultCMAConfig()
	ls, err := gridcma.LocalSearch("SLM")
	if err != nil {
		t.Fatal(err)
	}
	cfg.LocalSearch = ls
	cfg.Workers = 1
	var ref gridcma.Result
	for i, workers := range []int{1, 2, 8} {
		s, err := gridcma.NewCMA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background(), in,
			gridcma.WithMaxIterations(5), gridcma.WithSeed(9), gridcma.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !ref.Best.Equal(res.Best) || ref.Fitness != res.Fitness || ref.Makespan != res.Makespan {
			t.Fatalf("SLM probe path: WithWorkers(%d) changed the result", workers)
		}
	}
}

func TestWithWorkersNegativeRejected(t *testing.T) {
	in := gridcma.GenerateInstance(gridcma.InstanceClass{}, 32, 4, 1)
	s, err := gridcma.New("cma")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), in,
		gridcma.WithMaxIterations(1), gridcma.WithWorkers(-3)); err == nil {
		t.Fatal("negative WithWorkers accepted")
	}
}
