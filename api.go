package gridcma

import (
	"fmt"
	"io"

	"gridcma/internal/cell"
	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/experiments"
	"gridcma/internal/ga"
	"gridcma/internal/gridsim"
	"gridcma/internal/heuristics"
	"gridcma/internal/island"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
	"gridcma/internal/pareto"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/sa"
	"gridcma/internal/schedule"
	"gridcma/internal/tabu"
)

// Core problem types.
type (
	// Instance is an ETC scheduling problem: an expected-time matrix plus
	// machine ready times.
	Instance = etc.Instance
	// InstanceClass identifies one of the 12 Braun benchmark classes.
	InstanceClass = etc.Class
	// Schedule maps each job to a machine.
	Schedule = schedule.Schedule
	// State is the incremental evaluator of a schedule.
	State = schedule.State
	// Objective is the scalarised bi-objective fitness
	// λ·makespan + (1−λ)·mean_flowtime.
	Objective = schedule.Objective
)

// Run vocabulary shared by every algorithm.
type (
	// Budget bounds a run by wall-clock time and/or iterations.
	Budget = run.Budget
	// Result is the outcome of one run.
	Result = run.Result
	// Progress is one observation of a running search.
	Progress = run.Progress
	// Observer receives progress samples.
	Observer = run.Observer
)

// Algorithm configuration types.
type (
	// CMAConfig is the full configuration of the cellular memetic
	// algorithm (the paper's Table 1 lives in DefaultCMAConfig).
	CMAConfig = cma.Config
	// GAConfig configures the baseline genetic algorithms.
	GAConfig = ga.Config
	// GAVariant selects Braun / steady-state / Struggle GA.
	GAVariant = ga.Variant
	// LocalSearchMethod is a bounded improvement procedure (LM, SLM,
	// LMCTS, ...). Implement it to plug a custom memetic component into
	// the cMA (see examples/customop).
	LocalSearchMethod = localsearch.Method
	// Selector, Crossover and Mutator are the variation operators.
	Selector  = operators.Selector
	Crossover = operators.Crossover
	Mutator   = operators.Mutator
	// RNG is the deterministic random source used across the library.
	RNG = rng.Source
)

// GA variants.
const (
	BraunGA       = ga.Braun
	SteadyStateGA = ga.SteadyState
	StruggleGA    = ga.Struggle
	// GSAGA is the genetic simulated annealing hybrid.
	GSAGA = ga.GSA
)

// Neighborhood patterns and sweep orders of the cellular grid.
const (
	L5        = cell.L5
	L9        = cell.L9
	C9        = cell.C9
	C13       = cell.C13
	Panmictic = cell.Panmictic

	FLS = cell.FLS
	FRS = cell.FRS
	NRS = cell.NRS
)

// DefaultLambda is the tuned makespan weight (0.75).
const DefaultLambda = schedule.DefaultLambda

// BenchmarkInstance regenerates one of the 12 Braun benchmark instances by
// name (e.g. "u_c_hihi.0"); the same name always yields the same instance.
func BenchmarkInstance(name string) (*Instance, error) {
	return etc.GenerateByName(name)
}

// BenchmarkInstanceNames lists the 12 instances of the paper's tables.
func BenchmarkInstanceNames() []string {
	return append([]string(nil), experiments.InstanceNames...)
}

// GenerateInstance builds a fresh instance of a class with explicit
// dimensions and seed (zero dimensions default to the benchmark's 512×16).
func GenerateInstance(class InstanceClass, jobs, machs int, seed uint64) *Instance {
	return etc.Generate(class, 0, etc.GenerateOptions{Jobs: jobs, Machs: machs, Seed: seed})
}

// ParseInstanceClass parses a canonical instance name ("u_c_hihi.0")
// into its benchmark class and trial index.
func ParseInstanceClass(name string) (InstanceClass, int, error) {
	return etc.ParseClass(name)
}

// ReadInstance parses an instance in the benchmark text format.
func ReadInstance(r io.Reader) (*Instance, error) { return etc.Read(r) }

// WriteInstance serialises an instance in the benchmark text format.
func WriteInstance(w io.Writer, in *Instance) error { return etc.Write(w, in) }

// DefaultCMAConfig returns the paper's tuned configuration (Table 1).
func DefaultCMAConfig() CMAConfig { return cma.DefaultConfig() }

// NewCMA builds the cellular memetic scheduler from an explicit
// configuration — the path for customised cMAs (operators, grids, local
// search). For the stock paper-tuned algorithms use New("cma") instead.
// WithWorkers at Run time overrides cfg.Workers, switching between the
// sequential and the partitioned parallel engine per call.
func NewCMA(cfg CMAConfig) (Scheduler, error) {
	return newEngineScheduler(schedulerName(cfg), func(p buildParams) (engineRunner, error) {
		c := cfg
		c.Objective = objectiveFor(p.lambdaSet, p.lambda, c.Objective)
		if p.workersSet {
			c.Workers = p.workers
		}
		return cma.New(c)
	})
}

func schedulerName(cfg CMAConfig) string {
	switch {
	case cfg.Synchronous:
		return "cma-sync"
	case cfg.Workers > 0:
		return "cma-par"
	default:
		return "cma"
	}
}

// NewGA builds one of the baseline genetic algorithms with its published
// configuration.
func NewGA(v GAVariant) (Scheduler, error) {
	return newGAScheduler(ga.NewConfig(v).Variant.String(), v)
}

// newGAScheduler is the shared GA builder: the facade names schedulers by
// the variant's display name, the registry by its kebab-case key.
func newGAScheduler(name string, v GAVariant) (Scheduler, error) {
	return newEngineScheduler(name, func(p buildParams) (engineRunner, error) {
		cfg := ga.NewConfig(v)
		cfg.Objective = objectiveFor(p.lambdaSet, p.lambda, cfg.Objective)
		return ga.New(cfg)
	})
}

// NewSA builds the simulated annealing baseline.
func NewSA() (Scheduler, error) {
	return newEngineScheduler("sa", func(p buildParams) (engineRunner, error) {
		cfg := sa.DefaultConfig()
		cfg.Objective = objectiveFor(p.lambdaSet, p.lambda, cfg.Objective)
		return sa.New(cfg)
	})
}

// NewTabu builds the tabu search baseline.
func NewTabu() (Scheduler, error) {
	return newEngineScheduler("tabu", func(p buildParams) (engineRunner, error) {
		cfg := tabu.DefaultConfig()
		cfg.Objective = objectiveFor(p.lambdaSet, p.lambda, cfg.Objective)
		return tabu.New(cfg)
	})
}

// NewSASweep builds the sweep-native annealer: each proposal step draws a
// job and scores every target machine in one batched sweep, then
// Metropolis-tests the steepest target. It walks a different (greedier)
// trajectory than NewSA, which is why it registers under its own name
// ("sa-sweep") and the classic annealer's trajectory stays frozen.
func NewSASweep() (Scheduler, error) {
	return newEngineScheduler("sa-sweep", func(p buildParams) (engineRunner, error) {
		cfg := sa.DefaultConfig()
		cfg.SweepProposals = true
		cfg.Objective = objectiveFor(p.lambdaSet, p.lambda, cfg.Objective)
		return sa.New(cfg)
	})
}

// NewTabuSweep builds the sweep-native tabu search: candidate generation
// draws whole per-job target neighborhoods through the batched sweep
// kernel instead of isolated (job, machine) pairs, at the same candidate
// budget. Trajectory-changing, hence its own registry name ("tabu-sweep").
func NewTabuSweep() (Scheduler, error) {
	return newEngineScheduler("tabu-sweep", func(p buildParams) (engineRunner, error) {
		cfg := tabu.DefaultConfig()
		cfg.SweepCandidates = true
		cfg.Objective = objectiveFor(p.lambdaSet, p.lambda, cfg.Objective)
		return tabu.New(cfg)
	})
}

// NewSampledLMCTSBatch builds a paper-tuned cMA whose memetic component
// is the batch-native sampled LMCTS (localsearch.SampledLMCTSBatch):
// partner ids drawn upfront and scanned machine-grouped through the swap
// sweep kernel. The candidate order differs from the classic sampled
// LMCTS, so the variant lives under its own registry name
// ("sampled-lmcts-batch") and the frozen engines keep their trajectories.
func NewSampledLMCTSBatch() (Scheduler, error) {
	return newEngineScheduler("sampled-lmcts-batch", func(p buildParams) (engineRunner, error) {
		cfg := cma.DefaultConfig()
		cfg.LocalSearch = localsearch.SampledLMCTSBatch{Samples: 64}
		cfg.Objective = objectiveFor(p.lambdaSet, p.lambda, cfg.Objective)
		if p.workersSet {
			cfg.Workers = p.workers
		}
		return cma.New(cfg)
	})
}

// Heuristic returns a constructive heuristic by name: "ljfr-sjfr",
// "minmin", "maxmin", "duplex", "sufferage", "mct", "met" or "olb".
func Heuristic(name string) (func(*Instance) Schedule, error) {
	return heuristics.ByName(name)
}

// HeuristicNames lists the available constructive heuristics.
func HeuristicNames() []string { return heuristics.Names() }

// LocalSearch resolves a local search method by acronym ("LM", "SLM",
// "LMCTS", "LMCTS-sampled", "VND", "none").
func LocalSearch(name string) (LocalSearchMethod, error) { return localsearch.ByName(name) }

// Evaluate computes makespan, flowtime and the default scalarised fitness
// of a schedule.
func Evaluate(in *Instance, s Schedule) (makespan, flowtime, fitness float64) {
	st := schedule.NewState(in, s)
	return st.Makespan(), st.Flowtime(), schedule.DefaultObjective.Of(st)
}

// NewState builds the incremental evaluator for s on in.
func NewState(in *Instance, s Schedule) *State { return schedule.NewState(in, s) }

// NewRNG returns a deterministic random source.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Multi-objective extension (the paper's future-work direction).
type (
	// ParetoFront is a bounded archive of non-dominated
	// (makespan, flowtime) solutions.
	ParetoFront = pareto.Front
	// ParetoVec is one point in objective space.
	ParetoVec = pareto.Vec
	// MOCellConfig configures the cellular multi-objective algorithm.
	MOCellConfig = pareto.MOConfig
	// MOCellResult is the outcome of a multi-objective run.
	MOCellResult = pareto.MOResult
)

// NewMOCellMA builds the cellular multi-objective memetic algorithm.
func NewMOCellMA(cfg MOCellConfig) (*pareto.MOCellMA, error) { return pareto.NewMOCellMA(cfg) }

// DefaultMOCellConfig returns the paper-tuned cellular structure with a
// 100-solution archive.
func DefaultMOCellConfig() MOCellConfig { return pareto.DefaultMOConfig() }

// LambdaSweep runs the scalarised cMA across a λ grid and merges the
// results into one non-dominated front.
func LambdaSweep(in *Instance, base CMAConfig, lambdas []float64, budget Budget, seed uint64, capacity int) (*ParetoFront, error) {
	return pareto.LambdaSweep(in, base, lambdas, budget, seed, capacity)
}

// Island (coarse-grained) model.
type (
	// IslandConfig configures the ring-migration island model.
	IslandConfig = island.Config
)

// DefaultIslandConfig returns 4 islands exchanging 2 migrants every 5
// iterations.
func DefaultIslandConfig() IslandConfig { return island.DefaultConfig() }

// NewIsland builds the parallel island-model scheduler. WithWorkers
// propagates to each island's cMA, so the islands themselves run the
// partitioned parallel engine.
func NewIsland(cfg IslandConfig) (Scheduler, error) {
	return newEngineScheduler("island", func(p buildParams) (engineRunner, error) {
		c := cfg
		c.Base.Objective = objectiveFor(p.lambdaSet, p.lambda, c.Base.Objective)
		if p.workersSet {
			c.Base.Workers = p.workers
		}
		return island.New(c)
	})
}

// CVBOptions parameterises the coefficient-of-variation-based instance
// generator (for custom-size grids beyond the 512×16 benchmark).
type CVBOptions = etc.CVBOptions

// GenerateCVBInstance builds an instance with the CVB (gamma) method.
func GenerateCVBInstance(name string, o CVBOptions) (*Instance, error) {
	return etc.GenerateCVB(name, o)
}

// Dynamic grid simulation.
type (
	// SimConfig parameterises the discrete-event grid simulator.
	SimConfig = gridsim.Config
	// SimMetrics summarises one simulation run.
	SimMetrics = gridsim.Metrics
	// SimPolicy produces a schedule for each batch activation.
	SimPolicy = gridsim.Policy
	// SimPolicyFunc adapts a function to SimPolicy.
	SimPolicyFunc = gridsim.PolicyFunc
)

// DefaultSimConfig returns a moderate dynamic-grid scenario.
func DefaultSimConfig() SimConfig { return gridsim.DefaultConfig() }

// Simulate runs the dynamic grid simulator with the given policy.
func Simulate(cfg SimConfig, p SimPolicy) (SimMetrics, error) { return gridsim.Simulate(cfg, p) }

// BatchPolicy wraps any Scheduler (cMA, GA, SA, tabu, or a custom
// implementation) as a dynamic scheduling policy: at every activation the
// algorithm runs on the snapshot instance within the given budget —
// exactly the deployment mode the paper proposes for real grids. Dynamic
// policies and batch runs thereby share one contract. The budget must be
// bounded. A cancelled budget context degrades gracefully: activations
// return the algorithm's best-so-far schedule (for the engines, at least
// the seeded population's best), so the simulation winds down instead of
// crashing. Only a run that produces no schedule at all panics, as the
// simulator has no error path and a policy that silently drops jobs
// would corrupt its metrics.
func BatchPolicy(name string, alg Scheduler, budget Budget) SimPolicy {
	return gridsim.PolicyFunc{PolicyName: name, Fn: func(in *Instance, seed uint64) Schedule {
		res, err := alg.Run(budget.Context(), in, WithBudget(budget), WithSeed(seed))
		if res.Best == nil {
			panic(fmt.Sprintf("gridcma: batch policy %s produced no schedule: %v", name, err))
		}
		return res.Best
	}}
}

// HeuristicPolicy wraps a constructive heuristic as a dynamic policy.
func HeuristicPolicy(name string) (SimPolicy, error) {
	h, err := heuristics.ByName(name)
	if err != nil {
		return nil, err
	}
	return gridsim.PolicyFunc{PolicyName: name, Fn: func(in *Instance, _ uint64) Schedule {
		return h(in)
	}}, nil
}
