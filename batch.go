package gridcma

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/run"
	"gridcma/internal/runner"
)

// pooledRunner is the package-internal extension a public Scheduler
// implements when its engine can draw evaluation scratches from a shared
// pool. It is deliberately unexported: pools are internal plumbing, and
// the public surface only ever sees their effect — batch runs on one
// instance stop re-allocating scratch evaluators engine by engine. The
// registry-built engineScheduler implements it; withDefaults forwards it;
// publicShim exploits it to give the public RunBatch the same
// one-pool-per-instance behaviour as the internal runner.
type pooledRunner interface {
	runPooled(ctx context.Context, in *Instance, pool *evalpool.Pool, opts ...RunOption) (Result, error)
}

// BatchSpec describes a batch of runs: every algorithm on every instance,
// repeated with deterministic per-task seeds — the shape of the paper's
// whole evaluation section (k algorithms × 12 Braun instances × n seeds).
type BatchSpec struct {
	// Instances to schedule; each must carry a Name for the results.
	Instances []*Instance
	// Algorithms to run; mix registry-built and custom Schedulers freely.
	Algorithms []Scheduler
	// Budget bounds every individual run.
	Budget Budget
	// Seeds, when non-empty, are reused verbatim for every (algorithm,
	// instance) pair. When empty, Repeats runs per pair get seeds derived
	// from BaseSeed and the task coordinates.
	Seeds    []uint64
	Repeats  int
	BaseSeed uint64
	// Workers caps concurrent runs; 0 means GOMAXPROCS.
	Workers int
}

// BatchResult is one completed run of a batch.
type BatchResult = runner.BatchResult

// RaceOutcome reports a portfolio race: the winning result plus what
// every contender had found when the race was called.
type RaceOutcome struct {
	// Best is the best result across the portfolio.
	Best Result
	// Winner is Best's index into the racing algorithms.
	Winner int
	// Results is index-aligned with the algorithms argument; cancelled
	// losers report their best-so-far.
	Results []Result
}

// RunBatch executes the batch on a worker pool and returns the results in
// a fixed order (algorithm-major, then instance, then repeat). Seeds
// depend only on task coordinates, never on goroutine scheduling, so
// with an iteration-bounded Budget the output is identical for any
// Workers value. Wall-clock (MaxTime) budgets are inherently
// machine- and load-dependent — concurrent runs share the CPU — so for
// comparable time-budgeted rankings set Workers to 1. Cancelling ctx
// stops the batch early and returns the completed results with ctx.Err().
func RunBatch(ctx context.Context, spec BatchSpec) ([]BatchResult, error) {
	var errs errCollector
	inner := runner.BatchSpec{
		Budget:   spec.Budget,
		Seeds:    spec.Seeds,
		Repeats:  spec.Repeats,
		BaseSeed: spec.BaseSeed,
		Workers:  spec.Workers,
	}
	for _, in := range spec.Instances {
		if in == nil {
			return nil, fmt.Errorf("gridcma: nil instance in batch")
		}
		inner.Instances = append(inner.Instances, runner.Instance{Name: in.Name, In: in})
	}
	for _, a := range spec.Algorithms {
		if a == nil {
			return nil, fmt.Errorf("gridcma: nil algorithm in batch")
		}
		inner.Schedulers = append(inner.Schedulers, publicShim{s: a, errs: &errs})
	}
	results, err := runner.RunBatch(ctx, inner)
	if err == nil {
		err = errs.first()
	}
	return results, err
}

// Race runs every algorithm on in concurrently and cancels the losers as
// soon as the first finishes its budget, so a portfolio never waits out
// its slowest member. Every option applies to every contender — budget,
// seed base, λ override; an observer too, though it then streams from
// all contenders concurrently and must be safe for that.
func Race(ctx context.Context, in *Instance, algorithms []Scheduler, opts ...RunOption) (RaceOutcome, error) {
	var errs errCollector
	st := newRunSettings()
	for _, o := range opts {
		o(&st)
	}
	scheds := make([]runner.Scheduler, len(algorithms))
	for i, a := range algorithms {
		if a == nil {
			return RaceOutcome{}, fmt.Errorf("gridcma: nil algorithm in portfolio")
		}
		scheds[i] = publicShim{s: a, opts: opts, errs: &errs}
	}
	out, err := runner.Race(ctx, in, scheds, st.budget, st.seed)
	if err == nil {
		err = errs.first()
	}
	// On outer-context cancellation the partial outcome is still
	// returned alongside ctx's error — best-so-far is the whole point
	// of a race with a deadline.
	return RaceOutcome{Best: out.Best, Winner: out.Winner, Results: out.Results}, err
}

// publicShim adapts a public Scheduler to the internal positional engine
// contract the batch tooling drives, restoring the budget's context as
// the Run context so cancellation crosses the boundary intact. Caller
// options (λ overrides etc.) are applied first; the task's budget and
// seed then override, since the fan-out owns those. Non-cancellation
// errors are collected rather than dropped — a failing scheduler must
// surface as an error, not as a silent zero-value result row.
type publicShim struct {
	s    Scheduler
	opts []RunOption
	errs *errCollector
}

func (p publicShim) Name() string { return p.s.Name() }

func (p publicShim) Run(in *etc.Instance, b run.Budget, seed uint64, obs run.Observer) run.Result {
	res, err := p.s.Run(b.Context(), in, p.merged(b, seed, obs)...)
	p.errs.note(err)
	return res
}

// RunPooled implements runner.PooledScheduler: when the wrapped public
// Scheduler supports pool sharing (pooledRunner), the batch executor's
// per-instance pool is forwarded through to its engine; otherwise the
// shim degrades to a plain Run, per the pool's advisory contract.
func (p publicShim) RunPooled(in *etc.Instance, b run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result {
	pr, ok := p.s.(pooledRunner)
	if !ok || pool == nil {
		return p.Run(in, b, seed, obs)
	}
	res, err := pr.runPooled(b.Context(), in, pool, p.merged(b, seed, obs)...)
	p.errs.note(err)
	return res
}

func (p publicShim) merged(b run.Budget, seed uint64, obs run.Observer) []RunOption {
	merged := make([]RunOption, 0, len(p.opts)+3)
	merged = append(merged, p.opts...)
	merged = append(merged, WithBudget(b), WithSeed(seed))
	if obs != nil {
		merged = append(merged, WithObserver(obs))
	}
	return merged
}

// errCollector keeps the first non-cancellation error seen across a
// fan-out. Cancellation is the fan-out's own signal (returned as the
// context's error by RunBatch/Race), not a scheduler failure.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (c *errCollector) note(err error) {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *errCollector) first() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
