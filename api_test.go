package gridcma_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"gridcma"
)

func TestBenchmarkInstanceNamesAndGeneration(t *testing.T) {
	names := gridcma.BenchmarkInstanceNames()
	if len(names) != 12 {
		t.Fatalf("%d names", len(names))
	}
	for _, n := range names {
		in, err := gridcma.BenchmarkInstance(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if in.Jobs != 512 || in.Machs != 16 {
			t.Errorf("%s: %d×%d", n, in.Jobs, in.Machs)
		}
	}
	if _, err := gridcma.BenchmarkInstance("bogus"); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestGenerateInstanceCustomDims(t *testing.T) {
	class := gridcma.InstanceClass{} // zero value: inconsistent, low, low
	in := gridcma.GenerateInstance(class, 64, 8, 42)
	if in.Jobs != 64 || in.Machs != 8 {
		t.Fatalf("dims %d×%d", in.Jobs, in.Machs)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceIORoundTripThroughFacade(t *testing.T) {
	in := gridcma.GenerateInstance(gridcma.InstanceClass{}, 10, 4, 1)
	var buf bytes.Buffer
	if err := gridcma.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := gridcma.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != 10 || got.Machs != 4 {
		t.Fatalf("dims %d×%d", got.Jobs, got.Machs)
	}
}

func TestHeuristicFacade(t *testing.T) {
	in, _ := gridcma.BenchmarkInstance("u_c_lolo.0")
	for _, n := range gridcma.HeuristicNames() {
		h, err := gridcma.Heuristic(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		s := h(in)
		ms, ft, fit := gridcma.Evaluate(in, s)
		if ms <= 0 || ft <= 0 || fit <= 0 {
			t.Errorf("%s: non-positive objectives", n)
		}
		if ms > ft {
			t.Errorf("%s: makespan %v exceeds flowtime %v", n, ms, ft)
		}
	}
	if _, err := gridcma.Heuristic("nope"); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestCMAThroughFacade(t *testing.T) {
	in, _ := gridcma.BenchmarkInstance("u_s_lolo.0")
	cfg := gridcma.DefaultCMAConfig()
	if cfg.Objective.Lambda != gridcma.DefaultLambda {
		t.Error("default lambda mismatch")
	}
	sched, err := gridcma.NewCMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	res, err := sched.Run(context.Background(), in,
		gridcma.WithMaxIterations(8),
		gridcma.WithSeed(1),
		gridcma.WithObserver(func(p gridcma.Progress) { seen++ }))
	if err != nil {
		t.Fatal(err)
	}
	if seen != 9 {
		t.Errorf("observer called %d times", seen)
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	ms, ft, fit := gridcma.Evaluate(in, res.Best)
	if ms != res.Makespan || ft != res.Flowtime || fit != res.Fitness {
		t.Errorf("result fields inconsistent with re-evaluation: (%v,%v,%v) vs (%v,%v,%v)",
			res.Makespan, res.Flowtime, res.Fitness, ms, ft, fit)
	}
}

func TestGAFacadeVariants(t *testing.T) {
	in, _ := gridcma.BenchmarkInstance("u_i_lolo.0")
	for _, v := range []gridcma.GAVariant{gridcma.BraunGA, gridcma.SteadyStateGA, gridcma.StruggleGA} {
		g, err := gridcma.NewGA(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		res, err := g.Run(context.Background(), in, gridcma.WithMaxIterations(3))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if err := res.Best.Validate(in); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestSATabuFacade(t *testing.T) {
	in, _ := gridcma.BenchmarkInstance("u_c_hilo.0")
	s, err := gridcma.NewSA()
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.Run(context.Background(), in, gridcma.WithMaxIterations(3)); err != nil || res.Best == nil {
		t.Errorf("SA returned no schedule (err %v)", err)
	}
	tb, err := gridcma.NewTabu()
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tb.Run(context.Background(), in, gridcma.WithMaxIterations(3)); err != nil || res.Best == nil {
		t.Errorf("tabu returned no schedule (err %v)", err)
	}
}

func TestLocalSearchFacade(t *testing.T) {
	for _, n := range []string{"LM", "SLM", "LMCTS", "VND", "none"} {
		if _, err := gridcma.LocalSearch(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := gridcma.LocalSearch("zzz"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestStateFacade(t *testing.T) {
	in, _ := gridcma.BenchmarkInstance("u_c_lolo.0")
	r := gridcma.NewRNG(3)
	s := make(gridcma.Schedule, in.Jobs)
	for j := range s {
		s[j] = r.Intn(in.Machs)
	}
	st := gridcma.NewState(in, s)
	before := st.Makespan()
	st.Move(0, (s[0]+1)%in.Machs)
	st.Move(0, s[0])
	if st.Makespan() != before {
		t.Error("move/revert changed makespan")
	}
}

func TestSimulationFacade(t *testing.T) {
	cfg := gridcma.DefaultSimConfig()
	cfg.Horizon = 150
	cfg.JoinRate, cfg.LeaveRate = 0, 0
	p, err := gridcma.HeuristicPolicy("minmin")
	if err != nil {
		t.Fatal(err)
	}
	m, err := gridcma.Simulate(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted == 0 {
		t.Error("no jobs completed")
	}
	if _, err := gridcma.HeuristicPolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBatchPolicyFacade(t *testing.T) {
	sched, err := gridcma.NewCMA(gridcma.DefaultCMAConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := gridcma.BatchPolicy("cma", sched, gridcma.Budget{MaxIterations: 2})
	if p.Name() != "cma" {
		t.Errorf("name %q", p.Name())
	}
	cfg := gridcma.DefaultSimConfig()
	cfg.Horizon = 60
	cfg.ActivationInterval = 20
	cfg.JoinRate, cfg.LeaveRate = 0, 0
	m, err := gridcma.Simulate(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Activations == 0 {
		t.Error("no activations")
	}
}

func TestBudgetSemantics(t *testing.T) {
	b := gridcma.Budget{MaxTime: time.Millisecond}
	if !b.Bounded() {
		t.Error("time budget should be bounded")
	}
	if (gridcma.Budget{}).Bounded() {
		t.Error("zero budget should be unbounded")
	}
}
