// Package gridcma is a Go reproduction of "Efficient Batch Job Scheduling
// in Grids using Cellular Memetic Algorithms" (Xhafa, Alba, Dorronsoro —
// IPDPS/IPPS 2007).
//
// The library implements the paper's cellular memetic algorithm (cMA) for
// scheduling independent jobs on heterogeneous computational grids under
// the ETC (Expected Time to Compute) model, together with everything the
// paper's evaluation depends on: the Braun et al. benchmark generator, the
// LJFR-SJFR and Min-Min style constructive heuristics, the three baseline
// genetic algorithms (Braun GA, steady-state GA, Struggle GA), simulated
// annealing and tabu search, a discrete-event dynamic grid simulator, and
// an experiment harness that regenerates every table and figure of the
// paper's evaluation section.
//
// This root package is the stable facade: it re-exports the types and
// constructors an application needs, so downstream users never import the
// internal packages directly.
//
// Quick start:
//
//	in, _ := gridcma.BenchmarkInstance("u_c_hihi.0")
//	sched, _ := gridcma.NewCMA(gridcma.DefaultCMAConfig())
//	res := sched.Run(in, gridcma.Budget{MaxTime: 2 * time.Second}, 1, nil)
//	fmt.Println(res.Makespan, res.Flowtime)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package gridcma
