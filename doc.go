// Package gridcma is a Go reproduction of "Efficient Batch Job Scheduling
// in Grids using Cellular Memetic Algorithms" (Xhafa, Alba, Dorronsoro —
// IPDPS/IPPS 2007).
//
// The library implements the paper's cellular memetic algorithm (cMA) for
// scheduling independent jobs on heterogeneous computational grids under
// the ETC (Expected Time to Compute) model, together with everything the
// paper's evaluation depends on: the Braun et al. benchmark generator, the
// LJFR-SJFR and Min-Min style constructive heuristics, the three baseline
// genetic algorithms (Braun GA, steady-state GA, Struggle GA), the GSA
// hybrid, simulated annealing, tabu search, the coarse-grained island
// model, a discrete-event dynamic grid simulator, and an experiment
// harness that regenerates every table and figure of the paper's
// evaluation section.
//
// This root package is the stable facade: it re-exports the types and
// constructors an application needs, so downstream users never import the
// internal packages directly.
//
// # Schedulers and the registry
//
// Every metaheuristic implements one interface:
//
//	type Scheduler interface {
//		Name() string
//		Run(ctx context.Context, in *Instance, opts ...RunOption) (Result, error)
//	}
//
// Algorithms are built by name from the registry. The built-in names are
//
//	cma cma-par cma-sync island braun-ga ss-ga struggle-ga gsa sa tabu
//
// (Algorithms lists them; Register adds your own.) Run is configured with
// functional options: WithBudget / WithMaxTime / WithMaxIterations bound
// the search, WithSeed makes it reproducible, WithObserver streams
// progress, WithLambda reweighs the bi-objective fitness
// λ·makespan + (1−λ)·mean_flowtime (default 0.75), and WithWorkers sets
// the goroutines evaluating offspring. Options passed to New become
// defaults for every Run of that scheduler.
//
// # Parallelism and determinism
//
// cma-par is the block-parallel asynchronous engine: the population grid
// is partitioned (internal/cell.Partition) into waves of cells with
// non-overlapping neighborhoods, each wave's offspring are evaluated
// concurrently from per-update RNG streams, and commits happen in draw
// order between waves. Results depend only on the seed — a run with
// WithWorkers(1) and WithWorkers(64) yields byte-identical schedules, so
// parallel runs stay reproducible across machines. cma-sync applies the
// same executor with the whole generation as one frozen wave. The
// sequential cma keeps the paper's exact single-stream semantics.
//
// Quick start:
//
//	in, _ := gridcma.BenchmarkInstance("u_c_hihi.0")
//	sched, _ := gridcma.New("cma")
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	res, _ := sched.Run(ctx, in, gridcma.WithMaxTime(2*time.Second), gridcma.WithSeed(1))
//	fmt.Println(res.Makespan, res.Flowtime)
//
// Cancelling ctx stops any run at its next budget check; a cancelled run
// returns its best-so-far schedule together with ctx.Err(). A run with no
// budget option and no context deadline fails with ErrUnbounded.
//
// # Evaluation: scratch, incremental, probe, sweep and cached scan
//
// The evaluation layer (internal/schedule) works at five temperatures.
// Scratch evaluation (Objective.Evaluate, NewState, State.SetSchedule)
// rebuilds everything from a genotype — the entry point for crossover
// offspring and external schedules. Incremental evaluation (State.Move,
// State.Swap) maintains per-machine completions, flowtime and an indexed
// tournament tree over the completions, making Makespan, MakespanMachine
// and the scalarised fitness O(1) reads with O(log M) maintenance —
// every committed search step uses it. Probe evaluation
// (State.FitnessAfterMove, State.FitnessAfterSwap) returns the exact
// fitness a hypothetical move or swap would produce, allocation-free and
// without mutating the state, bit-identical to applying the move,
// evaluating and reverting. Sweep evaluation batches whole candidate
// neighborhoods over shared partial results: FitnessAfterMoveSweep
// scores moving one job to every machine in one pass,
// CompletionAfterSwapSweep and the step-level swap scan
// (BeginSwapScan/BestPartner) emit the post-swap completions of one job
// against every partner in single list scans, and BeginMoveScan caches
// the top completions so batches of unrelated probes skip the per-probe
// tree walks. Every sweep value equals its scalar probe bit for bit.
// Cached-scan evaluation (State.Scans → ScanCache) is the event-driven
// delta layer on top: commits stamp their two machines with fresh epochs
// and log them in a commit-time dirty set (plus the old and new critical
// machine when the tournament tree's root moves), and the cache memoizes
// each machine's scan result so a query re-sweeps only the machines that
// changed and folds the rest from the memo — O(changed) per iteration
// instead of O(M) machines, bit-identical to a full rescan, collapsing
// steady-state LMCTS scans by orders of magnitude. The local searches
// (LM, SLM, LMCTS), SA and tabu search score candidates with the hottest
// applicable mode and commit only accepted steps — their hot loops
// allocate nothing and run several times faster than the historical
// apply+revert formulation. Search loops drain the dirty set before
// handing a state back (State.SyncScans), so pooled states never carry
// pending invalidation events across runs — CI checks this with the
// schedule package's dirty audit across every registered algorithm.
//
// MakespanMachine ties break toward the lowest machine index — a
// documented contract (LMCTS derives its critical machine from it),
// pinned by a regression test.
//
// # Trajectory compatibility
//
// A registry name pins an exact search trajectory: same instance, seed
// and budget always reproduce the same schedule, byte for byte
// (testdata/golden.json). Evaluation-path rewrites ship only when
// provably behavior-preserving; candidate-stream reorderings ship as new
// names — sampled-lmcts-batch (upfront machine-grouped partner pool),
// sa-sweep and tabu-sweep (per-machine proposal distributions over
// FitnessAfterMoveSweep) — so the frozen names' trajectories never move.
//
// # Batch execution and portfolio racing
//
// RunBatch fans instances × algorithms × seeds over a worker pool with
// deterministic per-task seeds — the output is identical for any worker
// count. Race runs a portfolio of schedulers on one instance concurrently
// and cancels the losers as soon as the first finishes:
//
//	batch, _ := gridcma.RunBatch(ctx, gridcma.BatchSpec{
//		Instances:  []*gridcma.Instance{in},
//		Algorithms: algs,
//		Budget:     gridcma.Budget{MaxTime: time.Second},
//		Repeats:    10,
//	})
//	outcome, _ := gridcma.Race(ctx, in, algs, gridcma.WithMaxTime(2*time.Second))
//
// The same Scheduler contract drives the dynamic grid simulator:
// BatchPolicy turns any Scheduler into a periodic-activation policy.
//
// # Scaling to large instances
//
// The benchmark suite is 512×16; the engine itself runs far past it.
// internal/etc's GenSpec ("<jobs>x<machs>[:<class>][:s<seed>][:f32]",
// e.g. "100000x1000:c_hihi:s7") is a deterministic streaming CVB
// generator: the same spec yields a byte-identical ETC matrix in every
// process, entries are streamed row by row with no intermediate
// allocations, and the :f32 suffix selects a float32 matrix backing —
// half the bytes of the only jobs×machines structure. The evaluator's
// State stays ~65 bytes per job at any scale (State.MemStats): its
// per-machine lists and prefix sums live in shared backing arrays and
// are rebuilt by an allocation-free bucket sort that is byte-identical
// to the historical path, ETC ties included. cmd/gridsched -gen runs
// any algorithm on a generated instance, cmd/experiments -run frontier
// prints the scaling-ladder table, cmd/bench -frontier measures the
// ladder up to 100000×1000 into the committed BENCH_frontier.json, and
// cmd/gridd -load -cvb streams CVB task bases through the daemon. At
// the 100k×1k rung a full LMCTS-driven cMA run completes in tens of
// seconds per ten iterations on one core, with steady-state scans
// costing microseconds — the cached-scan layer's O(changed) fold grows
// with machine count, not matrix size.
//
// # Online scheduling
//
// cmd/gridd runs the rolling-horizon daemon built on internal/daemon: a
// long-running service holding one live schedule.State per grid.
// Submissions and machine churn arrive as events (internal/eventlog),
// admissions happen in batch windows, and each window warm-starts the
// local search from the live state through State.SetScheduleDiff and the
// event-driven scan cache — O(changed) per window instead of a re-solve.
// The daemon is deterministic by construction (Grid.Apply is a pure
// function of state and event), journals every event to a write-ahead
// log, and snapshots restore bit-identically: the same snapshot plus the
// same event log reproduces the same schedule trajectory, byte for byte.
// The simulator exports its event stream in the daemon's log format
// (SimConfig.Record, gridsim -trace-out), so simulated workloads replay
// through the daemon directly. BENCH_gridd.json holds the committed
// million-job load-harness artifact.
//
// # Distributed islands & failure model
//
// internal/island/dist runs the coarse-grained island model across
// supervised worker processes. The design premise is that workers are
// stateless: one migration segment is a pure function (instance spec,
// engine config, island seed, iteration count, population in) →
// (result, population out), and the coordinator owns every island's
// population between segments. That one decision buys the whole failure
// model — a retried, duplicated or restarted call is always safe because
// the worker holds nothing the coordinator cannot re-send.
//
// Calls travel over a pluggable transport (internal/transport): an
// in-process Local client for tests and single-host runs, and a TCP
// JSONL framing (one JSON header line plus one zero-allocation
// population payload line) dialed against cmd/islandd worker daemons.
// Every call carries a timeout and a jittered exponential retry policy
// (internal/retry, the same client the gridd load harness uses to honour
// 429 backpressure); transport failures mark the worker dead and the
// supervisor lazily restarts it through the worker factory at the next
// call, re-sending the population. A heartbeat loop (detection only)
// notices silently hung workers between rounds. When a worker exhausts
// its restart budget it is declared permanently down, its islands are
// recorded dead, the migration ring heals around them, and the run
// finishes on the survivors — graceful degradation, never a hung
// barrier.
//
// Determinism is the contract that makes any of this testable: a
// failure-free distributed run is byte-identical to the in-process
// island scheduler for every transport and worker count, and a faulted
// run is a pure function of (seed, fault plan) — transient faults
// (drops, delays, duplicates, kills with successful restart) are fully
// absorbed by retry and reproduce the failure-free bytes, while
// permanent deaths reproduce a predictable survivor set and per-round
// digest trajectory. gridsched -disttorture replays dozens of seeded
// message-level fault plans twice each and enforces all of it
// bit-for-bit; BENCH_island_dist.json holds the committed round-latency,
// recovery-time and degraded-quality numbers.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package gridcma
