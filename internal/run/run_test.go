package run_test

import (
	"context"
	"testing"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/localsearch"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func TestBudgetBounded(t *testing.T) {
	deadlineCtx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	cases := []struct {
		name string
		b    run.Budget
		want bool
	}{
		{"zero", run.Budget{}, false},
		{"time", run.Budget{MaxTime: time.Second}, true},
		{"iterations", run.Budget{MaxIterations: 1}, true},
		{"both", run.Budget{MaxTime: time.Second, MaxIterations: 5}, true},
		{"plain context", run.Budget{}.WithContext(context.Background()), false},
		{"context with deadline", run.Budget{}.WithContext(deadlineCtx), true},
	}
	for _, c := range cases {
		if got := c.b.Bounded(); got != c.want {
			t.Errorf("%s: Bounded() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBudgetDoneIterationAndTimeBounds(t *testing.T) {
	start := time.Now()
	b := run.Budget{MaxIterations: 3}
	if b.Done(2, start) {
		t.Error("done before the iteration bound")
	}
	if !b.Done(3, start) {
		t.Error("not done at the iteration bound")
	}
	tb := run.Budget{MaxTime: time.Nanosecond}
	time.Sleep(time.Millisecond)
	if !tb.Done(0, start) {
		t.Error("not done past the time bound")
	}
	if (run.Budget{MaxTime: time.Hour}).Done(0, start) {
		t.Error("done long before the time bound")
	}
}

func TestBudgetWithContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := run.Budget{MaxIterations: 1000}.WithContext(ctx)
	if b.Cancelled() {
		t.Fatal("cancelled before cancel")
	}
	if b.Done(0, time.Now()) {
		t.Fatal("done before cancel")
	}
	cancel()
	if !b.Cancelled() {
		t.Fatal("not cancelled after cancel")
	}
	if !b.Done(0, time.Now()) {
		t.Fatal("not done after cancel")
	}
	// A budget without a context never reports cancellation.
	if (run.Budget{MaxIterations: 1}).Cancelled() {
		t.Fatal("context-less budget cancelled")
	}
}

func TestBudgetContextDefaultsToBackground(t *testing.T) {
	if (run.Budget{}).Context() != context.Background() {
		t.Fatal("context-less budget must return Background")
	}
	ctx := context.WithValue(context.Background(), testKey{}, 1)
	if run.Budget.WithContext(run.Budget{}, ctx).Context() != ctx {
		t.Fatal("attached context not returned")
	}
}

type testKey struct{}

func TestResultBetter(t *testing.T) {
	empty := run.Result{}
	a := run.Result{Best: schedule.Schedule{0}, Fitness: 1}
	b := run.Result{Best: schedule.Schedule{0}, Fitness: 2}
	if empty.Better(a) {
		t.Error("empty result beats a real one")
	}
	if !a.Better(empty) {
		t.Error("real result does not beat empty")
	}
	if !a.Better(b) || b.Better(a) {
		t.Error("lower fitness must win")
	}
}

// quickEngine returns a small cMA for observer/cancellation plumbing
// tests through a real engine loop.
func quickEngine(t *testing.T) (*cma.Scheduler, *etc.Instance) {
	t.Helper()
	cfg := cma.DefaultConfig()
	cfg.LSIterations = 1
	cfg.LocalSearch = localsearch.SampledLMCTS{Samples: 8}
	s, err := cma.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.Low, MachineHet: etc.Low},
		0, etc.GenerateOptions{Seed: 5, Jobs: 64, Machs: 4})
	return s, in
}

// Observers must see the initial sample plus one per iteration, with
// non-decreasing elapsed time and iteration counters.
func TestObserverPlumbing(t *testing.T) {
	s, in := quickEngine(t)
	var samples []run.Progress
	res := s.Run(in, run.Budget{MaxIterations: 7}, 3, func(p run.Progress) {
		samples = append(samples, p)
	})
	if len(samples) != 8 {
		t.Fatalf("got %d progress samples, want 8 (initial + 7 iterations)", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Iteration != samples[i-1].Iteration+1 {
			t.Fatalf("iteration jumped: %d -> %d", samples[i-1].Iteration, samples[i].Iteration)
		}
		if samples[i].Elapsed < samples[i-1].Elapsed {
			t.Fatalf("elapsed went backwards at %d", i)
		}
		if samples[i].Fitness > samples[i-1].Fitness+1e-9 {
			t.Fatalf("best fitness regressed at %d", i)
		}
	}
	if last := samples[len(samples)-1]; last.Fitness != res.Fitness {
		t.Fatalf("final sample fitness %v != result %v", last.Fitness, res.Fitness)
	}
	// A nil observer must be legal.
	s.Run(in, run.Budget{MaxIterations: 1}, 3, nil)
}

// A cancelled budget context must stop an engine run mid-flight and still
// leave a usable best-so-far result.
func TestBudgetCancellationStopsEngine(t *testing.T) {
	s, in := quickEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	iterations := 0
	b := run.Budget{MaxIterations: 1_000_000}.WithContext(ctx)
	res := s.Run(in, b, 1, func(p run.Progress) {
		iterations = p.Iteration
		if p.Iteration >= 3 {
			cancel()
		}
	})
	if iterations >= 1_000_000 {
		t.Fatal("run was not cancelled")
	}
	if res.Best == nil {
		t.Fatal("cancelled run lost its best-so-far schedule")
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
}
