// Package run holds the small vocabulary shared by every metaheuristic in
// the library: termination budgets, run results and progress observers.
// Keeping these types in one leaf package lets the cMA, the baseline GAs,
// simulated annealing and tabu search expose one uniform Run signature
// that the experiment harness and the dynamic grid simulator can drive
// interchangeably.
package run

import (
	"context"
	"time"

	"gridcma/internal/schedule"
)

// Budget bounds a run. A zero field means "unlimited"; at least one bound
// must be set or the run would never terminate. A Budget optionally
// carries a context (WithContext): every engine loop polls it alongside
// the time and iteration bounds, so cancelling the context stops any run
// within one budget check.
type Budget struct {
	// MaxTime stops the run after a wall-clock duration. The paper uses
	// 90 s (Table 1).
	MaxTime time.Duration
	// MaxIterations stops after this many engine iterations (generations
	// for the GAs, update sweeps for the cMA, proposals for SA/TS).
	MaxIterations int

	// ctx, when non-nil, cancels the run early. It rides inside the
	// Budget so the positional engine signature stays unchanged while
	// every termination check becomes context-aware.
	ctx context.Context
}

// WithContext returns a copy of b that also terminates when ctx is done.
func (b Budget) WithContext(ctx context.Context) Budget {
	b.ctx = ctx
	return b
}

// Context returns the budget's context, or context.Background when none
// was attached.
func (b Budget) Context() context.Context {
	if b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Bounded reports whether the run is guaranteed to terminate: at least
// one explicit bound is set, or the attached context has a deadline.
func (b Budget) Bounded() bool {
	if b.MaxTime > 0 || b.MaxIterations > 0 {
		return true
	}
	if b.ctx != nil {
		if _, ok := b.ctx.Deadline(); ok {
			return true
		}
	}
	return false
}

// Cancelled reports whether the attached context has been cancelled.
// Engines with expensive iterations poll it inside their update loops so
// cancellation latency is one update, not one full iteration; it never
// fires on time or iteration bounds, so the normal deterministic path is
// untouched.
func (b Budget) Cancelled() bool {
	if b.ctx == nil {
		return false
	}
	select {
	case <-b.ctx.Done():
		return true
	default:
		return false
	}
}

// Done reports whether the budget is exhausted at the given iteration
// count and start time, or the attached context has been cancelled.
func (b Budget) Done(iter int, start time.Time) bool {
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			return true
		default:
		}
	}
	if b.MaxIterations > 0 && iter >= b.MaxIterations {
		return true
	}
	if b.MaxTime > 0 && time.Since(start) >= b.MaxTime {
		return true
	}
	return false
}

// Progress is one observation of a running search.
type Progress struct {
	Elapsed   time.Duration
	Iteration int
	// Best-so-far values of the scalarised fitness and both objectives.
	Fitness  float64
	Makespan float64
	Flowtime float64
}

// Observer receives progress samples. A nil Observer is legal everywhere
// and means "don't observe". Observers are called from the search
// goroutine; they must be fast.
type Observer func(Progress)

// Result is the outcome of one metaheuristic run.
type Result struct {
	Best       schedule.Schedule // best schedule found
	Fitness    float64           // scalarised fitness of Best
	Makespan   float64
	Flowtime   float64
	Iterations int           // iterations actually executed
	Evals      int64         // full fitness evaluations performed
	Elapsed    time.Duration // wall-clock time consumed
	Algorithm  string        // name of the producing algorithm
}

// Better reports whether r improves on other (lower fitness wins; an empty
// result — no Best yet — always loses).
func (r Result) Better(other Result) bool {
	if r.Best == nil {
		return false
	}
	if other.Best == nil {
		return true
	}
	return r.Fitness < other.Fitness
}
