package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func fastPolicy() Policy {
	return Policy{Initial: time.Microsecond, Max: 10 * time.Microsecond, Jitter: -1}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := fastPolicy().Do(context.Background(), func(int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want nil after 1", err, calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := fastPolicy().Do(context.Background(), func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	base := errors.New("down")
	p := fastPolicy()
	p.MaxAttempts = 3
	err := p.Do(context.Background(), func(int) error {
		calls++
		return base
	})
	if calls != 3 {
		t.Fatalf("made %d calls, want 3", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v, want wrapped %v", err, base)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	base := errors.New("bad request")
	err := fastPolicy().Do(context.Background(), func(int) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("made %d calls, want 1", calls)
	}
	if err != base {
		t.Fatalf("Do = %v, want the unwrapped original %v", err, base)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if After(nil, time.Second) != nil {
		t.Fatal("After(nil, d) != nil")
	}
}

func TestDoHonorsAfterDelay(t *testing.T) {
	// A server-advertised delay should govern the wait (capped at Max):
	// with a 5ms advertised wait and one retry the elapsed time must be
	// at least 5ms even though the policy backoff is microseconds.
	p := fastPolicy()
	p.Max = 50 * time.Millisecond
	calls := 0
	start := time.Now()
	err := p.Do(context.Background(), func(int) error {
		calls++
		if calls == 1 {
			return After(errors.New("throttled"), 5*time.Millisecond)
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("Do = %v after %d calls", err, calls)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("resumed after %v, want >= 5ms advertised wait", d)
	}
}

func TestDoCapsAfterDelayAtMax(t *testing.T) {
	// An advertised delay beyond Policy.Max must be clipped: a 10s
	// Retry-After with Max=1ms retries in ~1ms, not 10s.
	p := Policy{Initial: time.Microsecond, Max: time.Millisecond, Jitter: -1}
	calls := 0
	start := time.Now()
	err := p.Do(context.Background(), func(int) error {
		calls++
		if calls == 1 {
			return After(errors.New("throttled"), 10*time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("waited %v, advertised delay not capped at Max", d)
	}
}

func TestDoContextCancelDuringBackoff(t *testing.T) {
	p := Policy{MaxAttempts: -1, Initial: time.Hour, Max: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(int) error { return errors.New("transient") })
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancel during backoff")
	}
}

func TestDoContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := fastPolicy().Do(ctx, func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("Do = %v after %d calls, want Canceled after 0", err, calls)
	}
}

func TestDoUnlimitedAttempts(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = -1
	calls := 0
	err := p.Do(context.Background(), func(int) error {
		calls++
		if calls < 50 {
			return errors.New("still down")
		}
		return nil
	})
	if err != nil || calls != 50 {
		t.Fatalf("Do = %v after %d calls, want nil after 50", err, calls)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	// White-box check of the schedule itself: doubling from Initial,
	// clamped at Max, unaffected by call outcomes.
	p := Policy{Initial: 10 * time.Millisecond, Max: 35 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	backoff := p.initial()
	for i, w := range want {
		if backoff != w {
			t.Fatalf("backoff[%d] = %v, want %v", i, backoff, w)
		}
		backoff = time.Duration(float64(backoff) * p.multiplier())
		if backoff > p.max() {
			backoff = p.max()
		}
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	sample := func(seed uint64) []time.Duration {
		p := Policy{Initial: time.Second, Max: time.Hour, Jitter: 0.5, Seed: seed}
		jr := p.jitterSchedule(4)
		return jr
	}
	a, b := sample(1), sample(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sample(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"2", 2 * time.Second, true},
		{"-1", 0, false},
		{"soon", 0, false},
		{"1.5", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestParseRetryAfterHTTPDate pins the HTTP-date form against a fixed
// clock: all three RFC 9110 formats, past dates (immediate retry),
// clock-skew clamping, and malformed near-dates.
func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"rfc1123", "Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second, true},
		{"rfc850", "Saturday, 08-Aug-26 12:05:00 GMT", 5 * time.Minute, true},
		{"ansi-c", "Sat Aug  8 12:00:10 2026", 10 * time.Second, true},
		{"past date", "Sat, 08 Aug 2026 11:59:00 GMT", 0, true},
		{"far past", "Mon, 02 Jan 2006 15:04:05 GMT", 0, true},
		{"skew clamped", "Sun, 09 Aug 2026 12:00:00 GMT", maxRetryAfterDate, true},
		{"exactly at cap", "Sat, 08 Aug 2026 13:00:00 GMT", time.Hour, true},
		{"not a date", "next tuesday", 0, false},
		{"truncated date", "Sat, 08 Aug 2026", 0, false},
		{"wrong-zone date", "Sat, 08 Aug 2026 12:00:30 PST", 0, false},
		{"empty", "", 0, false},
	}
	for _, c := range cases {
		got, ok := parseRetryAfterAt(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("%s: parseRetryAfterAt(%q) = (%v, %v), want (%v, %v)", c.name, c.in, got, ok, c.want, c.ok)
		}
	}
}

func ExamplePolicy_Do() {
	calls := 0
	p := Policy{MaxAttempts: 5, Initial: time.Microsecond, Jitter: -1}
	_ = p.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	fmt.Println(calls)
	// Output: 3
}
