// Package retry provides the context-aware retry policy shared by every
// client-side call path that must survive transient failure: the gridd
// load harness honouring 429 backpressure and the distributed island
// engine's RPC transport. One vocabulary covers both: capped attempts,
// jittered exponential backoff between them, and server-advertised delays
// (Retry-After) that override the computed backoff for one round.
//
// Retry timing never feeds an algorithmic decision — callers' results are
// functions of what the calls eventually return, not of when — but the
// jitter stream is still seeded (internal/rng) so a torture run that
// wants reproducible schedules can have them.
package retry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gridcma/internal/rng"
)

// Policy parameterises Do. The zero value is usable: 4 attempts, 50ms
// initial backoff doubling to a 2s cap, 20% jitter.
type Policy struct {
	// MaxAttempts bounds the total number of calls. 0 means the default
	// (4); a negative value retries without bound (the caller's context
	// is then the only way out — the load harness uses this to wait out
	// backpressure however long an admission window takes).
	MaxAttempts int
	// Initial is the backoff before the second attempt (0 = 50ms).
	Initial time.Duration
	// Max caps every wait, computed backoff and server-advertised alike
	// (0 = 2s).
	Max time.Duration
	// Multiplier grows the backoff between attempts (0 = 2).
	Multiplier float64
	// Jitter is the fraction of each wait drawn uniformly at random and
	// added on top, de-synchronising retry storms across clients. 0 means
	// the default 0.2; negative disables jitter entirely.
	Jitter float64
	// Seed drives the jitter stream; distinct callers should pass
	// distinct seeds so their retries do not march in lockstep.
	Seed uint64
}

func (p Policy) attempts() int {
	if p.MaxAttempts == 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p Policy) initial() time.Duration {
	if p.Initial <= 0 {
		return 50 * time.Millisecond
	}
	return p.Initial
}

func (p Policy) max() time.Duration {
	if p.Max <= 0 {
		return 2 * time.Second
	}
	return p.Max
}

func (p Policy) multiplier() float64 {
	if p.Multiplier <= 0 {
		return 2
	}
	return p.Multiplier
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.2
	}
	return p.Jitter
}

// permanentError stops Do: the wrapped error is not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable: Do returns the wrapped error
// immediately instead of backing off. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (anywhere in its chain) was marked by
// Permanent. Callers running their own retry loops instead of Do use it
// to honour the same give-up signal.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// afterError carries a server-advertised delay (Retry-After) alongside a
// retryable error.
type afterError struct {
	err   error
	after time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After marks err retryable with an explicit wait: the next backoff is
// the advertised delay (still capped at Policy.Max) instead of the
// exponential schedule. The 429 + Retry-After contract of the gridd API
// maps onto it directly.
func After(err error, wait time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, after: wait}
}

// maxRetryAfterDate caps waits derived from the HTTP-date form of
// Retry-After. A date far in the future is overwhelmingly clock skew or
// a misconfigured server rather than a genuine "come back in a week" —
// honouring it literally would park a client forever on bad input the
// integer form could never produce (policies cap that via Policy.Max,
// which also applies on top of this).
const maxRetryAfterDate = time.Hour

// ParseRetryAfter parses a Retry-After header in either standard form:
// integer seconds, or an HTTP-date (RFC 1123 and the obsolete RFC 850 /
// ANSI C formats, per RFC 9110). A date in the past — the server wants
// an immediate retry, or clocks are skewed the other way — reports
// (0, true); a date unreasonably far in the future is clamped to
// maxRetryAfterDate. Malformed values report ok=false like an absent
// header, leaving the caller on its computed backoff.
func ParseRetryAfter(header string) (time.Duration, bool) {
	return parseRetryAfterAt(header, time.Now())
}

// parseRetryAfterAt is ParseRetryAfter against an injected clock.
func parseRetryAfterAt(header string, now time.Time) (time.Duration, bool) {
	if header == "" {
		return 0, false
	}
	if s, err := strconv.Atoi(header); err == nil {
		if s < 0 {
			return 0, false
		}
		return time.Duration(s) * time.Second, true
	}
	t, err := http.ParseTime(header)
	if err != nil {
		return 0, false
	}
	d := t.Sub(now)
	if d < 0 {
		return 0, true
	}
	if d > maxRetryAfterDate {
		return maxRetryAfterDate, true
	}
	return d, true
}

// jitterSchedule returns the jittered waits the policy's seeded stream
// would produce for n consecutive one-second base waits; tests use it to
// pin that the stream is a pure function of Seed.
func (p Policy) jitterSchedule(n int) []time.Duration {
	jr := rng.New(p.Seed ^ 0xba110fba110f)
	jf := p.jitter()
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Second + time.Duration(jf*float64(time.Second)*jr.Float64())
	}
	return out
}

// Do calls f until it succeeds, returns a Permanent error, exhausts the
// attempt budget, or ctx is cancelled (including while waiting out a
// backoff). f receives the zero-based attempt index. The last error is
// returned, annotated with the attempt count when the budget ran out.
func (p Policy) Do(ctx context.Context, f func(attempt int) error) error {
	attempts := p.attempts()
	backoff := p.initial()
	maxWait := p.max()
	jf := p.jitter()
	var jrng *rng.Source
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f(attempt)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if attempts > 0 && attempt+1 >= attempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempts, err)
		}
		wait := backoff
		var ae *afterError
		if errors.As(err, &ae) {
			wait = ae.after
		} else {
			backoff = time.Duration(float64(backoff) * p.multiplier())
			if backoff > maxWait {
				backoff = maxWait
			}
		}
		if jf > 0 {
			if jrng == nil {
				jrng = rng.New(p.Seed ^ 0xba110fba110f)
			}
			wait += time.Duration(jf * float64(wait) * jrng.Float64())
		}
		if wait > maxWait {
			wait = maxWait
		}
		if wait <= 0 {
			continue
		}
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}
