package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero state after seeding with 0")
	}
	if x, y := r.Uint64(), r.Uint64(); x == y {
		t.Fatalf("suspicious repeated output %d", x)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 100, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestUniform(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	// Child and parent should not produce identical streams.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between parent and split child", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(33).Split()
	c2 := New(33).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(55)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", p)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(77)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(512)
	}
}
