// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the library.
//
// Reproducibility is a hard requirement for the experiment harness: every
// run of every algorithm must be replayable from a single uint64 seed. The
// standard library's math/rand global generator is shared mutable state and
// math/rand/v2 is not seedable per-stream in older toolchains, so we carry
// our own generator: xoshiro256** seeded through splitmix64, the combination
// recommended by the xoshiro authors. It is not cryptographically secure and
// does not need to be.
//
// A *Source is NOT safe for concurrent use. Concurrent components derive
// independent streams with Split, which is cheap and gives statistically
// independent sequences.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** PRNG. The zero value is invalid;
// construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// to expand a single seed into the 256-bit xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams; the same seed always yields the same sequence.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets r to the state New(seed) would produce, without
// allocating — hot paths that derive one stream per work item reuse a
// Source value instead of constructing one.
func (r *Source) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// All-zero state is the one forbidden state of xoshiro; splitmix64 of
	// any seed cannot produce it, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of r's future
// output. It consumes one value from r.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Pick returns a uniformly chosen element index from a non-empty slice
// length n, as a convenience mirror of Intn with clearer call sites.
func (r *Source) Pick(n int) int { return r.Intn(n) }
