package cma

import (
	"testing"

	"gridcma/internal/cell"
	"gridcma/internal/heuristics"
	"gridcma/internal/localsearch"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// parCfg returns a quick block-parallel configuration.
func parCfg(workers int) Config {
	cfg := quickCfg()
	cfg.Workers = workers
	return cfg
}

// The defining property of the partitioned asynchronous engine: the same
// seed yields a byte-identical best schedule for every worker count.
func TestParallelAsyncDeterministicAcrossWorkerCounts(t *testing.T) {
	in := testInstance(21)
	var ref run.Result
	for i, workers := range []int{1, 2, 8} {
		s, err := New(parCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(in, run.Budget{MaxIterations: 8}, 99, nil)
		if i == 0 {
			ref = res
			continue
		}
		if !ref.Best.Equal(res.Best) {
			t.Fatalf("workers=%d changed the best schedule", workers)
		}
		if ref.Fitness != res.Fitness || ref.Makespan != res.Makespan || ref.Flowtime != res.Flowtime {
			t.Fatalf("workers=%d changed objectives: %v vs %v", workers, ref.Fitness, res.Fitness)
		}
		if ref.Evals != res.Evals {
			t.Fatalf("workers=%d changed eval count: %d vs %d", workers, ref.Evals, res.Evals)
		}
	}
}

// Worker-count invariance must hold under every local-search method: the
// memetic step now scores its neighbors with the speculative probes
// (State.FitnessAfterMove / FitnessAfterSwap) instead of apply+revert,
// and the probe path has to be as schedule-deterministic as the old one
// for any number of workers.
func TestParallelAsyncDeterministicAcrossLocalSearches(t *testing.T) {
	in := testInstance(26)
	methods := []localsearch.Method{
		localsearch.LM{},
		localsearch.SLM{},
		localsearch.LMCTS{},
		localsearch.SampledLMCTS{Samples: 16},
	}
	for _, ls := range methods {
		var ref run.Result
		for i, workers := range []int{1, 2, 8} {
			cfg := parCfg(workers)
			cfg.LocalSearch = ls
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run(in, run.Budget{MaxIterations: 6}, 13, nil)
			if i == 0 {
				ref = res
				continue
			}
			if !ref.Best.Equal(res.Best) {
				t.Fatalf("%s: workers=%d changed the best schedule", ls.Name(), workers)
			}
			if ref.Fitness != res.Fitness || ref.Makespan != res.Makespan || ref.Flowtime != res.Flowtime {
				t.Fatalf("%s: workers=%d changed objectives", ls.Name(), workers)
			}
		}
	}
}

// Worker-count invariance must hold for every neighborhood pattern the
// partitioner supports, including the degenerate panmictic one.
func TestParallelAsyncDeterministicAcrossPatterns(t *testing.T) {
	in := testInstance(22)
	for _, p := range []cell.Pattern{cell.L5, cell.C9, cell.C13, cell.Panmictic} {
		var ref run.Result
		for i, workers := range []int{1, 4} {
			cfg := parCfg(workers)
			cfg.Pattern = p
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run(in, run.Budget{MaxIterations: 4}, 7, nil)
			if i == 0 {
				ref = res
			} else if !ref.Best.Equal(res.Best) || ref.Fitness != res.Fitness {
				t.Fatalf("pattern %v: workers changed the result", p)
			}
		}
	}
}

func TestParallelAsyncImprovesAndIsNamed(t *testing.T) {
	in := testInstance(23)
	s, err := New(parCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "cMA-par" {
		t.Fatalf("name %q, want cMA-par", s.Name())
	}
	res := s.Run(in, run.Budget{MaxIterations: 30}, 42, nil)
	if res.Algorithm != "cMA-par" {
		t.Fatalf("result algorithm %q", res.Algorithm)
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	seed := schedule.NewState(in, heuristics.LJFRSJFR(in))
	seedFit := schedule.DefaultObjective.Of(seed)
	if res.Fitness >= seedFit {
		t.Errorf("cMA-par fitness %v did not improve on LJFR-SJFR %v", res.Fitness, seedFit)
	}
}

// The parallel engine must keep the monotone best-ever invariant that the
// sequential engine guarantees, including without elitist replacement.
func TestParallelAsyncMonotoneBest(t *testing.T) {
	for _, addIfBetter := range []bool{true, false} {
		cfg := parCfg(4)
		cfg.AddOnlyIfBetter = addIfBetter
		s, _ := New(cfg)
		var fits []float64
		s.Run(testInstance(24), run.Budget{MaxIterations: 12}, 3, func(p run.Progress) {
			fits = append(fits, p.Fitness)
		})
		if len(fits) != 13 {
			t.Fatalf("got %d observations, want 13", len(fits))
		}
		for i := 1; i < len(fits); i++ {
			if fits[i] > fits[i-1]+1e-9 {
				t.Fatalf("addIfBetter=%v: best regressed at %d", addIfBetter, i)
			}
		}
	}
}

// A migration-seeded parallel run (the island model's path) must also be
// worker-count invariant.
func TestParallelAsyncRunWithPopulationDeterministic(t *testing.T) {
	in := testInstance(25)
	seedCfg := quickCfg()
	seedS, _ := New(seedCfg)
	_, popIn := seedS.RunWithPopulation(in, run.Budget{MaxIterations: 2}, 5, nil, nil)

	var refRes run.Result
	var refPop []schedule.Schedule
	for i, workers := range []int{1, 3} {
		s, _ := New(parCfg(workers))
		res, pop := s.RunWithPopulation(in, run.Budget{MaxIterations: 4}, 11, nil, popIn)
		if i == 0 {
			refRes, refPop = res, pop
			continue
		}
		if !refRes.Best.Equal(res.Best) {
			t.Fatal("workers changed the migrated-run best")
		}
		for k := range refPop {
			if !refPop[k].Equal(pop[k]) {
				t.Fatalf("workers changed final population at cell %d", k)
			}
		}
	}
}
