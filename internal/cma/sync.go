package cma

import (
	"sync"
	"sync/atomic"

	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Synchronous updating: every offspring of an iteration is computed against
// the frozen current generation, so the per-cell computations are
// embarrassingly parallel. Determinism is preserved by deriving each
// update's RNG from (run seed, iteration, update index) rather than from a
// shared stream, and by committing replacements in update order after the
// barrier.

// workerCtx is the per-goroutine scratch space reused across iterations.
type workerCtx struct {
	dst *schedule.State
	buf schedule.Schedule
}

// syncUpdate describes one pending update of a synchronous iteration.
type syncUpdate struct {
	cell     int
	mutation bool // false = recombination
	fitness  float64
	sched    schedule.Schedule // computed offspring (copied out of scratch)
}

// iterateSync runs one synchronous iteration. Cells for both passes are
// drawn from the same sweep orders as the asynchronous engine; offspring
// are computed in parallel and committed in draw order.
func (e *engine) iterateSync(iter int) {
	nUpd := e.cfg.Recombinations + e.cfg.Mutations
	updates := make([]syncUpdate, nUpd)
	for k := 0; k < e.cfg.Recombinations; k++ {
		updates[k] = syncUpdate{cell: e.recOrd.Next()}
	}
	for k := 0; k < e.cfg.Mutations; k++ {
		updates[e.cfg.Recombinations+k] = syncUpdate{cell: e.mutOrd.Next(), mutation: true}
	}

	// Frozen view of the generation.
	popAt := func(i int) *schedule.State { return e.pop[i] }
	frozenFit := append([]float64(nil), e.fit...)
	fitAt := func(i int) float64 { return frozenFit[i] }

	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > nUpd {
		workers = nUpd
	}
	if e.syncCtx == nil {
		e.syncCtx = map[int]*workerCtx{}
	}

	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		ctx := e.syncCtx[w]
		if ctx == nil {
			ctx = &workerCtx{
				dst: schedule.NewState(e.in, e.pop[0].Schedule()),
				buf: make(schedule.Schedule, e.in.Jobs),
			}
			e.syncCtx[w] = ctx
		}
		go func(ctx *workerCtx) {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1))
				if k >= nUpd {
					return
				}
				u := &updates[k]
				// Deterministic stream per (seed, iteration, update).
				r := rng.New(e.seed ^ mix(uint64(iter), uint64(k)))
				if u.mutation {
					u.fitness = e.mutateInto(u.cell, ctx.dst, popAt, r)
				} else {
					u.fitness = e.recombineInto(u.cell, ctx.dst, ctx.buf, popAt, fitAt, r)
				}
				u.sched = ctx.dst.Schedule()
			}
		}(ctx)
	}
	wg.Wait()

	// Commit in draw order (deterministic regardless of scheduling).
	for i := range updates {
		u := &updates[i]
		e.scratch.SetSchedule(u.sched)
		e.evals++
		e.replace(u.cell, e.scratch, u.fitness)
	}
}

// mix hashes two words into one (splitmix-style finaliser over the pair).
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b + 0x632be59bd9b4e019
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
