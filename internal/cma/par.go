package cma

import (
	"gridcma/internal/evalpool"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// This file is the partitioned parallel executor shared by the
// block-parallel asynchronous engine and the synchronous engine. Both
// express one iteration as a sequence of draws — (cell, operator) pairs
// taken from the sweep orders — and differ only in how the draws are
// batched into execution waves:
//
//   - Asynchronous: cell.Partition.PlanWaves groups the draw sequence
//     into waves of pairwise non-interacting cells, scheduling every draw
//     after all earlier conflicting draws. Waves run one after another
//     with commits in between, so executing each wave's draws
//     concurrently is provably equivalent to executing the whole sequence
//     one by one.
//   - Synchronous: the entire iteration is a single wave computed against
//     the frozen generation (selection reads a snapshot of the fitness
//     vector) and committed at the end in draw order.
//
// Determinism for any worker count follows from three choices: each draw
// evaluates into its own scratch State, each draw derives its RNG stream
// from (seed, iteration, draw index) rather than from a shared source,
// and commits — the only writes to shared state — happen sequentially in
// draw order between waves.

// draw is one pending update of an iteration.
type draw struct {
	cell     int
	mutation bool // false = recombination
	scratch  *evalpool.Scratch
	rng      rng.Source // reseeded per iteration from (seed, iter, index)
	fit      float64
}

// iterateBatch runs one iteration through the wave executor. frozen
// selects synchronous semantics (one wave against the frozen generation);
// otherwise the draws run block-asynchronously in partition waves.
func (e *engine) iterateBatch(iter int, frozen bool) {
	nUpd := e.cfg.Recombinations + e.cfg.Mutations
	if cap(e.draws) < nUpd {
		e.draws = make([]draw, nUpd)
		e.drawCells = make([]int, nUpd)
		for k := range e.draws {
			e.draws[k].scratch = e.pool.Get()
		}
	}
	draws := e.draws[:nUpd]
	for k := 0; k < e.cfg.Recombinations; k++ {
		draws[k].cell, draws[k].mutation = e.recOrd.Next(), false
		e.drawCells[k] = draws[k].cell
	}
	for k := e.cfg.Recombinations; k < nUpd; k++ {
		draws[k].cell, draws[k].mutation = e.mutOrd.Next(), true
		e.drawCells[k] = draws[k].cell
	}

	popAt := func(i int) *schedule.State { return e.pop[i] }
	fitAt := func(i int) float64 { return e.fit[i] }
	if frozen {
		e.frozenFit = append(e.frozenFit[:0], e.fit...)
		frozenFit := e.frozenFit
		fitAt = func(i int) float64 { return frozenFit[i] }
		// One wave holding every draw index.
		e.waves = e.waves[:0]
		if cap(e.waves) > 0 {
			e.waves = e.waves[:1]
			e.waves[0] = e.waves[0][:0]
		} else {
			e.waves = append(e.waves, nil)
		}
		for k := range draws {
			e.waves[0] = append(e.waves[0], k)
		}
	} else {
		if e.part == nil {
			panic("cma: batch iteration without a partition")
		}
		e.waves = e.part.PlanWaves(e.drawCells[:nUpd], e.waves)
	}

	for _, wave := range e.waves {
		if e.budget.Cancelled() {
			return
		}
		e.runWave(iter, wave, popAt, fitAt)
		for _, k := range wave {
			d := &draws[k]
			e.evals++
			e.replace(d.cell, d.scratch.St, d.fit)
		}
	}
}

// Persistent worker pool. The executor used to spawn a fresh set of
// goroutines for every wave — tens of thousands of goroutine launches per
// run on fine partitions. Instead, the engine now starts its workers once
// (lazily, at the first parallel batch) and feeds them task indices over
// a channel; a batch is one WaitGroup cycle. The channel send
// happens-before the worker's receive, so writes to taskExec and the
// per-draw state made before dispatch are visible without extra locking,
// and determinism is untouched: every task still writes only its own
// draw slot, and commits stay sequential in draw order between waves.

// startWorkers lazily launches the configured number of persistent
// workers. Batches narrower than the pool leave the excess workers
// parked on the channel, which costs nothing.
func (e *engine) startWorkers() {
	if e.tasks != nil {
		return
	}
	workers := e.workers()
	e.tasks = make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range e.tasks {
				e.taskExec(i)
				e.taskWG.Done()
			}
		}()
	}
}

// stopWorkers terminates the persistent workers; the engine is done.
func (e *engine) stopWorkers() {
	if e.tasks != nil {
		close(e.tasks)
		e.tasks = nil
	}
}

// runTasks executes exec(0..n-1) on the persistent workers (sequentially
// when the engine is configured for one worker), returning when all have
// finished.
func (e *engine) runTasks(n int, exec func(int)) {
	if e.workers() <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			exec(i)
		}
		return
	}
	e.startWorkers()
	e.taskExec = exec
	e.taskWG.Add(n)
	for i := 0; i < n; i++ {
		e.tasks <- i
	}
	e.taskWG.Wait()
}

// runWave evaluates the draws of one wave, fanning them across the
// persistent workers. Every draw's RNG stream depends only on (seed,
// iteration, draw index), so the wave's results are independent of how
// the draws land on goroutines.
func (e *engine) runWave(iter int, wave []int, popAt func(int) *schedule.State, fitAt func(int) float64) {
	e.runTasks(len(wave), func(i int) {
		k := wave[i]
		d := &e.draws[k]
		d.rng.Reseed(e.seed ^ mix(uint64(iter), uint64(k)))
		if d.mutation {
			d.fit = e.mutateInto(d.cell, d.scratch, popAt, &d.rng)
		} else {
			d.fit = e.recombineInto(d.cell, d.scratch, popAt, fitAt, &d.rng)
		}
	})
}

// initCells is the parallel population initialisation: per-cell RNG
// streams fanned across the persistent workers. Identical results for
// every worker count.
func (e *engine) initCells(initial []schedule.Schedule, base schedule.Schedule, frac float64) {
	e.runTasks(len(e.pop), func(i int) {
		var r rng.Source
		r.Reseed(e.seed ^ mix(^uint64(0), uint64(i)))
		e.initCell(i, initial, base, frac, &r)
	})
}

// mix hashes two words into one (splitmix-style finaliser over the pair).
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b + 0x632be59bd9b4e019
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
