// Package cma implements the paper's contribution: a Cellular Memetic
// Algorithm (cMA) for batch scheduling of independent jobs on
// heterogeneous grids, following Algorithm 1 of the paper.
//
// The population lives on a toroidal 2-D grid. Each iteration performs
// nb_recombinations recombination updates and nb_mutations mutation
// updates; the two processes walk the grid with independent sweep orders
// (Table 1: FLS for recombination, NRS for mutation). Every offspring is
// improved by a local search method before evaluation and replaces the
// individual at its cell only if strictly better ("add only if better").
//
// Two updating disciplines are provided:
//
//   - Asynchronous (the paper's choice): updates are applied in sweep
//     order within the iteration, so later cells see earlier replacements.
//   - Synchronous: all offspring of an iteration are computed against the
//     frozen current generation and committed together at the end. Because
//     cells are then independent, the engine evaluates them in parallel
//     across Workers goroutines with per-cell deterministic RNG streams —
//     results are reproducible regardless of scheduling.
package cma

import (
	"fmt"
	"time"

	"gridcma/internal/cell"
	"gridcma/internal/etc"
	"gridcma/internal/heuristics"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// Config collects every tunable of the cMA. DefaultConfig returns the
// paper's Table 1 values; zero-value fields in a hand-built Config are
// rejected by Validate rather than silently defaulted.
type Config struct {
	Width, Height int // population grid shape (Table 1: 5×5)

	Pattern     cell.Pattern // neighborhood (Table 1: C9)
	RecombOrder cell.Order   // sweep order of the recombination pass (FLS)
	MutOrder    cell.Order   // sweep order of the mutation pass (NRS)

	Recombinations       int // recombination updates per iteration (25)
	Mutations            int // mutation updates per iteration (12)
	SolutionsToRecombine int // |S| in SelectToRecombine (3)

	Selector  operators.Selector  // parent selection (3-Tournament)
	Crossover operators.Crossover // recombination (One-Point)
	Mutator   operators.Mutator   // mutation (Rebalance)

	LocalSearch  localsearch.Method // offspring improvement (LMCTS)
	LSIterations int                // local search budget per offspring (5)

	Objective schedule.Objective // fitness (λ = 0.75)

	// AddOnlyIfBetter controls replacement: if true (the paper's setting)
	// an offspring replaces its cell only when strictly fitter.
	AddOnlyIfBetter bool

	// SeedHeuristic builds individual 0; the rest of the population are
	// perturbed copies. Nil seeds the whole population randomly.
	SeedHeuristic func(*etc.Instance) schedule.Schedule
	// PerturbFraction is the fraction of genes randomised when deriving
	// the initial population from the seed individual (0.3 by default).
	PerturbFraction float64

	// Synchronous switches to generation-synchronous updating.
	Synchronous bool
	// Workers bounds the goroutines used in synchronous mode; 0 means
	// one (sequential). Asynchronous mode is inherently sequential and
	// ignores it.
	Workers int
}

// DefaultConfig returns the tuned configuration of Table 1.
func DefaultConfig() Config {
	return Config{
		Width: 5, Height: 5,
		Pattern:              cell.C9,
		RecombOrder:          cell.FLS,
		MutOrder:             cell.NRS,
		Recombinations:       25,
		Mutations:            12,
		SolutionsToRecombine: 3,
		Selector:             operators.NewTournament(3),
		Crossover:            operators.OnePoint{},
		Mutator:              operators.DefaultRebalance,
		LocalSearch:          localsearch.LMCTS{},
		LSIterations:         5,
		Objective:            schedule.DefaultObjective,
		AddOnlyIfBetter:      true,
		SeedHeuristic:        heuristics.LJFRSJFR, // Table 1 "start choice"
		PerturbFraction:      0.3,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("cma: invalid grid %dx%d", c.Width, c.Height)
	case c.Recombinations < 0 || c.Mutations < 0:
		return fmt.Errorf("cma: negative update counts")
	case c.Recombinations == 0 && c.Mutations == 0:
		return fmt.Errorf("cma: no updates per iteration")
	case c.SolutionsToRecombine < 2:
		return fmt.Errorf("cma: SolutionsToRecombine = %d, need >= 2", c.SolutionsToRecombine)
	case c.Selector == nil:
		return fmt.Errorf("cma: nil Selector")
	case c.Crossover == nil:
		return fmt.Errorf("cma: nil Crossover")
	case c.Mutator == nil:
		return fmt.Errorf("cma: nil Mutator")
	case c.LocalSearch == nil:
		return fmt.Errorf("cma: nil LocalSearch")
	case c.LSIterations < 0:
		return fmt.Errorf("cma: negative LSIterations")
	case c.Objective.Lambda < 0 || c.Objective.Lambda > 1:
		return fmt.Errorf("cma: lambda %v outside [0,1]", c.Objective.Lambda)
	case c.PerturbFraction < 0 || c.PerturbFraction > 1:
		return fmt.Errorf("cma: PerturbFraction %v outside [0,1]", c.PerturbFraction)
	case c.Workers < 0:
		return fmt.Errorf("cma: negative Workers")
	}
	return nil
}

// Scheduler is a reusable cMA instance bound to a configuration.
type Scheduler struct {
	cfg Config
}

// New returns a Scheduler after validating cfg. A nil SeedHeuristic means
// a fully random initial population; DefaultConfig seeds with LJFR-SJFR as
// the paper does.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Name identifies the algorithm in results.
func (s *Scheduler) Name() string {
	if s.cfg.Synchronous {
		return "cMA-sync"
	}
	return "cMA"
}

// Run executes the cMA on instance in with the given budget and RNG seed,
// reporting progress to obs (which may be nil).
func (s *Scheduler) Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result {
	if !budget.Bounded() {
		panic("cma: unbounded budget")
	}
	e := newEngine(in, s.cfg, seed, nil, budget)
	return e.run(budget, obs, s.Name())
}

// RunWithPopulation is Run, but the mesh is seeded from initial (cloned;
// truncated or padded with perturbed copies of its first element as
// needed) and the final population is returned alongside the result. It
// is the migration hook of the coarse-grained island model
// (internal/island): islands export their populations at segment
// boundaries, exchange individuals, and resume.
func (s *Scheduler) RunWithPopulation(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, initial []schedule.Schedule) (run.Result, []schedule.Schedule) {
	if !budget.Bounded() {
		panic("cma: unbounded budget")
	}
	e := newEngine(in, s.cfg, seed, initial, budget)
	res := e.run(budget, obs, s.Name())
	final := make([]schedule.Schedule, len(e.pop))
	for i, st := range e.pop {
		final[i] = st.Schedule()
	}
	return res, final
}

// CellComponents exposes the cellular plumbing of a configuration — the
// population size, per-cell neighbor lists and the two sweep orders — so
// extension algorithms (e.g. the multi-objective variant in
// internal/pareto) can share the exact population structure without
// depending on the engine's internals. It consumes two values from r.
func CellComponents(cfg Config, r *rng.Source) (size int, neighborhoods [][]int, recOrder, mutOrder cell.SweepOrder) {
	g := cell.NewGrid(cfg.Width, cfg.Height)
	nb := cell.NewNeighborhood(g, cfg.Pattern)
	n := g.Size()
	return n, nb.Of, cell.NewSweep(cfg.RecombOrder, n, r.Split()), cell.NewSweep(cfg.MutOrder, n, r.Split())
}

// engine is the mutable state of one run.
type engine struct {
	in     *etc.Instance
	cfg    Config
	r      *rng.Source
	seed   uint64
	budget run.Budget // for cancellation polling inside expensive phases
	grid   cell.Grid
	nb     *cell.Neighborhood
	pop    []*schedule.State
	fit    []float64
	recOrd cell.SweepOrder
	mutOrd cell.SweepOrder

	// scratch buffers reused across updates
	child   schedule.Schedule
	scratch *schedule.State
	syncCtx map[int]*workerCtx // per-worker scratch for synchronous mode
	evals   int64

	// best-ever (the population best is monotone under add-if-better,
	// but we track explicitly to also support AddOnlyIfBetter=false).
	best    schedule.Schedule
	bestFit float64
	bestMS  float64
	bestFT  float64
}

func newEngine(in *etc.Instance, cfg Config, seed uint64, initial []schedule.Schedule, budget run.Budget) *engine {
	e := &engine{
		in:     in,
		cfg:    cfg,
		r:      rng.New(seed),
		seed:   seed,
		grid:   cell.NewGrid(cfg.Width, cfg.Height),
		budget: budget,
	}
	e.nb = cell.NewNeighborhood(e.grid, cfg.Pattern)
	n := e.grid.Size()
	e.pop = make([]*schedule.State, n)
	e.fit = make([]float64, n)
	e.recOrd = cell.NewSweep(cfg.RecombOrder, n, e.r.Split())
	e.mutOrd = cell.NewSweep(cfg.MutOrder, n, e.r.Split())
	e.child = make(schedule.Schedule, in.Jobs)

	e.initPopulation(initial)
	return e
}

// initPopulation builds the initial mesh. With an explicit initial
// population (migration resume), individuals are cloned from it, padding
// with perturbed copies of its first element when it is short. Otherwise
// the mesh is the seed heuristic individual plus perturbed copies (or
// all-random when no seed heuristic). In every case — per Algorithm 1 —
// local search improves each individual before the first evaluation.
func (e *engine) initPopulation(initial []schedule.Schedule) {
	var base schedule.Schedule
	if len(initial) > 0 {
		base = initial[0]
	} else if e.cfg.SeedHeuristic != nil {
		base = e.cfg.SeedHeuristic(e.in)
	}
	frac := e.cfg.PerturbFraction
	if frac == 0 {
		frac = 0.3
	}
	for i := range e.pop {
		var s schedule.Schedule
		switch {
		case i < len(initial):
			s = initial[i].Clone()
		case base != nil && i == 0:
			s = base.Clone()
		case base != nil:
			s = base.Clone()
			schedule.Perturb(s, e.in, e.r, frac)
		default:
			s = schedule.NewRandom(e.in, e.r)
		}
		e.pop[i] = schedule.NewState(e.in, s)
		// Initialisation runs a local search per individual — seconds of
		// work on large instances — so cancellation is polled here too;
		// a cancelled engine still leaves every cell fully evaluated.
		if !e.budget.Cancelled() {
			e.cfg.LocalSearch.Improve(e.pop[i], e.cfg.Objective, e.cfg.LSIterations, e.r)
		}
		e.fit[i] = e.cfg.Objective.Of(e.pop[i])
		e.evals++
	}
	e.scratch = schedule.NewState(e.in, e.pop[0].Schedule())
	e.refreshBest()
}

func (e *engine) refreshBest() {
	for i, f := range e.fit {
		if e.best == nil || f < e.bestFit {
			e.bestFit = f
			e.best = e.pop[i].Schedule()
			e.bestMS = e.pop[i].Makespan()
			e.bestFT = e.pop[i].Flowtime()
		}
	}
}

// noteIfBest records st as the best-ever solution if it improves.
func (e *engine) noteIfBest(st *schedule.State, f float64) {
	if e.best == nil || f < e.bestFit {
		e.bestFit = f
		e.best = st.Schedule()
		e.bestMS = st.Makespan()
		e.bestFT = st.Flowtime()
	}
}

func (e *engine) run(budget run.Budget, obs run.Observer, name string) run.Result {
	start := time.Now()
	iter := 0
	emit := func() {
		if obs != nil {
			obs(run.Progress{
				Elapsed:   time.Since(start),
				Iteration: iter,
				Fitness:   e.bestFit,
				Makespan:  e.bestMS,
				Flowtime:  e.bestFT,
			})
		}
	}
	emit()
	for !budget.Done(iter, start) {
		if e.cfg.Synchronous {
			e.iterateSync(iter)
		} else {
			e.iterateAsync()
		}
		iter++
		emit()
	}
	return run.Result{
		Best:       e.best,
		Fitness:    e.bestFit,
		Makespan:   e.bestMS,
		Flowtime:   e.bestFT,
		Iterations: iter,
		Evals:      e.evals,
		Elapsed:    time.Since(start),
		Algorithm:  name,
	}
}

// recombineInto computes one recombination offspring for cell c into dst,
// using buf as the crossover scratch buffer. It selects
// SolutionsToRecombine distinct parents from the neighborhood with the
// configured selector, recombines the two fittest and improves the child
// with local search. fitAt reads fitness of a cell (differs between async,
// which sees fresh values, and sync, which sees the frozen generation).
// Returns the child's fitness.
func (e *engine) recombineInto(c int, dst *schedule.State, buf schedule.Schedule, popAt func(int) *schedule.State, fitAt func(int) float64, r *rng.Source) float64 {
	sel := operators.SelectDistinct(e.cfg.Selector, e.cfg.SolutionsToRecombine, e.nb.Of[c], fitAt, r)
	// Two fittest of S.
	p1, p2 := sel[0], sel[1]
	if fitAt(p2) < fitAt(p1) {
		p1, p2 = p2, p1
	}
	for _, s := range sel[2:] {
		switch {
		case fitAt(s) < fitAt(p1):
			p2, p1 = p1, s
		case fitAt(s) < fitAt(p2):
			p2 = s
		}
	}
	e.cfg.Crossover.Cross(popAt(p1).ScheduleView(), popAt(p2).ScheduleView(), buf, r)
	dst.SetSchedule(buf)
	e.cfg.LocalSearch.Improve(dst, e.cfg.Objective, e.cfg.LSIterations, r)
	return e.cfg.Objective.Of(dst)
}

// mutateInto copies cell c into dst, applies the mutation operator and
// local search. Returns the offspring fitness.
func (e *engine) mutateInto(c int, dst *schedule.State, popAt func(int) *schedule.State, r *rng.Source) float64 {
	dst.CopyFrom(popAt(c))
	e.cfg.Mutator.Mutate(dst, r)
	e.cfg.LocalSearch.Improve(dst, e.cfg.Objective, e.cfg.LSIterations, r)
	return e.cfg.Objective.Of(dst)
}

// replace commits offspring dst (fitness f) into cell c when the
// replacement policy allows.
func (e *engine) replace(c int, dst *schedule.State, f float64) {
	if e.cfg.AddOnlyIfBetter && f >= e.fit[c] {
		return
	}
	e.pop[c].CopyFrom(dst)
	e.fit[c] = f
	e.noteIfBest(dst, f)
}

// iterateAsync runs one asynchronous iteration per Algorithm 1: the
// recombination pass followed by the mutation pass, each on its own sweep
// order, with replacements visible immediately. Cancellation (and only
// cancellation — time/iteration bounds stay iteration-granular for
// determinism) is polled per update, since one full iteration of local
// searches can cost seconds on large instances.
func (e *engine) iterateAsync() {
	popAt := func(i int) *schedule.State { return e.pop[i] }
	fitAt := func(i int) float64 { return e.fit[i] }
	for k := 0; k < e.cfg.Recombinations; k++ {
		if e.budget.Cancelled() {
			return
		}
		c := e.recOrd.Next()
		f := e.recombineInto(c, e.scratch, e.child, popAt, fitAt, e.r)
		e.evals++
		e.replace(c, e.scratch, f)
	}
	for k := 0; k < e.cfg.Mutations; k++ {
		if e.budget.Cancelled() {
			return
		}
		c := e.mutOrd.Next()
		f := e.mutateInto(c, e.scratch, popAt, e.r)
		e.evals++
		e.replace(c, e.scratch, f)
	}
}
