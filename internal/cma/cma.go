// Package cma implements the paper's contribution: a Cellular Memetic
// Algorithm (cMA) for batch scheduling of independent jobs on
// heterogeneous grids, following Algorithm 1 of the paper.
//
// The population lives on a toroidal 2-D grid. Each iteration performs
// nb_recombinations recombination updates and nb_mutations mutation
// updates; the two processes walk the grid with independent sweep orders
// (Table 1: FLS for recombination, NRS for mutation). Every offspring is
// improved by a local search method before evaluation and replaces the
// individual at its cell only if strictly better ("add only if better").
//
// Three updating disciplines are provided:
//
//   - Asynchronous sequential (the paper's choice, Workers = 0): updates
//     are applied in sweep order within the iteration, so later cells see
//     earlier replacements. One shared RNG stream, strictly sequential.
//   - Asynchronous block-parallel (Workers >= 1): the grid is partitioned
//     (internal/cell.Partition) and cells are swept in its wave order —
//     a cover of the grid by pairwise non-interacting cell sets. Updates
//     are planned into execution waves, each wave's offspring evaluated
//     concurrently across Workers goroutines from per-update RNG streams,
//     and committed in draw order, so later waves see earlier
//     replacements. Because intra-wave updates touch disjoint
//     neighborhoods, the run is byte-identical for every worker count.
//   - Synchronous: all offspring of an iteration are computed against the
//     frozen current generation and committed together at the end — one
//     big wave of the same executor, equally reproducible for any
//     Workers.
package cma

import (
	"fmt"
	"sync"
	"time"

	"gridcma/internal/cell"
	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/heuristics"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// Config collects every tunable of the cMA. DefaultConfig returns the
// paper's Table 1 values; zero-value fields in a hand-built Config are
// rejected by Validate rather than silently defaulted.
type Config struct {
	Width, Height int // population grid shape (Table 1: 5×5)

	Pattern     cell.Pattern // neighborhood (Table 1: C9)
	RecombOrder cell.Order   // sweep order of the recombination pass (FLS)
	MutOrder    cell.Order   // sweep order of the mutation pass (NRS)

	Recombinations       int // recombination updates per iteration (25)
	Mutations            int // mutation updates per iteration (12)
	SolutionsToRecombine int // |S| in SelectToRecombine (3)

	Selector  operators.Selector  // parent selection (3-Tournament)
	Crossover operators.Crossover // recombination (One-Point)
	Mutator   operators.Mutator   // mutation (Rebalance)

	LocalSearch  localsearch.Method // offspring improvement (LMCTS)
	LSIterations int                // local search budget per offspring (5)

	Objective schedule.Objective // fitness (λ = 0.75)

	// AddOnlyIfBetter controls replacement: if true (the paper's setting)
	// an offspring replaces its cell only when strictly fitter.
	AddOnlyIfBetter bool

	// SeedHeuristic builds individual 0; the rest of the population are
	// perturbed copies. Nil seeds the whole population randomly.
	SeedHeuristic func(*etc.Instance) schedule.Schedule
	// PerturbFraction is the fraction of genes randomised when deriving
	// the initial population from the seed individual (0.3 by default).
	PerturbFraction float64

	// Synchronous switches to generation-synchronous updating.
	Synchronous bool
	// Workers bounds the goroutines evaluating offspring. In asynchronous
	// mode 0 selects the paper-faithful strictly sequential engine (one
	// shared RNG stream), while any value >= 1 selects the block-parallel
	// partitioned engine, whose results depend only on the seed — never on
	// the worker count. In synchronous mode 0 means one goroutine; results
	// are likewise identical for every worker count.
	Workers int
}

// DefaultConfig returns the tuned configuration of Table 1.
func DefaultConfig() Config {
	return Config{
		Width: 5, Height: 5,
		Pattern:              cell.C9,
		RecombOrder:          cell.FLS,
		MutOrder:             cell.NRS,
		Recombinations:       25,
		Mutations:            12,
		SolutionsToRecombine: 3,
		Selector:             operators.NewTournament(3),
		Crossover:            operators.OnePoint{},
		Mutator:              operators.DefaultRebalance,
		LocalSearch:          localsearch.LMCTS{},
		LSIterations:         5,
		Objective:            schedule.DefaultObjective,
		AddOnlyIfBetter:      true,
		SeedHeuristic:        heuristics.LJFRSJFR, // Table 1 "start choice"
		PerturbFraction:      0.3,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("cma: invalid grid %dx%d", c.Width, c.Height)
	case c.Recombinations < 0 || c.Mutations < 0:
		return fmt.Errorf("cma: negative update counts")
	case c.Recombinations == 0 && c.Mutations == 0:
		return fmt.Errorf("cma: no updates per iteration")
	case c.SolutionsToRecombine < 2:
		return fmt.Errorf("cma: SolutionsToRecombine = %d, need >= 2", c.SolutionsToRecombine)
	case c.Selector == nil:
		return fmt.Errorf("cma: nil Selector")
	case c.Crossover == nil:
		return fmt.Errorf("cma: nil Crossover")
	case c.Mutator == nil:
		return fmt.Errorf("cma: nil Mutator")
	case c.LocalSearch == nil:
		return fmt.Errorf("cma: nil LocalSearch")
	case c.LSIterations < 0:
		return fmt.Errorf("cma: negative LSIterations")
	case c.Objective.Lambda < 0 || c.Objective.Lambda > 1:
		return fmt.Errorf("cma: lambda %v outside [0,1]", c.Objective.Lambda)
	case c.PerturbFraction < 0 || c.PerturbFraction > 1:
		return fmt.Errorf("cma: PerturbFraction %v outside [0,1]", c.PerturbFraction)
	case c.Workers < 0:
		return fmt.Errorf("cma: negative Workers")
	}
	return nil
}

// Scheduler is a reusable cMA instance bound to a configuration.
type Scheduler struct {
	cfg Config
}

// New returns a Scheduler after validating cfg. A nil SeedHeuristic means
// a fully random initial population; DefaultConfig seeds with LJFR-SJFR as
// the paper does.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Name identifies the algorithm in results.
func (s *Scheduler) Name() string {
	switch {
	case s.cfg.Synchronous:
		return "cMA-sync"
	case s.cfg.Workers > 0:
		return "cMA-par"
	default:
		return "cMA"
	}
}

// Run executes the cMA on instance in with the given budget and RNG seed,
// reporting progress to obs (which may be nil).
func (s *Scheduler) Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result {
	return s.RunPooled(in, budget, seed, obs, nil)
}

// RunPooled is Run with a caller-supplied scratch pool (it implements
// runner.PooledScheduler). The engine draws its offspring workspaces
// from pool and returns them when the run finishes, so consecutive runs
// on one instance — a batch sweep, a seed ladder — reuse the same
// scratch States instead of rebuilding them. A nil pool, or one bound to
// a different instance, falls back to a private pool. Sharing never
// affects results: scratches are always re-pointed (SetSchedule /
// CopyFrom) before being read.
func (s *Scheduler) RunPooled(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result {
	if !budget.Bounded() {
		panic("cma: unbounded budget")
	}
	if pool != nil && pool.Instance() != in {
		pool = nil
	}
	e := newEngine(in, s.cfg, seed, nil, nil, budget, pool)
	return e.run(budget, obs, s.Name())
}

// RunWithPopulation is Run, but the mesh is seeded from initial (cloned;
// truncated or padded with perturbed copies of its first element as
// needed) and the final population is returned alongside the result. It
// is the migration hook of the coarse-grained island model
// (internal/island): islands export their populations at segment
// boundaries, exchange individuals, and resume.
func (s *Scheduler) RunWithPopulation(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, initial []schedule.Schedule) (run.Result, []schedule.Schedule) {
	return s.RunWithPopulationPooled(in, budget, seed, obs, initial, nil)
}

// RunWithPopulationPooled is RunWithPopulation drawing offspring
// workspaces from a caller-supplied pool, under the same advisory
// contract as RunPooled — the island model shares one pool across its
// concurrently running segment sub-runs (the pool is safe for that).
func (s *Scheduler) RunWithPopulationPooled(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, initial []schedule.Schedule, pool *evalpool.Pool) (run.Result, []schedule.Schedule) {
	if !budget.Bounded() {
		panic("cma: unbounded budget")
	}
	if pool != nil && pool.Instance() != in {
		pool = nil
	}
	e := newEngine(in, s.cfg, seed, initial, nil, budget, pool)
	res := e.run(budget, obs, s.Name())
	final := make([]schedule.Schedule, len(e.pop))
	for i, st := range e.pop {
		final[i] = st.Schedule()
	}
	return res, final
}

// RunWithStatesPooled is the cache-aware sibling of
// RunWithPopulationPooled: instead of rebuilding every cell's State from
// a schedule (wholesale-invalidating its scan caches), the engine adopts
// the caller's live States as the mesh — warm prefix sums, tournament
// trees and ScanCache entries included — and returns the same slice,
// still owned by the caller, for the next segment. Everything else is
// identical to the schedule path: local search improves each individual
// before the first evaluation, consuming exactly the same RNG draws, so
// a segment resumed from states is bit-identical to one resumed from the
// equivalent schedules (pinned by the island differential tests).
//
// states must be nil (fresh mesh, like initial=nil) or hold exactly
// Width*Height entries on in.
func (s *Scheduler) RunWithStatesPooled(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, states []*schedule.State, pool *evalpool.Pool) (run.Result, []*schedule.State) {
	if !budget.Bounded() {
		panic("cma: unbounded budget")
	}
	if pool != nil && pool.Instance() != in {
		pool = nil
	}
	if states != nil && len(states) != s.cfg.Width*s.cfg.Height {
		panic("cma: RunWithStatesPooled: state count does not match the mesh")
	}
	e := newEngine(in, s.cfg, seed, nil, states, budget, pool)
	res := e.run(budget, obs, s.Name())
	return res, e.pop
}

// CellComponents exposes the cellular plumbing of a configuration — the
// population size, per-cell neighbor lists and the two sweep orders — so
// extension algorithms (e.g. the multi-objective variant in
// internal/pareto) can share the exact population structure without
// depending on the engine's internals. It consumes two values from r.
func CellComponents(cfg Config, r *rng.Source) (size int, neighborhoods [][]int, recOrder, mutOrder cell.SweepOrder) {
	g := cell.NewGrid(cfg.Width, cfg.Height)
	nb := cell.NewNeighborhood(g, cfg.Pattern)
	n := g.Size()
	return n, nb.Of, cell.NewSweep(cfg.RecombOrder, n, r.Split()), cell.NewSweep(cfg.MutOrder, n, r.Split())
}

// engine is the mutable state of one run.
type engine struct {
	in     *etc.Instance
	cfg    Config
	r      *rng.Source
	seed   uint64
	budget run.Budget // for cancellation polling inside expensive phases
	grid   cell.Grid
	nb     *cell.Neighborhood
	pop    []*schedule.State
	fit    []float64
	adopt  []*schedule.State // caller-owned warm states adopted as the mesh
	recOrd cell.SweepOrder
	mutOrd cell.SweepOrder

	// allocation-free evaluation plumbing (internal/evalpool)
	pool    *evalpool.Pool
	scratch *evalpool.Scratch // sequential-path offspring workspace
	evals   int64

	// partitioned parallel executor state (par.go); nil/empty for the
	// sequential engine
	part      *cell.Partition
	draws     []draw
	drawCells []int
	waves     [][]int
	frozenFit []float64

	// persistent worker pool (par.go): started lazily at the first
	// parallel batch, stopped when run returns
	tasks    chan int
	taskWG   sync.WaitGroup
	taskExec func(int)

	// best-ever (the population best is monotone under add-if-better,
	// but we track explicitly to also support AddOnlyIfBetter=false).
	best evalpool.Best
}

func newEngine(in *etc.Instance, cfg Config, seed uint64, initial []schedule.Schedule, adopt []*schedule.State, budget run.Budget, pool *evalpool.Pool) *engine {
	if pool == nil {
		pool = evalpool.New(in)
	}
	e := &engine{
		in:     in,
		cfg:    cfg,
		r:      rng.New(seed),
		seed:   seed,
		grid:   cell.NewGrid(cfg.Width, cfg.Height),
		budget: budget,
		pool:   pool,
		adopt:  adopt,
	}
	e.nb = cell.NewNeighborhood(e.grid, cfg.Pattern)
	n := e.grid.Size()
	e.pop = make([]*schedule.State, n)
	e.fit = make([]float64, n)
	if !cfg.Synchronous && cfg.Workers > 0 {
		// Block-parallel engine: both passes sweep the partition's wave
		// order, so consecutive draws form wide independent waves.
		e.part = cell.NewPartition(e.grid, cfg.Pattern)
		ord := e.part.Order()
		e.recOrd = cell.NewPermSweep("WAVE", ord)
		e.mutOrd = cell.NewPermSweep("WAVE", append([]int(nil), ord...))
	} else {
		e.recOrd = cell.NewSweep(cfg.RecombOrder, n, e.r.Split())
		e.mutOrd = cell.NewSweep(cfg.MutOrder, n, e.r.Split())
	}

	e.initPopulation(initial)
	return e
}

// workers returns the effective worker count of the parallel paths.
func (e *engine) workers() int {
	if e.cfg.Workers < 1 {
		return 1
	}
	return e.cfg.Workers
}

// initPopulation builds the initial mesh. With an explicit initial
// population (migration resume), individuals are cloned from it, padding
// with perturbed copies of its first element when it is short. Otherwise
// the mesh is the seed heuristic individual plus perturbed copies (or
// all-random when no seed heuristic). In every case — per Algorithm 1 —
// local search improves each individual before the first evaluation.
//
// With Workers >= 1 the per-cell work (perturbation and local search)
// draws from per-cell RNG streams and is fanned across the workers; the
// result is identical for every worker count. Workers == 0 keeps the
// legacy strictly sequential initialisation on the shared stream.
func (e *engine) initPopulation(initial []schedule.Schedule) {
	var base schedule.Schedule
	if e.adopt != nil {
		// Adopted warm states fill every cell; no seed individual is
		// needed (and none of the paths below consumes RNG for one, so
		// the streams stay aligned with the schedule-resume path).
	} else if len(initial) > 0 {
		base = initial[0]
	} else if e.cfg.SeedHeuristic != nil {
		base = e.cfg.SeedHeuristic(e.in)
	}
	frac := e.cfg.PerturbFraction
	if frac == 0 {
		frac = 0.3
	}
	if e.cfg.Workers >= 1 {
		e.initCells(initial, base, frac)
	} else {
		for i := range e.pop {
			e.initCell(i, initial, base, frac, e.r)
		}
	}
	e.evals += int64(len(e.pop))
	e.scratch = e.pool.Get()
	e.refreshBest()
}

// initCell builds, improves and evaluates the individual of one cell.
// Initialisation runs a local search per individual — seconds of work on
// large instances — so cancellation is polled here too; a cancelled
// engine still leaves every cell fully evaluated.
func (e *engine) initCell(i int, initial []schedule.Schedule, base schedule.Schedule, frac float64, r *rng.Source) {
	if e.adopt != nil {
		// Cache-aware resume: the caller's live State becomes the cell,
		// warm caches and all. No construction, no RNG draws — exactly
		// like the i < len(initial) clone path below.
		e.pop[i] = e.adopt[i]
	} else {
		var s schedule.Schedule
		switch {
		case i < len(initial):
			s = initial[i].Clone()
		case base != nil && i == 0:
			s = base.Clone()
		case base != nil:
			s = base.Clone()
			schedule.Perturb(s, e.in, r, frac)
		default:
			s = schedule.NewRandom(e.in, r)
		}
		e.pop[i] = schedule.NewState(e.in, s)
	}
	if !e.budget.Cancelled() {
		e.cfg.LocalSearch.Improve(e.pop[i], e.cfg.Objective, e.cfg.LSIterations, r)
	}
	e.fit[i] = e.cfg.Objective.Of(e.pop[i])
}

func (e *engine) refreshBest() {
	for i, f := range e.fit {
		if !e.best.Ok() || f < e.best.Fitness() {
			e.best.Note(e.pop[i], f)
		}
	}
}

// releaseScratches returns every checked-out workspace to the pool, so a
// shared pool (RunPooled) hands them to the next run on the instance.
func (e *engine) releaseScratches() {
	e.pool.Put(e.scratch)
	e.scratch = nil
	for k := range e.draws {
		e.pool.Put(e.draws[k].scratch)
		e.draws[k].scratch = nil
	}
	e.draws = nil
}

func (e *engine) run(budget run.Budget, obs run.Observer, name string) run.Result {
	defer e.stopWorkers()
	defer e.releaseScratches()
	start := time.Now()
	iter := 0
	emit := func() {
		if obs != nil {
			obs(run.Progress{
				Elapsed:   time.Since(start),
				Iteration: iter,
				Fitness:   e.best.Fitness(),
				Makespan:  e.best.Makespan(),
				Flowtime:  e.best.Flowtime(),
			})
		}
	}
	emit()
	for !budget.Done(iter, start) {
		switch {
		case e.cfg.Synchronous:
			e.iterateBatch(iter, true)
		case e.cfg.Workers > 0:
			e.iterateBatch(iter, false)
		default:
			e.iterateAsync()
		}
		iter++
		emit()
	}
	return run.Result{
		Best:       e.best.Schedule(),
		Fitness:    e.best.Fitness(),
		Makespan:   e.best.Makespan(),
		Flowtime:   e.best.Flowtime(),
		Iterations: iter,
		Evals:      e.evals,
		Elapsed:    time.Since(start),
		Algorithm:  name,
	}
}

// recombineInto computes one recombination offspring for cell c into the
// scratch workspace s (Propose: crossover into s.Buf; Improve: local
// search on s.St). It selects SolutionsToRecombine distinct parents from
// the neighborhood with the configured selector and recombines the two
// fittest. fitAt reads fitness of a cell (differs between async, which
// sees fresh values, and sync, which sees the frozen generation). Returns
// the child's fitness.
func (e *engine) recombineInto(c int, s *evalpool.Scratch, popAt func(int) *schedule.State, fitAt func(int) float64, r *rng.Source) float64 {
	sel := operators.SelectDistinctInto(e.cfg.Selector, e.cfg.SolutionsToRecombine, e.nb.Of[c], fitAt, r, s.Idx)
	s.Idx = sel
	// Two fittest of S.
	p1, p2 := sel[0], sel[1]
	if fitAt(p2) < fitAt(p1) {
		p1, p2 = p2, p1
	}
	for _, x := range sel[2:] {
		switch {
		case fitAt(x) < fitAt(p1):
			p2, p1 = p1, x
		case fitAt(x) < fitAt(p2):
			p2 = x
		}
	}
	e.cfg.Crossover.Cross(popAt(p1).ScheduleView(), popAt(p2).ScheduleView(), s.Buf, r)
	s.St.SetSchedule(s.Buf)
	e.cfg.LocalSearch.Improve(s.St, e.cfg.Objective, e.cfg.LSIterations, r)
	return e.cfg.Objective.Of(s.St)
}

// mutateInto copies cell c into the scratch workspace, applies the
// mutation operator and local search. Returns the offspring fitness.
func (e *engine) mutateInto(c int, s *evalpool.Scratch, popAt func(int) *schedule.State, r *rng.Source) float64 {
	s.St.CopyFrom(popAt(c))
	e.cfg.Mutator.Mutate(s.St, r)
	e.cfg.LocalSearch.Improve(s.St, e.cfg.Objective, e.cfg.LSIterations, r)
	return e.cfg.Objective.Of(s.St)
}

// replace commits offspring dst (fitness f) into cell c when the
// replacement policy allows (Commit of the offspring pipeline).
func (e *engine) replace(c int, dst *schedule.State, f float64) {
	if e.cfg.AddOnlyIfBetter && f >= e.fit[c] {
		return
	}
	e.pop[c].CopyFrom(dst)
	e.fit[c] = f
	e.best.Note(dst, f)
}

// iterateAsync runs one asynchronous iteration per Algorithm 1: the
// recombination pass followed by the mutation pass, each on its own sweep
// order, with replacements visible immediately. Cancellation (and only
// cancellation — time/iteration bounds stay iteration-granular for
// determinism) is polled per update, since one full iteration of local
// searches can cost seconds on large instances.
func (e *engine) iterateAsync() {
	popAt := func(i int) *schedule.State { return e.pop[i] }
	fitAt := func(i int) float64 { return e.fit[i] }
	for k := 0; k < e.cfg.Recombinations; k++ {
		if e.budget.Cancelled() {
			return
		}
		c := e.recOrd.Next()
		f := e.recombineInto(c, e.scratch, popAt, fitAt, e.r)
		e.evals++
		e.replace(c, e.scratch.St, f)
	}
	for k := 0; k < e.cfg.Mutations; k++ {
		if e.budget.Cancelled() {
			return
		}
		c := e.mutOrd.Next()
		f := e.mutateInto(c, e.scratch, popAt, e.r)
		e.evals++
		e.replace(c, e.scratch.St, f)
	}
}
