package cma

import (
	"testing"
	"time"

	"gridcma/internal/cell"
	"gridcma/internal/etc"
	"gridcma/internal/heuristics"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func testInstance(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 128, Machs: 8})
}

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.LSIterations = 2
	cfg.LocalSearch = localsearch.SampledLMCTS{Samples: 16}
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Recombinations = -1 },
		func(c *Config) { c.Recombinations = 0; c.Mutations = 0 },
		func(c *Config) { c.SolutionsToRecombine = 1 },
		func(c *Config) { c.Selector = nil },
		func(c *Config) { c.Crossover = nil },
		func(c *Config) { c.Mutator = nil },
		func(c *Config) { c.LocalSearch = nil },
		func(c *Config) { c.LSIterations = -1 },
		func(c *Config) { c.Objective.Lambda = 1.5 },
		func(c *Config) { c.PerturbFraction = 2 },
		func(c *Config) { c.Workers = -1 },
	}
	for i, f := range mutate {
		cfg := DefaultConfig()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestRunImprovesOnSeedHeuristic(t *testing.T) {
	in := testInstance(1)
	s, err := New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(in, run.Budget{MaxIterations: 30}, 42, nil)
	seed := schedule.NewState(in, heuristics.LJFRSJFR(in))
	seedFit := schedule.DefaultObjective.Of(seed)
	if res.Fitness >= seedFit {
		t.Errorf("cMA fitness %v did not improve on LJFR-SJFR %v", res.Fitness, seedFit)
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 30 {
		t.Errorf("iterations = %d, want 30", res.Iterations)
	}
	if res.Evals <= 25 {
		t.Errorf("evals = %d suspiciously low", res.Evals)
	}
	if res.Algorithm != "cMA" {
		t.Errorf("algorithm %q", res.Algorithm)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	in := testInstance(2)
	s, _ := New(quickCfg())
	a := s.Run(in, run.Budget{MaxIterations: 10}, 7, nil)
	b := s.Run(in, run.Budget{MaxIterations: 10}, 7, nil)
	if !a.Best.Equal(b.Best) || a.Fitness != b.Fitness {
		t.Fatal("same seed produced different results")
	}
	c := s.Run(in, run.Budget{MaxIterations: 10}, 8, nil)
	if a.Best.Equal(c.Best) {
		t.Log("warning: different seeds produced identical schedules (possible but unlikely)")
	}
}

func TestRunRespectsTimeBudget(t *testing.T) {
	in := testInstance(3)
	s, _ := New(quickCfg())
	start := time.Now()
	res := s.Run(in, run.Budget{MaxTime: 150 * time.Millisecond}, 1, nil)
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("run took %v, budget was 150ms", elapsed)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations completed")
	}
}

func TestUnboundedBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s, _ := New(quickCfg())
	s.Run(testInstance(4), run.Budget{}, 1, nil)
}

func TestObserverSeesMonotoneBest(t *testing.T) {
	in := testInstance(5)
	s, _ := New(quickCfg())
	var fits []float64
	s.Run(in, run.Budget{MaxIterations: 20}, 3, func(p run.Progress) {
		fits = append(fits, p.Fitness)
	})
	if len(fits) != 21 { // initial emit + one per iteration
		t.Fatalf("got %d observations, want 21", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i] > fits[i-1]+1e-9 {
			t.Fatalf("best fitness regressed at %d: %v -> %v", i, fits[i-1], fits[i])
		}
	}
}

func TestRandomInitWhenNoSeedHeuristic(t *testing.T) {
	cfg := quickCfg()
	cfg.SeedHeuristic = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(testInstance(6), run.Budget{MaxIterations: 5}, 1, nil)
	if res.Best == nil {
		t.Fatal("no result")
	}
}

func TestSynchronousMatchesConfigAndRuns(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		cfg := quickCfg()
		cfg.Synchronous = true
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := testInstance(7)
		res := s.Run(in, run.Budget{MaxIterations: 10}, 5, nil)
		if err := res.Best.Validate(in); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Algorithm != "cMA-sync" {
			t.Errorf("algorithm %q", res.Algorithm)
		}
	}
}

func TestSynchronousDeterministicAcrossWorkerCounts(t *testing.T) {
	// The defining property of the parallel sync engine: results depend
	// only on the seed, not on the number of workers.
	in := testInstance(8)
	results := make([]run.Result, 0, 3)
	for _, workers := range []int{1, 2, 8} {
		cfg := quickCfg()
		cfg.Synchronous = true
		cfg.Workers = workers
		s, _ := New(cfg)
		results = append(results, s.Run(in, run.Budget{MaxIterations: 8}, 99, nil))
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Best.Equal(results[i].Best) || results[0].Fitness != results[i].Fitness {
			t.Fatalf("worker count changed the result: %v vs %v", results[0].Fitness, results[i].Fitness)
		}
	}
}

func TestAsyncBeatsRandomSearchClearly(t *testing.T) {
	// cMA with 15 iterations should clearly beat pure random sampling
	// with a comparable number of evaluations.
	in := testInstance(9)
	s, _ := New(quickCfg())
	res := s.Run(in, run.Budget{MaxIterations: 15}, 11, nil)

	src := rng.New(11)
	r := schedule.NewState(in, schedule.NewRandom(in, src))
	bestRand := schedule.DefaultObjective.Of(r)
	for k := 0; k < int(res.Evals); k++ {
		r.SetSchedule(schedule.NewRandom(in, src))
		if f := schedule.DefaultObjective.Of(r); f < bestRand {
			bestRand = f
		}
	}
	if res.Fitness >= bestRand {
		t.Errorf("cMA %v not better than random search %v", res.Fitness, bestRand)
	}
}

func TestAllPatternsAndOrdersRun(t *testing.T) {
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.Low, MachineHet: etc.Low},
		0, etc.GenerateOptions{Seed: 10, Jobs: 64, Machs: 4})
	for _, p := range []cell.Pattern{cell.L5, cell.L9, cell.C9, cell.C13, cell.Panmictic} {
		for _, o := range []cell.Order{cell.FLS, cell.FRS, cell.NRS} {
			cfg := quickCfg()
			cfg.Pattern = p
			cfg.RecombOrder = o
			cfg.MutOrder = o
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run(in, run.Budget{MaxIterations: 3}, 1, nil)
			if err := res.Best.Validate(in); err != nil {
				t.Fatalf("%v/%v: %v", p, o, err)
			}
		}
	}
}

func TestAddOnlyIfBetterFalseStillTracksBest(t *testing.T) {
	cfg := quickCfg()
	cfg.AddOnlyIfBetter = false
	s, _ := New(cfg)
	in := testInstance(11)
	var fits []float64
	res := s.Run(in, run.Budget{MaxIterations: 15}, 2, func(p run.Progress) {
		fits = append(fits, p.Fitness)
	})
	for i := 1; i < len(fits); i++ {
		if fits[i] > fits[i-1]+1e-9 {
			t.Fatalf("best-ever must be monotone even without elitist replacement")
		}
	}
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestTunedOperatorsArePaperChoices(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Width*cfg.Height != 25 {
		t.Error("population must be 5×5 = 25")
	}
	if cfg.Pattern != cell.C9 {
		t.Error("pattern must be C9")
	}
	if cfg.RecombOrder != cell.FLS || cfg.MutOrder != cell.NRS {
		t.Error("orders must be FLS / NRS")
	}
	if cfg.Recombinations != 25 || cfg.Mutations != 12 {
		t.Error("update counts must be 25 / 12")
	}
	if sel, ok := cfg.Selector.(operators.Tournament); !ok || sel.N != 3 {
		t.Error("selector must be 3-tournament")
	}
	if cfg.Objective.Lambda != 0.75 {
		t.Error("lambda must be 0.75")
	}
	if cfg.LSIterations != 5 {
		t.Error("LS iterations must be 5")
	}
	if _, ok := cfg.LocalSearch.(localsearch.LMCTS); !ok {
		t.Error("local search must be LMCTS")
	}
}
