package eventlog

import (
	"io"
	"testing"
)

// BenchmarkAppendEventCRC guards the CRC encode path: a steady-state
// Append — canonical encoding, checksum and buffered write — must not
// allocate. CI runs this with -benchtime 1x and fails on allocs/op > 0,
// like the probe/sweep/scan guards.
func BenchmarkAppendEventCRC(b *testing.B) {
	w := NewWriter(io.Discard)
	e := Event{Type: Submit, Job: 1, Base: 3.511971, T: 1.25}
	// Warm the scratch and bufio buffers so the measured loop is the
	// steady state a long-running daemon sits in.
	if _, err := w.Append(e); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}
