// Package eventlog defines the shared trace schema of the online
// scheduling stack: the append-only event stream a gridd daemon applies
// (and persists) and the export format of the gridsim discrete-event
// simulator, so a recorded simulation replays deterministically through
// the daemon and a daemon incident replays from a snapshot plus its log.
//
// The log is JSON lines — one event per line, in application order, each
// stamped with a strictly increasing sequence number. Events carry only
// the inputs of the scheduler's deterministic state transition (job ids
// and workloads, machine ids and speeds); the timestamp field is
// informational (simulated or wall-clock time of the producer) and never
// feeds a transition, which is what makes "same snapshot + same log →
// bit-identical trajectory" a contract rather than an aspiration.
//
// # Durability format
//
// Every record written by a Writer carries a trailing "crc" field: the
// IEEE CRC-32 of the record's canonical encoding with the crc field
// itself excluded. The encoding is canonical because the Writer emits it
// byte-deterministically (fixed field order, shortest float form), so a
// reader can re-encode a parsed record and compare checksums without
// storing the raw line. Records without a crc field (logs written before
// it existed) are tolerated and skip verification.
//
// Corruption handling follows the torn-write rule of every
// write-ahead log: a record that fails to parse or checksum with
// nothing but it at the end of the log is a torn final write — Read
// returns a *TornTailError carrying the clean prefix and the byte
// offset to truncate at, and recovery continues from the prefix. The
// same failure with valid data after it cannot be a torn write; it is
// mid-log corruption and stays a hard error, because silently dropping
// interior events would break the replay contract far more subtly than
// refusing to start.
package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
)

// Type enumerates the event vocabulary.
type Type string

// The six event kinds of the online scheduling stack.
const (
	// Submit introduces one job: Job (id assigned by the producer,
	// 1-based) and Base (the per-job workload factor of the ETC model).
	Submit Type = "submit"
	// Join brings machine Mach (1-based id, never reused) online with
	// slowness multiplier Mult (≥ 1; 1 is fastest).
	Join Type = "join"
	// Leave takes machine Mach offline gracefully; its jobs are re-pooled
	// for the next admission.
	Leave Type = "leave"
	// Fail is Leave under failure semantics: same transition, but the
	// re-pooled jobs count as restarts.
	Fail Type = "fail"
	// Complete reports job Job finished. Mach, when set, names the
	// machine the producer ran it on — advisory only, since a replaying
	// consumer schedules independently and may have placed the job
	// elsewhere.
	Complete Type = "complete"
	// Admit closes an admission window: the scheduler places every
	// pending job and runs its warm-start improvement pass.
	Admit Type = "admit"
)

// Event is one line of the log. Zero-valued fields are omitted from the
// encoding; Seq is assigned by the Writer.
type Event struct {
	Seq  uint64  `json:"seq,omitempty"`
	T    float64 `json:"t,omitempty"` // producer time, informational
	Type Type    `json:"type"`
	Job  uint64  `json:"job,omitempty"`
	Base float64 `json:"base,omitempty"`
	Mach uint64  `json:"mach,omitempty"`
	Mult float64 `json:"mult,omitempty"`
	// Crc is the IEEE CRC-32 of the record's canonical encoding with this
	// field excluded, stamped by the Writer. Zero means absent (old logs,
	// or hand-written events) and skips verification on read.
	Crc uint32 `json:"crc,omitempty"`
}

// Validate reports the first structural error of e: unknown type, or a
// missing/invalid field for the type. It does not (and cannot) check
// consistency against scheduler state — that is the consumer's job.
func (e Event) Validate() error {
	// The comparisons are written !(x >= 1) so NaN payloads — which would
	// also break the JSON encoding — are rejected alongside out-of-range
	// ones; infinities are rejected explicitly.
	switch e.Type {
	case Submit:
		if e.Job == 0 {
			return fmt.Errorf("eventlog: submit without job id")
		}
		if !(e.Base >= 1) || math.IsInf(e.Base, 0) {
			return fmt.Errorf("eventlog: submit job %d base %v, want finite >= 1", e.Job, e.Base)
		}
	case Join:
		if e.Mach == 0 {
			return fmt.Errorf("eventlog: join without machine id")
		}
		if !(e.Mult >= 1) || math.IsInf(e.Mult, 0) {
			return fmt.Errorf("eventlog: join machine %d mult %v, want finite >= 1", e.Mach, e.Mult)
		}
	case Leave, Fail:
		if e.Mach == 0 {
			return fmt.Errorf("eventlog: %s without machine id", e.Type)
		}
	case Complete:
		if e.Job == 0 {
			return fmt.Errorf("eventlog: complete without job id")
		}
	case Admit:
		// no payload
	default:
		return fmt.Errorf("eventlog: unknown event type %q", e.Type)
	}
	if math.IsNaN(e.T) || math.IsInf(e.T, 0) {
		return fmt.Errorf("eventlog: %s with non-finite timestamp %v", e.Type, e.T)
	}
	return nil
}

// appendJSON appends the canonical JSON encoding of e — fixed field
// order, shortest round-tripping float form, crc excluded — to b and
// returns the extended slice. This is the byte stream the crc field
// covers; it allocates only when b's capacity is exceeded.
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, '{')
	if e.Seq != 0 {
		b = append(b, `"seq":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
		b = append(b, ',')
	}
	if e.T != 0 {
		b = append(b, `"t":`...)
		b = strconv.AppendFloat(b, e.T, 'g', -1, 64)
		b = append(b, ',')
	}
	b = append(b, `"type":"`...)
	b = append(b, e.Type...)
	b = append(b, '"')
	if e.Job != 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendUint(b, e.Job, 10)
	}
	if e.Base != 0 {
		b = append(b, `,"base":`...)
		b = strconv.AppendFloat(b, e.Base, 'g', -1, 64)
	}
	if e.Mach != 0 {
		b = append(b, `,"mach":`...)
		b = strconv.AppendUint(b, e.Mach, 10)
	}
	if e.Mult != 0 {
		b = append(b, `,"mult":`...)
		b = strconv.AppendFloat(b, e.Mult, 'g', -1, 64)
	}
	return append(b, '}')
}

// checksum is the CRC the record's crc field must carry: the IEEE
// CRC-32 of the canonical encoding with Crc zeroed.
func (e Event) checksum(scratch []byte) (uint32, []byte) {
	e.Crc = 0
	scratch = e.appendJSON(scratch[:0])
	return crc32.ChecksumIEEE(scratch), scratch
}

// Writer appends events to a log, assigning sequence numbers and
// stamping each record with its CRC.
type Writer struct {
	bw      *bufio.Writer
	seq     uint64
	scratch []byte
}

// NewWriter wraps w as an event log writer starting at sequence 1.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// NewWriterAt wraps w continuing an existing log whose last applied
// sequence number is seq — the restore-from-snapshot path.
func NewWriterAt(w io.Writer, seq uint64) *Writer {
	return &Writer{bw: bufio.NewWriter(w), seq: seq}
}

// Append validates e, stamps the next sequence number and the record
// CRC, and writes one log line. The stamped event is returned so the
// caller can apply exactly what was persisted. Steady-state appends do
// not allocate: the encoding runs through a reused scratch buffer.
func (w *Writer) Append(e Event) (Event, error) {
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	w.seq++
	e.Seq = w.seq
	e.Crc = 0
	b := e.appendJSON(w.scratch[:0])
	e.Crc = crc32.ChecksumIEEE(b)
	// Splice the crc in as the trailing field: the checksum covers every
	// byte before it.
	b = b[:len(b)-1]
	b = append(b, `,"crc":`...)
	b = strconv.AppendUint(b, uint64(e.Crc), 10)
	b = append(b, '}', '\n')
	w.scratch = b[:0]
	if _, err := w.bw.Write(b); err != nil {
		return Event{}, err
	}
	return e, nil
}

// Seq returns the sequence number of the last appended event.
func (w *Writer) Seq() uint64 { return w.seq }

// Flush drains the write buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// TornTailError reports a log whose final record is torn: a partial or
// corrupt last write with nothing after it. It carries the clean prefix
// and the byte offset the log should be truncated at before appending
// resumes. Every earlier record parsed, checksummed and sequenced
// cleanly — the torn record is the only loss, and it was never
// acknowledged as durable by a Writer whose flush did not return.
type TornTailError struct {
	Events []Event // the clean prefix, in log order
	Offset int64   // byte offset where the torn record starts
	Line   int     // 1-based line number of the torn record
	Err    error   // what was wrong with the tail
}

func (e *TornTailError) Error() string {
	return fmt.Sprintf("eventlog: torn tail at line %d (byte %d) after %d clean events: %v",
		e.Line, e.Offset, len(e.Events), e.Err)
}

func (e *TornTailError) Unwrap() error { return e.Err }

// parseRecord decodes and verifies one log line. seqHard reports
// whether a failure is a sequencing violation on a structurally sound
// record — never attributable to a torn write, so always a hard error.
func parseRecord(raw []byte, last uint64, scratch []byte) (e Event, scratchOut []byte, seqHard bool, err error) {
	scratchOut = scratch
	if err = json.Unmarshal(raw, &e); err != nil {
		return
	}
	if err = e.Validate(); err != nil {
		return
	}
	if e.Crc != 0 {
		var want uint32
		want, scratchOut = e.checksum(scratch)
		if want != e.Crc {
			err = fmt.Errorf("crc mismatch: record %#x, computed %#x", e.Crc, want)
			return
		}
	}
	if e.Seq <= last {
		// A complete, checksummed record with a non-advancing sequence
		// number is producer corruption, not a torn write.
		seqHard = true
		err = fmt.Errorf("sequence %d not after %d", e.Seq, last)
	}
	return
}

// Read parses a whole log. Events must be valid, checksum clean (when a
// crc is present) and strictly increasing in sequence; blank lines are
// skipped. A corrupt or partial final record returns a *TornTailError
// carrying the clean prefix; corruption anywhere before the end is a
// hard error.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var out []Event
	var scratch []byte
	var last uint64
	var off int64
	line := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, rerr
		}
		if len(raw) > 0 {
			line++
			recStart := off
			off += int64(len(raw))
			rec := bytes.TrimRight(raw, "\r\n")
			if len(rec) > 0 {
				e, s, seqHard, perr := parseRecord(rec, last, scratch)
				scratch = s
				if perr != nil {
					if !seqHard && tailIsEmpty(br, rerr) {
						return out, &TornTailError{Events: out, Offset: recStart, Line: line, Err: perr}
					}
					return nil, fmt.Errorf("eventlog: line %d: %v", line, perr)
				}
				last = e.Seq
				out = append(out, e)
			}
		}
		if rerr == io.EOF {
			return out, nil
		}
	}
}

// tailIsEmpty reports whether nothing but whitespace follows the record
// that just failed — the condition under which the failure is a torn
// final write rather than mid-log corruption. rerr is the read error of
// the failed record's own line (io.EOF when the line was the
// unterminated end of the file).
func tailIsEmpty(br *bufio.Reader, rerr error) bool {
	if rerr == io.EOF {
		return true
	}
	for {
		b, err := br.ReadByte()
		if err != nil {
			return true
		}
		switch b {
		case '\n', '\r', ' ', '\t':
		default:
			return false
		}
	}
}

// Recover reads the log file at path, applying the torn-write rule in
// place: a torn final record is truncated off the file (so appends can
// resume cleanly after it) and the clean prefix is returned with
// torn=true. A missing file is an empty log. Mid-log corruption is
// returned as a hard error with the file untouched.
//
// A crash can also tear off exactly the final record's newline — the
// record parses and checksums clean but the file is unterminated, and a
// blind append would concatenate the next record onto its line. Recover
// repairs that case by appending the terminator; the record is kept (it
// persisted in full) and torn stays false.
func Recover(path string) (events []Event, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	events, err = Read(f)
	unterminated := false
	if st, serr := f.Stat(); serr == nil && st.Size() > 0 {
		var tail [1]byte
		if _, rerr := f.ReadAt(tail[:], st.Size()-1); rerr == nil && tail[0] != '\n' {
			unterminated = true
		}
	}
	f.Close()
	var tte *TornTailError
	if errors.As(err, &tte) {
		if terr := os.Truncate(path, tte.Offset); terr != nil {
			return nil, false, fmt.Errorf("eventlog: truncating torn tail of %s at %d: %v", path, tte.Offset, terr)
		}
		return tte.Events, true, nil
	}
	if err == nil && unterminated {
		af, aerr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if aerr != nil {
			return nil, false, fmt.Errorf("eventlog: terminating unterminated tail of %s: %v", path, aerr)
		}
		_, aerr = af.Write([]byte{'\n'})
		if cerr := af.Close(); aerr == nil {
			aerr = cerr
		}
		if aerr != nil {
			return nil, false, fmt.Errorf("eventlog: terminating unterminated tail of %s: %v", path, aerr)
		}
	}
	return events, false, err
}
