// Package eventlog defines the shared trace schema of the online
// scheduling stack: the append-only event stream a gridd daemon applies
// (and persists) and the export format of the gridsim discrete-event
// simulator, so a recorded simulation replays deterministically through
// the daemon and a daemon incident replays from a snapshot plus its log.
//
// The log is JSON lines — one event per line, in application order, each
// stamped with a strictly increasing sequence number. Events carry only
// the inputs of the scheduler's deterministic state transition (job ids
// and workloads, machine ids and speeds); the timestamp field is
// informational (simulated or wall-clock time of the producer) and never
// feeds a transition, which is what makes "same snapshot + same log →
// bit-identical trajectory" a contract rather than an aspiration.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Type enumerates the event vocabulary.
type Type string

// The six event kinds of the online scheduling stack.
const (
	// Submit introduces one job: Job (id assigned by the producer,
	// 1-based) and Base (the per-job workload factor of the ETC model).
	Submit Type = "submit"
	// Join brings machine Mach (1-based id, never reused) online with
	// slowness multiplier Mult (≥ 1; 1 is fastest).
	Join Type = "join"
	// Leave takes machine Mach offline gracefully; its jobs are re-pooled
	// for the next admission.
	Leave Type = "leave"
	// Fail is Leave under failure semantics: same transition, but the
	// re-pooled jobs count as restarts.
	Fail Type = "fail"
	// Complete reports job Job finished. Mach, when set, names the
	// machine the producer ran it on — advisory only, since a replaying
	// consumer schedules independently and may have placed the job
	// elsewhere.
	Complete Type = "complete"
	// Admit closes an admission window: the scheduler places every
	// pending job and runs its warm-start improvement pass.
	Admit Type = "admit"
)

// Event is one line of the log. Zero-valued fields are omitted from the
// encoding; Seq is assigned by the Writer.
type Event struct {
	Seq  uint64  `json:"seq,omitempty"`
	T    float64 `json:"t,omitempty"` // producer time, informational
	Type Type    `json:"type"`
	Job  uint64  `json:"job,omitempty"`
	Base float64 `json:"base,omitempty"`
	Mach uint64  `json:"mach,omitempty"`
	Mult float64 `json:"mult,omitempty"`
}

// Validate reports the first structural error of e: unknown type, or a
// missing/invalid field for the type. It does not (and cannot) check
// consistency against scheduler state — that is the consumer's job.
func (e Event) Validate() error {
	switch e.Type {
	case Submit:
		if e.Job == 0 {
			return fmt.Errorf("eventlog: submit without job id")
		}
		if e.Base < 1 {
			return fmt.Errorf("eventlog: submit job %d base %v, want >= 1", e.Job, e.Base)
		}
	case Join:
		if e.Mach == 0 {
			return fmt.Errorf("eventlog: join without machine id")
		}
		if e.Mult < 1 {
			return fmt.Errorf("eventlog: join machine %d mult %v, want >= 1", e.Mach, e.Mult)
		}
	case Leave, Fail:
		if e.Mach == 0 {
			return fmt.Errorf("eventlog: %s without machine id", e.Type)
		}
	case Complete:
		if e.Job == 0 {
			return fmt.Errorf("eventlog: complete without job id")
		}
	case Admit:
		// no payload
	default:
		return fmt.Errorf("eventlog: unknown event type %q", e.Type)
	}
	return nil
}

// Writer appends events to a log, assigning sequence numbers.
type Writer struct {
	bw  *bufio.Writer
	seq uint64
}

// NewWriter wraps w as an event log writer starting at sequence 1.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// NewWriterAt wraps w continuing an existing log whose last applied
// sequence number is seq — the restore-from-snapshot path.
func NewWriterAt(w io.Writer, seq uint64) *Writer {
	return &Writer{bw: bufio.NewWriter(w), seq: seq}
}

// Append validates e, stamps the next sequence number and writes one log
// line. The stamped event is returned so the caller can apply exactly
// what was persisted.
func (w *Writer) Append(e Event) (Event, error) {
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	w.seq++
	e.Seq = w.seq
	b, err := json.Marshal(e)
	if err != nil {
		return Event{}, err
	}
	if _, err := w.bw.Write(b); err != nil {
		return Event{}, err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return Event{}, err
	}
	return e, nil
}

// Seq returns the sequence number of the last appended event.
func (w *Writer) Seq() uint64 { return w.seq }

// Flush drains the write buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Read parses a whole log. Events must be valid and their sequence
// numbers strictly increasing; blank lines are skipped.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	var last uint64
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %v", line, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %v", line, err)
		}
		if e.Seq <= last {
			return nil, fmt.Errorf("eventlog: line %d: sequence %d not after %d", line, e.Seq, last)
		}
		last = e.Seq
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
