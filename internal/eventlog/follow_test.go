package eventlog

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// followLog writes n submit events to a fresh log file and returns its
// path plus the stamped events.
func followLog(t *testing.T, n int) (string, []Event) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "follow.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		e, err := w.Append(Event{Type: Submit, Job: uint64(i + 1), Base: float64(1 + i%7)})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, events
}

func TestFollowFromStart(t *testing.T) {
	path, events := followLog(t, 25)
	fl, err := Follow(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for i, want := range events {
		got, ok, err := fl.Next()
		if err != nil || !ok {
			t.Fatalf("event %d: ok=%v err=%v", i, ok, err)
		}
		if got != want {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok, err := fl.Next(); ok || err != nil {
		t.Fatalf("past the end: ok=%v err=%v, want caught-up", ok, err)
	}
}

func TestFollowResumesFromSeq(t *testing.T) {
	path, events := followLog(t, 40)
	for _, after := range []uint64{0, 1, 17, 39, 40, 99} {
		fl, err := Follow(path, after)
		if err != nil {
			t.Fatal(err)
		}
		var got []Event
		for {
			e, ok, err := fl.Next()
			if err != nil {
				t.Fatalf("after=%d: %v", after, err)
			}
			if !ok {
				break
			}
			got = append(got, e)
		}
		fl.Close()
		want := 0
		if after < uint64(len(events)) {
			want = len(events) - int(after)
		}
		if len(got) != want {
			t.Fatalf("after=%d: followed %d events, want %d", after, len(got), want)
		}
		if want > 0 && got[0].Seq != after+1 {
			t.Fatalf("after=%d: first seq %d, want %d", after, got[0].Seq, after+1)
		}
	}
}

// TestFollowWaitsOnUnterminatedTail: a partial final record is a write
// in flight — Next reports "nothing yet" without consuming it, and
// returns the record once its terminator lands.
func TestFollowWaitsOnUnterminatedTail(t *testing.T) {
	path, events := followLog(t, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final newline plus a few bytes: record 3 is now torn.
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	fl, err := Follow(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for i := 0; i < 2; i++ {
		if _, ok, err := fl.Next(); !ok || err != nil {
			t.Fatalf("clean event %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := fl.Next(); ok || err != nil {
			t.Fatalf("torn tail poll %d: ok=%v err=%v, want wait", i, ok, err)
		}
	}

	// The writer finishes the record: the follower picks it up.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[len(full)-5:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, ok, err := fl.Next()
	if err != nil || !ok {
		t.Fatalf("completed tail: ok=%v err=%v", ok, err)
	}
	if got != events[2] {
		t.Fatalf("completed tail = %+v, want %+v", got, events[2])
	}
}

// TestFollowHardErrorOnTerminatedCorruption: a corrupt record WITH its
// newline was completed by the writer — that is real corruption, not a
// torn write, and must be a hard error (wait-vs-error boundary).
func TestFollowHardErrorOnTerminatedCorruption(t *testing.T) {
	path, _ := followLog(t, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the final record, newline intact.
	full[len(full)-10] ^= 0x01
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	fl, err := Follow(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for i := 0; i < 2; i++ {
		if _, ok, err := fl.Next(); !ok || err != nil {
			t.Fatalf("clean event %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, err := fl.Next(); err == nil {
		t.Fatalf("terminated corruption: ok=%v err=nil, want hard error", ok)
	}
}

// TestFollowSkippedPrefixIsVerified: resuming past corrupt bytes must
// not skip verification of the prefix it rides over.
func TestFollowSkippedPrefixIsVerified(t *testing.T) {
	path, _ := followLog(t, 5)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[10] ^= 0x01 // corrupt record 1
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	fl, err := Follow(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if _, _, err := fl.Next(); err == nil {
		t.Fatal("follower skipped over mid-log corruption without error")
	}
}

// TestFollowConcurrentAppend races a live Writer against a Follower —
// the replication shape: the daemon appends + flushes while the
// replication server tails the same file. Run under -race.
func TestFollowConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const total = 2000
	w := NewWriter(f)

	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if _, err := w.Append(Event{Type: Submit, Job: uint64(i + 1), Base: 2}); err != nil {
				done <- err
				return
			}
			// Flush per record so the follower sees committed bytes; an
			// occasional yield widens the interleaving space.
			if err := w.Flush(); err != nil {
				done <- err
				return
			}
			if i%64 == 0 {
				time.Sleep(time.Microsecond)
			}
		}
		done <- nil
	}()

	fl, err := Follow(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	var got uint64
	deadline := time.Now().Add(30 * time.Second)
	for got < total {
		e, ok, err := fl.Next()
		if err != nil {
			t.Fatalf("after %d events: %v", got, err)
		}
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("timed out at %d/%d events", got, total)
			}
			time.Sleep(50 * time.Microsecond)
			continue
		}
		if e.Seq != got+1 {
			t.Fatalf("sequence jumped to %d after %d", e.Seq, got)
		}
		got = e.Seq
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
