package eventlog

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{Type: Join, Mach: 1, Mult: 1},
		{Type: Join, Mach: 2, Mult: 2.718281828459045},
		{Type: Submit, Job: 1, Base: 3.141592653589793, T: 0.25},
		{Type: Submit, Job: 2, Base: 1},
		{Type: Admit, T: 1},
		{Type: Complete, Job: 1, Mach: 2},
		{Type: Fail, Mach: 2},
		{Type: Leave, Mach: 1},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if _, err := w.Append(e); err != nil {
			t.Fatalf("append %v: %v", e, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Crc == 0 {
			t.Errorf("event %d came back without a crc", i)
		}
		want := events[i]
		want.Seq = e.Seq
		// Floats must round-trip exactly: the replay contract depends on
		// the log reproducing every workload and multiplier bit.
		if e.Type != want.Type || e.Job != want.Job || e.Mach != want.Mach ||
			math.Float64bits(e.Base) != math.Float64bits(want.Base) ||
			math.Float64bits(e.Mult) != math.Float64bits(want.Mult) ||
			math.Float64bits(e.T) != math.Float64bits(want.T) {
			t.Errorf("event %d: got %+v, want %+v", i, e, want)
		}
	}
}

// TestCanonicalEncodingIsValidJSON pins the hand-rolled encoder against
// encoding/json: every record the Writer emits must parse back to the
// event it encoded, bit for bit, including awkward float forms.
func TestCanonicalEncodingIsValidJSON(t *testing.T) {
	cases := []Event{
		{Seq: 1, Type: Admit},
		{Seq: 42, Type: Submit, Job: 7, Base: 1 + 1e-15, T: 2e-07},
		{Seq: 43, Type: Submit, Job: 8, Base: 1e18, T: 1e21},
		{Seq: 44, Type: Join, Mach: 3, Mult: 1.0000000000000002},
		{Seq: 45, Type: Complete, Job: 7, Mach: 3, T: 0.1234567890123456},
	}
	for _, want := range cases {
		raw := want.appendJSON(nil)
		var got Event
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("canonical encoding %s does not parse: %v", raw, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || got.Job != want.Job || got.Mach != want.Mach ||
			math.Float64bits(got.Base) != math.Float64bits(want.Base) ||
			math.Float64bits(got.Mult) != math.Float64bits(want.Mult) ||
			math.Float64bits(got.T) != math.Float64bits(want.T) {
			t.Errorf("round trip of %+v through %s came back %+v", want, raw, got)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Event{
		{Type: "bogus"},
		{Type: Submit, Base: 2},                        // no job id
		{Type: Submit, Job: 1, Base: 0.5},              // base < 1
		{Type: Submit, Job: 1, Base: math.NaN()},       // NaN base
		{Type: Submit, Job: 1, Base: math.Inf(1)},      // Inf base
		{Type: Join, Mult: 1},                          // no machine id
		{Type: Join, Mach: 1, Mult: 0.2},               // mult < 1
		{Type: Join, Mach: 1, Mult: math.NaN()},        // NaN mult
		{Type: Leave},                                  // no machine id
		{Type: Complete},                               // no job id
		{Type: Admit, T: math.Inf(-1)},                 // non-finite timestamp
		{Type: Submit, Job: 1, Base: 2, T: math.NaN()}, // NaN timestamp
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid event", e)
		}
		if _, err := NewWriter(&bytes.Buffer{}).Append(e); err == nil {
			t.Errorf("Append(%+v) accepted an invalid event", e)
		}
	}
}

func TestReadRejectsNonMonotonicSeq(t *testing.T) {
	log := `{"seq":1,"type":"admit"}
{"seq":1,"type":"admit"}`
	if _, err := Read(strings.NewReader(log)); err == nil {
		t.Fatal("accepted a repeated sequence number")
	}
}

func TestWriterAtContinuesSequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterAt(&buf, 41)
	e, err := w.Append(Event{Type: Admit})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 42 {
		t.Fatalf("seq %d, want 42", e.Seq)
	}
}

// testLog writes a small log and returns its bytes plus the cumulative
// record boundaries (byte offset after each record, newline included).
func testLog(t *testing.T) ([]byte, []int64) {
	t.Helper()
	events := []Event{
		{Type: Join, Mach: 1, Mult: 2},
		{Type: Submit, Job: 1, Base: 3.5, T: 0.125},
		{Type: Submit, Job: 2, Base: 1},
		{Type: Admit},
		{Type: Complete, Job: 1},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var bounds []int64
	for _, e := range events {
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, int64(buf.Len()))
	}
	return buf.Bytes(), bounds
}

// TestTornTailEveryCut exercises the torn-write rule at every byte
// offset of a log: a cut at (or one byte short of, losing only the
// newline) a record boundary reads clean; any other cut returns a
// TornTailError whose prefix and truncation offset are exactly the
// records before the tear. This is the exhaustive form of the
// "truncated-tail" restore table.
func TestTornTailEveryCut(t *testing.T) {
	logBytes, bounds := testLog(t)
	atBoundary := func(c int64) (bool, int) {
		n := 0
		for _, b := range bounds {
			if c == b || c == b-1 {
				return true, n + 1
			}
			if b < c {
				n++
			}
		}
		return c == 0, n
	}
	for cut := int64(0); cut <= int64(len(logBytes)); cut++ {
		events, err := Read(bytes.NewReader(logBytes[:cut]))
		clean, nFull := atBoundary(cut)
		if cut == int64(len(logBytes)) {
			clean, nFull = true, len(bounds)
		}
		if clean {
			if err != nil {
				t.Fatalf("cut %d at boundary: unexpected error %v", cut, err)
			}
			if len(events) != nFull {
				t.Fatalf("cut %d at boundary: %d events, want %d", cut, len(events), nFull)
			}
			continue
		}
		var tte *TornTailError
		if !errors.As(err, &tte) {
			t.Fatalf("cut %d mid-record: got %d events, err %v; want TornTailError", cut, len(events), err)
		}
		if len(tte.Events) != nFull {
			t.Fatalf("cut %d: torn prefix %d events, want %d", cut, len(tte.Events), nFull)
		}
		wantOff := int64(0)
		if nFull > 0 {
			wantOff = bounds[nFull-1]
		}
		if tte.Offset != wantOff {
			t.Fatalf("cut %d: torn offset %d, want %d", cut, tte.Offset, wantOff)
		}
	}
}

// TestFlippedByteMidLogIsHardError pins the other half of the rule:
// corruption with valid records after it can never be a torn write, so
// Read must refuse the whole log rather than resynchronise past it.
func TestFlippedByteMidLogIsHardError(t *testing.T) {
	logBytes, bounds := testLog(t)
	// Flip one byte in the middle of the second record.
	pos := (bounds[0] + bounds[1]) / 2
	for _, flip := range []byte{0xff, '0', '"'} {
		mut := append([]byte(nil), logBytes...)
		if mut[pos] == flip {
			continue
		}
		mut[pos] = flip
		_, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip %q at %d: corrupt interior record accepted", flip, pos)
		}
		var tte *TornTailError
		if errors.As(err, &tte) {
			t.Fatalf("flip %q at %d: mid-log corruption classified as torn tail", flip, pos)
		}
	}
}

// TestFlippedByteInFinalRecordIsTorn: the same corruption on the last
// record is indistinguishable from a torn write and is truncated. The
// CRC is what catches flips that leave the JSON well-formed.
func TestFlippedByteInFinalRecordIsTorn(t *testing.T) {
	logBytes, bounds := testLog(t)
	last := bounds[len(bounds)-1]
	prev := bounds[len(bounds)-2]
	// Target a digit inside the final record's payload so the line stays
	// plausible JSON and only the checksum can object.
	pos := prev + (last-prev)/2
	mut := append([]byte(nil), logBytes...)
	if mut[pos] == '9' {
		mut[pos] = '8'
	} else if mut[pos] >= '0' && mut[pos] <= '9' {
		mut[pos]++
	} else {
		mut[pos] = 'x'
	}
	_, err := Read(bytes.NewReader(mut))
	var tte *TornTailError
	if !errors.As(err, &tte) {
		t.Fatalf("corrupt final record: got %v, want TornTailError", err)
	}
	if len(tte.Events) != len(bounds)-1 || tte.Offset != prev {
		t.Fatalf("torn classification off: %d events at offset %d, want %d at %d",
			len(tte.Events), tte.Offset, len(bounds)-1, prev)
	}
}

// TestDuplicateSeqFinalRecordIsHardError: a structurally sound,
// checksum-clean record with a non-advancing sequence number is producer
// corruption even at the tail — truncating it would silently drop an
// acknowledged event.
func TestDuplicateSeqFinalRecordIsHardError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Append(Event{Type: Admit}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := append([]byte(nil), buf.Bytes()...)
	dup := append(append([]byte(nil), rec...), rec...) // seq 1 twice
	_, err := Read(bytes.NewReader(dup))
	if err == nil {
		t.Fatal("duplicate final sequence number accepted")
	}
	var tte *TornTailError
	if errors.As(err, &tte) {
		t.Fatal("duplicate final sequence number classified as torn tail")
	}
}

// TestOldLogWithoutCRC: records written before the crc field existed
// (plain encoding/json, no crc) stay readable — verification is simply
// skipped.
func TestOldLogWithoutCRC(t *testing.T) {
	events := []Event{
		{Seq: 1, Type: Join, Mach: 1, Mult: 1.5},
		{Seq: 2, Type: Submit, Job: 1, Base: 2},
		{Seq: 3, Type: Admit},
	}
	var buf bytes.Buffer
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].Crc != 0 {
			t.Fatalf("crc-less record %d came back with crc %d", i, got[i].Crc)
		}
	}
}

// TestRecoverTruncatesTornTail: the file-level recovery helper truncates
// a torn final record in place, after which appends resume cleanly and
// the whole log reads back without error.
// TestRecoverRepairsMissingNewline pins the newline-tear case: a crash
// that cuts exactly the final record's terminator leaves a clean-parsing
// but unterminated log. Recover must keep the record (it persisted in
// full), append the terminator, and leave the file safe to append to.
func TestRecoverRepairsMissingNewline(t *testing.T) {
	logBytes, _ := testLog(t)
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, logBytes[:len(logBytes)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	events, torn, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("newline-only tear classified as torn; the record was intact")
	}
	want, err := Read(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want) {
		t.Fatalf("recovered %d events, want %d", len(events), len(want))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, logBytes) {
		t.Fatalf("repaired file is not the original log (%d vs %d bytes)", len(got), len(logBytes))
	}
	// Appends resume on a fresh line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterAt(f, events[len(events)-1].Seq)
	if _, err := w.Append(Event{Type: Admit}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if more, torn, err := Recover(path); err != nil || torn || len(more) != len(want)+1 {
		t.Fatalf("append after repair: %d events torn=%v err=%v", len(more), torn, err)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	logBytes, bounds := testLog(t)
	path := filepath.Join(t.TempDir(), "wal.log")
	cut := bounds[2] + 7 // mid fourth record
	if err := os.WriteFile(path, logBytes[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	events, torn, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(events) != 3 {
		t.Fatalf("recover: torn=%v events=%d, want torn 3-event prefix", torn, len(events))
	}
	if fi, _ := os.Stat(path); fi.Size() != bounds[2] {
		t.Fatalf("file not truncated: %d bytes, want %d", fi.Size(), bounds[2])
	}
	// Appends resume after the truncation point.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterAt(f, events[len(events)-1].Seq)
	if _, err := w.Append(Event{Type: Admit}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	events, torn, err = Recover(path)
	if err != nil || torn {
		t.Fatalf("second recover: torn=%v err=%v", torn, err)
	}
	if len(events) != 4 || events[3].Seq != 4 {
		t.Fatalf("resumed log holds %d events, want 4 ending at seq 4", len(events))
	}
	// A missing file is an empty log, not an error.
	events, torn, err = Recover(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || torn || len(events) != 0 {
		t.Fatalf("recover of missing file: %v %v %v", events, torn, err)
	}
}
