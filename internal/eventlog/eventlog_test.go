package eventlog

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{Type: Join, Mach: 1, Mult: 1},
		{Type: Join, Mach: 2, Mult: 2.718281828459045},
		{Type: Submit, Job: 1, Base: 3.141592653589793, T: 0.25},
		{Type: Submit, Job: 2, Base: 1},
		{Type: Admit, T: 1},
		{Type: Complete, Job: 1, Mach: 2},
		{Type: Fail, Mach: 2},
		{Type: Leave, Mach: 1},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if _, err := w.Append(e); err != nil {
			t.Fatalf("append %v: %v", e, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq %d, want %d", i, e.Seq, i+1)
		}
		want := events[i]
		want.Seq = e.Seq
		// Floats must round-trip exactly: the replay contract depends on
		// the log reproducing every workload and multiplier bit.
		if e.Type != want.Type || e.Job != want.Job || e.Mach != want.Mach ||
			math.Float64bits(e.Base) != math.Float64bits(want.Base) ||
			math.Float64bits(e.Mult) != math.Float64bits(want.Mult) ||
			math.Float64bits(e.T) != math.Float64bits(want.T) {
			t.Errorf("event %d: got %+v, want %+v", i, e, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Event{
		{Type: "bogus"},
		{Type: Submit, Base: 2},           // no job id
		{Type: Submit, Job: 1, Base: 0.5}, // base < 1
		{Type: Join, Mult: 1},             // no machine id
		{Type: Join, Mach: 1, Mult: 0.2},  // mult < 1
		{Type: Leave},                     // no machine id
		{Type: Complete},                  // no job id
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid event", e)
		}
		if _, err := NewWriter(&bytes.Buffer{}).Append(e); err == nil {
			t.Errorf("Append(%+v) accepted an invalid event", e)
		}
	}
}

func TestReadRejectsNonMonotonicSeq(t *testing.T) {
	log := `{"seq":1,"type":"admit"}
{"seq":1,"type":"admit"}`
	if _, err := Read(strings.NewReader(log)); err == nil {
		t.Fatal("accepted a repeated sequence number")
	}
}

func TestWriterAtContinuesSequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterAt(&buf, 41)
	e, err := w.Append(Event{Type: Admit})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 42 {
		t.Fatalf("seq %d, want 42", e.Seq)
	}
}
