package eventlog

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// followChunk is the read granularity of a Follower: large enough that a
// catch-up pass over a cold log is a handful of reads per megabyte,
// small enough that tailing a live log stays cheap.
const followChunk = 64 * 1024

// Follower is a tailing reader over a live event log: it returns each
// complete, verified record exactly once and reports "no more yet"
// instead of an error at the (possibly still-growing) end of the file.
// It is the WAL-shipping primitive of the replication layer — the
// primary follows its own log and streams what Next returns.
//
// Corruption handling mirrors Read's torn-write rule, adapted to a file
// something is still appending to. An unterminated tail can always be a
// write in flight, so it is never an error: Next leaves it unconsumed
// and returns ok=false until the terminator arrives (if the writer died
// mid-record, Recover on restart truncates it — a Follower never sees
// the record because it never completes). A newline-terminated record
// that fails to parse, checksum or sequence cleanly is different: the
// writer finished it, so it can only be real corruption, and Next
// returns a hard error.
//
// A Follower is not safe for concurrent use by multiple goroutines, but
// following a file while a Writer appends to it from another goroutine
// is the intended use: Next reads only committed bytes (up to the last
// newline) and never mutates the file.
type Follower struct {
	f      *os.File
	off    int64  // file offset of the first byte not yet in buf
	buf    []byte // read-ahead: committed bytes not yet returned
	last   uint64 // sequence number of the last record parsed
	skipTo uint64 // records at or below this seq are consumed silently
	line   int    // 1-based line number of the next record, for errors

	scratch []byte
}

// Follow opens a tailing reader over the log at path, positioned so the
// first event returned is the first one with sequence number greater
// than after. The skipped prefix is still parsed and verified — a
// follower resuming mid-log re-checks the bytes it rides over.
func Follow(path string, after uint64) (*Follower, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Follower{f: f, skipTo: after}, nil
}

// Seq returns the sequence number of the last record parsed (returned
// or skipped); 0 before the first.
func (fl *Follower) Seq() uint64 { return fl.last }

// Close releases the underlying file.
func (fl *Follower) Close() error { return fl.f.Close() }

// Next returns the next committed event past the resume point. ok=false
// with a nil error means the log holds no complete new record yet — the
// caller should retry after the writer makes progress. Errors are
// permanent: mid-log corruption, or a terminated record that fails
// verification.
func (fl *Follower) Next() (Event, bool, error) {
	for {
		nl := bytes.IndexByte(fl.buf, '\n')
		if nl < 0 {
			n, err := fl.fill()
			if err != nil {
				return Event{}, false, err
			}
			if n == 0 {
				// End of committed bytes. Whatever sits in buf is an
				// unterminated tail: a write in flight, not ours to judge.
				return Event{}, false, nil
			}
			continue
		}
		rec := bytes.TrimRight(fl.buf[:nl], "\r")
		fl.buf = fl.buf[nl+1:]
		fl.line++
		if len(rec) == 0 {
			continue
		}
		e, scratch, _, err := parseRecord(rec, fl.last, fl.scratch)
		fl.scratch = scratch
		if err != nil {
			// The record was newline-terminated: the writer completed it,
			// so this cannot be a torn write in progress.
			return Event{}, false, fmt.Errorf("eventlog: follow: line %d: %v", fl.line, err)
		}
		fl.last = e.Seq
		if e.Seq <= fl.skipTo {
			continue
		}
		return e, true, nil
	}
}

// fill reads the next chunk of the file into buf, returning how many
// bytes arrived. It compacts buf first so a partial record carried
// across calls never grows the buffer beyond one record + one chunk.
func (fl *Follower) fill() (int, error) {
	if cap(fl.buf)-len(fl.buf) < followChunk {
		next := make([]byte, len(fl.buf), len(fl.buf)+followChunk)
		copy(next, fl.buf)
		fl.buf = next
	}
	n, err := fl.f.ReadAt(fl.buf[len(fl.buf):len(fl.buf)+followChunk], fl.off)
	fl.buf = fl.buf[:len(fl.buf)+n]
	fl.off += int64(n)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, err
	}
	return n, nil
}
