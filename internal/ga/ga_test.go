package ga

import (
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func testInstance(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 96, Machs: 8})
}

func smallCfg(v Variant) Config {
	cfg := NewConfig(v)
	if v == Braun {
		cfg.PopSize = 40 // keep generational tests fast
	}
	return cfg
}

func TestAllVariantsRunAndImprove(t *testing.T) {
	in := testInstance(1)
	for _, v := range []Variant{Braun, SteadyState, Struggle} {
		s, err := New(smallCfg(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		iters := 2000
		if v == Braun {
			iters = 60 // generations, each PopSize evals
		}
		res := s.Run(in, run.Budget{MaxIterations: iters}, 42, nil)
		if err := res.Best.Validate(in); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		// Must improve on its own seed's fitness.
		cfg := smallCfg(v)
		seedFit := schedule.DefaultObjective.Evaluate(in, cfg.SeedHeuristic(in))
		if res.Fitness >= seedFit {
			t.Errorf("%v: fitness %v did not improve on seed %v", v, res.Fitness, seedFit)
		}
		if res.Algorithm != v.String() {
			t.Errorf("%v: algorithm name %q", v, res.Algorithm)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	in := testInstance(2)
	for _, v := range []Variant{Braun, SteadyState, Struggle} {
		s, _ := New(smallCfg(v))
		iters := 300
		if v == Braun {
			iters = 10
		}
		a := s.Run(in, run.Budget{MaxIterations: iters}, 7, nil)
		b := s.Run(in, run.Budget{MaxIterations: iters}, 7, nil)
		if !a.Best.Equal(b.Best) || a.Fitness != b.Fitness {
			t.Errorf("%v: same seed gave different results", v)
		}
	}
}

func TestBestIsMonotone(t *testing.T) {
	in := testInstance(3)
	for _, v := range []Variant{Braun, SteadyState, Struggle} {
		s, _ := New(smallCfg(v))
		var fits []float64
		iters := 200
		if v == Braun {
			iters = 15
		}
		s.Run(in, run.Budget{MaxIterations: iters}, 5, func(p run.Progress) {
			fits = append(fits, p.Fitness)
		})
		for i := 1; i < len(fits); i++ {
			if fits[i] > fits[i-1]+1e-9 {
				t.Fatalf("%v: best regressed at %d", v, i)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.PopSize = 1 },
		func(c *Config) { c.CrossoverProb = -0.1 },
		func(c *Config) { c.MutationProb = 1.1 },
		func(c *Config) { c.Selector = nil },
		func(c *Config) { c.Objective.Lambda = 2 },
	}
	for i, f := range bad {
		cfg := NewConfig(SteadyState)
		f(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestVariantNames(t *testing.T) {
	if Braun.String() != "BraunGA" || SteadyState.String() != "SteadyStateGA" || Struggle.String() != "StruggleGA" {
		t.Error("variant names wrong")
	}
}

func TestStruggleKeepsMoreDiversityThanSteadyState(t *testing.T) {
	// The struggle replacement is designed to preserve diversity: after
	// the same number of steps, its population should have a higher mean
	// pairwise Hamming distance than replace-worst. This is a statistical
	// property; use a fixed seed and a comfortable margin via final
	// populations reconstructed from multiple runs' bests being distinct.
	in := testInstance(4)
	div := func(v Variant) float64 {
		cfg := smallCfg(v)
		cfg.PopSize = 20
		s, _ := New(cfg)
		g := &gaState{in: in, cfg: s.cfg, r: rng.New(9)}
		g.init()
		indices := make([]int, cfg.PopSize)
		for i := range indices {
			indices[i] = i
		}
		for k := 0; k < 1500; k++ {
			g.steadyStep(indices)
		}
		total, pairs := 0, 0
		for i := 0; i < cfg.PopSize; i++ {
			for j := i + 1; j < cfg.PopSize; j++ {
				total += g.pop[i].ScheduleView().Hamming(g.pop[j].ScheduleView())
				pairs++
			}
		}
		return float64(total) / float64(pairs)
	}
	ss, st := div(SteadyState), div(Struggle)
	if st <= ss {
		t.Errorf("struggle diversity %v should exceed steady-state %v", st, ss)
	}
}

func TestBraunElitismPreservesBest(t *testing.T) {
	in := testInstance(5)
	cfg := smallCfg(Braun)
	s, _ := New(cfg)
	res1 := s.Run(in, run.Budget{MaxIterations: 5}, 3, nil)
	res2 := s.Run(in, run.Budget{MaxIterations: 25}, 3, nil)
	if res2.Fitness > res1.Fitness {
		t.Errorf("longer run worse than shorter: %v > %v", res2.Fitness, res1.Fitness)
	}
}

func TestUnboundedBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s, _ := New(NewConfig(SteadyState))
	s.Run(testInstance(6), run.Budget{}, 1, nil)
}

func TestGSARunsAndImproves(t *testing.T) {
	in := testInstance(7)
	cfg := NewConfig(GSA)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(in, run.Budget{MaxIterations: 3000}, 42, nil)
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	seedFit := schedule.DefaultObjective.Evaluate(in, cfg.SeedHeuristic(in))
	if res.Fitness >= seedFit {
		t.Errorf("GSA %v did not improve on Min-Min %v", res.Fitness, seedFit)
	}
	if res.Algorithm != "GSA" {
		t.Errorf("name %q", res.Algorithm)
	}
}

func TestGSADeterministic(t *testing.T) {
	in := testInstance(8)
	s, _ := New(NewConfig(GSA))
	a := s.Run(in, run.Budget{MaxIterations: 500}, 3, nil)
	b := s.Run(in, run.Budget{MaxIterations: 500}, 3, nil)
	if a.Fitness != b.Fitness {
		t.Fatal("GSA not deterministic")
	}
}

func TestGSAValidation(t *testing.T) {
	cfg := NewConfig(GSA)
	cfg.InitialTempFactor = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero temp factor accepted")
	}
	cfg = NewConfig(GSA)
	cfg.Cooling = 1
	if _, err := New(cfg); err == nil {
		t.Error("cooling = 1 accepted")
	}
}
