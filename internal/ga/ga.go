// Package ga implements the three unstructured genetic algorithms the
// paper compares against (Tables 2, 3 and 5):
//
//   - Braun et al.'s GA (JPDC 2001): generational, rank-based roulette
//     selection, one-point crossover, move mutation, elitism, population
//     seeded with Min-Min.
//   - Carretero & Xhafa's GA (2006): steady-state — each step breeds one
//     offspring from tournament-selected parents and replaces the worst
//     individual if better.
//   - Xhafa's Struggle GA (BIOMA 2006): steady-state with struggle
//     replacement — the offspring replaces the *most similar* individual
//     (Hamming distance over the assignment vector) when fitter, which
//     preserves diversity.
//
// All three optimise the same scalarised fitness as the cMA and share the
// run.Budget / run.Result vocabulary, so the experiment harness can drive
// them interchangeably. Parameters follow the published descriptions where
// stated and are documented defaults otherwise (see DESIGN.md §3).
package ga

import (
	"fmt"
	"math"
	"time"

	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/heuristics"
	"gridcma/internal/operators"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// Variant selects one of the implemented genetic algorithms.
type Variant int

const (
	// Braun is the generational GA of Braun et al.
	Braun Variant = iota
	// SteadyState is the Carretero–Xhafa replace-worst GA.
	SteadyState
	// Struggle is Xhafa's similarity-replacement GA.
	Struggle
	// GSA is the genetic simulated annealing hybrid of the Braun et al.
	// heuristic suite: steady-state GA variation with a Metropolis
	// acceptance test against the replacement victim and a geometric
	// temperature schedule.
	GSA
)

// String returns the name used in results and reports.
func (v Variant) String() string {
	switch v {
	case Braun:
		return "BraunGA"
	case SteadyState:
		return "SteadyStateGA"
	case Struggle:
		return "StruggleGA"
	case GSA:
		return "GSA"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterises a GA run. NewConfig returns per-variant defaults.
type Config struct {
	Variant Variant

	PopSize int
	// CrossoverProb and MutationProb gate the two operators per
	// offspring (Braun: 0.6 / 0.4).
	CrossoverProb float64
	MutationProb  float64

	Selector  operators.Selector
	Crossover operators.Crossover
	Mutator   operators.Mutator

	Objective schedule.Objective

	// Elitism keeps the best individual across generations (generational
	// variant only; steady-state variants are implicitly elitist).
	Elitism bool

	// SeedHeuristic initialises one individual; the rest are random.
	// Braun et al. seed with Min-Min.
	SeedHeuristic func(*etc.Instance) schedule.Schedule

	// InitialTempFactor and Cooling drive the GSA variant's Metropolis
	// acceptance (ignored by the other variants): the temperature starts
	// at InitialTempFactor × the seed fitness and is multiplied by
	// Cooling after every step.
	InitialTempFactor float64
	Cooling           float64
}

// NewConfig returns the published/default configuration of a variant.
func NewConfig(v Variant) Config {
	switch v {
	case Braun:
		return Config{
			Variant:       Braun,
			PopSize:       200,
			CrossoverProb: 0.6,
			MutationProb:  0.4,
			Selector:      operators.LinearRank{},
			Crossover:     operators.OnePoint{},
			Mutator:       operators.Move{},
			Objective:     schedule.DefaultObjective,
			Elitism:       true,
			SeedHeuristic: heuristics.MinMin,
		}
	case SteadyState:
		return Config{
			Variant:       SteadyState,
			PopSize:       60,
			CrossoverProb: 1.0,
			MutationProb:  0.4,
			Selector:      operators.NewTournament(3),
			Crossover:     operators.OnePoint{},
			Mutator:       operators.Move{},
			Objective:     schedule.DefaultObjective,
			SeedHeuristic: heuristics.LJFRSJFR,
		}
	case Struggle:
		return Config{
			Variant:       Struggle,
			PopSize:       60,
			CrossoverProb: 1.0,
			MutationProb:  0.4,
			Selector:      operators.NewTournament(3),
			Crossover:     operators.OnePoint{},
			Mutator:       operators.Move{},
			Objective:     schedule.DefaultObjective,
			SeedHeuristic: heuristics.LJFRSJFR,
		}
	case GSA:
		return Config{
			Variant:           GSA,
			PopSize:           60,
			CrossoverProb:     1.0,
			MutationProb:      0.4,
			Selector:          operators.NewTournament(3),
			Crossover:         operators.OnePoint{},
			Mutator:           operators.Move{},
			Objective:         schedule.DefaultObjective,
			SeedHeuristic:     heuristics.MinMin,
			InitialTempFactor: 0.1,
			Cooling:           0.99,
		}
	default:
		panic(fmt.Sprintf("ga: unknown variant %v", v))
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 2:
		return fmt.Errorf("ga: population size %d", c.PopSize)
	case c.CrossoverProb < 0 || c.CrossoverProb > 1:
		return fmt.Errorf("ga: crossover probability %v", c.CrossoverProb)
	case c.MutationProb < 0 || c.MutationProb > 1:
		return fmt.Errorf("ga: mutation probability %v", c.MutationProb)
	case c.Selector == nil || c.Crossover == nil || c.Mutator == nil:
		return fmt.Errorf("ga: nil operator")
	case c.Objective.Lambda < 0 || c.Objective.Lambda > 1:
		return fmt.Errorf("ga: lambda %v", c.Objective.Lambda)
	}
	if c.Variant == GSA {
		if c.InitialTempFactor <= 0 {
			return fmt.Errorf("ga: GSA needs InitialTempFactor > 0, got %v", c.InitialTempFactor)
		}
		if c.Cooling <= 0 || c.Cooling >= 1 {
			return fmt.Errorf("ga: GSA cooling %v outside (0,1)", c.Cooling)
		}
	}
	return nil
}

// Scheduler is a reusable GA bound to a configuration.
type Scheduler struct {
	cfg Config
}

// New validates cfg and returns a Scheduler.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Name identifies the algorithm in results.
func (s *Scheduler) Name() string { return s.cfg.Variant.String() }

// Run executes the GA within budget.
func (s *Scheduler) Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result {
	return s.RunPooled(in, budget, seed, obs, nil)
}

// RunPooled is Run with a caller-supplied scratch pool (it implements
// runner.PooledScheduler): batch sweeps on one instance reuse offspring
// workspaces across runs. A nil or foreign-instance pool falls back to a
// private one; sharing never affects results.
func (s *Scheduler) RunPooled(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result {
	if !budget.Bounded() {
		panic("ga: unbounded budget")
	}
	if pool != nil && pool.Instance() != in {
		pool = nil
	}
	g := &gaState{in: in, cfg: s.cfg, r: rng.New(seed), pool: pool}
	g.init()
	defer func() {
		g.pool.Put(g.scratch)
		g.scratch = nil
	}()
	return g.run(budget, obs)
}

// gaState is the mutable state of one GA run.
type gaState struct {
	in  *etc.Instance
	cfg Config
	r   *rng.Source

	pop []*schedule.State
	fit []float64
	// next/nextFit double-buffer the generational variant so a
	// generation swaps populations instead of allocating one.
	next    []*schedule.State
	nextFit []float64

	pool    *evalpool.Pool
	scratch *evalpool.Scratch
	evals   int64
	temp    float64 // GSA temperature

	best evalpool.Best
}

func (g *gaState) init() {
	if g.pool == nil {
		g.pool = evalpool.New(g.in)
	}
	g.pop = make([]*schedule.State, g.cfg.PopSize)
	g.fit = make([]float64, g.cfg.PopSize)
	for i := range g.pop {
		var s schedule.Schedule
		if i == 0 && g.cfg.SeedHeuristic != nil {
			s = g.cfg.SeedHeuristic(g.in)
		} else {
			s = schedule.NewRandom(g.in, g.r)
		}
		g.pop[i] = schedule.NewState(g.in, s)
		g.fit[i] = g.cfg.Objective.Of(g.pop[i])
		g.evals++
		g.best.Note(g.pop[i], g.fit[i])
	}
	g.scratch = g.pool.Get()
	if g.cfg.Variant == GSA {
		g.temp = g.cfg.InitialTempFactor * g.best.Fitness()
	}
}

// breed produces one offspring into g.scratch from two selected parents
// (Propose into the scratch buffer, mutate in place) and returns its
// fitness.
func (g *gaState) breed(indices []int) float64 {
	fitAt := func(i int) float64 { return g.fit[i] }
	p1 := g.cfg.Selector.Select(indices, fitAt, g.r)
	p2 := g.cfg.Selector.Select(indices, fitAt, g.r)
	if g.r.Float64() < g.cfg.CrossoverProb {
		g.cfg.Crossover.Cross(g.pop[p1].ScheduleView(), g.pop[p2].ScheduleView(), g.scratch.Buf, g.r)
		g.scratch.St.SetSchedule(g.scratch.Buf)
	} else {
		g.scratch.St.CopyFrom(g.pop[p1])
	}
	if g.r.Float64() < g.cfg.MutationProb {
		g.cfg.Mutator.Mutate(g.scratch.St, g.r)
	}
	g.evals++
	return g.cfg.Objective.Of(g.scratch.St)
}

func (g *gaState) run(budget run.Budget, obs run.Observer) run.Result {
	start := time.Now()
	iter := 0
	emit := func() {
		if obs != nil {
			obs(run.Progress{
				Elapsed:   time.Since(start),
				Iteration: iter,
				Fitness:   g.best.Fitness(),
				Makespan:  g.best.Makespan(),
				Flowtime:  g.best.Flowtime(),
			})
		}
	}
	emit()
	indices := make([]int, g.cfg.PopSize)
	for i := range indices {
		indices[i] = i
	}
	for !budget.Done(iter, start) {
		switch g.cfg.Variant {
		case Braun:
			g.generation(indices)
		default:
			g.steadyStep(indices)
		}
		iter++
		emit()
	}
	return run.Result{
		Best:       g.best.Schedule(),
		Fitness:    g.best.Fitness(),
		Makespan:   g.best.Makespan(),
		Flowtime:   g.best.Flowtime(),
		Iterations: iter,
		Evals:      g.evals,
		Elapsed:    time.Since(start),
		Algorithm:  g.cfg.Variant.String(),
	}
}

// generation performs one full generational replacement (Braun variant).
// The two populations are double-buffered: offspring are copied into the
// standby population, which is then swapped in — no per-offspring clone.
func (g *gaState) generation(indices []int) {
	n := g.cfg.PopSize
	if g.next == nil {
		g.next = make([]*schedule.State, n)
		g.nextFit = make([]float64, n)
		for i := range g.next {
			g.next[i] = schedule.NewState(g.in, g.pop[i].ScheduleView())
		}
	}
	startIdx := 0
	if g.cfg.Elitism {
		// Carry over the best current individual unchanged.
		bi := 0
		for i := 1; i < n; i++ {
			if g.fit[i] < g.fit[bi] {
				bi = i
			}
		}
		g.next[0].CopyFrom(g.pop[bi])
		g.nextFit[0] = g.fit[bi]
		startIdx = 1
	}
	for i := startIdx; i < n; i++ {
		f := g.breed(indices)
		g.next[i].CopyFrom(g.scratch.St)
		g.nextFit[i] = f
		g.best.Note(g.next[i], f)
	}
	g.pop, g.next = g.next, g.pop
	g.fit, g.nextFit = g.nextFit, g.fit
}

// steadyStep breeds one offspring and inserts it with the variant's
// replacement policy.
func (g *gaState) steadyStep(indices []int) {
	f := g.breed(indices)
	victim := -1
	switch g.cfg.Variant {
	case SteadyState:
		// Replace the worst individual if the child improves on it.
		worst := 0
		for i := 1; i < g.cfg.PopSize; i++ {
			if g.fit[i] > g.fit[worst] {
				worst = i
			}
		}
		if f < g.fit[worst] {
			victim = worst
		}
	case Struggle:
		// Replace the most similar individual if the child improves on it.
		child := g.scratch.St.ScheduleView()
		closest, bestD := 0, g.in.Jobs+1
		for i := 0; i < g.cfg.PopSize; i++ {
			if d := child.Hamming(g.pop[i].ScheduleView()); d < bestD {
				closest, bestD = i, d
			}
		}
		if f < g.fit[closest] {
			victim = closest
		}
	case GSA:
		// Metropolis acceptance against a random victim, then cool.
		cand := g.r.Intn(g.cfg.PopSize)
		accept := f < g.fit[cand]
		if !accept && g.temp > 0 {
			accept = g.r.Float64() < math.Exp((g.fit[cand]-f)/g.temp)
		}
		if accept {
			victim = cand
		}
		g.temp *= g.cfg.Cooling
	default:
		panic(fmt.Sprintf("ga: steadyStep on variant %v", g.cfg.Variant))
	}
	if victim >= 0 {
		g.pop[victim].CopyFrom(g.scratch.St)
		g.fit[victim] = f
		g.best.Note(g.scratch.St, f)
	}
}
