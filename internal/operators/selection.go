// Package operators implements the variation operators of the paper's
// cellular memetic algorithm — N-tournament selection, one-point
// recombination and the load-rebalancing mutation — plus the standard
// alternatives (two-point/uniform crossover, move/swap mutation, rank and
// best selection) used by the baseline genetic algorithms and the ablation
// benches.
//
// Selection operates on candidate *indices* with a caller-supplied fitness
// accessor, so the same operators serve cellular neighborhoods and
// unstructured GA populations. Lower fitness is always better.
package operators

import (
	"fmt"
	"sort"

	"gridcma/internal/rng"
)

// Selector picks one index out of candidates. Implementations must treat
// candidates as read-only and must not retain it.
type Selector interface {
	// Select returns an element of candidates; fitness(i) is the fitness
	// of candidate value i (lower is better).
	Select(candidates []int, fitness func(int) float64, r *rng.Source) int
	Name() string
}

// Tournament is N-tournament selection: draw N candidates uniformly with
// replacement and keep the best. The paper tunes N = 3 (Table 1, Fig. 4).
type Tournament struct {
	N int
}

// NewTournament returns an N-tournament selector; it panics if n < 1.
func NewTournament(n int) Tournament {
	if n < 1 {
		panic(fmt.Sprintf("operators: tournament size %d", n))
	}
	return Tournament{N: n}
}

// Select implements Selector.
func (t Tournament) Select(candidates []int, fitness func(int) float64, r *rng.Source) int {
	if len(candidates) == 0 {
		panic("operators: Select on empty candidate set")
	}
	best := candidates[r.Intn(len(candidates))]
	bestFit := fitness(best)
	for k := 1; k < t.N; k++ {
		c := candidates[r.Intn(len(candidates))]
		if f := fitness(c); f < bestFit {
			best, bestFit = c, f
		}
	}
	return best
}

// Name implements Selector.
func (t Tournament) Name() string { return fmt.Sprintf("%d-Tournament", t.N) }

// Best deterministically selects the fittest candidate (ties to the first).
type Best struct{}

// Select implements Selector.
func (Best) Select(candidates []int, fitness func(int) float64, r *rng.Source) int {
	if len(candidates) == 0 {
		panic("operators: Select on empty candidate set")
	}
	best, bestFit := candidates[0], fitness(candidates[0])
	for _, c := range candidates[1:] {
		if f := fitness(c); f < bestFit {
			best, bestFit = c, f
		}
	}
	return best
}

// Name implements Selector.
func (Best) Name() string { return "Best" }

// Random selects uniformly, ignoring fitness.
type Random struct{}

// Select implements Selector.
func (Random) Select(candidates []int, _ func(int) float64, r *rng.Source) int {
	if len(candidates) == 0 {
		panic("operators: Select on empty candidate set")
	}
	return candidates[r.Intn(len(candidates))]
}

// Name implements Selector.
func (Random) Name() string { return "Random" }

// LinearRank selects with probability proportional to linear rank (best
// rank weighted highest), the selection used by Braun et al.'s GA.
type LinearRank struct{}

// Select implements Selector.
func (LinearRank) Select(candidates []int, fitness func(int) float64, r *rng.Source) int {
	n := len(candidates)
	if n == 0 {
		panic("operators: Select on empty candidate set")
	}
	if n == 1 {
		return candidates[0]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return fitness(candidates[order[a]]) < fitness(candidates[order[b]])
	})
	// Rank weights n, n-1, ..., 1 over order[0..n-1]; total n(n+1)/2.
	total := n * (n + 1) / 2
	pick := r.Intn(total)
	acc := 0
	for i, idx := range order {
		acc += n - i
		if pick < acc {
			return candidates[idx]
		}
	}
	return candidates[order[n-1]] // unreachable
}

// Name implements Selector.
func (LinearRank) Name() string { return "LinearRank" }

// SelectDistinct selects k distinct candidates using sel, retrying on
// collisions (up to a bound, then filling with unused candidates in order).
// It is the "SelectToRecombine S ⊆ N_P" step of Algorithm 1: the paper sets
// |S| = nb_solutions_to_recombine = 3. It allocates the result; hot loops
// use SelectDistinctInto with a reusable buffer.
func SelectDistinct(sel Selector, k int, candidates []int, fitness func(int) float64, r *rng.Source) []int {
	return SelectDistinctInto(sel, k, candidates, fitness, r, nil)
}

// SelectDistinctInto is SelectDistinct writing into out's backing array
// (grown if needed), so a caller-kept buffer makes selection
// allocation-free. k is small (the paper uses 3), so distinctness is
// checked by linear scan rather than a set.
func SelectDistinctInto(sel Selector, k int, candidates []int, fitness func(int) float64, r *rng.Source, out []int) []int {
	if k > len(candidates) {
		k = len(candidates)
	}
	out = out[:0]
	contains := func(c int) bool {
		for _, x := range out {
			if x == c {
				return true
			}
		}
		return false
	}
	for tries := 0; len(out) < k && tries < 20*k; tries++ {
		c := sel.Select(candidates, fitness, r)
		if !contains(c) {
			out = append(out, c)
		}
	}
	for _, c := range candidates {
		if len(out) == k {
			break
		}
		if !contains(c) {
			out = append(out, c)
		}
	}
	return out
}
