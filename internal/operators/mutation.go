package operators

import (
	"fmt"
	"sort"

	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Mutator perturbs an evaluated schedule in place. Mutators receive the
// live State (not just the raw vector) because the paper's rebalance
// mutation is load-aware: it needs completion times and the makespan.
type Mutator interface {
	Mutate(st *schedule.State, r *rng.Source)
	Name() string
}

// Move reassigns one random job to a random machine — the simplest
// mutation, also the per-step proposal of the LM local search.
type Move struct{}

// Mutate implements Mutator.
func (Move) Mutate(st *schedule.State, r *rng.Source) {
	in := st.Instance()
	st.Move(r.Intn(in.Jobs), r.Intn(in.Machs))
}

// Name implements Mutator.
func (Move) Name() string { return "Move" }

// Swap exchanges the machines of two random jobs.
type Swap struct{}

// Mutate implements Mutator.
func (Swap) Mutate(st *schedule.State, r *rng.Source) {
	in := st.Instance()
	st.Swap(r.Intn(in.Jobs), r.Intn(in.Jobs))
}

// Name implements Mutator.
func (Swap) Name() string { return "Swap" }

// Rebalance is the paper's mutation: transfer a job from an overloaded
// machine (load_factor = completion/makespan = 1, i.e. a machine attaining
// the makespan) to one of the less loaded machines — the first
// LessLoadedFraction of machines in increasing completion-time order.
type Rebalance struct {
	// LessLoadedFraction is the fraction of machines (by ascending
	// completion time) considered transfer targets. The paper uses 0.25.
	LessLoadedFraction float64
}

// DefaultRebalance is the paper's configuration.
var DefaultRebalance = Rebalance{LessLoadedFraction: 0.25}

// Mutate implements Mutator.
func (rb Rebalance) Mutate(st *schedule.State, r *rng.Source) {
	in := st.Instance()
	makespan := st.Makespan()
	if makespan == 0 {
		return
	}
	// Overloaded machines: load factor 1 within float tolerance.
	var overloaded []int
	for m := 0; m < in.Machs; m++ {
		if st.Completion(m) >= makespan*(1-1e-12) {
			overloaded = append(overloaded, m)
		}
	}
	// Pick a random overloaded machine that actually has jobs.
	r.Shuffle(len(overloaded), func(i, j int) {
		overloaded[i], overloaded[j] = overloaded[j], overloaded[i]
	})
	src := -1
	for _, m := range overloaded {
		if len(st.JobsOn(m)) > 0 {
			src = m
			break
		}
	}
	if src < 0 {
		return // all load is ready-time; nothing to transfer
	}

	// Less loaded targets: first fraction of machines by completion time.
	order := make([]int, in.Machs)
	for m := range order {
		order[m] = m
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := st.Completion(order[a]), st.Completion(order[b])
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	k := int(rb.fraction() * float64(in.Machs))
	if k < 1 {
		k = 1
	}
	targets := order[:k]
	dst := targets[r.Intn(len(targets))]
	if dst == src {
		return
	}
	jobs := st.JobsOn(src)
	st.Move(int(jobs[r.Intn(len(jobs))]), dst)
}

func (rb Rebalance) fraction() float64 {
	if rb.LessLoadedFraction <= 0 || rb.LessLoadedFraction > 1 {
		return 0.25
	}
	return rb.LessLoadedFraction
}

// Name implements Mutator.
func (Rebalance) Name() string { return "Rebalance" }

// ParseMutator resolves a mutator by name.
func ParseMutator(s string) (Mutator, error) {
	switch s {
	case "move", "Move":
		return Move{}, nil
	case "swap", "Swap":
		return Swap{}, nil
	case "rebalance", "Rebalance":
		return DefaultRebalance, nil
	default:
		return nil, fmt.Errorf("operators: unknown mutator %q", s)
	}
}
