package operators

import (
	"fmt"

	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Mutator perturbs an evaluated schedule in place. Mutators receive the
// live State (not just the raw vector) because the paper's rebalance
// mutation is load-aware: it needs completion times and the makespan.
// Every built-in mutator drains the state's commit event log before
// returning (State.SyncScans), the same hygiene contract the local search
// methods follow: a mutated state never carries pending invalidation
// events back to its engine or pool.
type Mutator interface {
	Mutate(st *schedule.State, r *rng.Source)
	Name() string
}

// Move reassigns one random job to a random machine — the simplest
// mutation, also the per-step proposal of the LM local search.
type Move struct{}

// Mutate implements Mutator.
func (Move) Mutate(st *schedule.State, r *rng.Source) {
	in := st.Instance()
	st.Move(r.Intn(in.Jobs), r.Intn(in.Machs))
	st.SyncScans()
}

// Name implements Mutator.
func (Move) Name() string { return "Move" }

// Swap exchanges the machines of two random jobs.
type Swap struct{}

// Mutate implements Mutator.
func (Swap) Mutate(st *schedule.State, r *rng.Source) {
	in := st.Instance()
	st.Swap(r.Intn(in.Jobs), r.Intn(in.Jobs))
	st.SyncScans()
}

// Name implements Mutator.
func (Swap) Name() string { return "Swap" }

// Rebalance is the paper's mutation: transfer a job from an overloaded
// machine (load_factor = completion/makespan = 1, i.e. a machine attaining
// the makespan) to one of the less loaded machines — the first
// LessLoadedFraction of machines in increasing completion-time order.
type Rebalance struct {
	// LessLoadedFraction is the fraction of machines (by ascending
	// completion time) considered transfer targets. The paper uses 0.25.
	LessLoadedFraction float64
}

// DefaultRebalance is the paper's configuration.
var DefaultRebalance = Rebalance{LessLoadedFraction: 0.25}

// Mutate implements Mutator. It allocates nothing: the source machine is
// reservoir-sampled and the target found by partial selection, since this
// runs once per mutation update inside every engine's hot loop.
func (rb Rebalance) Mutate(st *schedule.State, r *rng.Source) {
	in := st.Instance()
	makespan := st.Makespan()
	if makespan == 0 {
		return
	}
	// Uniformly pick an overloaded machine (load factor 1 within float
	// tolerance) that actually has jobs.
	src, seen := -1, 0
	for m := 0; m < in.Machs; m++ {
		if st.Completion(m) >= makespan*(1-1e-12) && len(st.JobsOn(m)) > 0 {
			seen++
			if r.Intn(seen) == 0 {
				src = m
			}
		}
	}
	if src < 0 {
		return // all load is ready-time; nothing to transfer
	}

	// Less loaded targets: the first fraction of machines in ascending
	// (completion, id) order. Draw a rank and select that order statistic
	// by repeated minimum scans — machine counts are small.
	k := int(rb.fraction() * float64(in.Machs))
	if k < 1 {
		k = 1
	}
	idx := r.Intn(k)
	dst := -1
	prevC, prevM := 0.0, -1
	for n := 0; n <= idx; n++ {
		best := -1
		for m := 0; m < in.Machs; m++ {
			c := st.Completion(m)
			if prevM >= 0 && (c < prevC || (c == prevC && m <= prevM)) {
				continue // ranked earlier
			}
			if best < 0 || c < st.Completion(best) {
				best = m
			}
		}
		prevC, prevM = st.Completion(best), best
		dst = best
	}
	if dst == src {
		return
	}
	jobs := st.JobsOn(src)
	st.Move(int(jobs[r.Intn(len(jobs))]), dst)
	st.SyncScans()
}

func (rb Rebalance) fraction() float64 {
	if rb.LessLoadedFraction <= 0 || rb.LessLoadedFraction > 1 {
		return 0.25
	}
	return rb.LessLoadedFraction
}

// Name implements Mutator.
func (Rebalance) Name() string { return "Rebalance" }

// ParseMutator resolves a mutator by name.
func ParseMutator(s string) (Mutator, error) {
	switch s {
	case "move", "Move":
		return Move{}, nil
	case "swap", "Swap":
		return Swap{}, nil
	case "rebalance", "Rebalance":
		return DefaultRebalance, nil
	default:
		return nil, fmt.Errorf("operators: unknown mutator %q", s)
	}
}
