package operators

import (
	"math"
	"testing"
	"testing/quick"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

func testInstance(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 48, Machs: 8})
}

// --- selection ---

func linearFitness(i int) float64 { return float64(i) }

func TestTournamentPicksFromCandidates(t *testing.T) {
	r := rng.New(1)
	sel := NewTournament(3)
	cands := []int{10, 20, 30, 40}
	for k := 0; k < 100; k++ {
		got := sel.Select(cands, linearFitness, r)
		ok := false
		for _, c := range cands {
			if got == c {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("selected %d not a candidate", got)
		}
	}
}

func TestTournamentPressureIncreasesWithN(t *testing.T) {
	cands := make([]int, 50)
	for i := range cands {
		cands[i] = i
	}
	meanFor := func(n int) float64 {
		r := rng.New(42)
		sel := NewTournament(n)
		sum := 0.0
		for k := 0; k < 3000; k++ {
			sum += float64(sel.Select(cands, linearFitness, r))
		}
		return sum / 3000
	}
	m1, m3, m7 := meanFor(1), meanFor(3), meanFor(7)
	if !(m7 < m3 && m3 < m1) {
		t.Errorf("selection pressure should grow with N: means %v %v %v", m1, m3, m7)
	}
}

func TestTournamentN1IsUniform(t *testing.T) {
	r := rng.New(7)
	sel := NewTournament(1)
	counts := map[int]int{}
	cands := []int{0, 1, 2, 3}
	for k := 0; k < 8000; k++ {
		counts[sel.Select(cands, linearFitness, r)]++
	}
	for _, c := range cands {
		if math.Abs(float64(counts[c])-2000) > 200 {
			t.Errorf("candidate %d chosen %d times, want ~2000", c, counts[c])
		}
	}
}

func TestNewTournamentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTournament(0)
}

func TestBestSelector(t *testing.T) {
	r := rng.New(1)
	got := Best{}.Select([]int{5, 2, 9, 2}, linearFitness, r)
	if got != 2 {
		t.Fatalf("Best selected %d, want 2", got)
	}
}

func TestRandomSelectorUniform(t *testing.T) {
	r := rng.New(9)
	counts := map[int]int{}
	for k := 0; k < 6000; k++ {
		counts[Random{}.Select([]int{1, 2, 3}, nil, r)]++
	}
	for _, c := range []int{1, 2, 3} {
		if math.Abs(float64(counts[c])-2000) > 200 {
			t.Errorf("count[%d] = %d", c, counts[c])
		}
	}
}

func TestLinearRankPrefersFit(t *testing.T) {
	r := rng.New(11)
	counts := map[int]int{}
	cands := []int{0, 1, 2, 3, 4}
	for k := 0; k < 10000; k++ {
		counts[LinearRank{}.Select(cands, linearFitness, r)]++
	}
	// Expected proportions 5:4:3:2:1.
	if !(counts[0] > counts[2] && counts[2] > counts[4]) {
		t.Errorf("rank selection not monotone: %v", counts)
	}
	want0 := 10000 * 5.0 / 15.0
	if math.Abs(float64(counts[0])-want0) > 350 {
		t.Errorf("best candidate chosen %d times, want ~%.0f", counts[0], want0)
	}
}

func TestSelectDistinct(t *testing.T) {
	r := rng.New(13)
	cands := []int{1, 2, 3, 4, 5}
	got := SelectDistinct(NewTournament(3), 3, cands, linearFitness, r)
	if len(got) != 3 {
		t.Fatalf("got %d, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, g := range got {
		if seen[g] {
			t.Fatalf("duplicate %d", g)
		}
		seen[g] = true
	}
	// k larger than pool clamps.
	got = SelectDistinct(NewTournament(3), 10, cands, linearFitness, r)
	if len(got) != len(cands) {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestSelectorsOnSingleton(t *testing.T) {
	r := rng.New(15)
	for _, sel := range []Selector{NewTournament(3), Best{}, Random{}, LinearRank{}} {
		if got := sel.Select([]int{7}, linearFitness, r); got != 7 {
			t.Errorf("%s on singleton = %d", sel.Name(), got)
		}
	}
}

// --- crossover ---

func TestOnePointStructure(t *testing.T) {
	r := rng.New(1)
	n := 20
	a, b := make(schedule.Schedule, n), make(schedule.Schedule, n)
	for i := range a {
		a[i], b[i] = 1, 2
	}
	child := make(schedule.Schedule, n)
	for k := 0; k < 50; k++ {
		OnePoint{}.Cross(a, b, child, r)
		// Must be a prefix of 1s followed by suffix of 2s, both non-empty.
		cut := 0
		for cut < n && child[cut] == 1 {
			cut++
		}
		if cut == 0 || cut == n {
			t.Fatalf("degenerate cut %d", cut)
		}
		for i := cut; i < n; i++ {
			if child[i] != 2 {
				t.Fatalf("not one-point: %v", child)
			}
		}
	}
}

func TestCrossoverGenesComeFromParents(t *testing.T) {
	in := testInstance(3)
	r := rng.New(4)
	a, b := schedule.NewRandom(in, r), schedule.NewRandom(in, r)
	child := make(schedule.Schedule, in.Jobs)
	for _, cx := range []Crossover{OnePoint{}, TwoPoint{}, Uniform{}} {
		for k := 0; k < 20; k++ {
			cx.Cross(a, b, child, r)
			for i := range child {
				if child[i] != a[i] && child[i] != b[i] {
					t.Fatalf("%s: gene %d from neither parent", cx.Name(), i)
				}
			}
			if err := child.Validate(in); err != nil {
				t.Fatalf("%s: %v", cx.Name(), err)
			}
		}
	}
}

func TestCrossoverLengthOne(t *testing.T) {
	r := rng.New(5)
	child := make(schedule.Schedule, 1)
	OnePoint{}.Cross(schedule.Schedule{3}, schedule.Schedule{4}, child, r)
	if child[0] != 3 {
		t.Fatalf("n=1 one-point should copy parent a, got %d", child[0])
	}
	TwoPoint{}.Cross(schedule.Schedule{3}, schedule.Schedule{4}, child, r)
	if child[0] != 3 && child[0] != 4 {
		t.Fatal("n=1 two-point gene from neither parent")
	}
}

func TestCrossoverPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OnePoint{}.Cross(schedule.Schedule{1, 2}, schedule.Schedule{1}, make(schedule.Schedule, 2), rng.New(1))
}

func TestParseCrossover(t *testing.T) {
	for _, n := range []string{"one-point", "two-point", "uniform"} {
		if _, err := ParseCrossover(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := ParseCrossover("pmx"); err == nil {
		t.Error("expected error")
	}
}

func TestUniformMixesBothParents(t *testing.T) {
	r := rng.New(6)
	n := 100
	a, b := make(schedule.Schedule, n), make(schedule.Schedule, n)
	for i := range a {
		a[i], b[i] = 0, 1
	}
	child := make(schedule.Schedule, n)
	Uniform{}.Cross(a, b, child, r)
	ones := 0
	for _, g := range child {
		ones += g
	}
	if ones < 25 || ones > 75 {
		t.Errorf("uniform crossover heavily biased: %d ones of %d", ones, n)
	}
}

// --- mutation ---

func TestMoveAndSwapKeepValidity(t *testing.T) {
	in := testInstance(7)
	r := rng.New(8)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	for _, m := range []Mutator{Move{}, Swap{}, DefaultRebalance} {
		for k := 0; k < 100; k++ {
			m.Mutate(st, r)
		}
		if err := st.Schedule().Validate(in); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

func TestRebalanceMovesFromCriticalMachine(t *testing.T) {
	in := testInstance(9)
	r := rng.New(10)
	for trial := 0; trial < 30; trial++ {
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		crit := st.MakespanMachine()
		nCrit := len(st.JobsOn(crit))
		DefaultRebalance.Mutate(st, r)
		// Either the critical machine lost a job, or the move was a no-op
		// because source == target (possible only if crit is also among
		// the least loaded, i.e. near-uniform loads).
		if got := len(st.JobsOn(crit)); got != nCrit && got != nCrit-1 {
			t.Fatalf("critical machine job count %d -> %d", nCrit, got)
		}
	}
}

func TestRebalanceReducesPressureOnAverage(t *testing.T) {
	// Rebalance should, on average, not increase makespan much and often
	// decrease it; check it at least never moves to the critical machine.
	in := testInstance(11)
	r := rng.New(12)
	worse := 0
	const trials = 50
	for k := 0; k < trials; k++ {
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		before := st.Makespan()
		DefaultRebalance.Mutate(st, r)
		if st.Makespan() > before+1e-9 {
			worse++
		}
	}
	if worse > trials/4 {
		t.Errorf("rebalance worsened makespan in %d/%d trials", worse, trials)
	}
}

func TestRebalanceOnEmptyLoadsIsSafe(t *testing.T) {
	// Single machine: everything on it, no target to move to.
	in := etc.New("t", 3, 1)
	for j := 0; j < 3; j++ {
		in.Set(j, 0, 1)
	}
	in.Finalize()
	st := schedule.NewState(in, schedule.Schedule{0, 0, 0})
	DefaultRebalance.Mutate(st, rng.New(1)) // must not panic
}

func TestParseMutator(t *testing.T) {
	for _, n := range []string{"move", "swap", "rebalance"} {
		if _, err := ParseMutator(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := ParseMutator("inversion"); err == nil {
		t.Error("expected error")
	}
}

func TestRebalanceFractionGuard(t *testing.T) {
	in := testInstance(13)
	r := rng.New(14)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	bad := Rebalance{LessLoadedFraction: -3}
	bad.Mutate(st, r) // must fall back to default fraction, not panic
	if err := st.Schedule().Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestCrossoverProperty(t *testing.T) {
	in := testInstance(15)
	f := func(seed uint64, which uint8) bool {
		r := rng.New(seed)
		a, b := schedule.NewRandom(in, r), schedule.NewRandom(in, r)
		child := make(schedule.Schedule, in.Jobs)
		cx := []Crossover{OnePoint{}, TwoPoint{}, Uniform{}}[int(which)%3]
		cx.Cross(a, b, child, r)
		return child.Validate(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
