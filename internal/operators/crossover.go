package operators

import (
	"fmt"

	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Crossover recombines two parent schedules into a child. Implementations
// write into child (same length as the parents) and must not retain any of
// the slices; parents are read-only. The direct (job → machine) encoding
// makes every crossover result feasible by construction.
type Crossover interface {
	Cross(a, b schedule.Schedule, child schedule.Schedule, r *rng.Source)
	Name() string
}

// OnePoint is the paper's recombination: split both parents at a random
// point and join the head of one with the tail of the other.
type OnePoint struct{}

// Cross implements Crossover.
func (OnePoint) Cross(a, b schedule.Schedule, child schedule.Schedule, r *rng.Source) {
	checkLens(a, b, child)
	// Cut in [1, n-1] so both parents contribute when n > 1.
	n := len(a)
	if n == 1 {
		child[0] = a[0]
		return
	}
	cut := 1 + r.Intn(n-1)
	copy(child[:cut], a[:cut])
	copy(child[cut:], b[cut:])
}

// Name implements Crossover.
func (OnePoint) Name() string { return "One-Point" }

// TwoPoint exchanges the segment between two random cut points.
type TwoPoint struct{}

// Cross implements Crossover.
func (TwoPoint) Cross(a, b schedule.Schedule, child schedule.Schedule, r *rng.Source) {
	checkLens(a, b, child)
	n := len(a)
	if n < 3 {
		OnePoint{}.Cross(a, b, child, r)
		return
	}
	i, j := r.Intn(n), r.Intn(n)
	if i > j {
		i, j = j, i
	}
	copy(child, a)
	copy(child[i:j], b[i:j])
}

// Name implements Crossover.
func (TwoPoint) Name() string { return "Two-Point" }

// Uniform picks each gene from either parent with probability ½.
type Uniform struct{}

// Cross implements Crossover.
func (Uniform) Cross(a, b schedule.Schedule, child schedule.Schedule, r *rng.Source) {
	checkLens(a, b, child)
	for i := range child {
		if r.Bool(0.5) {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
}

// Name implements Crossover.
func (Uniform) Name() string { return "Uniform" }

func checkLens(a, b, child schedule.Schedule) {
	if len(a) != len(b) || len(a) != len(child) {
		panic(fmt.Sprintf("operators: crossover length mismatch %d/%d/%d", len(a), len(b), len(child)))
	}
	if len(a) == 0 {
		panic("operators: crossover on empty schedules")
	}
}

// ParseCrossover resolves a crossover by name.
func ParseCrossover(s string) (Crossover, error) {
	switch s {
	case "one-point", "onepoint", "One-Point":
		return OnePoint{}, nil
	case "two-point", "twopoint", "Two-Point":
		return TwoPoint{}, nil
	case "uniform", "Uniform":
		return Uniform{}, nil
	default:
		return nil, fmt.Errorf("operators: unknown crossover %q", s)
	}
}
