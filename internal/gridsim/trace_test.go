package gridsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestSampleTraceWithinBounds(t *testing.T) {
	cfg := staticCfg()
	cfg.MaxJobs = 50
	trace, err := SampleTrace(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 50 {
		t.Fatalf("%d arrivals, want cap 50", len(trace))
	}
	prev := 0.0
	for i, a := range trace {
		if a.Time < prev || a.Time > cfg.Horizon {
			t.Fatalf("arrival %d at %v out of order/bounds", i, a.Time)
		}
		if a.Base < 1 || a.Base >= cfg.TaskRange {
			t.Fatalf("arrival %d base %v outside [1, %v)", i, a.Base, cfg.TaskRange)
		}
		prev = a.Time
	}
}

func TestSampleTraceRespectHorizon(t *testing.T) {
	cfg := staticCfg()
	trace, err := SampleTrace(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Expected count ≈ rate × horizon; allow wide slack.
	want := cfg.ArrivalRate * cfg.Horizon
	if float64(len(trace)) < 0.6*want || float64(len(trace)) > 1.4*want {
		t.Errorf("%d arrivals, expected ≈%.0f", len(trace), want)
	}
}

func TestTraceReplayIsDeterministicAcrossPolicies(t *testing.T) {
	cfg := staticCfg()
	cfg.MaxJobs = 60
	trace, err := SampleTrace(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = trace
	a, err := Simulate(cfg, minMinPolicy())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, randomPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Same trace: identical arrival counts regardless of policy.
	if a.JobsArrived != len(trace) || b.JobsArrived != len(trace) {
		t.Fatalf("arrivals %d / %d, want %d", a.JobsArrived, b.JobsArrived, len(trace))
	}
	// And the replay itself is reproducible.
	a2, _ := Simulate(cfg, minMinPolicy())
	if a != a2 {
		t.Fatal("trace replay not deterministic")
	}
}

func TestTraceValidation(t *testing.T) {
	cfg := staticCfg()
	cfg.Trace = []Arrival{{Time: -1, Base: 2}}
	if _, err := NewSim(cfg, minMinPolicy()); err == nil {
		t.Error("negative time accepted")
	}
	cfg.Trace = []Arrival{{Time: cfg.Horizon + 1, Base: 2}}
	if _, err := NewSim(cfg, minMinPolicy()); err == nil {
		t.Error("beyond-horizon time accepted")
	}
	cfg.Trace = []Arrival{{Time: 1, Base: 0.5}}
	if _, err := NewSim(cfg, minMinPolicy()); err == nil {
		t.Error("sub-1 base accepted")
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	trace := []Arrival{{1.5, 3.25}, {2.75, 7.5}, {100, 1}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("%d arrivals", len(got))
	}
	for i := range trace {
		if got[i] != trace[i] {
			t.Fatalf("arrival %d: %+v != %+v", i, got[i], trace[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("time,base\nnot,numbers\n")); err == nil {
		t.Error("bad line accepted")
	}
	got, err := ReadTrace(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Error("empty trace should parse to nothing")
	}
	// Headerless traces are accepted too.
	got, err = ReadTrace(strings.NewReader("1.0,2.0\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("headerless parse: %v, %d", err, len(got))
	}
}

func TestTracedSimMatchesExpectations(t *testing.T) {
	// A hand-built trace: three jobs at known times on a quiet grid must
	// all complete; response time must reflect the activation delay.
	cfg := staticCfg()
	cfg.Horizon = 200
	cfg.ActivationInterval = 10
	cfg.Trace = []Arrival{{5, 4}, {6, 4}, {7, 4}}
	m, err := Simulate(cfg, minMinPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsArrived != 3 || m.JobsCompleted != 3 {
		t.Fatalf("arrived %d completed %d", m.JobsArrived, m.JobsCompleted)
	}
	// Jobs arrive at t=5..7, first activation that sees them is t=10:
	// waits are at least 3 and modest.
	if m.MeanWait < 3 || m.MeanWait > 20 {
		t.Errorf("mean wait %v outside plausible [3,20]", m.MeanWait)
	}
}
