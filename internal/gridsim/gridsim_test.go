package gridsim

import (
	"math"
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/heuristics"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// minMinPolicy is the cheap deterministic policy used by most tests.
func minMinPolicy() Policy {
	return PolicyFunc{PolicyName: "minmin", Fn: func(in *etc.Instance, _ uint64) schedule.Schedule {
		return heuristics.MinMin(in)
	}}
}

func randomPolicy() Policy {
	return PolicyFunc{PolicyName: "random", Fn: func(in *etc.Instance, seed uint64) schedule.Schedule {
		return schedule.NewRandom(in, rng.New(seed))
	}}
}

func staticCfg() Config {
	cfg := DefaultConfig()
	cfg.JoinRate, cfg.LeaveRate = 0, 0
	cfg.Horizon = 400
	return cfg
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.InitialMachines = 0 },
		func(c *Config) { c.TaskRange = 0.5 },
		func(c *Config) { c.MachRange = 0 },
		func(c *Config) { c.PairInconsistency = 0.9 },
		func(c *Config) { c.ActivationInterval = 0 },
		func(c *Config) { c.JoinRate = -1 },
		func(c *Config) { c.MaxJobs = -1 },
	}
	for i, f := range bad {
		cfg := DefaultConfig()
		f(&cfg)
		if _, err := NewSim(cfg, minMinPolicy()); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := NewSim(DefaultConfig(), nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestStaticSimulationCompletesJobs(t *testing.T) {
	m, err := Simulate(staticCfg(), minMinPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsArrived == 0 {
		t.Fatal("no arrivals")
	}
	// With 16 machines, rate 1 and mean job time well under capacity,
	// nearly everything in the first ~90% of the horizon should finish.
	if float64(m.JobsCompleted) < 0.8*float64(m.JobsArrived) {
		t.Errorf("completed %d of %d", m.JobsCompleted, m.JobsArrived)
	}
	if m.Activations == 0 {
		t.Error("scheduler never activated")
	}
	if m.MeanResponse <= 0 || m.MeanWait < 0 {
		t.Errorf("bad response metrics: %+v", m)
	}
	if m.MeanWait > m.MeanResponse {
		t.Error("wait cannot exceed response")
	}
	if m.Makespan <= 0 || m.Makespan > staticCfg().Horizon {
		t.Errorf("makespan %v outside (0, horizon]", m.Makespan)
	}
	if m.Utilization <= 0 || m.Utilization > 1+1e-9 {
		t.Errorf("utilization %v outside (0,1]", m.Utilization)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := Simulate(staticCfg(), minMinPolicy())
	b, _ := Simulate(staticCfg(), minMinPolicy())
	if a != b {
		t.Fatalf("same config, different metrics:\n%+v\n%+v", a, b)
	}
	cfg := staticCfg()
	cfg.Seed = 999
	c, _ := Simulate(cfg, minMinPolicy())
	if a == c {
		t.Error("different seeds, identical metrics (suspicious)")
	}
}

func TestMaxJobsCap(t *testing.T) {
	cfg := staticCfg()
	cfg.MaxJobs = 25
	m, _ := Simulate(cfg, minMinPolicy())
	if m.JobsArrived != 25 {
		t.Errorf("arrived %d, want cap 25", m.JobsArrived)
	}
	if m.JobsCompleted != 25 {
		t.Errorf("completed %d of 25 despite idle grid", m.JobsCompleted)
	}
}

func TestChurnRestartsJobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 600
	cfg.LeaveRate = 0.05 // aggressive churn
	cfg.JoinRate = 0.05
	m, err := Simulate(cfg, minMinPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if m.MachinesLeft == 0 || m.MachinesJoined == 0 {
		t.Fatalf("expected churn, got %+v", m)
	}
	// Some running jobs should have been interrupted at this leave rate.
	if m.JobsRestarted == 0 {
		t.Error("no restarts despite machine departures")
	}
	// Simulation still completes a sensible share of jobs.
	if float64(m.JobsCompleted) < 0.5*float64(m.JobsArrived) {
		t.Errorf("completed only %d of %d under churn", m.JobsCompleted, m.JobsArrived)
	}
}

func TestNeverDropsLastMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialMachines = 1
	cfg.JoinRate = 0
	cfg.LeaveRate = 1.0 // tries constantly
	cfg.Horizon = 100
	m, err := Simulate(cfg, minMinPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if m.MachinesLeft != 0 {
		t.Errorf("the only machine left the grid: %+v", m)
	}
	if m.JobsCompleted == 0 {
		t.Error("single machine completed nothing")
	}
}

func TestBetterPolicyGivesBetterResponse(t *testing.T) {
	// Min-Min should beat random assignment on mean response in a loaded
	// grid; this is the core claim that smarter batch scheduling improves
	// dynamic QoS.
	cfg := staticCfg()
	cfg.ArrivalRate = 2 // load the grid
	mm, _ := Simulate(cfg, minMinPolicy())
	rd, _ := Simulate(cfg, randomPolicy())
	if mm.MeanResponse >= rd.MeanResponse {
		t.Errorf("min-min response %v should beat random %v", mm.MeanResponse, rd.MeanResponse)
	}
}

func TestConsistentGridHasNoPairNoise(t *testing.T) {
	cfg := staticCfg()
	cfg.PairInconsistency = 1
	s, err := NewSim(cfg, minMinPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.pairNoise(3, 5); got != 1 {
		t.Errorf("pairNoise = %v, want 1", got)
	}
}

func TestPairNoiseStableAndBounded(t *testing.T) {
	cfg := staticCfg()
	cfg.PairInconsistency = 3
	s, _ := NewSim(cfg, minMinPolicy())
	for j := 0; j < 20; j++ {
		for m := 0; m < 8; m++ {
			a, b := s.pairNoise(j, m), s.pairNoise(j, m)
			if a != b {
				t.Fatal("pair noise not stable")
			}
			if a < 1 || a >= 3 {
				t.Fatalf("pair noise %v outside [1,3)", a)
			}
		}
	}
}

func TestUtilizationScalesWithLoad(t *testing.T) {
	low := staticCfg()
	low.ArrivalRate = 0.2
	high := staticCfg()
	high.ArrivalRate = 3
	ml, _ := Simulate(low, minMinPolicy())
	mh, _ := Simulate(high, minMinPolicy())
	if ml.Utilization >= mh.Utilization {
		t.Errorf("utilization should grow with load: %v vs %v", ml.Utilization, mh.Utilization)
	}
}

func TestMetricsInvariants(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Horizon = 300
		m, err := Simulate(cfg, minMinPolicy())
		if err != nil {
			t.Fatal(err)
		}
		if m.JobsCompleted > m.JobsArrived {
			t.Fatalf("seed %d: completed > arrived", seed)
		}
		if m.Makespan > cfg.Horizon {
			t.Fatalf("seed %d: makespan beyond horizon", seed)
		}
		if m.Utilization < 0 || m.Utilization > 1+1e-9 {
			t.Fatalf("seed %d: utilization %v", seed, m.Utilization)
		}
		if math.IsNaN(m.MeanResponse) || m.MeanResponse < 0 {
			t.Fatalf("seed %d: response %v", seed, m.MeanResponse)
		}
	}
}
