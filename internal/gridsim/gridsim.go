// Package gridsim is a discrete-event simulator of a dynamic computational
// grid. It realises the deployment story of the paper's conclusions: a
// dynamic scheduler is obtained by running the (batch) cMA scheduler
// periodically over the jobs that arrived since its last activation.
//
// The simulation models:
//
//   - independent jobs arriving as a Poisson process, each with a base
//     workload drawn from the ETC range model;
//   - heterogeneous machines with per-machine speed multipliers and
//     optional churn (random joins and leaves);
//   - a scheduler activation every ActivationInterval of simulated time,
//     which snapshots the unstarted jobs and the alive machines into an
//     etc.Instance (machine ready times = remaining work of the running
//     jobs) and asks a pluggable Policy for a schedule;
//   - non-preemptive execution: a job lost to a machine departure is
//     re-pooled and restarted elsewhere at the next activation.
//
// Simulated time is a plain float64 in arbitrary time units; the whole
// simulation is deterministic given Config.Seed, which makes policies
// directly comparable.
package gridsim

import (
	"fmt"
	"math"

	"gridcma/internal/etc"
	"gridcma/internal/eventlog"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Policy produces a schedule for a batch instance. Implementations wrap a
// constructive heuristic or a budgeted metaheuristic run. seed varies per
// activation so stochastic policies stay deterministic per simulation.
type Policy interface {
	Name() string
	Assign(in *etc.Instance, seed uint64) schedule.Schedule
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc struct {
	PolicyName string
	Fn         func(in *etc.Instance, seed uint64) schedule.Schedule
}

// Name implements Policy.
func (p PolicyFunc) Name() string { return p.PolicyName }

// Assign implements Policy.
func (p PolicyFunc) Assign(in *etc.Instance, seed uint64) schedule.Schedule {
	return p.Fn(in, seed)
}

// Config parameterises a simulation.
type Config struct {
	// Horizon is the simulated end time. Events after it are discarded.
	Horizon float64
	// ArrivalRate is the expected number of job arrivals per time unit.
	ArrivalRate float64
	// MaxJobs caps total arrivals (0 = unlimited within the horizon).
	MaxJobs int
	// InitialMachines is the number of machines alive at time 0.
	InitialMachines int
	// TaskRange bounds the per-job base workload draw U[1, TaskRange].
	TaskRange float64
	// MachRange bounds the per-machine slowness multiplier U[1, MachRange].
	MachRange float64
	// PairInconsistency ≥ 1 scales a deterministic per-(job, machine)
	// noise multiplier U[1, PairInconsistency]; 1 yields a consistent
	// grid, larger values increasingly inconsistent ones.
	PairInconsistency float64
	// ActivationInterval is the period of scheduler activations.
	ActivationInterval float64
	// JoinRate and LeaveRate are the Poisson rates of machine churn
	// (0 disables). A leave never removes the last machine.
	JoinRate, LeaveRate float64
	// Seed drives every random draw of the simulation.
	Seed uint64
	// Trace, when non-empty, replaces the Poisson arrival process with
	// the given explicit arrivals (see SampleTrace / ReadTrace). All
	// other randomness (machine speeds, churn) still comes from Seed.
	Trace []Arrival
	// Record, when set, is called with every externally meaningful
	// transition of the simulation — machine joins (including the initial
	// fleet at time 0), admitted job arrivals, scheduler activations,
	// completions and machine departures — as daemon event-log records in
	// execution order: a valid, sequential gridd event stream (ids are the
	// simulator's shifted to 1-based, Seq left 0 for the consumer to
	// stamp, T the simulated time). Departures are emitted as Fail events
	// because a leave loses its running job, which is gridd's fail
	// semantics. Replaying the stream through a daemon Grid reproduces
	// the simulated workload exactly; the placements differ (the daemon
	// schedules with its own warm-start path, the simulator with its
	// Policy), which is what makes the pair comparable.
	Record func(eventlog.Event)
}

// DefaultConfig returns a moderate dynamic scenario: ~1000 jobs over 1000
// time units on 16 machines with mild churn. The workload ranges are
// chosen so the offered load (mean ETC × arrival rate ≈ 11) sits around
// 70 % of the 16-machine capacity — busy but feasible.
func DefaultConfig() Config {
	return Config{
		Horizon:            1000,
		ArrivalRate:        1.0,
		InitialMachines:    16,
		TaskRange:          8,
		MachRange:          3,
		PairInconsistency:  1.5,
		ActivationInterval: 25,
		JoinRate:           0.002,
		LeaveRate:          0.002,
		Seed:               1,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("gridsim: non-positive horizon")
	case c.ArrivalRate <= 0:
		return fmt.Errorf("gridsim: non-positive arrival rate")
	case c.InitialMachines < 1:
		return fmt.Errorf("gridsim: need at least one machine")
	case c.TaskRange < 1 || c.MachRange < 1:
		return fmt.Errorf("gridsim: ranges must be >= 1")
	case c.PairInconsistency < 1:
		return fmt.Errorf("gridsim: PairInconsistency must be >= 1")
	case c.ActivationInterval <= 0:
		return fmt.Errorf("gridsim: non-positive activation interval")
	case c.JoinRate < 0 || c.LeaveRate < 0:
		return fmt.Errorf("gridsim: negative churn rate")
	case c.MaxJobs < 0:
		return fmt.Errorf("gridsim: negative MaxJobs")
	}
	return validateTrace(c.Trace, c.Horizon)
}

// Metrics summarises one simulation run.
type Metrics struct {
	JobsArrived   int
	JobsCompleted int
	// JobsRestarted counts jobs re-pooled because their machine left.
	JobsRestarted                int
	Activations                  int
	MachinesJoined, MachinesLeft int
	// Makespan is the completion time of the last finished job.
	Makespan float64
	// MeanResponse averages finish − arrival over completed jobs (the
	// dynamic analogue of flowtime).
	MeanResponse float64
	// MeanWait averages start − arrival over completed jobs.
	MeanWait float64
	// Utilization is total busy machine time divided by total alive
	// machine time within the horizon.
	Utilization float64
}

// event kinds, processed in time order (ties by sequence).
type evKind int

const (
	evArrival evKind = iota
	evActivation
	evCompletion
	evJoin
	evLeave
)

type event struct {
	t    float64
	seq  int
	kind evKind
	job  int // evArrival (ignored), evCompletion: job id
	mach int // evCompletion: machine id
}

// eventQueue is a binary min-heap of events ordered by (time, sequence).
// It is typed end to end — push and pop traffic in event values, not the
// boxed interface{} of container/heap, so the hot simulation loop does
// no per-event allocation.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		next := left
		if right := left + 1; right < n && h.less(right, left) {
			next = right
		}
		if !h.less(next, i) {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return top
}

type jobState int

const (
	jobPending jobState = iota
	jobQueued
	jobRunning
	jobDone
)

type job struct {
	id       int
	base     float64 // workload draw
	arrived  float64
	started  float64
	finished float64
	state    jobState
	mach     int // current machine when queued/running
	restarts int
}

type machine struct {
	id       int
	mult     float64 // slowness multiplier (1 is fastest)
	alive    bool
	joined   float64
	left     float64
	busyTill float64
	running  int   // job id or -1
	queue    []int // unstarted assigned jobs, FIFO
	busyTime float64
}

// Sim is one simulation run. Construct with NewSim, drive with Run.
type Sim struct {
	cfg    Config
	policy Policy
	r      *rng.Source
	events eventQueue
	seq    int
	now    float64

	jobs  []*job
	machs []*machine

	metrics Metrics
}

// NewSim validates the configuration and prepares a simulation.
func NewSim(cfg Config, policy Policy) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("gridsim: nil policy")
	}
	s := &Sim{cfg: cfg, policy: policy, r: rng.New(cfg.Seed)}
	for i := 0; i < cfg.InitialMachines; i++ {
		s.addMachine(0)
	}
	// Prime the event streams. Traced arrivals are all pushed up front
	// (event.job carries the trace index); Poisson mode self-renews.
	if len(cfg.Trace) > 0 {
		for i := range cfg.Trace {
			s.push(cfg.Trace[i].Time, evArrival, i, 0)
		}
	} else {
		s.push(s.exp(cfg.ArrivalRate), evArrival, -1, 0)
	}
	s.push(cfg.ActivationInterval, evActivation, 0, 0)
	if cfg.JoinRate > 0 {
		s.push(s.exp(cfg.JoinRate), evJoin, 0, 0)
	}
	if cfg.LeaveRate > 0 {
		s.push(s.exp(cfg.LeaveRate), evLeave, 0, 0)
	}
	return s, nil
}

// exp draws an exponential inter-arrival time with the given rate.
func (s *Sim) exp(rate float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return s.now - math.Log(u)/rate
}

func (s *Sim) push(t float64, k evKind, jobID, machID int) {
	if t > s.cfg.Horizon {
		return
	}
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: k, job: jobID, mach: machID})
}

func (s *Sim) addMachine(t float64) *machine {
	m := &machine{
		id:      len(s.machs),
		mult:    s.r.Uniform(1, s.cfg.MachRange),
		alive:   true,
		joined:  t,
		running: -1,
	}
	s.machs = append(s.machs, m)
	s.record(eventlog.Event{T: t, Type: eventlog.Join, Mach: uint64(m.id) + 1, Mult: m.mult})
	return m
}

// record emits e to the Config.Record hook when one is installed.
func (s *Sim) record(e eventlog.Event) {
	if s.cfg.Record != nil {
		s.cfg.Record(e)
	}
}

// etcOf returns the deterministic expected time of job j on machine m:
// base workload × machine slowness × pair noise.
func (s *Sim) etcOf(j *job, m *machine) float64 {
	return j.base * m.mult * s.pairNoise(j.id, m.id)
}

// pairNoise maps (job, machine) to a stable multiplier in
// [1, PairInconsistency) via a hash — the inconsistency knob of the grid.
func (s *Sim) pairNoise(jobID, machID int) float64 {
	if s.cfg.PairInconsistency == 1 {
		return 1
	}
	x := uint64(jobID)*0x9e3779b97f4a7c15 ^ uint64(machID)*0xbf58476d1ce4e5b9 ^ s.cfg.Seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	u := float64(x>>11) / (1 << 53)
	return 1 + u*(s.cfg.PairInconsistency-1)
}

// Run drives the simulation to the horizon and returns its metrics.
func (s *Sim) Run() Metrics {
	for len(s.events) > 0 {
		e := s.events.pop()
		s.now = e.t
		switch e.kind {
		case evArrival:
			s.onArrival(e.job)
		case evActivation:
			s.onActivation()
		case evCompletion:
			s.onCompletion(e.job, e.mach)
		case evJoin:
			s.onJoin()
		case evLeave:
			s.onLeave()
		}
	}
	s.finish()
	return s.metrics
}

// onArrival admits a job. traceIdx >= 0 identifies a traced arrival;
// -1 means the Poisson process, which draws a workload and schedules its
// own next event.
func (s *Sim) onArrival(traceIdx int) {
	if s.cfg.MaxJobs == 0 || len(s.jobs) < s.cfg.MaxJobs {
		base := 0.0
		if traceIdx >= 0 {
			base = s.cfg.Trace[traceIdx].Base
		} else {
			base = s.r.Uniform(1, s.cfg.TaskRange)
		}
		j := &job{
			id:      len(s.jobs),
			base:    base,
			arrived: s.now,
			state:   jobPending,
			mach:    -1,
		}
		s.jobs = append(s.jobs, j)
		s.metrics.JobsArrived++
		s.record(eventlog.Event{T: s.now, Type: eventlog.Submit, Job: uint64(j.id) + 1, Base: base})
	}
	if traceIdx < 0 {
		s.push(s.exp(s.cfg.ArrivalRate), evArrival, -1, 0)
	}
}

// aliveMachines returns the alive machines in id order.
func (s *Sim) aliveMachines() []*machine {
	out := make([]*machine, 0, len(s.machs))
	for _, m := range s.machs {
		if m.alive {
			out = append(out, m)
		}
	}
	return out
}

// onActivation snapshots pending and queued-unstarted jobs plus alive
// machines into an etc.Instance, runs the policy and requeues accordingly.
func (s *Sim) onActivation() {
	defer s.push(s.now+s.cfg.ActivationInterval, evActivation, 0, 0)
	machs := s.aliveMachines()
	if len(machs) == 0 {
		return
	}
	// Re-pool queued but unstarted jobs: the batch scheduler replans them.
	var batch []*job
	for _, j := range s.jobs {
		switch j.state {
		case jobPending, jobQueued:
			batch = append(batch, j)
		}
	}
	for _, m := range machs {
		m.queue = m.queue[:0]
	}
	if len(batch) == 0 {
		return
	}
	s.metrics.Activations++
	s.record(eventlog.Event{T: s.now, Type: eventlog.Admit})

	in := etc.New(fmt.Sprintf("activation-%d@%.1f", s.metrics.Activations, s.now), len(batch), len(machs))
	for bi, j := range batch {
		for mi, m := range machs {
			in.Set(bi, mi, s.etcOf(j, m))
		}
	}
	for mi, m := range machs {
		if m.busyTill > s.now {
			in.Ready[mi] = m.busyTill - s.now
		}
	}
	in.Finalize()

	assign := s.policy.Assign(in, s.cfg.Seed^uint64(s.metrics.Activations)*0x9e3779b97f4a7c15)
	if err := assign.Validate(in); err != nil {
		panic(fmt.Sprintf("gridsim: policy %s produced invalid schedule: %v", s.policy.Name(), err))
	}
	// Enqueue per machine in SPT order (the flowtime convention of the
	// static evaluator).
	st := schedule.NewState(in, assign)
	for mi, m := range machs {
		for _, bi := range st.JobsOn(mi) {
			j := batch[bi]
			j.state = jobQueued
			j.mach = m.id
			m.queue = append(m.queue, j.id)
		}
		s.kick(m)
	}
}

// kick starts the next queued job on m if it is idle.
func (s *Sim) kick(m *machine) {
	if !m.alive || m.running >= 0 || len(m.queue) == 0 || m.busyTill > s.now {
		return
	}
	jid := m.queue[0]
	m.queue = m.queue[1:]
	j := s.jobs[jid]
	j.state = jobRunning
	j.started = s.now
	j.mach = m.id
	m.running = jid
	d := s.etcOf(j, m)
	m.busyTill = s.now + d
	m.busyTime += d
	s.push(m.busyTill, evCompletion, jid, m.id)
}

func (s *Sim) onCompletion(jid, mid int) {
	m := s.machs[mid]
	j := s.jobs[jid]
	if !m.alive || m.running != jid || j.state != jobRunning {
		return // stale event: the machine left and the job was re-pooled
	}
	j.state = jobDone
	j.finished = s.now
	m.running = -1
	s.metrics.JobsCompleted++
	s.record(eventlog.Event{T: s.now, Type: eventlog.Complete, Job: uint64(jid) + 1})
	if s.now > s.metrics.Makespan {
		s.metrics.Makespan = s.now
	}
	s.kick(m)
}

func (s *Sim) onJoin() {
	s.addMachine(s.now)
	s.metrics.MachinesJoined++
	s.push(s.exp(s.cfg.JoinRate), evJoin, 0, 0)
}

func (s *Sim) onLeave() {
	defer s.push(s.exp(s.cfg.LeaveRate), evLeave, 0, 0)
	alive := s.aliveMachines()
	if len(alive) <= 1 {
		return // never drop the last machine
	}
	m := alive[s.r.Intn(len(alive))]
	m.alive = false
	m.left = s.now
	s.metrics.MachinesLeft++
	s.record(eventlog.Event{T: s.now, Type: eventlog.Fail, Mach: uint64(m.id) + 1})
	// Running job is lost (non-preemptive restart) and queued jobs are
	// re-pooled for the next activation.
	if m.running >= 0 {
		j := s.jobs[m.running]
		// Remove the busy time the machine will not actually deliver.
		m.busyTime -= m.busyTill - s.now
		j.state = jobPending
		j.mach = -1
		j.restarts++
		s.metrics.JobsRestarted++
		m.running = -1
	}
	for _, jid := range m.queue {
		j := s.jobs[jid]
		j.state = jobPending
		j.mach = -1
	}
	m.queue = nil
	m.busyTill = s.now
}

// finish computes the aggregate metrics at the horizon.
func (s *Sim) finish() {
	s.now = s.cfg.Horizon
	var resp, wait float64
	n := 0
	for _, j := range s.jobs {
		if j.state == jobDone {
			resp += j.finished - j.arrived
			wait += j.started - j.arrived
			n++
		}
	}
	if n > 0 {
		s.metrics.MeanResponse = resp / float64(n)
		s.metrics.MeanWait = wait / float64(n)
	}
	var busy, aliveTime float64
	for _, m := range s.machs {
		end := m.left
		if m.alive {
			end = s.cfg.Horizon
		}
		aliveTime += end - m.joined
		b := m.busyTime
		if m.busyTill > end {
			b -= m.busyTill - end // unfinished tail beyond horizon
		}
		busy += b
	}
	if aliveTime > 0 {
		s.metrics.Utilization = busy / aliveTime
	}
}

// Simulate is the convenience one-shot API.
func Simulate(cfg Config, policy Policy) (Metrics, error) {
	s, err := NewSim(cfg, policy)
	if err != nil {
		return Metrics{}, err
	}
	return s.Run(), nil
}
