package gridsim

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"gridcma/internal/rng"
)

// Arrival is one externally supplied job arrival: the simulated time at
// which the job enters the system and its base workload (the per-job
// factor of the ETC model; actual execution time on machine m is
// Base × machine multiplier × pair noise).
type Arrival struct {
	Time float64
	Base float64
}

// SampleTrace draws the arrival process a Config describes (Poisson with
// ArrivalRate, workloads U[1, TaskRange], capped by MaxJobs/Horizon) as
// an explicit trace, so a scenario can be replayed bit-identically across
// policies or persisted with WriteTrace.
func SampleTrace(cfg Config, seed uint64) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	var out []Arrival
	t := 0.0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		t += -math.Log(u) / cfg.ArrivalRate
		if t > cfg.Horizon {
			return out, nil
		}
		out = append(out, Arrival{Time: t, Base: r.Uniform(1, cfg.TaskRange)})
		if cfg.MaxJobs > 0 && len(out) == cfg.MaxJobs {
			return out, nil
		}
	}
}

// validateTrace checks trace entries against the horizon.
func validateTrace(trace []Arrival, horizon float64) error {
	for i, a := range trace {
		if a.Time < 0 || a.Time > horizon {
			return fmt.Errorf("gridsim: trace[%d] time %v outside [0, %v]", i, a.Time, horizon)
		}
		if a.Base < 1 {
			return fmt.Errorf("gridsim: trace[%d] base %v must be >= 1", i, a.Base)
		}
	}
	return nil
}

// WriteTrace serialises a trace as "time,base" CSV lines.
func WriteTrace(w io.Writer, trace []Arrival) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("time,base\n"); err != nil {
		return err
	}
	for _, a := range trace {
		fmt.Fprintf(bw, "%.6f,%.6f\n", a.Time, a.Base)
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Arrival, error) {
	sc := bufio.NewScanner(r)
	var out []Arrival
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if line == "time,base" {
				continue
			}
		}
		var a Arrival
		if _, err := fmt.Sscanf(line, "%f,%f", &a.Time, &a.Base); err != nil {
			return nil, fmt.Errorf("gridsim: bad trace line %q: %v", line, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
