package experiments

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"bytes"
	"strings"

	"gridcma/internal/run"
)

// The package's tests reproduce the paper's full table/figure pipeline at
// reduced budgets — minutes of engine time. They are part of the normal
// suite but skipped wholesale under -short, which the CI race job uses:
// the race detector's overhead on this volume of pure compute exceeds
// test timeouts without exercising any concurrency the engine packages'
// own race-run tests don't already cover.
func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		fmt.Println("skipping experiments reproduction tests in -short mode")
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// tiny options keep the full-table tests fast; the qualitative shapes they
// assert are budget-robust.
func tinyOpts() Options {
	return Options{Budget: run.Budget{MaxIterations: 10}, Runs: 2, Seed: 1}
}

func TestInstancesAreBenchmarkShaped(t *testing.T) {
	insts := Instances()
	if len(insts) != 12 {
		t.Fatalf("%d instances", len(insts))
	}
	for _, in := range insts {
		if in.Jobs != 512 || in.Machs != 16 {
			t.Errorf("%s: %d×%d", in.Name, in.Jobs, in.Machs)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", in.Name, err)
		}
	}
	// Caching: same pointer back.
	if Instance("u_c_hihi.0") != Instance("u_c_hihi.0") {
		t.Error("instance cache broken")
	}
}

func TestInstanceUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Instance("u_x_nope.0")
}

func TestReferencesCoverAllInstances(t *testing.T) {
	refs := References()
	for _, name := range InstanceNames {
		r, ok := refs[name]
		if !ok {
			t.Fatalf("no reference for %s", name)
		}
		if r.BraunGAMakespan <= 0 || r.CMAMakespan <= 0 || r.LJFRSJFRFlowtime <= 0 ||
			r.CMAFlowtime <= 0 || r.StruggleGAFlowtime <= 0 {
			t.Errorf("%s: non-positive reference values: %+v", name, r)
		}
		// Published shape: cMA flowtime beats both LJFR-SJFR and Struggle.
		if r.CMAFlowtime >= r.LJFRSJFRFlowtime {
			t.Errorf("%s: published cMA flowtime should beat LJFR-SJFR", name)
		}
		if r.CMAFlowtime >= r.StruggleGAFlowtime {
			t.Errorf("%s: published cMA flowtime should beat Struggle GA", name)
		}
	}
}

func TestRepeatAggregates(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 5}, Runs: 3, Seed: 9}
	s := Repeat(TunedCMA(), Instance("u_c_lolo.0"), o)
	if len(s.Runs) != 3 {
		t.Fatalf("runs %d", len(s.Runs))
	}
	if s.Makespans.N != 3 {
		t.Fatal("summary over wrong n")
	}
	if s.BestMakespan != s.Makespans.Min {
		t.Error("best makespan must equal min")
	}
	if s.Algorithm != "cMA" || s.Instance != "u_c_lolo.0" {
		t.Errorf("labels %q %q", s.Algorithm, s.Instance)
	}
}

func TestRepeatDeterministicAcrossWorkerCounts(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 5}, Runs: 4, Seed: 2, Workers: 1}
	a := Repeat(TunedCMA(), Instance("u_c_lolo.0"), o)
	o.Workers = 4
	b := Repeat(TunedCMA(), Instance("u_c_lolo.0"), o)
	for i := range a.Runs {
		if a.Runs[i].Fitness != b.Runs[i].Fitness {
			t.Fatal("worker count changed per-seed results")
		}
	}
}

func TestFairBudgetsEqualiseEvals(t *testing.T) {
	evals := 3700
	algs := []Algorithm{TunedCMA(), BraunGA(), SteadyStateGA(), StruggleGA()}
	for _, alg := range algs {
		b := FairBudget(alg, evals)
		got := b.MaxIterations * evalsPerIteration(alg)
		if got < evals/2 || got > evals {
			t.Errorf("%s: fair budget yields %d evals, want ≈%d", alg.Name(), got, evals)
		}
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	// The strongest, most budget-robust claim of the paper: cMA improves
	// hugely on LJFR-SJFR flowtime on every instance (22-90% published).
	rows := Table4(tinyOpts())
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.CMA >= r.LJFRSJFR {
			t.Errorf("%s: cMA flowtime %v did not improve on LJFR-SJFR %v", r.Instance, r.CMA, r.LJFRSJFR)
		}
		if r.Delta <= 0 {
			t.Errorf("%s: delta %v", r.Instance, r.Delta)
		}
	}
}

func TestTable2StructureAndSanity(t *testing.T) {
	// Run only a subset of instances' worth of budget by reusing tiny
	// options; assert structure plus a weak sanity shape: measured
	// makespans positive and within 100x of each other.
	rows := Table2(tinyOpts())
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BraunGA <= 0 || r.CMA <= 0 {
			t.Errorf("%s: non-positive makespans", r.Instance)
		}
		if r.CMA > 100*r.BraunGA || r.BraunGA > 100*r.CMA {
			t.Errorf("%s: makespans wildly inconsistent: %v vs %v", r.Instance, r.BraunGA, r.CMA)
		}
		if r.PaperBraunGA == 0 || r.PaperCMA == 0 {
			t.Errorf("%s: missing paper values", r.Instance)
		}
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	rows := Table5(tinyOpts())
	better := 0
	for _, r := range rows {
		if r.CMA < r.StruggleGA {
			better++
		}
	}
	// Published: cMA wins on all 12. Under a tiny budget we still expect
	// a clear majority.
	if better < 8 {
		t.Errorf("cMA beat StruggleGA on flowtime only %d/12 times", better)
	}
}

func TestRobustnessSmallRelStd(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 15}, Runs: 4, Seed: 3}
	rows := Robustness(o)
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The paper reports ~1%; allow generous slack at tiny budgets.
		if r.RelStd > 0.10 {
			t.Errorf("%s: relative std %.2f%% too large", r.Instance, 100*r.RelStd)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]string{
		"population height":          "5",
		"population width":           "5",
		"nb solutions to recombine":  "3",
		"nb recombinations":          "25",
		"nb mutations":               "12",
		"start choice":               "LJFR-SJFR",
		"neighborhood pattern":       "C9",
		"recombination order":        "FLS",
		"mutation order":             "NRS",
		"recombine choice":           "One-Point",
		"recombine selection":        "3-Tournament",
		"mutate choice":              "Rebalance",
		"local search choice":        "LMCTS",
		"nb local search iterations": "5",
		"add only if better":         "true",
		"lambda":                     "0.75",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Parameter] = r.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Table1[%s] = %q, want %q", k, got[k], v)
		}
	}
}

func TestFigure2LMCTSWins(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 12}, Runs: 2, Seed: 4}
	series := Figure2(o)
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	byLabel := map[string]Series{}
	for _, s := range series {
		byLabel[s.Label] = s
	}
	lmcts, lm := byLabel["LMCTS"], byLabel["LM"]
	if lmcts.Final() >= lm.Final() {
		t.Errorf("LMCTS final %v should beat LM %v (paper Fig. 2)", lmcts.Final(), lm.Final())
	}
}

func TestFigure3PanmicticNotBest(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 12}, Runs: 2, Seed: 5}
	series := Figure3(o)
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	var pan, best float64
	first := true
	for _, s := range series {
		if s.Label == "Panmictic" {
			pan = s.Final()
			continue
		}
		if first || s.Final() < best {
			best = s.Final()
			first = false
		}
	}
	if pan < best {
		t.Errorf("panmixia (%v) should not beat the best structured pattern (%v)", pan, best)
	}
}

func TestFigure4And5RunAndAreMonotone(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 8}, Runs: 1, Seed: 6}
	for name, series := range map[string][]Series{"fig4": Figure4(o), "fig5": Figure5(o)} {
		if len(series) != 3 {
			t.Fatalf("%s: %d series", name, len(series))
		}
		for _, s := range series {
			if len(s.Points) != 9 { // initial sample + 8 iterations
				t.Errorf("%s/%s: %d points", name, s.Label, len(s.Points))
			}
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Makespan > s.Points[i-1].Makespan+1e-9 {
					t.Errorf("%s/%s: best makespan regressed", name, s.Label)
					break
				}
			}
		}
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Label: "x", Points: []Point{{Iteration: 0, Makespan: 10}, {Iteration: 1, Makespan: 8}}}
	if s.Final() != 8 {
		t.Error("Final")
	}
	if s.At(0) != 10 || s.At(1) != 8 || s.At(99) != 8 {
		t.Error("At")
	}
	if (Series{}).Final() != 0 || (Series{}).At(3) != 0 {
		t.Error("empty series")
	}
}

func TestFormattingAndCSV(t *testing.T) {
	o := Options{Budget: run.Budget{MaxIterations: 3}, Runs: 1, Seed: 7}
	rows := Table4(o)
	h, cells := Table4Cells(rows)
	txt := FormatTable(h, cells)
	if !strings.Contains(txt, "u_c_hihi.0") || !strings.Contains(txt, "Δ%") {
		t.Error("table text incomplete")
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, h, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 13 {
		t.Errorf("%d csv lines, want header+12", len(lines))
	}

	// All the remaining cell builders produce consistent widths.
	h2, c2 := Table2Cells(Table2(o))
	checkCells(t, h2, c2)
	h3, c3 := Table3Cells(Table3(o))
	checkCells(t, h3, c3)
	h5, c5 := Table5Cells(Table5(o))
	checkCells(t, h5, c5)
	hr, cr := RobustnessCells(Robustness(o))
	checkCells(t, hr, cr)
	h1, c1 := Table1Cells(Table1())
	checkCells(t, h1, c1)
	fig := Figure5(Options{Budget: run.Budget{MaxIterations: 2}, Runs: 1, Seed: 8})
	hs, cs := SeriesCells(fig)
	checkCells(t, hs, cs)
	hss, css := SeriesSummaryCells(fig)
	checkCells(t, hss, css)
}

func checkCells(t *testing.T, headers []string, rows [][]string) {
	t.Helper()
	if len(rows) == 0 {
		t.Error("no rows")
	}
	for _, r := range rows {
		if len(r) != len(headers) {
			t.Fatalf("row width %d != header width %d", len(r), len(headers))
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Runs: 1}).Validate(); err == nil {
		t.Error("unbounded budget accepted")
	}
	if err := (Options{Budget: run.Budget{MaxIterations: 1}, Runs: 0}).Validate(); err == nil {
		t.Error("zero runs accepted")
	}
	if err := Quick().Validate(); err != nil {
		t.Error(err)
	}
	if err := Full().Validate(); err != nil {
		t.Error(err)
	}
}

func TestHeuristicsTableShape(t *testing.T) {
	rows := HeuristicsTable()
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Makespans) < 8 {
			t.Fatalf("%s: only %d heuristics", r.Instance, len(r.Makespans))
		}
		best := r.Makespans[r.BestName]
		for n, ms := range r.Makespans {
			if ms <= 0 {
				t.Errorf("%s/%s: non-positive makespan", r.Instance, n)
			}
			if ms < best {
				t.Errorf("%s: BestName %s (%v) beaten by %s (%v)", r.Instance, r.BestName, best, n, ms)
			}
		}
		// MET must never be the winner on consistent instances.
		if strings.HasPrefix(r.Instance, "u_c") && r.BestName == "met" {
			t.Errorf("%s: MET cannot win on a consistent matrix", r.Instance)
		}
	}
	h, c := HeuristicsCells(rows)
	checkCells(t, h, c)
}

func TestTakeoverStudyOrdering(t *testing.T) {
	curves, err := TakeoverStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("%d curves", len(curves))
	}
	byName := map[string]float64{}
	for _, c := range curves {
		if c.TakeoverTime < 0 {
			t.Fatalf("%v did not saturate", c.Pattern)
		}
		byName[c.Pattern.String()] = c.TakeoverTime
	}
	if !(byName["Panmictic"] < byName["C9"] && byName["C9"] < byName["L5"]) {
		t.Errorf("takeover times out of order: %v", byName)
	}
	h, c := TakeoverCells(curves)
	checkCells(t, h, c)
}
