package experiments

import (
	"fmt"

	"gridcma/internal/cell"
	"gridcma/internal/operators"
	"gridcma/internal/takeover"
)

// TakeoverStudy measures the selection pressure of every neighborhood
// pattern by synchronous takeover analysis on a 40×40 torus with the
// paper's 3-tournament selection — the quantitative backdrop to the
// paper's §3.2 claim that the neighborhood pattern "decides the selective
// pressure of the algorithm".
func TakeoverStudy(seed uint64) ([]takeover.Curve, error) {
	o := takeover.Options{
		Width: 40, Height: 40,
		Selector:      operators.NewTournament(3),
		MaxIterations: 2000,
		Runs:          10,
		Seed:          seed,
		Synchronous:   true,
	}
	return takeover.Compare(
		[]cell.Pattern{cell.L5, cell.L9, cell.C9, cell.C13, cell.Panmictic}, o)
}

// TakeoverCells renders the takeover study: takeover time plus growth at
// a few probe iterations per pattern.
func TakeoverCells(curves []takeover.Curve) ([]string, [][]string) {
	headers := []string{"pattern", "takeover time", "growth@4", "growth@8", "growth@16"}
	out := make([][]string, len(curves))
	for i, c := range curves {
		tt := "did not saturate"
		if c.TakeoverTime >= 0 {
			tt = fmt.Sprintf("%.1f", c.TakeoverTime)
		}
		out[i] = []string{
			c.Pattern.String(), tt,
			fmt.Sprintf("%.4f", c.GrowthAt(4)),
			fmt.Sprintf("%.4f", c.GrowthAt(8)),
			fmt.Sprintf("%.4f", c.GrowthAt(16)),
		}
	}
	return headers, out
}
