// Package experiments reproduces the evaluation section of the paper: one
// runner per table (2–5) and per tuning figure (2–5), the Table 1
// configuration dump and the §5.1 robustness study. Each runner executes
// the relevant algorithms on regenerated Braun-model instances, reports
// our measurements next to the values published in the paper and checks
// the qualitative *shape* of the published result (who wins, by roughly
// what factor) — absolute values are not comparable because the original
// benchmark files are not redistributable (DESIGN.md §3).
package experiments

import (
	"sync"

	"gridcma/internal/etc"
)

// InstanceNames lists the 12 benchmark instances of the paper's tables in
// publication order.
var InstanceNames = []string{
	"u_c_hihi.0", "u_c_hilo.0", "u_c_lohi.0", "u_c_lolo.0",
	"u_i_hihi.0", "u_i_hilo.0", "u_i_lohi.0", "u_i_lolo.0",
	"u_s_hihi.0", "u_s_hilo.0", "u_s_lohi.0", "u_s_lolo.0",
}

// Reference holds the values published in the paper for one instance.
// All values are in the paper's arbitrary time units and refer to the
// authors' original instance files, so they anchor shapes, not magnitudes.
type Reference struct {
	Instance string

	// Table 2: best makespans.
	BraunGAMakespan float64
	CMAMakespan     float64

	// Table 3: best makespans of the two other GAs.
	CarreteroXhafaGAMakespan float64
	StruggleGAMakespan       float64

	// Table 4: flowtimes.
	LJFRSJFRFlowtime float64
	CMAFlowtime      float64

	// Table 5: Struggle GA flowtime.
	StruggleGAFlowtime float64
}

// References returns the published numbers keyed by instance name.
func References() map[string]Reference {
	list := []Reference{
		{"u_c_hihi.0", 8050844.5, 7700929.751, 7752349.37, 7752689.08, 2025822398.665, 1037049914.209, 1039048563},
		{"u_c_hilo.0", 156249.2, 155334.805, 155571.80, 156680.58, 35565379.565, 27487998.874, 27620519.9},
		{"u_c_lohi.0", 258756.77, 251360.202, 250550.86, 253926.06, 66300486.264, 34454029.416, 34566883.8},
		{"u_c_lolo.0", 5272.25, 5218.18, 5240.14, 5251.15, 1175661.381, 913976.235, 917647.31},
		{"u_i_hihi.0", 3104762.5, 3186664.713, 3080025.77, 3161104.92, 3665062510.364, 361613627.327, 379768078},
		{"u_i_hilo.0", 75816.13, 75856.623, 76307.90, 75598.48, 41345273.211, 12572126.577, 12674329.1},
		{"u_i_lohi.0", 107500.72, 110620.786, 107294.23, 111792.17, 118925452.958, 12707611.511, 13417596.7},
		{"u_i_lolo.0", 2614.39, 2624.211, 2610.23, 2620.72, 1385846.186, 439073.652, 440728.98},
		{"u_s_hihi.0", 4566206, 4424540.894, 4371324.45, 4433792.28, 2631459406.501, 513769399.117, 524874694},
		// The paper prints 983334.64 for u_s_hilo.0 in Table 3, an obvious
		// typo (an order of magnitude off every neighbour); we keep the
		// printed value and note it in EXPERIMENTS.md.
		{"u_s_hilo.0", 98519.4, 98283.742, 983334.64, 98560.04, 35745658.309, 16300484.885, 16372763.2},
		{"u_s_lohi.0", 130616.53, 130014.529, 127762.53, 130425.85, 86390552.327, 15179363.456, 15639622.5},
		{"u_s_lolo.0", 3583.44, 3522.099, 3539.43, 3534.31, 1389828.755, 594665.973, 598332.69},
	}
	out := make(map[string]Reference, len(list))
	for _, r := range list {
		out[r.Instance] = r
	}
	return out
}

var (
	instOnce  sync.Once
	instCache map[string]*etc.Instance
)

// Instance returns (and caches) the regenerated benchmark instance with
// the given name. It panics on unknown names: the 12 names are a closed
// set fixed by the benchmark.
func Instance(name string) *etc.Instance {
	instOnce.Do(func() {
		instCache = make(map[string]*etc.Instance, len(InstanceNames))
		for _, n := range InstanceNames {
			in, err := etc.GenerateByName(n)
			if err != nil {
				panic(err)
			}
			instCache[n] = in
		}
	})
	in, ok := instCache[name]
	if !ok {
		panic("experiments: unknown benchmark instance " + name)
	}
	return in
}

// Instances returns all 12 benchmark instances in publication order.
func Instances() []*etc.Instance {
	out := make([]*etc.Instance, len(InstanceNames))
	for i, n := range InstanceNames {
		out[i] = Instance(n)
	}
	return out
}
