package experiments

import (
	"fmt"
	"math"
	"time"

	"gridcma/internal/cell"
	"gridcma/internal/cma"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
	"gridcma/internal/run"
)

// Point is one sample of a tuning time series: the best makespan so far
// after a number of iterations / elapsed time, averaged over runs.
type Point struct {
	Iteration int
	Elapsed   time.Duration // mean over runs
	Makespan  float64       // mean best-so-far over runs
}

// Series is the makespan-reduction curve of one configuration variant, the
// unit of Figures 2–5.
type Series struct {
	Label  string
	Points []Point
}

// Final returns the last (best) makespan of the series.
func (s Series) Final() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Makespan
}

// At returns the mean makespan after the given iteration (clamped).
func (s Series) At(iter int) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	for _, p := range s.Points {
		if p.Iteration >= iter {
			return p.Makespan
		}
	}
	return s.Final()
}

// FigureInstance is the instance the tuning figures run on. The paper
// tunes on random ETC instances; we fix the consistent hi-hi benchmark
// instance, whose scale matches Fig. 2's y-axis.
const FigureInstance = "u_c_hihi.0"

// traceVariant runs the variant configuration o.Runs times and averages
// the best-makespan trajectory pointwise (runs are aligned by iteration,
// which iteration-bounded budgets make exact).
func traceVariant(label string, cfg cma.Config, o Options) Series {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	sched, err := cma.New(cfg)
	if err != nil {
		panic(err)
	}
	in := Instance(FigureInstance)
	var agg []Point
	for k := 0; k < o.Runs; k++ {
		var trace []run.Progress
		sched.Run(in, o.Budget, o.Seed+uint64(k), func(p run.Progress) {
			trace = append(trace, p)
		})
		if agg == nil {
			agg = make([]Point, len(trace))
		}
		if len(trace) < len(agg) {
			agg = agg[:len(trace)] // time-budgeted runs may differ in length
		}
		// The figures plot makespan *reduction*, so each run contributes
		// its running-minimum makespan: the engines track the best
		// solution by scalarised fitness, under which the best-so-far
		// makespan alone may occasionally tick upwards.
		low := math.Inf(1)
		for i := range agg {
			if trace[i].Makespan < low {
				low = trace[i].Makespan
			}
			agg[i].Iteration = trace[i].Iteration
			agg[i].Elapsed += trace[i].Elapsed
			agg[i].Makespan += low
		}
	}
	for i := range agg {
		agg[i].Elapsed /= time.Duration(o.Runs)
		agg[i].Makespan /= float64(o.Runs)
	}
	return Series{Label: label, Points: agg}
}

// Figure2 reproduces Fig. 2: makespan reduction under the three local
// search methods (LM, SLM, LMCTS), everything else per Table 1.
func Figure2(o Options) []Series {
	methods := []localsearch.Method{localsearch.LM{}, localsearch.SLM{}, localsearch.LMCTS{}}
	out := make([]Series, 0, len(methods))
	for _, m := range methods {
		cfg := cma.DefaultConfig()
		cfg.LocalSearch = m
		out = append(out, traceVariant(m.Name(), cfg, o))
	}
	return out
}

// Figure3 reproduces Fig. 3: makespan reduction under the neighborhood
// patterns Panmictic, L5, L9, C9 and C13.
func Figure3(o Options) []Series {
	patterns := []cell.Pattern{cell.Panmictic, cell.L5, cell.L9, cell.C9, cell.C13}
	out := make([]Series, 0, len(patterns))
	for _, p := range patterns {
		cfg := cma.DefaultConfig()
		cfg.Pattern = p
		out = append(out, traceVariant(p.String(), cfg, o))
	}
	return out
}

// Figure4 reproduces Fig. 4: makespan reduction under N-tournament
// selection with N = 3, 5, 7.
func Figure4(o Options) []Series {
	out := make([]Series, 0, 3)
	for _, n := range []int{3, 5, 7} {
		cfg := cma.DefaultConfig()
		cfg.Selector = operators.NewTournament(n)
		out = append(out, traceVariant(fmt.Sprintf("Ntour(%d)", n), cfg, o))
	}
	return out
}

// Figure5 reproduces Fig. 5: makespan reduction under the recombination
// sweep orders FLS, FRS and NRS.
func Figure5(o Options) []Series {
	out := make([]Series, 0, 3)
	for _, ord := range []cell.Order{cell.FLS, cell.FRS, cell.NRS} {
		cfg := cma.DefaultConfig()
		cfg.RecombOrder = ord
		out = append(out, traceVariant(ord.String(), cfg, o))
	}
	return out
}

// Table1Setting is one row of the Table 1 configuration dump.
type Table1Setting struct{ Parameter, Value string }

// Table1 returns the tuned configuration exactly as the paper's Table 1
// lists it, read back from the live DefaultConfig so the dump can never
// drift from the code.
func Table1() []Table1Setting {
	cfg := cma.DefaultConfig()
	sel := cfg.Selector.(operators.Tournament)
	return []Table1Setting{
		{"max exec time", "90s (paper protocol; configurable)"},
		{"population height", fmt.Sprint(cfg.Height)},
		{"population width", fmt.Sprint(cfg.Width)},
		{"nb solutions to recombine", fmt.Sprint(cfg.SolutionsToRecombine)},
		{"nb recombinations", fmt.Sprint(cfg.Recombinations)},
		{"nb mutations", fmt.Sprint(cfg.Mutations)},
		{"start choice", "LJFR-SJFR"},
		{"neighborhood pattern", cfg.Pattern.String()},
		{"recombination order", cfg.RecombOrder.String()},
		{"mutation order", cfg.MutOrder.String()},
		{"recombine choice", cfg.Crossover.Name()},
		{"recombine selection", sel.Name()},
		{"mutate choice", cfg.Mutator.Name()},
		{"local search choice", cfg.LocalSearch.Name()},
		{"nb local search iterations", fmt.Sprint(cfg.LSIterations)},
		{"add only if better", fmt.Sprint(cfg.AddOnlyIfBetter)},
		{"lambda", fmt.Sprint(cfg.Objective.Lambda)},
	}
}
