package experiments

import (
	"fmt"

	"gridcma/internal/heuristics"
	"gridcma/internal/schedule"
)

// HeuristicsRow is one instance's makespans across every constructive
// heuristic in the library — the Braun-et-al.-style baseline panorama the
// paper's benchmark descends from. Values are deterministic (no runs).
type HeuristicsRow struct {
	Instance  string
	Makespans map[string]float64 // heuristic name -> makespan
	BestName  string
}

// HeuristicsTable evaluates all constructive heuristics on the 12
// benchmark instances.
func HeuristicsTable() []HeuristicsRow {
	rows := make([]HeuristicsRow, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		in := Instance(name)
		row := HeuristicsRow{Instance: name, Makespans: map[string]float64{}}
		best := ""
		for _, hn := range heuristics.Names() {
			h, err := heuristics.ByName(hn)
			if err != nil {
				panic(err)
			}
			ms := schedule.NewState(in, h(in)).Makespan()
			row.Makespans[hn] = ms
			if best == "" || ms < row.Makespans[best] {
				best = hn
			}
		}
		row.BestName = best
		rows = append(rows, row)
	}
	return rows
}

// HeuristicsCells renders the heuristic panorama.
func HeuristicsCells(rows []HeuristicsRow) ([]string, [][]string) {
	names := heuristics.Names()
	headers := append([]string{"Instance"}, names...)
	headers = append(headers, "best")
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := []string{r.Instance}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.0f", r.Makespans[n]))
		}
		cells = append(cells, r.BestName)
		out[i] = cells
	}
	return headers, out
}
