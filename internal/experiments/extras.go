package experiments

import (
	"fmt"
	"time"

	"gridcma/internal/etc"
	"gridcma/internal/heuristics"
	"gridcma/internal/schedule"
)

// HeuristicsRow is one instance's makespans across every constructive
// heuristic in the library — the Braun-et-al.-style baseline panorama the
// paper's benchmark descends from. Values are deterministic (no runs).
type HeuristicsRow struct {
	Instance  string
	Makespans map[string]float64 // heuristic name -> makespan
	BestName  string
}

// HeuristicsTable evaluates all constructive heuristics on the 12
// benchmark instances.
func HeuristicsTable() []HeuristicsRow {
	rows := make([]HeuristicsRow, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		in := Instance(name)
		row := HeuristicsRow{Instance: name, Makespans: map[string]float64{}}
		best := ""
		for _, hn := range heuristics.Names() {
			h, err := heuristics.ByName(hn)
			if err != nil {
				panic(err)
			}
			ms := schedule.NewState(in, h(in)).Makespan()
			row.Makespans[hn] = ms
			if best == "" || ms < row.Makespans[best] {
				best = hn
			}
		}
		row.BestName = best
		rows = append(rows, row)
	}
	return rows
}

// FrontierRow is one rung of the large-instance scaling experiment: the
// tuned cMA on a synthetic GenSpec instance far beyond the 512×16 Braun
// suite, reporting generation cost, matrix footprint and solution quality
// against the size axis the paper never reaches.
type FrontierRow struct {
	Spec         string
	Jobs, Machs  int
	BuildSeconds float64
	MatrixMB     float64
	Seconds      float64
	Iterations   int
	Makespan     float64
	Flowtime     float64
}

// DefaultFrontierSpecs is the ladder Frontier walks when the caller has
// no explicit specs — sized so an iteration-bounded run finishes in
// table time, not bench time (cmd/bench -frontier owns the 100k×1k rung).
var DefaultFrontierSpecs = []string{
	"4096x64:c_hihi:s1", "8192x128:c_hihi:s1", "16384x128:c_hihi:s1",
}

// Frontier generates each spec and runs the tuned cMA once per rung at
// the options' budget and seed (single run per rung — at these sizes the
// interesting axis is scale, not run-to-run spread).
func Frontier(o Options, specs []string) []FrontierRow {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	if len(specs) == 0 {
		specs = DefaultFrontierSpecs
	}
	rows := make([]FrontierRow, 0, len(specs))
	for _, s := range specs {
		g, err := etc.ParseGenSpec(s)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		in, err := g.Generate()
		if err != nil {
			panic(err)
		}
		row := FrontierRow{
			Spec: s, Jobs: in.Jobs, Machs: in.Machs,
			BuildSeconds: time.Since(start).Seconds(),
			MatrixMB:     float64(in.Bytes()) / (1 << 20),
		}
		start = time.Now()
		res := TunedCMA().Run(in, o.Budget, o.Seed, nil)
		row.Seconds = time.Since(start).Seconds()
		row.Iterations = res.Iterations
		row.Makespan = res.Makespan
		row.Flowtime = res.Flowtime
		rows = append(rows, row)
	}
	return rows
}

// FrontierCells renders the scaling ladder.
func FrontierCells(rows []FrontierRow) ([]string, [][]string) {
	headers := []string{"Spec", "Jobs", "Machs", "Build s", "Matrix MB", "Run s", "Iters", "Makespan", "Flowtime"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Spec,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Machs),
			fmt.Sprintf("%.2f", r.BuildSeconds),
			fmt.Sprintf("%.1f", r.MatrixMB),
			fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.0f", r.Makespan),
			fmt.Sprintf("%.0f", r.Flowtime),
		}
	}
	return headers, out
}

// HeuristicsCells renders the heuristic panorama.
func HeuristicsCells(rows []HeuristicsRow) ([]string, [][]string) {
	names := heuristics.Names()
	headers := append([]string{"Instance"}, names...)
	headers = append(headers, "best")
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := []string{r.Instance}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.0f", r.Makespans[n]))
		}
		cells = append(cells, r.BestName)
		out[i] = cells
	}
	return headers, out
}
