package experiments

import (
	"context"
	"fmt"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/ga"
	"gridcma/internal/run"
	"gridcma/internal/runner"
	"gridcma/internal/sa"
	"gridcma/internal/stats"
	"gridcma/internal/tabu"
)

// Algorithm is the uniform face of every metaheuristic in the library —
// the runner package's Scheduler contract; cma.Scheduler, ga.Scheduler,
// sa.Scheduler and tabu.Scheduler satisfy it.
type Algorithm = runner.Scheduler

// Assert the schedulers satisfy Algorithm.
var (
	_ Algorithm = (*cma.Scheduler)(nil)
	_ Algorithm = (*ga.Scheduler)(nil)
	_ Algorithm = (*sa.Scheduler)(nil)
	_ Algorithm = (*tabu.Scheduler)(nil)
)

// Options scales an experiment. The paper's protocol (90 s × 10 runs per
// instance) is Full(); tests and benches use much smaller budgets — the
// shapes the runners check are budget-robust.
type Options struct {
	Budget run.Budget
	Runs   int // independent runs per (algorithm, instance)
	Seed   uint64
	// Workers caps concurrent runs (they parallelise trivially); 0 means
	// GOMAXPROCS.
	Workers int
}

// Quick returns the options used by tests and examples: iteration-bounded
// (hence deterministic) and small.
func Quick() Options {
	return Options{Budget: run.Budget{MaxIterations: 40}, Runs: 3, Seed: 1}
}

// Full returns the paper's protocol: 90 s wall-clock, 10 runs.
func Full() Options {
	return Options{Budget: run.Budget{MaxTime: 90 * time.Second}, Runs: 10, Seed: 1}
}

// Validate reports the first option error.
func (o Options) Validate() error {
	switch {
	case !o.Budget.Bounded():
		return fmt.Errorf("experiments: unbounded budget")
	case o.Runs < 1:
		return fmt.Errorf("experiments: Runs = %d", o.Runs)
	case o.Workers < 0:
		return fmt.Errorf("experiments: negative Workers")
	}
	return nil
}

// Sample is the aggregate of repeated runs of one algorithm on one
// instance.
type Sample struct {
	Algorithm string
	Instance  string
	Runs      []run.Result

	BestMakespan float64 // min over runs (the paper reports best-of-10)
	BestFlowtime float64 // flowtime of the run with the best fitness
	BestFitness  float64
	Makespans    stats.Summary
	Flowtimes    stats.Summary
}

// Repeat runs alg on in o.Runs times with seeds o.Seed, o.Seed+1, ... on
// the batch executor's worker pool and aggregates the results.
func Repeat(alg Algorithm, in *etc.Instance, o Options) Sample {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	seeds := make([]uint64, o.Runs)
	for k := range seeds {
		seeds[k] = o.Seed + uint64(k)
	}
	batch, err := runner.RunBatch(o.Budget.Context(), runner.BatchSpec{
		Instances:  []runner.Instance{{Name: in.Name, In: in}},
		Schedulers: []runner.Scheduler{alg},
		Budget:     o.Budget,
		Seeds:      seeds,
		Workers:    o.Workers,
	})
	if err != nil && err != context.Canceled && err != context.DeadlineExceeded {
		panic(err)
	}
	results := make([]run.Result, len(batch))
	for i, b := range batch {
		results[i] = b.Result
	}
	return aggregate(alg.Name(), in.Name, results)
}

func aggregate(alg, inst string, results []run.Result) Sample {
	s := Sample{Algorithm: alg, Instance: inst, Runs: results}
	if len(results) == 0 { // every run cancelled before starting
		return s
	}
	ms := make([]float64, len(results))
	fts := make([]float64, len(results))
	bestIdx := 0
	for i, r := range results {
		ms[i] = r.Makespan
		fts[i] = r.Flowtime
		if r.Fitness < results[bestIdx].Fitness {
			bestIdx = i
		}
		if i == 0 || r.Makespan < s.BestMakespan {
			s.BestMakespan = r.Makespan
		}
	}
	s.BestFitness = results[bestIdx].Fitness
	s.BestFlowtime = results[bestIdx].Flowtime
	s.Makespans = stats.Summarize(ms)
	s.Flowtimes = stats.Summarize(fts)
	return s
}

// TunedCMA returns the paper's tuned cMA (Table 1).
func TunedCMA() Algorithm {
	s, err := cma.New(cma.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return s
}

// BraunGA returns the generational GA baseline of Tables 2.
func BraunGA() Algorithm {
	s, err := ga.New(ga.NewConfig(ga.Braun))
	if err != nil {
		panic(err)
	}
	return s
}

// SteadyStateGA returns the Carretero–Xhafa baseline of Table 3.
func SteadyStateGA() Algorithm {
	s, err := ga.New(ga.NewConfig(ga.SteadyState))
	if err != nil {
		panic(err)
	}
	return s
}

// StruggleGA returns the Struggle GA baseline of Tables 3 and 5.
func StruggleGA() Algorithm {
	s, err := ga.New(ga.NewConfig(ga.Struggle))
	if err != nil {
		panic(err)
	}
	return s
}

// SimulatedAnnealing returns the SA extra baseline.
func SimulatedAnnealing() Algorithm {
	s, err := sa.New(sa.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return s
}

// TabuSearch returns the tabu search extra baseline.
func TabuSearch() Algorithm {
	s, err := tabu.New(tabu.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return s
}

// evalsPerIteration estimates how many full fitness evaluations one budget
// iteration of the algorithm costs, used to grant different algorithms
// comparable budgets when running iteration-bounded (tests/benches). The
// time-budgeted reproduction path does not need this.
func evalsPerIteration(alg Algorithm) int {
	switch a := alg.(type) {
	case *cma.Scheduler:
		cfg := a.Config()
		return cfg.Recombinations + cfg.Mutations
	case *ga.Scheduler:
		if a.Config().Variant == ga.Braun {
			return a.Config().PopSize
		}
		return 1
	case *sa.Scheduler:
		return 1024 // one sweep ≈ 2×512 proposals
	case *tabu.Scheduler:
		return 128 // samples per step (default 8×16)
	default:
		return 1
	}
}

// FairBudget converts a total evaluation allowance into a per-algorithm
// iteration budget, so iteration-bounded comparisons give every algorithm
// roughly the same number of fitness evaluations.
func FairBudget(alg Algorithm, evals int) run.Budget {
	per := evalsPerIteration(alg)
	iters := evals / per
	if iters < 1 {
		iters = 1
	}
	return run.Budget{MaxIterations: iters}
}
