package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// FormatTable renders an aligned ASCII table.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes headers and rows as CSV.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Table2Cells converts Table 2 rows into printable cells.
func Table2Cells(rows []Table2Row) ([]string, [][]string) {
	headers := []string{"Instance", "BraunGA", "cMA", "Δ%", "paper:BraunGA", "paper:cMA", "paper:Δ%"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Instance, f1(r.BraunGA), f1(r.CMA), f2(r.Delta),
			f1(r.PaperBraunGA), f1(r.PaperCMA), f2(r.PaperDelta)}
	}
	return headers, out
}

// Table3Cells converts Table 3 rows into printable cells.
func Table3Cells(rows []Table3Row) ([]string, [][]string) {
	headers := []string{"Instance", "C&X GA", "StruggleGA", "cMA", "paper:C&X", "paper:Struggle", "paper:cMA"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Instance, f1(r.SteadyStateGA), f1(r.StruggleGA), f1(r.CMA),
			f1(r.PaperSteadyStateGA), f1(r.PaperStruggleGA), f1(r.PaperCMA)}
	}
	return headers, out
}

// Table4Cells converts Table 4 rows into printable cells.
func Table4Cells(rows []Table4Row) ([]string, [][]string) {
	headers := []string{"Instance", "LJFR-SJFR", "cMA", "Δ%", "paper:LJFR-SJFR", "paper:cMA", "paper:Δ%"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Instance, f1(r.LJFRSJFR), f1(r.CMA), f2(r.Delta),
			f1(r.PaperLJFRSJFR), f1(r.PaperCMA), f2(r.PaperDelta)}
	}
	return headers, out
}

// Table5Cells converts Table 5 rows into printable cells.
func Table5Cells(rows []Table5Row) ([]string, [][]string) {
	headers := []string{"Instance", "StruggleGA", "cMA", "Δ%", "paper:Struggle", "paper:cMA", "paper:Δ%"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Instance, f1(r.StruggleGA), f1(r.CMA), f2(r.Delta),
			f1(r.PaperStruggleGA), f1(r.PaperCMA), f2(r.PaperDelta)}
	}
	return headers, out
}

// RobustnessCells converts robustness rows into printable cells.
func RobustnessCells(rows []RobustnessRow) ([]string, [][]string) {
	headers := []string{"Instance", "best", "mean", "std", "relstd%"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Instance, f1(r.Makespans.Min), f1(r.Makespans.Mean),
			f1(r.Makespans.Std), f2(100 * r.RelStd)}
	}
	return headers, out
}

// SeriesCells flattens figure series into long-format cells
// (series, iteration, elapsed_ms, makespan).
func SeriesCells(series []Series) ([]string, [][]string) {
	headers := []string{"series", "iteration", "elapsed_ms", "makespan"}
	var out [][]string
	for _, s := range series {
		for _, p := range s.Points {
			out = append(out, []string{
				s.Label,
				fmt.Sprint(p.Iteration),
				fmt.Sprintf("%.2f", float64(p.Elapsed)/float64(time.Millisecond)),
				f1(p.Makespan),
			})
		}
	}
	return headers, out
}

// SeriesSummaryCells renders one row per series with its final makespan —
// the at-a-glance version of a figure.
func SeriesSummaryCells(series []Series) ([]string, [][]string) {
	headers := []string{"series", "points", "final makespan"}
	out := make([][]string, len(series))
	for i, s := range series {
		out[i] = []string{s.Label, fmt.Sprint(len(s.Points)), f1(s.Final())}
	}
	return headers, out
}

// Table1Cells renders the Table 1 configuration dump.
func Table1Cells(rows []Table1Setting) ([]string, [][]string) {
	headers := []string{"Parameter", "Value"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Parameter, r.Value}
	}
	return headers, out
}
