package experiments

import (
	"gridcma/internal/heuristics"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
	"gridcma/internal/stats"
)

// budgetFor grants alg a budget comparable to the options' budget. Time
// budgets apply to every algorithm unchanged (the paper's protocol);
// iteration budgets are interpreted as cMA iterations and converted into
// an evaluation-fair allowance for the other algorithms.
func budgetFor(alg Algorithm, o Options) run.Budget {
	if o.Budget.MaxTime > 0 {
		return o.Budget
	}
	evals := o.Budget.MaxIterations * evalsPerIteration(TunedCMA())
	return FairBudget(alg, evals)
}

func repeatFair(alg Algorithm, instName string, o Options) Sample {
	opts := o
	opts.Budget = budgetFor(alg, o)
	return Repeat(alg, Instance(instName), opts)
}

// Table2Row compares best makespans of Braun et al.'s GA and the cMA on
// one instance, next to the paper's published pair.
type Table2Row struct {
	Instance string

	BraunGA float64 // our measured best makespan
	CMA     float64
	Delta   float64 // 100·(BraunGA−CMA)/BraunGA, positive = cMA better

	PaperBraunGA float64
	PaperCMA     float64
	PaperDelta   float64
}

// Table2 reproduces Table 2 (makespan: Braun GA vs cMA).
func Table2(o Options) []Table2Row {
	refs := References()
	rows := make([]Table2Row, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		gaS := repeatFair(BraunGA(), name, o)
		cmaS := repeatFair(TunedCMA(), name, o)
		ref := refs[name]
		rows = append(rows, Table2Row{
			Instance:     name,
			BraunGA:      gaS.BestMakespan,
			CMA:          cmaS.BestMakespan,
			Delta:        stats.PercentDelta(gaS.BestMakespan, cmaS.BestMakespan),
			PaperBraunGA: ref.BraunGAMakespan,
			PaperCMA:     ref.CMAMakespan,
			PaperDelta:   stats.PercentDelta(ref.BraunGAMakespan, ref.CMAMakespan),
		})
	}
	return rows
}

// Table3Row compares best makespans of the Carretero–Xhafa GA, the
// Struggle GA and the cMA.
type Table3Row struct {
	Instance string

	SteadyStateGA float64
	StruggleGA    float64
	CMA           float64

	PaperSteadyStateGA float64
	PaperStruggleGA    float64
	PaperCMA           float64
}

// Table3 reproduces Table 3 (makespan: the two other GAs vs cMA).
func Table3(o Options) []Table3Row {
	refs := References()
	rows := make([]Table3Row, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		ss := repeatFair(SteadyStateGA(), name, o)
		st := repeatFair(StruggleGA(), name, o)
		cm := repeatFair(TunedCMA(), name, o)
		ref := refs[name]
		rows = append(rows, Table3Row{
			Instance:           name,
			SteadyStateGA:      ss.BestMakespan,
			StruggleGA:         st.BestMakespan,
			CMA:                cm.BestMakespan,
			PaperSteadyStateGA: ref.CarreteroXhafaGAMakespan,
			PaperStruggleGA:    ref.StruggleGAMakespan,
			PaperCMA:           ref.CMAMakespan,
		})
	}
	return rows
}

// Table4Row compares the flowtime of the LJFR-SJFR heuristic against the
// cMA's.
type Table4Row struct {
	Instance string

	LJFRSJFR float64
	CMA      float64
	Delta    float64 // improvement %

	PaperLJFRSJFR float64
	PaperCMA      float64
	PaperDelta    float64
}

// Table4 reproduces Table 4 (flowtime: LJFR-SJFR vs cMA). The heuristic
// side is deterministic, so it is evaluated once.
func Table4(o Options) []Table4Row {
	refs := References()
	rows := make([]Table4Row, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		in := Instance(name)
		h := schedule.NewState(in, heuristics.LJFRSJFR(in))
		cm := repeatFair(TunedCMA(), name, o)
		ref := refs[name]
		rows = append(rows, Table4Row{
			Instance:      name,
			LJFRSJFR:      h.Flowtime(),
			CMA:           cm.BestFlowtime,
			Delta:         stats.PercentDelta(h.Flowtime(), cm.BestFlowtime),
			PaperLJFRSJFR: ref.LJFRSJFRFlowtime,
			PaperCMA:      ref.CMAFlowtime,
			PaperDelta:    stats.PercentDelta(ref.LJFRSJFRFlowtime, ref.CMAFlowtime),
		})
	}
	return rows
}

// Table5Row compares Struggle GA and cMA flowtimes.
type Table5Row struct {
	Instance string

	StruggleGA float64
	CMA        float64
	Delta      float64

	PaperStruggleGA float64
	PaperCMA        float64
	PaperDelta      float64
}

// Table5 reproduces Table 5 (flowtime: Struggle GA vs cMA).
func Table5(o Options) []Table5Row {
	refs := References()
	rows := make([]Table5Row, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		st := repeatFair(StruggleGA(), name, o)
		cm := repeatFair(TunedCMA(), name, o)
		ref := refs[name]
		rows = append(rows, Table5Row{
			Instance:        name,
			StruggleGA:      st.BestFlowtime,
			CMA:             cm.BestFlowtime,
			Delta:           stats.PercentDelta(st.BestFlowtime, cm.BestFlowtime),
			PaperStruggleGA: ref.StruggleGAFlowtime,
			PaperCMA:        ref.CMAFlowtime,
			PaperDelta:      stats.PercentDelta(ref.StruggleGAFlowtime, ref.CMAFlowtime),
		})
	}
	return rows
}

// RobustnessRow is the §5.1 robustness evidence for one instance: the
// relative standard deviation of the cMA's best makespan across runs (the
// paper reports "roughly 1 %").
type RobustnessRow struct {
	Instance  string
	Makespans stats.Summary
	RelStd    float64
}

// Robustness reproduces the §5.1 robustness study.
func Robustness(o Options) []RobustnessRow {
	rows := make([]RobustnessRow, 0, len(InstanceNames))
	for _, name := range InstanceNames {
		s := repeatFair(TunedCMA(), name, o)
		rows = append(rows, RobustnessRow{
			Instance:  name,
			Makespans: s.Makespans,
			RelStd:    s.Makespans.RelStd(),
		})
	}
	return rows
}
