// Package evalpool provides the allocation-free evaluation plumbing shared
// by every metaheuristic engine: a pool of reusable scratch evaluators and
// an in-place best-solution tracker.
//
// Offspring in the engines follow one pipeline: Propose (fill a genotype
// buffer from parents, or copy an existing individual), Improve (local
// search on the scratch State) and Commit (copy the accepted offspring
// into the population and note it with a Best tracker). A Scratch carries
// everything the pipeline needs — an incremental State, a genotype buffer
// for crossover output and an index buffer for selection — so the hot loop
// of a run touches no allocator after warm-up.
package evalpool

import (
	"sync"

	"gridcma/internal/etc"
	"gridcma/internal/schedule"
)

// Scratch is one reusable offspring workspace.
type Scratch struct {
	// St is the incremental evaluator holding the offspring being built.
	St *schedule.State
	// Buf is a genotype buffer of length nb_jobs (crossover output,
	// schedule staging).
	Buf schedule.Schedule
	// Idx is a small reusable index buffer (parent selection).
	Idx []int
}

// Pool hands out Scratches for one instance. Get and Put are safe for
// concurrent use; the Scratches themselves are single-owner while checked
// out. A Scratch's State starts (and is returned to callers) holding an
// unspecified valid schedule — callers always SetSchedule or CopyFrom
// before reading.
type Pool struct {
	in *etc.Instance

	mu   sync.Mutex
	free []*Scratch
}

// New returns an empty pool bound to in.
func New(in *etc.Instance) *Pool {
	return &Pool{in: in}
}

// Instance returns the instance the pool's scratches evaluate against.
func (p *Pool) Instance() *etc.Instance { return p.in }

// Get returns a Scratch, reusing a previously returned one when possible.
func (p *Pool) Get() *Scratch {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	// Fresh scratch: seed the State with the all-zero schedule, which is
	// valid for every instance.
	return &Scratch{
		St:  schedule.NewState(p.in, make(schedule.Schedule, p.in.Jobs)),
		Buf: make(schedule.Schedule, p.in.Jobs),
		Idx: make([]int, 0, 8),
	}
}

// Put returns a Scratch to the pool for reuse. Putting nil is a no-op.
func (p *Pool) Put(s *Scratch) {
	if s == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// Warm pre-creates n scratches so a run's first iteration does not pay
// their construction inside the measured hot path.
func (p *Pool) Warm(n int) {
	scratches := make([]*Scratch, n)
	for i := range scratches {
		scratches[i] = p.Get()
	}
	for _, s := range scratches {
		p.Put(s)
	}
}

// Best tracks the best solution seen by a run without allocating per
// improvement: the schedule snapshot is copied in place into one buffer.
// The zero value is ready to use. Not safe for concurrent use; parallel
// engines reduce into it from one goroutine.
type Best struct {
	sched    schedule.Schedule
	fit      float64
	makespan float64
	flowtime float64
	ok       bool
}

// Note records st (with fitness fit) if it improves the tracked best,
// reporting whether it did.
func (b *Best) Note(st *schedule.State, fit float64) bool {
	if b.ok && fit >= b.fit {
		return false
	}
	if b.sched == nil {
		b.sched = st.Schedule()
	} else {
		b.sched.CopyFrom(st.ScheduleView())
	}
	b.fit, b.makespan, b.flowtime = fit, st.Makespan(), st.Flowtime()
	b.ok = true
	return true
}

// Ok reports whether any solution has been noted.
func (b *Best) Ok() bool { return b.ok }

// Fitness returns the best fitness noted so far.
func (b *Best) Fitness() float64 { return b.fit }

// Makespan returns the makespan of the best solution.
func (b *Best) Makespan() float64 { return b.makespan }

// Flowtime returns the flowtime of the best solution.
func (b *Best) Flowtime() float64 { return b.flowtime }

// Schedule returns the tracked best schedule. The returned slice is the
// tracker's internal buffer: it is only safe to retain after the run
// stops noting (engines hand it out once, in their final Result).
func (b *Best) Schedule() schedule.Schedule {
	if !b.ok {
		return nil
	}
	return b.sched
}
