package evalpool

import (
	"sync"
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

func testInstance() *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.Low, MachineHet: etc.Low},
		0, etc.GenerateOptions{Seed: 3, Jobs: 64, Machs: 4})
}

func TestPoolReuse(t *testing.T) {
	p := New(testInstance())
	a := p.Get()
	p.Put(a)
	b := p.Get()
	if a != b {
		t.Fatal("pool did not reuse the returned scratch")
	}
	if len(b.Buf) != p.Instance().Jobs {
		t.Fatalf("buf length %d, want %d", len(b.Buf), p.Instance().Jobs)
	}
	p.Put(nil) // must not panic
}

func TestPoolWarm(t *testing.T) {
	p := New(testInstance())
	p.Warm(5)
	seen := map[*Scratch]bool{}
	for i := 0; i < 5; i++ {
		s := p.Get()
		if seen[s] {
			t.Fatal("duplicate scratch handed out")
		}
		seen[s] = true
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	p := New(testInstance())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := p.Get()
				s.Buf[0] = i % p.Instance().Machs
				p.Put(s)
			}
		}()
	}
	wg.Wait()
}

func TestScratchStateUsable(t *testing.T) {
	in := testInstance()
	p := New(in)
	s := p.Get()
	r := rng.New(1)
	sched := schedule.NewRandom(in, r)
	s.St.SetSchedule(sched)
	if !s.St.ScheduleView().Equal(sched) {
		t.Fatal("scratch state did not adopt the schedule")
	}
	if s.St.Makespan() <= 0 {
		t.Fatal("no makespan after SetSchedule")
	}
}

func TestBestTracksImprovementsInPlace(t *testing.T) {
	in := testInstance()
	r := rng.New(9)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	o := schedule.DefaultObjective

	var b Best
	if b.Ok() || b.Schedule() != nil {
		t.Fatal("zero Best claims a solution")
	}
	f0 := o.Of(st)
	if !b.Note(st, f0) {
		t.Fatal("first note must improve")
	}
	firstBuf := b.Schedule()
	if !firstBuf.Equal(st.ScheduleView()) {
		t.Fatal("snapshot mismatch")
	}
	if b.Note(st, f0) {
		t.Fatal("equal fitness must not improve")
	}
	if b.Note(st, f0+1) {
		t.Fatal("worse fitness must not improve")
	}

	// Mutate the state to something better and note it: the same buffer
	// must be updated in place (no allocation per improvement).
	prevMS := b.Makespan()
	for k := 0; k < 2000 && o.Of(st) >= b.Fitness(); k++ {
		j, m := r.Intn(in.Jobs), r.Intn(in.Machs)
		before := o.Of(st)
		from := st.Assign(j)
		st.Move(j, m)
		if o.Of(st) >= before {
			st.Move(j, from)
		}
	}
	if o.Of(st) >= b.Fitness() {
		t.Skip("could not construct an improvement")
	}
	if !b.Note(st, o.Of(st)) {
		t.Fatal("improvement not recorded")
	}
	if &b.Schedule()[0] != &firstBuf[0] {
		t.Fatal("improvement reallocated the snapshot buffer")
	}
	if b.Makespan() == prevMS && b.Flowtime() == 0 {
		t.Fatal("objective components not refreshed")
	}
	if !b.Schedule().Equal(st.ScheduleView()) {
		t.Fatal("snapshot does not match the improved state")
	}
}
