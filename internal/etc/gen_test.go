package etc

import (
	"encoding/hex"
	"sync"
	"testing"
	"unsafe"
)

func mustSpec(t *testing.T, s string) GenSpec {
	t.Helper()
	g, err := ParseGenSpec(s)
	if err != nil {
		t.Fatalf("ParseGenSpec(%q): %v", s, err)
	}
	return g
}

func mustGen(t *testing.T, g GenSpec) *Instance {
	t.Helper()
	in, err := g.Generate()
	if err != nil {
		t.Fatalf("Generate(%v): %v", g, err)
	}
	return in
}

func TestParseGenSpec(t *testing.T) {
	cases := []struct {
		in   string
		want GenSpec
	}{
		{"512x16", GenSpec{512, 16, Class{Inconsistent, High, High}, 1, false}},
		{"100000x1000:c_hihi:s7:f32", GenSpec{100000, 1000, Class{Consistent, High, High}, 7, true}},
		{"48x6:s_lohi:s3", GenSpec{48, 6, Class{SemiConsistent, Low, High}, 3, false}},
		{"8192x128:i_lolo", GenSpec{8192, 128, Class{Inconsistent, Low, Low}, 1, false}},
	}
	for _, c := range cases {
		got, err := ParseGenSpec(c.in)
		if err != nil {
			t.Fatalf("ParseGenSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseGenSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// Canonical form round-trips.
		back, err := ParseGenSpec(got.String())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q = %+v, %v", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"", "512", "0x16", "512x0", "512x16:q_hihi", "512x16:c_hi", "512x16:sx"} {
		if _, err := ParseGenSpec(bad); err == nil {
			t.Errorf("ParseGenSpec(%q): want error", bad)
		}
	}
}

// TestGenSpecGoldenDigests pins generated matrices byte for byte: the
// generator's determinism contract is cross-process and cross-platform,
// so these digests must never change. A change means every committed
// frontier benchmark row describes a different instance.
func TestGenSpecGoldenDigests(t *testing.T) {
	golden := map[string]string{
		"64x8:c_hihi:s1":     "6a0492f0fa5ce4d40cacdbeefbf364c08d92cecf2554d18eabd38b512948484c",
		"64x8:c_hihi:s1:f32": "11635da466eafb73d47fe7a544f825bcdd889d82d629172c5c66dc0e852fc4fa",
		"48x6:s_lohi:s3":     "aa12b2f20e96157fdbee52beececf00a80a4bca0b7179c1d3d62c0823047f19b",
	}
	for spec, want := range golden {
		in := mustGen(t, mustSpec(t, spec))
		got := in.MatrixDigest()
		if hex.EncodeToString(got[:]) != want {
			t.Errorf("%s: digest %x, want %s", spec, got, want)
		}
	}
}

// TestGenSpecDeterminism: same spec ⇒ identical digest across repeated and
// concurrent generations (the concurrency matters under -race: the
// generator must not share hidden mutable state between calls).
func TestGenSpecDeterminism(t *testing.T) {
	specs := []string{
		"200x16:c_hihi:s1", "200x16:i_hilo:s2", "200x16:s_lohi:s3",
		"200x16:i_lolo:s4", "200x16:c_hihi:s1:f32",
	}
	for _, s := range specs {
		g := mustSpec(t, s)
		ref := mustGen(t, g).MatrixDigest()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				in, err := g.Generate()
				if err != nil {
					t.Errorf("%s: %v", s, err)
					return
				}
				if in.MatrixDigest() != ref {
					t.Errorf("%s: concurrent regeneration produced a different matrix", s)
				}
			}()
		}
		wg.Wait()
		// Different seed ⇒ different matrix.
		g2 := g
		g2.Seed++
		if mustGen(t, g2).MatrixDigest() == ref {
			t.Errorf("%s: seed change did not change the matrix", s)
		}
	}
}

func TestGenSpecInstanceProperties(t *testing.T) {
	for _, s := range []string{"300x24:c_hihi:s5", "300x24:c_lolo:s5:f32"} {
		g := mustSpec(t, s)
		in := mustGen(t, g)
		if in.Name != g.InstanceName() {
			t.Errorf("%s: name %q, want %q", s, in.Name, g.InstanceName())
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", s, err)
		}
		if !in.IsConsistent() {
			t.Errorf("%s: consistent class generated an inconsistent matrix", s)
		}
		// Finalize ran: derived fields are usable.
		if in.Workload(0) <= 0 || in.Speed(0) <= 0 {
			t.Errorf("%s: bad derived fields", s)
		}
		wantBytes := in.Jobs*in.Machs*8 + in.Machs*8 + in.Jobs*8 + in.Machs*8
		if g.Float32 {
			wantBytes = in.Jobs*in.Machs*4 + in.Machs*8 + in.Jobs*8 + in.Machs*8
		}
		if in.Bytes() != wantBytes {
			t.Errorf("%s: Bytes() = %d, want %d", s, in.Bytes(), wantBytes)
		}
	}
	// Float32 entries are the narrowed float64 draws: widening the f32
	// matrix must agree with the f64 matrix to float32 precision.
	g64 := mustSpec(t, "100x12:i_hihi:s9")
	g32 := mustSpec(t, "100x12:i_hihi:s9:f32")
	in64, in32 := mustGen(t, g64), mustGen(t, g32)
	for i := 0; i < in64.Jobs; i++ {
		for j := 0; j < in64.Machs; j++ {
			if float32(in64.At(i, j)) != float32(in32.At(i, j)) {
				t.Fatalf("entry (%d,%d): f64 %v vs f32 %v", i, j, in64.At(i, j), in32.At(i, j))
			}
		}
	}
}

// TestGenerateIntoReuse: a same-shape regeneration must reuse the backing
// arrays (the frontier ladder regenerates in place) and still produce the
// exact matrix a fresh Generate does.
func TestGenerateIntoReuse(t *testing.T) {
	gA := mustSpec(t, "128x16:c_hihi:s1")
	gB := mustSpec(t, "128x16:i_lolo:s2")
	in := mustGen(t, gA)
	p0 := unsafe.SliceData(in.ETC)
	out, err := gB.GenerateInto(in)
	if err != nil {
		t.Fatal(err)
	}
	if out != in || unsafe.SliceData(out.ETC) != p0 {
		t.Error("same-shape GenerateInto reallocated the matrix")
	}
	if out.MatrixDigest() != mustGen(t, gB).MatrixDigest() {
		t.Error("GenerateInto result differs from fresh Generate")
	}
	if out.Name != gB.InstanceName() {
		t.Errorf("name %q not restamped", out.Name)
	}
	// Backing mismatch reallocates rather than corrupting.
	g32 := mustSpec(t, "128x16:c_hihi:s1:f32")
	out32, err := g32.GenerateInto(out)
	if err != nil {
		t.Fatal(err)
	}
	if out32 == out {
		t.Error("backing change must allocate a fresh instance")
	}
}

// TestFinalizeReuse: re-finalizing a same-shape instance must not allocate
// (the daemon re-extracts live instances every admission cycle) and must
// leave the derived fields bit-identical.
func TestFinalizeReuse(t *testing.T) {
	in := mustGen(t, mustSpec(t, "256x16:i_hihi:s1"))
	w0, s0 := in.Workload(7), in.Speed(3)
	pw := unsafe.SliceData(in.workload)
	ps := unsafe.SliceData(in.speed)
	allocs := testing.AllocsPerRun(10, in.Finalize)
	if allocs != 0 {
		t.Errorf("same-shape Finalize allocates %v per call, want 0", allocs)
	}
	if unsafe.SliceData(in.workload) != pw || unsafe.SliceData(in.speed) != ps {
		t.Error("same-shape Finalize reallocated derived arrays")
	}
	if in.Workload(7) != w0 || in.Speed(3) != s0 {
		t.Error("re-finalize changed derived values")
	}
}

// BenchmarkGenerateInto guards the steady-state generator: regenerating a
// same-shape instance performs zero allocations (CI's allocation guard
// runs this at -benchtime 1x).
func BenchmarkGenerateInto(b *testing.B) {
	g, err := ParseGenSpec("1024x64:c_hihi:s1")
	if err != nil {
		b.Fatal(err)
	}
	in, err := g.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.GenerateInto(in); err != nil {
			b.Fatal(err)
		}
	}
}
