package etc

import (
	"fmt"
	"math"
	"sort"

	"gridcma/internal/rng"
)

// The CVB (coefficient-of-variation-based) generation method of Ali,
// Siegel et al. is the second standard way of building ETC matrices,
// complementing the range-based method the benchmark uses. Heterogeneity
// is expressed as coefficients of variation rather than range bounds:
// a per-task mean is drawn from a gamma distribution with mean TaskMean
// and CV Vtask, then each row is filled with gamma draws around that mean
// with CV Vmach. The paper's future work calls for "larger size grid
// instances"; CVB plus free dimensions is how the library generates them.

// CVBOptions parameterises CVB generation.
type CVBOptions struct {
	Jobs  int // default 512
	Machs int // default 16
	// TaskMean is the mean task execution time (must be > 0).
	TaskMean float64
	// Vtask and Vmach are the task and machine coefficients of variation
	// (must be > 0; the literature uses ~0.1 for low and ~0.6+ for high
	// heterogeneity).
	Vtask, Vmach float64
	Consistency  Consistency
	Seed         uint64
}

// Validate reports the first option error.
func (o CVBOptions) Validate() error {
	switch {
	case o.Jobs < 0 || o.Machs < 0:
		return fmt.Errorf("etc: negative CVB dimensions")
	case o.TaskMean <= 0:
		return fmt.Errorf("etc: CVB TaskMean %v must be > 0", o.TaskMean)
	case o.Vtask <= 0 || o.Vmach <= 0:
		return fmt.Errorf("etc: CVB coefficients of variation must be > 0")
	}
	return nil
}

// GenerateCVB builds an instance with the CVB method.
func GenerateCVB(name string, o CVBOptions) (*Instance, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.Jobs == 0 {
		o.Jobs = BenchmarkJobs
	}
	if o.Machs == 0 {
		o.Machs = BenchmarkMachs
	}
	r := rng.New(o.Seed)
	in := New(name, o.Jobs, o.Machs)

	// Gamma shape/scale from mean μ and CV v: shape = 1/v², scale = μ·v².
	alphaTask := 1 / (o.Vtask * o.Vtask)
	alphaMach := 1 / (o.Vmach * o.Vmach)
	for i := 0; i < in.Jobs; i++ {
		q := gamma(r, alphaTask, o.TaskMean/alphaTask)
		if q < 1 {
			q = 1 // keep execution times sensible and strictly positive
		}
		row := in.ETC[i*in.Machs : (i+1)*in.Machs]
		for j := range row {
			v := gamma(r, alphaMach, q/alphaMach)
			if v < 1 {
				v = 1
			}
			row[j] = v
		}
		switch o.Consistency {
		case Consistent:
			sort.Float64s(row)
		case SemiConsistent:
			sortEvenColumns(row)
		}
	}
	in.Finalize()
	return in, nil
}

// gamma draws from Gamma(shape, scale) with the Marsaglia–Tsang method
// (with the standard boost for shape < 1).
func gamma(r *rng.Source, shape, scale float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gamma(r, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normal(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// normal draws a standard normal deviate (polar Box–Muller).
func normal(r *rng.Source) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
