package etc

import (
	"math"
	"testing"
	"testing/quick"

	"gridcma/internal/rng"
)

func TestCVBValidation(t *testing.T) {
	bad := []CVBOptions{
		{TaskMean: 0, Vtask: 0.5, Vmach: 0.5},
		{TaskMean: 100, Vtask: 0, Vmach: 0.5},
		{TaskMean: 100, Vtask: 0.5, Vmach: -1},
		{Jobs: -1, TaskMean: 100, Vtask: 0.5, Vmach: 0.5},
	}
	for i, o := range bad {
		if _, err := GenerateCVB("t", o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCVBDefaultsAndValidity(t *testing.T) {
	in, err := GenerateCVB("cvb", CVBOptions{TaskMean: 100, Vtask: 0.6, Vmach: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.Jobs != BenchmarkJobs || in.Machs != BenchmarkMachs {
		t.Fatalf("dims %d×%d", in.Jobs, in.Machs)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCVBDeterministic(t *testing.T) {
	o := CVBOptions{Jobs: 32, Machs: 8, TaskMean: 50, Vtask: 0.3, Vmach: 0.3, Seed: 9}
	a, _ := GenerateCVB("a", o)
	b, _ := GenerateCVB("b", o)
	for i := range a.ETC {
		if a.ETC[i] != b.ETC[i] {
			t.Fatal("CVB not deterministic")
		}
	}
}

func TestCVBMeanTracksTaskMean(t *testing.T) {
	o := CVBOptions{Jobs: 400, Machs: 16, TaskMean: 1000, Vtask: 0.3, Vmach: 0.3, Seed: 3}
	in, err := GenerateCVB("t", o)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range in.ETC {
		sum += v
	}
	mean := sum / float64(len(in.ETC))
	if mean < 700 || mean > 1300 {
		t.Errorf("overall mean %v far from TaskMean 1000", mean)
	}
}

func TestCVBHeterogeneityScalesWithCV(t *testing.T) {
	lo, _ := GenerateCVB("lo", CVBOptions{Jobs: 300, Machs: 8, TaskMean: 100, Vtask: 0.1, Vmach: 0.1, Seed: 5})
	hi, _ := GenerateCVB("hi", CVBOptions{Jobs: 300, Machs: 8, TaskMean: 100, Vtask: 0.9, Vmach: 0.9, Seed: 5})
	cv := func(in *Instance) float64 {
		sum, n := 0.0, float64(len(in.ETC))
		for _, v := range in.ETC {
			sum += v
		}
		mean := sum / n
		ss := 0.0
		for _, v := range in.ETC {
			d := v - mean
			ss += d * d
		}
		return math.Sqrt(ss/n) / mean
	}
	if cv(hi) <= 2*cv(lo) {
		t.Errorf("high-CV instance (%v) should be much more spread than low-CV (%v)", cv(hi), cv(lo))
	}
}

func TestCVBConsistencyTransforms(t *testing.T) {
	cons, err := GenerateCVB("c", CVBOptions{Jobs: 60, Machs: 8, TaskMean: 100,
		Vtask: 0.5, Vmach: 0.5, Consistency: Consistent, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !cons.IsConsistent() {
		t.Error("consistent CVB instance not consistent")
	}
	semi, _ := GenerateCVB("s", CVBOptions{Jobs: 60, Machs: 8, TaskMean: 100,
		Vtask: 0.5, Vmach: 0.5, Consistency: SemiConsistent, Seed: 7})
	for i := 0; i < semi.Jobs; i++ {
		row := semi.Row(i)
		prev := math.Inf(-1)
		for j := 0; j < semi.Machs; j += 2 {
			if row[j] < prev {
				t.Fatal("semi-consistent CVB: even columns not sorted")
			}
			prev = row[j]
		}
	}
}

func TestGammaMomentsRoughlyCorrect(t *testing.T) {
	r := rng.New(11)
	const shape, scale, n = 4.0, 25.0, 20000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := gamma(r, shape, scale)
		if v <= 0 {
			t.Fatal("gamma produced non-positive draw")
		}
		sum += v
	}
	mean := sum / n
	r2 := rng.New(12)
	for i := 0; i < n; i++ {
		d := gamma(r2, shape, scale) - shape*scale
		ss += d * d
	}
	variance := ss / n
	if math.Abs(mean-shape*scale) > 0.05*shape*scale {
		t.Errorf("gamma mean %v, want ~%v", mean, shape*scale)
	}
	if math.Abs(variance-shape*scale*scale)/(shape*scale*scale) > 0.15 {
		t.Errorf("gamma variance %v, want ~%v", variance, shape*scale*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := rng.New(13)
	const shape, scale, n = 0.5, 10.0, 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := gamma(r, shape, scale)
		if v <= 0 {
			t.Fatal("non-positive draw for shape < 1")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-shape*scale) > 0.1*shape*scale {
		t.Errorf("gamma(0.5) mean %v, want ~%v", mean, shape*scale)
	}
}

func TestNormalMoments(t *testing.T) {
	r := rng.New(17)
	const n = 50000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := normal(r)
		sum += v
		ss += v * v
	}
	if mean := sum / n; math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if variance := ss / n; math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestCVBProperty(t *testing.T) {
	f := func(seed uint64, consIdx uint8) bool {
		o := CVBOptions{Jobs: 16, Machs: 4, TaskMean: 80, Vtask: 0.4, Vmach: 0.4,
			Consistency: Consistency(consIdx % 3), Seed: seed}
		in, err := GenerateCVB("p", o)
		return err == nil && in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
