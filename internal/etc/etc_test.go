package etc

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassName(t *testing.T) {
	cases := []struct {
		class Class
		k     int
		want  string
	}{
		{Class{Consistent, High, High}, 0, "u_c_hihi.0"},
		{Class{Inconsistent, High, Low}, 0, "u_i_hilo.0"},
		{Class{SemiConsistent, Low, High}, 3, "u_s_lohi.3"},
		{Class{Consistent, Low, Low}, 7, "u_c_lolo.7"},
	}
	for _, c := range cases {
		if got := c.class.Name(c.k); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, class := range AllClasses() {
		for _, k := range []int{0, 5, 99} {
			name := class.Name(k)
			got, gotK, err := ParseClass(name)
			if err != nil {
				t.Fatalf("ParseClass(%q): %v", name, err)
			}
			if got != class || gotK != k {
				t.Errorf("ParseClass(%q) = %v,%d want %v,%d", name, got, gotK, class, k)
			}
		}
	}
}

func TestParseClassErrors(t *testing.T) {
	for _, bad := range []string{"", "u_c_hihi", "x_c_hihi.0", "u_q_hihi.0", "u_c_xxhi.0", "u_c_hixx.0", "nonsense"} {
		if _, _, err := ParseClass(bad); err == nil {
			t.Errorf("ParseClass(%q): expected error", bad)
		}
	}
}

func TestAllClassesCount(t *testing.T) {
	cs := AllClasses()
	if len(cs) != 12 {
		t.Fatalf("got %d classes, want 12", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		n := c.Name(0)
		if seen[n] {
			t.Errorf("duplicate class %s", n)
		}
		seen[n] = true
	}
}

func TestGenerateDimensionsAndValidity(t *testing.T) {
	in := Generate(Class{Consistent, High, High}, 0, GenerateOptions{Seed: 1})
	if in.Jobs != BenchmarkJobs || in.Machs != BenchmarkMachs {
		t.Fatalf("dims %d×%d", in.Jobs, in.Machs)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Class{Inconsistent, Low, High}, 0, GenerateOptions{Seed: 42, Jobs: 64, Machs: 8})
	b := Generate(Class{Inconsistent, Low, High}, 0, GenerateOptions{Seed: 42, Jobs: 64, Machs: 8})
	for i := range a.ETC {
		if a.ETC[i] != b.ETC[i] {
			t.Fatalf("ETC[%d] differs", i)
		}
	}
	c := Generate(Class{Inconsistent, Low, High}, 0, GenerateOptions{Seed: 43, Jobs: 64, Machs: 8})
	same := true
	for i := range a.ETC {
		if a.ETC[i] != c.ETC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestGenerateConsistency(t *testing.T) {
	cons := Generate(Class{Consistent, High, High}, 0, GenerateOptions{Seed: 7, Jobs: 100, Machs: 16})
	if !cons.IsConsistent() {
		t.Error("consistent class generated inconsistent matrix")
	}
	inc := Generate(Class{Inconsistent, High, High}, 0, GenerateOptions{Seed: 7, Jobs: 100, Machs: 16})
	if inc.IsConsistent() {
		t.Error("inconsistent class generated a consistent matrix (astronomically unlikely)")
	}
}

func TestGenerateSemiConsistentSubmatrix(t *testing.T) {
	in := Generate(Class{SemiConsistent, High, High}, 0, GenerateOptions{Seed: 9, Jobs: 50, Machs: 16})
	// Even columns must be sorted ascending within each row.
	for i := 0; i < in.Jobs; i++ {
		row := in.Row(i)
		prev := math.Inf(-1)
		for j := 0; j < in.Machs; j += 2 {
			if row[j] < prev {
				t.Fatalf("row %d even columns not sorted", i)
			}
			prev = row[j]
		}
	}
	if in.IsConsistent() {
		t.Error("semi-consistent matrix should not be fully consistent")
	}
}

func TestGenerateHeterogeneityRanges(t *testing.T) {
	hi := Generate(Class{Inconsistent, High, High}, 0, GenerateOptions{Seed: 3, Jobs: 200, Machs: 16})
	lo := Generate(Class{Inconsistent, Low, Low}, 0, GenerateOptions{Seed: 3, Jobs: 200, Machs: 16})
	maxHi, maxLo := 0.0, 0.0
	for _, v := range hi.ETC {
		maxHi = math.Max(maxHi, v)
	}
	for _, v := range lo.ETC {
		maxLo = math.Max(maxLo, v)
	}
	if maxHi <= TaskHeterogeneityLow*MachineHeterogeneityLow {
		t.Errorf("hihi max %v suspiciously small", maxHi)
	}
	if maxLo > TaskHeterogeneityLow*MachineHeterogeneityLow {
		t.Errorf("lolo max %v exceeds range bound %d", maxLo, TaskHeterogeneityLow*MachineHeterogeneityLow)
	}
	if maxHi < 100*maxLo {
		t.Errorf("expected ≫ spread between hihi (%v) and lolo (%v)", maxHi, maxLo)
	}
}

func TestGenerateByNameStable(t *testing.T) {
	a, err := GenerateByName("u_c_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateByName("u_c_hihi.0")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "u_c_hihi.0" {
		t.Errorf("name %q", a.Name)
	}
	for i := range a.ETC {
		if a.ETC[i] != b.ETC[i] {
			t.Fatal("GenerateByName not stable")
		}
	}
	if _, err := GenerateByName("bogus"); err == nil {
		t.Error("expected error for bogus name")
	}
}

func TestWorkloadSpeed(t *testing.T) {
	in := New("t", 2, 2)
	in.Set(0, 0, 2)
	in.Set(0, 1, 4)
	in.Set(1, 0, 6)
	in.Set(1, 1, 8)
	in.Finalize()
	if got := in.Workload(0); got != 3 {
		t.Errorf("Workload(0) = %v, want 3", got)
	}
	if got := in.Workload(1); got != 7 {
		t.Errorf("Workload(1) = %v, want 7", got)
	}
	// Machine 0 column mean = 4, machine 1 = 6: machine 0 faster.
	if !(in.Speed(0) > in.Speed(1)) {
		t.Errorf("Speed(0)=%v should exceed Speed(1)=%v", in.Speed(0), in.Speed(1))
	}
}

func TestValidateCatchesBadInstances(t *testing.T) {
	in := New("t", 2, 2)
	if err := in.Validate(); err == nil {
		t.Error("zero ETC entries should fail validation")
	}
	for i := range in.ETC {
		in.ETC[i] = 1
	}
	if err := in.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	in.Ready[0] = -1
	if err := in.Validate(); err == nil {
		t.Error("negative ready time should fail validation")
	}
	in.Ready[0] = 0
	in.ETC = in.ETC[:3]
	if err := in.Validate(); err == nil {
		t.Error("truncated ETC should fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := Generate(Class{Consistent, Low, Low}, 0, GenerateOptions{Seed: 1, Jobs: 8, Machs: 4})
	cp := in.Clone()
	cp.ETC[0] += 99
	cp.Ready[0] = 5
	if in.ETC[0] == cp.ETC[0] || in.Ready[0] == cp.Ready[0] {
		t.Fatal("Clone shares storage")
	}
	if cp.Workload(0) != in.Workload(0) {
		t.Fatal("Clone lost derived fields")
	}
}

func TestIORoundTrip(t *testing.T) {
	in := Generate(Class{SemiConsistent, High, Low}, 2, GenerateOptions{Seed: 5, Jobs: 20, Machs: 4})
	in.Ready[1] = 12.5
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != in.Name || got.Jobs != in.Jobs || got.Machs != in.Machs {
		t.Fatalf("header mismatch: %s %d×%d", got.Name, got.Jobs, got.Machs)
	}
	for i := range in.ETC {
		if math.Abs(got.ETC[i]-in.ETC[i]) > 1e-5 {
			t.Fatalf("ETC[%d]: got %v want %v", i, got.ETC[i], in.ETC[i])
		}
	}
	if math.Abs(got.Ready[1]-12.5) > 1e-9 {
		t.Fatalf("Ready[1] = %v", got.Ready[1])
	}
}

func TestIOFileRoundTrip(t *testing.T) {
	in := Generate(Class{Consistent, Low, Low}, 0, GenerateOptions{Seed: 2, Jobs: 6, Machs: 3})
	path := t.TempDir() + "/inst.etc"
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != 6 || got.Machs != 3 {
		t.Fatalf("dims %d×%d", got.Jobs, got.Machs)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "x y\n",
		"zero dims":     "0 4\n",
		"too few":       "2 2\n1 2 3\n",
		"bad value":     "1 2\n1 zz\n",
		"bad trailing":  "1 1\n1\nwhat\n",
		"bad ready len": "1 2\n1 2\nready: 1\n",
		"nonpositive":   "1 2\n0 1\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGeneratePropertyPositive(t *testing.T) {
	f := func(seed uint64, classIdx uint8) bool {
		classes := AllClasses()
		class := classes[int(classIdx)%len(classes)]
		in := Generate(class, 0, GenerateOptions{Seed: seed, Jobs: 16, Machs: 4})
		return in.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestConsistencyString(t *testing.T) {
	if Consistent.String() != "c" || Inconsistent.String() != "i" || SemiConsistent.String() != "s" {
		t.Error("consistency codes wrong")
	}
	if High.String() != "hi" || Low.String() != "lo" {
		t.Error("heterogeneity codes wrong")
	}
}
