package etc

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"

	"gridcma/internal/rng"
)

// Frontier-scale instance generation. The Braun suite is fixed at 512×16
// and the range-based Generate keeps that family's statistics; GenSpec is
// the free-dimension entry point the ROADMAP's instance-frontier item
// calls for: a deterministic streaming generator for arbitrary
// (jobs, machines, heterogeneity) points, CVB-style (gamma draws around a
// gamma-drawn per-task mean), filling the single flat ETC matrix row by
// row with no intermediate per-row allocations. The same GenSpec always
// produces a byte-identical matrix: the xoshiro stream is a pure function
// of Seed and every draw is consumed in a fixed order.

// CVB parameters used by GenSpec generation: one fixed task mean, and the
// coefficient-of-variation pair the literature uses for low/high
// heterogeneity.
const (
	GenTaskMean = 1000.0
	GenCVLow    = 0.1
	GenCVHigh   = 0.6
)

// GenSpec describes a synthetic instance: dimensions, Braun-style class
// (consistency × job het × machine het), RNG seed, and the optional
// float32 matrix backing for frontier sizes. The canonical string form is
//
//	<jobs>x<machs>[:<class>][:s<seed>][:f32]
//
// e.g. "100000x1000:c_hihi:s7:f32" — class defaults to i_hihi, seed to 1.
type GenSpec struct {
	Jobs  int
	Machs int
	Class Class
	Seed  uint64
	// Float32 selects the narrow ETC backing (Instance.ETC32): half the
	// matrix bytes, entries quantized to float32 at generation time.
	Float32 bool
}

// ParseGenSpec parses the canonical spec string form.
func ParseGenSpec(s string) (GenSpec, error) {
	g := GenSpec{Class: Class{Consistency: Inconsistent, JobHet: High, MachineHet: High}, Seed: 1}
	parts := strings.Split(s, ":")
	dims := strings.Split(parts[0], "x")
	if len(dims) != 2 {
		return g, fmt.Errorf("etc: gen spec %q: want <jobs>x<machs>[:<class>][:s<seed>][:f32]", s)
	}
	var err error
	if g.Jobs, err = strconv.Atoi(dims[0]); err != nil {
		return g, fmt.Errorf("etc: gen spec %q: bad jobs %q", s, dims[0])
	}
	if g.Machs, err = strconv.Atoi(dims[1]); err != nil {
		return g, fmt.Errorf("etc: gen spec %q: bad machines %q", s, dims[1])
	}
	for _, p := range parts[1:] {
		switch {
		case p == "f32":
			g.Float32 = true
		case len(p) > 1 && p[0] == 's' && p[1] >= '0' && p[1] <= '9':
			seed, err := strconv.ParseUint(p[1:], 10, 64)
			if err != nil {
				return g, fmt.Errorf("etc: gen spec %q: bad seed %q", s, p)
			}
			g.Seed = seed
		default:
			class, err := parseClassCode(p)
			if err != nil {
				return g, fmt.Errorf("etc: gen spec %q: %v", s, err)
			}
			g.Class = class
		}
	}
	return g, g.Validate()
}

// parseClassCode parses a bare class code such as "c_hihi" or "i_lolo".
func parseClassCode(code string) (Class, error) {
	var c Class
	cons, het, ok := strings.Cut(code, "_")
	if !ok || len(het) != 4 {
		return c, fmt.Errorf("unknown class code %q", code)
	}
	switch cons {
	case "c":
		c.Consistency = Consistent
	case "i":
		c.Consistency = Inconsistent
	case "s":
		c.Consistency = SemiConsistent
	default:
		return c, fmt.Errorf("unknown consistency %q in class code %q", cons, code)
	}
	switch het[:2] {
	case "hi":
		c.JobHet = High
	case "lo":
		c.JobHet = Low
	default:
		return c, fmt.Errorf("unknown job heterogeneity in class code %q", code)
	}
	switch het[2:] {
	case "hi":
		c.MachineHet = High
	case "lo":
		c.MachineHet = Low
	default:
		return c, fmt.Errorf("unknown machine heterogeneity in class code %q", code)
	}
	return c, nil
}

// code returns the bare class code ("c_hihi") used in spec strings and
// generated instance names.
func (c Class) code() string {
	return fmt.Sprintf("%s_%s%s", c.Consistency, c.JobHet, c.MachineHet)
}

// String returns the canonical spec form, parseable by ParseGenSpec.
func (g GenSpec) String() string {
	s := fmt.Sprintf("%dx%d:%s:s%d", g.Jobs, g.Machs, g.Class.code(), g.Seed)
	if g.Float32 {
		s += ":f32"
	}
	return s
}

// InstanceName is the name Generate stamps on the instance, unique per
// spec: "gen_c_hihi_100000x1000_s7" (plus "_f32" under the narrow
// backing).
func (g GenSpec) InstanceName() string {
	n := fmt.Sprintf("gen_%s_%dx%d_s%d", g.Class.code(), g.Jobs, g.Machs, g.Seed)
	if g.Float32 {
		n += "_f32"
	}
	return n
}

// Validate reports the first spec error.
func (g GenSpec) Validate() error {
	if g.Jobs <= 0 || g.Machs <= 0 {
		return fmt.Errorf("etc: gen spec dimensions %dx%d must be positive", g.Jobs, g.Machs)
	}
	return nil
}

// cv maps a heterogeneity level to its coefficient of variation.
func cv(h Heterogeneity) float64 {
	if h == High {
		return GenCVHigh
	}
	return GenCVLow
}

// Generate builds the instance the spec describes. Same spec ⇒
// byte-identical matrix, in any process, on any platform.
func (g GenSpec) Generate() (*Instance, error) {
	return g.GenerateInto(nil)
}

// GenerateInto is Generate reusing dst's backing arrays when dst has the
// same shape and matrix backing (the frontier bench ladder regenerates
// instances in place; a same-shape regeneration performs zero
// allocations). A nil or shape-mismatched dst allocates fresh.
func (g GenSpec) GenerateInto(dst *Instance) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if dst == nil || dst.Jobs != g.Jobs || dst.Machs != g.Machs || g.Float32 != (dst.ETC32 != nil) {
		if g.Float32 {
			dst = New32(g.InstanceName(), g.Jobs, g.Machs)
		} else {
			dst = New(g.InstanceName(), g.Jobs, g.Machs)
		}
	} else {
		// genSpec records which spec last filled this instance: a
		// same-spec regeneration skips the name restamp (the only
		// string-building in the reuse path), keeping it allocation-free.
		if dst.genSpec != g {
			dst.Name = g.InstanceName()
		}
		for j := range dst.Ready {
			dst.Ready[j] = 0
		}
	}
	dst.genSpec = g
	var r rng.Source
	r.Reseed(g.Seed)
	vt, vm := cv(g.Class.JobHet), cv(g.Class.MachineHet)
	// Gamma shape/scale from mean μ and CV v: shape = 1/v², scale = μ·v².
	alphaTask := 1 / (vt * vt)
	alphaMach := 1 / (vm * vm)
	// The even-column scratch is the generator's only working buffer: one
	// half-row, allocated only for semi-consistent classes, reused across
	// every row.
	var s64 []float64
	var s32 []float32
	if g.Class.Consistency == SemiConsistent {
		if g.Float32 {
			s32 = make([]float32, 0, (g.Machs+1)/2)
		} else {
			s64 = make([]float64, 0, (g.Machs+1)/2)
		}
	}
	if g.Float32 {
		fillRows(&r, dst.ETC32, g.Machs, alphaTask, alphaMach, g.Class.Consistency, s32)
	} else {
		fillRows(&r, dst.ETC, g.Machs, alphaTask, alphaMach, g.Class.Consistency, s64)
	}
	dst.Finalize()
	return dst, nil
}

// fillRows streams the CVB draws into the flat matrix row by row. The only
// buffers it touches are the destination itself and the caller-provided
// even-column scratch: per-row work allocates nothing, so matrix size is
// bounded by the destination alone. Draws happen in float64 (the stream is
// backing-independent) and are narrowed on store; the in-place consistency
// sort runs on the stored element type, which for float32 gives the same
// order as sorting before narrowing because the conversion is monotone.
func fillRows[E interface{ ~float32 | ~float64 }](r *rng.Source, dst []E, machs int, alphaTask, alphaMach float64, cons Consistency, scratch []E) {
	rows := len(dst) / machs
	for i := 0; i < rows; i++ {
		q := gamma(r, alphaTask, GenTaskMean/alphaTask)
		if q < 1 {
			q = 1 // keep execution times sensible and strictly positive
		}
		row := dst[i*machs : (i+1)*machs]
		for j := range row {
			v := gamma(r, alphaMach, q/alphaMach)
			if v < 1 {
				v = 1
			}
			row[j] = E(v)
		}
		switch cons {
		case Consistent:
			slices.Sort(row)
		case SemiConsistent:
			sortEven(row, scratch)
		}
	}
}

// sortEven sorts the even-column entries of row in place through scratch
// (capacity ≥ ⌈len(row)/2⌉), the allocation-free core of the benchmark's
// semi-consistency construction.
func sortEven[E interface{ ~float32 | ~float64 }](row, scratch []E) {
	scratch = scratch[:0]
	for j := 0; j < len(row); j += 2 {
		scratch = append(scratch, row[j])
	}
	slices.Sort(scratch)
	for k, j := 0, 0; j < len(row); j += 2 {
		row[j] = scratch[k]
		k++
	}
}

// BaseStream returns a deterministic stream of CVB task base times — the
// per-task mean draw of the generator's two-level gamma model (mean
// GenTaskMean, CV of the given heterogeneity level, clamped ≥ 1). The
// online daemon's load harness draws submission bases from it, so a
// streamed workload carries the same task heterogeneity as a generated
// frontier matrix instead of small uniform integers.
func BaseStream(seed uint64, het Heterogeneity) func() float64 {
	v := cv(het)
	alpha := 1 / (v * v)
	r := rng.New(seed)
	return func() float64 {
		q := gamma(r, alpha, GenTaskMean/alpha)
		if q < 1 {
			q = 1
		}
		return q
	}
}

// MatrixDigest returns the SHA-256 of the ETC matrix's raw entries
// (little-endian IEEE-754 bits, row-major) — the byte-identity witness of
// the generator's determinism contract.
func (in *Instance) MatrixDigest() [32]byte {
	h := sha256.New()
	var buf [4096]byte
	n := 0
	if in.ETC != nil {
		for _, v := range in.ETC {
			binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
			if n += 8; n == len(buf) {
				h.Write(buf[:])
				n = 0
			}
		}
	} else {
		for _, v := range in.ETC32 {
			binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(v))
			if n += 4; n == len(buf) {
				h.Write(buf[:])
				n = 0
			}
		}
	}
	h.Write(buf[:n])
	var out [32]byte
	h.Sum(out[:0])
	return out
}
