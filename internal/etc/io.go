package etc

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The on-disk format mirrors the original benchmark distribution: a header
// line "jobs machines" followed by jobs×machines ETC values in row-major
// order, whitespace separated. An optional "# name: ..." comment carries
// the instance name, and an optional trailing "ready:" line carries machine
// ready times (absent in the static benchmark).

// Write serialises the instance in the benchmark text format.
func Write(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	if in.Name != "" {
		fmt.Fprintf(bw, "# name: %s\n", in.Name)
	}
	fmt.Fprintf(bw, "%d %d\n", in.Jobs, in.Machs)
	for i := 0; i < in.Jobs; i++ {
		for j := 0; j < in.Machs; j++ {
			if j > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%.6f", in.At(i, j))
		}
		bw.WriteByte('\n')
	}
	anyReady := false
	for _, v := range in.Ready {
		if v != 0 {
			anyReady = true
			break
		}
	}
	if anyReady {
		bw.WriteString("ready:")
		for _, v := range in.Ready {
			fmt.Fprintf(bw, " %.6f", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses an instance in the benchmark text format and finalises it.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	name := ""
	var jobs, machs int
	// Header: skip comments, first non-comment line is "jobs machs".
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("etc: missing header: %w", orEOF(sc.Err()))
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name:"); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d", &jobs, &machs); err != nil {
			return nil, fmt.Errorf("etc: bad header %q: %v", line, err)
		}
		break
	}
	if jobs <= 0 || machs <= 0 {
		return nil, fmt.Errorf("etc: bad dimensions %d×%d", jobs, machs)
	}
	in := New(name, jobs, machs)
	// Values may be split across lines arbitrarily.
	idx := 0
	need := jobs * machs
	for idx < need {
		if !sc.Scan() {
			return nil, fmt.Errorf("etc: got %d of %d ETC values: %w", idx, need, orEOF(sc.Err()))
		}
		for _, f := range strings.Fields(sc.Text()) {
			if idx >= need {
				return nil, fmt.Errorf("etc: too many ETC values")
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("etc: bad value %q at index %d: %v", f, idx, err)
			}
			in.ETC[idx] = v
			idx++
		}
	}
	// Optional ready line.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(line, "ready:")
		if !ok {
			return nil, fmt.Errorf("etc: unexpected trailing line %q", line)
		}
		fields := strings.Fields(rest)
		if len(fields) != machs {
			return nil, fmt.Errorf("etc: ready line has %d values, want %d", len(fields), machs)
		}
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("etc: bad ready value %q: %v", f, err)
			}
			in.Ready[j] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	in.Finalize()
	return in, nil
}

func orEOF(err error) error {
	if err == nil {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadFile loads an instance from path.
func ReadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile stores an instance at path.
func WriteFile(path string, in *Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, in); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
