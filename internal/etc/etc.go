// Package etc implements the Expected Time to Compute (ETC) instance model
// of Braun et al. (JPDC 2001), the benchmark family on which the paper
// evaluates its cellular memetic scheduler.
//
// An instance is an nb_jobs × nb_machines matrix where ETC[i][j] is the
// expected wall-clock time of job i on machine j, plus a per-machine ready
// time (the time at which the machine finishes previously assigned work).
// The original benchmark files are not redistributable; Generate rebuilds
// instances of every class with the published range-based method, so the
// statistical family (and hence the shape of all experimental results) is
// preserved.
package etc

import (
	"fmt"
	"sort"

	"gridcma/internal/rng"
)

// Consistency describes the structure of an ETC matrix.
type Consistency int

const (
	// Inconsistent matrices have no structure: a machine may be faster
	// than another for one job and slower for the next.
	Inconsistent Consistency = iota
	// Consistent matrices satisfy: if machine a is faster than machine b
	// for one job, it is faster for every job.
	Consistent
	// SemiConsistent matrices embed a consistent sub-matrix (even columns
	// of every row, per the benchmark's construction) in an otherwise
	// inconsistent matrix.
	SemiConsistent
)

// String returns the single-letter code used in Braun instance names.
func (c Consistency) String() string {
	switch c {
	case Consistent:
		return "c"
	case Inconsistent:
		return "i"
	case SemiConsistent:
		return "s"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// Heterogeneity is the spread of job workloads or machine speeds.
type Heterogeneity int

const (
	// Low heterogeneity draws from a narrow range.
	Low Heterogeneity = iota
	// High heterogeneity draws from a wide range.
	High
)

// String returns the two-letter code used in Braun instance names.
func (h Heterogeneity) String() string {
	if h == High {
		return "hi"
	}
	return "lo"
}

// Range limits of the Braun et al. range-based generation method.
const (
	// TaskHeterogeneityHigh is the upper bound of the per-job baseline
	// draw B[i] ~ U[1, 3000] for high job heterogeneity.
	TaskHeterogeneityHigh = 3000
	// TaskHeterogeneityLow is the analogous bound (100) for low job
	// heterogeneity.
	TaskHeterogeneityLow = 100
	// MachineHeterogeneityHigh bounds the per-entry multiplier
	// r[i][j] ~ U[1, 1000] for high machine heterogeneity.
	MachineHeterogeneityHigh = 1000
	// MachineHeterogeneityLow is the analogous bound (10).
	MachineHeterogeneityLow = 10
)

// Class identifies one of the 12 Braun benchmark instance classes.
type Class struct {
	Consistency Consistency
	JobHet      Heterogeneity // heterogeneity of job workloads
	MachineHet  Heterogeneity // heterogeneity of machine capacities
}

// Name returns the benchmark-style class name with trial index k, e.g.
// "u_c_hihi.0": uniform distribution, consistent, high job heterogeneity,
// high machine heterogeneity, trial 0.
func (c Class) Name(k int) string {
	return fmt.Sprintf("u_%s_%s%s.%d", c.Consistency, c.JobHet, c.MachineHet, k)
}

// AllClasses returns the 12 benchmark classes in the order the paper's
// tables list them: consistent, inconsistent, semi-consistent; within each,
// hihi, hilo, lohi, lolo.
func AllClasses() []Class {
	var out []Class
	for _, cons := range []Consistency{Consistent, Inconsistent, SemiConsistent} {
		out = append(out,
			Class{cons, High, High},
			Class{cons, High, Low},
			Class{cons, Low, High},
			Class{cons, Low, Low},
		)
	}
	return out
}

// ParseClass parses a benchmark instance name of the form u_x_yyzz.k and
// returns its class and trial index.
func ParseClass(name string) (Class, int, error) {
	var cons, het string
	var k int
	if _, err := fmt.Sscanf(name, "u_%1s_%4s.%d", &cons, &het, &k); err != nil {
		return Class{}, 0, fmt.Errorf("etc: malformed instance name %q: %v", name, err)
	}
	var c Class
	switch cons {
	case "c":
		c.Consistency = Consistent
	case "i":
		c.Consistency = Inconsistent
	case "s":
		c.Consistency = SemiConsistent
	default:
		return Class{}, 0, fmt.Errorf("etc: unknown consistency %q in %q", cons, name)
	}
	switch het[:2] {
	case "hi":
		c.JobHet = High
	case "lo":
		c.JobHet = Low
	default:
		return Class{}, 0, fmt.Errorf("etc: unknown job heterogeneity in %q", name)
	}
	switch het[2:] {
	case "hi":
		c.MachineHet = High
	case "lo":
		c.MachineHet = Low
	default:
		return Class{}, 0, fmt.Errorf("etc: unknown machine heterogeneity in %q", name)
	}
	return c, k, nil
}

// Instance is a complete scheduling problem: an ETC matrix plus machine
// ready times. Instances are immutable once built; schedulers never write
// to them, so a single Instance may be shared by concurrent runs.
type Instance struct {
	Name  string
	Jobs  int
	Machs int
	// ETC is row-major: ETC[i*Machs+j] is the expected time of job i on
	// machine j. A flat slice keeps the hot evaluation loops cache-
	// friendly and allocation-free.
	ETC []float64
	// ETC32 is the opt-in narrow backing for frontier-scale matrices
	// (GenSpec.Float32): the same row-major layout in float32, halving
	// the matrix footprint (100k×1k drops from 800MB to 400MB). Exactly
	// one of ETC and ETC32 is non-nil; At dispatches on which, and every
	// evaluation kernel reads entries as float64 after a single widening
	// conversion, so all downstream arithmetic stays in float64.
	ETC32 []float32
	// Ready[j] is the time machine j becomes available. The Braun
	// benchmark uses all-zero ready times; the dynamic simulator supplies
	// non-zero ones.
	Ready []float64

	workload []float64 // mean ETC per job (lazily built by Finalize)
	speed    []float64 // 1 / mean ETC per machine
	genSpec  GenSpec   // spec that last filled this instance (GenerateInto)
}

// New allocates an Instance with the given dimensions, zero ETC entries and
// zero ready times. Call Finalize after filling ETC.
func New(name string, jobs, machs int) *Instance {
	if jobs <= 0 || machs <= 0 {
		panic(fmt.Sprintf("etc: invalid dimensions %d×%d", jobs, machs))
	}
	return &Instance{
		Name:  name,
		Jobs:  jobs,
		Machs: machs,
		ETC:   make([]float64, jobs*machs),
		Ready: make([]float64, machs),
	}
}

// New32 allocates an Instance with the float32 ETC backing (see ETC32),
// zero entries and zero ready times. Call Finalize after filling ETC32.
func New32(name string, jobs, machs int) *Instance {
	if jobs <= 0 || machs <= 0 {
		panic(fmt.Sprintf("etc: invalid dimensions %d×%d", jobs, machs))
	}
	return &Instance{
		Name:  name,
		Jobs:  jobs,
		Machs: machs,
		ETC32: make([]float32, jobs*machs),
		Ready: make([]float64, machs),
	}
}

// At returns ETC[job][mach], widened to float64 under the narrow backing.
// The backing branch is a single perfectly predicted test per call; the
// float64 path is unchanged from the single-backing implementation.
func (in *Instance) At(job, mach int) float64 {
	if in.ETC != nil {
		return in.ETC[job*in.Machs+mach]
	}
	return float64(in.ETC32[job*in.Machs+mach])
}

// Set assigns ETC[job][mach] = v (narrowed under the float32 backing). It
// must not be called after the instance is shared with schedulers.
func (in *Instance) Set(job, mach int, v float64) {
	if in.ETC != nil {
		in.ETC[job*in.Machs+mach] = v
		return
	}
	in.ETC32[job*in.Machs+mach] = float32(v)
}

// Row returns the ETC row of job as a sub-slice (do not mutate). It is
// defined only for the float64 backing; frontier-scale float32 instances
// are read through At (no caller outside this package's float64 paths
// needs a raw row).
func (in *Instance) Row(job int) []float64 {
	if in.ETC == nil {
		panic("etc: Row requires the float64 ETC backing; use At")
	}
	return in.ETC[job*in.Machs : (job+1)*in.Machs]
}

// Bytes returns the instance's resident memory footprint in bytes: the
// ETC matrix (whichever backing), ready times and the derived workload
// and speed arrays. The struct header and name are ignored — at frontier
// scale they are noise against the matrix.
func (in *Instance) Bytes() int {
	return len(in.ETC)*8 + len(in.ETC32)*4 +
		(len(in.Ready)+len(in.workload)+len(in.speed))*8
}

// Finalize computes the derived per-job workloads and per-machine speeds
// used by workload-aware heuristics (LJFR-SJFR). It must be called after
// the ETC matrix is filled (New* constructors in this package do so) and
// may be re-called after in-place edits: on a same-shape re-call it reuses
// the previously allocated workload and speed arrays instead of allocating
// fresh ones — the daemon's live-instance extraction re-finalizes at every
// admission cycle, which at 100k jobs would otherwise churn 800KB per
// cycle. Column sums accumulate directly into the speed array (then invert
// in place), so a re-call allocates nothing at all.
func (in *Instance) Finalize() {
	if cap(in.workload) >= in.Jobs {
		in.workload = in.workload[:in.Jobs]
	} else {
		in.workload = make([]float64, in.Jobs)
	}
	if cap(in.speed) >= in.Machs {
		in.speed = in.speed[:in.Machs]
	} else {
		in.speed = make([]float64, in.Machs)
	}
	colSum := in.speed
	for j := range colSum {
		colSum[j] = 0
	}
	if in.ETC != nil {
		for i := 0; i < in.Jobs; i++ {
			row := in.ETC[i*in.Machs : (i+1)*in.Machs]
			s := 0.0
			for j, v := range row {
				s += v
				colSum[j] += v
			}
			in.workload[i] = s / float64(in.Machs)
		}
	} else {
		for i := 0; i < in.Jobs; i++ {
			row := in.ETC32[i*in.Machs : (i+1)*in.Machs]
			s := 0.0
			for j, v32 := range row {
				v := float64(v32)
				s += v
				colSum[j] += v
			}
			in.workload[i] = s / float64(in.Machs)
		}
	}
	for j, cs := range colSum {
		mean := cs / float64(in.Jobs)
		in.speed[j] = 0
		if mean > 0 {
			in.speed[j] = 1 / mean
		}
	}
}

// Workload returns the derived workload of job i (mean ETC across
// machines). The ETC benchmark does not ship explicit per-job instruction
// counts, so this proxy stands in for them; see DESIGN.md §6.
func (in *Instance) Workload(i int) float64 {
	if in.workload == nil {
		panic("etc: Workload before Finalize")
	}
	return in.workload[i]
}

// Speed returns the derived relative speed of machine j (higher is faster).
func (in *Instance) Speed(j int) float64 {
	if in.speed == nil {
		panic("etc: Speed before Finalize")
	}
	return in.speed[j]
}

// Validate checks structural invariants: positive dimensions, matching
// slice lengths, strictly positive ETC entries and non-negative ready
// times. It returns a descriptive error for the first violation found.
func (in *Instance) Validate() error {
	if in.Jobs <= 0 || in.Machs <= 0 {
		return fmt.Errorf("etc: non-positive dimensions %d×%d", in.Jobs, in.Machs)
	}
	switch {
	case in.ETC != nil && in.ETC32 != nil:
		return fmt.Errorf("etc: both float64 and float32 ETC backings set")
	case in.ETC32 != nil:
		if len(in.ETC32) != in.Jobs*in.Machs {
			return fmt.Errorf("etc: ETC32 length %d, want %d", len(in.ETC32), in.Jobs*in.Machs)
		}
	case len(in.ETC) != in.Jobs*in.Machs:
		return fmt.Errorf("etc: ETC length %d, want %d", len(in.ETC), in.Jobs*in.Machs)
	}
	if len(in.Ready) != in.Machs {
		return fmt.Errorf("etc: Ready length %d, want %d", len(in.Ready), in.Machs)
	}
	for i, v := range in.ETC {
		if !(v > 0) {
			return fmt.Errorf("etc: ETC[%d][%d] = %v, want > 0", i/in.Machs, i%in.Machs, v)
		}
	}
	for i, v := range in.ETC32 {
		if !(v > 0) {
			return fmt.Errorf("etc: ETC32[%d][%d] = %v, want > 0", i/in.Machs, i%in.Machs, v)
		}
	}
	for j, v := range in.Ready {
		if v < 0 {
			return fmt.Errorf("etc: Ready[%d] = %v, want >= 0", j, v)
		}
	}
	return nil
}

// IsConsistent reports whether the matrix is consistent: the machine speed
// order is identical in every row.
func (in *Instance) IsConsistent() bool {
	if in.Jobs == 0 {
		return true
	}
	order := make([]int, in.Machs)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return in.At(0, order[a]) < in.At(0, order[b]) })
	for i := 1; i < in.Jobs; i++ {
		for k := 0; k+1 < len(order); k++ {
			if in.At(i, order[k]) > in.At(i, order[k+1]) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the instance (including derived fields).
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, Jobs: in.Jobs, Machs: in.Machs}
	if in.ETC != nil {
		out.ETC = append([]float64(nil), in.ETC...)
	}
	if in.ETC32 != nil {
		out.ETC32 = append([]float32(nil), in.ETC32...)
	}
	out.Ready = append([]float64(nil), in.Ready...)
	if in.workload != nil {
		out.workload = append([]float64(nil), in.workload...)
	}
	if in.speed != nil {
		out.speed = append([]float64(nil), in.speed...)
	}
	return out
}

// GenerateOptions controls instance generation.
type GenerateOptions struct {
	Jobs  int // number of jobs (benchmark: 512)
	Machs int // number of machines (benchmark: 16)
	Seed  uint64
}

// BenchmarkDims are the dimensions of every instance in the Braun suite.
const (
	BenchmarkJobs  = 512
	BenchmarkMachs = 16
)

// Generate builds an instance of the given class with the range-based
// method: ETC[i][j] = B[i] * r[i][j] with B[i] ~ U[1, Rtask] and
// r[i][j] ~ U[1, Rmach], then applies the class's consistency transform.
func Generate(class Class, k int, opt GenerateOptions) *Instance {
	if opt.Jobs == 0 {
		opt.Jobs = BenchmarkJobs
	}
	if opt.Machs == 0 {
		opt.Machs = BenchmarkMachs
	}
	r := rng.New(opt.Seed)
	in := New(class.Name(k), opt.Jobs, opt.Machs)

	rTask := float64(TaskHeterogeneityLow)
	if class.JobHet == High {
		rTask = TaskHeterogeneityHigh
	}
	rMach := float64(MachineHeterogeneityLow)
	if class.MachineHet == High {
		rMach = MachineHeterogeneityHigh
	}

	for i := 0; i < in.Jobs; i++ {
		b := r.Uniform(1, rTask)
		row := in.ETC[i*in.Machs : (i+1)*in.Machs]
		for j := range row {
			row[j] = b * r.Uniform(1, rMach)
		}
		switch class.Consistency {
		case Consistent:
			sort.Float64s(row)
		case SemiConsistent:
			sortEvenColumns(row)
		}
	}
	in.Finalize()
	return in
}

// sortEvenColumns sorts the values sitting in even column positions of row
// in place, leaving odd columns untouched. This is the benchmark's
// semi-consistency construction: even columns form a consistent sub-matrix.
func sortEvenColumns(row []float64) {
	sortEven(row, make([]float64, 0, (len(row)+1)/2))
}

// GenerateByName parses a benchmark instance name and generates the
// corresponding instance with a seed derived from the name, so that
// "u_c_hihi.0" is the same instance in every process.
func GenerateByName(name string) (*Instance, error) {
	class, k, err := ParseClass(name)
	if err != nil {
		return nil, err
	}
	return Generate(class, k, GenerateOptions{Seed: nameSeed(name)}), nil
}

// nameSeed hashes an instance name to a stable 64-bit seed (FNV-1a).
func nameSeed(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}
