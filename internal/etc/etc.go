// Package etc implements the Expected Time to Compute (ETC) instance model
// of Braun et al. (JPDC 2001), the benchmark family on which the paper
// evaluates its cellular memetic scheduler.
//
// An instance is an nb_jobs × nb_machines matrix where ETC[i][j] is the
// expected wall-clock time of job i on machine j, plus a per-machine ready
// time (the time at which the machine finishes previously assigned work).
// The original benchmark files are not redistributable; Generate rebuilds
// instances of every class with the published range-based method, so the
// statistical family (and hence the shape of all experimental results) is
// preserved.
package etc

import (
	"fmt"
	"sort"

	"gridcma/internal/rng"
)

// Consistency describes the structure of an ETC matrix.
type Consistency int

const (
	// Inconsistent matrices have no structure: a machine may be faster
	// than another for one job and slower for the next.
	Inconsistent Consistency = iota
	// Consistent matrices satisfy: if machine a is faster than machine b
	// for one job, it is faster for every job.
	Consistent
	// SemiConsistent matrices embed a consistent sub-matrix (even columns
	// of every row, per the benchmark's construction) in an otherwise
	// inconsistent matrix.
	SemiConsistent
)

// String returns the single-letter code used in Braun instance names.
func (c Consistency) String() string {
	switch c {
	case Consistent:
		return "c"
	case Inconsistent:
		return "i"
	case SemiConsistent:
		return "s"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// Heterogeneity is the spread of job workloads or machine speeds.
type Heterogeneity int

const (
	// Low heterogeneity draws from a narrow range.
	Low Heterogeneity = iota
	// High heterogeneity draws from a wide range.
	High
)

// String returns the two-letter code used in Braun instance names.
func (h Heterogeneity) String() string {
	if h == High {
		return "hi"
	}
	return "lo"
}

// Range limits of the Braun et al. range-based generation method.
const (
	// TaskHeterogeneityHigh is the upper bound of the per-job baseline
	// draw B[i] ~ U[1, 3000] for high job heterogeneity.
	TaskHeterogeneityHigh = 3000
	// TaskHeterogeneityLow is the analogous bound (100) for low job
	// heterogeneity.
	TaskHeterogeneityLow = 100
	// MachineHeterogeneityHigh bounds the per-entry multiplier
	// r[i][j] ~ U[1, 1000] for high machine heterogeneity.
	MachineHeterogeneityHigh = 1000
	// MachineHeterogeneityLow is the analogous bound (10).
	MachineHeterogeneityLow = 10
)

// Class identifies one of the 12 Braun benchmark instance classes.
type Class struct {
	Consistency Consistency
	JobHet      Heterogeneity // heterogeneity of job workloads
	MachineHet  Heterogeneity // heterogeneity of machine capacities
}

// Name returns the benchmark-style class name with trial index k, e.g.
// "u_c_hihi.0": uniform distribution, consistent, high job heterogeneity,
// high machine heterogeneity, trial 0.
func (c Class) Name(k int) string {
	return fmt.Sprintf("u_%s_%s%s.%d", c.Consistency, c.JobHet, c.MachineHet, k)
}

// AllClasses returns the 12 benchmark classes in the order the paper's
// tables list them: consistent, inconsistent, semi-consistent; within each,
// hihi, hilo, lohi, lolo.
func AllClasses() []Class {
	var out []Class
	for _, cons := range []Consistency{Consistent, Inconsistent, SemiConsistent} {
		out = append(out,
			Class{cons, High, High},
			Class{cons, High, Low},
			Class{cons, Low, High},
			Class{cons, Low, Low},
		)
	}
	return out
}

// ParseClass parses a benchmark instance name of the form u_x_yyzz.k and
// returns its class and trial index.
func ParseClass(name string) (Class, int, error) {
	var cons, het string
	var k int
	if _, err := fmt.Sscanf(name, "u_%1s_%4s.%d", &cons, &het, &k); err != nil {
		return Class{}, 0, fmt.Errorf("etc: malformed instance name %q: %v", name, err)
	}
	var c Class
	switch cons {
	case "c":
		c.Consistency = Consistent
	case "i":
		c.Consistency = Inconsistent
	case "s":
		c.Consistency = SemiConsistent
	default:
		return Class{}, 0, fmt.Errorf("etc: unknown consistency %q in %q", cons, name)
	}
	switch het[:2] {
	case "hi":
		c.JobHet = High
	case "lo":
		c.JobHet = Low
	default:
		return Class{}, 0, fmt.Errorf("etc: unknown job heterogeneity in %q", name)
	}
	switch het[2:] {
	case "hi":
		c.MachineHet = High
	case "lo":
		c.MachineHet = Low
	default:
		return Class{}, 0, fmt.Errorf("etc: unknown machine heterogeneity in %q", name)
	}
	return c, k, nil
}

// Instance is a complete scheduling problem: an ETC matrix plus machine
// ready times. Instances are immutable once built; schedulers never write
// to them, so a single Instance may be shared by concurrent runs.
type Instance struct {
	Name  string
	Jobs  int
	Machs int
	// ETC is row-major: ETC[i*Machs+j] is the expected time of job i on
	// machine j. A flat slice keeps the hot evaluation loops cache-
	// friendly and allocation-free.
	ETC []float64
	// Ready[j] is the time machine j becomes available. The Braun
	// benchmark uses all-zero ready times; the dynamic simulator supplies
	// non-zero ones.
	Ready []float64

	workload []float64 // mean ETC per job (lazily built by Finalize)
	speed    []float64 // 1 / mean ETC per machine
}

// New allocates an Instance with the given dimensions, zero ETC entries and
// zero ready times. Call Finalize after filling ETC.
func New(name string, jobs, machs int) *Instance {
	if jobs <= 0 || machs <= 0 {
		panic(fmt.Sprintf("etc: invalid dimensions %d×%d", jobs, machs))
	}
	return &Instance{
		Name:  name,
		Jobs:  jobs,
		Machs: machs,
		ETC:   make([]float64, jobs*machs),
		Ready: make([]float64, machs),
	}
}

// At returns ETC[job][mach].
func (in *Instance) At(job, mach int) float64 {
	return in.ETC[job*in.Machs+mach]
}

// Set assigns ETC[job][mach] = v. It must not be called after the instance
// is shared with schedulers.
func (in *Instance) Set(job, mach int, v float64) {
	in.ETC[job*in.Machs+mach] = v
}

// Row returns the ETC row of job as a sub-slice (do not mutate).
func (in *Instance) Row(job int) []float64 {
	return in.ETC[job*in.Machs : (job+1)*in.Machs]
}

// Finalize computes the derived per-job workloads and per-machine speeds
// used by workload-aware heuristics (LJFR-SJFR). It must be called once
// after the ETC matrix is filled; New* constructors in this package do so.
func (in *Instance) Finalize() {
	in.workload = make([]float64, in.Jobs)
	colSum := make([]float64, in.Machs)
	for i := 0; i < in.Jobs; i++ {
		row := in.Row(i)
		s := 0.0
		for j, v := range row {
			s += v
			colSum[j] += v
		}
		in.workload[i] = s / float64(in.Machs)
	}
	in.speed = make([]float64, in.Machs)
	for j := range in.speed {
		mean := colSum[j] / float64(in.Jobs)
		if mean > 0 {
			in.speed[j] = 1 / mean
		}
	}
}

// Workload returns the derived workload of job i (mean ETC across
// machines). The ETC benchmark does not ship explicit per-job instruction
// counts, so this proxy stands in for them; see DESIGN.md §6.
func (in *Instance) Workload(i int) float64 {
	if in.workload == nil {
		panic("etc: Workload before Finalize")
	}
	return in.workload[i]
}

// Speed returns the derived relative speed of machine j (higher is faster).
func (in *Instance) Speed(j int) float64 {
	if in.speed == nil {
		panic("etc: Speed before Finalize")
	}
	return in.speed[j]
}

// Validate checks structural invariants: positive dimensions, matching
// slice lengths, strictly positive ETC entries and non-negative ready
// times. It returns a descriptive error for the first violation found.
func (in *Instance) Validate() error {
	if in.Jobs <= 0 || in.Machs <= 0 {
		return fmt.Errorf("etc: non-positive dimensions %d×%d", in.Jobs, in.Machs)
	}
	if len(in.ETC) != in.Jobs*in.Machs {
		return fmt.Errorf("etc: ETC length %d, want %d", len(in.ETC), in.Jobs*in.Machs)
	}
	if len(in.Ready) != in.Machs {
		return fmt.Errorf("etc: Ready length %d, want %d", len(in.Ready), in.Machs)
	}
	for i, v := range in.ETC {
		if !(v > 0) {
			return fmt.Errorf("etc: ETC[%d][%d] = %v, want > 0", i/in.Machs, i%in.Machs, v)
		}
	}
	for j, v := range in.Ready {
		if v < 0 {
			return fmt.Errorf("etc: Ready[%d] = %v, want >= 0", j, v)
		}
	}
	return nil
}

// IsConsistent reports whether the matrix is consistent: the machine speed
// order is identical in every row.
func (in *Instance) IsConsistent() bool {
	if in.Jobs == 0 {
		return true
	}
	order := rankOrder(in.Row(0))
	for i := 1; i < in.Jobs; i++ {
		row := in.Row(i)
		for k := 0; k+1 < len(order); k++ {
			if row[order[k]] > row[order[k+1]] {
				return false
			}
		}
	}
	return true
}

func rankOrder(row []float64) []int {
	order := make([]int, len(row))
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return row[order[a]] < row[order[b]] })
	return order
}

// Clone returns a deep copy of the instance (including derived fields).
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, Jobs: in.Jobs, Machs: in.Machs}
	out.ETC = append([]float64(nil), in.ETC...)
	out.Ready = append([]float64(nil), in.Ready...)
	if in.workload != nil {
		out.workload = append([]float64(nil), in.workload...)
	}
	if in.speed != nil {
		out.speed = append([]float64(nil), in.speed...)
	}
	return out
}

// GenerateOptions controls instance generation.
type GenerateOptions struct {
	Jobs  int // number of jobs (benchmark: 512)
	Machs int // number of machines (benchmark: 16)
	Seed  uint64
}

// BenchmarkDims are the dimensions of every instance in the Braun suite.
const (
	BenchmarkJobs  = 512
	BenchmarkMachs = 16
)

// Generate builds an instance of the given class with the range-based
// method: ETC[i][j] = B[i] * r[i][j] with B[i] ~ U[1, Rtask] and
// r[i][j] ~ U[1, Rmach], then applies the class's consistency transform.
func Generate(class Class, k int, opt GenerateOptions) *Instance {
	if opt.Jobs == 0 {
		opt.Jobs = BenchmarkJobs
	}
	if opt.Machs == 0 {
		opt.Machs = BenchmarkMachs
	}
	r := rng.New(opt.Seed)
	in := New(class.Name(k), opt.Jobs, opt.Machs)

	rTask := float64(TaskHeterogeneityLow)
	if class.JobHet == High {
		rTask = TaskHeterogeneityHigh
	}
	rMach := float64(MachineHeterogeneityLow)
	if class.MachineHet == High {
		rMach = MachineHeterogeneityHigh
	}

	for i := 0; i < in.Jobs; i++ {
		b := r.Uniform(1, rTask)
		row := in.ETC[i*in.Machs : (i+1)*in.Machs]
		for j := range row {
			row[j] = b * r.Uniform(1, rMach)
		}
		switch class.Consistency {
		case Consistent:
			sort.Float64s(row)
		case SemiConsistent:
			sortEvenColumns(row)
		}
	}
	in.Finalize()
	return in
}

// sortEvenColumns sorts the values sitting in even column positions of row
// in place, leaving odd columns untouched. This is the benchmark's
// semi-consistency construction: even columns form a consistent sub-matrix.
func sortEvenColumns(row []float64) {
	n := (len(row) + 1) / 2
	tmp := make([]float64, 0, n)
	for j := 0; j < len(row); j += 2 {
		tmp = append(tmp, row[j])
	}
	sort.Float64s(tmp)
	for k, j := 0, 0; j < len(row); j += 2 {
		row[j] = tmp[k]
		k++
	}
}

// GenerateByName parses a benchmark instance name and generates the
// corresponding instance with a seed derived from the name, so that
// "u_c_hihi.0" is the same instance in every process.
func GenerateByName(name string) (*Instance, error) {
	class, k, err := ParseClass(name)
	if err != nil {
		return nil, err
	}
	return Generate(class, k, GenerateOptions{Seed: nameSeed(name)}), nil
}

// nameSeed hashes an instance name to a stable 64-bit seed (FNV-1a).
func nameSeed(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}
