package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridcma/internal/cell"
	"gridcma/internal/cma"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
)

func TestEmptySpecIsTable1(t *testing.T) {
	cfg, err := (Spec{}).Build()
	if err != nil {
		t.Fatal(err)
	}
	def := cma.DefaultConfig()
	if cfg.Width != def.Width || cfg.Pattern != def.Pattern ||
		cfg.Recombinations != def.Recombinations || cfg.Objective != def.Objective {
		t.Error("empty spec drifted from defaults")
	}
}

func TestFullSpecOverridesEverything(t *testing.T) {
	spec, err := Read(strings.NewReader(`{
		"width": 8, "height": 4,
		"pattern": "L5",
		"recomb_order": "NRS", "mut_order": "FRS",
		"recombinations": 10, "mutations": 5, "solutions_to_recombine": 4,
		"selector": "tournament:5",
		"crossover": "uniform",
		"mutator": "swap",
		"local_search": "SLM", "ls_iterations": 9,
		"lambda": 0.5,
		"add_only_if_better": false,
		"seed_heuristic": "minmin",
		"perturb_fraction": 0.1,
		"synchronous": true, "workers": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 8 || cfg.Height != 4 {
		t.Error("dims not applied")
	}
	if cfg.Pattern != cell.L5 || cfg.RecombOrder != cell.NRS || cfg.MutOrder != cell.FRS {
		t.Error("cellular settings not applied")
	}
	if cfg.Recombinations != 10 || cfg.Mutations != 5 || cfg.SolutionsToRecombine != 4 {
		t.Error("counts not applied")
	}
	if sel, ok := cfg.Selector.(operators.Tournament); !ok || sel.N != 5 {
		t.Error("selector not applied")
	}
	if _, ok := cfg.Crossover.(operators.Uniform); !ok {
		t.Error("crossover not applied")
	}
	if _, ok := cfg.Mutator.(operators.Swap); !ok {
		t.Error("mutator not applied")
	}
	if _, ok := cfg.LocalSearch.(localsearch.SLM); !ok || cfg.LSIterations != 9 {
		t.Error("local search not applied")
	}
	if cfg.Objective.Lambda != 0.5 || cfg.AddOnlyIfBetter || cfg.PerturbFraction != 0.1 {
		t.Error("scalar knobs not applied")
	}
	if cfg.SeedHeuristic == nil || !cfg.Synchronous || cfg.Workers != 3 {
		t.Error("seed/sync knobs not applied")
	}
}

func TestRandomSeedHeuristic(t *testing.T) {
	cfg, err := (Spec{Seed: "random"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SeedHeuristic != nil {
		t.Error("random seed should clear the heuristic")
	}
}

// TestSweepNativeLocalSearchResolves pins the PR 5 batch-sampled variant
// in the config vocabulary: a version-controlled experiment file can
// select the machine-grouped sampled LMCTS by name.
func TestSweepNativeLocalSearchResolves(t *testing.T) {
	cfg, err := Spec{LocalSearch: "LMCTS-sampled-batch"}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.LocalSearch.(localsearch.SampledLMCTSBatch); !ok {
		t.Fatalf("LocalSearch resolved to %T", cfg.LocalSearch)
	}
}

func TestBadValuesRejected(t *testing.T) {
	cases := []Spec{
		{Pattern: "X9"},
		{RecombOrder: "XYZ"},
		{Selector: "tournament:zero"},
		{Selector: "roulette"},
		{Crossover: "pmx"},
		{Mutator: "inversion"},
		{LocalSearch: "deep"},
		{Seed: "bogus"},
	}
	for i, s := range cases {
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Structurally valid but semantically invalid config.
	w := 0
	if _, err := (Spec{Width: &w}).Build(); err == nil {
		t.Error("zero width accepted")
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"widht": 5}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
}

func TestSelectorShorthand(t *testing.T) {
	sel, err := parseSelector("tournament")
	if err != nil {
		t.Fatal(err)
	}
	if sel.(operators.Tournament).N != 3 {
		t.Error("bare tournament should default to N=3")
	}
	for _, n := range []string{"rank", "best", "random"} {
		if _, err := parseSelector(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cma.json")
	if err := os.WriteFile(path, []byte(`{"pattern": "C13", "ls_iterations": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pattern != cell.C13 || cfg.LSIterations != 2 {
		t.Error("file settings not applied")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
