// Package config maps a JSON-friendly description of a cMA configuration
// onto cma.Config, so experiment setups can live in version-controlled
// files instead of command lines. Every field is optional; absent fields
// keep their Table 1 default. Operator references are by name, using the
// same vocabulary as the CLIs ("C9", "FLS", "tournament:3", "one-point",
// "rebalance", "LMCTS", ...).
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gridcma/internal/cell"
	"gridcma/internal/cma"
	"gridcma/internal/heuristics"
	"gridcma/internal/localsearch"
	"gridcma/internal/operators"
	"gridcma/internal/schedule"
)

// Spec is the JSON shape of a cMA configuration. Pointer fields
// distinguish "absent" (keep default) from zero values.
type Spec struct {
	Width  *int `json:"width,omitempty"`
	Height *int `json:"height,omitempty"`

	Pattern     string `json:"pattern,omitempty"`      // L5 L9 C9 C13 Panmictic
	RecombOrder string `json:"recomb_order,omitempty"` // FLS FRS NRS
	MutOrder    string `json:"mut_order,omitempty"`

	Recombinations       *int `json:"recombinations,omitempty"`
	Mutations            *int `json:"mutations,omitempty"`
	SolutionsToRecombine *int `json:"solutions_to_recombine,omitempty"`

	Selector  string `json:"selector,omitempty"`  // tournament:N | rank | best | random
	Crossover string `json:"crossover,omitempty"` // one-point | two-point | uniform
	Mutator   string `json:"mutator,omitempty"`   // rebalance | move | swap

	LocalSearch  string `json:"local_search,omitempty"` // LM SLM LMCTS LMCTS-sampled LMCTS-sampled-batch VND none
	LSIterations *int   `json:"ls_iterations,omitempty"`

	Lambda          *float64 `json:"lambda,omitempty"`
	AddOnlyIfBetter *bool    `json:"add_only_if_better,omitempty"`
	Seed            string   `json:"seed_heuristic,omitempty"` // ljfr-sjfr minmin ... | "random"
	PerturbFraction *float64 `json:"perturb_fraction,omitempty"`

	Synchronous *bool `json:"synchronous,omitempty"`
	Workers     *int  `json:"workers,omitempty"`
}

// Build merges the spec onto the Table 1 defaults and validates the
// result.
func (s Spec) Build() (cma.Config, error) {
	cfg := cma.DefaultConfig()
	if s.Width != nil {
		cfg.Width = *s.Width
	}
	if s.Height != nil {
		cfg.Height = *s.Height
	}
	if s.Pattern != "" {
		p, err := cell.ParsePattern(s.Pattern)
		if err != nil {
			return cfg, err
		}
		cfg.Pattern = p
	}
	if s.RecombOrder != "" {
		o, err := cell.ParseOrder(s.RecombOrder)
		if err != nil {
			return cfg, err
		}
		cfg.RecombOrder = o
	}
	if s.MutOrder != "" {
		o, err := cell.ParseOrder(s.MutOrder)
		if err != nil {
			return cfg, err
		}
		cfg.MutOrder = o
	}
	if s.Recombinations != nil {
		cfg.Recombinations = *s.Recombinations
	}
	if s.Mutations != nil {
		cfg.Mutations = *s.Mutations
	}
	if s.SolutionsToRecombine != nil {
		cfg.SolutionsToRecombine = *s.SolutionsToRecombine
	}
	if s.Selector != "" {
		sel, err := parseSelector(s.Selector)
		if err != nil {
			return cfg, err
		}
		cfg.Selector = sel
	}
	if s.Crossover != "" {
		cx, err := operators.ParseCrossover(s.Crossover)
		if err != nil {
			return cfg, err
		}
		cfg.Crossover = cx
	}
	if s.Mutator != "" {
		mu, err := operators.ParseMutator(s.Mutator)
		if err != nil {
			return cfg, err
		}
		cfg.Mutator = mu
	}
	if s.LocalSearch != "" {
		ls, err := localsearch.ByName(s.LocalSearch)
		if err != nil {
			return cfg, err
		}
		cfg.LocalSearch = ls
	}
	if s.LSIterations != nil {
		cfg.LSIterations = *s.LSIterations
	}
	if s.Lambda != nil {
		cfg.Objective = schedule.Objective{Lambda: *s.Lambda}
	}
	if s.AddOnlyIfBetter != nil {
		cfg.AddOnlyIfBetter = *s.AddOnlyIfBetter
	}
	switch s.Seed {
	case "":
		// keep default
	case "random":
		cfg.SeedHeuristic = nil
	default:
		h, err := heuristics.ByName(s.Seed)
		if err != nil {
			return cfg, err
		}
		cfg.SeedHeuristic = h
	}
	if s.PerturbFraction != nil {
		cfg.PerturbFraction = *s.PerturbFraction
	}
	if s.Synchronous != nil {
		cfg.Synchronous = *s.Synchronous
	}
	if s.Workers != nil {
		cfg.Workers = *s.Workers
	}
	return cfg, cfg.Validate()
}

// parseSelector resolves "tournament:N", "rank", "best" or "random".
func parseSelector(s string) (operators.Selector, error) {
	switch {
	case s == "rank":
		return operators.LinearRank{}, nil
	case s == "best":
		return operators.Best{}, nil
	case s == "random":
		return operators.Random{}, nil
	case strings.HasPrefix(s, "tournament"):
		n := 3
		if rest, ok := strings.CutPrefix(s, "tournament:"); ok {
			v, err := strconv.Atoi(rest)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("config: bad tournament size %q", rest)
			}
			n = v
		} else if s != "tournament" {
			return nil, fmt.Errorf("config: unknown selector %q", s)
		}
		return operators.NewTournament(n), nil
	default:
		return nil, fmt.Errorf("config: unknown selector %q", s)
	}
}

// Read parses a JSON spec. Unknown fields are errors: a typoed knob must
// not silently fall back to its default.
func Read(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("config: %v", err)
	}
	return s, nil
}

// Load reads and builds a configuration file.
func Load(path string) (cma.Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return cma.Config{}, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return cma.Config{}, err
	}
	return s.Build()
}
