package runner

import (
	"context"
	"fmt"
	"sync"

	"gridcma/internal/etc"
	"gridcma/internal/run"
)

// Outcome is the result of one portfolio race.
type Outcome struct {
	// Best is the best result across the whole portfolio — usually the
	// first finisher's, but a cancelled loser that had already found a
	// better schedule wins on merit.
	Best run.Result
	// Winner is the index (into the racing schedulers) of Best.
	Winner int
	// Results holds every scheduler's result, index-aligned with the
	// schedulers argument; losers report what they found before
	// cancellation reached them.
	Results []run.Result
}

// Race runs every scheduler on in concurrently, all from seeds derived
// from seed, and cancels the rest of the portfolio as soon as the first
// one finishes its budget — the losers stop at their next budget check
// instead of waiting out the remaining time. The best result across the
// portfolio (finished or interrupted) is returned.
func Race(ctx context.Context, in *etc.Instance, schedulers []Scheduler, budget run.Budget, seed uint64) (Outcome, error) {
	if len(schedulers) == 0 {
		return Outcome{}, fmt.Errorf("runner: empty portfolio")
	}
	for i, s := range schedulers {
		if s == nil {
			return Outcome{}, fmt.Errorf("runner: nil scheduler at %d", i)
		}
	}
	if in == nil {
		return Outcome{}, fmt.Errorf("runner: nil instance")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// A context deadline alone is a legitimate bound, same as for a
	// single Scheduler.Run.
	budget = budget.WithContext(ctx)
	if !budget.Bounded() {
		return Outcome{}, fmt.Errorf("runner: unbounded budget")
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]run.Result, len(schedulers))
	var wg sync.WaitGroup
	wg.Add(len(schedulers))
	for i, s := range schedulers {
		go func(i int, s Scheduler) {
			defer wg.Done()
			results[i] = s.Run(in, budget.WithContext(raceCtx), TaskSeed(seed, i, 0, 0), nil)
			cancel() // first finisher ends the race; losers stop at their next check
		}(i, s)
	}
	wg.Wait()

	out := Outcome{Results: results}
	for i, r := range results {
		if i == 0 || r.Better(out.Best) {
			out.Best = r
			out.Winner = i
		}
	}
	return out, ctx.Err()
}
