// Package runner executes fleets of metaheuristic runs: a deterministic
// worker-pool batch executor fanning out instances × schedulers × seeds,
// and a portfolio racer that runs several schedulers on one instance
// concurrently and cancels the losers as soon as one finishes.
//
// Batch results are deterministic for a fixed seed regardless of the
// worker count: tasks are enumerated in a fixed order, every task gets a
// seed derived only from its coordinates (not from scheduling), and each
// engine is itself deterministic in its seed when iteration-bounded.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/run"
)

// Scheduler is the uniform engine contract shared by every metaheuristic
// in the library (cMA, the GAs, SA, tabu search, the island model).
// Cancellation arrives through the context attached to the Budget.
type Scheduler interface {
	Name() string
	Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result
}

// PooledScheduler is the optional extension RunBatch exploits to share
// evaluation scratches: engines implementing it are handed one
// evalpool.Pool per distinct instance, so the scratch States built up by
// one run are reused by every later run on that instance instead of
// being reallocated engine by engine. Pools are safe for the pool-level
// concurrency RunBatch needs; determinism is unaffected because a
// scratch's contents are never read before being overwritten. Engines
// must treat the pool as advisory — a nil or foreign-instance pool falls
// back to a private one.
type PooledScheduler interface {
	Scheduler
	RunPooled(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result
}

// Instance pairs a problem instance with the name batch results report.
type Instance struct {
	Name string
	In   *etc.Instance
}

// BatchSpec describes one batch: the cartesian product of Schedulers ×
// Instances × repeats, each run within Budget.
type BatchSpec struct {
	Instances  []Instance
	Schedulers []Scheduler
	// Budget bounds every individual run.
	Budget run.Budget

	// Seeds, when non-empty, are used verbatim for the repeats of every
	// (scheduler, instance) pair — the mode the experiment harness uses
	// to reproduce the paper's seed ladder. When empty, Repeats runs are
	// made per pair with seeds derived from BaseSeed and the task
	// coordinates, so every task in the batch draws from an independent
	// stream.
	Seeds    []uint64
	Repeats  int
	BaseSeed uint64

	// Workers caps concurrent runs; 0 means GOMAXPROCS.
	Workers int
}

// Validate reports the first specification error.
func (s BatchSpec) Validate() error {
	switch {
	case len(s.Instances) == 0:
		return fmt.Errorf("runner: no instances")
	case len(s.Schedulers) == 0:
		return fmt.Errorf("runner: no schedulers")
	case !s.Budget.Bounded():
		return fmt.Errorf("runner: unbounded budget")
	case len(s.Seeds) == 0 && s.Repeats < 1:
		return fmt.Errorf("runner: need Seeds or Repeats >= 1")
	}
	for i, in := range s.Instances {
		if in.In == nil {
			return fmt.Errorf("runner: nil instance at %d", i)
		}
	}
	for i, sc := range s.Schedulers {
		if sc == nil {
			return fmt.Errorf("runner: nil scheduler at %d", i)
		}
	}
	return nil
}

// repeats returns how many runs each (scheduler, instance) pair gets.
func (s BatchSpec) repeats() int {
	if len(s.Seeds) > 0 {
		return len(s.Seeds)
	}
	return s.Repeats
}

// BatchResult is one completed run of a batch.
type BatchResult struct {
	Instance  string
	Algorithm string
	// SchedulerIndex / InstanceIndex / RepeatIndex locate the task in
	// the spec's cartesian product.
	SchedulerIndex int
	InstanceIndex  int
	RepeatIndex    int
	Seed           uint64
	Result         run.Result
}

// TaskSeed derives the deterministic seed of the task at coordinates
// (scheduler, instance, repeat) from base. Distinct coordinates yield
// independent splitmix64-style streams.
func TaskSeed(base uint64, scheduler, instance, repeat int) uint64 {
	x := base ^ 0x9e3779b97f4a7c15
	for _, v := range [...]uint64{uint64(scheduler) + 1, uint64(instance) + 1, uint64(repeat) + 1} {
		x += v * 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// RunBatch fans the batch out across a worker pool and returns every
// result in a fixed order (scheduler-major, then instance, then repeat).
// The output is identical for any worker count.
//
// Cancelling ctx stops the batch early: running tasks terminate at their
// next budget check, unstarted tasks never start, and RunBatch returns
// the completed prefix-set of results (unrun slots are dropped) together
// with ctx.Err().
func RunBatch(ctx context.Context, spec BatchSpec) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Attach ctx before validating: a context deadline alone is a
	// legitimate bound, same as for a single Scheduler.Run.
	spec.Budget = spec.Budget.WithContext(ctx)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	reps := spec.repeats()
	total := len(spec.Schedulers) * len(spec.Instances) * reps
	results := make([]BatchResult, total)
	done := make([]bool, total)

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// One scratch pool per instance, shared by every PooledScheduler
	// task on it (PR 2 follow-up: batch runs on one instance reuse
	// scratches across engines). Skipped entirely when no scheduler can
	// use a pool.
	var pools []*evalpool.Pool
	for _, s := range spec.Schedulers {
		if _, ok := s.(PooledScheduler); ok {
			pools = make([]*evalpool.Pool, len(spec.Instances))
			for i, in := range spec.Instances {
				pools[i] = evalpool.New(in.In)
			}
			break
		}
	}

	budget := spec.Budget
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= total || ctx.Err() != nil {
					return
				}
				si := k / (len(spec.Instances) * reps)
				ii := k / reps % len(spec.Instances)
				ri := k % reps
				seed := spec.BaseSeed
				if len(spec.Seeds) > 0 {
					seed = spec.Seeds[ri]
				} else {
					seed = TaskSeed(spec.BaseSeed, si, ii, ri)
				}
				sched := spec.Schedulers[si]
				inst := spec.Instances[ii]
				var res run.Result
				if ps, ok := sched.(PooledScheduler); ok {
					res = ps.RunPooled(inst.In, budget, seed, nil, pools[ii])
				} else {
					res = sched.Run(inst.In, budget, seed, nil)
				}
				results[k] = BatchResult{
					Instance:       inst.Name,
					Algorithm:      sched.Name(),
					SchedulerIndex: si,
					InstanceIndex:  ii,
					RepeatIndex:    ri,
					Seed:           seed,
					Result:         res,
				}
				done[k] = true
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		completed := results[:0]
		for k, ok := range done {
			if ok {
				completed = append(completed, results[k])
			}
		}
		return completed, err
	}
	return results, nil
}
