package runner

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/run"
	"gridcma/internal/sa"
	"gridcma/internal/tabu"
)

func testInstance(t *testing.T) *etc.Instance {
	t.Helper()
	in := etc.Generate(etc.Class{}, 0, etc.GenerateOptions{Jobs: 48, Machs: 6, Seed: 11})
	in.Name = "test48x6"
	return in
}

func testSchedulers(t *testing.T) []Scheduler {
	t.Helper()
	s, err := sa.New(sa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tabu.New(tabu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return []Scheduler{s, tb}
}

func TestRunBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	in := testInstance(t)
	spec := BatchSpec{
		Instances:  []Instance{{Name: in.Name, In: in}},
		Schedulers: testSchedulers(t),
		Budget:     run.Budget{MaxIterations: 6},
		Repeats:    4,
		BaseSeed:   3,
	}
	var prev []BatchResult
	for _, workers := range []int{1, 3, 8} {
		spec.Workers = workers
		got, err := RunBatch(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 8 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		// Elapsed is wall-clock noise; zero it before comparing.
		for i := range got {
			got[i].Result.Elapsed = 0
		}
		if prev != nil && !reflect.DeepEqual(prev, got) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
		prev = got
	}
}

func TestRunBatchOrderAndSeeds(t *testing.T) {
	in := testInstance(t)
	scheds := testSchedulers(t)
	spec := BatchSpec{
		Instances:  []Instance{{Name: in.Name, In: in}},
		Schedulers: scheds,
		Budget:     run.Budget{MaxIterations: 2},
		Seeds:      []uint64{7, 9},
	}
	got, err := RunBatch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		alg  string
		seed uint64
	}{
		{scheds[0].Name(), 7}, {scheds[0].Name(), 9},
		{scheds[1].Name(), 7}, {scheds[1].Name(), 9},
	}
	for i, w := range want {
		if got[i].Algorithm != w.alg || got[i].Seed != w.seed {
			t.Errorf("task %d: got (%s, %d), want (%s, %d)",
				i, got[i].Algorithm, got[i].Seed, w.alg, w.seed)
		}
		if got[i].Result.Best == nil {
			t.Errorf("task %d: no schedule", i)
		}
	}
}

func TestRunBatchHonorsCancellation(t *testing.T) {
	in := testInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch even starts
	got, err := RunBatch(ctx, BatchSpec{
		Instances:  []Instance{{Name: in.Name, In: in}},
		Schedulers: testSchedulers(t),
		Budget:     run.Budget{MaxIterations: 1000},
		Repeats:    8,
		Workers:    2,
	})
	if err == nil {
		t.Fatal("expected context error")
	}
	if len(got) != 0 {
		t.Fatalf("%d tasks ran after pre-cancellation", len(got))
	}
}

func TestRunBatchValidates(t *testing.T) {
	in := testInstance(t)
	cases := []BatchSpec{
		{},
		{Instances: []Instance{{Name: in.Name, In: in}}},
		{Instances: []Instance{{Name: in.Name, In: in}}, Schedulers: testSchedulers(t)},
		{Instances: []Instance{{Name: in.Name, In: in}}, Schedulers: testSchedulers(t),
			Budget: run.Budget{MaxIterations: 1}},
	}
	for i, spec := range cases {
		if _, err := RunBatch(context.Background(), spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestRaceCancelsLosers(t *testing.T) {
	in := testInstance(t)
	scheds := testSchedulers(t)
	// Scheduler 0 finishes after a handful of iterations; scheduler 1
	// alone would run for minutes. Winning must cancel it.
	fast := run.Budget{MaxIterations: 4}
	start := time.Now()
	out, err := Race(context.Background(), in,
		[]Scheduler{scheds[0], slowScheduler{scheds[1]}}, fast, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("race took %v; losers not cancelled", elapsed)
	}
	if out.Best.Best == nil {
		t.Fatal("race produced no schedule")
	}
	if len(out.Results) != 2 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Best.Fitness != out.Results[out.Winner].Fitness {
		t.Error("winner index inconsistent with best result")
	}
}

// poolSpy wraps a PooledScheduler and records the pool of every task, so
// the sharing contract of RunBatch is observable.
type poolSpy struct {
	inner PooledScheduler
	mu    sync.Mutex
	pools []*evalpool.Pool
}

func (p *poolSpy) Name() string { return p.inner.Name() }
func (p *poolSpy) Run(in *etc.Instance, b run.Budget, seed uint64, obs run.Observer) run.Result {
	return p.inner.Run(in, b, seed, obs)
}
func (p *poolSpy) RunPooled(in *etc.Instance, b run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result {
	p.mu.Lock()
	p.pools = append(p.pools, pool)
	p.mu.Unlock()
	return p.inner.RunPooled(in, b, seed, obs, pool)
}

// TestRunBatchSharesPoolPerInstance checks the PR 2 follow-up wiring:
// engines implementing PooledScheduler receive one shared scratch pool
// per distinct instance, and sharing does not change any result.
func TestRunBatchSharesPoolPerInstance(t *testing.T) {
	inA := testInstance(t)
	inB := etc.Generate(etc.Class{}, 0, etc.GenerateOptions{Jobs: 32, Machs: 4, Seed: 5})
	inB.Name = "test32x4"
	cfg := cma.DefaultConfig()
	cfg.LSIterations = 1
	sched, err := cma.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spy := &poolSpy{inner: sched}
	spec := BatchSpec{
		Instances:  []Instance{{Name: inA.Name, In: inA}, {Name: inB.Name, In: inB}},
		Schedulers: []Scheduler{spy},
		Budget:     run.Budget{MaxIterations: 2},
		Repeats:    3,
		BaseSeed:   7,
		Workers:    2,
	}
	shared, err := RunBatch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(spy.pools) != 6 {
		t.Fatalf("%d pooled tasks, want 6", len(spy.pools))
	}
	perInstance := map[*etc.Instance]map[*evalpool.Pool]bool{}
	for _, p := range spy.pools {
		if p == nil {
			t.Fatal("RunBatch handed a nil pool to a PooledScheduler")
		}
		m := perInstance[p.Instance()]
		if m == nil {
			m = map[*evalpool.Pool]bool{}
			perInstance[p.Instance()] = m
		}
		m[p] = true
	}
	if len(perInstance) != 2 {
		t.Fatalf("pools bound to %d instances, want 2", len(perInstance))
	}
	for in, pools := range perInstance {
		if len(pools) != 1 {
			t.Fatalf("instance %s used %d pools, want 1 shared", in.Name, len(pools))
		}
	}

	// Sharing must be invisible in the results: an unpooled run of the
	// same spec (the shim hides RunPooled) matches exactly.
	spec.Schedulers = []Scheduler{hidePool{sched}}
	plain, err := RunBatch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !plain[i].Result.Best.Equal(shared[i].Result.Best) ||
			plain[i].Result.Fitness != shared[i].Result.Fitness {
			t.Fatalf("task %d: pooled run diverged from unpooled", i)
		}
	}
}

// hidePool strips the PooledScheduler extension from a scheduler.
type hidePool struct{ inner Scheduler }

func (h hidePool) Name() string { return h.inner.Name() }
func (h hidePool) Run(in *etc.Instance, b run.Budget, seed uint64, obs run.Observer) run.Result {
	return h.inner.Run(in, b, seed, obs)
}

// slowScheduler inflates the iteration budget so the wrapped engine can
// only finish by being cancelled.
type slowScheduler struct{ inner Scheduler }

func (s slowScheduler) Name() string { return "slow-" + s.inner.Name() }
func (s slowScheduler) Run(in *etc.Instance, b run.Budget, seed uint64, obs run.Observer) run.Result {
	b.MaxIterations = 0
	b.MaxTime = time.Hour
	return s.inner.Run(in, b, seed, obs)
}
