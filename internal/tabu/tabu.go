// Package tabu implements a tabu search scheduler for the ETC model,
// another member of the Braun et al. (JPDC 2001) heuristic suite that the
// paper's benchmark lineage uses as a baseline.
//
// Each step examines a sample of single-job moves, picks the best
// non-tabu move (with aspiration: a tabu move is allowed when it improves
// the global best) and marks the reverse (job, machine) pair tabu for
// Tenure steps.
package tabu

import (
	"fmt"
	"time"

	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/heuristics"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// Config parameterises the search.
type Config struct {
	// Tenure is how many steps a reversed move stays forbidden; 0
	// defaults to nb_jobs / 4.
	Tenure int
	// Samples is the number of candidate moves examined per step; 0
	// defaults to 8×nb_machines.
	Samples int
	// Objective is the scalarised fitness.
	Objective schedule.Objective
	// SeedHeuristic builds the starting solution; nil starts random.
	SeedHeuristic func(*etc.Instance) schedule.Schedule
	// SweepCandidates switches candidate generation from Samples uniform
	// (job, machine) scalar probes per step to a per-machine proposal
	// distribution: Samples/nb_machines jobs are drawn (at least one)
	// and each is scored against *every* machine in one
	// FitnessAfterMoveSweep call — the same candidate budget examined as
	// whole neighborhoods rather than isolated pairs. Trajectories
	// differ, so the gate is off for the frozen "tabu" registry entry
	// and on for "tabu-sweep".
	SweepCandidates bool
}

// DefaultConfig returns a documented default configuration.
func DefaultConfig() Config {
	return Config{Objective: schedule.DefaultObjective, SeedHeuristic: heuristics.MinMin}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Tenure < 0:
		return fmt.Errorf("tabu: negative Tenure")
	case c.Samples < 0:
		return fmt.Errorf("tabu: negative Samples")
	case c.Objective.Lambda < 0 || c.Objective.Lambda > 1:
		return fmt.Errorf("tabu: lambda %v", c.Objective.Lambda)
	}
	return nil
}

// Scheduler is a reusable tabu search bound to a configuration.
type Scheduler struct {
	cfg Config
}

// New validates cfg and returns a Scheduler.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name identifies the algorithm in results.
func (s *Scheduler) Name() string {
	if s.cfg.SweepCandidates {
		return "TabuSearch-sweep"
	}
	return "TabuSearch"
}

// Run executes the search; one budget iteration is one accepted move.
func (s *Scheduler) Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result {
	if !budget.Bounded() {
		panic("tabu: unbounded budget")
	}
	r := rng.New(seed)
	var init schedule.Schedule
	if s.cfg.SeedHeuristic != nil {
		init = s.cfg.SeedHeuristic(in)
	} else {
		init = schedule.NewRandom(in, r)
	}
	cur := schedule.NewState(in, init)
	o := s.cfg.Objective
	curFit := o.Of(cur)
	var best evalpool.Best
	best.Note(cur, curFit)

	tenure := s.cfg.Tenure
	if tenure == 0 {
		tenure = in.Jobs / 4
		if tenure < 4 {
			tenure = 4
		}
	}
	samples := s.cfg.Samples
	if samples == 0 {
		samples = 8 * in.Machs
	}
	// tabuUntil[j*machs+m] is the first step at which moving job j to
	// machine m is allowed again.
	tabuUntil := make([]int, in.Jobs*in.Machs)

	start := time.Now()
	iter := 0
	var evals int64 = 1
	emit := func() {
		if obs != nil {
			obs(run.Progress{Elapsed: time.Since(start), Iteration: iter,
				Fitness: best.Fitness(), Makespan: best.Makespan(), Flowtime: best.Flowtime()})
		}
	}
	emit()
	sweepScans := samples / in.Machs
	if sweepScans < 1 {
		sweepScans = 1
	}
	for !budget.Done(iter, start) {
		bestJ, bestTo := -1, -1
		bestF := 0.0
		if s.cfg.SweepCandidates {
			// Per-machine proposal distribution: each drawn job's whole
			// target neighborhood is scored in one batched sweep; the
			// tabu filter and aspiration rule apply per (job, machine)
			// exactly as on the scalar path.
			for k := 0; k < sweepScans; k++ {
				j := r.Intn(in.Jobs)
				fits := cur.FitnessAfterMoveSweep(o, j, nil)
				from := cur.Assign(j)
				for to, f := range fits {
					if to == from {
						continue
					}
					evals++
					tabu := tabuUntil[j*in.Machs+to] > iter
					if tabu && f >= best.Fitness() {
						continue
					}
					if bestJ < 0 || f < bestF {
						bestJ, bestTo, bestF = j, to, f
					}
				}
			}
		} else {
			// One amortised scan context serves the whole candidate
			// batch: the state is frozen for the step, so the context's
			// cached top completions answer every probe's tree query in
			// O(1). The probes stay bit-identical to the scalar path.
			scan := cur.BeginMoveScan(o)
			for k := 0; k < samples; k++ {
				j := r.Intn(in.Jobs)
				to := r.Intn(in.Machs)
				if cur.Assign(j) == to {
					continue
				}
				f := scan.FitnessAfterMove(j, to)
				evals++
				tabu := tabuUntil[j*in.Machs+to] > iter
				if tabu && f >= best.Fitness() { // aspiration only on global improvement
					continue
				}
				if bestJ < 0 || f < bestF {
					bestJ, bestTo, bestF = j, to, f
				}
			}
		}
		if bestJ >= 0 {
			from := cur.Assign(bestJ)
			cur.Move(bestJ, bestTo)
			curFit = bestF
			// Forbid moving the job straight back.
			tabuUntil[bestJ*in.Machs+from] = iter + tenure
			best.Note(cur, curFit)
		}
		iter++
		emit()
	}
	cur.SyncScans()
	return run.Result{
		Best: best.Schedule(), Fitness: best.Fitness(), Makespan: best.Makespan(), Flowtime: best.Flowtime(),
		Iterations: iter, Evals: evals, Elapsed: time.Since(start), Algorithm: s.Name(),
	}
}
