package tabu

import (
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func testInstance(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.SemiConsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 96, Machs: 8})
}

func TestRunImprovesOnSeed(t *testing.T) {
	in := testInstance(1)
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(in, run.Budget{MaxIterations: 300}, 42, nil)
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	seedFit := schedule.DefaultObjective.Evaluate(in, cfg.SeedHeuristic(in))
	if res.Fitness >= seedFit {
		t.Errorf("tabu %v did not improve on Min-Min %v", res.Fitness, seedFit)
	}
}

func TestDeterministic(t *testing.T) {
	in := testInstance(2)
	s, _ := New(DefaultConfig())
	a := s.Run(in, run.Budget{MaxIterations: 100}, 7, nil)
	b := s.Run(in, run.Budget{MaxIterations: 100}, 7, nil)
	if !a.Best.Equal(b.Best) {
		t.Fatal("same seed, different results")
	}
}

func TestTabuListBlocksImmediateReversal(t *testing.T) {
	// Indirect but deterministic check: with a huge tenure and sampling
	// of all moves the search must still make progress (aspiration) and
	// never crash; with tenure 0 default applies.
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.Low, MachineHet: etc.Low},
		0, etc.GenerateOptions{Seed: 3, Jobs: 24, Machs: 4})
	cfg := DefaultConfig()
	cfg.Tenure = 1000
	cfg.Samples = 24 * 4
	s, _ := New(cfg)
	res := s.Run(in, run.Budget{MaxIterations: 200}, 5, nil)
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestBestMonotone(t *testing.T) {
	in := testInstance(4)
	s, _ := New(DefaultConfig())
	var fits []float64
	s.Run(in, run.Budget{MaxIterations: 150}, 5, func(p run.Progress) {
		fits = append(fits, p.Fitness)
	})
	for i := 1; i < len(fits); i++ {
		if fits[i] > fits[i-1]+1e-9 {
			t.Fatal("best fitness regressed")
		}
	}
}

// TestSweepCandidatesRunAndImprove covers the per-machine candidate
// distribution (the "tabu-sweep" registry gate): run, improve on the
// seed, own name, deterministic in the seed.
func TestSweepCandidatesRunAndImprove(t *testing.T) {
	in := testInstance(12)
	cfg := DefaultConfig()
	cfg.SweepCandidates = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "TabuSearch-sweep" {
		t.Fatalf("Name() = %q", s.Name())
	}
	seedFit := schedule.DefaultObjective.Evaluate(in, cfg.SeedHeuristic(in))
	a := s.Run(in, run.Budget{MaxIterations: 20}, 5, nil)
	b := s.Run(in, run.Budget{MaxIterations: 20}, 5, nil)
	if a.Fitness > seedFit {
		t.Fatalf("best %v worse than seed %v", a.Fitness, seedFit)
	}
	if !a.Best.Equal(b.Best) || a.Fitness != b.Fitness {
		t.Fatal("sweep tabu not deterministic in the seed")
	}
	if a.Algorithm != "TabuSearch-sweep" {
		t.Fatalf("result algorithm %q", a.Algorithm)
	}
}

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{
		{Tenure: -1, Objective: schedule.DefaultObjective},
		{Samples: -1, Objective: schedule.DefaultObjective},
		{Objective: schedule.Objective{Lambda: 7}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnboundedBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s, _ := New(DefaultConfig())
	s.Run(testInstance(5), run.Budget{}, 1, nil)
}
