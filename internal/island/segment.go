// Segment and migration primitives, factored out of the in-process
// Scheduler so the distributed engine (internal/island/dist) can run the
// exact same computation across process boundaries. A segment is a pure
// function of (instance, base config, iteration count, seed, population):
// re-running it — on a restarted worker, after a duplicated delivery, on
// a different host — always yields the same result, which is what makes
// retries and warm restarts free of coordination.
package island

import (
	"sort"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// SegmentSeed derives island i's RNG seed for the segment starting at
// iteration totalIters. It is the one seed-derivation rule shared by the
// in-process scheduler and every distributed worker: same (seed, island,
// offset) → same stream, wherever the segment runs.
func SegmentSeed(seed uint64, island, totalIters int) uint64 {
	return seed ^ (uint64(island)+1)*0x9e3779b97f4a7c15 ^ uint64(totalIters)*0xbf58476d1ce4e5b9
}

// Segment runs one migration segment: segIters iterations of the base
// cMA seeded from pop (nil for the first segment's fresh mesh), returning
// the segment result and the evolved population. This is the unit of work
// a distributed worker executes per RPC; it is stateless and
// deterministic, so executing it twice is exactly as good as once.
func Segment(in *etc.Instance, base cma.Config, segIters int, islandSeed uint64, pop []schedule.Schedule, pool *evalpool.Pool) (run.Result, []schedule.Schedule, error) {
	inner, err := cma.New(base)
	if err != nil {
		return run.Result{}, nil, err
	}
	res, out := inner.RunWithPopulationPooled(in, run.Budget{MaxIterations: segIters}, islandSeed, nil, pop, pool)
	return res, out, nil
}

// Move is one migrant placement: the individual at SrcIdx in island Src
// replaces the individual at DstIdx in island Dst. Sources are read
// before any destination is written (migrants are never forwarded twice
// in one exchange), so a Move list is applied by cloning all sources
// first.
type Move struct {
	Src, SrcIdx int
	Dst, DstIdx int
}

// rankByFitness returns population indices best-first. The comparator and
// sort call are shared by every migration path so that equal-fitness ties
// break identically everywhere.
func rankByFitness(fits []float64) []int {
	order := make([]int, len(fits))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return fits[order[a]] < fits[order[b]] })
	return order
}

// PlanMigration computes the ring exchange over the alive islands: each
// alive island sends its m best individuals to the next alive island on
// the ring, replacing that island's worst (both ranked before any
// replacement). fits[i] holds island i's per-individual fitness values;
// alive[i]==false (or a nil fits[i]) heals the ring around a dead island
// — its population neither sends nor receives, and its neighbours splice
// together. A nil alive slice means all islands are alive, which
// reproduces the historical in-process exchange exactly. A sole survivor
// exchanges with nobody.
func PlanMigration(fits [][]float64, m int, alive []bool) []Move {
	n := len(fits)
	isAlive := func(i int) bool {
		return (alive == nil || alive[i]) && fits[i] != nil
	}
	orders := make([][]int, n)
	for i := range fits {
		if isAlive(i) {
			orders[i] = rankByFitness(fits[i])
		}
	}
	var moves []Move
	for i := 0; i < n; i++ {
		if !isAlive(i) {
			continue
		}
		dst := -1
		for step := 1; step < n; step++ {
			c := (i + step) % n
			if isAlive(c) {
				dst = c
				break
			}
		}
		if dst < 0 || dst == i {
			continue
		}
		order := orders[dst]
		for k := 0; k < m && k < len(orders[i]) && k < len(order); k++ {
			moves = append(moves, Move{
				Src: i, SrcIdx: orders[i][k],
				Dst: dst, DstIdx: order[len(order)-1-k],
			})
		}
	}
	return moves
}

// ApplyMigration executes a Move list over schedule populations: sources
// are cloned first, then written over their victims. Shared by the
// wholesale in-process path and the distributed coordinator.
func ApplyMigration(pops [][]schedule.Schedule, moves []Move) {
	migs := make([]schedule.Schedule, len(moves))
	for k, mv := range moves {
		migs[k] = pops[mv.Src][mv.SrcIdx].Clone()
	}
	for k, mv := range moves {
		pops[mv.Dst][mv.DstIdx] = migs[k]
	}
}
