package island

import (
	"testing"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/localsearch"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func testInstance() *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 2, Jobs: 128, Machs: 8})
}

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Base.LocalSearch = localsearch.SampledLMCTS{Samples: 16}
	cfg.Base.LSIterations = 2
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Islands = 1 },
		func(c *Config) { c.MigrationEvery = 0 },
		func(c *Config) { c.Migrants = 0 },
		func(c *Config) { c.Migrants = c.Base.Width * c.Base.Height },
		func(c *Config) { c.Base.Width = 0 },
	}
	for i, f := range bad {
		cfg := DefaultConfig()
		f(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestRunImprovesAndIsValid(t *testing.T) {
	in := testInstance()
	s, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(in, run.Budget{MaxIterations: 20}, 1, nil)
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 20 {
		t.Errorf("iterations %d", res.Iterations)
	}
	if res.Algorithm != "IslandCMA(4)" {
		t.Errorf("name %q", res.Algorithm)
	}
	// Should beat its own seed heuristic.
	seedFit := schedule.DefaultObjective.Evaluate(in, cma.DefaultConfig().SeedHeuristic(in))
	if res.Fitness >= seedFit {
		t.Errorf("fitness %v did not beat seed %v", res.Fitness, seedFit)
	}
}

// TestRunPooledSharesPoolAndMatchesRun pins the pool-sharing contract:
// running with a caller-supplied pool yields the exact schedule of a
// plain Run (sharing never affects results), the pool ends up holding
// the returned scratches for the next run, and a foreign-instance pool
// is ignored rather than corrupting the run.
func TestRunPooledSharesPoolAndMatchesRun(t *testing.T) {
	in := testInstance()
	s, err := New(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	budget := run.Budget{MaxIterations: 10}
	plain := s.Run(in, budget, 7, nil)

	pool := evalpool.New(in)
	pooled := s.RunPooled(in, budget, 7, nil, pool)
	if !pooled.Best.Equal(plain.Best) || pooled.Fitness != plain.Fitness {
		t.Fatal("RunPooled diverged from Run")
	}
	// The islands returned their scratches: a following run can reuse one
	// without construction (observable as a non-nil immediate Get whose
	// state is bound to in).
	sc := pool.Get()
	if sc == nil || sc.St.Instance() != in {
		t.Fatal("pool did not retain the islands' scratches")
	}
	pool.Put(sc)

	other := etc.Generate(etc.Class{}, 0, etc.GenerateOptions{Seed: 9, Jobs: 32, Machs: 4})
	foreign := evalpool.New(other)
	res := s.RunPooled(in, budget, 7, nil, foreign)
	if !res.Best.Equal(plain.Best) {
		t.Fatal("foreign-instance pool changed the result")
	}
}

func TestDeterministicDespiteParallelism(t *testing.T) {
	in := testInstance()
	s, _ := New(fastCfg())
	a := s.Run(in, run.Budget{MaxIterations: 15}, 9, nil)
	b := s.Run(in, run.Budget{MaxIterations: 15}, 9, nil)
	if a.Fitness != b.Fitness || !a.Best.Equal(b.Best) {
		t.Fatal("island model not deterministic per seed")
	}
}

func TestMigrationSpreadsBestIndividuals(t *testing.T) {
	in := testInstance()
	cfg := fastCfg()
	s, _ := New(cfg)
	// Build synthetic populations: island 0 holds one excellent
	// individual, the rest are terrible everywhere.
	popSize := cfg.Base.Width * cfg.Base.Height
	terrible := make(schedule.Schedule, in.Jobs) // all jobs on machine 0
	good := cma.DefaultConfig().SeedHeuristic(in)
	pops := make([][]schedule.Schedule, cfg.Islands)
	for i := range pops {
		pops[i] = make([]schedule.Schedule, popSize)
		for k := range pops[i] {
			pops[i][k] = terrible.Clone()
		}
	}
	pops[0][3] = good.Clone()
	s.migrate(in, pops)
	// Island 1 must now contain the good individual.
	found := false
	for _, p := range pops[1] {
		if p.Equal(good) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("best individual did not migrate to the ring successor")
	}
	// Island 0 must still hold its copy (migration copies, not moves).
	found = false
	for _, p := range pops[0] {
		if p.Equal(good) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("migration removed the emigrant from its home island")
	}
}

func TestTimeBudgetRespected(t *testing.T) {
	in := testInstance()
	s, _ := New(fastCfg())
	start := time.Now()
	res := s.Run(in, run.Budget{MaxTime: 200 * time.Millisecond}, 1, nil)
	if time.Since(start) > 3*time.Second {
		t.Fatalf("run overshot its time budget grossly: %v", time.Since(start))
	}
	if res.Best == nil {
		t.Fatal("no result")
	}
}

func TestObserverMonotone(t *testing.T) {
	in := testInstance()
	s, _ := New(fastCfg())
	var fits []float64
	s.Run(in, run.Budget{MaxIterations: 20}, 3, func(p run.Progress) {
		fits = append(fits, p.Fitness)
	})
	if len(fits) == 0 {
		t.Fatal("observer never called")
	}
	for i := 1; i < len(fits); i++ {
		if fits[i] > fits[i-1]+1e-9 {
			t.Fatal("ensemble best regressed")
		}
	}
}

func TestIterationBudgetNotExceededPerIsland(t *testing.T) {
	in := testInstance()
	cfg := fastCfg()
	cfg.MigrationEvery = 7
	s, _ := New(cfg)
	res := s.Run(in, run.Budget{MaxIterations: 10}, 1, nil) // not a multiple of 7
	if res.Iterations != 10 {
		t.Errorf("iterations %d, want exactly 10 (7 + truncated 3)", res.Iterations)
	}
}

func TestUnboundedBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s, _ := New(fastCfg())
	s.Run(testInstance(), run.Budget{}, 1, nil)
}
