// Package island implements the coarse-grained structured memetic
// algorithm of the paper's §3.1 taxonomy: several cMA islands evolve in
// parallel (one goroutine each) and periodically exchange individuals
// over a unidirectional ring. The fine-grained (cellular) model is the
// paper's contribution; the island wrapper lets the library cover the
// other branch of the structured-population design space and gives a
// natural multi-core scaling path on top of the sequential asynchronous
// engine.
//
// Migration happens at segment boundaries: every MigrationEvery
// iterations each island exports its population, sends its best Migrants
// individuals to the next island on the ring (replacing that island's
// worst), and resumes from the merged population. Results are
// deterministic in the seed: island RNG streams and the migration shuffle
// are all derived from it, and goroutine scheduling cannot affect the
// outcome because migration is a full barrier.
package island

import (
	"fmt"
	"sync"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// Config parameterises the island model.
type Config struct {
	// Islands is the number of parallel cMA populations (ring nodes).
	Islands int
	// MigrationEvery is the segment length in cMA iterations between
	// exchanges.
	MigrationEvery int
	// Migrants is how many of an island's best individuals are copied to
	// its ring successor at each exchange.
	Migrants int
	// Base configures every island's cMA.
	Base cma.Config
}

// DefaultConfig returns 4 islands exchanging their 2 best individuals
// every 5 iterations on the paper-tuned cMA.
func DefaultConfig() Config {
	return Config{Islands: 4, MigrationEvery: 5, Migrants: 2, Base: cma.DefaultConfig()}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Islands < 2:
		return fmt.Errorf("island: need at least 2 islands, got %d", c.Islands)
	case c.MigrationEvery < 1:
		return fmt.Errorf("island: MigrationEvery %d", c.MigrationEvery)
	case c.Migrants < 1:
		return fmt.Errorf("island: Migrants %d", c.Migrants)
	case c.Migrants >= c.Base.Width*c.Base.Height:
		return fmt.Errorf("island: Migrants %d must be below the island population %d",
			c.Migrants, c.Base.Width*c.Base.Height)
	}
	return c.Base.Validate()
}

// Scheduler is a reusable island-model scheduler.
type Scheduler struct {
	cfg   Config
	inner *cma.Scheduler
}

// New validates cfg and builds the scheduler.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := cma.New(cfg.Base)
	if err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg, inner: inner}, nil
}

// Name identifies the algorithm in results.
func (s *Scheduler) Name() string { return fmt.Sprintf("IslandCMA(%d)", s.cfg.Islands) }

// Run executes the island model within budget. The iteration budget is
// interpreted per island (all islands advance in lockstep segments); a
// time budget bounds the whole ensemble.
func (s *Scheduler) Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result {
	return s.RunPooled(in, budget, seed, obs, nil)
}

// RunPooled is Run with a caller-supplied scratch pool (it implements
// runner.PooledScheduler): every island's segment sub-cMA draws its
// offspring workspaces from the shared pool instead of building a
// private one per segment, so an island run allocates its scratch States
// once instead of islands × segments times — and a batch sweep reuses
// them across whole runs. The pool's Get/Put are safe for the islands'
// concurrency, and sharing cannot affect results because a scratch is
// never read before being overwritten. A nil pool, or one bound to a
// different instance, falls back to a private pool.
func (s *Scheduler) RunPooled(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result {
	if !budget.Bounded() {
		panic("island: unbounded budget")
	}
	if pool == nil || pool.Instance() != in {
		pool = evalpool.New(in)
	}
	start := time.Now()
	n := s.cfg.Islands
	// Live per-island meshes, kept across segments (cache-aware resume:
	// cma adopts the States wholesale instead of rebuilding from
	// schedules, so prefix sums, tournament trees and scan caches stay
	// warm through migration). nil until the first segment builds them.
	states := make([][]*schedule.State, n)
	results := make([]run.Result, n)

	var best run.Result
	totalIters := 0
	var totalEvals int64

	emit := func() {
		if obs != nil && best.Best != nil {
			obs(run.Progress{
				Elapsed:   time.Since(start),
				Iteration: totalIters,
				Fitness:   best.Fitness,
				Makespan:  best.Makespan,
				Flowtime:  best.Flowtime,
			})
		}
	}

	for !budget.Done(totalIters, start) {
		segIters := s.cfg.MigrationEvery
		if budget.MaxIterations > 0 && totalIters+segIters > budget.MaxIterations {
			segIters = budget.MaxIterations - totalIters
		}
		segBudget := run.Budget{MaxIterations: segIters}.WithContext(budget.Context())
		if budget.MaxTime > 0 {
			remaining := budget.MaxTime - time.Since(start)
			if remaining <= 0 {
				break
			}
			segBudget.MaxTime = remaining
		}

		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				// Per-island, per-segment deterministic seed.
				islandSeed := SegmentSeed(seed, i, totalIters)
				res, sts := s.inner.RunWithStatesPooled(in, segBudget, islandSeed, nil, states[i], pool)
				results[i] = res
				states[i] = sts
			}(i)
		}
		wg.Wait()

		for i := 0; i < n; i++ {
			totalEvals += results[i].Evals
			if results[i].Better(best) {
				best = results[i]
			}
		}
		totalIters += segIters
		s.migrateStates(states)
		emit()
	}

	best.Iterations = totalIters
	best.Evals = totalEvals
	best.Elapsed = time.Since(start)
	best.Algorithm = s.Name()
	return best
}

// runPooledWholesale is the historical schedule-resume loop: every
// segment exports populations as plain schedules and the next rebuilds
// each State from scratch. It is the reference the cache-aware RunPooled
// is pinned bit-identical against (TestStatesPathMatchesWholesale) and
// the baseline of the migration benchmark; the distributed workers run
// the equivalent of this path one segment at a time.
func (s *Scheduler) runPooledWholesale(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer, pool *evalpool.Pool) run.Result {
	if !budget.Bounded() {
		panic("island: unbounded budget")
	}
	if pool == nil || pool.Instance() != in {
		pool = evalpool.New(in)
	}
	start := time.Now()
	n := s.cfg.Islands
	pops := make([][]schedule.Schedule, n) // nil until first segment
	results := make([]run.Result, n)

	var best run.Result
	totalIters := 0
	var totalEvals int64

	for !budget.Done(totalIters, start) {
		segIters := s.cfg.MigrationEvery
		if budget.MaxIterations > 0 && totalIters+segIters > budget.MaxIterations {
			segIters = budget.MaxIterations - totalIters
		}
		segBudget := run.Budget{MaxIterations: segIters}.WithContext(budget.Context())
		if budget.MaxTime > 0 {
			remaining := budget.MaxTime - time.Since(start)
			if remaining <= 0 {
				break
			}
			segBudget.MaxTime = remaining
		}

		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				islandSeed := SegmentSeed(seed, i, totalIters)
				res, pop := s.inner.RunWithPopulationPooled(in, segBudget, islandSeed, nil, pops[i], pool)
				results[i] = res
				pops[i] = pop
			}(i)
		}
		wg.Wait()

		for i := 0; i < n; i++ {
			totalEvals += results[i].Evals
			if results[i].Better(best) {
				best = results[i]
			}
		}
		totalIters += segIters
		s.migrate(in, pops)
	}

	best.Iterations = totalIters
	best.Evals = totalEvals
	best.Elapsed = time.Since(start)
	best.Algorithm = s.Name()
	return best
}

// migrate copies each island's Migrants best individuals to its ring
// successor, replacing the successor's worst individuals. This is the
// wholesale-schedule form of the exchange, shared with the distributed
// coordinator via PlanMigration/ApplyMigration.
func (s *Scheduler) migrate(in *etc.Instance, pops [][]schedule.Schedule) {
	o := s.cfg.Base.Objective
	fits := make([][]float64, len(pops))
	for i, pop := range pops {
		f := make([]float64, len(pop))
		for k, sched := range pop {
			f[k] = o.Evaluate(in, sched)
		}
		fits[i] = f
	}
	ApplyMigration(pops, PlanMigration(fits, s.cfg.Migrants, nil))
}

// migrateStates is the cache-aware exchange over live States: migrants
// are applied through SetScheduleDiff, dirtying only the machines whose
// job sets actually changed, so the destination island's next local
// search warm-starts instead of re-scanning every machine.
//
// Fitness ranking must be bit-identical to migrate's fresh
// Objective.Evaluate: per-machine completions already are (incremental
// maintenance refreshes whole machines), but a State's flowtime
// accumulator drifts in the low bits under subtract-then-add updates, so
// each State is canonicalised with RefreshFlowtime — a per-machine
// re-fold, no rebuild — before ranking.
func (s *Scheduler) migrateStates(states [][]*schedule.State) {
	o := s.cfg.Base.Objective
	fits := make([][]float64, len(states))
	for i, sts := range states {
		f := make([]float64, len(sts))
		for k, st := range sts {
			st.RefreshFlowtime()
			f[k] = o.Of(st)
		}
		fits[i] = f
	}
	moves := PlanMigration(fits, s.cfg.Migrants, nil)
	// Clone every source schedule before any destination is written.
	migs := make([]schedule.Schedule, len(moves))
	for k, mv := range moves {
		migs[k] = states[mv.Src][mv.SrcIdx].Schedule()
	}
	for k, mv := range moves {
		st := states[mv.Dst][mv.DstIdx]
		st.SetScheduleDiff(migs[k])
		// Acknowledge the diff's commit events before handing the state
		// onward: validity is carried by the machine epochs (the next
		// segment's scans revalidate exactly the machines the migrant
		// touched), and the audited drain discipline requires no state to
		// leave a run with marks pending.
		st.SyncScans()
	}
}
