package island

import (
	"testing"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// TestStatesPathMatchesWholesale is the cache-aware migration pin: the
// live-State resume path (RunPooled: cma adopts warm States, migrants
// applied via SetScheduleDiff) must be bit-identical to the historical
// wholesale path (populations exported as schedules, every State rebuilt
// per segment). Runs long enough for several exchanges, across seeds and
// island counts.
func TestStatesPathMatchesWholesale(t *testing.T) {
	in := testInstance()
	for _, tc := range []struct {
		islands, every, migrants, iters int
		seed                            uint64
	}{
		{2, 2, 1, 8, 1},
		{4, 3, 2, 12, 7},
		{5, 2, 3, 10, 42},
	} {
		cfg := DefaultConfig()
		cfg.Islands = tc.islands
		cfg.MigrationEvery = tc.every
		cfg.Migrants = tc.migrants
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		budget := run.Budget{MaxIterations: tc.iters}
		got := s.RunPooled(in, budget, tc.seed, nil, nil)
		want := s.runPooledWholesale(in, budget, tc.seed, nil, nil)
		if !got.Best.Equal(want.Best) {
			t.Errorf("%+v: best schedules differ between states and wholesale paths", tc)
		}
		if got.Fitness != want.Fitness || got.Makespan != want.Makespan || got.Flowtime != want.Flowtime {
			t.Errorf("%+v: metrics differ: states (%v %v %v) wholesale (%v %v %v)",
				tc, got.Fitness, got.Makespan, got.Flowtime, want.Fitness, want.Makespan, want.Flowtime)
		}
		if got.Evals != want.Evals || got.Iterations != want.Iterations {
			t.Errorf("%+v: evals/iters differ: %d/%d vs %d/%d",
				tc, got.Evals, got.Iterations, want.Evals, want.Iterations)
		}
	}
}

// TestPlanMigrationMatchesLegacyRing checks the planner against the
// historical exchange rule directly: with all islands alive, island i's m
// best land on island i+1's m worst, ranked before any replacement.
func TestPlanMigrationMatchesLegacyRing(t *testing.T) {
	fits := [][]float64{
		{3, 1, 2, 4}, // ranked: 1,2,0,3
		{9, 7, 8, 6}, // ranked: 3,1,2,0
		{5, 5, 5, 5}, // all tied
	}
	moves := PlanMigration(fits, 2, nil)
	want := []Move{
		{Src: 0, SrcIdx: 1, Dst: 1, DstIdx: 0},
		{Src: 0, SrcIdx: 2, Dst: 1, DstIdx: 2},
		{Src: 1, SrcIdx: 3, Dst: 2, DstIdx: 3},
		{Src: 1, SrcIdx: 1, Dst: 2, DstIdx: 2},
		{Src: 2, SrcIdx: 0, Dst: 0, DstIdx: 3},
		{Src: 2, SrcIdx: 1, Dst: 0, DstIdx: 0},
	}
	if len(moves) != len(want) {
		t.Fatalf("got %d moves %v, want %d", len(moves), moves, len(want))
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Errorf("move %d = %+v, want %+v", i, moves[i], want[i])
		}
	}
}

// TestPlanMigrationHealsRing: dead islands are spliced out — their
// neighbours exchange directly — and a sole survivor exchanges with
// nobody.
func TestPlanMigrationHealsRing(t *testing.T) {
	fits := [][]float64{
		{1, 2},
		nil, // dead (no population reported)
		{4, 3},
		{6, 5},
	}
	alive := []bool{true, false, true, true}
	moves := PlanMigration(fits, 1, alive)
	want := []Move{
		{Src: 0, SrcIdx: 0, Dst: 2, DstIdx: 0}, // 0 skips dead 1, lands on 2
		{Src: 2, SrcIdx: 1, Dst: 3, DstIdx: 0},
		{Src: 3, SrcIdx: 1, Dst: 0, DstIdx: 1},
	}
	if len(moves) != len(want) {
		t.Fatalf("got %v, want %v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Errorf("move %d = %+v, want %+v", i, moves[i], want[i])
		}
	}

	solo := PlanMigration([][]float64{{1, 2}, nil, nil}, 1, []bool{true, false, false})
	if len(solo) != 0 {
		t.Fatalf("sole survivor produced moves %v", solo)
	}
	none := PlanMigration([][]float64{nil, nil}, 1, []bool{false, false})
	if len(none) != 0 {
		t.Fatalf("empty ring produced moves %v", none)
	}
}

// TestSegmentSeedMatchesHistoricalDerivation pins the wire-visible seed
// rule to the constants the in-process scheduler has always used.
func TestSegmentSeedMatchesHistoricalDerivation(t *testing.T) {
	seed := uint64(12345)
	for _, c := range []struct{ island, iters int }{{0, 0}, {3, 10}, {7, 95}} {
		want := seed ^ (uint64(c.island)+1)*0x9e3779b97f4a7c15 ^ uint64(c.iters)*0xbf58476d1ce4e5b9
		if got := SegmentSeed(seed, c.island, c.iters); got != want {
			t.Errorf("SegmentSeed(%d,%d,%d) = %x, want %x", seed, c.island, c.iters, got, want)
		}
	}
}

// TestSegmentIsIdempotent: the distributed worker's unit of work must
// yield identical results when re-executed (duplicated delivery, retry
// after a lost reply, warm restart re-send).
func TestSegmentIsIdempotent(t *testing.T) {
	in := testInstance()
	cfg := cma.DefaultConfig()
	pool := evalpool.New(in)
	seed := SegmentSeed(99, 1, 5)
	res1, pop1, err := Segment(in, cfg, 3, seed, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	res2, pop2, err := Segment(in, cfg, 3, seed, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Best.Equal(res2.Best) || res1.Fitness != res2.Fitness || res1.Evals != res2.Evals {
		t.Fatal("re-executed segment differs from the original")
	}
	for i := range pop1 {
		if !pop1[i].Equal(pop2[i]) {
			t.Fatalf("population individual %d differs on re-execution", i)
		}
	}
	// And resuming from that population is idempotent too.
	res3, _, err := Segment(in, cfg, 3, SegmentSeed(99, 1, 8), pop1, pool)
	if err != nil {
		t.Fatal(err)
	}
	res4, _, err := Segment(in, cfg, 3, SegmentSeed(99, 1, 8), pop2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Best.Equal(res4.Best) || res3.Fitness != res4.Fitness {
		t.Fatal("resumed segment differs between identical populations")
	}
}

// --- Benchmarks: the before/after of cache-aware migration, and the
// alloc-guarded migrant-apply hot path. ---

func benchInstance(b *testing.B) *etc.Instance {
	spec, err := etc.ParseGenSpec("256x16:c_hihi:s3")
	if err != nil {
		b.Fatal(err)
	}
	in, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Islands = 4
	cfg.MigrationEvery = 2
	cfg.Migrants = 2
	return cfg
}

// BenchmarkIslandRunWholesale is the historical path: States rebuilt from
// schedules at every segment boundary, scan caches cold after migration.
func BenchmarkIslandRunWholesale(b *testing.B) {
	in := benchInstance(b)
	s, err := New(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	pool := evalpool.New(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.runPooledWholesale(in, run.Budget{MaxIterations: 8}, 11, nil, pool)
	}
}

// BenchmarkIslandRunDiff is the cache-aware path: live States adopted
// across segments, migrants applied through SetScheduleDiff.
func BenchmarkIslandRunDiff(b *testing.B) {
	in := benchInstance(b)
	s, err := New(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	pool := evalpool.New(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunPooled(in, run.Budget{MaxIterations: 8}, 11, nil, pool)
	}
}

// BenchmarkMigrantApply is the alloc-guarded migrant-application hot
// path: diffing an incoming migrant into a live State and acknowledging
// the commit events. Must stay allocation-free — CI runs it under the
// same guard as the probe/sweep kernels.
func BenchmarkMigrantApply(b *testing.B) {
	in := benchInstance(b)
	r := rng.New(5)
	orig := schedule.NewRandom(in, r)
	mig := orig.Clone()
	schedule.Perturb(mig, in, r, 0.1)
	st := schedule.NewState(in, orig)
	// Warm the one-off diff buffers so the steady-state loop is measured.
	st.SetScheduleDiff(mig)
	st.SetScheduleDiff(orig)
	st.SyncScans()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			st.SetScheduleDiff(mig)
		} else {
			st.SetScheduleDiff(orig)
		}
		st.SyncScans()
	}
}
