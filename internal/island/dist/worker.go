// Worker: the serving side of the distributed island engine. A worker is
// deliberately stateless between calls — each segment request carries
// everything needed to reproduce the computation (instance spec, config,
// seed, population) — so a worker that crashes loses nothing the
// coordinator cannot re-send, and a request delivered twice computes the
// same bytes twice. The only state a worker keeps is a cache of
// materialised instances and their scratch pools, a pure performance
// matter.
package dist

import (
	"context"
	"fmt"
	"sync"

	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/island"
	"gridcma/internal/transport"
)

// Worker serves ping and segment calls. Safe for concurrent calls (a
// coordinator may pin several islands to one worker).
type Worker struct {
	pinned *etc.Instance // serve every spec with this instance (in-proc use)

	mu        sync.Mutex
	instances map[string]*workerInstance
}

type workerInstance struct {
	in   *etc.Instance
	pool *evalpool.Pool
}

// NewWorker returns a worker that materialises instances from generator
// specs ("256x16:c_hihi:s3", the etc.ParseGenSpec vocabulary) and caches
// them. This is what cmd/islandd serves: any process that can parse the
// spec reconstructs the byte-identical instance, so no matrix ever
// crosses the wire.
func NewWorker() *Worker {
	return &Worker{instances: make(map[string]*workerInstance)}
}

// NewPinnedWorker returns a worker bound to one in-memory instance,
// served whatever the request's spec says. The in-process transport uses
// it to share the coordinator's instance directly.
func NewPinnedWorker(in *etc.Instance) *Worker {
	return &Worker{pinned: in, instances: make(map[string]*workerInstance)}
}

func (w *Worker) instance(spec string) (*workerInstance, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pinned != nil {
		wi, ok := w.instances[""]
		if !ok {
			wi = &workerInstance{in: w.pinned, pool: evalpool.New(w.pinned)}
			w.instances[""] = wi
		}
		return wi, nil
	}
	if wi, ok := w.instances[spec]; ok {
		return wi, nil
	}
	gs, err := etc.ParseGenSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: instance spec %q: %w", spec, err)
	}
	in, err := gs.Generate()
	if err != nil {
		return nil, fmt.Errorf("dist: generate %q: %w", spec, err)
	}
	wi := &workerInstance{in: in, pool: evalpool.New(in)}
	w.instances[spec] = wi
	return wi, nil
}

// Handle implements transport.Handler.
func (w *Worker) Handle(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	switch req.Kind {
	case transport.KindPing:
		return &transport.Response{ID: req.ID}, nil
	case transport.KindSegment:
		if req.Seg == nil {
			return &transport.Response{ID: req.ID, Err: "segment call without a segment body"}, nil
		}
		wi, err := w.instance(req.Seg.Instance)
		if err != nil {
			return &transport.Response{ID: req.ID, Err: err.Error()}, nil
		}
		base, err := req.Seg.Config.Build()
		if err != nil {
			return &transport.Response{ID: req.ID, Err: fmt.Sprintf("dist: config: %v", err)}, nil
		}
		res, pop, err := island.Segment(wi.in, base, req.Seg.Iters, req.Seg.Seed, req.Seg.Pop, wi.pool)
		if err != nil {
			return &transport.Response{ID: req.ID, Err: err.Error()}, nil
		}
		return &transport.Response{
			ID: req.ID,
			Seg: &transport.SegmentResponse{
				Fitness:  res.Fitness,
				Makespan: res.Makespan,
				Flowtime: res.Flowtime,
				Evals:    res.Evals,
				Best:     res.Best,
				Pop:      pop,
			},
		}, nil
	default:
		return &transport.Response{ID: req.ID, Err: fmt.Sprintf("unknown call kind %q", req.Kind)}, nil
	}
}
