// Package dist lifts the island model across process boundaries: a
// coordinator drives segment/migration rounds against supervised workers
// reached over a pluggable transport (internal/transport), while keeping
// the in-process scheduler's determinism contract — a failure-free run
// is bit-identical to internal/island for any transport and worker
// count, and a faulted run is a pure function of (seed, fault plan).
//
// The design choice everything else follows from: workers are stateless
// and the coordinator owns every island's population. A segment RPC is a
// pure function (instance, config, seed, iterations, population) →
// (result, evolved population), so the coordinator's copy of the
// population *is* the checkpoint — retrying a timed-out call, delivering
// it twice, or re-sending it to a freshly restarted worker are all
// harmless by construction. Supervision is then simple: per-call
// timeouts with jittered exponential retry (internal/retry), heartbeat
// pings for liveness, lazy warm restarts through a worker factory, and
// when a worker stays dead past its restart budget, its islands are
// declared lost, the migration ring heals around them
// (island.PlanMigration with the alive mask), and the run completes on
// the survivors instead of hanging the barrier.
package dist

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/config"
	"gridcma/internal/etc"
	"gridcma/internal/island"
	"gridcma/internal/retry"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
	"gridcma/internal/transport"
)

// Config parameterises a distributed island run.
type Config struct {
	// Islands, MigrationEvery, Migrants mirror island.Config.
	Islands        int
	MigrationEvery int
	Migrants       int
	// Spec is the base cMA configuration in wire form — the same bytes
	// the workers receive, so coordinator and workers build identical
	// engines from it.
	Spec config.Spec
	// Workers is the number of worker processes; island i is pinned to
	// worker i % Workers.
	Workers int
	// Instance is the generator spec sent to workers ("" is allowed only
	// with pinned in-process workers).
	Instance string
	// CallTimeout bounds each RPC (0 = 30s).
	CallTimeout time.Duration
	// Retry is the per-call retry/backoff policy (zero value = 4
	// attempts, 50ms initial, 20% jitter).
	Retry retry.Policy
	// MaxRestarts is the consecutive failed-restart budget per worker
	// before it is abandoned for good (0 = 3).
	MaxRestarts int
	// Heartbeat enables liveness pings at this period (0 = disabled).
	// Heartbeats only accelerate failure detection; they never change a
	// trajectory.
	Heartbeat time.Duration
	// HeartbeatTimeout bounds each ping (0 = CallTimeout).
	HeartbeatTimeout time.Duration
	// CheckpointPath, when set, persists coordinator state (populations,
	// alive set, best, digests) after every round with the WAL/snapshot
	// atomic-rename idiom, and Run resumes from a matching checkpoint.
	CheckpointPath string
	// Logf receives supervision diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) callTimeout() time.Duration {
	if c.CallTimeout <= 0 {
		return 30 * time.Second
	}
	return c.CallTimeout
}

func (c Config) heartbeatTimeout() time.Duration {
	if c.HeartbeatTimeout <= 0 {
		return c.callTimeout()
	}
	return c.HeartbeatTimeout
}

func (c Config) maxRestarts() int {
	if c.MaxRestarts == 0 {
		return 3
	}
	return c.MaxRestarts
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	base, err := c.Spec.Build()
	if err != nil {
		return err
	}
	ic := island.Config{Islands: c.Islands, MigrationEvery: c.MigrationEvery, Migrants: c.Migrants, Base: base}
	if err := ic.Validate(); err != nil {
		return err
	}
	if c.Workers < 1 {
		return fmt.Errorf("dist: need at least 1 worker, got %d", c.Workers)
	}
	return nil
}

// WorkerFactory starts (or restarts) worker w, returning its transport
// client. For in-process workers it wraps a fresh transport.Local; for
// TCP it redials the worker's address. A restart is "warm" for free:
// workers hold no state, the coordinator re-sends populations.
type WorkerFactory func(w int) (transport.Client, error)

// Death records one island's permanent loss.
type Death struct {
	Island int    `json:"island"`
	Round  int    `json:"round"`
	Reason string `json:"reason"`
}

// Report is the observability side of a run: per-round digests (the
// determinism contract's trajectory), survivor set, supervision counters
// and latency/recovery samples.
type Report struct {
	Islands   int      `json:"islands"`
	Workers   int      `json:"workers"`
	Rounds    int      `json:"rounds"`
	Survivors []int    `json:"survivors"`
	Deaths    []Death  `json:"deaths,omitempty"`
	Digests   []string `json:"digests"`

	Restarts        int       `json:"restarts"`
	HeartbeatMisses int       `json:"heartbeat_misses"`
	RoundMs         []float64 `json:"round_ms"`
	RecoveryMs      []float64 `json:"recovery_ms,omitempty"`
}

// handle supervises one worker: its live client, liveness flags and
// restart budget. The mutex serialises every RPC to the worker (segment
// calls from its pinned islands, restarts, heartbeats).
type handle struct {
	idx int

	mu           sync.Mutex
	client       transport.Client
	dead         bool // needs a restart before the next call
	down         bool // abandoned: restart budget exhausted
	restartFails int
	failedAt     time.Time // first failure of the current outage
}

// Coordinator drives rounds against a fixed worker set.
type Coordinator struct {
	cfg     Config
	base    cma.Config
	factory WorkerFactory
	chaos   *ChaosPlan

	workers []*handle
	callID  atomic.Uint64
	round   atomic.Int64 // current round, for heartbeat fault keying

	statsMu    sync.Mutex
	restarts   int
	hbMisses   int
	recoveries []float64
}

// New builds a coordinator; factory is called once per worker up front
// (failing fast on unreachable workers) and again on every restart.
func New(cfg Config, factory WorkerFactory) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base, err := cfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, base: base, factory: factory}
	for w := 0; w < cfg.Workers; w++ {
		cl, err := factory(w)
		if err != nil {
			c.closeAll()
			return nil, fmt.Errorf("dist: start worker %d: %w", w, err)
		}
		c.workers = append(c.workers, &handle{idx: w, client: cl})
	}
	return c, nil
}

// SetChaos installs a fault plan (disttorture only).
func (c *Coordinator) SetChaos(p *ChaosPlan) { c.chaos = p }

// Close releases every worker client.
func (c *Coordinator) Close() { c.closeAll() }

func (c *Coordinator) closeAll() {
	for _, h := range c.workers {
		h.mu.Lock()
		if h.client != nil {
			h.client.Close()
		}
		h.mu.Unlock()
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Errors the supervision stack distinguishes.
var (
	errWorkerDown    = errors.New("dist: worker permanently down")
	errInjectedDrop  = errors.New("dist: injected message drop")
	errInjectedKill  = errors.New("dist: injected worker kill")
	errRestartFailed = errors.New("dist: worker restart failed")
)

// Run executes the distributed island model. The budget must be
// iteration-based (MaxIterations > 0, MaxTime unset): wall-clock budgets
// cannot be deterministic across transports, and determinism is the
// contract. The context inside budget aborts the run.
func (c *Coordinator) Run(in *etc.Instance, budget run.Budget, seed uint64) (run.Result, *Report, error) {
	if budget.MaxIterations <= 0 || budget.MaxTime > 0 {
		return run.Result{}, nil, errors.New("dist: budget must be MaxIterations-only (the determinism contract excludes wall-clock budgets)")
	}
	ctx := budget.Context()
	n := c.cfg.Islands
	start := time.Now()

	pops := make([][]schedule.Schedule, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	rep := &Report{Islands: n, Workers: c.cfg.Workers}
	var best run.Result
	totalIters := 0
	var totalEvals int64

	// Resume from a checkpoint when one matches this run.
	if cp, ok := c.loadCheckpoint(seed); ok {
		pops, alive = cp.pops(), cp.Alive
		totalIters, totalEvals = cp.TotalIters, cp.TotalEvals
		best = cp.best()
		rep.Digests = cp.Digests
		rep.Deaths = cp.Deaths
		rep.Rounds = cp.Round
		c.round.Store(int64(cp.Round))
		c.logf("dist: resumed from checkpoint at round %d (iters %d)", cp.Round, totalIters)
	}

	// Heartbeats: detection only — a missed ping marks the worker dead so
	// the next segment call restarts it first.
	var hbWG sync.WaitGroup
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer func() {
		hbCancel()
		hbWG.Wait()
	}()
	if c.cfg.Heartbeat > 0 {
		for _, h := range c.workers {
			hbWG.Add(1)
			go c.heartbeatLoop(hbCtx, h, &hbWG)
		}
	}

	results := make([]*transport.Response, n)
	fails := make([]error, n)

	for totalIters < budget.MaxIterations {
		if err := ctx.Err(); err != nil {
			return run.Result{}, rep, err
		}
		round := rep.Rounds
		c.round.Store(int64(round))
		segIters := c.cfg.MigrationEvery
		if totalIters+segIters > budget.MaxIterations {
			segIters = budget.MaxIterations - totalIters
		}

		roundStart := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			results[i], fails[i] = nil, nil
			if !alive[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := &transport.Request{
					Kind: transport.KindSegment,
					Seg: &transport.SegmentRequest{
						Instance: c.cfg.Instance,
						Config:   c.cfg.Spec,
						Island:   i,
						Round:    round,
						Iters:    segIters,
						Seed:     island.SegmentSeed(seed, i, totalIters),
						Pop:      pops[i],
					},
				}
				results[i], fails[i] = c.callSegment(ctx, c.workers[i%c.cfg.Workers], req, round)
			}(i)
		}
		wg.Wait()
		rep.RoundMs = append(rep.RoundMs, float64(time.Since(roundStart).Microseconds())/1000)

		if err := ctx.Err(); err != nil {
			return run.Result{}, rep, err
		}
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			if fails[i] != nil {
				alive[i] = false
				rep.Deaths = append(rep.Deaths, Death{Island: i, Round: round, Reason: fails[i].Error()})
				c.logf("dist: island %d lost in round %d: %v (ring heals around it)", i, round, fails[i])
				continue
			}
			seg := results[i].Seg
			pops[i] = seg.Pop
			totalEvals += seg.Evals
			res := run.Result{
				Best:     seg.Best,
				Fitness:  seg.Fitness,
				Makespan: seg.Makespan,
				Flowtime: seg.Flowtime,
			}
			if res.Better(best) {
				best = res
			}
		}
		if !anyAlive(alive) {
			return run.Result{}, rep, errors.New("dist: every island lost its worker")
		}
		totalIters += segIters
		c.migrate(in, pops, alive)
		rep.Rounds = round + 1
		rep.Digests = append(rep.Digests, roundDigest(round, alive, pops))
		if c.cfg.CheckpointPath != "" {
			if err := c.saveCheckpoint(seed, rep, pops, alive, best, totalIters, totalEvals); err != nil {
				c.logf("dist: checkpoint: %v", err)
			}
		}
	}

	for i := 0; i < n; i++ {
		if alive[i] {
			rep.Survivors = append(rep.Survivors, i)
		}
	}
	c.statsMu.Lock()
	rep.Restarts = c.restarts
	rep.HeartbeatMisses = c.hbMisses
	rep.RecoveryMs = append([]float64(nil), c.recoveries...)
	c.statsMu.Unlock()

	best.Iterations = totalIters
	best.Evals = totalEvals
	best.Elapsed = time.Since(start)
	best.Algorithm = fmt.Sprintf("DistIslandCMA(%d/%d)", n, c.cfg.Workers)
	return best, rep, nil
}

func anyAlive(alive []bool) bool {
	for _, a := range alive {
		if a {
			return true
		}
	}
	return false
}

// migrate reproduces the in-process exchange over the alive ring: rank
// with the objective's fresh evaluation (bit-identical to the island
// scheduler's refreshed states), plan over the alive mask, apply.
func (c *Coordinator) migrate(in *etc.Instance, pops [][]schedule.Schedule, alive []bool) {
	o := c.base.Objective
	fits := make([][]float64, len(pops))
	for i, pop := range pops {
		if !alive[i] || pop == nil {
			continue
		}
		f := make([]float64, len(pop))
		for k, sched := range pop {
			f[k] = o.Evaluate(in, sched)
		}
		fits[i] = f
	}
	island.ApplyMigration(pops, island.PlanMigration(fits, c.cfg.Migrants, alive))
}

// callSegment is one island's segment call under the retry policy, with
// supervision (restart-on-dead) folded into each attempt. A nil error
// guarantees a segment response. A non-nil error is final for the
// island: the worker is down past its restart budget, or the response
// was an application-level failure.
func (c *Coordinator) callSegment(ctx context.Context, h *handle, req *transport.Request, round int) (*transport.Response, error) {
	p := c.cfg.Retry
	// De-synchronise retry storms across (worker, round) pairs while
	// keeping each stream seeded.
	p.Seed = p.Seed ^ uint64(h.idx)<<32 ^ uint64(round)
	var resp *transport.Response
	err := p.Do(ctx, func(attempt int) error {
		r, err := c.invoke(ctx, h, req, round)
		if err != nil {
			if errors.Is(err, errWorkerDown) {
				return retry.Permanent(err)
			}
			return err
		}
		if r.Err != "" {
			// The worker computed an answer: the request itself is bad.
			return retry.Permanent(fmt.Errorf("dist: worker %d: %s", h.idx, r.Err))
		}
		if r.Seg == nil {
			return retry.Permanent(fmt.Errorf("dist: worker %d: segment response missing body", h.idx))
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// invoke performs one attempt: restart the worker if it is marked dead,
// consult the fault plan, then make the RPC under the per-call timeout.
// Any transport failure marks the worker dead so the next attempt
// restarts it.
func (c *Coordinator) invoke(ctx context.Context, h *handle, req *transport.Request, round int) (*transport.Response, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return nil, errWorkerDown
	}
	if h.dead {
		if err := c.restartLocked(h, round); err != nil {
			return nil, err
		}
	}
	if c.chaos != nil {
		act, count := c.chaos.next(h.idx, round)
		switch act {
		case actDrop:
			return nil, errInjectedDrop
		case actKill:
			c.markDeadLocked(h)
			return nil, errInjectedKill
		case actDelay:
			d := time.Duration(count) * c.chaos.delayUnit
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		case actDup:
			// Deliver twice; keep the second reply. Stateless workers make
			// the duplicate invisible — which is exactly what the torture
			// asserts.
			if _, err := c.callLocked(ctx, h, req); err != nil {
				c.markDeadLocked(h)
				return nil, err
			}
		}
	}
	resp, err := c.callLocked(ctx, h, req)
	if err != nil {
		c.markDeadLocked(h)
		return nil, err
	}
	// A full exchange after an outage: the worker is recovered.
	if !h.failedAt.IsZero() {
		c.statsMu.Lock()
		c.recoveries = append(c.recoveries, float64(time.Since(h.failedAt).Microseconds())/1000)
		c.statsMu.Unlock()
		h.failedAt = time.Time{}
	}
	return resp, nil
}

func (c *Coordinator) callLocked(ctx context.Context, h *handle, req *transport.Request) (*transport.Response, error) {
	r := *req
	r.ID = c.callID.Add(1)
	cctx, cancel := context.WithTimeout(ctx, c.cfg.callTimeout())
	defer cancel()
	return h.client.Call(cctx, &r)
}

func (c *Coordinator) markDeadLocked(h *handle) {
	if !h.dead {
		h.dead = true
		if h.failedAt.IsZero() {
			h.failedAt = time.Now()
		}
		if h.client != nil {
			h.client.Close()
		}
	}
}

// restartLocked brings a dead worker back through the factory. Failures
// count against the consecutive-restart budget; exhausting it abandons
// the worker (h.down) — the graceful-degradation trigger.
func (c *Coordinator) restartLocked(h *handle, round int) error {
	fail := func(reason error) error {
		h.restartFails++
		if h.restartFails >= c.cfg.maxRestarts() {
			h.down = true
			c.logf("dist: worker %d abandoned after %d failed restarts", h.idx, h.restartFails)
			return errWorkerDown
		}
		return fmt.Errorf("%w: worker %d: %v", errRestartFailed, h.idx, reason)
	}
	if c.chaos != nil && !c.chaos.allowRestart(h.idx, round) {
		return fail(errors.New("injected permanent death"))
	}
	cl, err := c.factory(h.idx)
	if err != nil {
		return fail(err)
	}
	h.client = cl
	h.dead = false
	h.restartFails = 0
	c.statsMu.Lock()
	c.restarts++
	c.statsMu.Unlock()
	c.logf("dist: worker %d restarted (warm: coordinator re-sends populations)", h.idx)
	return nil
}

// heartbeatLoop pings one worker at the configured period. TryLock keeps
// pings from queueing behind a long segment call (a worker busy serving
// us is alive by definition); a failed ping marks the worker dead so the
// next segment call restarts it before dispatching.
func (c *Coordinator) heartbeatLoop(ctx context.Context, h *handle, wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !h.mu.TryLock() {
			continue
		}
		if h.down || h.dead {
			h.mu.Unlock()
			continue
		}
		req := &transport.Request{ID: c.callID.Add(1), Kind: transport.KindPing}
		cctx, cancel := context.WithTimeout(ctx, c.cfg.heartbeatTimeout())
		_, err := h.client.Call(cctx, req)
		cancel()
		if err != nil && ctx.Err() == nil {
			c.markDeadLocked(h)
			c.statsMu.Lock()
			c.hbMisses++
			c.statsMu.Unlock()
			c.logf("dist: worker %d failed heartbeat: %v", h.idx, err)
		}
		h.mu.Unlock()
	}
}

// roundDigest folds one round's post-migration state — round index,
// alive mask, every alive island's population — into a hex digest. The
// sequence of digests is the trajectory the determinism contract pins:
// identical (seed, fault plan) must reproduce it bit for bit.
func roundDigest(round int, alive []bool, pops [][]schedule.Schedule) string {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(round))
	h.Write(b[:])
	for i, pop := range pops {
		if alive[i] {
			h.Write([]byte{1})
			for _, s := range pop {
				for _, m := range s {
					binary.LittleEndian.PutUint32(b[:4], uint32(m))
					h.Write(b[:4])
				}
			}
		} else {
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
