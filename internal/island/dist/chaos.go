package dist

import (
	"sync"
	"time"

	"gridcma/internal/chaos"
)

// action is the per-call decision the injected fault plan hands the
// coordinator's transport stack.
type action int

const (
	actNone  action = iota
	actDrop         // the call is lost; fail without reaching the worker
	actDelay        // hold the call n delay units before forwarding
	actDup          // deliver the request twice, keep the second reply
	actKill         // the worker dies now; the call fails
)

// ChaosPlan interprets a chaos.MsgPlan for one run. Consumable faults
// (drop, delay, dup, transient kill) are keyed by (worker, round) and
// consumed call by call; permanent deaths (MsgDown) are persistent: every
// call to the worker from the fault's round onward is killed, and every
// restart in those rounds is refused. Keying on the *request's* round —
// not wall-clock arrival — is what makes a faulted run a pure function
// of (seed, plan): however goroutines interleave, the same calls meet
// the same faults.
type ChaosPlan struct {
	delayUnit time.Duration

	mu       sync.Mutex
	downFrom map[int]int               // worker → first permanently-down round
	pending  map[[2]int][]pendingFault // (worker, round) → consumable queue
}

type pendingFault struct {
	kind  chaos.MsgKind
	count int
}

// NewChaosPlan compiles faults into an injector. delayUnit scales
// MsgDelay counts (0 = 10ms).
func NewChaosPlan(faults []chaos.MsgFault, delayUnit time.Duration) *ChaosPlan {
	if delayUnit <= 0 {
		delayUnit = 10 * time.Millisecond
	}
	p := &ChaosPlan{
		delayUnit: delayUnit,
		downFrom:  make(map[int]int),
		pending:   make(map[[2]int][]pendingFault),
	}
	for _, f := range faults {
		if f.Kind == chaos.MsgDown {
			if cur, ok := p.downFrom[f.Worker]; !ok || f.Round < cur {
				p.downFrom[f.Worker] = f.Round
			}
			continue
		}
		n := f.Count
		if n < 1 {
			n = 1
		}
		key := [2]int{f.Worker, f.Round}
		p.pending[key] = append(p.pending[key], pendingFault{kind: f.Kind, count: n})
	}
	return p
}

// next consumes the fault (if any) governing one call to worker w in
// round r, returning the action and its count (delay units for actDelay).
func (p *ChaosPlan) next(w, r int) (action, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dr, ok := p.downFrom[w]; ok && r >= dr {
		return actKill, 0 // persistent: the worker is gone for good
	}
	key := [2]int{w, r}
	q := p.pending[key]
	if len(q) == 0 {
		return actNone, 0
	}
	f := q[0]
	switch f.kind {
	case chaos.MsgDrop:
		f.count--
		if f.count <= 0 {
			p.pending[key] = q[1:]
		} else {
			q[0] = f
		}
		return actDrop, 1
	case chaos.MsgDelay:
		p.pending[key] = q[1:]
		return actDelay, f.count
	case chaos.MsgDup:
		p.pending[key] = q[1:]
		return actDup, 1
	case chaos.MsgKill:
		p.pending[key] = q[1:]
		return actKill, 1
	}
	p.pending[key] = q[1:]
	return actNone, 0
}

// allowRestart reports whether a supervisor restart of worker w may
// succeed in round r (false once the worker is permanently down).
func (p *ChaosPlan) allowRestart(w, r int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	dr, ok := p.downFrom[w]
	return !ok || r < dr
}

// PredictSurvivors returns the island ids expected alive after a run of
// `rounds` rounds under the fault plan: an island dies exactly when its
// pinned worker (island i → worker i % workers) has a permanent death
// scheduled before the final round completes. This is the oracle the
// disttorture harness checks every faulted run against.
func PredictSurvivors(faults []chaos.MsgFault, islands, workers, rounds int) []int {
	downFrom := make(map[int]int)
	for _, f := range faults {
		if f.Kind != chaos.MsgDown {
			continue
		}
		if cur, ok := downFrom[f.Worker]; !ok || f.Round < cur {
			downFrom[f.Worker] = f.Round
		}
	}
	var out []int
	for i := 0; i < islands; i++ {
		if dr, ok := downFrom[i%workers]; ok && dr < rounds {
			continue
		}
		out = append(out, i)
	}
	return out
}

// HasPermanentDeath reports whether the plan contains any MsgDown fault
// (i.e. whether a run under it is expected to degrade).
func HasPermanentDeath(faults []chaos.MsgFault) bool {
	for _, f := range faults {
		if f.Kind == chaos.MsgDown {
			return true
		}
	}
	return false
}
