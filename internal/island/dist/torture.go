package dist

import (
	"context"
	"fmt"
	"time"

	"gridcma/internal/chaos"
	"gridcma/internal/config"
	"gridcma/internal/etc"
	"gridcma/internal/island"
	"gridcma/internal/retry"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
	"gridcma/internal/transport"
)

// TortureConfig parameterises the deterministic chaos torture
// (gridsched -disttorture). Zero values take the documented defaults.
type TortureConfig struct {
	// Faults is the total seeded-fault budget across all cases (0 = 64).
	Faults int
	// Seed derives every case's fault plan; the same seed reproduces the
	// same torture bit for bit.
	Seed uint64
	// Timeout bounds each individual run (0 = 60s): a hung barrier is a
	// failure, not a wait.
	Timeout time.Duration
	// Logf receives per-case progress (nil = silent).
	Logf func(format string, args ...any)
}

// TortureReport summarises a completed torture.
type TortureReport struct {
	Cases    int           `json:"cases"`
	Faults   int           `json:"faults"`
	Degraded int           `json:"degraded"` // cases that lost islands (and still finished)
	Restarts int           `json:"restarts"` // supervisor restarts across all runs
	Elapsed  time.Duration `json:"elapsed"`
}

// faultsPerCase is how many seeded faults each torture case carries —
// small enough that worst-case fault pile-up on one (worker, round) key
// stays under the retry budget, so transient faults can never kill an
// island the survivor oracle expects alive.
const faultsPerCase = 4

// tortureRig is the fixed scenario every case replays: a small instance,
// a small cMA, 4 islands on 2 workers, 4 migration rounds.
type tortureRig struct {
	in     *etc.Instance
	dcfg   Config
	iters  int
	rounds int
}

func newTortureRig() (*tortureRig, error) {
	gs, err := etc.ParseGenSpec("64x8:c_hihi:s5")
	if err != nil {
		return nil, err
	}
	in, err := gs.Generate()
	if err != nil {
		return nil, err
	}
	w, h, ls := 3, 3, 2
	spec := config.Spec{Width: &w, Height: &h, LSIterations: &ls}
	dcfg := Config{
		Islands:        4,
		MigrationEvery: 2,
		Migrants:       1,
		Spec:           spec,
		Workers:        2,
		CallTimeout:    10 * time.Second,
		// Fast, wide retry: worst-case transient pile-up on one key is
		// 4 faults x 2 drops = 8 failures before the call must succeed.
		Retry:       retry.Policy{MaxAttempts: 12, Initial: time.Millisecond, Max: 4 * time.Millisecond},
		MaxRestarts: 2,
	}
	return &tortureRig{in: in, dcfg: dcfg, iters: 8, rounds: 4}, nil
}

// runOnce executes one distributed run of the rig under the fault plan
// (nil = failure-free) and returns its result and report.
func (r *tortureRig) runOnce(plan []chaos.MsgFault, seed uint64, heartbeat bool, timeout time.Duration, delayUnit time.Duration) (run.Result, *Report, error) {
	workers := make([]*Worker, r.dcfg.Workers)
	for w := range workers {
		workers[w] = NewPinnedWorker(r.in)
	}
	cfg := r.dcfg
	if heartbeat {
		cfg.Heartbeat = 5 * time.Millisecond
		cfg.HeartbeatTimeout = 100 * time.Millisecond
	}
	coord, err := New(cfg, func(w int) (transport.Client, error) {
		return transport.NewLocal(workers[w]), nil
	})
	if err != nil {
		return run.Result{}, nil, err
	}
	defer coord.Close()
	if plan != nil {
		coord.SetChaos(NewChaosPlan(plan, delayUnit))
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	budget := run.Budget{MaxIterations: r.iters}.WithContext(ctx)
	return coord.Run(r.in, budget, seed)
}

// Torture is the deterministic chaos harness behind gridsched
// -disttorture. For every case it draws a seeded fault plan
// (chaos.MsgPlan), runs the distributed engine under it twice, and
// requires:
//
//   - bit-equality between the two runs: identical digest trajectories,
//     survivor sets and best schedules — a faulted run is a pure function
//     of (seed, plan);
//   - the survivor set predicted by the PredictSurvivors oracle;
//   - for plans with no permanent death, bit-equality with the
//     failure-free distributed run AND the in-process island scheduler —
//     transient faults (drops, delays, duplicates, kills with successful
//     restart) are fully absorbed by retry and supervision;
//   - completion within the per-run timeout — degraded runs heal the
//     ring and finish on the survivors instead of hanging the barrier.
func Torture(tc TortureConfig) (*TortureReport, error) {
	if tc.Faults <= 0 {
		tc.Faults = 64
	}
	if tc.Timeout <= 0 {
		tc.Timeout = 60 * time.Second
	}
	if tc.Seed == 0 {
		tc.Seed = 0x7041
	}
	logf := tc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()

	rig, err := newTortureRig()
	if err != nil {
		return nil, err
	}
	const runSeed = 1

	// Reference 1: the in-process island scheduler — the bytes every
	// failure-free distributed run must reproduce.
	base, err := rig.dcfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	isl, err := island.New(island.Config{
		Islands:        rig.dcfg.Islands,
		MigrationEvery: rig.dcfg.MigrationEvery,
		Migrants:       rig.dcfg.Migrants,
		Base:           base,
	})
	if err != nil {
		return nil, err
	}
	ref := isl.Run(rig.in, run.Budget{MaxIterations: rig.iters}, runSeed, nil)

	// Reference 2: the failure-free distributed run and its digest
	// trajectory.
	cleanRes, cleanRep, err := rig.runOnce(nil, runSeed, false, tc.Timeout, 0)
	if err != nil {
		return nil, fmt.Errorf("disttorture: failure-free run: %w", err)
	}
	if err := sameResult(cleanRes, ref); err != nil {
		return nil, fmt.Errorf("disttorture: failure-free dist run diverged from in-process island scheduler: %w", err)
	}
	logf("disttorture: failure-free run matches in-process scheduler (fitness %.4f, %d rounds)", cleanRes.Fitness, cleanRep.Rounds)

	rep := &TortureReport{}
	for caseIdx := 0; rep.Faults < tc.Faults; caseIdx++ {
		planSeed := tc.Seed + uint64(caseIdx)*0x9e3779b97f4a7c15
		plan := chaos.MsgPlan(planSeed, faultsPerCase, rig.dcfg.Workers, rig.rounds)
		degraded := HasPermanentDeath(plan)
		want := PredictSurvivors(plan, rig.dcfg.Islands, rig.dcfg.Workers, rig.rounds)
		hb := caseIdx%2 == 1

		res1, rep1, err := rig.runOnce(plan, runSeed, hb, tc.Timeout, time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("disttorture: case %d (plan %v): %w", caseIdx, plan, err)
		}
		res2, rep2, err := rig.runOnce(plan, runSeed, hb, tc.Timeout, time.Millisecond)
		if err != nil {
			return nil, fmt.Errorf("disttorture: case %d replay (plan %v): %w", caseIdx, plan, err)
		}

		if !sameInts(rep1.Survivors, want) {
			return nil, fmt.Errorf("disttorture: case %d: survivors %v, oracle predicted %v (plan %v)", caseIdx, rep1.Survivors, want, plan)
		}
		if !sameInts(rep1.Survivors, rep2.Survivors) {
			return nil, fmt.Errorf("disttorture: case %d: survivor sets differ between identical runs: %v vs %v", caseIdx, rep1.Survivors, rep2.Survivors)
		}
		if !sameStrings(rep1.Digests, rep2.Digests) {
			return nil, fmt.Errorf("disttorture: case %d: digest trajectories differ between identical runs", caseIdx)
		}
		if err := sameResult(res1, res2); err != nil {
			return nil, fmt.Errorf("disttorture: case %d: results differ between identical runs: %w", caseIdx, err)
		}
		if degraded {
			rep.Degraded++
		} else {
			if !sameStrings(rep1.Digests, cleanRep.Digests) {
				return nil, fmt.Errorf("disttorture: case %d: transient-only plan %v changed the digest trajectory", caseIdx, plan)
			}
			if err := sameResult(res1, ref); err != nil {
				return nil, fmt.Errorf("disttorture: case %d: transient-only plan %v changed the result: %w", caseIdx, plan, err)
			}
		}
		rep.Cases++
		rep.Faults += len(plan)
		rep.Restarts += rep1.Restarts + rep2.Restarts
		logf("disttorture: case %2d ok: %d faults, survivors %v, degraded=%v, restarts=%d", caseIdx, len(plan), rep1.Survivors, degraded, rep1.Restarts)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

func sameResult(a, b run.Result) error {
	if !schedEqual(a.Best, b.Best) {
		return fmt.Errorf("best schedules differ")
	}
	if a.Fitness != b.Fitness || a.Makespan != b.Makespan || a.Flowtime != b.Flowtime {
		return fmt.Errorf("objectives differ: (%v %v %v) vs (%v %v %v)",
			a.Fitness, a.Makespan, a.Flowtime, b.Fitness, b.Makespan, b.Flowtime)
	}
	if a.Iterations != b.Iterations {
		return fmt.Errorf("iterations differ: %d vs %d", a.Iterations, b.Iterations)
	}
	if a.Evals != b.Evals {
		return fmt.Errorf("eval counts differ: %d vs %d", a.Evals, b.Evals)
	}
	return nil
}

func schedEqual(a, b schedule.Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
