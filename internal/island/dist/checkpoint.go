package dist

import (
	"encoding/json"
	"os"
	"path/filepath"

	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// checkpoint is the coordinator's durable state after a round: because
// workers are stateless, the populations plus the alive mask ARE the
// whole run, so a single JSON file written with the temp+fsync+rename
// idiom makes the coordinator itself crash-restartable — a new process
// with the same Config and seed resumes at the checkpointed round and
// (absent faults) finishes with the exact bytes the uninterrupted run
// would have produced.
type checkpoint struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	Islands int    `json:"islands"`
	Workers int    `json:"workers"`

	Round      int       `json:"round"`
	TotalIters int       `json:"total_iters"`
	TotalEvals int64     `json:"total_evals"`
	Alive      []bool    `json:"alive"`
	Pops       [][][]int `json:"pops"`

	BestSched    []int   `json:"best_sched,omitempty"`
	BestFitness  float64 `json:"best_fitness"`
	BestMakespan float64 `json:"best_makespan"`
	BestFlowtime float64 `json:"best_flowtime"`

	Digests []string `json:"digests"`
	Deaths  []Death  `json:"deaths,omitempty"`
}

const checkpointVersion = 1

func (cp *checkpoint) pops() [][]schedule.Schedule {
	out := make([][]schedule.Schedule, len(cp.Pops))
	for i, pop := range cp.Pops {
		if pop == nil {
			continue
		}
		out[i] = make([]schedule.Schedule, len(pop))
		for k, s := range pop {
			out[i][k] = schedule.Schedule(s)
		}
	}
	return out
}

func (cp *checkpoint) best() run.Result {
	if cp.BestSched == nil {
		return run.Result{}
	}
	return run.Result{
		Best:     schedule.Schedule(cp.BestSched),
		Fitness:  cp.BestFitness,
		Makespan: cp.BestMakespan,
		Flowtime: cp.BestFlowtime,
	}
}

// loadCheckpoint reads the configured checkpoint file and returns it only
// when it belongs to this exact run (seed, islands, workers). A missing,
// unreadable or mismatched file is not an error — the run simply starts
// fresh.
func (c *Coordinator) loadCheckpoint(seed uint64) (*checkpoint, bool) {
	if c.cfg.CheckpointPath == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.cfg.CheckpointPath)
	if err != nil {
		return nil, false
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		c.logf("dist: checkpoint unreadable, starting fresh: %v", err)
		return nil, false
	}
	if cp.Version != checkpointVersion || cp.Seed != seed ||
		cp.Islands != c.cfg.Islands || cp.Workers != c.cfg.Workers ||
		len(cp.Alive) != c.cfg.Islands || len(cp.Pops) != c.cfg.Islands {
		c.logf("dist: checkpoint belongs to a different run, starting fresh")
		return nil, false
	}
	return &cp, true
}

// saveCheckpoint atomically replaces the checkpoint file with the state
// after the just-finished round.
func (c *Coordinator) saveCheckpoint(seed uint64, rep *Report, pops [][]schedule.Schedule, alive []bool, best run.Result, totalIters int, totalEvals int64) error {
	cp := checkpoint{
		Version:    checkpointVersion,
		Seed:       seed,
		Islands:    c.cfg.Islands,
		Workers:    c.cfg.Workers,
		Round:      rep.Rounds,
		TotalIters: totalIters,
		TotalEvals: totalEvals,
		Alive:      alive,
		Digests:    rep.Digests,
		Deaths:     rep.Deaths,
	}
	cp.Pops = make([][][]int, len(pops))
	for i, pop := range pops {
		if pop == nil {
			continue
		}
		cp.Pops[i] = make([][]int, len(pop))
		for k, s := range pop {
			cp.Pops[i][k] = []int(s)
		}
	}
	if best.Best != nil {
		cp.BestSched = []int(best.Best)
		cp.BestFitness = best.Fitness
		cp.BestMakespan = best.Makespan
		cp.BestFlowtime = best.Flowtime
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".dist-checkpoint-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), c.cfg.CheckpointPath); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
