package dist

import (
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gridcma/internal/chaos"
	"gridcma/internal/island"
	"gridcma/internal/run"
	"gridcma/internal/transport"
)

// testRig builds the shared scenario (same as the torture rig) and fails
// the test on any setup error.
func testRig(t *testing.T) *tortureRig {
	t.Helper()
	rig, err := newTortureRig()
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

// inProcReference runs the in-process island scheduler on the rig.
func inProcReference(t *testing.T, rig *tortureRig, iters int, seed uint64) run.Result {
	t.Helper()
	base, err := rig.dcfg.Spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	isl, err := island.New(island.Config{
		Islands:        rig.dcfg.Islands,
		MigrationEvery: rig.dcfg.MigrationEvery,
		Migrants:       rig.dcfg.Migrants,
		Base:           base,
	})
	if err != nil {
		t.Fatal(err)
	}
	return isl.Run(rig.in, run.Budget{MaxIterations: iters}, seed, nil)
}

// TestDistMatchesInProcessChannelTransport is half the determinism
// contract: over the in-process transport, a failure-free distributed run
// is bit-identical to the island scheduler for any worker count.
func TestDistMatchesInProcessChannelTransport(t *testing.T) {
	rig := testRig(t)
	ref := inProcReference(t, rig, rig.iters, 1)
	var digests []string
	for _, workers := range []int{1, 2, 8} {
		cfg := rig.dcfg
		cfg.Workers = workers
		pinned := make([]*Worker, workers)
		for w := range pinned {
			pinned[w] = NewPinnedWorker(rig.in)
		}
		coord, err := New(cfg, func(w int) (transport.Client, error) {
			return transport.NewLocal(pinned[w]), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		res, rep, err := coord.Run(rig.in, run.Budget{MaxIterations: rig.iters}, 1)
		coord.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sameResult(res, ref); err != nil {
			t.Fatalf("workers=%d diverged from in-process scheduler: %v", workers, err)
		}
		if len(rep.Survivors) != rig.dcfg.Islands {
			t.Fatalf("workers=%d: lost islands without faults: %v", workers, rep.Survivors)
		}
		if digests == nil {
			digests = rep.Digests
		} else if !sameStrings(digests, rep.Digests) {
			t.Fatalf("workers=%d: digest trajectory depends on worker count", workers)
		}
	}
}

// startTCPWorker serves a spec-materialising worker on a loopback
// listener and returns its address.
func startTCPWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go transport.Serve(ln, NewWorker())
	return ln.Addr().String()
}

// TestDistMatchesInProcessTCPTransport is the other half: the same bytes
// over real sockets, workers reconstructing the instance from the gen
// spec, for worker counts 1, 2 and 8.
func TestDistMatchesInProcessTCPTransport(t *testing.T) {
	rig := testRig(t)
	ref := inProcReference(t, rig, rig.iters, 1)
	for _, workers := range []int{1, 2, 8} {
		addrs := make([]string, workers)
		for w := range addrs {
			addrs[w] = startTCPWorker(t)
		}
		cfg := rig.dcfg
		cfg.Workers = workers
		cfg.Instance = "64x8:c_hihi:s5"
		coord, err := New(cfg, func(w int) (transport.Client, error) {
			return transport.Dial(addrs[w], time.Second)
		})
		if err != nil {
			t.Fatal(err)
		}
		res, rep, err := coord.Run(rig.in, run.Budget{MaxIterations: rig.iters}, 1)
		coord.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sameResult(res, ref); err != nil {
			t.Fatalf("workers=%d over TCP diverged from in-process scheduler: %v", workers, err)
		}
		if len(rep.Survivors) != rig.dcfg.Islands {
			t.Fatalf("workers=%d: lost islands without faults: %v", workers, rep.Survivors)
		}
	}
}

// TestKillRestartRecovery: a transient worker kill is absorbed — the
// supervisor restarts the worker warm and the run finishes with the
// failure-free bytes.
func TestKillRestartRecovery(t *testing.T) {
	rig := testRig(t)
	ref := inProcReference(t, rig, rig.iters, 1)
	plan := []chaos.MsgFault{{Worker: 1, Round: 1, Kind: chaos.MsgKill, Count: 1}}
	res, rep, err := rig.runOnce(plan, 1, false, time.Minute, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResult(res, ref); err != nil {
		t.Fatalf("transient kill changed the result: %v", err)
	}
	if rep.Restarts < 1 {
		t.Fatalf("expected at least one supervisor restart, got %d", rep.Restarts)
	}
	if len(rep.RecoveryMs) < 1 {
		t.Fatalf("expected a recovery sample after the restart")
	}
	if len(rep.Survivors) != rig.dcfg.Islands {
		t.Fatalf("lost islands on a transient fault: %v", rep.Survivors)
	}
}

// TestPermanentDeathDegradesGracefully: a worker that can never restart
// takes its pinned islands down; the ring heals and the run completes on
// the survivors, with the loss recorded.
func TestPermanentDeathDegradesGracefully(t *testing.T) {
	rig := testRig(t)
	plan := []chaos.MsgFault{{Worker: 1, Round: 1, Kind: chaos.MsgDown, Count: 1}}
	res, rep, err := rig.runOnce(plan, 1, false, time.Minute, time.Millisecond)
	if err != nil {
		t.Fatalf("degraded run should complete, got %v", err)
	}
	want := PredictSurvivors(plan, rig.dcfg.Islands, rig.dcfg.Workers, rig.rounds)
	if !sameInts(rep.Survivors, want) {
		t.Fatalf("survivors %v, oracle predicted %v", rep.Survivors, want)
	}
	if len(rep.Deaths) != rig.dcfg.Islands-len(want) {
		t.Fatalf("deaths %v do not account for the lost islands", rep.Deaths)
	}
	for _, d := range rep.Deaths {
		if d.Round != 1 {
			t.Fatalf("island %d died in round %d, fault was scheduled for round 1", d.Island, d.Round)
		}
	}
	if res.Best == nil || res.Iterations != rig.iters {
		t.Fatalf("degraded run did not finish the budget: %+v", res)
	}
	if len(rep.Digests) != rig.rounds {
		t.Fatalf("expected %d round digests, got %d", rig.rounds, len(rep.Digests))
	}
}

// TestHeartbeatMarksDeadWorker unit-tests the liveness loop: a worker
// whose client is gone is flagged within a few periods, without any
// segment traffic.
func TestHeartbeatMarksDeadWorker(t *testing.T) {
	rig := testRig(t)
	cfg := rig.dcfg
	cfg.Heartbeat = 2 * time.Millisecond
	pinned := NewPinnedWorker(rig.in)
	coord, err := New(cfg, func(w int) (transport.Client, error) {
		return transport.NewLocal(pinned), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	h := coord.workers[1]
	h.mu.Lock()
	h.client.Close() // the worker process dies
	h.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go coord.heartbeatLoop(ctx, h, &wg)
	defer wg.Wait()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		dead := h.dead
		h.mu.Unlock()
		if dead {
			cancel()
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("heartbeat never marked the dead worker")
}

// TestCheckpointResume: interrupt a checkpointed run halfway, resume with
// a fresh coordinator, and get the uninterrupted run's exact bytes.
func TestCheckpointResume(t *testing.T) {
	rig := testRig(t)
	ref := inProcReference(t, rig, rig.iters, 1)
	path := filepath.Join(t.TempDir(), "dist.ckpt")

	mkCoord := func() *Coordinator {
		cfg := rig.dcfg
		cfg.CheckpointPath = path
		pinned := make([]*Worker, cfg.Workers)
		for w := range pinned {
			pinned[w] = NewPinnedWorker(rig.in)
		}
		coord, err := New(cfg, func(w int) (transport.Client, error) {
			return transport.NewLocal(pinned[w]), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return coord
	}

	// "Crash" after half the budget: the checkpoint holds rounds 0-1.
	c1 := mkCoord()
	if _, _, err := c1.Run(rig.in, run.Budget{MaxIterations: rig.iters / 2}, 1); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// A fresh coordinator resumes from the file and finishes the budget.
	c2 := mkCoord()
	res, rep, err := c2.Run(rig.in, run.Budget{MaxIterations: rig.iters}, 1)
	c2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResult(res, ref); err != nil {
		t.Fatalf("resumed run diverged from uninterrupted run: %v", err)
	}
	if len(rep.Digests) != rig.rounds {
		t.Fatalf("resumed run has %d digests, want the full %d", len(rep.Digests), rig.rounds)
	}
}

// TestBudgetMustBeIterationOnly: wall-clock budgets cannot be
// deterministic across transports, so Run refuses them.
func TestBudgetMustBeIterationOnly(t *testing.T) {
	rig := testRig(t)
	pinned := NewPinnedWorker(rig.in)
	coord, err := New(rig.dcfg, func(w int) (transport.Client, error) {
		return transport.NewLocal(pinned), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, _, err := coord.Run(rig.in, run.Budget{MaxTime: time.Second}, 1); err == nil {
		t.Fatal("expected an error for a wall-clock budget")
	}
}

// TestTortureSmall runs the full torture harness at CI scale.
func TestTortureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("torture is not a -short test")
	}
	rep, err := Torture(TortureConfig{Faults: 16, Timeout: time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults < 16 {
		t.Fatalf("torture stopped early: %+v", rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("fault mix never exercised permanent death: %+v", rep)
	}
}
