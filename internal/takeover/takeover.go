// Package takeover measures the selection intensity of cellular
// population structures by takeover-time analysis, the standard tool of
// the cellular-EA literature the paper builds on (Alba & Troya's ratio
// studies; Giacobini et al., "Selection Intensity in Cellular
// Evolutionary Algorithms for Regular Lattices" — references [3] and [15]
// of the paper).
//
// The experiment: plant a single best individual in a toroidal grid of
// otherwise-worst individuals, then repeatedly update every cell with
// selection only (each cell adopts the winner of a tournament over its
// neighborhood). The growth curve of the best genotype's share of the
// population — and the takeover time, the first iteration at which it
// saturates — quantifies the selective pressure a neighborhood pattern
// induces: panmixia is the fastest/most exploitative extreme, L5 the
// slowest/most explorative. This is exactly the exploration–exploitation
// dial the paper's §3.2 tunes by choosing C9.
package takeover

import (
	"fmt"

	"gridcma/internal/cell"
	"gridcma/internal/operators"
	"gridcma/internal/rng"
)

// Options parameterises a takeover experiment.
type Options struct {
	Width, Height int // grid shape (paper: 5×5; analysis often uses larger)
	Pattern       cell.Pattern
	// Selector decides which neighbor a cell adopts; the paper's choice
	// is 3-tournament.
	Selector operators.Selector
	// MaxIterations bounds the experiment (0 defaults to 10 × grid area).
	MaxIterations int
	// Runs averages the growth curve over this many seeds (default 1).
	Runs int
	Seed uint64
	// Synchronous selects generation-synchronous updating (the classical
	// analysis); false uses asynchronous line sweep, which roughly
	// doubles the growth speed.
	Synchronous bool
}

// Validate reports the first option error.
func (o Options) Validate() error {
	switch {
	case o.Width <= 0 || o.Height <= 0:
		return fmt.Errorf("takeover: invalid grid %dx%d", o.Width, o.Height)
	case o.Selector == nil:
		return fmt.Errorf("takeover: nil selector")
	case o.MaxIterations < 0 || o.Runs < 0:
		return fmt.Errorf("takeover: negative bounds")
	}
	return nil
}

// Curve is the result of one takeover experiment.
type Curve struct {
	Pattern cell.Pattern
	// Proportion[t] is the mean fraction of cells holding the best
	// genotype after t iterations (Proportion[0] = 1/gridsize).
	Proportion []float64
	// TakeoverTime is the mean first iteration at which the best genotype
	// occupies the whole grid; -1 if any run failed to saturate within
	// MaxIterations.
	TakeoverTime float64
}

// GrowthAt returns the proportion after iteration t (clamped).
func (c Curve) GrowthAt(t int) float64 {
	if len(c.Proportion) == 0 {
		return 0
	}
	if t >= len(c.Proportion) {
		t = len(c.Proportion) - 1
	}
	return c.Proportion[t]
}

// Measure runs the takeover experiment.
func Measure(o Options) (Curve, error) {
	if err := o.Validate(); err != nil {
		return Curve{}, err
	}
	g := cell.NewGrid(o.Width, o.Height)
	nb := cell.NewNeighborhood(g, o.Pattern)
	n := g.Size()
	maxIter := o.MaxIterations
	if maxIter == 0 {
		maxIter = 10 * n
	}
	runs := o.Runs
	if runs == 0 {
		runs = 1
	}

	sumProp := make([]float64, maxIter+1)
	sumProp[0] = float64(runs) / float64(n)
	saturated := make([]int, 0, runs)
	longest := 0

	for k := 0; k < runs; k++ {
		r := rng.New(o.Seed + uint64(k))
		// Fitness: 0 for the best genotype, 1 for the rest (lower wins).
		best := make([]bool, n)
		best[r.Intn(n)] = true
		count := 1

		fitOf := func(i int) float64 {
			if best[i] {
				return 0
			}
			return 1
		}

		// Updates are elitist (a cell only adopts the winner when it
		// improves), mirroring the paper's add-only-if-better replacement.
		// Non-elitist adoption would let the single initial copy go
		// extinct, which is noise, not pressure.
		t := 0
		for ; t < maxIter && count < n; t++ {
			if o.Synchronous {
				next := make([]bool, n)
				for c := 0; c < n; c++ {
					winner := o.Selector.Select(nb.Of[c], fitOf, r)
					next[c] = best[c] || best[winner]
				}
				count = 0
				for _, b := range next {
					if b {
						count++
					}
				}
				best = next
			} else {
				for c := 0; c < n; c++ {
					if best[c] {
						continue
					}
					winner := o.Selector.Select(nb.Of[c], fitOf, r)
					if best[winner] {
						best[c] = true
						count++
					}
				}
			}
			sumProp[t+1] += float64(count) / float64(n)
		}
		if count == n {
			saturated = append(saturated, t)
			// Saturated runs stay at 1.0 for the rest of the horizon.
			for tt := t + 1; tt <= maxIter; tt++ {
				sumProp[tt]++
			}
		}
		if t > longest {
			longest = t
		}
	}

	curve := Curve{Pattern: o.Pattern, Proportion: make([]float64, maxIter+1)}
	for t := range curve.Proportion {
		curve.Proportion[t] = sumProp[t] / float64(runs)
	}
	if len(saturated) == runs {
		total := 0
		for _, t := range saturated {
			total += t
		}
		curve.TakeoverTime = float64(total) / float64(runs)
	} else {
		curve.TakeoverTime = -1
	}
	return curve, nil
}

// Compare measures all patterns under identical options and returns the
// curves in the given order.
func Compare(patterns []cell.Pattern, o Options) ([]Curve, error) {
	out := make([]Curve, 0, len(patterns))
	for _, p := range patterns {
		opts := o
		opts.Pattern = p
		c, err := Measure(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
