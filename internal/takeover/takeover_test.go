package takeover

import (
	"testing"

	"gridcma/internal/cell"
	"gridcma/internal/operators"
)

func baseOpts() Options {
	return Options{
		Width: 20, Height: 20,
		Pattern:       cell.L5,
		Selector:      operators.NewTournament(3),
		MaxIterations: 400,
		Runs:          8,
		Seed:          1,
	}
}

// orderingOpts uses synchronous updating on a larger grid: information
// then travels at most one neighborhood radius per iteration, which is
// what separates the patterns' growth curves cleanly.
func orderingOpts() Options {
	o := baseOpts()
	o.Width, o.Height = 40, 40
	o.Runs = 5
	o.Synchronous = true
	return o
}

func TestValidate(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Width = 0 },
		func(o *Options) { o.Selector = nil },
		func(o *Options) { o.MaxIterations = -1 },
		func(o *Options) { o.Runs = -1 },
	}
	for i, f := range bad {
		o := baseOpts()
		f(&o)
		if _, err := Measure(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCurveStartsAtOneCell(t *testing.T) {
	o := baseOpts()
	c, err := Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 400
	if c.Proportion[0] != want {
		t.Errorf("initial proportion %v, want %v", c.Proportion[0], want)
	}
}

func TestGrowthIsMonotoneAndSaturates(t *testing.T) {
	// Elitist updates make every run's curve non-decreasing, hence the
	// average too, and the best genotype must take the whole grid.
	c, err := Measure(baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c.Proportion); i++ {
		if c.Proportion[i] < c.Proportion[i-1]-1e-12 {
			t.Fatalf("growth regressed at t=%d", i)
		}
	}
	if last := c.Proportion[len(c.Proportion)-1]; last < 0.999 {
		t.Errorf("best genotype reached only %v of the grid", last)
	}
	if c.TakeoverTime < 0 {
		t.Error("takeover did not saturate")
	}
}

func TestSelectionPressureOrdering(t *testing.T) {
	// The core cellular-EA fact the paper leans on: larger/denser
	// neighborhoods induce higher selective pressure. Panmixia must grow
	// fastest, L5 slowest, with C13 in between.
	o := orderingOpts()
	curves, err := Compare([]cell.Pattern{cell.L5, cell.C13, cell.Panmictic}, o)
	if err != nil {
		t.Fatal(err)
	}
	l5, c13, pan := curves[0], curves[1], curves[2]
	const probe = 8
	if !(pan.GrowthAt(probe) > c13.GrowthAt(probe) && c13.GrowthAt(probe) > l5.GrowthAt(probe)) {
		t.Errorf("pressure ordering violated at t=%d: pan=%v c13=%v l5=%v",
			probe, pan.GrowthAt(probe), c13.GrowthAt(probe), l5.GrowthAt(probe))
	}
	if pan.TakeoverTime < 0 || l5.TakeoverTime < 0 {
		t.Fatalf("takeover did not saturate: pan=%v l5=%v", pan.TakeoverTime, l5.TakeoverTime)
	}
	if pan.TakeoverTime >= l5.TakeoverTime {
		t.Errorf("panmictic takeover (%v) should be faster than L5 (%v)",
			pan.TakeoverTime, l5.TakeoverTime)
	}
}

func TestC9BetweenL5AndC13(t *testing.T) {
	o := orderingOpts()
	curves, err := Compare([]cell.Pattern{cell.L5, cell.C9, cell.C13}, o)
	if err != nil {
		t.Fatal(err)
	}
	const probe = 8
	l5, c9, c13 := curves[0].GrowthAt(probe), curves[1].GrowthAt(probe), curves[2].GrowthAt(probe)
	if !(l5 <= c9 && c9 <= c13) {
		t.Errorf("C9 pressure not between L5 and C13: %v %v %v", l5, c9, c13)
	}
}

func TestSynchronousSlowerThanAsync(t *testing.T) {
	// Asynchronous sweeps propagate information within an iteration, so
	// growth per iteration is at least as fast as synchronous updating.
	o := baseOpts()
	o.Synchronous = true
	sync, err := Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Synchronous = false
	async, err := Measure(o)
	if err != nil {
		t.Fatal(err)
	}
	const probe = 8
	if async.GrowthAt(probe) < sync.GrowthAt(probe) {
		t.Errorf("async growth %v below sync %v at t=%d",
			async.GrowthAt(probe), sync.GrowthAt(probe), probe)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := Measure(baseOpts())
	b, _ := Measure(baseOpts())
	for i := range a.Proportion {
		if a.Proportion[i] != b.Proportion[i] {
			t.Fatal("takeover experiment not deterministic")
		}
	}
}

func TestGrowthAtClamps(t *testing.T) {
	c := Curve{Proportion: []float64{0.1, 0.5, 1.0}}
	if c.GrowthAt(99) != 1.0 {
		t.Error("clamp failed")
	}
	if (Curve{}).GrowthAt(0) != 0 {
		t.Error("empty curve")
	}
}
