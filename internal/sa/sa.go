// Package sa implements simulated annealing for the ETC batch scheduling
// problem. SA is one of the eleven heuristics of Braun et al. (JPDC 2001)
// whose benchmark the paper adopts; it serves here as an additional
// single-solution baseline for the experiment harness and the ablation
// benches.
//
// The neighborhood is the single-job move (the same proposal as the LM
// local search); the acceptance rule is Metropolis with geometric cooling.
package sa

import (
	"fmt"
	"math"
	"time"

	"gridcma/internal/etc"
	"gridcma/internal/evalpool"
	"gridcma/internal/heuristics"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// Config parameterises the annealer.
type Config struct {
	// InitialTempFactor scales the starting temperature relative to the
	// initial fitness (Braun et al. start at the initial makespan; 0.1 of
	// the fitness is a practical equivalent for the scalarised objective).
	InitialTempFactor float64
	// Cooling is the geometric factor applied after every sweep
	// (Braun et al. use 0.9).
	Cooling float64
	// SweepLength is the number of proposals per temperature step; 0
	// defaults to 2×nb_jobs.
	SweepLength int
	// Objective is the scalarised fitness (λ = 0.75 by default).
	Objective schedule.Objective
	// SeedHeuristic builds the starting solution; nil starts random.
	SeedHeuristic func(*etc.Instance) schedule.Schedule
	// SweepProposals switches the proposal distribution from one uniform
	// (job, machine) candidate per step to a per-machine sweep: each step
	// draws a job and scores moving it to *every* machine in one
	// FitnessAfterMoveSweep call, then Metropolis-tests the steepest
	// target. The annealer walks a different (greedier) trajectory, so
	// the gate is off for the frozen "sa" registry entry and on for
	// "sa-sweep".
	SweepProposals bool
}

// DefaultConfig mirrors the Braun et al. annealer adapted to the
// scalarised objective.
func DefaultConfig() Config {
	return Config{
		InitialTempFactor: 0.1,
		Cooling:           0.9,
		Objective:         schedule.DefaultObjective,
		SeedHeuristic:     heuristics.MinMin,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.InitialTempFactor <= 0:
		return fmt.Errorf("sa: InitialTempFactor %v", c.InitialTempFactor)
	case c.Cooling <= 0 || c.Cooling >= 1:
		return fmt.Errorf("sa: Cooling %v outside (0,1)", c.Cooling)
	case c.SweepLength < 0:
		return fmt.Errorf("sa: negative SweepLength")
	case c.Objective.Lambda < 0 || c.Objective.Lambda > 1:
		return fmt.Errorf("sa: lambda %v", c.Objective.Lambda)
	}
	return nil
}

// Scheduler is a reusable annealer bound to a configuration.
type Scheduler struct {
	cfg Config
}

// New validates cfg and returns a Scheduler.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// Name identifies the algorithm in results.
func (s *Scheduler) Name() string {
	if s.cfg.SweepProposals {
		return "SA-sweep"
	}
	return "SA"
}

// Run executes the annealer; one budget iteration is one temperature
// sweep.
func (s *Scheduler) Run(in *etc.Instance, budget run.Budget, seed uint64, obs run.Observer) run.Result {
	if !budget.Bounded() {
		panic("sa: unbounded budget")
	}
	r := rng.New(seed)
	var init schedule.Schedule
	if s.cfg.SeedHeuristic != nil {
		init = s.cfg.SeedHeuristic(in)
	} else {
		init = schedule.NewRandom(in, r)
	}
	cur := schedule.NewState(in, init)
	o := s.cfg.Objective
	curFit := o.Of(cur)
	var best evalpool.Best
	best.Note(cur, curFit)
	temp := s.cfg.InitialTempFactor * curFit
	sweep := s.cfg.SweepLength
	if sweep == 0 {
		sweep = 2 * in.Jobs
	}

	start := time.Now()
	iter := 0
	var evals int64 = 1
	emit := func() {
		if obs != nil {
			obs(run.Progress{Elapsed: time.Since(start), Iteration: iter,
				Fitness: best.Fitness(), Makespan: best.Makespan(), Flowtime: best.Flowtime()})
		}
	}
	emit()
	// Probe-then-commit over an amortised scan context (scalar-proposal
	// mode only — the sweep mode scores whole neighborhoods per call and
	// never touches it): the context caches the top machine completions
	// once per accepted move, so the many rejected proposals between
	// commits probe in O(1) on the makespan side instead of walking the
	// tournament tree each time. The context's probes are bit-identical
	// to the scalar ones, so the Metropolis trajectory is unchanged.
	var scan schedule.MoveScan
	if !s.cfg.SweepProposals {
		scan = cur.BeginMoveScan(o)
	}
	for !budget.Done(iter, start) {
		for k := 0; k < sweep; k++ {
			if s.cfg.SweepProposals {
				// Sweep-native proposal: draw a job, score all M targets
				// in one batched sweep, Metropolis-test the steepest one
				// (smallest machine id among exact ties).
				j := r.Intn(in.Jobs)
				fits := cur.FitnessAfterMoveSweep(o, j, nil)
				from := cur.Assign(j)
				bestF, bestTo := math.Inf(1), -1
				for to, f := range fits {
					if to != from && f < bestF {
						bestF, bestTo = f, to
					}
				}
				evals += int64(in.Machs - 1)
				if bestTo < 0 {
					continue
				}
				accept := bestF <= curFit
				if !accept && temp > 0 {
					accept = r.Float64() < math.Exp((curFit-bestF)/temp)
				}
				if accept {
					cur.Move(j, bestTo)
					curFit = bestF
					best.Note(cur, bestF)
				}
				continue
			}
			j := r.Intn(in.Jobs)
			to := r.Intn(in.Machs)
			if cur.Assign(j) == to {
				continue
			}
			f := scan.FitnessAfterMove(j, to)
			evals++
			accept := f <= curFit
			if !accept && temp > 0 {
				accept = r.Float64() < math.Exp((curFit-f)/temp)
			}
			if accept {
				cur.Move(j, to)
				curFit = f
				best.Note(cur, f)
				scan = cur.BeginMoveScan(o)
			}
		}
		temp *= s.cfg.Cooling
		iter++
		emit()
	}
	cur.SyncScans()
	return run.Result{
		Best: best.Schedule(), Fitness: best.Fitness(), Makespan: best.Makespan(), Flowtime: best.Flowtime(),
		Iterations: iter, Evals: evals, Elapsed: time.Since(start), Algorithm: s.Name(),
	}
}
