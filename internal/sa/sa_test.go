package sa

import (
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func testInstance(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 96, Machs: 8})
}

func TestRunImprovesOnSeed(t *testing.T) {
	in := testInstance(1)
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(in, run.Budget{MaxIterations: 60}, 42, nil)
	if err := res.Best.Validate(in); err != nil {
		t.Fatal(err)
	}
	seedFit := schedule.DefaultObjective.Evaluate(in, cfg.SeedHeuristic(in))
	if res.Fitness >= seedFit {
		t.Errorf("SA %v did not improve on Min-Min %v", res.Fitness, seedFit)
	}
}

func TestDeterministic(t *testing.T) {
	in := testInstance(2)
	s, _ := New(DefaultConfig())
	a := s.Run(in, run.Budget{MaxIterations: 20}, 7, nil)
	b := s.Run(in, run.Budget{MaxIterations: 20}, 7, nil)
	if !a.Best.Equal(b.Best) {
		t.Fatal("same seed, different results")
	}
}

func TestRandomStartWithoutSeedHeuristic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeedHeuristic = nil
	s, _ := New(cfg)
	res := s.Run(testInstance(3), run.Budget{MaxIterations: 10}, 1, nil)
	if res.Best == nil {
		t.Fatal("no result")
	}
}

func TestBestMonotoneUnderObserver(t *testing.T) {
	in := testInstance(4)
	s, _ := New(DefaultConfig())
	var fits []float64
	s.Run(in, run.Budget{MaxIterations: 30}, 5, func(p run.Progress) {
		fits = append(fits, p.Fitness)
	})
	for i := 1; i < len(fits); i++ {
		if fits[i] > fits[i-1]+1e-9 {
			t.Fatal("best fitness regressed")
		}
	}
}

// TestSweepProposalsRunAndImprove covers the sweep-native proposal
// distribution (the "sa-sweep" registry gate): it must run, never return
// a best worse than the seed, report its own name, and be deterministic
// in the seed.
func TestSweepProposalsRunAndImprove(t *testing.T) {
	in := testInstance(11)
	cfg := DefaultConfig()
	cfg.SweepProposals = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SA-sweep" {
		t.Fatalf("Name() = %q", s.Name())
	}
	seedFit := schedule.DefaultObjective.Evaluate(in, cfg.SeedHeuristic(in))
	a := s.Run(in, run.Budget{MaxIterations: 20}, 5, nil)
	b := s.Run(in, run.Budget{MaxIterations: 20}, 5, nil)
	if a.Fitness > seedFit {
		t.Fatalf("best %v worse than seed %v", a.Fitness, seedFit)
	}
	if !a.Best.Equal(b.Best) || a.Fitness != b.Fitness {
		t.Fatal("sweep annealer not deterministic in the seed")
	}
	if a.Algorithm != "SA-sweep" {
		t.Fatalf("result algorithm %q", a.Algorithm)
	}
	if a.Evals < int64(20*len(a.Best)) { // sweep steps score M-1 targets each
		t.Fatalf("suspiciously few evals: %d", a.Evals)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InitialTempFactor: 0, Cooling: 0.9, Objective: schedule.DefaultObjective},
		{InitialTempFactor: 0.1, Cooling: 1.0, Objective: schedule.DefaultObjective},
		{InitialTempFactor: 0.1, Cooling: 0.9, SweepLength: -1, Objective: schedule.DefaultObjective},
		{InitialTempFactor: 0.1, Cooling: 0.9, Objective: schedule.Objective{Lambda: -1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnboundedBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s, _ := New(DefaultConfig())
	s.Run(testInstance(5), run.Budget{}, 1, nil)
}
