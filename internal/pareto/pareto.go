// Package pareto implements the multi-objective extension the paper's
// conclusions call for: "to tackle the problem with a multi-objective
// algorithm in order to find a set of non-dominated solutions".
//
// It provides bi-objective (makespan, flowtime) Pareto dominance, a
// bounded non-dominated archive with crowding-distance pruning, and two
// solvers: a λ-sweep over the scalarised cMA (running the paper's
// algorithm across a grid of weights) and a cellular multi-objective
// memetic algorithm (dominance-based replacement on the same toroidal
// population, in the spirit of MOCell).
package pareto

import (
	"fmt"
	"math"
	"sort"

	"gridcma/internal/schedule"
)

// Vec is one point in objective space. Both objectives are minimised.
type Vec struct {
	Makespan float64
	Flowtime float64
}

// Dominates reports whether a is at least as good as b in both objectives
// and strictly better in at least one.
func (a Vec) Dominates(b Vec) bool {
	if a.Makespan > b.Makespan || a.Flowtime > b.Flowtime {
		return false
	}
	return a.Makespan < b.Makespan || a.Flowtime < b.Flowtime
}

// Equal reports exact objective equality.
func (a Vec) Equal(b Vec) bool {
	return a.Makespan == b.Makespan && a.Flowtime == b.Flowtime
}

// Solution pairs a schedule with its objective vector.
type Solution struct {
	Schedule schedule.Schedule
	Obj      Vec
}

// Front is a bounded archive of mutually non-dominated solutions. The
// zero value is unusable; construct with NewFront.
type Front struct {
	cap  int
	sols []Solution
}

// NewFront returns an archive holding at most capacity solutions
// (capacity <= 0 panics). When full, the most crowded interior solution
// is evicted, preserving the extremes.
func NewFront(capacity int) *Front {
	if capacity <= 0 {
		panic(fmt.Sprintf("pareto: front capacity %d", capacity))
	}
	return &Front{cap: capacity}
}

// Len returns the number of archived solutions.
func (f *Front) Len() int { return len(f.sols) }

// Solutions returns the archive sorted by ascending makespan. The
// schedules are the archive's own copies; callers must not mutate them.
func (f *Front) Solutions() []Solution {
	out := append([]Solution(nil), f.sols...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.Makespan != out[j].Obj.Makespan {
			return out[i].Obj.Makespan < out[j].Obj.Makespan
		}
		return out[i].Obj.Flowtime < out[j].Obj.Flowtime
	})
	return out
}

// Add offers a solution to the archive. It returns true if the solution
// was admitted (i.e. it is not dominated by, nor duplicates, any archived
// solution). The offered schedule is cloned on admission.
func (f *Front) Add(s schedule.Schedule, obj Vec) bool {
	keep := f.sols[:0]
	for _, cur := range f.sols {
		if cur.Obj.Dominates(obj) || cur.Obj.Equal(obj) {
			return false // offered solution adds nothing
		}
		if !obj.Dominates(cur.Obj) {
			keep = append(keep, cur)
		}
	}
	f.sols = keep
	f.sols = append(f.sols, Solution{Schedule: s.Clone(), Obj: obj})
	if len(f.sols) > f.cap {
		f.evictMostCrowded()
	}
	return true
}

// AddState offers an evaluated state.
func (f *Front) AddState(st *schedule.State) bool {
	return f.Add(st.ScheduleView(), Vec{Makespan: st.Makespan(), Flowtime: st.Flowtime()})
}

// evictMostCrowded removes the interior solution with the smallest
// crowding distance (extreme points have infinite distance and survive).
func (f *Front) evictMostCrowded() {
	d := f.crowding()
	worst, worstD := -1, math.Inf(1)
	for i, dist := range d {
		if dist < worstD {
			worst, worstD = i, dist
		}
	}
	if worst < 0 {
		worst = len(f.sols) - 1
	}
	f.sols[worst] = f.sols[len(f.sols)-1]
	f.sols = f.sols[:len(f.sols)-1]
}

// crowding computes the NSGA-II crowding distance of each archived
// solution (indexed as in f.sols).
func (f *Front) crowding() []float64 {
	n := len(f.sols)
	d := make([]float64, n)
	if n <= 2 {
		for i := range d {
			d[i] = math.Inf(1)
		}
		return d
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	addDim := func(val func(Vec) float64) {
		sort.Slice(idx, func(a, b int) bool { return val(f.sols[idx[a]].Obj) < val(f.sols[idx[b]].Obj) })
		lo, hi := val(f.sols[idx[0]].Obj), val(f.sols[idx[n-1]].Obj)
		d[idx[0]], d[idx[n-1]] = math.Inf(1), math.Inf(1)
		span := hi - lo
		if span == 0 {
			return
		}
		for k := 1; k < n-1; k++ {
			d[idx[k]] += (val(f.sols[idx[k+1]].Obj) - val(f.sols[idx[k-1]].Obj)) / span
		}
	}
	addDim(func(v Vec) float64 { return v.Makespan })
	addDim(func(v Vec) float64 { return v.Flowtime })
	return d
}

// Hypervolume returns the dominated area relative to a reference point
// (both coordinates must dominate every archived solution, i.e. be worse).
// It is the standard bi-objective front quality indicator; larger is
// better.
func (f *Front) Hypervolume(ref Vec) float64 {
	sols := f.Solutions()
	hv := 0.0
	prevMS := ref.Makespan
	// Iterate right-to-left in makespan: each solution contributes a
	// rectangle from its flowtime down to the reference.
	for i := len(sols) - 1; i >= 0; i-- {
		s := sols[i].Obj
		if s.Makespan > ref.Makespan || s.Flowtime > ref.Flowtime {
			continue // outside the reference box
		}
		hv += (prevMS - s.Makespan) * (ref.Flowtime - s.Flowtime)
		prevMS = s.Makespan
	}
	return hv
}

// Coverage returns the fraction of solutions in g that are dominated by
// (or equal to) at least one solution of f — the C-metric C(f, g).
func Coverage(f, g *Front) float64 {
	if g.Len() == 0 {
		return 0
	}
	covered := 0
	for _, b := range g.sols {
		for _, a := range f.sols {
			if a.Obj.Dominates(b.Obj) || a.Obj.Equal(b.Obj) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(g.Len())
}
