package pareto

import (
	"fmt"
	"time"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/operators"
	"gridcma/internal/rng"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

// LambdaSweep runs the paper's scalarised cMA across a grid of λ values
// and merges every run's best solution (plus its observed incumbents)
// into one non-dominated front. It is the minimal-change multi-objective
// extension: the single-objective engine is reused verbatim.
//
// lambdas must be non-empty, each within [0, 1]; budget bounds each
// individual cMA run.
func LambdaSweep(in *etc.Instance, base cma.Config, lambdas []float64, budget run.Budget, seed uint64, capacity int) (*Front, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("pareto: empty lambda grid")
	}
	front := NewFront(capacity)
	for i, l := range lambdas {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("pareto: lambda %v outside [0,1]", l)
		}
		cfg := base
		cfg.Objective = schedule.Objective{Lambda: l}
		sched, err := cma.New(cfg)
		if err != nil {
			return nil, err
		}
		res := sched.Run(in, budget, seed+uint64(i), nil)
		st := schedule.NewState(in, res.Best)
		front.AddState(st)
	}
	return front, nil
}

// MOConfig parameterises the cellular multi-objective memetic algorithm.
type MOConfig struct {
	// Base supplies the cellular structure and operators; its Objective
	// is used only inside the local search (a scalarising helper), while
	// replacement is dominance-based.
	Base cma.Config
	// ArchiveCapacity bounds the external non-dominated archive.
	ArchiveCapacity int
}

// DefaultMOConfig returns the paper-tuned cellular structure with a
// 100-solution archive.
func DefaultMOConfig() MOConfig {
	return MOConfig{Base: cma.DefaultConfig(), ArchiveCapacity: 100}
}

// MOResult is the outcome of a multi-objective run.
type MOResult struct {
	Front      *Front
	Iterations int
	Evals      int64
	Elapsed    time.Duration
}

// MOCellMA is a cellular multi-objective memetic algorithm in the spirit
// of MOCell: the toroidal population and neighborhood-local variation of
// the paper's cMA, with dominance-based cell replacement and an external
// crowding-pruned archive. A cell is replaced when the offspring
// dominates it, or — to keep selection pressure under incomparability —
// when the offspring wins on the cell's own scalarised fitness while not
// being dominated.
type MOCellMA struct {
	cfg MOConfig
}

// NewMOCellMA validates the configuration.
func NewMOCellMA(cfg MOConfig) (*MOCellMA, error) {
	if err := cfg.Base.Validate(); err != nil {
		return nil, err
	}
	if cfg.ArchiveCapacity <= 0 {
		return nil, fmt.Errorf("pareto: archive capacity %d", cfg.ArchiveCapacity)
	}
	return &MOCellMA{cfg: cfg}, nil
}

// Name identifies the algorithm.
func (m *MOCellMA) Name() string { return "MOCellMA" }

// Run executes the multi-objective search within budget.
func (m *MOCellMA) Run(in *etc.Instance, budget run.Budget, seed uint64) MOResult {
	if !budget.Bounded() {
		panic("pareto: unbounded budget")
	}
	cfg := m.cfg.Base
	r := rng.New(seed)
	// Reuse the single-objective engine's building blocks directly.
	grid, nb, recOrd, mutOrd := cellSetup(cfg, r)

	// Population init mirrors the cMA: seed + perturbations, local search.
	n := grid
	pop := make([]*schedule.State, n)
	var base schedule.Schedule
	if cfg.SeedHeuristic != nil {
		base = cfg.SeedHeuristic(in)
	}
	frac := cfg.PerturbFraction
	if frac == 0 {
		frac = 0.3
	}
	var evals int64
	for i := range pop {
		var s schedule.Schedule
		switch {
		case base != nil && i == 0:
			s = base.Clone()
		case base != nil:
			s = base.Clone()
			schedule.Perturb(s, in, r, frac)
		default:
			s = schedule.NewRandom(in, r)
		}
		pop[i] = schedule.NewState(in, s)
		cfg.LocalSearch.Improve(pop[i], cfg.Objective, cfg.LSIterations, r)
		evals++
	}
	front := NewFront(m.cfg.ArchiveCapacity)
	for _, st := range pop {
		front.AddState(st)
	}

	obj := func(st *schedule.State) Vec { return Vec{Makespan: st.Makespan(), Flowtime: st.Flowtime()} }
	scal := cfg.Objective
	fitAt := func(i int) float64 { return scal.Of(pop[i]) }

	child := make(schedule.Schedule, in.Jobs)
	scratch := schedule.NewState(in, pop[0].Schedule())

	replace := func(c int) {
		o, cur := obj(scratch), obj(pop[c])
		switch {
		case o.Dominates(cur):
			pop[c].CopyFrom(scratch)
		case !cur.Dominates(o) && scal.Of(scratch) < scal.Of(pop[c]):
			pop[c].CopyFrom(scratch)
		default:
			return
		}
		front.AddState(scratch)
	}

	start := time.Now()
	iter := 0
	for !budget.Done(iter, start) {
		for k := 0; k < cfg.Recombinations; k++ {
			c := recOrd.Next()
			sel := operators.SelectDistinct(cfg.Selector, cfg.SolutionsToRecombine, nb[c], fitAt, r)
			p1, p2 := bestTwo(sel, fitAt)
			cfg.Crossover.Cross(pop[p1].ScheduleView(), pop[p2].ScheduleView(), child, r)
			scratch.SetSchedule(child)
			cfg.LocalSearch.Improve(scratch, scal, cfg.LSIterations, r)
			evals++
			replace(c)
		}
		for k := 0; k < cfg.Mutations; k++ {
			c := mutOrd.Next()
			scratch.CopyFrom(pop[c])
			cfg.Mutator.Mutate(scratch, r)
			cfg.LocalSearch.Improve(scratch, scal, cfg.LSIterations, r)
			evals++
			replace(c)
		}
		iter++
	}
	return MOResult{Front: front, Iterations: iter, Evals: evals, Elapsed: time.Since(start)}
}

// bestTwo returns the two fittest indices of sel under fit.
func bestTwo(sel []int, fit func(int) float64) (int, int) {
	p1, p2 := sel[0], sel[1]
	if fit(p2) < fit(p1) {
		p1, p2 = p2, p1
	}
	for _, s := range sel[2:] {
		switch {
		case fit(s) < fit(p1):
			p2, p1 = p1, s
		case fit(s) < fit(p2):
			p2 = s
		}
	}
	return p1, p2
}

// cellSetup builds the cellular plumbing from a cMA config.
func cellSetup(cfg cma.Config, r *rng.Source) (size int, neighborhoods [][]int, recOrd, mutOrd interface{ Next() int }) {
	return cma.CellComponents(cfg, r)
}
