package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"gridcma/internal/cma"
	"gridcma/internal/etc"
	"gridcma/internal/localsearch"
	"gridcma/internal/run"
	"gridcma/internal/schedule"
)

func TestDominates(t *testing.T) {
	a := Vec{Makespan: 1, Flowtime: 1}
	b := Vec{Makespan: 2, Flowtime: 2}
	c := Vec{Makespan: 1, Flowtime: 2}
	d := Vec{Makespan: 2, Flowtime: 1}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Error("strict dominance wrong")
	}
	if !a.Dominates(c) || !a.Dominates(d) {
		t.Error("weak-strict dominance wrong")
	}
	if c.Dominates(d) || d.Dominates(c) {
		t.Error("incomparable points must not dominate")
	}
	if a.Dominates(a) {
		t.Error("a point must not dominate itself")
	}
}

func TestDominanceProperties(t *testing.T) {
	f := func(m1, f1, m2, f2 uint16) bool {
		a := Vec{Makespan: float64(m1), Flowtime: float64(f1)}
		b := Vec{Makespan: float64(m2), Flowtime: float64(f2)}
		// Antisymmetry: both cannot dominate each other.
		return !(a.Dominates(b) && b.Dominates(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sched(n int) schedule.Schedule { return make(schedule.Schedule, n) }

func TestFrontKeepsNonDominated(t *testing.T) {
	f := NewFront(10)
	if !f.Add(sched(4), Vec{10, 100}) {
		t.Fatal("first add rejected")
	}
	if !f.Add(sched(4), Vec{20, 50}) {
		t.Fatal("incomparable add rejected")
	}
	if f.Add(sched(4), Vec{25, 60}) {
		t.Fatal("dominated add accepted")
	}
	if f.Add(sched(4), Vec{10, 100}) {
		t.Fatal("duplicate add accepted")
	}
	if !f.Add(sched(4), Vec{5, 40}) {
		t.Fatal("dominating add rejected")
	}
	// {5,40} dominates both previous points: front collapses to 1.
	if f.Len() != 1 {
		t.Fatalf("front size %d, want 1", f.Len())
	}
}

func TestFrontSolutionsSorted(t *testing.T) {
	f := NewFront(10)
	f.Add(sched(2), Vec{30, 10})
	f.Add(sched(2), Vec{10, 30})
	f.Add(sched(2), Vec{20, 20})
	sols := f.Solutions()
	for i := 1; i < len(sols); i++ {
		if sols[i].Obj.Makespan < sols[i-1].Obj.Makespan {
			t.Fatal("not sorted by makespan")
		}
	}
}

func TestFrontCapacityEvictsInterior(t *testing.T) {
	f := NewFront(3)
	f.Add(sched(2), Vec{1, 100})
	f.Add(sched(2), Vec{100, 1})
	f.Add(sched(2), Vec{50, 50})
	f.Add(sched(2), Vec{30, 70}) // 4th point: one interior point must go
	if f.Len() != 3 {
		t.Fatalf("front size %d, want 3", f.Len())
	}
	// Extremes must survive crowding eviction.
	sols := f.Solutions()
	if !sols[0].Obj.Equal(Vec{1, 100}) || !sols[len(sols)-1].Obj.Equal(Vec{100, 1}) {
		t.Fatalf("extremes evicted: %+v", sols)
	}
}

func TestFrontMutualNonDominationInvariant(t *testing.T) {
	f := NewFront(20)
	r := func(seed uint64) func() float64 {
		x := seed
		return func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x>>40) / float64(1<<24)
		}
	}(7)
	for k := 0; k < 300; k++ {
		f.Add(sched(2), Vec{Makespan: r() * 100, Flowtime: r() * 100})
	}
	sols := f.Solutions()
	for i := range sols {
		for j := range sols {
			if i != j && sols[i].Obj.Dominates(sols[j].Obj) {
				t.Fatalf("archived %v dominates archived %v", sols[i].Obj, sols[j].Obj)
			}
		}
	}
	if f.Len() > 20 {
		t.Fatal("capacity exceeded")
	}
}

func TestFrontClonesSchedules(t *testing.T) {
	f := NewFront(4)
	s := schedule.Schedule{1, 2, 3}
	f.Add(s, Vec{1, 1})
	s[0] = 99
	if f.Solutions()[0].Schedule[0] == 99 {
		t.Fatal("front aliases caller's schedule")
	}
}

func TestHypervolume(t *testing.T) {
	f := NewFront(10)
	f.Add(sched(2), Vec{2, 6})
	f.Add(sched(2), Vec{4, 4})
	f.Add(sched(2), Vec{6, 2})
	ref := Vec{10, 10}
	// Rectangles right-to-left: (10-6)*(10-2)=32, (6-4)*(10-4)=12, (4-2)*(10-6)=8 -> 52.
	if hv := f.Hypervolume(ref); math.Abs(hv-52) > 1e-9 {
		t.Fatalf("hypervolume %v, want 52", hv)
	}
	// A point outside the reference box contributes nothing.
	g := NewFront(10)
	g.Add(sched(2), Vec{20, 1})
	if hv := g.Hypervolume(ref); hv != 0 {
		t.Fatalf("outside point contributed %v", hv)
	}
}

func TestCoverage(t *testing.T) {
	a := NewFront(10)
	a.Add(sched(2), Vec{1, 1})
	b := NewFront(10)
	b.Add(sched(2), Vec{2, 2})
	b.Add(sched(2), Vec{0.5, 3}) // not dominated by a
	if c := Coverage(a, b); c != 0.5 {
		t.Fatalf("coverage %v, want 0.5", c)
	}
	if c := Coverage(b, a); c != 0 {
		t.Fatalf("reverse coverage %v, want 0", c)
	}
	if Coverage(a, NewFront(4)) != 0 {
		t.Fatal("empty g should give 0")
	}
}

func testInstance() *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 5, Jobs: 96, Machs: 8})
}

func fastBase() cma.Config {
	cfg := cma.DefaultConfig()
	cfg.LocalSearch = localsearch.SampledLMCTS{Samples: 16}
	cfg.LSIterations = 2
	return cfg
}

func TestLambdaSweepProducesFront(t *testing.T) {
	in := testInstance()
	front, err := LambdaSweep(in, fastBase(), []float64{0, 0.25, 0.5, 0.75, 1},
		run.Budget{MaxIterations: 10}, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	// The two objectives are strongly correlated on this benchmark (the
	// paper optimises them jointly for that reason), so the merged front
	// may legitimately collapse to few points — but never be empty, and
	// every archived schedule must be valid and mutually non-dominated.
	if front.Len() < 1 {
		t.Fatal("empty front")
	}
	sols := front.Solutions()
	for i, s := range sols {
		if err := s.Schedule.Validate(in); err != nil {
			t.Fatal(err)
		}
		for j := range sols {
			if i != j && sols[i].Obj.Dominates(sols[j].Obj) {
				t.Fatal("front not mutually non-dominated")
			}
		}
	}
}

func TestLambdaSweepValidation(t *testing.T) {
	in := testInstance()
	if _, err := LambdaSweep(in, fastBase(), nil, run.Budget{MaxIterations: 1}, 1, 10); err == nil {
		t.Error("empty lambda grid accepted")
	}
	if _, err := LambdaSweep(in, fastBase(), []float64{2}, run.Budget{MaxIterations: 1}, 1, 10); err == nil {
		t.Error("lambda out of range accepted")
	}
}

func TestMOCellMARunsAndImproves(t *testing.T) {
	in := testInstance()
	cfg := DefaultMOConfig()
	cfg.Base = fastBase()
	m, err := NewMOCellMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(in, run.Budget{MaxIterations: 15}, 3)
	if res.Front.Len() == 0 {
		t.Fatal("empty front")
	}
	if res.Iterations != 15 || res.Evals == 0 {
		t.Fatalf("iterations %d evals %d", res.Iterations, res.Evals)
	}
	// The front must dominate a random schedule comfortably.
	rand := schedule.NewState(in, make(schedule.Schedule, in.Jobs)) // all on machine 0: terrible
	bad := Vec{Makespan: rand.Makespan(), Flowtime: rand.Flowtime()}
	dominated := false
	for _, s := range res.Front.Solutions() {
		if s.Obj.Dominates(bad) {
			dominated = true
			break
		}
	}
	if !dominated {
		t.Error("no front solution dominates the all-on-one-machine schedule")
	}
}

func TestMOCellMAValidation(t *testing.T) {
	cfg := DefaultMOConfig()
	cfg.ArchiveCapacity = 0
	if _, err := NewMOCellMA(cfg); err == nil {
		t.Error("zero capacity accepted")
	}
	cfg = DefaultMOConfig()
	cfg.Base.Width = 0
	if _, err := NewMOCellMA(cfg); err == nil {
		t.Error("bad base config accepted")
	}
}

func TestMOCellMADeterministic(t *testing.T) {
	in := testInstance()
	cfg := DefaultMOConfig()
	cfg.Base = fastBase()
	m, _ := NewMOCellMA(cfg)
	a := m.Run(in, run.Budget{MaxIterations: 8}, 7)
	b := m.Run(in, run.Budget{MaxIterations: 8}, 7)
	as, bs := a.Front.Solutions(), b.Front.Solutions()
	if len(as) != len(bs) {
		t.Fatal("front sizes differ across identical runs")
	}
	for i := range as {
		if !as[i].Obj.Equal(bs[i].Obj) {
			t.Fatal("front contents differ across identical runs")
		}
	}
}

func TestMOCellMABeatsSingleLambdaOnHypervolume(t *testing.T) {
	// The dominance-based search should cover the objective space at
	// least as well as a single scalarised run archived into a front.
	in := testInstance()
	cfg := DefaultMOConfig()
	cfg.Base = fastBase()
	m, _ := NewMOCellMA(cfg)
	mo := m.Run(in, run.Budget{MaxIterations: 20}, 11)

	single, err := LambdaSweep(in, fastBase(), []float64{0.75}, run.Budget{MaxIterations: 20}, 11, 50)
	if err != nil {
		t.Fatal(err)
	}
	ref := Vec{Makespan: 1e9, Flowtime: 1e12}
	if mo.Front.Hypervolume(ref) < single.Hypervolume(ref) {
		t.Errorf("MO front hypervolume %v below single-λ %v",
			mo.Front.Hypervolume(ref), single.Hypervolume(ref))
	}
}

func TestUnboundedBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m, _ := NewMOCellMA(DefaultMOConfig())
	m.Run(testInstance(), run.Budget{}, 1)
}
