package transport

import (
	"bufio"
	"context"
	"net"
	"sync"
	"sync/atomic"
)

// Server is Serve with a graceful shutdown: it tracks every accepted
// connection and whether it is mid-call, so Shutdown can close the
// listener, drop idle connections immediately, and let in-flight RPCs
// finish instead of dying mid-frame. cmd/islandd fronts its worker with
// one so SIGTERM drains segment calls rather than tearing the socket
// out from under a coordinator.
type Server struct {
	h Handler

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]*srvConn
	wg       sync.WaitGroup
	draining atomic.Bool
}

type srvConn struct {
	c    net.Conn
	busy atomic.Bool // a request is being handled right now
}

// NewServer wraps h for serving with drain support.
func NewServer(h Handler) *Server {
	return &Server{h: h, conns: make(map[net.Conn]*srvConn)}
}

// Serve accepts and serves connections (keepalives armed) until the
// listener closes. A close triggered by Shutdown returns nil; any other
// accept error is returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		enableKeepAlive(conn)
		sc := &srvConn{c: conn}
		s.mu.Lock()
		if s.draining.Load() {
			// Shutdown won the race between Accept and tracking: refuse.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = sc
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(sc)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serveConn is ServeConn with per-request busy tracking and a drain
// check between calls: once Shutdown has been requested, the connection
// closes at the next request boundary instead of accepting more work.
func (s *Server) serveConn(sc *srvConn) {
	defer sc.c.Close()
	br := bufio.NewReader(sc.c)
	bw := bufio.NewWriter(sc.c)
	var scratch []byte
	for {
		req, err := readRequest(br)
		if err != nil {
			return
		}
		if s.draining.Load() {
			// The peer's call raced the drain; a vanished connection is a
			// retryable transport error on its side, unlike a half-written
			// frame.
			return
		}
		sc.busy.Store(true)
		resp, herr := s.h.Handle(context.Background(), req)
		if herr != nil {
			resp = &Response{ID: req.ID, Err: herr.Error()}
		}
		if resp.ID == 0 {
			resp.ID = req.ID
		}
		scratch, err = writeResponse(bw, resp, scratch)
		sc.busy.Store(false)
		if err != nil {
			return
		}
		if s.draining.Load() {
			return
		}
	}
}

// Shutdown drains the server: the listener closes (no new connections),
// idle connections are dropped, and in-flight calls get until ctx's
// deadline to finish before their connections are force-closed. Returns
// ctx.Err() if the deadline expired with calls still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c, sc := range s.conns {
		if !sc.busy.Load() {
			c.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
