package transport

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

// pingHandler answers pings; an optional gate blocks each call until
// released so tests can hold a call in flight.
type pingHandler struct {
	mu    sync.Mutex
	gate  chan struct{}
	calls int
}

func (h *pingHandler) Handle(ctx context.Context, req *Request) (*Response, error) {
	h.mu.Lock()
	h.calls++
	gate := h.gate
	h.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return &Response{ID: req.ID}, nil
}

func (h *pingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls
}

// TestKeepAliveEnabled: dialed and accepted TCP connections get
// keepalives armed; non-TCP conns are tolerated.
func TestKeepAliveEnabled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !enableKeepAlive(c) {
		t.Error("enableKeepAlive failed on a dialed TCP conn")
	}
	srv := <-accepted
	defer srv.Close()
	if !enableKeepAlive(srv) {
		t.Error("enableKeepAlive failed on an accepted TCP conn")
	}
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	if enableKeepAlive(p1) {
		t.Error("enableKeepAlive claimed success on a net.Pipe conn")
	}
}

// TestIdleConnectionSurvives: a healthy connection left idle between
// calls keeps working — keepalives must detect dead peers, not kill
// live-but-quiet ones.
func TestIdleConnectionSurvives(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &pingHandler{}
	srv := NewServer(h)
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Call(ctx, &Request{ID: 1, Kind: KindPing}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	time.Sleep(250 * time.Millisecond) // idle gap
	if _, err := c.Call(ctx, &Request{ID: 2, Kind: KindPing}); err != nil {
		t.Fatalf("call after idle gap: %v", err)
	}
	if h.count() != 2 {
		t.Fatalf("handler saw %d calls, want 2", h.count())
	}
}

// TestServerDrainsInFlightCall: Shutdown lets a call already being
// handled finish and deliver its response, while refusing new work.
func TestServerDrainsInFlightCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	h := &pingHandler{gate: gate}
	srv := NewServer(h)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	callDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{ID: 7, Kind: KindPing})
		callDone <- err
	}()
	// Wait until the handler holds the call.
	for i := 0; h.count() == 0 && i < 200; i++ {
		time.Sleep(time.Millisecond)
	}
	if h.count() == 0 {
		t.Fatal("call never reached the handler")
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown close the listener
	close(gate)                       // release the in-flight call

	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call lost during drain: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v after drain, want nil", err)
	}
	// New connections are refused after the drain.
	if _, err := Dial(ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServerDropsIdleConnsOnShutdown: a connection with no call in
// flight is closed immediately rather than holding the drain open.
func TestServerDropsIdleConnsOnShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &pingHandler{}
	srv := NewServer(h)
	go srv.Serve(ln)

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), &Request{ID: 1, Kind: KindPing}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with only an idle conn: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("idle-conn shutdown took %v", d)
	}
}
