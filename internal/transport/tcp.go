package transport

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is the TCP JSONL transport: one connection, one in-flight call at
// a time (the coordinator serialises per worker), each message framed as
// a JSON header line plus an AppendPops payload line. Any I/O error —
// including a deadline from the caller's context — poisons the stream
// mid-frame, so the connection closes and the supervisor redials; that
// maps a lost worker onto exactly the same Client behaviour as a killed
// Local.
type Conn struct {
	mu      sync.Mutex
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch []byte
	closed  atomic.Bool
}

// keepAlivePeriod is the TCP keepalive probe interval on every dialed
// and accepted transport connection. Coordinator↔worker and
// primary↔follower links sit idle between rounds for unbounded time; a
// half-open peer (yanked cable, frozen VM) would otherwise only be
// noticed at the next write's timeout. 30s detects it within about a
// minute without measurable probe traffic.
const keepAlivePeriod = 30 * time.Second

// enableKeepAlive turns on TCP keepalive probing for c, reporting
// whether it took effect (false for non-TCP conns such as net.Pipe).
func enableKeepAlive(c net.Conn) bool {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return false
	}
	if tc.SetKeepAlive(true) != nil {
		return false
	}
	return tc.SetKeepAlivePeriod(keepAlivePeriod) == nil
}

// Dial connects to an islandd worker or a replication primary, with TCP
// keepalives armed so a half-open peer is detected on idle links.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout, KeepAlive: keepAlivePeriod}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	enableKeepAlive(c)
	return NewConn(c), nil
}

// NewConn wraps an established connection (test harnesses use net.Pipe).
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// Call sends req and reads the matching response. The context deadline is
// applied to the whole exchange via the socket deadline.
func (c *Conn) Call(ctx context.Context, req *Request) (*Response, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if d, ok := ctx.Deadline(); ok {
		c.c.SetDeadline(d)
	} else {
		c.c.SetDeadline(time.Time{})
	}
	if err := c.writeRequest(req); err != nil {
		c.poison()
		return nil, err
	}
	resp, err := c.readResponse()
	if err != nil {
		c.poison()
		return nil, err
	}
	if resp.ID != req.ID {
		c.poison()
		return nil, fmt.Errorf("transport: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// poison closes the underlying socket after a mid-stream failure.
func (c *Conn) poison() {
	c.closed.Store(true)
	c.c.Close()
}

// Close implements Client.
func (c *Conn) Close() error {
	c.closed.Store(true)
	return c.c.Close()
}

func (c *Conn) writeRequest(req *Request) error {
	hdr, err := json.Marshal(req)
	if err != nil {
		return err
	}
	if _, err := c.bw.Write(hdr); err != nil {
		return err
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		return err
	}
	var payload []byte
	if req.Seg != nil {
		payload = AppendPops(c.scratch[:0], req.Seg.Pop)
	} else {
		payload = AppendPops(c.scratch[:0], nil)
	}
	c.scratch = payload
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	if err := c.bw.WriteByte('\n'); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Conn) readResponse() (*Response, error) {
	hdr, err := readLine(c.br)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(hdr, &resp); err != nil {
		return nil, fmt.Errorf("transport: response header: %w", err)
	}
	payload, err := readLine(c.br)
	if err != nil {
		return nil, err
	}
	pops, err := ParsePops(payload)
	if err != nil {
		return nil, err
	}
	if resp.Seg != nil {
		resp.Seg.Pop = pops
	}
	return &resp, nil
}

func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return line[:len(line)-1], nil
}

// Serve accepts connections until the listener closes, serving each on
// its own goroutine with keepalives armed. It returns the accept error
// (net.ErrClosed on a clean shutdown). For drain-on-shutdown semantics
// use Server.
func Serve(ln net.Listener, h Handler) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		enableKeepAlive(conn)
		go ServeConn(conn, h)
	}
}

// readRequest reads one framed request (header line + population
// payload line). io.EOF before the header means the peer closed cleanly
// between calls.
func readRequest(br *bufio.Reader) (*Request, error) {
	hdr, err := readLine(br)
	if err != nil {
		return nil, err
	}
	var req Request
	if err := json.Unmarshal(hdr, &req); err != nil {
		return nil, fmt.Errorf("transport: request header: %w", err)
	}
	payload, err := readLine(br)
	if err != nil {
		return nil, err
	}
	pops, err := ParsePops(payload)
	if err != nil {
		return nil, err
	}
	if req.Seg != nil {
		req.Seg.Pop = pops
	}
	return &req, nil
}

// writeResponse frames and flushes one response, returning the reusable
// payload scratch buffer.
func writeResponse(bw *bufio.Writer, resp *Response, scratch []byte) ([]byte, error) {
	hdrOut, err := json.Marshal(resp)
	if err != nil {
		return scratch, err
	}
	if _, err := bw.Write(hdrOut); err != nil {
		return scratch, err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return scratch, err
	}
	if resp.Seg != nil {
		scratch = AppendPops(scratch[:0], resp.Seg.Pop)
	} else {
		scratch = AppendPops(scratch[:0], nil)
	}
	if _, err := bw.Write(scratch); err != nil {
		return scratch, err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return scratch, err
	}
	return scratch, bw.Flush()
}

// ServeConn answers requests on one connection until EOF or error. The
// worker side of the TCP transport; cmd/islandd and the tests share it.
func ServeConn(conn net.Conn, h Handler) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		req, err := readRequest(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, herr := h.Handle(context.Background(), req)
		if herr != nil {
			resp = &Response{ID: req.ID, Err: herr.Error()}
		}
		if resp.ID == 0 {
			resp.ID = req.ID
		}
		if scratch, err = writeResponse(bw, resp, scratch); err != nil {
			return err
		}
	}
}
