package transport

import (
	"encoding/json"
	"fmt"
	"strconv"

	"gridcma/internal/schedule"
)

// AppendPops appends the canonical JSON encoding of a population — an
// array of schedules, each an array of machine assignments — to dst and
// returns the extended slice. This is the dominant payload of every
// segment call (populations dwarf the header by orders of magnitude), so
// it is hand-rolled append-style like the WAL's record encoder: zero
// allocations once dst has capacity, pinned by BenchmarkMigrantEncode
// under the CI allocation guard.
func AppendPops(dst []byte, pops []schedule.Schedule) []byte {
	dst = append(dst, '[')
	for i, p := range pops {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '[')
		for k, m := range p {
			if k > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(m), 10)
		}
		dst = append(dst, ']')
	}
	return append(dst, ']')
}

// ParsePops decodes an AppendPops payload line.
func ParsePops(line []byte) ([]schedule.Schedule, error) {
	var raw [][]int
	if err := json.Unmarshal(line, &raw); err != nil {
		return nil, fmt.Errorf("transport: population payload: %w", err)
	}
	if len(raw) == 0 {
		return nil, nil
	}
	out := make([]schedule.Schedule, len(raw))
	for i, r := range raw {
		out[i] = schedule.Schedule(r)
	}
	return out, nil
}
