package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"gridcma/internal/schedule"
)

// echoHandler returns a canned segment response carrying the request's
// population back, so round-trip tests can check byte fidelity end to end.
func echoHandler() Handler {
	return HandlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		if req.Kind == KindPing {
			return &Response{ID: req.ID}, nil
		}
		return &Response{
			ID: req.ID,
			Seg: &SegmentResponse{
				Fitness:  3.25,
				Makespan: 17,
				Flowtime: 101.5,
				Evals:    42,
				Best:     schedule.Schedule{2, 0, 1},
				Pop:      req.Seg.Pop,
			},
		}, nil
	})
}

func testPops() []schedule.Schedule {
	return []schedule.Schedule{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 1, 1, 1},
	}
}

func TestAppendParsePopsRoundTrip(t *testing.T) {
	for _, pops := range [][]schedule.Schedule{nil, {}, testPops(), {{}}} {
		line := AppendPops(nil, pops)
		got, err := ParsePops(line)
		if err != nil {
			t.Fatalf("ParsePops(%q): %v", line, err)
		}
		want := pops
		if len(want) == 0 {
			want = nil
		}
		// Normalise empty inner schedules: JSON cannot distinguish nil
		// from empty, and the engine never ships empty schedules.
		if len(pops) == 1 && len(pops[0]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %v -> %q -> %v", pops, line, got)
		}
	}
}

func TestParsePopsRejectsGarbage(t *testing.T) {
	if _, err := ParsePops([]byte("{not json")); err == nil {
		t.Fatal("expected an error for malformed payload")
	}
}

func TestLocalRoundTrip(t *testing.T) {
	c := NewLocal(echoHandler())
	resp, err := c.Call(context.Background(), &Request{ID: 7, Kind: KindSegment, Seg: &SegmentRequest{Pop: testPops()}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Seg == nil || !reflect.DeepEqual(resp.Seg.Pop, testPops()) {
		t.Fatalf("bad response: %+v", resp)
	}
}

func TestLocalClosedFailsFast(t *testing.T) {
	c := NewLocal(echoHandler())
	c.Close()
	if _, err := c.Call(context.Background(), &Request{ID: 1, Kind: KindPing}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestLocalKilledMidCallLosesReply(t *testing.T) {
	var c *Local
	h := HandlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		c.Close() // the worker dies while computing
		return &Response{ID: req.ID}, nil
	})
	c = NewLocal(h)
	if _, err := c.Call(context.Background(), &Request{ID: 1, Kind: KindPing}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed (reply must die with the worker)", err)
	}
}

// startServer serves h on a loopback listener.
func startServer(t *testing.T, h Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, h)
	return ln.Addr().String()
}

func TestTCPRoundTrip(t *testing.T) {
	addr := startServer(t, echoHandler())
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for id := uint64(1); id <= 3; id++ {
		resp, err := c.Call(context.Background(), &Request{ID: id, Kind: KindSegment, Seg: &SegmentRequest{Instance: "x", Seed: 9, Pop: testPops()}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != id {
			t.Fatalf("response id %d for request %d", resp.ID, id)
		}
		if !reflect.DeepEqual(resp.Seg.Pop, testPops()) {
			t.Fatalf("population mangled in transit: %v", resp.Seg.Pop)
		}
		if resp.Seg.Fitness != 3.25 || resp.Seg.Evals != 42 {
			t.Fatalf("scalar fields mangled: %+v", resp.Seg)
		}
	}
}

func TestTCPHandlerErrorBecomesResponseErr(t *testing.T) {
	addr := startServer(t, HandlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		return nil, fmt.Errorf("boom %d", req.ID)
	}))
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(context.Background(), &Request{ID: 5, Kind: KindPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "boom 5" {
		t.Fatalf("handler error not carried: %+v", resp)
	}
}

func TestTCPDeadlinePoisonsConnection(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := startServer(t, HandlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		<-block
		return &Response{ID: req.ID}, nil
	}))
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, &Request{ID: 1, Kind: KindPing}); err == nil {
		t.Fatal("expected a deadline error")
	}
	// The stream died mid-frame: every later call must fail fast.
	if _, err := c.Call(context.Background(), &Request{ID: 2, Kind: KindPing}); !errors.Is(err, ErrClosed) {
		t.Fatalf("poisoned connection still accepted a call: %v", err)
	}
}

func TestTCPPartialFrameIsUnexpectedEOF(t *testing.T) {
	cli, srv := net.Pipe()
	done := make(chan error, 1)
	go func() {
		// Drain the request (net.Pipe is unbuffered), answer with half a
		// header, then die.
		go io.Copy(io.Discard, srv)
		srv.Write([]byte(`{"id":1`))
		srv.Close()
	}()
	c := NewConn(cli)
	defer c.Close()
	go func() {
		_, err := c.Call(context.Background(), &Request{ID: 1, Kind: KindPing})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error on a torn frame")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("torn frame hung the call")
	}
}

// BenchmarkMigrantEncode guards the migration hot path's encoder:
// appending a full population payload must not allocate once the buffer
// has grown.
func BenchmarkMigrantEncode(b *testing.B) {
	pops := make([]schedule.Schedule, 16)
	for i := range pops {
		s := make(schedule.Schedule, 512)
		for j := range s {
			s[j] = (i * j) % 16
		}
		pops[i] = s
	}
	buf := AppendPops(nil, pops)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendPops(buf[:0], pops)
	}
	_ = buf
}
