// Package transport is the pluggable RPC layer of the distributed island
// engine (internal/island/dist): a coordinator calls workers through the
// Client interface, workers serve through Handler, and the two concrete
// transports — the in-process Local client for tests and single-machine
// determinism work, and the TCP JSONL connection for real multi-process
// runs (cmd/islandd) — carry the exact same protocol, so a run's result
// can never depend on which one it rode over.
//
// The protocol is deliberately tiny: a ping (liveness) and a segment
// call. A segment request is a pure function description — instance
// spec, base cMA configuration, seed, iteration count, population — and
// workers are stateless between calls, which is what makes the
// robustness story cheap: retrying a call, delivering it twice, or
// replaying it against a freshly restarted worker all produce the same
// bytes.
//
// Wire format (TCP): each message is two newline-terminated parts — a
// JSON header (everything but the population) and a population payload
// line encoded by AppendPops, the allocation-free encoder shared with
// the benchmarks' migration hot path. Responses mirror the shape.
package transport

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"

	"gridcma/internal/config"
	"gridcma/internal/schedule"
)

// Call kinds.
const (
	KindPing    = "ping"
	KindSegment = "segment"
	// KindReplPull asks a replication primary for the WAL events after a
	// sequence number; KindReplSnapshot bootstraps a follower too far
	// behind for the log alone. Payloads ride Request.Repl/Response.Repl
	// (schemas in internal/daemon), keeping this package free of daemon
	// types.
	KindReplPull     = "repl-pull"
	KindReplSnapshot = "repl-snapshot"
)

// Errors shared by the transports.
var (
	// ErrClosed: the client was closed (or its worker killed) and cannot
	// carry calls; the supervisor must restart/redial.
	ErrClosed = errors.New("transport: client closed")
)

// SegmentRequest describes one island segment as a pure function: run
// Iters iterations of the Config cMA on the Instance, seeded with Seed,
// starting from Pop (nil = fresh mesh). Island and Round are carried for
// observability and deterministic fault keying; they do not influence
// the computation (Seed already encodes both via island.SegmentSeed).
type SegmentRequest struct {
	Instance string      `json:"instance"`
	Config   config.Spec `json:"config"`
	Island   int         `json:"island"`
	Round    int         `json:"round"`
	Iters    int         `json:"iters"`
	Seed     uint64      `json:"seed"`

	// Pop rides the frame's payload line (AppendPops), not the header.
	Pop []schedule.Schedule `json:"-"`
}

// SegmentResponse carries a segment's result and evolved population.
type SegmentResponse struct {
	Fitness  float64 `json:"fitness"`
	Makespan float64 `json:"makespan"`
	Flowtime float64 `json:"flowtime"`
	Evals    int64   `json:"evals"`

	Best schedule.Schedule `json:"best"`

	// Pop rides the payload line.
	Pop []schedule.Schedule `json:"-"`
}

// Request is one call from coordinator to worker.
type Request struct {
	ID   uint64          `json:"id"`
	Kind string          `json:"kind"`
	Seg  *SegmentRequest `json:"seg,omitempty"`
	// Repl carries the replication kinds' payload opaquely: the schemas
	// live with their only producer/consumer (internal/daemon), so the
	// transport stays a dumb pipe and adding a replication message never
	// touches the framing.
	Repl json.RawMessage `json:"repl,omitempty"`
}

// Response answers a Request. A non-empty Err is an application-level
// failure (bad instance spec, invalid config): the call reached the
// worker and deterministically cannot succeed, so callers must not
// retry it.
type Response struct {
	ID   uint64           `json:"id"`
	Err  string           `json:"err,omitempty"`
	Seg  *SegmentResponse `json:"seg,omitempty"`
	Repl json.RawMessage  `json:"repl,omitempty"`
}

// Client is the coordinator's side of a worker connection. Calls on one
// Client are serialised by the caller (the coordinator holds a per-worker
// lock); Close may race with Call.
type Client interface {
	Call(ctx context.Context, req *Request) (*Response, error)
	Close() error
}

// Handler is the worker's side: pure request → response. Implementations
// must be safe for concurrent calls.
type Handler interface {
	Handle(ctx context.Context, req *Request) (*Response, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, req *Request) (*Response, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx context.Context, req *Request) (*Response, error) {
	return f(ctx, req)
}

// Local is the in-process transport: calls invoke the handler directly
// on the caller's goroutine. It models a worker process closely enough
// for supervision tests — Kill makes every subsequent call fail with
// ErrClosed until the supervisor "restarts" the worker by building a new
// Local — while keeping failure-free runs free of real I/O, so the
// determinism contract can be tested at full speed.
type Local struct {
	h      Handler
	closed atomic.Bool
}

// NewLocal returns an open in-process client over h.
func NewLocal(h Handler) *Local { return &Local{h: h} }

// Call invokes the handler unless the client is closed or ctx is done.
func (l *Local) Call(ctx context.Context, req *Request) (*Response, error) {
	if l.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := l.h.Handle(ctx, req)
	if err != nil {
		return nil, err
	}
	if l.closed.Load() {
		// Killed mid-call: the reply is lost with the worker.
		return nil, ErrClosed
	}
	return resp, nil
}

// Close marks the client dead (idempotent). For a Local client this is
// also the kill switch chaos uses to simulate a worker crash.
func (l *Local) Close() error {
	l.closed.Store(true)
	return nil
}
