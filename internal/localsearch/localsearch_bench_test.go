package localsearch

import (
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// benchState builds a random evaluated state at the paper's benchmark
// shape (512×16).
func benchState(b *testing.B) (*schedule.State, *rng.Source) {
	b.Helper()
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1, Jobs: 512, Machs: 16})
	r := rng.New(7)
	return schedule.NewState(in, schedule.NewRandom(in, r)), r
}

// slmApplyRevert is the pre-probe formulation of SLM, kept as the
// benchmark reference: every candidate target costs two Moves (apply and
// revert) plus two full fitness reads. BenchmarkSLMProbe vs
// BenchmarkSLMApplyRevert is the headline number of the probe engine.
func slmApplyRevert(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	in := st.Instance()
	for k := 0; k < iters; k++ {
		j := r.Intn(in.Jobs)
		from := st.Assign(j)
		bestFit := o.Of(st)
		bestTo := from
		for to := 0; to < in.Machs; to++ {
			if to == from {
				continue
			}
			st.Move(j, to)
			if f := o.Of(st); f < bestFit {
				bestFit, bestTo = f, to
			}
			st.Move(j, from)
		}
		if bestTo != from {
			st.Move(j, bestTo)
		}
	}
}

// BenchmarkSLMProbe measures one steepest-local-move iteration through
// the speculative probe path (M−1 FitnessAfterMove probes, one committed
// Move at most). Must report 0 allocs/op — CI runs it with -benchtime=1x
// and fails otherwise.
func BenchmarkSLMProbe(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SLM{}.Improve(st, o, 1, r)
	}
}

// BenchmarkSLMApplyRevert is the historical 2(M−1)-Move formulation on
// the same instance shape, for direct comparison with BenchmarkSLMProbe.
func BenchmarkSLMApplyRevert(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slmApplyRevert(st, o, 1, r)
	}
}

// BenchmarkLMCTSProbe measures one LMCTS steepest-swap step (critical-
// machine scan, probe-gated commit) — the tuned method's hot loop.
func BenchmarkLMCTSProbe(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampledLMCTS{Samples: 64}.Improve(st, o, 1, r)
	}
}
