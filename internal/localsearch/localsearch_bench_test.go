package localsearch

import (
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// benchState builds a random evaluated state at the paper's benchmark
// shape (512×16).
func benchState(b *testing.B) (*schedule.State, *rng.Source) {
	b.Helper()
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1, Jobs: 512, Machs: 16})
	r := rng.New(7)
	return schedule.NewState(in, schedule.NewRandom(in, r)), r
}

// slmApplyRevert is the pre-probe formulation of SLM, kept as the
// benchmark reference: every candidate target costs two Moves (apply and
// revert) plus two full fitness reads. BenchmarkSLMScalarProbe vs
// BenchmarkSLMApplyRevert is the headline number of the probe engine;
// BenchmarkSLMSweep stacks the sweep layer's gain on top.
func slmApplyRevert(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	in := st.Instance()
	for k := 0; k < iters; k++ {
		j := r.Intn(in.Jobs)
		from := st.Assign(j)
		bestFit := o.Of(st)
		bestTo := from
		for to := 0; to < in.Machs; to++ {
			if to == from {
				continue
			}
			st.Move(j, to)
			if f := o.Of(st); f < bestFit {
				bestFit, bestTo = f, to
			}
			st.Move(j, from)
		}
		if bestTo != from {
			st.Move(j, bestTo)
		}
	}
}

// BenchmarkSLMSweep measures one steepest-local-move iteration through
// the batched sweep path (one FitnessAfterMoveSweep covering all M
// targets, one committed Move at most) — the shipped SLM. Must report 0
// allocs/op — CI runs every Probe/Sweep benchmark with -benchtime=1x and
// fails otherwise. BenchmarkSLMSweep vs BenchmarkSLMScalarProbe is the
// headline number of the sweep layer's move side.
func BenchmarkSLMSweep(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	SLM{}.Improve(st, o, 1, r) // warm the state-owned sweep buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SLM{}.Improve(st, o, 1, r)
	}
}

// BenchmarkSLMScalarProbe is the pre-sweep formulation (one scalar probe
// per target, baseline re-read per iteration), kept as the reference the
// sweep is measured against.
func BenchmarkSLMScalarProbe(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slmScalarProbe(st, o, 1, r)
	}
}

// BenchmarkSLMApplyRevert is the historical 2(M−1)-Move formulation on
// the same instance shape, for direct comparison with BenchmarkSLMProbe.
func BenchmarkSLMApplyRevert(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slmApplyRevert(st, o, 1, r)
	}
}

// BenchmarkLMCTSProbe measures one sampled LMCTS steepest-swap step
// (critical-machine scan over random partners, probe-gated commit); the
// sampled scan stays on the scalar pair query because its candidate
// order is the RNG stream itself.
func BenchmarkLMCTSProbe(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampledLMCTS{Samples: 64}.Improve(st, o, 1, r)
	}
}

// benchStateShape builds a random evaluated state of an explicit shape —
// the 2048×64 rung of the cached-scan headline benchmarks.
func benchStateShape(b *testing.B, jobs, machs int) *schedule.State {
	b.Helper()
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1, Jobs: jobs, Machs: machs})
	return schedule.NewState(in, schedule.NewRandom(in, rng.New(7)))
}

// converge drives the state to an LMCTS local optimum, the steady state
// the cached-vs-sweep benchmarks measure: every subsequent Improve call
// is one full neighborhood scan that finds nothing (and commits nothing),
// which is exactly where the event-driven cache collapses the scan to a
// fold of memoized per-machine bests while the sweep formulation re-scans
// every pair.
func converge(st *schedule.State, o schedule.Objective) {
	LMCTS{}.Improve(st, o, 1<<30, nil)
}

// BenchmarkLMCTSSweep measures one full-scan LMCTS step through the
// batched swap sweeps (CompletionAfterSwapSweep per partner machine) —
// the pre-cache formulation, retained as the reference the delta engine
// is measured against. BenchmarkLMCTSCachedScan vs BenchmarkLMCTSSweep
// (steady state, same converged state shape) is the headline number of
// the dirty-machine delta engine; BenchmarkLMCTSSweep vs
// BenchmarkLMCTSScalarProbe remains the sweep layer's swap-side number.
func BenchmarkLMCTSSweep(b *testing.B) {
	st, _ := benchState(b)
	o := schedule.DefaultObjective
	converge(st, o)
	lmctsSweepScan(st, o, 1) // warm the state-owned swap-scan buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lmctsSweepScan(st, o, 1)
	}
}

// BenchmarkLMCTSCachedScan measures the shipped LMCTS through the
// event-driven scan cache on the same converged 512×16 state
// BenchmarkLMCTSSweep scans. Must report 0 allocs/op — CI runs every
// CachedScan benchmark with -benchtime=1x and fails otherwise.
func BenchmarkLMCTSCachedScan(b *testing.B) {
	st, _ := benchState(b)
	o := schedule.DefaultObjective
	converge(st, o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LMCTS{}.Improve(st, o, 1, nil)
	}
}

// BenchmarkLMCTSSweepLarge is the sweep reference at the 2048×64 scale,
// where the O(critical jobs × jobs) full scan is ~65k pair evaluations
// per iteration.
func BenchmarkLMCTSSweepLarge(b *testing.B) {
	st := benchStateShape(b, 2048, 64)
	o := schedule.DefaultObjective
	converge(st, o)
	lmctsSweepScan(st, o, 1) // warm the state-owned swap-scan buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lmctsSweepScan(st, o, 1)
	}
}

// BenchmarkLMCTSCachedScanLarge is the delta engine at 2048×64: the
// acceptance bar is ≥5× over BenchmarkLMCTSSweepLarge steady-state at 0
// allocs/op (the warm query folds 64 cached machine bests instead of
// re-sweeping ~65k pairs).
func BenchmarkLMCTSCachedScanLarge(b *testing.B) {
	st := benchStateShape(b, 2048, 64)
	o := schedule.DefaultObjective
	converge(st, o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LMCTS{}.Improve(st, o, 1, nil)
	}
}

// BenchmarkSampledLMCTSBatch measures one batch-native sampled step
// (upfront pool draw, machine-grouped sweep scan) for comparison with
// BenchmarkLMCTSProbe, the per-job scalar sampling it derives from.
func BenchmarkSampledLMCTSBatch(b *testing.B) {
	st, r := benchState(b)
	o := schedule.DefaultObjective
	SampledLMCTSBatch{Samples: 64}.Improve(st, o, 1, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampledLMCTSBatch{Samples: 64}.Improve(st, o, 1, r)
	}
}

// BenchmarkLMCTSScalarProbe is the pre-sweep full scan (every partner
// job through the scalar pair query), kept as the reference the swap
// sweep is measured against.
func BenchmarkLMCTSScalarProbe(b *testing.B) {
	st, _ := benchState(b)
	o := schedule.DefaultObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lmctsScalarScan(st, o, 1, nil)
	}
}
