package localsearch

import (
	"testing"
	"testing/quick"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

func testInstance(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 64, Machs: 8})
}

func allMethods() []Method {
	return []Method{LM{}, SLM{}, LMCTS{}, SampledLMCTS{Samples: 16}, Chain{LM{}, LMCTS{}}, None{}}
}

func TestNeverWorsens(t *testing.T) {
	o := schedule.DefaultObjective
	for _, m := range allMethods() {
		in := testInstance(1)
		r := rng.New(2)
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		before := o.Of(st)
		m.Improve(st, o, 10, r)
		if after := o.Of(st); after > before+1e-9 {
			t.Errorf("%s worsened fitness %v -> %v", m.Name(), before, after)
		}
		if err := st.Schedule().Validate(in); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestMethodsActuallyImprove(t *testing.T) {
	// From a random schedule on a 512×16 instance, each non-trivial method
	// with a generous budget must find at least one improvement.
	o := schedule.DefaultObjective
	in := etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 3})
	for _, m := range []Method{LM{}, SLM{}, LMCTS{}, SampledLMCTS{Samples: 64}} {
		r := rng.New(4)
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		before := o.Of(st)
		m.Improve(st, o, 50, r)
		if after := o.Of(st); after >= before {
			t.Errorf("%s found no improvement from random (%v -> %v)", m.Name(), before, after)
		}
	}
}

func TestLMCTSReducesMakespan(t *testing.T) {
	in := testInstance(5)
	r := rng.New(6)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	before := st.Makespan()
	LMCTS{}.Improve(st, schedule.DefaultObjective, 30, r)
	if st.Makespan() >= before {
		t.Errorf("LMCTS did not reduce makespan from random: %v -> %v", before, st.Makespan())
	}
}

func TestLMCTSStopsAtLocalOptimum(t *testing.T) {
	// Asking for a huge budget on a small instance must terminate (the
	// method returns when no improving swap exists).
	in := etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.Low, MachineHet: etc.Low},
		0, etc.GenerateOptions{Seed: 7, Jobs: 16, Machs: 4})
	r := rng.New(8)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	LMCTS{}.Improve(st, schedule.DefaultObjective, 1_000_000, r)
	// Reaching here within test timeout is the assertion; also verify a
	// second call changes nothing.
	fit := schedule.DefaultObjective.Of(st)
	LMCTS{}.Improve(st, schedule.DefaultObjective, 10, r)
	if got := schedule.DefaultObjective.Of(st); got != fit {
		t.Errorf("second LMCTS call changed fitness at local optimum: %v -> %v", fit, got)
	}
}

func TestSLMBeatsLMPerIteration(t *testing.T) {
	// With the same tiny iteration budget, steepest moves should do at
	// least as well as random moves on average over seeds.
	o := schedule.DefaultObjective
	var lmSum, slmSum float64
	for seed := uint64(0); seed < 10; seed++ {
		in := testInstance(seed)
		start := schedule.NewRandom(in, rng.New(seed))
		a := schedule.NewState(in, start)
		LM{}.Improve(a, o, 10, rng.New(seed+100))
		lmSum += o.Of(a)
		b := schedule.NewState(in, start)
		SLM{}.Improve(b, o, 10, rng.New(seed+100))
		slmSum += o.Of(b)
	}
	if slmSum > lmSum {
		t.Errorf("SLM (%v) should beat LM (%v) per iteration on average", slmSum, lmSum)
	}
}

func TestNoneIsIdentity(t *testing.T) {
	in := testInstance(9)
	r := rng.New(10)
	s := schedule.NewRandom(in, r)
	st := schedule.NewState(in, s)
	None{}.Improve(st, schedule.DefaultObjective, 100, r)
	if !st.Schedule().Equal(s) {
		t.Fatal("None modified the schedule")
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, n := range Names() {
		m, err := ByName(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if n != "none" && m.Name() != n && n != "VND" {
			t.Errorf("ByName(%q).Name() = %q", n, m.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestChainSplitsBudget(t *testing.T) {
	in := testInstance(11)
	r := rng.New(12)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	o := schedule.DefaultObjective
	before := o.Of(st)
	Chain{LM{}, SLM{}, LMCTS{}}.Improve(st, o, 9, r)
	if o.Of(st) > before {
		t.Error("chain worsened fitness")
	}
	// Empty chain must be a no-op.
	Chain{}.Improve(st, o, 9, r)
	if got := (Chain{LM{}, LMCTS{}}).Name(); got != "Chain(LM+LMCTS)" {
		t.Errorf("chain name %q", got)
	}
}

func TestSampledLMCTSDefaultSamples(t *testing.T) {
	in := testInstance(13)
	r := rng.New(14)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	SampledLMCTS{}.Improve(st, schedule.DefaultObjective, 5, r) // Samples=0 -> default
	if err := st.Schedule().Validate(in); err != nil {
		t.Fatal(err)
	}
}

// Property: Improve never increases fitness for any method/seed.
func TestImproveMonotoneProperty(t *testing.T) {
	o := schedule.DefaultObjective
	methods := allMethods()
	f := func(seed uint64, mIdx uint8, iters uint8) bool {
		in := testInstance(seed % 8)
		r := rng.New(seed)
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		before := o.Of(st)
		methods[int(mIdx)%len(methods)].Improve(st, o, int(iters%20), r)
		return o.Of(st) <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLMCTS512(b *testing.B) {
	in := etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1})
	r := rng.New(2)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LMCTS{}.Improve(st, schedule.DefaultObjective, 1, r)
	}
}

func BenchmarkSampledLMCTS512(b *testing.B) {
	in := etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1})
	r := rng.New(2)
	st := schedule.NewState(in, schedule.NewRandom(in, r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampledLMCTS{Samples: 64}.Improve(st, schedule.DefaultObjective, 1, r)
	}
}
