// Package localsearch implements the memetic component of the paper's
// cellular algorithm: the three studied local search methods — Local Move
// (LM), Steepest Local Move (SLM) and Local Minimum Completion Time Swap
// (LMCTS, the tuned choice) — plus a sampled LMCTS variant and a
// variable-neighborhood chain used by the extension benches.
//
// Every method improves a live schedule.State in place, runs for a bounded
// number of iterations (Table 1: nb_local_search_iterations = 5) and never
// worsens the objective: each proposed step is applied only if it improves
// the scalarised fitness. Candidates are scored speculatively — the batch
// scans (SLM's all-targets transfer, LMCTS's critical-machine pairing) run
// over the vector sweep kernels (State.FitnessAfterMoveSweep /
// CompletionAfterSwapSweep), single candidates over the scalar probes —
// all bit-identical to apply→evaluate→revert but allocation-free and
// several times cheaper, so the methods are probe-then-commit: only an
// accepted step mutates the state. Each method also threads the current
// fitness through its loop (the probe contract guarantees the probe value
// of a committed step equals the state's next fitness bit for bit), so
// the accept baseline costs nothing per candidate.
//
// Since the dirty-machine delta engine (schedule.ScanCache) the scans are
// additionally event-driven: LMCTS's full critical scan folds memoized
// per-machine bests and re-sweeps only machines dirtied since the last
// query — O(changed) instead of O(M) machines per iteration, and a plain
// fold of cached scalars once the state is locally optimal — and LM's
// probes run through the cache's frozen-state context, revalidated only
// when a commit moves the state's epoch. Both remain bit-identical to the
// full rescan, so trajectories (and the golden matrix) are unchanged.
// Every Improve drains the state's commit event log before returning
// (State.SyncScans), so a state never carries pending invalidations back
// to a pool.
package localsearch

import (
	"fmt"
	"math"
	"slices"

	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Method is a bounded-effort improvement procedure.
type Method interface {
	// Improve applies up to iters improvement attempts to st under
	// objective o. It must leave st no worse than it found it.
	Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source)
	Name() string
}

// ByName resolves a method from its paper acronym.
func ByName(s string) (Method, error) {
	switch s {
	case "LM", "lm":
		return LM{}, nil
	case "SLM", "slm":
		return SLM{}, nil
	case "LMCTS", "lmcts":
		return LMCTS{}, nil
	case "LMCTS-sampled", "lmcts-sampled":
		return SampledLMCTS{Samples: 64}, nil
	case "LMCTS-sampled-batch", "lmcts-sampled-batch":
		return SampledLMCTSBatch{Samples: 64}, nil
	case "VND", "vnd":
		return Chain{LM{}, SLM{}, LMCTS{}}, nil
	case "none", "":
		return None{}, nil
	default:
		return nil, fmt.Errorf("localsearch: unknown method %q", s)
	}
}

// Names lists the methods available through ByName.
func Names() []string {
	return []string{"LM", "SLM", "LMCTS", "LMCTS-sampled", "LMCTS-sampled-batch", "VND", "none"}
}

// None is the identity method: a cMA with None degenerates to a cellular
// GA, which the ablation benches exploit.
type None struct{}

// Improve implements Method.
func (None) Improve(*schedule.State, schedule.Objective, int, *rng.Source) {}

// Name implements Method.
func (None) Name() string { return "none" }

// LM (Local Move) proposes a uniformly random job-to-machine move each
// iteration and keeps it only if the fitness improves. The candidate is
// evaluated through the scan cache's frozen-state probe context — bit
// identical to the scalar probe, with the accept baseline and the
// tournament-tree walk revalidated only when a commit moves the epoch —
// so a rejected proposal touches neither the state nor the tree.
type LM struct{}

// Improve implements Method.
func (LM) Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	in := st.Instance()
	sc := st.Scans(o)
	cur := sc.Fitness()
	for k := 0; k < iters; k++ {
		j := r.Intn(in.Jobs)
		to := r.Intn(in.Machs)
		from := st.Assign(j)
		if from == to {
			continue
		}
		if f := sc.FitnessAfterMove(j, to); f < cur {
			st.Move(j, to)
			cur = f
		}
	}
	st.SyncScans()
}

// Name implements Method.
func (LM) Name() string { return "LM" }

// SLM (Steepest Local Move) picks a random job and transfers it to the
// machine yielding the best fitness among all targets, if that improves
// on the current assignment. All M targets are scored with one batched
// sweep (State.FitnessAfterMoveSweep) — the source machine's removal
// replay and tree query are paid once per iteration instead of once per
// target — and only the winning transfer commits.
type SLM struct{}

// Improve implements Method.
func (SLM) Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	in := st.Instance()
	sc := st.Scans(o)
	for k := 0; k < iters; k++ {
		j := r.Intn(in.Jobs)
		if _, to := sc.BestMoveTarget(j); to != st.Assign(j) {
			st.Move(j, to)
		}
	}
	st.SyncScans()
}

// Name implements Method.
func (SLM) Name() string { return "SLM" }

// LMCTS (Local Minimum Completion Time Swap) is the tuned method of the
// paper: swap two jobs on different machines, choosing the pair that best
// reduces completion time. The candidate set pairs every job on the
// current critical (makespan) machine with every job on the other
// machines; the swap minimising the larger of the two new completion times
// is applied when it improves the fitness. The scan runs event-driven
// over the state's ScanCache: per-machine bests are memoized, only
// machines dirtied since the last query are re-swept, and the fold of
// cached bests picks the exact swap the historical full scan picked.
type LMCTS struct{}

// Improve implements Method.
func (LMCTS) Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	sc := st.Scans(o)
	cur := sc.Fitness()
	for k := 0; k < iters; k++ {
		f, ok := cachedCriticalSwap(st, sc, o, cur)
		if !ok {
			break // local optimum for this neighborhood
		}
		cur = f
	}
	st.SyncScans()
}

// Name implements Method.
func (LMCTS) Name() string { return "LMCTS" }

// SampledLMCTS is LMCTS with the partner side sampled: instead of scanning
// all jobs on non-critical machines it examines at most Samples random
// partners per iteration. It trades solution quality per step for a large
// constant-factor speedup on big instances.
type SampledLMCTS struct {
	Samples int
}

// Improve implements Method.
func (s SampledLMCTS) Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	n := s.Samples
	if n <= 0 {
		n = 64
	}
	cur := o.Of(st)
	for k := 0; k < iters; k++ {
		f, ok := bestCriticalSwap(st, o, cur, n, r)
		if !ok {
			break
		}
		cur = f
	}
	st.SyncScans()
}

// Name implements Method.
func (s SampledLMCTS) Name() string { return "LMCTS-sampled" }

// SampledLMCTSBatch is the batch-native sampled LMCTS: one pool of at
// most Samples random partner jobs is drawn upfront per iteration
// (instead of per critical job), sorted machine-grouped, captured once
// with the swap-sweep kernel (State.BeginSwapScanIDs) and scanned by
// every critical job through the flat per-machine invariants — the
// partner-side completion terms are derived once per partner instead of
// once per (critical job, partner) pair, and the sweep's hoisted
// arithmetic applies to the sampled set exactly as it does to the full
// scan.
//
// The candidate order is no longer the RNG stream of SampledLMCTS (one
// shared pool versus per-critical-job draws), so trajectories differ:
// this method registers under its own name ("LMCTS-sampled-batch", and
// "sampled-lmcts-batch" at the public registry) and the historical
// sampled variant stays frozen.
type SampledLMCTSBatch struct {
	Samples int
}

// Improve implements Method.
func (s SampledLMCTSBatch) Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	n := s.Samples
	if n <= 0 {
		n = 64
	}
	cur := o.Of(st)
	for k := 0; k < iters; k++ {
		f, ok := batchSampledSwap(st, o, cur, n, r)
		if !ok {
			break
		}
		cur = f
	}
	st.SyncScans()
}

// Name implements Method.
func (s SampledLMCTSBatch) Name() string { return "LMCTS-sampled-batch" }

// batchSampledSwap performs one steepest swap step between the critical
// machine and a shared pool of n sampled partners. Draws landing on the
// critical machine are discarded (they consume the stream, like the
// per-job sampling's skip). The kept ids are sorted by (machine, id) so
// the swap scan sees them machine-grouped; BestPartner's smallest-id
// tie-break and the strict fold across critical jobs in SPT order then
// mirror the full scan's tie-break contract on the sampled subset.
// Returns the fitness after the step and whether a swap was applied.
func batchSampledSwap(st *schedule.State, o schedule.Objective, cur float64, n int, r *rng.Source) (float64, bool) {
	in := st.Instance()
	crit := st.MakespanMachine()
	critJobs := st.JobsOn(crit)
	if len(critJobs) == 0 {
		return cur, false
	}
	ids := st.PartnerSampleBuf(n)
	for k := 0; k < n; k++ {
		if b := int32(r.Intn(in.Jobs)); st.Assign(int(b)) != crit {
			ids = append(ids, b)
		}
	}
	if len(ids) == 0 {
		return cur, false
	}
	slices.SortFunc(ids, func(a, b int32) int {
		if ma, mb := st.Assign(int(a)), st.Assign(int(b)); ma != mb {
			return ma - mb
		}
		return int(a - b)
	})
	scan := st.BeginSwapScanIDs(crit, ids)
	bestA, bestB := -1, -1
	bestMax := st.Completion(crit)
	for _, a := range critJobs {
		v, b := scan.BestPartner(int(a))
		if b >= 0 && v < bestMax {
			bestMax, bestA, bestB = v, int(a), b
		}
	}
	if bestA < 0 {
		return cur, false
	}
	return tryCommitSwap(st, o, cur, bestA, bestB)
}

// tryCommitSwap is the shared accept-and-commit tail of every critical
// swap step: the candidate already reduces the critical completion pair,
// so all that remains is the fitness gate — the scalarised objective must
// not regress (flowtime could in principle degrade more than makespan
// gains). The probe answers that without applying the swap, so a
// rejected candidate costs no state churn at all.
func tryCommitSwap(st *schedule.State, o schedule.Objective, cur float64, a, b int) (float64, bool) {
	f := st.FitnessAfterSwap(o, a, b)
	if f >= cur {
		return cur, false
	}
	st.Swap(a, b)
	return f, true
}

// cachedCriticalSwap performs one steepest swap step of the full LMCTS
// neighborhood through the state's event-driven scan cache: the memoized
// per-machine bests answer the scan in O(changed) re-swept machines plus
// an O(M) fold, and the winner — value and (a, b) pair — is the exact
// swap bestCriticalSwap's full sweep finds. The accept logic is
// unchanged: the swap must reduce the critical completion pair strictly,
// and the scalarised fitness must improve (checked with the speculative
// probe before any state churn).
func cachedCriticalSwap(st *schedule.State, sc *schedule.ScanCache, o schedule.Objective, cur float64) (float64, bool) {
	v, a, b := sc.BestCriticalSwap()
	if b < 0 || v >= st.Completion(st.MakespanMachine()) {
		return cur, false
	}
	return tryCommitSwap(st, o, cur, a, b)
}

// bestCriticalSwap performs one steepest swap step between the critical
// machine and the rest, given the state's current fitness cur. samples > 0
// examines that many random partner jobs per critical job (drawn from r,
// one at a time, so sampling allocates nothing) — the SampledLMCTS path.
// samples == 0 scans all jobs, batched machine by machine over the swap
// sweep: since the event-driven rewrite this uncached full scan is kept
// as the reference formulation the cached LMCTS is differentially tested
// and benchmarked against. Returns the fitness after the step and whether
// a swap was applied.
//
// The historical full scan walked every partner job in ascending id order
// with a strict-< fold, so among candidates tied on max(aC, bC) the first
// critical job in SPT order won, and for that job the smallest partner id.
// The batched scan reproduces that winner exactly: per critical job it
// keeps the minimum with an explicit smallest-id tie-break across the
// machine-grouped sweeps, then folds per-job minima strictly — pinned by
// the tie-heavy trajectory differentials in localsearch_test.go.
func bestCriticalSwap(st *schedule.State, o schedule.Objective, cur float64, samples int, r *rng.Source) (float64, bool) {
	in := st.Instance()
	crit := st.MakespanMachine()
	critJobs := st.JobsOn(crit)
	if len(critJobs) == 0 {
		return cur, false
	}
	critC := st.Completion(crit)

	bestA, bestB := -1, -1
	bestMax := critC // any accepted swap must reduce the critical completion pair

	if samples <= 0 {
		// The partner-side invariants are cached once per step
		// (BeginSwapScan) and every critical job folds its best partner
		// from the flat cache — the per-job minimum with the smallest-id
		// tie-break, then a strict fold across critical jobs, reproduces
		// the historical ascending-id scan's winner exactly.
		scan := st.BeginSwapScan(crit)
		for _, a := range critJobs {
			v, b := scan.BestPartner(int(a))
			if b >= 0 && v < bestMax {
				bestMax, bestA, bestB = v, int(a), b
			}
		}
	} else {
		for _, a := range critJobs {
			for k := 0; k < samples; k++ {
				// The candidate order is the RNG stream itself, so the
				// sampled scan stays on the scalar pair query.
				b := r.Intn(in.Jobs)
				if st.Assign(b) == crit {
					continue
				}
				aC, bC := st.CompletionAfterSwap(int(a), b)
				if v := math.Max(aC, bC); v < bestMax {
					bestMax, bestA, bestB = v, int(a), b
				}
			}
		}
	}
	if bestA < 0 {
		return cur, false
	}
	return tryCommitSwap(st, o, cur, bestA, bestB)
}

// Chain applies each method in sequence, splitting the iteration budget
// evenly (remainder to the first methods) — a minimal variable
// neighborhood descent.
type Chain []Method

// Improve implements Method.
func (c Chain) Improve(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	if len(c) == 0 {
		return
	}
	per := iters / len(c)
	rem := iters % len(c)
	for i, m := range c {
		n := per
		if i < rem {
			n++
		}
		if n > 0 {
			m.Improve(st, o, n, r)
		}
	}
}

// Name implements Method.
func (c Chain) Name() string {
	s := "Chain("
	for i, m := range c {
		if i > 0 {
			s += "+"
		}
		s += m.Name()
	}
	return s + ")"
}
