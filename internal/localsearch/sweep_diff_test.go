package localsearch

import (
	"math"
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// This file pins the batched sweep formulations of SLM and LMCTS to the
// historical scalar-probe formulations, which are kept here verbatim as
// references: for identical seeds the two must walk identical
// trajectories — every committed step the same, bit for bit — on both
// generic random instances and tie-heavy integer instances where the
// scan-order tie-breaking contracts actually bind.

// slmScalarProbe is the pre-sweep SLM: one scalar probe per target, the
// accept baseline re-read from the state every iteration.
func slmScalarProbe(st *schedule.State, o schedule.Objective, iters int, r *rng.Source) {
	in := st.Instance()
	for k := 0; k < iters; k++ {
		j := r.Intn(in.Jobs)
		from := st.Assign(j)
		bestFit := o.Of(st)
		bestTo := from
		for to := 0; to < in.Machs; to++ {
			if to == from {
				continue
			}
			if f := st.FitnessAfterMove(o, j, to); f < bestFit {
				bestFit, bestTo = f, to
			}
		}
		if bestTo != from {
			st.Move(j, bestTo)
		}
	}
}

// lmctsScalarScan is the pre-sweep LMCTS full scan: every partner job in
// ascending id order through the scalar pair query, with the strict-<
// fold whose implicit tie-break (first critical job, then smallest
// partner id) the batched scan must reproduce.
func lmctsScalarScan(st *schedule.State, o schedule.Objective, iters int, _ *rng.Source) {
	in := st.Instance()
	for it := 0; it < iters; it++ {
		crit := st.MakespanMachine()
		critJobs := st.JobsOn(crit)
		if len(critJobs) == 0 {
			return
		}
		bestA, bestB := -1, -1
		bestMax := st.Completion(crit)
		for _, a := range critJobs {
			for b := 0; b < in.Jobs; b++ {
				if st.Assign(b) == crit {
					continue
				}
				aC, bC := st.CompletionAfterSwap(int(a), b)
				if m := math.Max(aC, bC); m < bestMax {
					bestMax, bestA, bestB = m, int(a), b
				}
			}
		}
		if bestA < 0 {
			return
		}
		if st.FitnessAfterSwap(o, bestA, bestB) >= o.Of(st) {
			return
		}
		st.Swap(bestA, bestB)
	}
}

// tieInstance draws ETC values from a tiny integer set so candidate
// completions collide exactly, forcing the tie-break paths.
func tieInstance(jobs, machs int, seed uint64) *etc.Instance {
	in := etc.New("tie", jobs, machs)
	r := rng.New(seed)
	for j := 0; j < jobs; j++ {
		for m := 0; m < machs; m++ {
			in.Set(j, m, float64(1+r.Intn(4))*25)
		}
	}
	in.Finalize()
	return in
}

// diffInstances yields the instance mix of the trajectory differentials.
func diffInstances() []*etc.Instance {
	out := []*etc.Instance{
		etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
			0, etc.GenerateOptions{Seed: 21, Jobs: 64, Machs: 8}),
		etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.Low, MachineHet: etc.High},
			0, etc.GenerateOptions{Seed: 22, Jobs: 96, Machs: 5}),
		tieInstance(48, 6, 23),
		tieInstance(40, 4, 24),
		tieInstance(24, 3, 25),
	}
	return out
}

// TestSLMSweepMatchesScalar walks the sweep SLM and the scalar reference
// from the same states with the same RNG streams and requires identical
// schedules after every Improve call.
func TestSLMSweepMatchesScalar(t *testing.T) {
	o := schedule.DefaultObjective
	for i, in := range diffInstances() {
		start := schedule.NewRandom(in, rng.New(uint64(i)+40))
		a := schedule.NewState(in, start)
		b := schedule.NewState(in, start.Clone())
		ra, rb := rng.New(99), rng.New(99)
		for step := 0; step < 60; step++ {
			SLM{}.Improve(a, o, 3, ra)
			slmScalarProbe(b, o, 3, rb)
			if !a.Schedule().Equal(b.Schedule()) {
				t.Fatalf("instance %d step %d: sweep SLM diverged from scalar reference", i, step)
			}
		}
	}
}

// TestLMCTSSweepMatchesScalar is the swap-side trajectory differential:
// the machine-grouped batched scan must pick the exact swap the
// ascending-id scalar scan picked, including on tie-heavy instances.
func TestLMCTSSweepMatchesScalar(t *testing.T) {
	o := schedule.DefaultObjective
	for i, in := range diffInstances() {
		start := schedule.NewRandom(in, rng.New(uint64(i)+60))
		a := schedule.NewState(in, start)
		b := schedule.NewState(in, start.Clone())
		for step := 0; step < 80; step++ {
			LMCTS{}.Improve(a, o, 1, nil)
			lmctsScalarScan(b, o, 1, nil)
			if !a.Schedule().Equal(b.Schedule()) {
				t.Fatalf("instance %d step %d: sweep LMCTS diverged from scalar reference", i, step)
			}
		}
	}
}

// TestLMCTSCachedMatchesSweepReference is the delta-engine trajectory
// differential: the shipped LMCTS (event-driven scan cache) must walk the
// exact trajectory of the retained uncached full-sweep formulation —
// every committed swap the same — across generic and tie-heavy
// instances. Together with TestLMCTSSweepMatchesScalar this chains
// cached == sweep == scalar.
func TestLMCTSCachedMatchesSweepReference(t *testing.T) {
	o := schedule.DefaultObjective
	for i, in := range diffInstances() {
		start := schedule.NewRandom(in, rng.New(uint64(i)+70))
		a := schedule.NewState(in, start)
		b := schedule.NewState(in, start.Clone())
		for step := 0; step < 80; step++ {
			LMCTS{}.Improve(a, o, 1, nil)
			lmctsSweepScan(b, o, 1)
			if !a.Schedule().Equal(b.Schedule()) {
				t.Fatalf("instance %d step %d: cached LMCTS diverged from sweep reference", i, step)
			}
		}
	}
}

// lmctsSweepScan is the pre-cache LMCTS formulation — a full batched
// sweep of the critical neighborhood every iteration — kept as the
// reference the cached rewrite is differentially tested and benchmarked
// against.
func lmctsSweepScan(st *schedule.State, o schedule.Objective, iters int) {
	cur := o.Of(st)
	for k := 0; k < iters; k++ {
		f, ok := bestCriticalSwap(st, o, cur, 0, nil)
		if !ok {
			return
		}
		cur = f
	}
}

// batchSampledScalarRef re-implements SampledLMCTSBatch's step with
// scalar pair queries over the identically drawn (and identically
// sorted) partner pool: the machine-grouped sweep scan must pick the
// same swap, including the smallest-id tie-break.
func batchSampledScalarRef(st *schedule.State, o schedule.Objective, cur float64, n int, r *rng.Source) (float64, bool) {
	in := st.Instance()
	crit := st.MakespanMachine()
	critJobs := st.JobsOn(crit)
	if len(critJobs) == 0 {
		return cur, false
	}
	var ids []int32
	for k := 0; k < n; k++ {
		if b := int32(r.Intn(in.Jobs)); st.Assign(int(b)) != crit {
			ids = append(ids, b)
		}
	}
	if len(ids) == 0 {
		return cur, false
	}
	bestA, bestB := -1, -1
	bestMax := st.Completion(crit)
	for _, a := range critJobs {
		av, ab := math.Inf(1), -1
		for _, b := range ids {
			aC, bC := st.CompletionAfterSwap(int(a), int(b))
			if v := math.Max(aC, bC); v < av || (v == av && int(b) < ab) {
				av, ab = v, int(b)
			}
		}
		if ab >= 0 && av < bestMax {
			bestMax, bestA, bestB = av, int(a), ab
		}
	}
	if bestA < 0 {
		return cur, false
	}
	f := st.FitnessAfterSwap(o, bestA, bestB)
	if f >= cur {
		return cur, false
	}
	st.Swap(bestA, bestB)
	return f, true
}

// TestSampledBatchMatchesScalarReference pins the batch-native sampled
// LMCTS to its scalar reference: same RNG stream, same drawn pool, same
// committed swaps.
func TestSampledBatchMatchesScalarReference(t *testing.T) {
	o := schedule.DefaultObjective
	for i, in := range diffInstances() {
		start := schedule.NewRandom(in, rng.New(uint64(i)+90))
		a := schedule.NewState(in, start)
		b := schedule.NewState(in, start.Clone())
		ra, rb := rng.New(123), rng.New(123)
		method := SampledLMCTSBatch{Samples: 24}
		for step := 0; step < 60; step++ {
			method.Improve(a, o, 2, ra)
			curB := o.Of(b)
			for k := 0; k < 2; k++ {
				f, ok := batchSampledScalarRef(b, o, curB, 24, rb)
				if !ok {
					break
				}
				curB = f
			}
			if !a.Schedule().Equal(b.Schedule()) {
				t.Fatalf("instance %d step %d: batch sampled LMCTS diverged from scalar reference", i, step)
			}
		}
	}
}

// TestLocalSearchDrained pins the hygiene contract: every method leaves
// the state's commit event log empty, whatever its last action was.
func TestLocalSearchDrained(t *testing.T) {
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 33, Jobs: 96, Machs: 12})
	o := schedule.DefaultObjective
	for _, m := range []Method{None{}, LM{}, SLM{}, LMCTS{}, SampledLMCTS{Samples: 16},
		SampledLMCTSBatch{Samples: 16}, Chain{LM{}, SLM{}, LMCTS{}}} {
		r := rng.New(8)
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		for k := 0; k < 10; k++ {
			m.Improve(st, o, 3, r)
			if n := st.PendingDirty(); n != 0 {
				t.Fatalf("%s left %d pending dirty machines", m.Name(), n)
			}
		}
	}
}

// TestLocalSearchAllocationFree asserts the rewritten methods' hot loops
// stay allocation-free after the state's sweep buffers warm up.
func TestLocalSearchAllocationFree(t *testing.T) {
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 31, Jobs: 128, Machs: 16})
	o := schedule.DefaultObjective
	for _, m := range []Method{SLM{}, LMCTS{}, SampledLMCTS{Samples: 16}, SampledLMCTSBatch{Samples: 16}, LM{}} {
		r := rng.New(5)
		st := schedule.NewState(in, schedule.NewRandom(in, r))
		m.Improve(st, o, 2, r) // warm-up
		if n := testing.AllocsPerRun(50, func() {
			m.Improve(st, o, 1, r)
		}); n != 0 {
			t.Errorf("%s allocates %v per Improve", m.Name(), n)
		}
	}
}
