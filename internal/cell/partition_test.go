package cell

import (
	"testing"

	"gridcma/internal/rng"
)

var partitionShapes = []struct {
	w, h int
	p    Pattern
}{
	{5, 5, C9}, // the paper's grid
	{5, 5, L5},
	{8, 8, C9},
	{10, 6, C13},
	{7, 7, L9},
	{3, 3, C9}, // every cell neighbors every other except none
	{5, 5, Panmictic},
	{16, 16, C9},
}

func TestRadius(t *testing.T) {
	want := map[Pattern]int{L5: 1, C9: 1, L9: 2, C13: 2, Panmictic: -1}
	for p, r := range want {
		if got := Radius(p); got != r {
			t.Errorf("Radius(%v) = %d, want %d", p, got, r)
		}
	}
}

func TestPartitionBlocksTileGrid(t *testing.T) {
	for _, s := range partitionShapes {
		g := NewGrid(s.w, s.h)
		pt := NewPartition(g, s.p)
		seen := make([]int, g.Size())
		for _, b := range pt.Blocks {
			if len(b.Cells) != len(b.Interior)+len(b.Boundary) {
				t.Fatalf("%dx%d %v: block cells != interior+boundary", s.w, s.h, s.p)
			}
			for _, c := range b.Cells {
				seen[c]++
			}
		}
		for c, n := range seen {
			if n != 1 {
				t.Fatalf("%dx%d %v: cell %d covered %d times", s.w, s.h, s.p, c, n)
			}
		}
		if len(pt.Blocks) != pt.BlocksX*pt.BlocksY {
			t.Fatalf("%dx%d %v: %d blocks, want %d", s.w, s.h, s.p, len(pt.Blocks), pt.BlocksX*pt.BlocksY)
		}
	}
}

// Interior cells must have their entire neighborhood inside their own
// block — the property that makes block interiors independent work units.
func TestPartitionInteriorsStayInBlock(t *testing.T) {
	for _, s := range partitionShapes {
		g := NewGrid(s.w, s.h)
		pt := NewPartition(g, s.p)
		nb := NewNeighborhood(g, s.p)
		for bi, b := range pt.Blocks {
			inBlock := make(map[int]bool, len(b.Cells))
			for _, c := range b.Cells {
				inBlock[c] = true
			}
			for _, c := range b.Interior {
				for _, n := range nb.Of[c] {
					if !inBlock[n] {
						t.Fatalf("%dx%d %v block %d: interior cell %d has neighbor %d outside",
							s.w, s.h, s.p, bi, c, n)
					}
				}
			}
		}
	}
}

// Blocks of equal color must not interact: no cell of one may lie in the
// neighborhood of a cell of the other.
func TestPartitionSameColorBlocksIndependent(t *testing.T) {
	for _, s := range partitionShapes {
		g := NewGrid(s.w, s.h)
		pt := NewPartition(g, s.p)
		nb := NewNeighborhood(g, s.p)
		for i, a := range pt.Blocks {
			for j, b := range pt.Blocks {
				if i >= j || a.Color != b.Color {
					continue
				}
				inB := make(map[int]bool, len(b.Cells))
				for _, c := range b.Cells {
					inB[c] = true
				}
				for _, c := range a.Cells {
					for _, n := range nb.Of[c] {
						if inB[n] {
							t.Fatalf("%dx%d %v: same-color blocks %d,%d interact via %d->%d",
								s.w, s.h, s.p, i, j, c, n)
						}
					}
				}
			}
		}
	}
}

func TestPartitionWavesCoverAndIndependent(t *testing.T) {
	for _, s := range partitionShapes {
		g := NewGrid(s.w, s.h)
		pt := NewPartition(g, s.p)
		seen := make([]int, g.Size())
		for _, w := range pt.Waves {
			for i, a := range w {
				seen[a]++
				for _, b := range w[i+1:] {
					if !pt.Independent(a, b) {
						t.Fatalf("%dx%d %v: wave holds interacting cells %d,%d", s.w, s.h, s.p, a, b)
					}
				}
			}
		}
		for c, n := range seen {
			if n != 1 {
				t.Fatalf("%dx%d %v: cell %d in %d waves", s.w, s.h, s.p, c, n)
			}
		}
		if ord := pt.Order(); len(ord) != g.Size() {
			t.Fatalf("Order length %d, want %d", len(ord), g.Size())
		}
	}
}

func TestPanmicticWavesAreSingletons(t *testing.T) {
	pt := NewPartition(NewGrid(4, 4), Panmictic)
	for _, w := range pt.Waves {
		if len(w) != 1 {
			t.Fatalf("panmictic wave of size %d", len(w))
		}
	}
}

// PlanWaves must place every draw exactly once, keep waves internally
// independent, and schedule a draw strictly after every earlier
// conflicting draw — the property that makes wave-parallel execution
// equivalent to the sequential draw order.
func TestPlanWavesSequentialEquivalence(t *testing.T) {
	for _, s := range partitionShapes {
		g := NewGrid(s.w, s.h)
		pt := NewPartition(g, s.p)
		r := rng.New(42)
		draws := make([]int, 3*g.Size()/2)
		for i := range draws {
			draws[i] = r.Intn(g.Size())
		}
		waves := pt.PlanWaves(draws, nil)

		waveOf := make(map[int]int, len(draws))
		for wi, w := range waves {
			for _, k := range w {
				if _, dup := waveOf[k]; dup {
					t.Fatalf("%v: draw %d scheduled twice", s.p, k)
				}
				waveOf[k] = wi
			}
		}
		if len(waveOf) != len(draws) {
			t.Fatalf("%v: %d draws scheduled, want %d", s.p, len(waveOf), len(draws))
		}
		for i := 0; i < len(draws); i++ {
			for j := i + 1; j < len(draws); j++ {
				conflict := draws[i] == draws[j] || !pt.Independent(draws[i], draws[j])
				if conflict && waveOf[i] >= waveOf[j] {
					t.Fatalf("%v: conflicting draws %d(cell %d) and %d(cell %d) in waves %d,%d",
						s.p, i, draws[i], j, draws[j], waveOf[i], waveOf[j])
				}
				if !conflict && waveOf[i] == waveOf[j] {
					continue // independent draws may share a wave
				}
			}
		}
	}
}

// PlanWaves with the partition's own wave order as the draw sequence must
// reproduce waves at least as wide as the precomputed ones — the parallel
// engine's sweeps rely on this to get real concurrency.
func TestPlanWavesRecoversWaveOrderParallelism(t *testing.T) {
	pt := NewPartition(NewGrid(8, 8), C9)
	waves := pt.PlanWaves(pt.Order(), nil)
	if len(waves) > len(pt.Waves) {
		t.Fatalf("wave order planned into %d waves, precomputed %d", len(waves), len(pt.Waves))
	}
	widest := 0
	for _, w := range waves {
		if len(w) > widest {
			widest = len(w)
		}
	}
	if widest < 4 {
		t.Fatalf("widest wave %d on an 8x8 C9 grid; expected real parallelism", widest)
	}
}

func TestPlanWavesReusesBuffers(t *testing.T) {
	pt := NewPartition(NewGrid(5, 5), C9)
	draws := pt.Order()
	waves := pt.PlanWaves(draws, nil)
	again := pt.PlanWaves(draws, waves)
	if len(again) != len(waves) {
		t.Fatalf("replanning changed wave count: %d vs %d", len(again), len(waves))
	}
	for i := range again {
		for j := range again[i] {
			if again[i][j] != waves[i][j] {
				// waves was reused as backing storage, so contents must match
				t.Fatalf("replanning changed wave %d", i)
			}
		}
	}
}

func TestFLSDrawsDegradeGracefully(t *testing.T) {
	// Row-major draws chain conflicts under C9, so PlanWaves must fall
	// back to (near-)sequential waves rather than break correctness.
	pt := NewPartition(NewGrid(5, 5), C9)
	draws := make([]int, 25)
	for i := range draws {
		draws[i] = i
	}
	waves := pt.PlanWaves(draws, nil)
	for _, w := range waves {
		for i, a := range w {
			for _, b := range w[i+1:] {
				if !pt.Independent(draws[a], draws[b]) {
					t.Fatal("interacting draws share a wave")
				}
			}
		}
	}
}
