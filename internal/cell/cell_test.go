package cell

import (
	"sort"
	"testing"
	"testing/quick"

	"gridcma/internal/rng"
)

func TestGridIndexCoordsRoundTrip(t *testing.T) {
	g := NewGrid(5, 4)
	for i := 0; i < g.Size(); i++ {
		x, y := g.Coords(i)
		if g.Index(x, y) != i {
			t.Fatalf("round trip failed for %d", i)
		}
	}
}

func TestGridToroidalWrap(t *testing.T) {
	g := NewGrid(5, 5)
	if g.Index(-1, 0) != g.Index(4, 0) {
		t.Error("x wrap failed")
	}
	if g.Index(0, -1) != g.Index(0, 4) {
		t.Error("y wrap failed")
	}
	if g.Index(5, 5) != g.Index(0, 0) {
		t.Error("positive wrap failed")
	}
	if g.Index(-7, -9) != g.Index(3, 1) {
		t.Error("multi-wrap failed")
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(0, 3)
}

func TestNeighborhoodSizes(t *testing.T) {
	g := NewGrid(8, 8) // large enough that no offsets alias
	want := map[Pattern]int{L5: 5, L9: 9, C9: 9, C13: 13, Panmictic: 64}
	for p, n := range want {
		nb := NewNeighborhood(g, p)
		for i, list := range nb.Of {
			if len(list) != n {
				t.Errorf("%v: cell %d has %d neighbors, want %d", p, i, len(list), n)
			}
		}
	}
}

func TestNeighborhoodIncludesSelf(t *testing.T) {
	g := NewGrid(5, 5)
	for _, p := range []Pattern{L5, L9, C9, C13, Panmictic} {
		nb := NewNeighborhood(g, p)
		for i, list := range nb.Of {
			found := false
			for _, e := range list {
				if e == i {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v: cell %d not in own neighborhood", p, i)
			}
		}
	}
}

func TestNeighborhoodNoDuplicatesOnSmallGrid(t *testing.T) {
	// On a 3x3 torus, distance-2 offsets alias distance-1 cells.
	g := NewGrid(3, 3)
	for _, p := range []Pattern{L5, L9, C9, C13} {
		nb := NewNeighborhood(g, p)
		for i, list := range nb.Of {
			seen := map[int]bool{}
			for _, e := range list {
				if seen[e] {
					t.Fatalf("%v: duplicate neighbor %d of cell %d", p, e, i)
				}
				seen[e] = true
			}
		}
	}
}

func TestL5IsVonNeumann(t *testing.T) {
	g := NewGrid(5, 5)
	nb := NewNeighborhood(g, L5)
	got := append([]int(nil), nb.Of[g.Index(2, 2)]...)
	sort.Ints(got)
	want := []int{g.Index(2, 1), g.Index(1, 2), g.Index(2, 2), g.Index(3, 2), g.Index(2, 3)}
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("L5 of centre = %v, want %v", got, want)
		}
	}
}

func TestNeighborhoodSymmetry(t *testing.T) {
	// All paper patterns are symmetric: j in N(i) iff i in N(j).
	g := NewGrid(5, 5)
	for _, p := range []Pattern{L5, L9, C9, C13} {
		nb := NewNeighborhood(g, p)
		for i, list := range nb.Of {
			for _, j := range list {
				found := false
				for _, back := range nb.Of[j] {
					if back == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v: %d in N(%d) but not vice versa", p, j, i)
				}
			}
		}
	}
}

func TestPatternParseRoundTrip(t *testing.T) {
	for _, p := range []Pattern{L5, L9, C9, C13, Panmictic} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("X7"); err == nil {
		t.Error("expected error")
	}
}

func TestOrderParseRoundTrip(t *testing.T) {
	for _, o := range []Order{FLS, FRS, NRS} {
		got, err := ParseOrder(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOrder(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseOrder("XYZ"); err == nil {
		t.Error("expected error")
	}
}

// coversAll drains one pass of a sweep and checks it visits every cell
// exactly once.
func coversAll(t *testing.T, s SweepOrder, size int) []int {
	t.Helper()
	seen := make([]int, 0, size)
	counts := make(map[int]int)
	for i := 0; i < size; i++ {
		c := s.Next()
		counts[c]++
		seen = append(seen, c)
	}
	for c := 0; c < size; c++ {
		if counts[c] != 1 {
			t.Fatalf("%s: cell %d visited %d times in one pass", s.Name(), c, counts[c])
		}
	}
	return seen
}

func TestSweepsArePermutationsEachPass(t *testing.T) {
	const size = 25
	for _, o := range []Order{FLS, FRS, NRS} {
		s := NewSweep(o, size, rng.New(1))
		for pass := 0; pass < 3; pass++ {
			coversAll(t, s, size)
		}
	}
}

func TestFLSIsSequential(t *testing.T) {
	s := NewSweep(FLS, 10, rng.New(1))
	for i := 0; i < 10; i++ {
		if got := s.Next(); got != i {
			t.Fatalf("FLS[%d] = %d", i, got)
		}
	}
	if s.Name() != "FLS" {
		t.Error("name")
	}
}

func TestFRSRepeatsSamePermutation(t *testing.T) {
	s := NewSweep(FRS, 25, rng.New(2))
	p1 := coversAll(t, s, 25)
	p2 := coversAll(t, s, 25)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("FRS changed permutation between passes")
		}
	}
	if s.Name() != "FRS" {
		t.Error("name")
	}
}

func TestNRSChangesPermutation(t *testing.T) {
	s := NewSweep(NRS, 25, rng.New(3))
	p1 := coversAll(t, s, 25)
	p2 := coversAll(t, s, 25)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("NRS reused the same permutation (astronomically unlikely)")
	}
	if s.Name() != "NRS" {
		t.Error("name")
	}
}

func TestSweepReset(t *testing.T) {
	for _, o := range []Order{FLS, FRS, NRS} {
		s := NewSweep(o, 9, rng.New(4))
		s.Next()
		s.Next()
		s.Reset()
		coversAll(t, s, 9) // full pass must still be a permutation
	}
}

func TestPanmicticSharesOneSlice(t *testing.T) {
	g := NewGrid(4, 4)
	nb := NewNeighborhood(g, Panmictic)
	if &nb.Of[0][0] != &nb.Of[5][0] {
		t.Error("panmictic neighborhoods should share storage")
	}
}

func TestNeighborhoodProperty(t *testing.T) {
	// All neighbor indices are in range on arbitrary grid sizes.
	f := func(w, h uint8, pIdx uint8) bool {
		gw, gh := int(w%7)+1, int(h%7)+1
		g := NewGrid(gw, gh)
		p := []Pattern{L5, L9, C9, C13, Panmictic}[int(pIdx)%5]
		nb := NewNeighborhood(g, p)
		for _, list := range nb.Of {
			if len(list) == 0 {
				return false
			}
			for _, e := range list {
				if e < 0 || e >= g.Size() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
