// Package cell provides the structured-population substrate of the
// cellular memetic algorithm: a two-dimensional toroidal grid of cells,
// the neighborhood patterns of the paper (L5, L9, C9, C13 and panmixia),
// and the asynchronous sweep orders (Fixed Line Sweep, Fixed Random Sweep,
// New Random Sweep) that decide in which order cells are updated.
//
// The package is deliberately independent of what lives in a cell; it
// deals only in cell indices, so it is reusable for any cellular
// evolutionary algorithm.
package cell

import (
	"fmt"

	"gridcma/internal/rng"
)

// Grid is a toroidal two-dimensional lattice of Width×Height cells. Cell
// (x, y) has linear index y*Width + x; all neighborhood computations wrap
// around both axes.
type Grid struct {
	Width, Height int
}

// NewGrid returns a grid with the given dimensions. It panics on
// non-positive dimensions: the population shape is a static configuration
// error, not a runtime condition.
func NewGrid(width, height int) Grid {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("cell: invalid grid %dx%d", width, height))
	}
	return Grid{Width: width, Height: height}
}

// Size returns the number of cells.
func (g Grid) Size() int { return g.Width * g.Height }

// Index returns the linear index of (x, y), wrapping toroidally.
func (g Grid) Index(x, y int) int {
	x = mod(x, g.Width)
	y = mod(y, g.Height)
	return y*g.Width + x
}

// Coords returns the (x, y) position of a linear index.
func (g Grid) Coords(i int) (x, y int) {
	return i % g.Width, i / g.Width
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// Pattern names a neighborhood shape.
type Pattern int

const (
	// L5 is the von Neumann neighborhood: the cell plus N, S, E, W
	// (5 individuals).
	L5 Pattern = iota
	// L9 extends L5 two steps along each axis (9 individuals).
	L9
	// C9 is the Moore neighborhood: the 3×3 block around the cell
	// (9 individuals). Best performer in the paper (Table 1).
	C9
	// C13 is C9 plus the axial cells at distance two (13 individuals).
	C13
	// Panmictic makes every cell a neighbor of every other: the
	// unstructured-population limit the paper uses as a control.
	Panmictic
)

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case L5:
		return "L5"
	case L9:
		return "L9"
	case C9:
		return "C9"
	case C13:
		return "C13"
	case Panmictic:
		return "Panmictic"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ParsePattern resolves a pattern from its name (case-sensitive, as
// printed by String).
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "L5":
		return L5, nil
	case "L9":
		return L9, nil
	case "C9":
		return C9, nil
	case "C13":
		return C13, nil
	case "Panmictic", "panmictic":
		return Panmictic, nil
	default:
		return 0, fmt.Errorf("cell: unknown neighborhood pattern %q", s)
	}
}

// offsets of each finite pattern, relative to the centre cell. The centre
// itself is included: in the paper's cMA the current individual takes part
// in its own neighborhood.
var patternOffsets = map[Pattern][][2]int{
	L5: {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}},
	L9: {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {2, 0}, {-2, 0}, {0, 2}, {0, -2}},
	C9: {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}},
	C13: {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1},
		{2, 0}, {-2, 0}, {0, 2}, {0, -2}},
}

// Neighborhood is a precomputed neighbor table: Of[i] lists the cells in
// cell i's neighborhood (including i itself).
type Neighborhood struct {
	Pattern Pattern
	Of      [][]int
}

// NewNeighborhood precomputes the neighbor lists of pattern p on grid g.
// Offsets that alias the same cell on small grids (e.g. a distance-2
// offset on a width-3 torus) are deduplicated, so neighbor lists never
// contain repeats.
func NewNeighborhood(g Grid, p Pattern) *Neighborhood {
	n := &Neighborhood{Pattern: p, Of: make([][]int, g.Size())}
	if p == Panmictic {
		all := make([]int, g.Size())
		for i := range all {
			all[i] = i
		}
		for i := range n.Of {
			n.Of[i] = all
		}
		return n
	}
	offs, ok := patternOffsets[p]
	if !ok {
		panic(fmt.Sprintf("cell: pattern %v has no offsets", p))
	}
	for i := 0; i < g.Size(); i++ {
		x, y := g.Coords(i)
		list := make([]int, 0, len(offs))
		for _, d := range offs {
			idx := g.Index(x+d[0], y+d[1])
			dup := false
			for _, e := range list {
				if e == idx {
					dup = true
					break
				}
			}
			if !dup {
				list = append(list, idx)
			}
		}
		n.Of[i] = list
	}
	return n
}

// SweepOrder is a (re)generable visiting order over the cells of a grid,
// realising the paper's asynchronous update policies. Implementations are
// NOT safe for concurrent use.
type SweepOrder interface {
	// Next returns the next cell index of the sweep. After Size calls the
	// sweep wraps to a new pass (regenerating itself if the policy says
	// so).
	Next() int
	// Reset restarts the sweep from the beginning of a fresh pass.
	Reset()
	// Name returns the paper's acronym: FLS, FRS or NRS.
	Name() string
}

// Order names a sweep policy.
type Order int

const (
	// FLS (Fixed Line Sweep) visits cells row by row in index order —
	// the best performer in the paper's tuning (Fig. 5) and the Table 1
	// choice for the recombination order.
	FLS Order = iota
	// FRS (Fixed Random Sweep) visits cells in a random permutation fixed
	// once at construction and reused every pass.
	FRS
	// NRS (New Random Sweep) draws a fresh random permutation for every
	// pass — the Table 1 choice for the mutation order.
	NRS
)

// String returns the acronym.
func (o Order) String() string {
	switch o {
	case FLS:
		return "FLS"
	case FRS:
		return "FRS"
	case NRS:
		return "NRS"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// ParseOrder resolves an Order from its acronym.
func ParseOrder(s string) (Order, error) {
	switch s {
	case "FLS", "fls":
		return FLS, nil
	case "FRS", "frs":
		return FRS, nil
	case "NRS", "nrs":
		return NRS, nil
	default:
		return 0, fmt.Errorf("cell: unknown sweep order %q", s)
	}
}

// NewSweep builds a sweep order over size cells. FRS and NRS draw their
// permutations from r; FLS ignores it.
func NewSweep(o Order, size int, r *rng.Source) SweepOrder {
	if size <= 0 {
		panic("cell: sweep over empty grid")
	}
	switch o {
	case FLS:
		return &lineSweep{size: size}
	case FRS:
		return &randSweep{perm: r.Perm(size), fixed: true, r: r}
	case NRS:
		return &randSweep{perm: r.Perm(size), fixed: false, r: r}
	default:
		panic(fmt.Sprintf("cell: unknown order %v", o))
	}
}

// NewPermSweep builds a fixed sweep visiting cells in the given order
// every pass. The block-parallel cMA uses it with a Partition's wave
// order, so its sweeps stay aligned with the independent cell sets.
func NewPermSweep(name string, perm []int) SweepOrder {
	if len(perm) == 0 {
		panic("cell: sweep over empty permutation")
	}
	return &randSweep{perm: perm, fixed: true, name: name}
}

type lineSweep struct {
	size, pos int
}

func (l *lineSweep) Next() int {
	i := l.pos
	l.pos++
	if l.pos == l.size {
		l.pos = 0
	}
	return i
}

func (l *lineSweep) Reset()       { l.pos = 0 }
func (l *lineSweep) Name() string { return "FLS" }

type randSweep struct {
	perm  []int
	pos   int
	fixed bool
	r     *rng.Source
	name  string // optional display-name override (perm sweeps)
}

func (s *randSweep) Next() int {
	i := s.perm[s.pos]
	s.pos++
	if s.pos == len(s.perm) {
		s.pos = 0
		if !s.fixed {
			s.perm = s.r.Perm(len(s.perm))
		}
	}
	return i
}

func (s *randSweep) Reset() {
	s.pos = 0
	if !s.fixed {
		s.perm = s.r.Perm(len(s.perm))
	}
}

func (s *randSweep) Name() string {
	if s.name != "" {
		return s.name
	}
	if s.fixed {
		return "FRS"
	}
	return "NRS"
}
