package cell

// This file is the static dependency analysis behind the block-parallel
// asynchronous cMA engine. A Partition tiles the toroidal grid into
// disjoint rectangular blocks sized to the neighborhood's interaction
// radius, classifies each block's cells into interior (cells whose whole
// neighborhood stays inside the block, hence independent of every other
// block) and boundary, colors the blocks so same-colored blocks never
// interact, and derives from all of that a wave ordering: a cover of the
// grid by pairwise-independent cell sets. Updating the cells of one wave
// concurrently — each from its own RNG stream — and committing wave by
// wave is indistinguishable from updating them sequentially, which is what
// makes the parallel engine deterministic for any worker count.

// Radius returns the axial interaction radius of a pattern: the largest
// coordinate magnitude among its offsets (1 for L5/C9, 2 for L9/C13).
// Panmictic has no finite radius and returns -1.
func Radius(p Pattern) int {
	if p == Panmictic {
		return -1
	}
	offs, ok := patternOffsets[p]
	if !ok {
		return -1
	}
	r := 0
	for _, d := range offs {
		for _, v := range d {
			if v < 0 {
				v = -v
			}
			if v > r {
				r = v
			}
		}
	}
	return r
}

// Block is one tile of a Partition.
type Block struct {
	X0, Y0, W, H int
	// Color indexes the block's class in the partition's block coloring:
	// blocks of equal color never interact, so their cells — boundary
	// included — may be updated concurrently.
	Color int
	// Cells lists the block's cells row-major; Interior the cells whose
	// neighborhood stays inside the block; Boundary the rest.
	Cells    []int
	Interior []int
	Boundary []int
}

// Partition is the precomputed parallel-update structure of a grid and
// neighborhood pattern. Construction is deterministic: the same grid and
// pattern always yield the same blocks, colors and waves.
//
// PlanWaves mutates internal scratch space, so a Partition must not be
// shared by concurrent planners; the read-only fields may be shared
// freely.
type Partition struct {
	Grid    Grid
	Pattern Pattern
	// BlocksX × BlocksY tiles cover the grid.
	BlocksX, BlocksY int
	Blocks           []Block
	// Waves covers every cell exactly once with pairwise-independent sets,
	// interior cells first. Concatenated, the waves form the canonical
	// update order of the block-parallel asynchronous engine.
	Waves [][]int
	// NumColors is the number of block color classes.
	NumColors int

	nbOf  [][]int // neighbor lists (symmetric, including self)
	level []int   // PlanWaves scratch: last level of a draw on each cell
}

// NewPartition analyses grid g under pattern p.
func NewPartition(g Grid, p Pattern) *Partition {
	n := g.Size()
	nb := NewNeighborhood(g, p)
	pt := &Partition{
		Grid:    g,
		Pattern: p,
		nbOf:    nb.Of,
		level:   make([]int, n),
	}
	pt.tile()
	pt.colorBlocks()
	pt.buildWaves()
	return pt
}

// tile splits the grid into BlocksX × BlocksY rectangles of side at least
// the pattern diameter (2·radius+1) where the grid allows it, so block
// interiors exist, and classifies interior vs boundary cells.
func (pt *Partition) tile() {
	g := pt.Grid
	r := Radius(pt.Pattern)
	if r < 0 {
		// Panmixia: every cell interacts with every other; one block, all
		// boundary.
		pt.BlocksX, pt.BlocksY = 1, 1
	} else {
		side := 2*r + 1
		pt.BlocksX = max(1, g.Width/side)
		pt.BlocksY = max(1, g.Height/side)
	}
	xs := cuts(g.Width, pt.BlocksX)
	ys := cuts(g.Height, pt.BlocksY)

	cellBlock := make([]int, g.Size())
	for by := 0; by < pt.BlocksY; by++ {
		for bx := 0; bx < pt.BlocksX; bx++ {
			b := Block{X0: xs[bx], Y0: ys[by], W: xs[bx+1] - xs[bx], H: ys[by+1] - ys[by]}
			for y := b.Y0; y < b.Y0+b.H; y++ {
				for x := b.X0; x < b.X0+b.W; x++ {
					c := g.Index(x, y)
					cellBlock[c] = len(pt.Blocks)
					b.Cells = append(b.Cells, c)
				}
			}
			pt.Blocks = append(pt.Blocks, b)
		}
	}
	for bi := range pt.Blocks {
		b := &pt.Blocks[bi]
		for _, c := range b.Cells {
			interior := true
			for _, nbc := range pt.nbOf[c] {
				if cellBlock[nbc] != bi {
					interior = false
					break
				}
			}
			if interior {
				b.Interior = append(b.Interior, c)
			} else {
				b.Boundary = append(b.Boundary, c)
			}
		}
	}
}

// cuts splits length into parts nearly equal slices, returning the
// parts+1 boundaries.
func cuts(length, parts int) []int {
	out := make([]int, parts+1)
	for i := 1; i <= parts; i++ {
		out[i] = out[i-1] + length/parts
		if i <= length%parts {
			out[i]++
		}
	}
	return out
}

// colorBlocks greedily colors the block interaction graph: two blocks
// interact when any cell of one lies in the neighborhood of a cell of the
// other.
func (pt *Partition) colorBlocks() {
	nBlocks := len(pt.Blocks)
	cellBlock := make([]int, pt.Grid.Size())
	for bi, b := range pt.Blocks {
		for _, c := range b.Cells {
			cellBlock[c] = bi
		}
	}
	adj := make([][]bool, nBlocks)
	for i := range adj {
		adj[i] = make([]bool, nBlocks)
	}
	for bi, b := range pt.Blocks {
		for _, c := range b.Cells {
			for _, nbc := range pt.nbOf[c] {
				adj[bi][cellBlock[nbc]] = true
				adj[cellBlock[nbc]][bi] = true
			}
		}
	}
	used := make([]bool, nBlocks+1)
	for bi := range pt.Blocks {
		for i := range used {
			used[i] = false
		}
		for bj := 0; bj < bi; bj++ {
			if adj[bi][bj] {
				used[pt.Blocks[bj].Color] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		pt.Blocks[bi].Color = c
		if c+1 > pt.NumColors {
			pt.NumColors = c + 1
		}
	}
}

// buildWaves covers the grid with pairwise-independent waves by greedy
// first-fit over the cells, interiors (block by block) before boundaries,
// so the big independent interior sets land in the earliest waves.
func (pt *Partition) buildWaves() {
	n := pt.Grid.Size()
	order := make([]int, 0, n)
	for _, b := range pt.Blocks {
		order = append(order, b.Interior...)
	}
	for _, b := range pt.Blocks {
		order = append(order, b.Boundary...)
	}
	// blocked[w] marks the cells conflicting with wave w's members.
	var blocked []map[int]bool
	for _, c := range order {
		placed := false
		for w := range pt.Waves {
			if !blocked[w][c] {
				pt.Waves[w] = append(pt.Waves[w], c)
				for _, nbc := range pt.nbOf[c] {
					blocked[w][nbc] = true
				}
				placed = true
				break
			}
		}
		if !placed {
			m := make(map[int]bool, len(pt.nbOf[c]))
			for _, nbc := range pt.nbOf[c] {
				m[nbc] = true
			}
			pt.Waves = append(pt.Waves, []int{c})
			blocked = append(blocked, m)
		}
	}
}

// Order returns the concatenated wave order as one permutation of the
// cells — the canonical sweep of the block-parallel engine.
func (pt *Partition) Order() []int {
	out := make([]int, 0, pt.Grid.Size())
	for _, w := range pt.Waves {
		out = append(out, w...)
	}
	return out
}

// Independent reports whether cells a and b may be updated concurrently:
// neither lies in the other's neighborhood and they are distinct.
func (pt *Partition) Independent(a, b int) bool {
	if a == b {
		return false
	}
	for _, c := range pt.nbOf[a] {
		if c == b {
			return false
		}
	}
	for _, c := range pt.nbOf[b] {
		if c == a {
			return false
		}
	}
	return true
}

// PlanWaves groups an ordered sequence of cell draws (repeats allowed)
// into execution waves, reusing waves' backing storage. Each wave's draws
// touch pairwise-independent cells, and a draw is always placed in a later
// wave than every earlier conflicting draw. Executing the waves in order —
// with the draws of one wave in any interleaving — is therefore equivalent
// to executing the draw sequence one by one. The returned slices index
// into draws, ascending within each wave.
//
// Not safe for concurrent use (shared level scratch).
func (pt *Partition) PlanWaves(draws []int, waves [][]int) [][]int {
	for i := range pt.level {
		pt.level[i] = 0
	}
	waves = waves[:0]
	for k, c := range draws {
		lvl := 0
		for _, nbc := range pt.nbOf[c] {
			if pt.level[nbc] > lvl {
				lvl = pt.level[nbc]
			}
		}
		lvl++ // this draw runs one wave after its latest conflicting draw
		pt.level[c] = lvl
		for len(waves) < lvl {
			if len(waves) < cap(waves) {
				waves = waves[:len(waves)+1]
				waves[len(waves)-1] = waves[len(waves)-1][:0]
			} else {
				waves = append(waves, nil)
			}
		}
		waves[lvl-1] = append(waves[lvl-1], k)
	}
	return waves
}
