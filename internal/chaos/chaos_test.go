package chaos

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory Backend recording writes and syncs.
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestCrashTearsAtExactOffset(t *testing.T) {
	m := &memFile{}
	f := Wrap(m, Fault{Kind: Crash, At: 10})
	if n, err := f.Write([]byte("0123456")); n != 7 || err != nil {
		t.Fatalf("pre-fault write: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("789abcdef"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write: err=%v, want ErrCrashed", err)
	}
	if n != 3 || m.buf.String() != "0123456789" {
		t.Fatalf("torn write persisted %q (n=%d), want exactly 10 bytes", m.buf.String(), n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatal("write after crash did not fail")
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatal("sync after crash did not fail")
	}
	if err := f.Close(); err != nil || !m.closed {
		t.Fatal("close after crash must still release the backend")
	}
}

func TestShortWriteKeepsHandleUsable(t *testing.T) {
	m := &memFile{}
	f := Wrap(m, Fault{Kind: ShortWrite, At: 4})
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrShortWrite) || n != 4 {
		t.Fatalf("short write: n=%d err=%v, want 4/ErrShortWrite", n, err)
	}
	if n, err := f.Write([]byte("gh")); n != 2 || err != nil {
		t.Fatalf("write after short write: n=%d err=%v", n, err)
	}
	if m.buf.String() != "abcdgh" {
		t.Fatalf("persisted %q", m.buf.String())
	}
}

func TestENOSPCRejectsWholeWrite(t *testing.T) {
	m := &memFile{}
	f := Wrap(m, Fault{Kind: ENOSPC, At: 5})
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("defg"))
	if !errors.Is(err, ErrNoSpace) || n != 0 {
		t.Fatalf("enospc write: n=%d err=%v", n, err)
	}
	if m.buf.String() != "abc" {
		t.Fatalf("enospc persisted partial bytes: %q", m.buf.String())
	}
	// One-shot: the handle keeps working afterwards.
	if _, err := f.Write([]byte("de")); err != nil {
		t.Fatal(err)
	}
}

func TestSyncFailFiresOnceAtOffset(t *testing.T) {
	m := &memFile{}
	f := Wrap(m, Fault{Kind: SyncFail, At: 3})
	if err := f.Sync(); err != nil {
		t.Fatalf("sync before offset: %v", err)
	}
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("sync at offset: %v, want ErrSyncFailed", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after fault: %v", err)
	}
	if m.syncs != 2 {
		t.Fatalf("backend saw %d syncs, want 2", m.syncs)
	}
}

func TestPlanDeterministicAndInRange(t *testing.T) {
	a := Plan(7, 64, 1000)
	b := Plan(7, 64, 1000)
	kinds := map[Kind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].At < 1 || a[i].At >= 1000 {
			t.Fatalf("fault %d offset %d outside [1, 1000)", i, a[i].At)
		}
		kinds[a[i].Kind]++
	}
	for k := Kind(0); k < numKinds; k++ {
		if kinds[k] == 0 {
			t.Fatalf("plan of 64 faults never drew kind %v", k)
		}
	}
	if c := Plan(8, 64, 1000); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("distinct seeds drew identical fault prefixes")
	}
}
