package chaos

import (
	"errors"
	"testing"
)

// --- Satellite: file faults planned at byte 0 and beyond EOF. ---

func TestFaultAtByteZero(t *testing.T) {
	// At=0 means nothing ever persists: the very first write crosses the
	// offset and tears with an empty prefix.
	m := &memFile{}
	f := Wrap(m, Fault{Kind: Crash, At: 0})
	n, err := f.Write([]byte("abc"))
	if !errors.Is(err, ErrCrashed) || n != 0 {
		t.Fatalf("write at fault@0: n=%d err=%v, want 0/ErrCrashed", n, err)
	}
	if m.buf.Len() != 0 {
		t.Fatalf("fault@0 persisted %q, want nothing", m.buf.String())
	}
	if !f.Tripped() {
		t.Fatal("fault@0 did not report tripped")
	}

	m2 := &memFile{}
	f2 := Wrap(m2, Fault{Kind: ShortWrite, At: 0})
	n, err = f2.Write([]byte("abc"))
	if !errors.Is(err, ErrShortWrite) || n != 0 {
		t.Fatalf("short write at fault@0: n=%d err=%v, want 0/ErrShortWrite", n, err)
	}
	if n, err := f2.Write([]byte("xy")); n != 2 || err != nil {
		t.Fatalf("handle unusable after short write@0: n=%d err=%v", n, err)
	}
	if m2.buf.String() != "xy" {
		t.Fatalf("persisted %q, want %q", m2.buf.String(), "xy")
	}
}

func TestFaultBeyondEOFNeverTrips(t *testing.T) {
	// A fault offset past everything the workload writes must never fire:
	// the wrapper is transparent and Tripped stays false, which is how a
	// torture harness distinguishes "survived the fault" from "never
	// reached it".
	m := &memFile{}
	f := Wrap(m, Fault{Kind: Crash, At: 1 << 30})
	for i := 0; i < 10; i++ {
		if n, err := f.Write([]byte("0123456789")); n != 10 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if f.Tripped() {
		t.Fatal("fault beyond EOF reported tripped")
	}
	if f.Offset() != 100 || m.buf.Len() != 100 {
		t.Fatalf("offset=%d len=%d, want 100/100", f.Offset(), m.buf.Len())
	}

	// Same for SyncFail: syncs below the offset pass through.
	m2 := &memFile{}
	f2 := Wrap(m2, Fault{Kind: SyncFail, At: 1 << 30})
	if _, err := f2.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil || f2.Tripped() {
		t.Fatalf("sync below offset: err=%v tripped=%v", err, f2.Tripped())
	}
}

// --- Message-fault plans. ---

func TestMsgPlanDeterministicAndInRange(t *testing.T) {
	const n, workers, rounds = 64, 4, 8
	a := MsgPlan(7, n, workers, rounds)
	b := MsgPlan(7, n, workers, rounds)
	if len(a) != n {
		t.Fatalf("plan length %d, want %d", len(a), n)
	}
	kinds := map[MsgKind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		f := a[i]
		if f.Worker < 0 || f.Worker >= workers {
			t.Fatalf("fault %d worker %d out of range", i, f.Worker)
		}
		if f.Round < 0 || f.Round >= rounds {
			t.Fatalf("fault %d round %d out of range", i, f.Round)
		}
		if f.Count < 1 {
			t.Fatalf("fault %d count %d < 1", i, f.Count)
		}
		if f.Kind == MsgDrop && f.Count > 2 {
			t.Fatalf("drop count %d exceeds the retry-absorbable bound", f.Count)
		}
		if f.Kind == MsgDown && f.Worker == 0 {
			t.Fatal("permanent death planned for worker 0 (survivor guarantee broken)")
		}
		kinds[f.Kind]++
	}
	for k := MsgDrop; k < numMsgKinds; k++ {
		if kinds[k] == 0 {
			t.Errorf("64-fault plan contains no %v faults", k)
		}
	}
	c := MsgPlan(8, n, workers, rounds)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical message plans")
	}
}

func TestMsgPlanSingleWorkerNeverDownsIt(t *testing.T) {
	for _, f := range MsgPlan(3, 128, 1, 6) {
		if f.Kind == MsgDown {
			t.Fatalf("single-host plan contains %v", f)
		}
		if f.Worker != 0 {
			t.Fatalf("worker %d in a 1-worker plan", f.Worker)
		}
	}
}

func TestMsgKindStrings(t *testing.T) {
	want := map[MsgKind]string{
		MsgDrop:  "msg-drop",
		MsgDelay: "msg-delay",
		MsgDup:   "msg-dup",
		MsgKill:  "worker-kill",
		MsgDown:  "worker-down",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	f := MsgFault{Worker: 2, Round: 3, Kind: MsgDrop, Count: 2}
	if f.String() != "msg-drop@w2/r3 x2" {
		t.Errorf("fault string %q", f.String())
	}
}
