// Package chaos provides deterministic fault injection for the
// durability layer: writable file handles whose writes and syncs fail
// according to a seeded schedule, so crash recovery is tested against
// every byte offset a real crash could tear at instead of only the
// clean shutdowns a test harness naturally produces.
//
// The model is one fault per handle. A Crash loses every byte past the
// trigger offset and kills the handle — the bytes before the offset are
// exactly what a torn write leaves on disk. A ShortWrite persists the
// same prefix but reports the short count with an error, modelling a
// partial write the caller notices. ENOSPC rejects the triggering write
// wholesale (the file stays at a record boundary if the caller writes
// records). SyncFail lets writes through but fails the first Sync at or
// past the offset — the fsync-returned-EIO case, after which a careful
// caller must treat everything since the last good sync as unpersisted.
//
// Schedules are pure functions of (seed, index), so a torture run that
// finds a bug names the exact fault that triggered it and replays it.
package chaos

import (
	"errors"
	"fmt"
	"io"

	"gridcma/internal/rng"
)

// Kind enumerates the injected fault types.
type Kind int

const (
	// Crash: the triggering write persists only the bytes before the
	// offset; that write and every later operation fail with ErrCrashed.
	Crash Kind = iota
	// ShortWrite: the triggering write persists the prefix before the
	// offset and returns the short count with ErrShortWrite; the handle
	// stays usable (the caller decides whether a short write is fatal).
	ShortWrite
	// ENOSPC: the triggering write fails entirely with ErrNoSpace and
	// persists nothing; the handle stays usable.
	ENOSPC
	// SyncFail: writes are untouched; the first Sync at or past the
	// offset returns ErrSyncFailed (later Syncs succeed again).
	SyncFail
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case ShortWrite:
		return "short-write"
	case ENOSPC:
		return "enospc"
	case SyncFail:
		return "sync-fail"
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// The injected failures.
var (
	ErrCrashed    = errors.New("chaos: crashed")
	ErrShortWrite = errors.New("chaos: short write")
	ErrNoSpace    = errors.New("chaos: no space left on device")
	ErrSyncFailed = errors.New("chaos: fsync failed")
)

// Fault is one scheduled failure: Kind triggers when the handle's byte
// offset reaches At (for SyncFail, when a Sync is issued at offset ≥ At).
type Fault struct {
	Kind Kind  `json:"kind"`
	At   int64 `json:"at"`
}

func (f Fault) String() string { return fmt.Sprintf("%s@%d", f.Kind, f.At) }

// Backend is the slice of *os.File the injector needs.
type Backend interface {
	io.Writer
	Sync() error
	Close() error
}

// File wraps a Backend with one scheduled fault. It is not safe for
// concurrent use, matching the single-writer discipline of a WAL.
type File struct {
	b       Backend
	fault   Fault
	off     int64
	dead    bool
	tripped bool
}

// Wrap returns f's fault-injecting wrapper.
func Wrap(b Backend, fault Fault) *File {
	return &File{b: b, fault: fault}
}

// Offset returns the number of bytes successfully written so far.
func (c *File) Offset() int64 { return c.off }

// Tripped reports whether the fault has fired.
func (c *File) Tripped() bool { return c.tripped }

// Write passes p through unless it crosses the fault offset.
func (c *File) Write(p []byte) (int, error) {
	if c.dead {
		return 0, ErrCrashed
	}
	if !c.tripped && c.fault.Kind != SyncFail && c.off+int64(len(p)) > c.fault.At {
		c.tripped = true
		switch c.fault.Kind {
		case ENOSPC:
			return 0, ErrNoSpace
		case Crash, ShortWrite:
			keep := c.fault.At - c.off
			if keep < 0 {
				keep = 0
			}
			n, err := c.b.Write(p[:keep])
			c.off += int64(n)
			if err != nil {
				return n, err
			}
			if c.fault.Kind == Crash {
				c.dead = true
				return n, ErrCrashed
			}
			return n, ErrShortWrite
		}
	}
	n, err := c.b.Write(p)
	c.off += int64(n)
	return n, err
}

// Sync passes through unless a SyncFail fault is due (or the handle
// already crashed).
func (c *File) Sync() error {
	if c.dead {
		return ErrCrashed
	}
	if !c.tripped && c.fault.Kind == SyncFail && c.off >= c.fault.At {
		c.tripped = true
		return ErrSyncFailed
	}
	return c.b.Sync()
}

// Close closes the backend; it works even after a crash so the harness
// can release the real file descriptor.
func (c *File) Close() error { return c.b.Close() }

// Plan draws n faults deterministically from seed, with trigger offsets
// spread uniformly over [1, size) and kinds cycling with a bias toward
// torn writes (Crash and ShortWrite are the faults that tear records;
// ENOSPC and SyncFail land on cleaner boundaries but must be survived
// all the same).
func Plan(seed uint64, n int, size int64) []Fault {
	if size < 2 {
		size = 2
	}
	r := rng.New(seed ^ 0xc4a05f11)
	kinds := []Kind{Crash, ShortWrite, Crash, ENOSPC, Crash, ShortWrite, SyncFail}
	out := make([]Fault, n)
	for i := range out {
		out[i] = Fault{
			Kind: kinds[i%len(kinds)],
			At:   1 + int64(r.Intn(int(size-1))),
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Message-level faults for the distributed island engine.
//
// Where the file faults above tear a WAL at byte offsets, message faults
// tear an RPC conversation at (worker, round) offsets: requests are
// dropped, delayed past timeouts, delivered twice, or the worker process
// dies — once (the supervisor restarts it) or for good (the migration
// ring must heal around it). Plans are again pure functions of the seed,
// so a disttorture case that fails names the exact fault schedule.

// MsgKind enumerates the injected message/worker fault types.
type MsgKind int

const (
	// MsgDrop: the call is lost in flight (request or reply — the caller
	// cannot tell) and fails; the next attempt goes through. Count
	// consecutive calls are dropped.
	MsgDrop MsgKind = iota
	// MsgDelay: the call is held for Count delay units before being
	// delivered. A delay longer than the caller's per-call timeout is the
	// heartbeat-timeout case: the caller gives up, the reply is discarded.
	MsgDelay
	// MsgDup: the request is delivered twice; the caller uses the last
	// reply. Probes that segment execution is idempotent (workers are
	// stateless, so it must be).
	MsgDup
	// MsgKill: the worker dies when the fault fires; the supervisor's
	// restart succeeds and the call is retried against the fresh worker.
	MsgKill
	// MsgDown: the worker dies and every restart fails for the rest of
	// the run — from the fault's round onward all its calls fail, its
	// islands are lost, and the ring heals around them.
	MsgDown
	numMsgKinds
)

func (k MsgKind) String() string {
	switch k {
	case MsgDrop:
		return "msg-drop"
	case MsgDelay:
		return "msg-delay"
	case MsgDup:
		return "msg-dup"
	case MsgKill:
		return "worker-kill"
	case MsgDown:
		return "worker-down"
	}
	return fmt.Sprintf("chaos.MsgKind(%d)", int(k))
}

// MsgFault is one scheduled message fault: Kind fires on calls to Worker
// during (for MsgDown: from) round Round. Count scales repeatable kinds —
// consecutive drops, or delay units to hold a delivery.
type MsgFault struct {
	Worker int     `json:"worker"`
	Round  int     `json:"round"`
	Kind   MsgKind `json:"kind"`
	Count  int     `json:"count,omitempty"`
}

func (f MsgFault) String() string {
	if f.Count > 1 {
		return fmt.Sprintf("%s@w%d/r%d x%d", f.Kind, f.Worker, f.Round, f.Count)
	}
	return fmt.Sprintf("%s@w%d/r%d", f.Kind, f.Worker, f.Round)
}

// MsgPlan draws n message faults deterministically from seed, spread over
// workers [0, workers) and rounds [0, rounds), cycling kinds with a bias
// toward the transient faults retries must absorb. Drop counts stay at or
// below 2 so a default 4-attempt retry budget can always absorb them, and
// permanent deaths (MsgDown) never target worker 0, guaranteeing at least
// one survivor host however many faults a torture case stacks up.
func MsgPlan(seed uint64, n, workers, rounds int) []MsgFault {
	if workers < 1 {
		workers = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	r := rng.New(seed ^ 0x9e5cf1a7)
	kinds := []MsgKind{MsgDrop, MsgKill, MsgDelay, MsgDrop, MsgDup, MsgDelay, MsgKill, MsgDown}
	// Rotate the cycle by a seeded offset so plans shorter than one full
	// cycle still sample every kind across seeds (a 4-fault plan starting
	// at offset 0 would otherwise never contain a permanent death).
	off := r.Intn(len(kinds))
	out := make([]MsgFault, n)
	for i := range out {
		f := MsgFault{
			Kind:   kinds[(off+i)%len(kinds)],
			Worker: r.Intn(workers),
			Round:  r.Intn(rounds),
			Count:  1,
		}
		switch f.Kind {
		case MsgDrop:
			f.Count = 1 + r.Intn(2)
		case MsgDelay:
			f.Count = 1 + r.Intn(3)
		case MsgDown:
			if workers > 1 {
				f.Worker = 1 + r.Intn(workers-1)
			} else {
				// A single host must stay alive: degrade to a transient kill.
				f.Kind = MsgKill
			}
		}
		out[i] = f
	}
	return out
}
