// Package heuristics implements the constructive (one-pass) schedulers the
// paper and its benchmark lineage use: LJFR-SJFR — the heuristic that seeds
// the cMA population and the flowtime baseline of Table 4 — plus the
// classic immediate- and batch-mode heuristics of Braun et al. (JPDC 2001):
// OLB, MET, MCT, Min-Min, Max-Min, Duplex, Sufferage and a random
// work-queue assigner. All of them build a schedule.Schedule from an ETC
// instance; none of them use randomness except WorkQueue.
package heuristics

import (
	"fmt"
	"math"
	"sort"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// Heuristic is a deterministic constructive scheduler.
type Heuristic func(in *etc.Instance) schedule.Schedule

// ByName resolves a heuristic by its canonical lower-case name.
func ByName(name string) (Heuristic, error) {
	switch name {
	case "ljfr-sjfr", "ljfrsjfr":
		return LJFRSJFR, nil
	case "minmin", "min-min":
		return MinMin, nil
	case "maxmin", "max-min":
		return MaxMin, nil
	case "duplex":
		return Duplex, nil
	case "sufferage":
		return Sufferage, nil
	case "mct":
		return MCT, nil
	case "met":
		return MET, nil
	case "olb":
		return OLB, nil
	case "kpb":
		return KPB, nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
	}
}

// Names lists the deterministic heuristics available through ByName.
func Names() []string {
	return []string{"ljfr-sjfr", "minmin", "maxmin", "duplex", "sufferage", "mct", "met", "olb", "kpb"}
}

// completionTracker is the small running state every list heuristic needs:
// machine availability times starting from the instance ready times.
type completionTracker struct {
	in    *etc.Instance
	avail []float64
}

func newTracker(in *etc.Instance) *completionTracker {
	return &completionTracker{in: in, avail: append([]float64(nil), in.Ready...)}
}

// place assigns job j to machine m.
func (ct *completionTracker) place(s schedule.Schedule, j, m int) {
	s[j] = m
	ct.avail[m] += ct.in.At(j, m)
}

// bestMachineFor returns the machine minimising the completion time of job
// j given current availability (MCT rule).
func (ct *completionTracker) bestMachineFor(j int) int {
	best, arg := math.Inf(1), 0
	for m := 0; m < ct.in.Machs; m++ {
		if c := ct.avail[m] + ct.in.At(j, m); c < best {
			best, arg = c, m
		}
	}
	return arg
}

// fastestAvailable returns the machine with the minimum availability time.
func (ct *completionTracker) fastestAvailable() int {
	best, arg := math.Inf(1), 0
	for m, a := range ct.avail {
		if a < best {
			best, arg = a, m
		}
	}
	return arg
}

// LJFRSJFR is the Longest Job to Fastest Resource / Shortest Job to Fastest
// Resource heuristic (Abraham, Buyya & Nath) the paper uses to seed the cMA
// population. Jobs are sorted by workload; the nb_machines longest jobs go
// to the machines ordered fastest-first; each remaining placement picks the
// machine that frees up first and alternately gives it the shortest (SJFR)
// or longest (LJFR) remaining job, balancing flowtime against makespan.
func LJFRSJFR(in *etc.Instance) schedule.Schedule {
	s := make(schedule.Schedule, in.Jobs)
	ct := newTracker(in)

	// Jobs ascending by workload; machines descending by speed.
	jobs := make([]int, in.Jobs)
	for i := range jobs {
		jobs[i] = i
	}
	sort.Slice(jobs, func(a, b int) bool {
		wa, wb := in.Workload(jobs[a]), in.Workload(jobs[b])
		if wa != wb {
			return wa < wb
		}
		return jobs[a] < jobs[b]
	})
	machs := make([]int, in.Machs)
	for m := range machs {
		machs[m] = m
	}
	sort.Slice(machs, func(a, b int) bool {
		sa, sb := in.Speed(machs[a]), in.Speed(machs[b])
		if sa != sb {
			return sa > sb
		}
		return machs[a] < machs[b]
	})

	lo, hi := 0, len(jobs)-1
	// Phase 1: the nb_machines longest jobs, longest to fastest machine.
	for k := 0; k < in.Machs && lo <= hi; k++ {
		ct.place(s, jobs[hi], machs[k])
		hi--
	}
	// Phase 2: alternate SJFR / LJFR on the machine that frees up first.
	takeShortest := true
	for lo <= hi {
		m := ct.fastestAvailable()
		var j int
		if takeShortest {
			j = jobs[lo]
			lo++
		} else {
			j = jobs[hi]
			hi--
		}
		ct.place(s, j, m)
		takeShortest = !takeShortest
	}
	return s
}

// MCT (Minimum Completion Time) assigns each job, in index order, to the
// machine that completes it earliest.
func MCT(in *etc.Instance) schedule.Schedule {
	s := make(schedule.Schedule, in.Jobs)
	ct := newTracker(in)
	for j := 0; j < in.Jobs; j++ {
		ct.place(s, j, ct.bestMachineFor(j))
	}
	return s
}

// MET (Minimum Execution Time) assigns each job to the machine with the
// smallest ETC entry regardless of load. On consistent matrices it
// collapses onto the single fastest machine — the known pathology.
func MET(in *etc.Instance) schedule.Schedule {
	s := make(schedule.Schedule, in.Jobs)
	for j := 0; j < in.Jobs; j++ {
		best, arg := math.Inf(1), 0
		for m := 0; m < in.Machs; m++ {
			if e := in.At(j, m); e < best {
				best, arg = e, m
			}
		}
		s[j] = arg
	}
	return s
}

// OLB (Opportunistic Load Balancing) assigns each job to the machine that
// becomes available soonest, ignoring execution times.
func OLB(in *etc.Instance) schedule.Schedule {
	s := make(schedule.Schedule, in.Jobs)
	ct := newTracker(in)
	for j := 0; j < in.Jobs; j++ {
		ct.place(s, j, ct.fastestAvailable())
	}
	return s
}

// minMinLike runs the Min-Min family: repeatedly compute for every
// unscheduled job its minimum completion time over machines, then commit
// the job chosen by pick (min for Min-Min, max for Max-Min).
func minMinLike(in *etc.Instance, pickMax bool) schedule.Schedule {
	s := make(schedule.Schedule, in.Jobs)
	ct := newTracker(in)
	unsched := make([]int, in.Jobs)
	for i := range unsched {
		unsched[i] = i
	}
	for len(unsched) > 0 {
		bestVal := math.Inf(1)
		if pickMax {
			bestVal = math.Inf(-1)
		}
		bestIdx, bestMach := -1, 0
		for idx, j := range unsched {
			m := ct.bestMachineFor(j)
			c := ct.avail[m] + in.At(j, m)
			better := c < bestVal
			if pickMax {
				better = c > bestVal
			}
			if better {
				bestVal, bestIdx, bestMach = c, idx, m
			}
		}
		j := unsched[bestIdx]
		ct.place(s, j, bestMach)
		unsched[bestIdx] = unsched[len(unsched)-1]
		unsched = unsched[:len(unsched)-1]
	}
	return s
}

// MinMin schedules the job with the smallest minimum completion time first.
func MinMin(in *etc.Instance) schedule.Schedule { return minMinLike(in, false) }

// MaxMin schedules the job with the largest minimum completion time first.
func MaxMin(in *etc.Instance) schedule.Schedule { return minMinLike(in, true) }

// Duplex runs Min-Min and Max-Min and keeps the schedule with the better
// makespan, as in Braun et al. The comparison sums machine loads directly
// — a makespan needs no per-machine job ordering — instead of building
// two throwaway incremental evaluators.
func Duplex(in *etc.Instance) schedule.Schedule {
	a, b := MinMin(in), MaxMin(in)
	avail := make([]float64, in.Machs)
	if makespanInto(avail, in, a) <= makespanInto(avail, in, b) {
		return a
	}
	return b
}

// makespanInto computes the makespan of s using avail (length nb_machines)
// as its only working storage, so callers comparing several schedules
// reuse one buffer.
func makespanInto(avail []float64, in *etc.Instance, s schedule.Schedule) float64 {
	copy(avail, in.Ready)
	for j, m := range s {
		avail[m] += in.At(j, m)
	}
	max := 0.0
	for _, c := range avail {
		if c > max {
			max = c
		}
	}
	return max
}

// Sufferage repeatedly commits the unscheduled job that would "suffer" most
// if denied its best machine: the one with the largest difference between
// its second-best and best completion times.
func Sufferage(in *etc.Instance) schedule.Schedule {
	s := make(schedule.Schedule, in.Jobs)
	ct := newTracker(in)
	unsched := make([]int, in.Jobs)
	for i := range unsched {
		unsched[i] = i
	}
	for len(unsched) > 0 {
		bestSuff := math.Inf(-1)
		bestIdx, bestMach := -1, 0
		for idx, j := range unsched {
			first, second := math.Inf(1), math.Inf(1)
			argFirst := 0
			for m := 0; m < in.Machs; m++ {
				c := ct.avail[m] + in.At(j, m)
				if c < first {
					second = first
					first, argFirst = c, m
				} else if c < second {
					second = c
				}
			}
			suff := second - first
			if math.IsInf(second, 1) { // single machine
				suff = 0
			}
			if suff > bestSuff {
				bestSuff, bestIdx, bestMach = suff, idx, argFirst
			}
		}
		j := unsched[bestIdx]
		ct.place(s, j, bestMach)
		unsched[bestIdx] = unsched[len(unsched)-1]
		unsched = unsched[:len(unsched)-1]
	}
	return s
}

// KPB (K-Percent Best, Maheswaran et al.) assigns each job, in index
// order, to the minimum-completion-time machine among the 20 % of
// machines with the smallest execution time for that job — a middle
// ground between MET (k→0) and MCT (k→100).
func KPB(in *etc.Instance) schedule.Schedule {
	k := in.Machs / 5
	if k < 1 {
		k = 1
	}
	s := make(schedule.Schedule, in.Jobs)
	ct := newTracker(in)
	order := make([]int, in.Machs)
	for j := 0; j < in.Jobs; j++ {
		for m := range order {
			order[m] = m
		}
		sort.Slice(order, func(a, b int) bool {
			ea, eb := in.At(j, order[a]), in.At(j, order[b])
			if ea != eb {
				return ea < eb
			}
			return order[a] < order[b]
		})
		best, arg := math.Inf(1), order[0]
		for _, m := range order[:k] {
			if c := ct.avail[m] + in.At(j, m); c < best {
				best, arg = c, m
			}
		}
		ct.place(s, j, arg)
	}
	return s
}

// WorkQueue assigns each job to a uniformly random machine; it is the
// throughput-agnostic baseline and the population filler of the GAs.
func WorkQueue(in *etc.Instance, r *rng.Source) schedule.Schedule {
	return schedule.NewRandom(in, r)
}
