package heuristics

import (
	"testing"
	"testing/quick"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

func bench512(seed uint64, class etc.Class) *etc.Instance {
	return etc.Generate(class, 0, etc.GenerateOptions{Seed: seed})
}

func small(seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: 64, Machs: 8})
}

func allHeuristics() map[string]Heuristic {
	out := map[string]Heuristic{}
	for _, n := range Names() {
		h, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out[n] = h
	}
	return out
}

func TestAllProduceValidSchedules(t *testing.T) {
	in := small(1)
	for name, h := range allHeuristics() {
		s := h(in)
		if err := s.Validate(in); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
	if h, err := ByName("min-min"); err != nil || h == nil {
		t.Fatal("alias min-min should resolve")
	}
}

func TestDeterminism(t *testing.T) {
	in := small(2)
	for name, h := range allHeuristics() {
		if !h(in).Equal(h(in)) {
			t.Errorf("%s not deterministic", name)
		}
	}
}

func TestMETPicksRowMinimum(t *testing.T) {
	in := small(3)
	s := MET(in)
	for j := 0; j < in.Jobs; j++ {
		chosen := in.At(j, s[j])
		for m := 0; m < in.Machs; m++ {
			if in.At(j, m) < chosen {
				t.Fatalf("job %d: machine %d (%v) beats chosen %d (%v)", j, m, in.At(j, m), s[j], chosen)
			}
		}
	}
}

func TestMETCollapsesOnConsistent(t *testing.T) {
	in := bench512(4, etc.Class{Consistency: etc.Consistent, JobHet: etc.Low, MachineHet: etc.Low})
	s := MET(in)
	first := s[0]
	for _, m := range s {
		if m != first {
			t.Fatal("MET on a consistent matrix should use a single machine")
		}
	}
}

func TestMinMinBeatsRandomAndOLB(t *testing.T) {
	in := small(5)
	r := rng.New(6)
	ms := func(s schedule.Schedule) float64 { return schedule.NewState(in, s).Makespan() }
	mm := ms(MinMin(in))
	if rnd := ms(schedule.NewRandom(in, r)); mm >= rnd {
		t.Errorf("Min-Min (%v) should beat random (%v)", mm, rnd)
	}
	if olb := ms(OLB(in)); mm >= olb {
		t.Errorf("Min-Min (%v) should beat OLB (%v) on heterogeneous instances", mm, olb)
	}
}

func TestDuplexNoWorseThanBothParents(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		in := small(seed)
		ms := func(s schedule.Schedule) float64 { return schedule.NewState(in, s).Makespan() }
		d := ms(Duplex(in))
		if mm, xm := ms(MinMin(in)), ms(MaxMin(in)); d > mm || d > xm {
			if d > mm && d > xm {
				t.Fatalf("seed %d: duplex %v worse than both min-min %v and max-min %v", seed, d, mm, xm)
			}
			t.Fatalf("seed %d: duplex did not pick the better parent", seed)
		}
	}
}

func TestLJFRSJFRPhase1LongestToFastest(t *testing.T) {
	// 4 jobs, 2 machines: machine 0 uniformly faster.
	in := etc.New("t", 4, 2)
	// workloads: job3 longest ... job0 shortest
	for j := 0; j < 4; j++ {
		base := float64(j + 1)
		in.Set(j, 0, base)   // fast machine
		in.Set(j, 1, 2*base) // slow machine
	}
	in.Finalize()
	s := LJFRSJFR(in)
	// Phase 1 assigns the 2 longest jobs (3, 2): longest (3) to fastest (m0).
	if s[3] != 0 {
		t.Errorf("longest job on machine %d, want 0 (fastest)", s[3])
	}
	if s[2] != 1 {
		t.Errorf("second longest job on machine %d, want 1", s[2])
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestLJFRSJFRReasonableQuality(t *testing.T) {
	// The seed heuristic should comfortably beat a random schedule on both
	// objectives for a benchmark-sized instance.
	in := bench512(7, etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High})
	r := rng.New(8)
	h := schedule.NewState(in, LJFRSJFR(in))
	rnd := schedule.NewState(in, schedule.NewRandom(in, r))
	if h.Makespan() >= rnd.Makespan() {
		t.Errorf("LJFR-SJFR makespan %v not better than random %v", h.Makespan(), rnd.Makespan())
	}
	if h.Flowtime() >= rnd.Flowtime() {
		t.Errorf("LJFR-SJFR flowtime %v not better than random %v", h.Flowtime(), rnd.Flowtime())
	}
}

func TestSufferageValidAndCompetitive(t *testing.T) {
	in := small(9)
	s := Sufferage(in)
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	ms := schedule.NewState(in, s).Makespan()
	olb := schedule.NewState(in, OLB(in)).Makespan()
	if ms >= olb {
		t.Errorf("Sufferage (%v) should beat OLB (%v)", ms, olb)
	}
}

func TestMCTRespectsReadyTimes(t *testing.T) {
	in := etc.New("t", 1, 2)
	in.Set(0, 0, 10)
	in.Set(0, 1, 12)
	in.Ready[0] = 100 // machine 0 busy for a long time
	in.Finalize()
	s := MCT(in)
	if s[0] != 1 {
		t.Fatalf("MCT ignored ready time, chose machine %d", s[0])
	}
}

func TestHeuristicOrderingOnBenchmark(t *testing.T) {
	// Sanity ordering on a consistent hi-hi instance: min-min and
	// sufferage should be among the strongest, MET degenerate.
	in := bench512(10, etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High})
	ms := map[string]float64{}
	for name, h := range allHeuristics() {
		ms[name] = schedule.NewState(in, h(in)).Makespan()
	}
	if ms["minmin"] >= ms["met"] {
		t.Errorf("min-min (%v) should beat MET (%v) on consistent matrices", ms["minmin"], ms["met"])
	}
	if ms["ljfr-sjfr"] >= ms["met"] {
		t.Errorf("ljfr-sjfr (%v) should beat MET (%v)", ms["ljfr-sjfr"], ms["met"])
	}
}

func TestPropertyAllValidAcrossClasses(t *testing.T) {
	classes := etc.AllClasses()
	f := func(seed uint64, classIdx uint8) bool {
		in := etc.Generate(classes[int(classIdx)%len(classes)], 0,
			etc.GenerateOptions{Seed: seed, Jobs: 32, Machs: 6})
		for _, h := range allHeuristics() {
			if h(in).Validate(in) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMinMin512(b *testing.B) {
	in := bench512(1, etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MinMin(in)
	}
}

func BenchmarkLJFRSJFR512(b *testing.B) {
	in := bench512(1, etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LJFRSJFR(in)
	}
}

func TestKPBBetweenMETAndMCT(t *testing.T) {
	// On a consistent matrix MET collapses (terrible makespan); KPB's
	// restriction to the best 20% machines must avoid that pathology and
	// behave comparably to MCT.
	in := bench512(20, etc.Class{Consistency: etc.Consistent, JobHet: etc.High, MachineHet: etc.High})
	ms := func(s schedule.Schedule) float64 { return schedule.NewState(in, s).Makespan() }
	kpb, met, mct := ms(KPB(in)), ms(MET(in)), ms(MCT(in))
	if kpb >= met {
		t.Errorf("KPB (%v) should beat MET (%v) on consistent matrices", kpb, met)
	}
	if kpb > 3*mct {
		t.Errorf("KPB (%v) should be within 3x of MCT (%v)", kpb, mct)
	}
}

func TestKPBUsesOnlyTopMachines(t *testing.T) {
	// With 4 machines, k = max(1, 4/5) = 1: KPB degenerates to MET.
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.Low, MachineHet: etc.Low},
		0, etc.GenerateOptions{Seed: 21, Jobs: 20, Machs: 4})
	if !KPB(in).Equal(MET(in)) {
		t.Error("KPB with k=1 must equal MET")
	}
}
