package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridcma/internal/eventlog"
)

func newTestDaemon(t *testing.T, cfg ServerConfig) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := d.Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return d, srv
}

func postJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestServerSubmitQueryStats(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig(), AdmitPending: 4}
	_, srv := newTestDaemon(t, cfg)

	var joined []eventlog.Event
	postJSON(t, srv.URL+"/event", []map[string]any{
		{"type": "join", "mult": 1},
		{"type": "join", "mult": 2},
	}, &joined)
	if len(joined) != 2 || joined[0].Mach != 1 || joined[1].Mach != 2 {
		t.Fatalf("joins came back %+v", joined)
	}

	var sr SubmitResponse
	postJSON(t, srv.URL+"/submit", SubmitRequest{Bases: []float64{2, 3, 4, 5}}, &sr)
	if len(sr.IDs) != 4 || sr.IDs[0] != 1 {
		t.Fatalf("submit ids %v", sr.IDs)
	}
	if !sr.Admitted {
		t.Fatal("4 pending with AdmitPending=4 did not admit")
	}

	var info JobInfo
	getJSON(t, srv.URL+"/query?job=2", &info)
	if info.State != "placed" || info.Mach == 0 {
		t.Fatalf("job 2 after admission: %+v", info)
	}

	var stats Stats
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Placed != 4 || stats.Counters.Admits != 1 || stats.Machines != 2 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Latency.Count != 4 || stats.Latency.P99Ms < 0 {
		t.Fatalf("latency stats %+v", stats.Latency)
	}
	if stats.Makespan <= 0 || stats.Makespan >= blockETC/2 {
		t.Fatalf("stats makespan %v", stats.Makespan)
	}

	// Invalid events surface as client errors, not daemon state changes.
	before := stats.Applied
	if resp := postJSON(t, srv.URL+"/event", map[string]any{"type": "leave", "mach": 99}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad leave: status %v", resp.Status)
	}
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Applied != before {
		t.Fatal("rejected event advanced the applied sequence")
	}
}

// TestServerRestartReplaysByteIdentical is the CI smoke contract: run a
// daemon with a write-ahead log, snapshot mid-stream, keep running, then
// build a second daemon from the snapshot plus the log suffix and compare
// full snapshots byte for byte.
func TestServerRestartReplaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "gridd.log")
	cfg := ServerConfig{Grid: testConfig(), AdmitPending: 3, LogPath: logPath}
	_, srv := newTestDaemon(t, cfg)

	postJSON(t, srv.URL+"/event", []map[string]any{
		{"type": "join", "mult": 1}, {"type": "join", "mult": 2}, {"type": "join", "mult": 1},
	}, nil)
	postJSON(t, srv.URL+"/submit", SubmitRequest{Bases: []float64{2, 3, 4, 5, 6}}, nil)

	// Mid-stream snapshot (also flushes the log).
	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var midSnap bytes.Buffer
	if _, err := midSnap.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Keep going: complete, fail a machine, more submissions, admissions.
	postJSON(t, srv.URL+"/event", []map[string]any{
		{"type": "complete", "job": 1},
		{"type": "fail", "mach": 2},
	}, nil)
	postJSON(t, srv.URL+"/submit", SubmitRequest{Bases: []float64{7, 8, 9}}, nil)
	postJSON(t, srv.URL+"/admit", struct{}{}, nil)

	var finalLive bytes.Buffer
	resp, err = http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := finalLive.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Restore the mid-stream snapshot and replay the log suffix.
	restored, err := ReadSnapshot(bytes.NewReader(midSnap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := eventlog.Read(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, e := range events {
		if e.Seq <= restored.Applied() {
			continue
		}
		if err := restored.Apply(e); err != nil {
			t.Fatalf("replaying %+v: %v", e, err)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("log held no suffix past the snapshot")
	}
	var restoredSnap bytes.Buffer
	if err := restored.WriteSnapshot(&restoredSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(finalLive.Bytes(), restoredSnap.Bytes()) {
		t.Fatalf("restored snapshot differs from live:\nlive     %s\nrestored %s",
			strings.TrimSpace(finalLive.String()), strings.TrimSpace(restoredSnap.String()))
	}
}

// TestServerWALSurvivesRejectedEvent pins the write-ahead sequencing
// contract: a structurally valid but state-invalid event (a leave of an
// unknown machine) must not consume a log sequence number. The daemon
// keeps accepting events afterwards, the log holds exactly the applied
// events contiguously numbered, and replaying it reproduces the live
// digest.
func TestServerWALSurvivesRejectedEvent(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "gridd.log")
	cfg := ServerConfig{Grid: testConfig(), AdmitPending: 2, LogPath: logPath}
	d, srv := newTestDaemon(t, cfg)

	postJSON(t, srv.URL+"/event", map[string]any{"type": "join", "mult": 1}, nil)
	if resp := postJSON(t, srv.URL+"/event", map[string]any{"type": "leave", "mach": 9}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("leave of unknown machine: status %v", resp.Status)
	}
	// The rejected event consumed no sequence number: later events must
	// still apply (and trip the admission threshold).
	var sr SubmitResponse
	if resp := postJSON(t, srv.URL+"/submit", SubmitRequest{Bases: []float64{2, 3}}, &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit after rejected event: status %v", resp.Status)
	}
	if !sr.Admitted {
		t.Fatal("submit after rejected event did not admit")
	}
	liveDigest := d.g.Digest()
	applied := d.g.Applied()
	srv.Close()
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}

	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := eventlog.Read(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != applied {
		t.Fatalf("log holds %d events, grid applied %d", len(events), applied)
	}
	g, err := NewGrid(cfg.Grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Seq != g.Applied()+1 {
			t.Fatalf("log seq %d after applied %d: rejected event consumed a sequence number", e.Seq, g.Applied())
		}
		if err := g.Apply(e); err != nil {
			t.Fatalf("replaying seq %d: %v", e.Seq, err)
		}
	}
	if got := g.Digest(); got != liveDigest {
		t.Fatalf("replayed digest %s != live digest %s", got, liveDigest)
	}
}

// TestServerSubmitRejectsWholeBatch pins all-or-nothing submission: a bad
// base anywhere in the batch rejects the whole request before any
// submission is applied, so the client never loses ids to a half-applied
// batch.
func TestServerSubmitRejectsWholeBatch(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig()}
	d, srv := newTestDaemon(t, cfg)

	if resp := postJSON(t, srv.URL+"/submit", SubmitRequest{Bases: []float64{2, 0.5, 3}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with invalid base: status %v", resp.Status)
	}
	if a, c := d.g.Applied(), d.g.Counters().Submitted; a != 0 || c != 0 {
		t.Fatalf("rejected batch applied events: applied=%d submitted=%d", a, c)
	}
}

// TestDaemonStopLifecycle pins the Stop contract: Stop without Start
// returns immediately, repeated Stop is a no-op, and Stop after Start
// joins the ticker goroutine.
func TestDaemonStopLifecycle(t *testing.T) {
	d, err := NewDaemon(ServerConfig{Grid: testConfig(), Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: must not block on the ticker goroutine.
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDaemon(ServerConfig{Grid: testConfig(), Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d2.Start()
	d2.Start() // redundant Start is a no-op
	if err := d2.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServerColdCheck pins the warm-vs-cold comparison endpoint: it
// reports the same live set the grid holds, and does not mutate state.
func TestServerColdCheck(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig(), AdmitPending: 8}
	d, srv := newTestDaemon(t, cfg)

	postJSON(t, srv.URL+"/event", []map[string]any{
		{"type": "join", "mult": 1}, {"type": "join", "mult": 3},
	}, nil)
	postJSON(t, srv.URL+"/submit", SubmitRequest{Bases: []float64{2, 2, 3, 3, 4, 4, 5, 5}}, nil)

	before := d.g.Digest()
	var cc ColdCheck
	getJSON(t, srv.URL+"/coldcheck", &cc)
	if cc.Jobs != 8 || cc.Machines != 2 {
		t.Fatalf("coldcheck saw %dx%d, want 8x2", cc.Jobs, cc.Machines)
	}
	if cc.ColdMakespan <= 0 || cc.WarmMakespan <= 0 {
		t.Fatalf("coldcheck quality %+v", cc)
	}
	if d.g.Digest() != before {
		t.Fatal("cold re-solve mutated the live grid")
	}
}

// TestRunLoadSmall runs the load harness end to end against an in-process
// daemon: real HTTP, thousands of submissions, steady-state completions,
// cold sampling — the same path the million-job artifact uses.
func TestRunLoadSmall(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig(), AdmitPending: 32}
	cfg.Grid.JobCap = 256
	_, srv := newTestDaemon(t, cfg)

	row, err := RunLoad(LoadConfig{
		BaseURL:    srv.URL,
		Jobs:       3000,
		Machines:   8,
		LiveTarget: 128,
		Batch:      64,
		ColdEvery:  10,
		Seed:       5,
	}, cfg.AdmitPending, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.Placed < uint64(row.Jobs) {
		t.Fatalf("placed %d of %d submissions", row.Placed, row.Jobs)
	}
	if row.LatP50Ms <= 0 || row.LatP99Ms < row.LatP50Ms {
		t.Fatalf("latency percentiles p50=%v p99=%v", row.LatP50Ms, row.LatP99Ms)
	}
	if row.ColdSamples == 0 || row.ColdMeanMs <= 0 {
		t.Fatalf("no cold samples in %+v", row)
	}
	if row.WarmMakespan <= 0 || row.ColdMakespan <= 0 {
		t.Fatalf("missing quality columns in %+v", row)
	}
	t.Logf("small load: %.0f jobs/s, p50 %.2fms p99 %.2fms, warm %.3fms cold %.3fms (%.1fx), mk ratio %.3f",
		row.ThroughputPS, row.LatP50Ms, row.LatP99Ms, row.WarmAdmitMeanMs, row.ColdMeanMs, row.WarmSpeedup, row.MakespanRatio)
}
