package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSubmitBackpressure429(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig(), MaxPending: 3, Window: time.Second}
	d, srv := newTestDaemon(t, cfg)

	var sub SubmitResponse
	resp := postJSON(t, srv.URL+"/submit", SubmitRequest{Base: 2, Count: 3}, &sub)
	if resp.StatusCode != http.StatusOK || len(sub.IDs) != 3 {
		t.Fatalf("filling submit: %s, ids %v", resp.Status, sub.IDs)
	}
	resp = postJSON(t, srv.URL+"/submit", SubmitRequest{Base: 2, Count: 1}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want 1 (the admission window)", ra)
	}
	// Same bound applies to submit events on /event.
	resp = postJSON(t, srv.URL+"/event", []map[string]any{{"type": "submit", "base": 2}}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow event submit: %s, want 429", resp.Status)
	}
	if got := d.StatsNow().Rejected429; got != 2 {
		t.Fatalf("rejected_429 = %d, want 2", got)
	}

	// Admission drains the queue; submissions are accepted again.
	postJSON(t, srv.URL+"/event", map[string]any{"type": "join", "mult": 1}, nil)
	if resp = postJSON(t, srv.URL+"/admit", struct{}{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("admit: %s", resp.Status)
	}
	if resp = postJSON(t, srv.URL+"/submit", SubmitRequest{Base: 2}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit after admission: %s, want 200", resp.Status)
	}
}

func TestOversizedBody413(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig(), MaxBodyBytes: 256}
	_, srv := newTestDaemon(t, cfg)
	big := `{"bases":[` + strings.Repeat("2,", 200) + `2]}`
	resp, err := http.Post(srv.URL+"/submit", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %s, want 413", resp.Status)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("413 body not a structured error: %v (%q)", err, body.Error)
	}
}

func TestDrainingDaemonRejects503(t *testing.T) {
	d, err := NewDaemon(ServerConfig{Grid: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/submit", "application/json", strings.NewReader(`{"base":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to stopped daemon: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestPanicRecoveryKeepsServing pins the recovery path: a handler panic
// becomes a structured 500, the state probe passes (the panic did not
// corrupt the grid), and the daemon keeps serving.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig()}
	d, srv := newTestDaemon(t, cfg)

	// Splice a panicking route into the daemon's own middleware chain.
	boom := d.gate(d.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("POST", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d, want 500", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("kaboom")) {
		t.Fatalf("500 body %q does not name the panic", rec.Body.String())
	}

	st := d.StatsNow()
	if st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
	if st.Degraded {
		t.Fatal("clean state probe still marked the daemon degraded")
	}
	if resp := postJSON(t, srv.URL+"/submit", SubmitRequest{Base: 2}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit after recovered panic: %s, want 200", resp.Status)
	}
}

// TestDegradedDaemonRefusesMutations pins the other half: when the
// post-panic probe finds corruption, mutations get 503 while reads stay
// up for diagnosis.
func TestDegradedDaemonRefusesMutations(t *testing.T) {
	// Force the degraded flag the way a failed post-panic probe would.
	d2, srv2 := newTestDaemon(t, ServerConfig{Grid: testConfig()})
	d2.degraded.Store(true)
	resp := postJSON(t, srv2.URL+"/submit", SubmitRequest{Base: 2}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to degraded daemon: %s, want 503", resp.Status)
	}
	var st Stats
	getJSON(t, srv2.URL+"/stats", &st)
	if !st.Degraded {
		t.Fatal("stats on a degraded daemon do not say so")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			log := filepath.Join(dir, "wal.log")
			cfg := ServerConfig{
				Grid: testConfig(), LogPath: log,
				Fsync: policy, FsyncEvery: 5 * time.Millisecond,
			}
			d, srv := newTestDaemon(t, cfg)
			postJSON(t, srv.URL+"/event", map[string]any{"type": "join", "mult": 1}, nil)
			var sub SubmitResponse
			if resp := postJSON(t, srv.URL+"/submit", SubmitRequest{Base: 2, Count: 4}, &sub); resp.StatusCode != http.StatusOK {
				t.Fatalf("submit under %s: %s", policy, resp.Status)
			}
			postJSON(t, srv.URL+"/admit", struct{}{}, nil)
			if policy == FsyncInterval {
				time.Sleep(25 * time.Millisecond) // let the sync ticker run
			}
			if st := d.StatsNow(); st.Fsync != policy || st.WALErrors != 0 {
				t.Fatalf("stats under %s: fsync %q, wal_errors %d", policy, st.Fsync, st.WALErrors)
			}
		})
	}
	if _, err := NewDaemon(ServerConfig{Grid: testConfig(), Fsync: "sometimes"}); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
}

// TestRunLoadWithStormsAndBackpressure drives the harness against a
// daemon with a bounded pending queue while machine-failure storms hit
// every few batches: the client must ride out 429s via Retry-After and
// still place every submission.
func TestRunLoadWithStormsAndBackpressure(t *testing.T) {
	cfg := ServerConfig{Grid: testConfig(), AdmitPending: 24, MaxPending: 48, Window: 20 * time.Millisecond}
	cfg.Grid.JobCap = 256
	_, srv := newTestDaemon(t, cfg)

	row, err := RunLoad(LoadConfig{
		BaseURL:    srv.URL,
		Jobs:       1200,
		Machines:   6,
		LiveTarget: 32,
		Batch:      16,
		Seed:       9,
		FailEvery:  5,
	}, cfg.AdmitPending, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.Placed < uint64(row.Jobs) {
		t.Fatalf("placed %d of %d submissions", row.Placed, row.Jobs)
	}
	if row.Storms == 0 {
		t.Fatal("no storms injected despite FailEvery")
	}
	t.Logf("stormy load: %.0f jobs/s, %d storms, %d backpressure retries",
		row.ThroughputPS, row.Storms, row.Rejected429)
}

// TestStopDrainsBeforeWALClose pins the shutdown ordering: a stopped
// daemon's log replays to exactly the digest the live daemon reported,
// i.e. the final flush happened after the last acknowledged request.
func TestStopDrainsBeforeWALClose(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "wal.log")
	d, err := NewDaemon(ServerConfig{Grid: testConfig(), LogPath: log, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	postJSON(t, srv.URL+"/event", map[string]any{"type": "join", "mult": 1}, nil)
	postJSON(t, srv.URL+"/submit", SubmitRequest{Base: 3, Count: 8}, nil)
	postJSON(t, srv.URL+"/admit", struct{}{}, nil)
	want := d.StatsNow()
	liveDigest := func() string {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.g.Digest()
	}()
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := d.Stop(); err != nil {
		t.Fatal("second stop must be a clean no-op:", err)
	}

	g2, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayFile(g2, log); err != nil {
		t.Fatal(err)
	}
	if g2.Digest() != liveDigest {
		t.Fatal("replayed log does not reproduce the stopped daemon's digest")
	}
	if g2.Applied() != want.Applied {
		t.Fatalf("replayed %d events, daemon had applied %d", g2.Applied(), want.Applied)
	}
}
