package daemon

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"gridcma/internal/chaos"
	"gridcma/internal/eventlog"
	"gridcma/internal/rng"
)

// scriptGen generates a deterministic plausible event stream: machines
// join up to capacity, jobs arrive and complete oldest-first, machines
// leave and fail (never stranding the last alive one), and admissions
// close every burst. It mirrors just enough grid state to only emit
// events the grid accepts; the caller must reset used to len(alive)
// after each admit, mirroring the grid's departed-slot recycling.
type scriptGen struct {
	r       *rng.Source
	nextJob uint64
	nextM   uint64
	live    []uint64 // job ids submitted and not yet completed
	alive   []uint64 // alive machine ids
	slots   int      // machine slots ever usable (MachCap)
	used    int      // machine slots consumed (departed slots stay consumed until admit)
}

func newScriptGen(seed uint64, machCap int) *scriptGen {
	return &scriptGen{r: rng.New(seed), slots: machCap}
}

func (d *scriptGen) next() eventlog.Event {
	roll := d.r.Intn(100)
	switch {
	case len(d.alive) == 0 || (roll < 8 && d.used < d.slots):
		d.nextM++
		id := d.nextM
		d.alive = append(d.alive, id)
		d.used++
		return eventlog.Event{Type: eventlog.Join, Mach: id, Mult: 1 + float64(d.r.Intn(3))}
	case roll < 12 && len(d.alive) >= 2:
		k := d.r.Intn(len(d.alive))
		id := d.alive[k]
		d.alive = append(d.alive[:k], d.alive[k+1:]...)
		typ := eventlog.Leave
		if d.r.Bool(0.5) {
			typ = eventlog.Fail
		}
		return eventlog.Event{Type: typ, Mach: id}
	case roll < 30 && len(d.live) > 0:
		id := d.live[0]
		d.live = d.live[1:]
		return eventlog.Event{Type: eventlog.Complete, Job: id}
	case roll < 45:
		return eventlog.Event{Type: eventlog.Admit}
	default:
		d.nextJob++
		id := d.nextJob
		d.live = append(d.live, id)
		return eventlog.Event{Type: eventlog.Submit, Job: id, Base: 1 + float64(d.r.Intn(8))}
	}
}

// CrashTestConfig parameterises a crash-torture run.
type CrashTestConfig struct {
	Grid Config `json:"grid"`
	// Seed drives both the event script and the fault plan.
	Seed uint64 `json:"seed"`
	// Events is the script length (0 = 400).
	Events int `json:"events"`
	// Kills is the number of fault points to torture (0 = 128).
	Kills int `json:"kills"`
	// Dir is the scratch directory ("" = a fresh temp dir, removed on
	// return).
	Dir string `json:"dir,omitempty"`
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any) `json:"-"`
}

// CrashTestResult summarises a completed torture run.
type CrashTestResult struct {
	Kills        int            `json:"kills"`
	TornTails    int            `json:"torn_tails"`
	CleanTails   int            `json:"clean_tails"`
	ByKind       map[string]int `json:"by_kind"`
	SnapshotRuns int            `json:"snapshot_runs"`
	Events       int            `json:"events"`
	WALBytes     int            `json:"wal_bytes"`
	FinalDigest  string         `json:"final_digest"`
}

// CrashTest is the durability torture: a reference run records a
// deterministic event script, its WAL bytes and the digest after every
// event; then, for each fault in a seeded plan, the same script is
// written through a fault-injecting file handle until the fault kills
// the write path, the file is recovered exactly as a restarting daemon
// would (torn tail truncated, clean prefix replayed), the digest
// trajectory is asserted bit-identical to the reference at every step,
// the remaining script is appended to the recovered log, and the final
// WAL must be byte-for-byte the reference log. Every third kill also
// recovers through the snapshot path — atomic snapshot of the recovered
// state, reload (with a stray temp file from a simulated crashed
// snapshot write lying in the directory), then the same resume.
//
// Any deviation — an unrecoverable log, a digest off by one bit, a
// resumed WAL that differs from the reference — fails the run with the
// exact fault that triggered it, which the seed reproduces.
func CrashTest(cfg CrashTestConfig) (*CrashTestResult, error) {
	if cfg.Events <= 0 {
		cfg.Events = 400
	}
	if cfg.Kills <= 0 {
		cfg.Kills = 128
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Reference run: script, per-event digests, clean WAL bytes and the
	// byte boundary after each record.
	gen := newScriptGen(cfg.Seed, cfg.Grid.MachCap)
	ref, err := NewGrid(cfg.Grid)
	if err != nil {
		return nil, err
	}
	script := make([]eventlog.Event, 0, cfg.Events)
	digests := make([]string, 0, cfg.Events)
	var refBuf bytes.Buffer
	w := eventlog.NewWriter(&refBuf)
	bounds := []int64{0}
	for i := 0; i < cfg.Events; i++ {
		stamped, err := w.Append(gen.next())
		if err != nil {
			return nil, fmt.Errorf("crashtest: reference append %d: %w", i, err)
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		if err := ref.Apply(stamped); err != nil {
			return nil, fmt.Errorf("crashtest: reference apply %d (%+v): %w", i, stamped, err)
		}
		if stamped.Type == eventlog.Admit {
			gen.used = len(gen.alive)
		}
		script = append(script, stamped)
		digests = append(digests, ref.Digest())
		bounds = append(bounds, int64(refBuf.Len()))
	}
	refBytes := refBuf.Bytes()
	logf("crashtest: reference run: %d events, %d WAL bytes, digest %s",
		cfg.Events, len(refBytes), ref.Digest()[:12])

	dir := cfg.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "gridd-crashtest-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	res := &CrashTestResult{
		ByKind:      map[string]int{},
		Events:      cfg.Events,
		WALBytes:    len(refBytes),
		FinalDigest: ref.Digest(),
	}
	for fi, f := range chaos.Plan(cfg.Seed, cfg.Kills, int64(len(refBytes))) {
		if err := runOneKill(cfg.Grid, dir, fi, f, script, digests, bounds, refBytes, res); err != nil {
			return res, fmt.Errorf("crashtest: kill %d (%s): %w", fi, f, err)
		}
		res.Kills++
		if (fi+1)%32 == 0 {
			logf("crashtest: %d/%d kills survived (%d torn tails)", fi+1, cfg.Kills, res.TornTails)
		}
	}
	return res, nil
}

// nosyncFile keeps chaos SyncFail faults observable without paying a
// real fsync per record — the torture simulates the crash itself, so
// actual durability of the scratch files is irrelevant.
type nosyncFile struct{ *os.File }

func (nosyncFile) Sync() error { return nil }

// writeUntilFault writes the script through a fault-injecting handle,
// flushing and syncing per record (the tightest durability discipline,
// so every fault offset is reachable), stopping at the first error the
// way a daemon whose WAL fails must.
func writeUntilFault(path string, f chaos.Fault, script []eventlog.Event) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	cf := chaos.Wrap(nosyncFile{file}, f)
	w := eventlog.NewWriter(cf)
	for i := range script {
		if _, err := w.Append(script[i]); err != nil {
			break
		}
		if err := w.Flush(); err != nil {
			break
		}
		if err := cf.Sync(); err != nil {
			break
		}
	}
	return cf.Close()
}

func runOneKill(grid Config, dir string, fi int, f chaos.Fault,
	script []eventlog.Event, digests []string, bounds []int64,
	refBytes []byte, res *CrashTestResult) error {
	path := filepath.Join(dir, fmt.Sprintf("kill-%03d.log", fi))
	if err := writeUntilFault(path, f, script); err != nil {
		return fmt.Errorf("closing torn log: %w", err)
	}

	// What the fault must have left behind: the largest record boundary
	// at or below the file size is the clean prefix; anything past it is
	// a torn tail. A cut one byte short of a boundary tore only the
	// newline — the record itself is intact, so recovery keeps it
	// (repairing the terminator) and the tail counts as clean.
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	n := st.Size()
	m := 0
	for m+1 < len(bounds) && bounds[m+1] <= n+1 {
		m++
	}
	wantTorn := n > bounds[m]

	events, torn, err := eventlog.Recover(path)
	if err != nil {
		return fmt.Errorf("recovering %d-byte log: %w", n, err)
	}
	if torn != wantTorn || len(events) != m {
		return fmt.Errorf("recovered %d events (torn=%v) from a %d-byte log, want %d (torn=%v)",
			len(events), torn, n, m, wantTorn)
	}
	if torn {
		res.TornTails++
	} else {
		res.CleanTails++
	}
	res.ByKind[f.Kind.String()]++

	// Replay the clean prefix; the digest trajectory must match the
	// reference bit for bit at every event.
	g, err := NewGrid(grid)
	if err != nil {
		return err
	}
	for i, e := range events {
		if e != script[i] {
			return fmt.Errorf("recovered event %d = %+v, want %+v", i, e, script[i])
		}
		if err := g.Apply(e); err != nil {
			return fmt.Errorf("replaying event %d: %w", i, err)
		}
		if got := g.Digest(); got != digests[i] {
			return fmt.Errorf("digest diverged at replayed event %d:\ngot  %s\nwant %s", i, got, digests[i])
		}
	}

	// Every third kill additionally routes through the snapshot path:
	// atomic snapshot of the recovered state, reload via the shared
	// restart entry point — with a stray temp file from a simulated
	// crashed snapshot write in the directory, which must be ignored.
	if fi%3 == 0 {
		snap := filepath.Join(dir, fmt.Sprintf("kill-%03d.snap", fi))
		if err := g.WriteSnapshotFile(snap); err != nil {
			return fmt.Errorf("snapshotting recovered state: %w", err)
		}
		stray := filepath.Join(dir, ".snap-123.tmp")
		if err := os.WriteFile(stray, []byte(`{"version":1,"config":{"trunc`), 0o644); err != nil {
			return err
		}
		g2, info, err := RecoverGrid(grid, snap, path)
		if err != nil {
			return fmt.Errorf("snapshot+log recovery: %w", err)
		}
		if info.FromSnapshot != g.Applied() || info.Replayed != 0 {
			return fmt.Errorf("snapshot recovery replayed %d events from seq %d, want 0 from %d",
				info.Replayed, info.FromSnapshot, g.Applied())
		}
		if g2.Digest() != g.Digest() {
			return fmt.Errorf("snapshot round trip changed the digest")
		}
		g = g2
		os.Remove(stray)
		os.Remove(snap)
		res.SnapshotRuns++
	}

	// Resume: append the rest of the script to the recovered log and run
	// to the end — the daemon's life after the restart.
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := eventlog.NewWriterAt(file, uint64(m))
	for i := m; i < len(script); i++ {
		stamped, err := w.Append(script[i])
		if err != nil {
			file.Close()
			return fmt.Errorf("resuming append %d: %w", i, err)
		}
		if stamped != script[i] {
			file.Close()
			return fmt.Errorf("resumed event %d restamped to %+v, want %+v", i, stamped, script[i])
		}
		if err := g.Apply(stamped); err != nil {
			file.Close()
			return fmt.Errorf("resuming apply %d: %w", i, err)
		}
		if got := g.Digest(); got != digests[i] {
			file.Close()
			return fmt.Errorf("digest diverged at resumed event %d", i)
		}
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return err
	}
	if err := file.Close(); err != nil {
		return err
	}

	// The resumed WAL must be the reference log, byte for byte.
	got, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, refBytes) {
		return fmt.Errorf("final WAL differs from reference (%d vs %d bytes)", len(got), len(refBytes))
	}
	return os.Remove(path)
}
