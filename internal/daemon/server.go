package daemon

import (
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gridcma/internal/eventlog"
)

// WAL fsync policies (ServerConfig.Fsync).
const (
	// FsyncAlways syncs at every mutating request acknowledgement: one
	// group commit covers the whole request batch, so an acknowledged
	// request is durable but throughput is not bounded by per-record
	// fsync latency.
	FsyncAlways = "always"
	// FsyncInterval syncs on a background ticker (FsyncEvery, default
	// 100ms): a crash loses at most one interval of acknowledged events.
	FsyncInterval = "interval"
	// FsyncNever (the default) flushes at admission boundaries and on
	// stop but leaves syncing to the OS page cache.
	FsyncNever = "never"
)

const (
	defaultMaxBody    = 1 << 20
	defaultFsyncEvery = 100 * time.Millisecond
)

// ServerConfig parameterises a Daemon around a Grid.
type ServerConfig struct {
	Grid Config `json:"grid"`
	// Window is the admission ticker period; admissions also fire when
	// AdmitPending submissions are waiting. Zero disables the ticker —
	// admissions then happen only via AdmitPending or explicit requests.
	Window time.Duration `json:"window"`
	// AdmitPending closes the admission window as soon as this many jobs
	// are pending (0 = ticker/explicit only).
	AdmitPending int `json:"admit_pending"`
	// LogPath appends every applied event to a write-ahead log; empty
	// disables persistence. The file is created if missing. The log is
	// buffered and flushed on snapshot, stop and admission boundaries.
	LogPath string `json:"log_path,omitempty"`
	// Fsync selects the WAL durability policy: FsyncAlways,
	// FsyncInterval or FsyncNever (empty = never).
	Fsync string `json:"fsync,omitempty"`
	// FsyncEvery is the FsyncInterval period (0 = 100ms).
	FsyncEvery time.Duration `json:"fsync_every,omitempty"`
	// MaxPending bounds the pending-admission queue: submissions that
	// would push it past the bound are rejected with 429 + Retry-After
	// instead of growing daemon memory without limit (0 = unbounded).
	MaxPending int `json:"max_pending,omitempty"`
	// MaxBodyBytes caps request bodies; oversized bodies get 413
	// (0 = 1 MiB).
	MaxBodyBytes int64 `json:"max_body_bytes,omitempty"`
	// RequestTimeout bounds each handler's wall time; requests past it
	// get 503 (0 = unbounded).
	RequestTimeout time.Duration `json:"request_timeout,omitempty"`
	// TermPath persists the replication fencing term (see repl.go);
	// empty defaults to LogPath+".term" when a WAL is configured.
	TermPath string `json:"term_path,omitempty"`
}

// Daemon wraps a Grid with the HTTP API, the write-ahead event log and
// the admission timer. All grid access is serialised by one mutex; the
// timer only decides when an admit event is appended, so the trajectory
// stays a pure function of the persisted event sequence.
type Daemon struct {
	cfg ServerConfig

	mu      sync.Mutex
	g       *Grid
	wal     *eventlog.Writer
	walFile *os.File

	// Latency accounting (wall clock; observability only, never state).
	submitAt  map[uint64]time.Time
	placeLat  []float64 // submit→placement seconds, one per placed job
	admitWall []float64 // wall seconds per admission window
	started   time.Time

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	ticking  atomic.Bool // ticker goroutine launched; Stop must await done

	// Degradation machinery. In-flight requests hold reqMu for reading;
	// Stop takes it for writing to drain them before the final WAL
	// flush. closed (under mu) makes any handler that slipped past the
	// drain fail its apply instead of writing to a closed log.
	reqMu    sync.RWMutex
	draining atomic.Bool
	degraded atomic.Bool
	ready    atomic.Bool
	closed   bool

	panics    atomic.Uint64
	rej429    atomic.Uint64
	rej503    atomic.Uint64
	walErrors atomic.Uint64

	// Replication state (repl.go / replicator.go). The term is the
	// fencing epoch: it only moves forward, and persists before any role
	// change that claims it. fenced latches once a higher term is
	// observed — this node has been superseded and refuses writes.
	role       atomic.Int32
	term       atomic.Uint64
	termPath   string
	fenced     atomic.Bool
	fencedBy   atomic.Uint64
	replLag    atomic.Uint64
	replCaught atomic.Bool
	replMaxLag atomic.Uint64
	digests    *digestRing // under mu; nil until EnableReplication

	promoteMu sync.Mutex
	promoteFn func() (uint64, error)
}

// NewDaemon builds a daemon around a fresh grid.
func NewDaemon(cfg ServerConfig) (*Daemon, error) {
	g, err := NewGrid(cfg.Grid)
	if err != nil {
		return nil, err
	}
	return NewDaemonWith(g, cfg)
}

// NewDaemonWith builds a daemon around an existing (e.g. restored) grid.
// When cfg.LogPath is set, the log is opened for append and the writer
// continues from the grid's applied sequence number.
func NewDaemonWith(g *Grid, cfg ServerConfig) (*Daemon, error) {
	switch cfg.Fsync {
	case "", FsyncNever, FsyncAlways, FsyncInterval:
	default:
		return nil, fmt.Errorf("daemon: unknown fsync policy %q (want %s, %s or %s)",
			cfg.Fsync, FsyncAlways, FsyncInterval, FsyncNever)
	}
	d := &Daemon{
		cfg:      cfg,
		g:        g,
		submitAt: make(map[uint64]time.Time),
		started:  time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.LogPath != "" {
		f, err := os.OpenFile(cfg.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		d.walFile = f
		d.wal = eventlog.NewWriterAt(f, g.Applied())
	}
	d.termPath = cfg.TermPath
	if d.termPath == "" && cfg.LogPath != "" {
		d.termPath = cfg.LogPath + ".term"
	}
	term := uint64(1)
	if d.termPath != "" {
		t, err := loadTerm(d.termPath)
		if err != nil {
			return nil, err
		}
		if t > term {
			term = t
		}
	}
	d.term.Store(term)
	d.replCaught.Store(true)
	// A constructed daemon sits past snapshot restore and WAL replay, so
	// it is ready by default; serve loops that expose the listener before
	// recovery (cmd/gridd) flip readiness themselves via SetReady.
	d.ready.Store(true)
	return d, nil
}

// SetReady flips the /readyz signal. Liveness (/healthz) is unaffected:
// a recovering daemon is alive but not ready.
func (d *Daemon) SetReady(ready bool) { d.ready.Store(ready) }

// Start launches the background ticker goroutine: the admission window
// (when configured) and the FsyncInterval sync loop share one goroutine
// so Stop has a single thing to await. Redundant calls are no-ops.
func (d *Daemon) Start() {
	syncing := d.cfg.Fsync == FsyncInterval && d.wal != nil
	if (d.cfg.Window <= 0 && !syncing) || !d.ticking.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(d.done)
		var admitC, syncC <-chan time.Time
		if d.cfg.Window > 0 {
			t := time.NewTicker(d.cfg.Window)
			defer t.Stop()
			admitC = t.C
		}
		if syncing {
			every := d.cfg.FsyncEvery
			if every <= 0 {
				every = defaultFsyncEvery
			}
			t := time.NewTicker(every)
			defer t.Stop()
			syncC = t.C
		}
		for {
			select {
			case <-d.stop:
				return
			case <-admitC:
				if d.role.Load() == roleFollower || d.fenced.Load() {
					continue // admissions replicate from the primary
				}
				d.mu.Lock()
				if _, pending, _ := d.g.Live(); pending > 0 {
					d.applyLocked(eventlog.Event{Type: eventlog.Admit})
				}
				d.mu.Unlock()
			case <-syncC:
				d.mu.Lock()
				if err := d.syncLocked(); err != nil {
					d.walErrors.Add(1)
				}
				d.mu.Unlock()
			}
		}
	}()
}

// Stop drains and shuts down: new requests are turned away with 503,
// the ticker goroutine is awaited, in-flight handlers finish, and only
// then is the WAL given its final flush, fsync and close — so stopping
// under load never races the log against a half-served request. It is
// safe to call more than once and without a prior Start; only the first
// call closes the log.
func (d *Daemon) Stop() error {
	d.draining.Store(true)
	d.stopOnce.Do(func() { close(d.stop) })
	if d.ticking.Load() {
		<-d.done
	}
	// Barrier: acquiring the write lock waits for every in-flight
	// handler (read holders) to return.
	d.reqMu.Lock()
	d.reqMu.Unlock() //nolint:staticcheck // empty critical section is the drain
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.flushLocked(true)
	d.closed = true
	return err
}

func (d *Daemon) flushLocked(closeFile bool) error {
	if d.wal == nil {
		return nil
	}
	if err := d.wal.Flush(); err != nil {
		return err
	}
	if closeFile {
		err := d.walFile.Sync()
		if cerr := d.walFile.Close(); err == nil {
			err = cerr
		}
		d.wal, d.walFile = nil, nil
		return err
	}
	return d.walFile.Sync()
}

// syncLocked flushes the writer and fsyncs the log file; d.mu held.
func (d *Daemon) syncLocked() error {
	if d.wal == nil || d.closed {
		return nil
	}
	if err := d.wal.Flush(); err != nil {
		return err
	}
	return d.walFile.Sync()
}

// commitLocked is the group-commit barrier: under FsyncAlways a
// mutating request is not acknowledged until every event it appended is
// flushed and fsynced. One sync covers the whole request batch, which
// is what keeps "always" usable under load — per-record fsync would cap
// throughput at the disk's sync rate regardless of batch size.
func (d *Daemon) commitLocked() error {
	if d.cfg.Fsync != FsyncAlways {
		return nil
	}
	return d.syncLocked()
}

// applyLocked stamps e with the producer timestamp, applies it to the
// grid and then persists it; d.mu must be held. The grid goes first: a
// rejected event (structurally valid but inconsistent with grid state —
// a leave of an unknown machine, a duplicate complete) must not consume
// a WAL sequence number, or every later event would be stamped one ahead
// of the grid's applied counter and rejected forever. Apply leaves the
// grid unchanged on error, so the pre-stamped sequence number stays free
// for the next event. Admission events additionally record wall-clock
// metrics: window latency and per-job submit→placement latency.
func (d *Daemon) applyLocked(e eventlog.Event) (eventlog.Event, error) {
	if d.closed {
		return e, errors.New("daemon: stopped")
	}
	if d.fenced.Load() {
		return e, fmt.Errorf("daemon: fenced by term %d: a newer primary owns the log; this node is read-only",
			d.fencedBy.Load())
	}
	if d.role.Load() == roleFollower {
		return e, errors.New("daemon: follower: writes arrive via replication (POST /promote to take over)")
	}
	e.Seq = 0 // stamped below; clients cannot pick sequence numbers
	e.T = time.Since(d.started).Seconds()
	if d.wal != nil {
		e.Seq = d.wal.Seq() + 1
	}
	var t0 time.Time
	if e.Type == eventlog.Admit {
		t0 = time.Now()
	}
	if err := d.g.Apply(e); err != nil {
		return e, err
	}
	if d.wal != nil {
		if _, err := d.wal.Append(e); err != nil {
			// The grid advanced but the log did not: the log file is
			// failing and durability is gone — surface it loudly.
			d.walErrors.Add(1)
			return e, fmt.Errorf("daemon: event %d applied but not persisted: %w", e.Seq, err)
		}
	}
	d.recordDigestLocked()
	switch e.Type {
	case eventlog.Submit:
		d.submitAt[e.Job] = time.Now()
	case eventlog.Admit:
		now := time.Now()
		d.admitWall = append(d.admitWall, now.Sub(t0).Seconds())
		for _, p := range d.g.LastPlacements() {
			if at, ok := d.submitAt[p.Job]; ok {
				d.placeLat = append(d.placeLat, now.Sub(at).Seconds())
				delete(d.submitAt, p.Job)
			}
		}
		if d.wal != nil {
			d.wal.Flush()
		}
	}
	return e, nil
}

// maybeAdmitLocked closes the window if the pending threshold is reached.
func (d *Daemon) maybeAdmitLocked() bool {
	if d.cfg.AdmitPending <= 0 {
		return false
	}
	if _, pending, _ := d.g.Live(); pending >= d.cfg.AdmitPending {
		d.applyLocked(eventlog.Event{Type: eventlog.Admit})
		return true
	}
	return false
}

// Handler returns the daemon's HTTP API:
//
//	POST /submit   {"bases":[...]} or {"base":x,"count":n} → job ids
//	POST /event    one event object or an array (submit/join auto-id)
//	GET  /query    ?job=ID → job state
//	GET  /snapshot → full snapshot JSON (flushes the log first)
//	GET  /stats    → counters, live sizes, quality, latency percentiles
//	POST /admit    → force an admission window close
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", d.handleSubmit)
	mux.HandleFunc("POST /event", d.handleEvent)
	mux.HandleFunc("GET /query", d.handleQuery)
	mux.HandleFunc("GET /snapshot", d.handleSnapshot)
	mux.HandleFunc("GET /stats", d.handleStats)
	mux.HandleFunc("POST /admit", d.handleAdmit)
	mux.HandleFunc("GET /coldcheck", d.handleColdCheck)
	var h http.Handler = mux
	if d.cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, d.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	// The recover middleware sits outside the timeout handler because
	// http.TimeoutHandler re-raises inner-handler panics in its own
	// ServeHTTP caller — this ordering catches both direct and
	// re-raised panics.
	h = d.recoverPanics(h)
	gated := d.gate(h)
	// Health probes live OUTSIDE the gate: an orchestrator must be able
	// to distinguish "alive but draining/degraded/recovering" (healthz
	// 200, readyz 503) from "dead" (no answer) — gating them would
	// collapse the two.
	outer := http.NewServeMux()
	outer.HandleFunc("GET /healthz", d.handleHealthz)
	outer.HandleFunc("GET /readyz", d.handleReadyz)
	// Promotion also bypasses the gate: it is exactly the request a
	// follower (whose mutations the gate refuses) must accept.
	outer.HandleFunc("POST /promote", d.handlePromote)
	outer.Handle("/", gated)
	return outer
}

// handleHealthz is pure liveness: the process is serving HTTP.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(d.started).Seconds(),
		"applied":  d.g.Applied(),
		"degraded": d.degraded.Load(),
		"draining": d.draining.Load(),
		"role":     d.Role(),
		"term":     d.term.Load(),
	})
}

// handleReadyz reports whether the daemon should receive traffic: 503
// with a machine-readable reason while draining, while the degraded
// latch is set (state failed verification after a panic), after being
// fenced by a newer-term primary, before recovery (snapshot restore +
// WAL replay) has finished, or — on a follower — before the first
// catch-up ("catching-up") or while trailing the primary beyond the
// configured lag budget ("replica-lag").
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	follower := d.role.Load() == roleFollower
	lag := d.replLag.Load()
	maxLag := d.replMaxLag.Load()
	reason := ""
	switch {
	case d.draining.Load():
		reason = "draining"
	case d.degraded.Load():
		reason = "degraded"
	case d.fenced.Load():
		reason = "fenced"
	case !d.ready.Load():
		reason = "recovering"
	case follower && !d.replCaught.Load():
		reason = "catching-up"
	case follower && maxLag > 0 && lag > maxLag:
		reason = "replica-lag"
	}
	if reason != "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		body := map[string]any{"status": "unready", "reason": reason}
		if reason == "catching-up" || reason == "replica-lag" {
			body["lag"] = lag
		}
		json.NewEncoder(w).Encode(body)
		return
	}
	writeJSON(w, map[string]any{"status": "ready", "role": d.Role()})
}

// RecoveringHandler answers health probes before the daemon exists: the
// serve loop binds its listener first, serves this while the snapshot is
// restored and the WAL replayed, then swaps in Daemon.Handler. Liveness
// is green immediately (the process is up), readiness stays red, and any
// real API call gets an honest 503 instead of a connection refusal.
func RecoveringHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": "recovering"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "daemon is recovering (snapshot restore + WAL replay)")
	})
	return mux
}

// gate is the outermost middleware: it refuses new work while the
// daemon drains or after state corruption, tracks in-flight requests so
// Stop can wait for them, and caps request bodies.
func (d *Daemon) gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d.draining.Load() {
			d.rej503.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "daemon is shutting down")
			return
		}
		if d.degraded.Load() && r.Method != http.MethodGet {
			// Reads stay up for diagnosis; mutations are refused until
			// the operator rebuilds from the WAL.
			d.rej503.Add(1)
			httpError(w, http.StatusServiceUnavailable,
				"daemon degraded: state failed verification after a panic; restart to rebuild from the log")
			return
		}
		if r.Method != http.MethodGet {
			if d.fenced.Load() {
				d.rej503.Add(1)
				httpError(w, http.StatusServiceUnavailable,
					"daemon fenced: superseded by a term-%d primary; this node is read-only", d.fencedBy.Load())
				return
			}
			if d.role.Load() == roleFollower {
				d.rej503.Add(1)
				httpError(w, http.StatusServiceUnavailable,
					"daemon is a replication follower: send writes to the primary (or POST /promote to take over)")
				return
			}
		}
		d.reqMu.RLock()
		defer d.reqMu.RUnlock()
		maxBody := d.cfg.MaxBodyBytes
		if maxBody <= 0 {
			maxBody = defaultMaxBody
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		next.ServeHTTP(w, r)
	})
}

// recoverPanics turns a handler panic into a 500 and probes the grid's
// structural invariants before accepting more work: a clean probe means
// the panic unwound without half-applying a transition (Apply mutates
// only after validation), so the daemon keeps serving; a violation
// flips it to degraded, rejecting all further mutations.
func (d *Daemon) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			d.panics.Add(1)
			d.mu.Lock()
			err := d.g.CheckInvariants()
			d.mu.Unlock()
			if err != nil {
				d.degraded.Store(true)
				fmt.Fprintf(os.Stderr, "gridd: state verification failed after panic %v: %v\n", p, err)
			}
			httpError(w, http.StatusInternalServerError, "internal error: %v", p)
		}()
		next.ServeHTTP(w, r)
	})
}

// retryAfter is the Retry-After value for backpressure rejections: the
// admission window rounded up to whole seconds (pending drains at the
// next window close), floored at one second.
func (d *Daemon) retryAfter() string {
	secs := int(math.Ceil(d.cfg.Window.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// decodeJSON decodes a request body, mapping an exceeded body cap to
// 413 and anything else unparseable to 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"decoding %s: request body exceeds %d bytes", what, mbe.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "decoding %s: %v", what, err)
		return false
	}
	return true
}

func (d *Daemon) handleColdCheck(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	cc, _ := d.g.ColdResolve()
	d.mu.Unlock()
	writeJSON(w, cc)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// SubmitRequest is the body of POST /submit.
type SubmitRequest struct {
	Bases []float64 `json:"bases,omitempty"`
	Base  float64   `json:"base,omitempty"`
	Count int       `json:"count,omitempty"`
}

// SubmitResponse reports the assigned job ids and whether the batch
// tripped an admission.
type SubmitResponse struct {
	IDs      []uint64 `json:"ids"`
	Admitted bool     `json:"admitted"`
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeJSON(w, r, "submit", &req) {
		return
	}
	bases := req.Bases
	if len(bases) == 0 {
		if req.Count <= 0 {
			req.Count = 1
		}
		for i := 0; i < req.Count; i++ {
			bases = append(bases, req.Base)
		}
	}
	// Validate the whole batch before applying any of it: a mid-batch
	// rejection would leave earlier submissions applied (and persisted)
	// with their ids unreported.
	for i, b := range bases {
		if b < 1 {
			httpError(w, http.StatusBadRequest, "submit: bases[%d] = %v, want >= 1", i, b)
			return
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.MaxPending > 0 {
		if _, pending, _ := d.g.Live(); pending+len(bases) > d.cfg.MaxPending {
			d.rej429.Add(1)
			w.Header().Set("Retry-After", d.retryAfter())
			httpError(w, http.StatusTooManyRequests,
				"pending queue full: %d pending + %d submitted exceeds %d; retry after the next admission",
				pending, len(bases), d.cfg.MaxPending)
			return
		}
	}
	resp := SubmitResponse{IDs: make([]uint64, 0, len(bases))}
	for _, b := range bases {
		e := eventlog.Event{Type: eventlog.Submit, Job: d.g.NextJobID(), Base: b}
		if _, err := d.applyLocked(e); err != nil {
			// Only I/O failures reach here (the batch pre-validated);
			// report the ids already applied so the client can tell a
			// partial batch from a rejected one.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "ids": resp.IDs})
			return
		}
		resp.IDs = append(resp.IDs, e.Job)
	}
	resp.Admitted = d.maybeAdmitLocked()
	if err := d.commitLocked(); err != nil {
		d.walErrors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{
			"error": fmt.Sprintf("submit applied but not durable: %v", err), "ids": resp.IDs,
		})
		return
	}
	writeJSON(w, resp)
}

func (d *Daemon) handleEvent(w http.ResponseWriter, r *http.Request) {
	var raw json.RawMessage
	if !decodeJSON(w, r, "event", &raw) {
		return
	}
	var events []eventlog.Event
	if len(raw) > 0 && raw[0] == '[' {
		if err := json.Unmarshal(raw, &events); err != nil {
			httpError(w, http.StatusBadRequest, "decoding event array: %v", err)
			return
		}
	} else {
		var e eventlog.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			httpError(w, http.StatusBadRequest, "decoding event: %v", err)
			return
		}
		events = []eventlog.Event{e}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.MaxPending > 0 {
		nSubmit := 0
		for _, e := range events {
			if e.Type == eventlog.Submit {
				nSubmit++
			}
		}
		if _, pending, _ := d.g.Live(); nSubmit > 0 && pending+nSubmit > d.cfg.MaxPending {
			d.rej429.Add(1)
			w.Header().Set("Retry-After", d.retryAfter())
			httpError(w, http.StatusTooManyRequests,
				"pending queue full: %d pending + %d submitted exceeds %d; retry after the next admission",
				pending, nSubmit, d.cfg.MaxPending)
			return
		}
	}
	applied := make([]eventlog.Event, 0, len(events))
	for _, e := range events {
		// Convenience: producers may leave ids to the daemon.
		if e.Type == eventlog.Submit && e.Job == 0 {
			e.Job = d.g.NextJobID()
		}
		if e.Type == eventlog.Join && e.Mach == 0 {
			e.Mach = d.g.NextMachID()
		}
		stamped, err := d.applyLocked(e)
		if err != nil {
			httpError(w, http.StatusBadRequest, "event %d of batch: %v", len(applied), err)
			return
		}
		applied = append(applied, stamped)
	}
	d.maybeAdmitLocked()
	if err := d.commitLocked(); err != nil {
		d.walErrors.Add(1)
		httpError(w, http.StatusInternalServerError, "events applied but not durable: %v", err)
		return
	}
	writeJSON(w, applied)
}

func (d *Daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("job"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "query: bad job id: %v", err)
		return
	}
	d.mu.Lock()
	info := d.g.Job(id)
	d.mu.Unlock()
	writeJSON(w, info)
}

func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Externalise under the lock, write to the client outside it: a slow
	// snapshot reader must not stall submissions and the admission ticker
	// for the duration of the network write.
	d.mu.Lock()
	err := d.flushLocked(false)
	var snap *Snapshot
	if err == nil {
		snap = d.g.Snapshot()
	}
	d.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "flushing log: %v", err)
		return
	}
	writeJSON(w, snap)
}

func (d *Daemon) handleAdmit(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	e, err := d.applyLocked(eventlog.Event{Type: eventlog.Admit})
	placed := len(d.g.LastPlacements())
	var cerr error
	if err == nil {
		if cerr = d.commitLocked(); cerr != nil {
			d.walErrors.Add(1)
		}
	}
	d.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cerr != nil {
		httpError(w, http.StatusInternalServerError, "admit applied but not durable: %v", cerr)
		return
	}
	writeJSON(w, map[string]any{"seq": e.Seq, "placed": placed})
}

// Stats is the body of GET /stats.
type Stats struct {
	Applied   uint64   `json:"applied"`
	Counters  Counters `json:"counters"`
	Placed    int      `json:"placed"`
	Pending   int      `json:"pending"`
	Machines  int      `json:"machines"`
	Makespan  float64  `json:"makespan"`
	Flowtime  float64  `json:"flowtime"`
	Latency   LatStats `json:"latency"`
	AdmitWall LatStats `json:"admit_wall"`
	UptimeS   float64  `json:"uptime_s"`

	// Degradation observability.
	Fsync       string `json:"fsync"`
	MaxPending  int    `json:"max_pending,omitempty"`
	Panics      uint64 `json:"panics"`
	Rejected429 uint64 `json:"rejected_429"`
	Rejected503 uint64 `json:"rejected_503"`
	WALErrors   uint64 `json:"wal_errors"`
	Degraded    bool   `json:"degraded"`

	// Replication observability.
	Role       string `json:"role"`
	Term       uint64 `json:"term"`
	Fenced     bool   `json:"fenced,omitempty"`
	ReplicaLag uint64 `json:"replica_lag,omitempty"`
}

// LatStats summarises a wall-clock sample set in milliseconds.
type LatStats struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// summarize computes count/mean/p50/p99 over seconds samples.
func summarize(samples []float64) LatStats {
	s := LatStats{Count: len(samples)}
	if s.Count == 0 {
		return s
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i] * 1e3
	}
	s.P50Ms = q(0.50)
	s.P99Ms = q(0.99)
	s.MeanMs = sum / float64(len(sorted)) * 1e3
	return s
}

// StatsNow builds the current stats under the daemon lock.
func (d *Daemon) StatsNow() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	placed, pending, machines := d.g.Live()
	mk, fl := d.g.Quality()
	return Stats{
		Applied:   d.g.Applied(),
		Counters:  d.g.Counters(),
		Placed:    placed,
		Pending:   pending,
		Machines:  machines,
		Makespan:  mk,
		Flowtime:  fl,
		Latency:   summarize(d.placeLat),
		AdmitWall: summarize(d.admitWall),
		UptimeS:   time.Since(d.started).Seconds(),

		Fsync:       cmp.Or(d.cfg.Fsync, FsyncNever),
		MaxPending:  d.cfg.MaxPending,
		Panics:      d.panics.Load(),
		Rejected429: d.rej429.Load(),
		Rejected503: d.rej503.Load(),
		WALErrors:   d.walErrors.Load(),
		Degraded:    d.degraded.Load(),

		Role:       d.Role(),
		Term:       d.term.Load(),
		Fenced:     d.fenced.Load(),
		ReplicaLag: d.replLag.Load(),
	}
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, d.StatsNow())
}
