package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"

	"gridcma/internal/eventlog"
	"gridcma/internal/transport"
)

// Daemon roles. A daemon is born a primary; NewReplicator demotes it to
// follower, and Promote flips it back with a bumped term.
const (
	rolePrimary int32 = iota
	roleFollower
)

// Replication batch rejection reasons (ReplBatch.Reject / ReplSnap.Reject).
const (
	// RejectStaleTerm: the request carried a term below the responder's —
	// the caller is behind and must adopt the responder's term first.
	RejectStaleTerm = "stale-term"
	// RejectFenced: the responder has seen a higher term than its own and
	// refuses to ship — it is a deposed primary in read-only mode.
	RejectFenced = "fenced"
	// RejectNotPrimary: the responder is a follower; only primaries ship.
	RejectNotPrimary = "not-primary"
	// RejectAhead: the puller claims more applied events than the
	// responder has — the two logs have diverged past what term fencing
	// caught, and shipping anything would make it worse.
	RejectAhead = "follower-ahead"
)

// ReplPull is the payload of a transport.KindReplPull request: ship the
// WAL events after sequence number After.
type ReplPull struct {
	// ID identifies the follower; the primary keys its WAL cursor on it
	// so a steady follower is served by streaming, not re-scanning.
	ID string `json:"id"`
	// Term is the follower's fencing term. A term above the primary's
	// fences the primary (it has been superseded); below it, the pull is
	// rejected until the follower adopts the newer term.
	Term  uint64 `json:"term"`
	After uint64 `json:"after"`
	Max   int    `json:"max,omitempty"`
}

// ReplBatch answers a pull.
type ReplBatch struct {
	Term   uint64 `json:"term"`
	Reject string `json:"reject,omitempty"`
	// NeedSnapshot: the primary's WAL cannot serve After+1 (the follower
	// is behind a snapshot-truncated log); bootstrap via KindReplSnapshot.
	NeedSnapshot bool             `json:"need_snapshot,omitempty"`
	Events       []eventlog.Event `json:"events,omitempty"`
	// Applied is the primary's applied sequence number at ship time —
	// the follower's lag is Applied minus its own.
	Applied uint64 `json:"applied"`
	// Digest is the primary's state digest after applying DigestSeq,
	// carried on every batch for continuous divergence detection: a
	// follower whose digest differs after the same prefix must stop
	// rather than drift.
	Digest    string `json:"digest,omitempty"`
	DigestSeq uint64 `json:"digest_seq,omitempty"`
}

// ReplSnap answers a transport.KindReplSnapshot bootstrap request.
type ReplSnap struct {
	Term     uint64    `json:"term"`
	Reject   string    `json:"reject,omitempty"`
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// loadTerm reads a persisted fencing term; a missing file is term 0.
func loadTerm(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	t, err := strconv.ParseUint(string(bytesTrimSpace(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("daemon: term file %s: %v", path, err)
	}
	return t, nil
}

func bytesTrimSpace(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r' || b[len(b)-1] == ' ') {
		b = b[:len(b)-1]
	}
	return b
}

// saveTerm persists a fencing term atomically (temp + rename): a crash
// mid-write must never roll a term back, or a deposed primary could be
// reborn believing it still leads.
func saveTerm(path string, term uint64) error {
	dir, tmp := splitTmp(path)
	f, err := os.CreateTemp(dir, tmp)
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := fmt.Fprintf(f, "%d\n", term)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(name)
		return werr
	}
	return os.Rename(name, path)
}

func splitTmp(path string) (dir, pattern string) {
	i := len(path) - 1
	for i >= 0 && path[i] != '/' {
		i--
	}
	if i < 0 {
		return ".", ".term-*.tmp"
	}
	return path[:i], ".term-*.tmp"
}

// digestRing remembers the state digest after each of the last N
// applied events, so pull responses can stamp any recent batch end with
// the digest the follower must reproduce. Bounded: a follower lagging
// further than the ring simply gets batches without digests until it
// catches back into the window (correctness never depends on the
// digest — it is the tripwire, not the ledger).
type digestRing struct {
	seqs []uint64
	vals []string
}

func newDigestRing(n int) *digestRing {
	if n < 1024 {
		n = 1024
	}
	return &digestRing{seqs: make([]uint64, n), vals: make([]string, n)}
}

func (r *digestRing) put(seq uint64, dig string) {
	i := seq % uint64(len(r.seqs))
	r.seqs[i], r.vals[i] = seq, dig
}

func (r *digestRing) get(seq uint64) (string, bool) {
	if seq == 0 {
		return "", false
	}
	i := seq % uint64(len(r.seqs))
	if r.seqs[i] != seq {
		return "", false
	}
	return r.vals[i], true
}

// --- Daemon replication surface ---------------------------------------

// EnableReplication arms the daemon for serving followers: every
// applied event records its digest in a bounded ring and flushes the
// WAL so a tailing reader sees it immediately. ringSize bounds the
// digest window (0 = 8192). Idempotent.
func (d *Daemon) EnableReplication(ringSize int) {
	if ringSize <= 0 {
		ringSize = 8192
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.digests != nil {
		return
	}
	d.digests = newDigestRing(ringSize)
	if seq := d.g.Applied(); seq > 0 {
		d.digests.put(seq, d.g.Digest())
	}
	if d.wal != nil {
		d.wal.Flush()
	}
}

// recordDigestLocked stamps the digest ring after a successful apply
// and flushes the WAL so followers can pull the event; d.mu held, no-op
// until EnableReplication.
func (d *Daemon) recordDigestLocked() {
	if d.digests == nil {
		return
	}
	d.digests.put(d.g.Applied(), d.g.Digest())
	if d.wal != nil {
		d.wal.Flush()
	}
}

// DigestAt returns the recorded digest after event seq, if it is still
// inside the replication digest window.
func (d *Daemon) DigestAt(seq uint64) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.digests == nil {
		return "", false
	}
	return d.digests.get(seq)
}

// Term returns the daemon's fencing term.
func (d *Daemon) Term() uint64 { return d.term.Load() }

// Fenced reports whether this node observed a higher term than its own
// and demoted itself to read-only.
func (d *Daemon) Fenced() bool { return d.fenced.Load() }

// Role returns "primary" or "follower".
func (d *Daemon) Role() string {
	if d.role.Load() == roleFollower {
		return "follower"
	}
	return "primary"
}

// ReplicaLag returns the follower's last observed event lag behind its
// primary (0 on a primary).
func (d *Daemon) ReplicaLag() uint64 { return d.replLag.Load() }

// fenceBy latches the read-only demotion after observing term t above
// our own. The node does NOT adopt t — the term belongs to the new
// primary; claiming it would recreate the split brain fencing exists to
// prevent.
func (d *Daemon) fenceBy(t uint64) {
	for {
		cur := d.fencedBy.Load()
		if cur >= t {
			break
		}
		if d.fencedBy.CompareAndSwap(cur, t) {
			break
		}
	}
	d.fenced.Store(true)
}

// adoptTerm raises the daemon's term to t (persisting it) if higher.
// Followers adopt their primary's term so a later promotion bumps past
// it.
func (d *Daemon) adoptTerm(t uint64) error {
	for {
		cur := d.term.Load()
		if t <= cur {
			return nil
		}
		if d.term.CompareAndSwap(cur, t) {
			break
		}
	}
	if d.termPath != "" {
		return saveTerm(d.termPath, t)
	}
	return nil
}

// AppliedSeq returns the grid's applied sequence number under the lock.
func (d *Daemon) AppliedSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.g.Applied()
}

// GridDigest returns the grid's state digest under the lock.
func (d *Daemon) GridDigest() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.g.Digest()
}

// SnapshotNow flushes the WAL and externalises the grid.
func (d *Daemon) SnapshotNow() (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.flushLocked(false); err != nil {
		return nil, err
	}
	return d.g.Snapshot(), nil
}

// ApplyEvent applies one event through the daemon's full write path
// (WAL, digest ring, group commit) and returns the stamped event. It is
// the programmatic twin of POST /event, used by the failover torture
// and the replication bench to drive a primary without HTTP.
func (d *Daemon) ApplyEvent(e eventlog.Event) (eventlog.Event, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	stamped, err := d.applyLocked(e)
	if err != nil {
		return stamped, err
	}
	if err := d.commitLocked(); err != nil {
		d.walErrors.Add(1)
		return stamped, err
	}
	return stamped, nil
}

// ApplyReplicated applies an event shipped from the primary verbatim:
// sequence, timestamp and checksum are preserved, so the follower's WAL
// is byte-identical to the primary's prefix and "promote then replay"
// is indistinguishable from "the primary never died". Only followers
// accept replicated writes.
func (d *Daemon) ApplyReplicated(e eventlog.Event) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("daemon: stopped")
	}
	if d.role.Load() != roleFollower {
		return errors.New("daemon: not a follower: replicated writes refused")
	}
	if err := d.g.Apply(e); err != nil {
		return err
	}
	if d.wal != nil {
		stamped, err := d.wal.Append(e)
		if err != nil {
			d.walErrors.Add(1)
			return fmt.Errorf("daemon: replicated event %d applied but not persisted: %w", e.Seq, err)
		}
		// The writer re-stamps and re-checksums; any disagreement with
		// what the primary shipped means the bytes would diverge.
		if stamped.Seq != e.Seq || (e.Crc != 0 && stamped.Crc != e.Crc) {
			return fmt.Errorf("daemon: replicated event %d re-encoded as seq %d crc %#x (shipped crc %#x): WAL divergence",
				e.Seq, stamped.Seq, stamped.Crc, e.Crc)
		}
	}
	d.recordDigestLocked()
	return nil
}

// CommitReplicated is the follower's batch commit barrier: flush, plus
// fsync under FsyncAlways — the same durability the primary gave the
// batch when it first acknowledged it.
func (d *Daemon) CommitReplicated() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil || d.closed {
		return nil
	}
	if err := d.wal.Flush(); err != nil {
		return err
	}
	if d.cfg.Fsync == FsyncAlways {
		return d.walFile.Sync()
	}
	return nil
}

// FlushWAL makes every applied event visible to WAL readers.
func (d *Daemon) FlushWAL() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil || d.closed {
		return nil
	}
	return d.wal.Flush()
}

// ReplaceGrid swaps in a bootstrap-restored grid and restarts the WAL
// from its applied sequence number: the events below the snapshot are
// gone from this node's log (they live in the snapshot file the caller
// persists alongside), exactly like a primary that snapshotted and
// rotated. Follower-only.
func (d *Daemon) ReplaceGrid(g *Grid) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("daemon: stopped")
	}
	if d.role.Load() != roleFollower {
		return errors.New("daemon: not a follower: grid replacement refused")
	}
	if d.wal != nil {
		if err := d.wal.Flush(); err != nil {
			return err
		}
		if err := d.walFile.Truncate(0); err != nil {
			return fmt.Errorf("daemon: truncating WAL for bootstrap: %w", err)
		}
		d.wal = eventlog.NewWriterAt(d.walFile, g.Applied())
	}
	d.g = g
	if d.digests != nil {
		d.digests = newDigestRing(len(d.digests.seqs))
		if seq := g.Applied(); seq > 0 {
			d.digests.put(seq, g.Digest())
		}
	}
	return nil
}

// setFollower demotes the daemon to follower and registers the
// replicator's promote hook; called by NewReplicator.
func (d *Daemon) setFollower(promote func() (uint64, error), maxLag uint64) {
	d.promoteMu.Lock()
	d.promoteFn = promote
	d.promoteMu.Unlock()
	d.replMaxLag.Store(maxLag)
	d.replCaught.Store(false)
	d.role.Store(roleFollower)
}

// promoteToPrimary is the role flip at failover: claim newTerm
// (persisted before the role changes hands — a promotion that cannot
// record its term must not serve), then start taking writes.
func (d *Daemon) promoteToPrimary(newTerm uint64) error {
	for {
		cur := d.term.Load()
		if newTerm <= cur {
			return fmt.Errorf("daemon: promotion term %d not above current %d", newTerm, cur)
		}
		if d.term.CompareAndSwap(cur, newTerm) {
			break
		}
	}
	if d.termPath != "" {
		if err := saveTerm(d.termPath, newTerm); err != nil {
			return fmt.Errorf("daemon: persisting promotion term: %w", err)
		}
	}
	d.replLag.Store(0)
	d.replCaught.Store(true)
	d.role.Store(rolePrimary)
	return nil
}

// Promote asks the follower's replicator to take over as primary,
// returning the new term. On a node that was never a follower it
// reports an error.
func (d *Daemon) Promote() (uint64, error) {
	d.promoteMu.Lock()
	fn := d.promoteFn
	d.promoteMu.Unlock()
	if fn == nil {
		return 0, errors.New("daemon: not a follower (no replicator attached)")
	}
	return fn()
}

func (d *Daemon) handlePromote(w http.ResponseWriter, r *http.Request) {
	term, err := d.Promote()
	if err != nil {
		httpError(w, http.StatusConflict, "promote: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"role":    d.Role(),
		"term":    term,
		"applied": d.AppliedSeq(),
	})
}

// --- ReplServer: the primary's shipping side ---------------------------

// ReplConfig parameterises a ReplServer.
type ReplConfig struct {
	// Batch caps events per pull response (0 = 512).
	Batch int
	// Ring sizes the digest window (0 = 8192); it should comfortably
	// exceed Batch so every batch end can carry a digest.
	Ring int
}

// ReplServer serves the primary's side of WAL-shipping replication as a
// transport.Handler: followers pull batches of WAL events (resumable by
// sequence number, streamed via a cached eventlog.Follower per
// follower), bootstrap from a snapshot when the log cannot serve their
// position, and get the primary's digest with every batch. Term
// checking happens on every request — a pull carrying a higher term
// fences this node on the spot.
type ReplServer struct {
	d       *Daemon
	walPath string
	batch   int

	mu      sync.Mutex
	cursors map[string]*replCursor
}

type replCursor struct {
	fl   *eventlog.Follower
	next uint64 // sequence number the cursor will read next
}

// NewReplServer arms d for replication and returns the shipping
// handler. The daemon must have a WAL (replication ships the log).
func NewReplServer(d *Daemon, cfg ReplConfig) (*ReplServer, error) {
	if d.cfg.LogPath == "" {
		return nil, errors.New("daemon: replication requires a WAL (ServerConfig.LogPath)")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 512
	}
	d.EnableReplication(cfg.Ring)
	return &ReplServer{
		d:       d,
		walPath: d.cfg.LogPath,
		batch:   cfg.Batch,
		cursors: make(map[string]*replCursor),
	}, nil
}

// Handle implements transport.Handler.
func (s *ReplServer) Handle(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	switch req.Kind {
	case transport.KindPing:
		return &transport.Response{ID: req.ID}, nil
	case transport.KindReplPull:
		var pull ReplPull
		if err := json.Unmarshal(req.Repl, &pull); err != nil {
			return nil, fmt.Errorf("daemon: repl-pull payload: %v", err)
		}
		batch, err := s.pull(&pull)
		if err != nil {
			return nil, err
		}
		return marshalRepl(req.ID, batch)
	case transport.KindReplSnapshot:
		var pull ReplPull
		if err := json.Unmarshal(req.Repl, &pull); err != nil {
			return nil, fmt.Errorf("daemon: repl-snapshot payload: %v", err)
		}
		snap, err := s.snapshot(&pull)
		if err != nil {
			return nil, err
		}
		return marshalRepl(req.ID, snap)
	default:
		return nil, fmt.Errorf("daemon: replication server: unknown kind %q", req.Kind)
	}
}

func marshalRepl(id uint64, v any) (*transport.Response, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return &transport.Response{ID: id, Repl: b}, nil
}

// checkTerm applies the fencing protocol shared by pulls and snapshot
// requests, returning a rejection reason ("" = proceed).
func (s *ReplServer) checkTerm(reqTerm uint64) string {
	myTerm := s.d.Term()
	if reqTerm > myTerm {
		// Someone with a newer term exists: this node is deposed. The
		// demotion latches — even if that someone never calls again.
		s.d.fenceBy(reqTerm)
		return RejectFenced
	}
	if s.d.Fenced() {
		return RejectFenced
	}
	if reqTerm < myTerm {
		return RejectStaleTerm
	}
	if s.d.role.Load() != rolePrimary {
		return RejectNotPrimary
	}
	return ""
}

func (s *ReplServer) pull(pull *ReplPull) (*ReplBatch, error) {
	myTerm := s.d.Term()
	if reject := s.checkTerm(pull.Term); reject != "" {
		return &ReplBatch{Term: myTerm, Reject: reject}, nil
	}
	if err := s.d.FlushWAL(); err != nil {
		return nil, err
	}
	applied := s.d.AppliedSeq()
	if pull.After > applied {
		return &ReplBatch{Term: myTerm, Reject: RejectAhead, Applied: applied}, nil
	}
	max := s.batch
	if pull.Max > 0 && pull.Max < max {
		max = pull.Max
	}
	events, err := s.read(pull.ID, pull.After, max)
	if err != nil {
		return nil, err
	}
	// Gap detection: the WAL was flushed above, so if the follower sits
	// below the primary's applied position the log must be able to serve
	// After+1. When it starts later (this primary was itself born from a
	// snapshot and its log is truncated below that point), log shipping
	// cannot bridge the gap — bootstrap instead.
	if (len(events) == 0 && pull.After < applied) ||
		(len(events) > 0 && events[0].Seq != pull.After+1) {
		s.dropCursor(pull.ID)
		return &ReplBatch{Term: myTerm, NeedSnapshot: true, Applied: applied}, nil
	}
	resp := &ReplBatch{Term: myTerm, Events: events, Applied: applied}
	end := pull.After + uint64(len(events))
	if dig, ok := s.d.DigestAt(end); ok {
		resp.Digest, resp.DigestSeq = dig, end
	}
	return resp, nil
}

// read streams up to max events after seq from the WAL, reusing the
// follower's cursor when it is positioned right (the steady state: each
// pull resumes exactly where the last left off, so shipping is O(batch)
// per call, not O(log)).
func (s *ReplServer) read(id string, after uint64, max int) ([]eventlog.Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cursors[id]
	if c == nil || c.next != after+1 {
		if c != nil {
			c.fl.Close()
		}
		fl, err := eventlog.Follow(s.walPath, after)
		if err != nil {
			return nil, fmt.Errorf("daemon: opening WAL cursor for %q: %w", id, err)
		}
		c = &replCursor{fl: fl, next: after + 1}
		s.cursors[id] = c
	}
	var events []eventlog.Event
	for len(events) < max {
		e, ok, err := c.fl.Next()
		if err != nil {
			// The cursor is poisoned (mid-log corruption?): drop it so the
			// next pull re-opens, and surface the error to the follower.
			c.fl.Close()
			delete(s.cursors, id)
			return nil, err
		}
		if !ok {
			break
		}
		events = append(events, e)
	}
	// The cursor serves After = c.next-1 next time. An empty read leaves
	// it where it was; a gap (first event past after+1) is the caller's
	// to detect — it drops the cursor and answers NeedSnapshot.
	c.next = after + uint64(len(events)) + 1
	if n := len(events); n > 0 {
		c.next = events[n-1].Seq + 1
	}
	return events, nil
}

func (s *ReplServer) dropCursor(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.cursors[id]; c != nil {
		c.fl.Close()
		delete(s.cursors, id)
	}
}

// Close releases every cached WAL cursor.
func (s *ReplServer) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, c := range s.cursors {
		c.fl.Close()
		delete(s.cursors, id)
	}
}

func (s *ReplServer) snapshot(pull *ReplPull) (*ReplSnap, error) {
	myTerm := s.d.Term()
	if reject := s.checkTerm(pull.Term); reject != "" {
		return &ReplSnap{Term: myTerm, Reject: reject}, nil
	}
	snap, err := s.d.SnapshotNow()
	if err != nil {
		return nil, err
	}
	return &ReplSnap{Term: myTerm, Snapshot: snap}, nil
}
