package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gridcma/internal/eventlog"
)

// TestSnapshotRestoreRoundTrip pins the snapshot as a faithful
// externalisation: restore of a mid-life snapshot verifies its digest and
// reproduces the externally visible state.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 19, 250)

	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Digest() != g.Digest() {
		t.Fatal("restored digest differs from live digest")
	}
	if r.Applied() != g.Applied() {
		t.Fatalf("restored applied %d, live %d", r.Applied(), g.Applied())
	}
	gp, gq, gm := g.Live()
	rp, rq, rm := r.Live()
	if gp != rp || gq != rq || gm != rm {
		t.Fatalf("live counts differ: (%d,%d,%d) vs (%d,%d,%d)", gp, gq, gm, rp, rq, rm)
	}
}

// TestSnapshotRejectsTamper pins the self-verification: a snapshot whose
// payload was altered after the digest was taken fails to restore.
func TestSnapshotRejectsTamper(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 23, 120)
	s := g.Snapshot()
	if len(s.Jobs) == 0 {
		t.Skip("driver left no jobs to tamper with")
	}
	s.Jobs[0].Base++
	if _, err := Restore(s); err == nil {
		t.Fatal("restore accepted a tampered snapshot")
	}
}

// TestSnapshotFileRoundTrip pins the atomic file path: write, load,
// identical digest, and no temp-file litter left behind.
func TestSnapshotFileRoundTrip(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 31, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.snap")
	if err := g.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Digest() != g.Digest() {
		t.Fatal("loaded digest differs from live digest")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "grid.snap" {
		t.Fatalf("snapshot dir not clean after write: %v", ents)
	}
}

// TestSnapshotFileMissing pins the cold-start contract: a missing
// snapshot file is os.ErrNotExist, not a decode error.
func TestSnapshotFileMissing(t *testing.T) {
	_, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "nope.snap"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v, want os.ErrNotExist", err)
	}
}

// TestSnapshotTruncatedMidJSON pins that a snapshot torn mid-document —
// what a crash during a non-atomic write would leave — fails to restore
// cleanly at every truncation point rather than loading a half-state.
// (SaveSnapshot's rename makes this unreachable in practice; the test
// guards the decode path against externally damaged files.)
func TestSnapshotTruncatedMidJSON(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 37, 150)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, frac := range []int{1, 4, 2, 3} {
		cut := len(whole) * frac / 5
		if _, err := ReadSnapshot(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("restore accepted a snapshot truncated at byte %d of %d", cut, len(whole))
		}
	}
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Fatal("restore accepted an empty snapshot document")
	}
}

// TestCheckInvariantsOnDrivenGrid runs the structural health probe the
// daemon uses after a handler panic across a long driven history, and
// pins that it detects a planted inconsistency.
func TestCheckInvariantsOnDrivenGrid(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("fresh grid: %v", err)
	}
	d := newDriver(41, testConfig().MachCap)
	for i := 0; i < 300; i++ {
		e := d.next()
		if err := g.Apply(e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Type == eventlog.Admit {
			d.used = len(d.alive)
		}
		if i%50 == 0 {
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("after event %d: %v", i, err)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("final state: %v", err)
	}
	// Plant a corruption: unindex an occupied slot.
	for id := range g.byID {
		delete(g.byID, id)
		break
	}
	if err := g.CheckInvariants(); err == nil {
		t.Fatal("invariant check missed a deleted byID entry")
	}
}

// TestReplayDeterminism is the contract the daemon's crash recovery rests
// on: same snapshot + same event-log suffix ⇒ bit-identical schedule
// trajectory. A live grid runs a full stream; a second grid restores the
// mid-stream snapshot and applies only the suffix. Their digests must
// agree after every suffix event, and their final snapshots must be
// byte-identical JSON.
func TestReplayDeterminism(t *testing.T) {
	cfg := testConfig()
	live, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(303, cfg.MachCap)
	const total, cut = 600, 280
	var snap *Snapshot
	var suffix []eventlog.Event
	var suffixDigests []string
	for i := 0; i < total; i++ {
		e := d.next()
		if err := live.Apply(e); err != nil {
			t.Fatalf("event %d (%+v): %v", i, e, err)
		}
		if e.Type == eventlog.Admit {
			d.used = len(d.alive)
		}
		if i == cut {
			snap = live.Snapshot()
		} else if i > cut {
			suffix = append(suffix, e)
			suffixDigests = append(suffixDigests, live.Digest())
		}
	}

	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range suffix {
		if err := restored.Apply(e); err != nil {
			t.Fatalf("suffix event %d (%+v): %v", i, e, err)
		}
		if d := restored.Digest(); d != suffixDigests[i] {
			t.Fatalf("trajectory diverged at suffix event %d (%+v):\nlive     %s\nrestored %s",
				i, e, suffixDigests[i], d)
		}
	}

	liveSnap, err := json.Marshal(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	restoredSnap, err := json.Marshal(restored.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveSnap, restoredSnap) {
		t.Fatalf("final snapshots differ:\nlive     %s\nrestored %s", liveSnap, restoredSnap)
	}
}

// TestReplayDeterminismThroughLog runs the same contract through the
// eventlog wire format: the suffix is serialised and re-read before
// replay, so JSON round-tripping is part of the proven path.
func TestReplayDeterminismThroughLog(t *testing.T) {
	cfg := testConfig()
	live, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(909, cfg.MachCap)
	const total, cut = 400, 150
	var snap *Snapshot
	var logBuf bytes.Buffer
	var w *eventlog.Writer
	for i := 0; i < total; i++ {
		e := d.next()
		if w != nil {
			// Persist exactly what will be applied, stamped with the live
			// grid's next sequence number — the daemon's WAL discipline.
			stamped, err := w.Append(e)
			if err != nil {
				t.Fatal(err)
			}
			e = stamped
		}
		if err := live.Apply(e); err != nil {
			t.Fatalf("event %d (%+v): %v", i, e, err)
		}
		if e.Type == eventlog.Admit {
			d.used = len(d.alive)
		}
		if i == cut {
			snap = live.Snapshot()
			w = eventlog.NewWriterAt(&logBuf, snap.Applied)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	events, err := eventlog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := restored.Apply(e); err != nil {
			t.Fatalf("replaying logged event %+v: %v", e, err)
		}
	}
	if live.Digest() != restored.Digest() {
		t.Fatal("snapshot + serialised log did not reproduce the live digest")
	}
}
