package daemon

import (
	"reflect"
	"testing"
)

// TestFailoverTorture runs the seeded kill-and-promote torture at test
// scale: every case must survive chaos on the replication stream, fence
// the stale primary, and land the promoted node on the reference digest
// trajectory.
func TestFailoverTorture(t *testing.T) {
	res, err := FailoverTest(FailoverTestConfig{
		Seed:   1,
		Cases:  4,
		Events: 160,
		Faults: 8,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Promotions != 4 {
		t.Fatalf("promotions = %d, want 4", res.Promotions)
	}
	if res.Fenced != 4 || res.StaleTerm != 4 {
		t.Fatalf("fenced = %d, stale-term = %d, want 4 each", res.Fenced, res.StaleTerm)
	}
	if res.SnapshotBoots == 0 {
		t.Fatal("no case exercised snapshot bootstrap")
	}
	total := 0
	for _, n := range res.Faults {
		total += n
	}
	if total == 0 {
		t.Fatal("chaos injected no faults")
	}
	if res.FinalDigest == "" {
		t.Fatal("no final digest recorded")
	}
}

// TestFailoverTortureDeterministic: the torture is a pure function of
// its seed — same seed, same faults, same digests, same counters.
func TestFailoverTortureDeterministic(t *testing.T) {
	run := func() *FailoverTestResult {
		res, err := FailoverTest(FailoverTestConfig{Seed: 7, Cases: 2, Events: 120, Faults: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a, b)
	}
}
