package daemon

import (
	"errors"
	"fmt"
	"os"

	"gridcma/internal/eventlog"
)

// RecoverInfo describes what a crash recovery found and did.
type RecoverInfo struct {
	// FromSnapshot is the snapshot's applied sequence number, 0 when the
	// grid was rebuilt from the log alone.
	FromSnapshot uint64 `json:"from_snapshot"`
	// Replayed counts the log events applied on top.
	Replayed int `json:"replayed"`
	// TornTail reports that the log ended in a torn record which was
	// truncated away (the crash signature of an in-flight write).
	TornTail bool `json:"torn_tail,omitempty"`
}

// ReplayFile applies a WAL file's events to g, truncating a torn tail
// in place first. Events at or below g.Applied() are skipped, so the
// same call serves both cold replay (fresh grid, whole log) and warm
// replay (restored snapshot, log suffix). A missing file is an empty
// log. Returns the number of events applied and whether a torn tail was
// truncated.
func ReplayFile(g *Grid, path string) (int, bool, error) {
	events, torn, err := eventlog.Recover(path)
	if err != nil {
		return 0, torn, err
	}
	n := 0
	for _, e := range events {
		if e.Seq <= g.Applied() {
			continue
		}
		if err := g.Apply(e); err != nil {
			return n, torn, fmt.Errorf("daemon: replaying event %d: %w", e.Seq, err)
		}
		n++
	}
	return n, torn, nil
}

// RecoverGrid rebuilds a grid from its durable artifacts: the snapshot
// at snapPath (when the file exists — its digest self-verifies) plus
// the WAL at logPath, whose torn tail, if any, is truncated before
// replay. Either path may be empty or missing; with both absent the
// result is a fresh grid. This is the one restart entry point — the
// daemon binary and the crash-torture harness recover through the same
// code so the torture run proves the path the operator relies on.
func RecoverGrid(cfg Config, snapPath, logPath string) (*Grid, RecoverInfo, error) {
	var info RecoverInfo
	var g *Grid
	if snapPath != "" {
		sg, err := LoadSnapshotFile(snapPath)
		switch {
		case err == nil:
			g = sg
			info.FromSnapshot = g.Applied()
		case errors.Is(err, os.ErrNotExist):
			// Cold start: fall through to a log-only rebuild.
		default:
			return nil, info, fmt.Errorf("daemon: loading snapshot %s: %w", snapPath, err)
		}
	}
	if g == nil {
		fresh, err := NewGrid(cfg)
		if err != nil {
			return nil, info, err
		}
		g = fresh
	}
	if logPath != "" {
		n, torn, err := ReplayFile(g, logPath)
		info.Replayed, info.TornTail = n, torn
		if err != nil {
			return nil, info, err
		}
	}
	return g, info, nil
}
