package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getStatus fetches a URL and decodes the JSON body into a string map.
func getStatus(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestHealthzAlwaysAnswers(t *testing.T) {
	d, srv := newTestDaemon(t, ServerConfig{Grid: DefaultConfig()})
	code, body := getStatus(t, srv.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}

	// Liveness survives every unready condition — that is its job.
	d.draining.Store(true)
	if code, _ := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d", code)
	}
	d.draining.Store(false)
	d.degraded.Store(true)
	if code, body := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK || body["degraded"] != true {
		t.Fatalf("healthz while degraded: %d %v", code, body)
	}
	d.degraded.Store(false)
}

func TestReadyzReportsReasons(t *testing.T) {
	d, srv := newTestDaemon(t, ServerConfig{Grid: DefaultConfig()})

	if code, body := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("fresh daemon not ready: %d %v", code, body)
	}

	for _, tc := range []struct {
		name   string
		set    func()
		unset  func()
		reason string
	}{
		{"draining", func() { d.draining.Store(true) }, func() { d.draining.Store(false) }, "draining"},
		{"degraded", func() { d.degraded.Store(true) }, func() { d.degraded.Store(false) }, "degraded"},
		{"recovering", func() { d.SetReady(false) }, func() { d.SetReady(true) }, "recovering"},
	} {
		tc.set()
		code, body := getStatus(t, srv.URL+"/readyz")
		tc.unset()
		if code != http.StatusServiceUnavailable || body["reason"] != tc.reason {
			t.Fatalf("%s: readyz %d %v, want 503 reason=%s", tc.name, code, body, tc.reason)
		}
	}

	if code, _ := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatal("readyz did not recover after conditions cleared")
	}
}

// TestHealthProbesBypassTheGate: during a drain the gate 503s the API,
// but probes still answer — an orchestrator must see "alive, not ready",
// not a blanket refusal.
func TestHealthProbesBypassTheGate(t *testing.T) {
	d, srv := newTestDaemon(t, ServerConfig{Grid: DefaultConfig()})
	d.draining.Store(true)
	defer d.draining.Store(false)

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated API answered %d during drain, want 503", resp.StatusCode)
	}
	if code, _ := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz gated during drain: %d", code)
	}
}

func TestRecoveringHandler(t *testing.T) {
	srv := httptest.NewServer(RecoveringHandler())
	defer srv.Close()

	if code, body := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	code, body := getStatus(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || body["reason"] != "recovering" {
		t.Fatalf("readyz: %d %v", code, body)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("API call during recovery answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("recovery 503 without Retry-After")
	}
}
