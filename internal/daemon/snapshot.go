package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gridcma/internal/schedule"
)

// snapshotVersion guards the wire format; Restore rejects anything else.
const snapshotVersion = 1

// SnapJob is one occupied job slot in a snapshot.
type SnapJob struct {
	Slot  int32   `json:"slot"`
	ID    uint64  `json:"id"`
	Base  float64 `json:"base"`
	State string  `json:"state"` // "pending" or "placed"
	// Mach is the job's current machine slot in the live state — for a
	// placed job its machine, for a pending job usually the parking slot,
	// but a job stranded by a departure with no replacement machine stays
	// physically on the departed slot until an admission can move it.
	Mach int `json:"mach"`
}

// SnapMach is one ever-used machine slot in a snapshot.
type SnapMach struct {
	Slot     int     `json:"slot"`
	ID       uint64  `json:"id"`
	Mult     float64 `json:"mult"`
	Alive    bool    `json:"alive"`
	Departed bool    `json:"departed,omitempty"`
}

// Snapshot is the complete externalised grid: applying the same event
// suffix to a restored snapshot reproduces the live grid's digest
// trajectory bit for bit. The ETC matrix is not stored — every cell is a
// pure function of (job id, machine id, seed) plus the slot states here,
// which is what keeps a million-job snapshot small.
type Snapshot struct {
	Version  int        `json:"version"`
	Config   Config     `json:"config"`
	Applied  uint64     `json:"applied"` // last applied event sequence number
	NextJob  uint64     `json:"next_job_id"`
	NextMach uint64     `json:"next_mach_id"`
	JobCap   int        `json:"job_cap"`
	Counters Counters   `json:"counters"`
	Jobs     []SnapJob  `json:"jobs"`
	Machs    []SnapMach `json:"machs"`
	Pending  []int32    `json:"pending,omitempty"`
	Free     []int32    `json:"free"`
	// ParkSeq and ParkKeys carry the parking-list order (grid.go: parkEps):
	// the key determines each parked slot's position in the parking
	// machine's job list, which the digest trajectory depends on.
	ParkSeq  uint64   `json:"park_seq"`
	ParkKeys []uint64 `json:"park_keys"`
	Digest   string   `json:"digest"`
}

// Snapshot externalises the grid. The result is self-verifying: Digest is
// the grid's state digest, and Restore recomputes and checks it.
func (g *Grid) Snapshot() *Snapshot {
	s := &Snapshot{
		Version:  snapshotVersion,
		Config:   g.cfg,
		Applied:  g.applied,
		NextJob:  g.nextJobID,
		NextMach: g.nextMachID,
		JobCap:   len(g.jobs),
		Counters: g.counters,
		Pending:  append([]int32(nil), g.pending...),
		Free:     append([]int32(nil), g.free...),
		ParkSeq:  g.parkSeq,
		ParkKeys: append([]uint64(nil), g.parkKeys...),
		Digest:   g.Digest(),
	}
	for slot := range g.jobs {
		js := &g.jobs[slot]
		if js.state == slotFree {
			continue
		}
		state := "pending"
		if js.state == slotPlaced {
			state = "placed"
		}
		s.Jobs = append(s.Jobs, SnapJob{
			Slot:  int32(slot),
			ID:    js.id,
			Base:  js.base,
			State: state,
			Mach:  g.st.Assign(slot),
		})
	}
	for slot := range g.machs {
		ms := &g.machs[slot]
		if ms.id == 0 {
			continue
		}
		s.Machs = append(s.Machs, SnapMach{
			Slot:     slot,
			ID:       ms.id,
			Mult:     ms.mult,
			Alive:    ms.alive,
			Departed: ms.departed,
		})
	}
	return s
}

// WriteSnapshot writes the grid as one JSON document.
func (g *Grid) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g.Snapshot())
}

// Restore rebuilds a grid from a snapshot and verifies the stored digest
// against the rebuilt state — a restore that would diverge from the
// snapshotted grid fails loudly instead of drifting silently.
//
// The ETC matrix is reconstructed from the deterministic value formula:
// occupied rows get real values on every alive column and on the row's
// own (possibly departed) machine slot, blockETC elsewhere. A live grid
// may still hold real values in cells a departed machine left behind
// (overwritten at the next admission in both grids, read by neither
// before that), so cells the scheduler can observe — and therefore the
// digest trajectory — match bit for bit even where the raw matrices do
// not.
func Restore(s *Snapshot) (*Grid, error) {
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("daemon: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if s.JobCap < s.Config.JobCap {
		return nil, fmt.Errorf("daemon: snapshot job cap %d below config %d", s.JobCap, s.Config.JobCap)
	}
	g, err := NewGrid(s.Config)
	if err != nil {
		return nil, err
	}
	g.applied = s.Applied
	g.nextJobID = s.NextJob
	g.nextMachID = s.NextMach
	g.counters = s.Counters
	if s.JobCap > len(g.jobs) {
		g.inst = g.blankInstance(s.JobCap)
		g.jobs = make([]jobSlot, s.JobCap)
	}
	if len(s.ParkKeys) != s.JobCap {
		return nil, fmt.Errorf("daemon: snapshot carries %d park keys for %d job slots", len(s.ParkKeys), s.JobCap)
	}
	g.parkSeq = s.ParkSeq
	g.parkKeys = append(g.parkKeys[:0], s.ParkKeys...)
	for slot := 0; slot < s.JobCap; slot++ {
		g.inst.Set(slot, g.park(), g.parkVal(g.parkKeys[slot]))
	}
	for _, sm := range s.Machs {
		if sm.Slot < 0 || sm.Slot >= len(g.machs) {
			return nil, fmt.Errorf("daemon: machine slot %d out of range", sm.Slot)
		}
		g.machs[sm.Slot] = machSlot{id: sm.ID, mult: sm.Mult, alive: sm.Alive, departed: sm.Departed}
		if sm.Alive {
			g.machByID[sm.ID] = sm.Slot
		}
	}
	p := g.park()
	sched := g.parkedSchedule(s.JobCap)
	for _, sj := range s.Jobs {
		if sj.Slot < 0 || int(sj.Slot) >= len(g.jobs) {
			return nil, fmt.Errorf("daemon: job slot %d out of range", sj.Slot)
		}
		st := slotPending
		if sj.State == "placed" {
			st = slotPlaced
		}
		g.jobs[sj.Slot] = jobSlot{id: sj.ID, base: sj.Base, state: st}
		g.byID[sj.ID] = sj.Slot
		if sj.Mach < 0 || sj.Mach > p {
			return nil, fmt.Errorf("daemon: job %d machine slot %d out of range", sj.ID, sj.Mach)
		}
		sched[sj.Slot] = sj.Mach
		row := int(sj.Slot)
		for m := 0; m < p; m++ {
			ms := &g.machs[m]
			if ms.alive || m == sj.Mach {
				if ms.id == 0 {
					return nil, fmt.Errorf("daemon: job %d on never-used machine slot %d", sj.ID, m)
				}
				g.inst.Set(row, m, g.etcOf(sj.ID, sj.Base, ms))
			} else {
				g.inst.Set(row, m, blockETC)
			}
		}
		if sj.Mach != p {
			g.inst.Set(row, p, blockETC)
		}
	}
	g.pending = append(g.pending[:0], s.Pending...)
	g.free = append(g.free[:0], s.Free...)
	g.st = schedule.NewState(g.inst, sched)
	g.st.SetScanExempt(p, true)
	if got := g.Digest(); got != s.Digest {
		return nil, fmt.Errorf("daemon: restored digest %s does not match snapshot digest %s", got, s.Digest)
	}
	return g, nil
}

// ReadSnapshot parses one JSON snapshot document and restores it.
func ReadSnapshot(r io.Reader) (*Grid, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("daemon: decoding snapshot: %v", err)
	}
	return Restore(&s)
}

// SaveSnapshot writes s to path atomically: the document goes to a temp
// file in the same directory, is fsynced, and only then renamed over the
// target; the directory is fsynced so the rename itself is durable. A
// crash at any point leaves either the old snapshot or the new one —
// never a torn half-document — which is what lets restore trust a
// snapshot file that exists at all (its digest self-verification catches
// the rest).
func SaveSnapshot(s *Snapshot, path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	enc := json.NewEncoder(tmp)
	if err = enc.Encode(s); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		err = d.Sync()
		d.Close()
	}
	return err
}

// WriteSnapshotFile atomically persists the grid's snapshot to path.
func (g *Grid) WriteSnapshotFile(path string) error {
	return SaveSnapshot(g.Snapshot(), path)
}

// LoadSnapshotFile restores a grid from a snapshot file written by
// WriteSnapshotFile (digest-verified). A missing file returns
// os.ErrNotExist, which restart logic treats as "replay the log from
// scratch".
func LoadSnapshotFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
