package daemon

import (
	"os"
	"path/filepath"
	"testing"

	"gridcma/internal/eventlog"
)

// --- Recovery edge cases: the boring files that break real restarts. ---

// TestRecoverZeroByteLog: a WAL that was created but never written (a
// crash between open and first append) must recover as an empty log, not
// a torn or corrupt one.
func TestRecoverZeroByteLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	events, torn, err := eventlog.Recover(path)
	if err != nil || torn || len(events) != 0 {
		t.Fatalf("zero-byte log: events=%d torn=%v err=%v, want 0/false/nil", len(events), torn, err)
	}
	// The file must stay usable for appends after recovery.
	st, err := os.Stat(path)
	if err != nil || st.Size() != 0 {
		t.Fatalf("zero-byte log mutated by recovery: %v size=%d", err, st.Size())
	}
}

// TestRecoverGridZeroByteLog runs the same edge through the daemon's own
// restart entry point: an empty WAL plus no snapshot is a cold start.
func TestRecoverGridZeroByteLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	g, info, err := RecoverGrid(testConfig(), "", path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 0 || info.TornTail || g.Applied() != 0 {
		t.Fatalf("cold start from empty WAL: %+v applied=%d", info, g.Applied())
	}
}

// TestRecoverGridSnapshotOnly: a snapshot with no WAL at all (the
// operator archived or rotated the log away) restores the exact
// snapshotted state and is immediately serveable.
func TestRecoverGridSnapshotOnly(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 41, 180)
	snapPath := filepath.Join(t.TempDir(), "grid.snap")
	if err := g.WriteSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}

	r, info, err := RecoverGrid(testConfig(), snapPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if info.FromSnapshot != g.Applied() || info.Replayed != 0 || info.TornTail {
		t.Fatalf("snapshot-only restart info: %+v, want FromSnapshot=%d", info, g.Applied())
	}
	if r.Digest() != g.Digest() {
		t.Fatal("snapshot-only restart changed the state digest")
	}

	// The restored grid must be serveable: wrap it in a daemon and stop
	// cleanly (exercises the WAL-less path end to end).
	d, err := NewDaemonWith(r, ServerConfig{Grid: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverGridSnapshotPlusMissingLog: naming a WAL path that does not
// exist yet (first boot with -log configured) is the same cold-append
// contract as no log.
func TestRecoverGridSnapshotPlusMissingLog(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 43, 90)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "grid.snap")
	if err := g.WriteSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	r, info, err := RecoverGrid(testConfig(), snapPath, filepath.Join(dir, "not-yet.log"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Digest() != g.Digest() || info.Replayed != 0 {
		t.Fatalf("missing WAL after snapshot: digest mismatch or replayed=%d", info.Replayed)
	}
}
