package daemon

import (
	"testing"

	"gridcma/internal/eventlog"
)

// BenchmarkAdmitSteady measures one steady-state admission window at the
// 2048-live x 64-machine ladder point: 512 completes drain, 512 fresh
// submissions, one admit — only the admit is timed. This is the warm
// half of the BENCH_gridd warm-vs-cold comparison.
func BenchmarkAdmitSteady(b *testing.B) {
	cfg := DefaultConfig()
	cfg.JobCap = 8192
	g, err := NewGrid(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for m := 0; m < 64; m++ {
		if err := g.Apply(eventlog.Event{Type: eventlog.Join, Mach: g.NextMachID(), Mult: float64(1 + m%3)}); err != nil {
			b.Fatal(err)
		}
	}
	submit := func(n int) {
		for i := 0; i < n; i++ {
			if err := g.Apply(eventlog.Event{Type: eventlog.Submit, Job: g.NextJobID(), Base: float64(1 + i%8)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	admit := func() {
		if err := g.Apply(eventlog.Event{Type: eventlog.Admit}); err != nil {
			b.Fatal(err)
		}
	}
	submit(2048)
	admit()
	oldest := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 512; k++ {
			if err := g.Apply(eventlog.Event{Type: eventlog.Complete, Job: oldest}); err != nil {
				b.Fatal(err)
			}
			oldest++
		}
		submit(512)
		b.StartTimer()
		admit()
	}
}
