package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridcma/internal/eventlog"
	"gridcma/internal/retry"
	"gridcma/internal/transport"
)

// replRig is a primary + follower pair wired through the in-process
// transport: the unit-test bench for the replication protocol.
type replRig struct {
	primary  *Daemon
	follower *Daemon
	srv      *ReplServer
	repl     *Replicator
	pLog     string
	fLog     string
}

func newReplRig(t *testing.T, rcfg ReplicatorConfig) *replRig {
	t.Helper()
	dir := t.TempDir()
	gcfg := DefaultConfig()
	gcfg.Seed = 42
	rig := &replRig{
		pLog: filepath.Join(dir, "primary.log"),
		fLog: filepath.Join(dir, "follower.log"),
	}
	var err error
	rig.primary, err = NewDaemon(ServerConfig{Grid: gcfg, LogPath: rig.pLog})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.primary.Stop() })
	rig.srv, err = NewReplServer(rig.primary, ReplConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.srv.Close)
	rig.follower, err = NewDaemon(ServerConfig{Grid: gcfg, LogPath: rig.fLog})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.follower.Stop() })
	rig.follower.EnableReplication(0)
	if rcfg.Dial == nil {
		rcfg.Dial = func() (transport.Client, error) { return transport.NewLocal(rig.srv), nil }
	}
	rig.repl, err = NewReplicator(rig.follower, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.repl.Stop)
	return rig
}

// drive applies scripted events to the rig's primary.
func (rig *replRig) drive(t *testing.T, events []eventlog.Event) {
	t.Helper()
	for i, e := range events {
		if _, err := rig.primary.ApplyEvent(e); err != nil {
			t.Fatalf("primary apply %d: %v", i, err)
		}
	}
}

// script generates n events acceptable to the rig's (fresh) primary.
func (rig *replRig) script(seed uint64, n int) []eventlog.Event {
	return Script(seed, rig.primary.cfg.Grid.MachCap, n)
}

// catchUp steps the replicator until the follower reports zero lag.
func (rig *replRig) catchUp(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		n, err := rig.repl.Step(ctx)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if n == 0 && rig.follower.ReplicaLag() == 0 {
			return
		}
	}
	t.Fatal("follower never caught up")
}

// TestReplicationCatchUp: a follower pulling a scripted WAL converges
// to the primary's applied position, digest, and — byte for byte — its
// WAL file.
func TestReplicationCatchUp(t *testing.T) {
	rig := newReplRig(t, ReplicatorConfig{ID: "f1", Batch: 7})
	script := rig.script(1, 250)
	rig.drive(t, script[:200])
	rig.catchUp(t)

	if pa, fa := rig.primary.AppliedSeq(), rig.follower.AppliedSeq(); pa != fa {
		t.Fatalf("applied: primary %d, follower %d", pa, fa)
	}
	if pd, fd := rig.primary.GridDigest(), rig.follower.GridDigest(); pd != fd {
		t.Fatalf("digest: primary %s, follower %s", pd, fd)
	}
	if err := rig.primary.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	if err := rig.follower.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	p, err := os.ReadFile(rig.pLog)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.ReadFile(rig.fLog)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, f) {
		t.Fatalf("WALs differ: primary %d bytes, follower %d bytes", len(p), len(f))
	}

	// More primary traffic streams incrementally (no cursor re-scan).
	rig.drive(t, script[200:])
	rig.catchUp(t)
	if pd, fd := rig.primary.GridDigest(), rig.follower.GridDigest(); pd != fd {
		t.Fatalf("digest after second wave: primary %s, follower %s", pd, fd)
	}
}

// TestReplicationSnapshotBootstrap: a primary whose WAL starts past a
// snapshot cannot log-ship a blank follower; the follower must detect
// the gap, bootstrap from the primary's snapshot (persisting it), and
// then stream the tail.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	dir := t.TempDir()
	gcfg := DefaultConfig()
	gcfg.Seed = 7
	script := Script(7, gcfg.MachCap, 120)

	g, err := NewGrid(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		e := script[i]
		e.Seq = uint64(i + 1)
		if err := g.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	pg, err := Restore(g.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	primary, err := NewDaemonWith(pg, ServerConfig{Grid: gcfg, LogPath: filepath.Join(dir, "primary.log")})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Stop()
	srv, err := NewReplServer(primary, ReplConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	follower, err := NewDaemon(ServerConfig{Grid: gcfg, LogPath: filepath.Join(dir, "follower.log")})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	repl, err := NewReplicator(follower, ReplicatorConfig{
		ID:   "boot",
		Dial: func() (transport.Client, error) { return transport.NewLocal(srv), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Stop()

	// The first pull cannot be served from the truncated log (the
	// primary's WAL starts at 61): the follower must bootstrap to 60.
	ctx := context.Background()
	if _, err := repl.Step(ctx); err != nil {
		t.Fatalf("bootstrap step: %v", err)
	}
	if got := follower.AppliedSeq(); got != 60 {
		t.Fatalf("follower applied %d after bootstrap, want 60", got)
	}

	// Then the tail streams as ordinary WAL shipping.
	for i := 60; i < 120; i++ {
		if _, err := primary.ApplyEvent(script[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100 && follower.AppliedSeq() < primary.AppliedSeq(); i++ {
		if _, err := repl.Step(ctx); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if fa, pa := follower.AppliedSeq(), primary.AppliedSeq(); fa != pa {
		t.Fatalf("follower applied %d, primary %d", fa, pa)
	}
	if fd, pd := follower.GridDigest(), primary.GridDigest(); fd != pd {
		t.Fatalf("digest mismatch after bootstrap: %s vs %s", fd, pd)
	}
	if repl.Stats().Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", repl.Stats().Snapshots)
	}
	if _, err := os.Stat(filepath.Join(dir, "follower.log.snap")); err != nil {
		t.Fatalf("bootstrap snapshot not persisted: %v", err)
	}
	// The follower's WAL holds exactly the post-snapshot tail, byte-equal
	// to the primary's.
	primary.FlushWAL()
	follower.FlushWAL()
	p, _ := os.ReadFile(filepath.Join(dir, "primary.log"))
	f, _ := os.ReadFile(filepath.Join(dir, "follower.log"))
	if !bytes.Equal(p, f) {
		t.Fatalf("post-bootstrap WALs differ: %d vs %d bytes", len(p), len(f))
	}
}

// TestReplicationDivergenceDetected: a shipped digest that contradicts
// the follower's own state at the same applied position is a broken
// determinism contract — the replicator must stop permanently and latch
// the daemon degraded, not shrug and keep pulling.
func TestReplicationDivergenceDetected(t *testing.T) {
	gcfg := DefaultConfig()
	follower, err := NewDaemon(ServerConfig{Grid: gcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	lying := transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		b, _ := json.Marshal(&ReplBatch{
			Term:      1,
			Applied:   0,
			Digest:    "sha256:0000000000000000000000000000000000000000000000000000000000000000",
			DigestSeq: 0, // matches the follower's applied position... with the wrong digest
		})
		return &transport.Response{ID: req.ID, Repl: b}, nil
	})
	repl, err := NewReplicator(follower, ReplicatorConfig{
		ID:   "div",
		Dial: func() (transport.Client, error) { return transport.NewLocal(lying), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Stop()

	_, err = repl.Step(context.Background())
	if err == nil {
		t.Fatal("divergent digest accepted")
	}
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("step error %v, want ErrDiverged", err)
	}
	if !retry.IsPermanent(err) {
		t.Fatalf("divergence error not permanent: %v", err)
	}
	if !follower.degraded.Load() {
		t.Fatal("divergence did not latch the daemon degraded")
	}
}

// TestReplicationFencesStalePrimary: the first replication request
// carrying a newer term demotes the old primary on the spot — shipping
// rejected, local writes refused, HTTP mutations 503, /readyz "fenced".
func TestReplicationFencesStalePrimary(t *testing.T) {
	rig := newReplRig(t, ReplicatorConfig{ID: "f1"})
	rig.drive(t, rig.script(3, 40))
	rig.catchUp(t)

	batch, err := rig.srv.pull(&ReplPull{ID: "new-primary-probe", Term: 9, After: 0})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Reject != RejectFenced {
		t.Fatalf("pull with newer term: reject %q, want %q", batch.Reject, RejectFenced)
	}
	if !rig.primary.Fenced() {
		t.Fatal("primary not fenced after observing a newer term")
	}
	// Fenced primaries must not claim the newer term as their own.
	if got := rig.primary.Term(); got != 1 {
		t.Fatalf("fenced primary term %d, want 1 (terms belong to their winners)", got)
	}
	if _, err := rig.primary.ApplyEvent(eventlog.Event{Type: eventlog.Admit}); err == nil {
		t.Fatal("fenced primary accepted a local write")
	}
	// Subsequent pulls, even with a matching term, stay rejected.
	batch, err = rig.srv.pull(&ReplPull{ID: "f1", Term: 1, After: rig.follower.AppliedSeq()})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Reject != RejectFenced {
		t.Fatalf("post-fence pull: reject %q, want %q", batch.Reject, RejectFenced)
	}

	srv := httptest.NewServer(rig.primary.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/admit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST to fenced primary: %d, want 503", resp.StatusCode)
	}
	if code, body := getStatus(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || body["reason"] != "fenced" {
		t.Fatalf("fenced readyz: %d %v", code, body)
	}
	// Reads stay up for diagnosis.
	if code, _ := getStatus(t, srv.URL+"/stats"); code != http.StatusOK {
		t.Fatalf("GET /stats on fenced primary: %d", code)
	}
}

// TestReplicationStaleFollowerAdoptsTerm: a follower pulling with an
// old term is rejected once, adopts the primary's term from the
// response, and succeeds on the retry.
func TestReplicationStaleFollowerAdoptsTerm(t *testing.T) {
	dir := t.TempDir()
	gcfg := DefaultConfig()
	if err := saveTerm(filepath.Join(dir, "primary.log.term"), 5); err != nil {
		t.Fatal(err)
	}
	primary, err := NewDaemon(ServerConfig{Grid: gcfg, LogPath: filepath.Join(dir, "primary.log")})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Stop()
	if primary.Term() != 5 {
		t.Fatalf("primary term %d, want 5 from disk", primary.Term())
	}
	srv, err := NewReplServer(primary, ReplConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, e := range Script(9, gcfg.MachCap, 30) {
		if _, err := primary.ApplyEvent(e); err != nil {
			t.Fatal(err)
		}
	}

	follower, err := NewDaemon(ServerConfig{Grid: gcfg, LogPath: filepath.Join(dir, "follower.log")})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	repl, err := NewReplicator(follower, ReplicatorConfig{
		ID:   "stale",
		Dial: func() (transport.Client, error) { return transport.NewLocal(srv), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Stop()

	ctx := context.Background()
	_, err = repl.Step(ctx)
	if err == nil || !strings.Contains(err.Error(), RejectStaleTerm) {
		t.Fatalf("first stale pull: %v, want %s rejection", err, RejectStaleTerm)
	}
	if follower.Term() != 5 {
		t.Fatalf("follower term %d after rejection, want adopted 5", follower.Term())
	}
	if n, err := repl.Step(ctx); err != nil || n == 0 {
		t.Fatalf("post-adoption pull: n=%d err=%v", n, err)
	}
}

// TestPromoteOverHTTP: POST /promote flips a follower to primary with a
// bumped, persisted term; writes start flowing and the old primary's
// shipments are rejected as stale.
func TestPromoteOverHTTP(t *testing.T) {
	rig := newReplRig(t, ReplicatorConfig{ID: "f1"})
	rig.drive(t, rig.script(4, 60))
	rig.catchUp(t)

	fsrv := httptest.NewServer(rig.follower.Handler())
	defer fsrv.Close()

	// A follower refuses direct writes...
	resp, err := http.Post(fsrv.URL+"/admit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /admit on follower: %d, want 503", resp.StatusCode)
	}

	// ...until promoted.
	resp, err = http.Post(fsrv.URL+"/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Role string `json:"role"`
		Term uint64 `json:"term"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Role != "primary" || pr.Term != 2 {
		t.Fatalf("promote: %d %+v, want 200 primary term 2", resp.StatusCode, pr)
	}
	if got, _ := loadTerm(rig.fLog + ".term"); got != 2 {
		t.Fatalf("persisted term %d, want 2", got)
	}

	resp, err = http.Post(fsrv.URL+"/admit", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admit after promotion: %d, want 200", resp.StatusCode)
	}

	// Promoting a node that was never a follower is a 409.
	psrv := httptest.NewServer(rig.primary.Handler())
	defer psrv.Close()
	resp, err = http.Post(psrv.URL+"/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on a primary: %d, want 409", resp.StatusCode)
	}
}

// TestReadyzFollowerReasons: a follower is "catching-up" before its
// first convergence and "replica-lag" when it falls behind the lag
// budget afterwards; in between it is ready and names its role.
func TestReadyzFollowerReasons(t *testing.T) {
	rig := newReplRig(t, ReplicatorConfig{ID: "f1", Batch: 1, MaxLag: 2})
	srv := httptest.NewServer(rig.follower.Handler())
	defer srv.Close()

	script := rig.script(5, 50)
	rig.drive(t, script[:30])
	if code, body := getStatus(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || body["reason"] != "catching-up" {
		t.Fatalf("fresh follower readyz: %d %v, want 503 catching-up", code, body)
	}
	rig.catchUp(t)
	if code, body := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK || body["role"] != "follower" {
		t.Fatalf("caught-up follower readyz: %d %v", code, body)
	}

	// Fall behind: 20 new events, one pulled (Batch 1) → lag 19 > 2.
	rig.drive(t, script[30:])
	if _, err := rig.repl.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body := getStatus(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || body["reason"] != "replica-lag" {
		t.Fatalf("lagging follower readyz: %d %v, want 503 replica-lag", code, body)
	}
	if lag, ok := body["lag"].(float64); !ok || lag <= 2 {
		t.Fatalf("replica-lag body lag = %v, want > 2", body["lag"])
	}
	rig.catchUp(t)
	if code, _ := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after re-catching up: %d", code)
	}
}

// TestReplicatorRunLoopConverges: the background pull loop converges
// against a concurrently-written primary and shuts down cleanly
// (exercised under -race by CI).
func TestReplicatorRunLoopConverges(t *testing.T) {
	rig := newReplRig(t, ReplicatorConfig{ID: "run", Poll: time.Millisecond, Batch: 16})
	rig.repl.Run()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, e := range Script(11, rig.primary.cfg.Grid.MachCap, 300) {
			if _, err := rig.primary.ApplyEvent(e); err != nil {
				t.Errorf("primary apply: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rig.follower.AppliedSeq() == rig.primary.AppliedSeq() && rig.follower.ReplicaLag() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rig.repl.Stop()
	if fa, pa := rig.follower.AppliedSeq(), rig.primary.AppliedSeq(); fa != pa {
		t.Fatalf("run loop never converged: follower %d, primary %d", fa, pa)
	}
	if fd, pd := rig.follower.GridDigest(), rig.primary.GridDigest(); fd != pd {
		t.Fatalf("digest mismatch after run loop: %s vs %s", fd, pd)
	}
}

// TestReplicationOverTCP: the same protocol across a real socket — the
// wire format, not just the in-process shortcut.
func TestReplicationOverTCP(t *testing.T) {
	rig := newReplRigTCP(t)
	rig.drive(t, rig.script(12, 80))
	rig.catchUp(t)
	if fd, pd := rig.follower.GridDigest(), rig.primary.GridDigest(); fd != pd {
		t.Fatalf("digest mismatch over TCP: %s vs %s", fd, pd)
	}
}

func newReplRigTCP(t *testing.T) *replRig {
	t.Helper()
	dir := t.TempDir()
	gcfg := DefaultConfig()
	gcfg.Seed = 42
	rig := &replRig{
		pLog: filepath.Join(dir, "primary.log"),
		fLog: filepath.Join(dir, "follower.log"),
	}
	var err error
	rig.primary, err = NewDaemon(ServerConfig{Grid: gcfg, LogPath: rig.pLog})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.primary.Stop() })
	rig.srv, err = NewReplServer(rig.primary, ReplConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tsrv := transport.NewServer(rig.srv)
	go tsrv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tsrv.Shutdown(ctx)
	})
	rig.follower, err = NewDaemon(ServerConfig{Grid: gcfg, LogPath: rig.fLog})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rig.follower.Stop() })
	rig.repl, err = NewReplicator(rig.follower, ReplicatorConfig{
		ID:      "tcp",
		Primary: ln.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.repl.Stop)
	return rig
}

// TestReplPullAheadRejected: a puller claiming more applied events than
// the primary has is irreconcilable — reject, don't ship.
func TestReplPullAheadRejected(t *testing.T) {
	rig := newReplRig(t, ReplicatorConfig{ID: "f1"})
	rig.drive(t, rig.script(13, 10))
	batch, err := rig.srv.pull(&ReplPull{ID: "ahead", Term: 1, After: rig.primary.AppliedSeq() + 5})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Reject != RejectAhead {
		t.Fatalf("ahead pull reject %q, want %q", batch.Reject, RejectAhead)
	}
}
