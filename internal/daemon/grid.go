// Package daemon implements gridd, the online rolling-horizon scheduler:
// the batch evaluation stack (schedule.State, the speculative probes and
// the event-driven ScanCache) turned into a long-running service. Jobs
// stream in and machines join, leave and fail; instead of rescheduling
// from scratch, every admission window warm-starts local search from the
// live state, so arrivals and departures dirty only the machines they
// touch — exactly the O(changed) contract the delta engine revalidates.
//
// # State model
//
// A Grid owns one etc.Instance sized for capacity: jobCap job slots by
// (machine capacity + 1) columns, where the extra column is the parking
// machine. Every job slot is always assigned somewhere — free and pending
// slots sit on the parking machine with a tiny ETC there and a huge ETC
// on every real machine, live jobs the reverse — so the full-neighborhood
// search methods can run unmodified over the capacity instance: any move
// or swap that would drag a job onto the parking machine, a dead machine
// slot, or a free slot into the working set is worse by construction and
// is rejected by the searches' own accept gates. Slots recycle: a
// completed job's slot parks and is reclaimed by a later submission, with
// its ETC row rewritten while the state cannot observe it (the row of a
// parked job only feeds the state through the parking column, which never
// changes). The instance is therefore deliberately mutable here, against
// the package-level convention — the Grid is its only owner and never
// mutates a value the live State has derived data from.
//
// # Determinism and replay
//
// Grid.Apply is a pure function of (state, event): job and machine ids
// are assigned sequentially, ETC values derive from (job id, machine id,
// seed) exactly as in gridsim, admission placement is greedy MCT with
// lowest-index tie-breaks, committed through State.SetScheduleDiff, and
// the improvement pass seeds its RNG from (seed, admission counter). Wall
// clock never feeds a transition. The state flowtime is re-folded
// canonically (State.RefreshFlowtime) at every event boundary, so a state
// restored from a snapshot — which rebuilds and therefore folds — is
// bit-identical to the live state the snapshot was taken from: same
// snapshot + same event log ⇒ bit-identical schedule trajectory, the
// operational form of the repo's trajectory-compatibility discipline.
//
// # Failure model and durability
//
// The daemon assumes fail-stop crashes (power loss, OOM kill, SIGKILL)
// that may tear the final in-flight write at any byte, and a filesystem
// whose rename is atomic. Durability rests on two artifacts:
//
// The write-ahead log persists every applied event as one CRC-stamped
// JSON line before the request that carried it is acknowledged; the
// fsync policy (ServerConfig.Fsync) sets how much acknowledged work a
// crash may lose — "always" group-commits at each request ack (zero
// loss), "interval" syncs on a ticker (at most one interval), "never"
// leaves syncing to the OS. On restart, eventlog.Recover applies the
// torn-write rule: a corrupt or partial final record with nothing after
// it is the crash signature and is truncated; corruption anywhere
// earlier is a hard error, never silently skipped. Snapshots are
// written atomically (temp file + fsync + rename) and verify their own
// digest on load, so a crashed snapshot write leaves the previous
// snapshot and a stray temp file, never a half-document.
//
// RecoverGrid is the single restart entry point — snapshot (if any)
// plus log suffix — used by the daemon binary, the selfcheck and the
// CrashTest torture, which kills the write path at hundreds of seeded
// byte offsets (internal/chaos) and requires every recovery to
// reproduce the reference digest trajectory bit for bit.
//
// Under overload the daemon degrades instead of falling over: a bounded
// pending queue pushes back with 429 + Retry-After, request bodies and
// handler wall time are capped, a handler panic answers 500 and
// triggers a structural self-check (CheckInvariants) that flips the
// daemon read-only if state verification fails, and Stop drains
// in-flight requests before the final WAL flush.
//
// # Replication and failover
//
// A second daemon can run as a hot standby: a Replicator demotes it to
// follower (writes answer 503 pointing at the primary) and pulls the
// primary's WAL through a ReplServer — snapshot bootstrap when the
// follower's position has aged out of the log, then a resumable event
// stream. ApplyReplicated applies shipped events verbatim (sequence,
// timestamp and checksum preserved), so the follower's WAL is
// byte-identical to the primary's acked prefix; every batch carries
// the primary's state digest at the batch-end sequence, and a mismatch
// against the follower's own digest is ErrDiverged — a permanent stop,
// never a silent drift.
//
// Failover is Promote (or POST /promote): the follower persists a
// bumped monotonic term beside its WAL before flipping to primary, and
// any replication request carrying a higher term latches the old
// primary fenced (read-only) should it return from a partition — the
// term file is the ballot box, the fence is the concession. Lag is
// observable end to end: /readyz answers "catching-up" until the first
// caught-up pull and "replica-lag" beyond ReplicatorConfig.MaxLag, so
// a balancer never routes reads to a stale standby.
//
// FailoverTest is the seeded torture for exactly this path: chaos on
// the replication stream (drops, delays, duplicates, partitions,
// connection kills), then a mid-stream primary kill and a promotion
// per case, with the promoted node's digest trajectory required to be
// bit-identical to the dead primary's acked prefix and the whole run a
// pure function of its seed.
package daemon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"gridcma/internal/etc"
	"gridcma/internal/eventlog"
	"gridcma/internal/localsearch"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

const (
	// parkEps scales the parking-column ETC of a parked (free or pending)
	// slot: slot keys are parkEps times a monotonic park sequence number,
	// so every parked slot has a distinct tiny ETC and the parking
	// machine's (ETC, id)-sorted job list is exactly park order. Newly
	// parked slots therefore append at the tail, the free stack (LIFO)
	// hands the tail back out first, and admissions remove from the tail —
	// parking-list maintenance stays O(changed) instead of shifting
	// thousands of long-parked slots. The sum over every parked slot stays
	// far below any real machine's completion, so the parking machine can
	// never become critical while jobs are placed.
	parkEps = 1e-12
	// blockETC is the "never go there" ETC: parked slots on real
	// machines, live jobs on the parking column and every dead machine
	// column. Any candidate involving such an entry scores at least
	// blockETC worse than doing nothing, so improvement-gated searches
	// cannot select it; sums of a few thousand of these stay far below
	// overflow.
	blockETC = 1e18
)

// Config parameterises a Grid. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// Seed drives ETC pair noise and the per-admission search streams.
	Seed uint64 `json:"seed"`
	// MachCap is the number of real machine slots (live machines ≤ this).
	MachCap int `json:"mach_cap"`
	// JobCap is the initial number of job slots; the grid grows (doubling,
	// with a full re-evaluation) when live + pending jobs exceed it.
	JobCap int `json:"job_cap"`
	// TaskRange and MachRange document the workload model for producers
	// (bases in [1, TaskRange], multipliers in [1, MachRange]); the grid
	// itself accepts any base ≥ 1 and mult ≥ 1.
	TaskRange float64 `json:"task_range"`
	MachRange float64 `json:"mach_range"`
	// PairInconsistency ≥ 1 scales the deterministic per-(job, machine)
	// ETC noise multiplier, gridsim's inconsistency knob.
	PairInconsistency float64 `json:"pair_inconsistency"`
	// LSIters is the local search budget of each admission window.
	LSIters int `json:"ls_iters"`
	// LSMethod names the warm improvement pass (localsearch.ByName).
	LSMethod string `json:"ls_method"`
	// Lambda is the makespan weight of the scalarised objective.
	Lambda float64 `json:"lambda"`
}

// DefaultConfig returns a 64-machine grid with the paper-tuned LMCTS
// improvement pass and objective.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		MachCap:           64,
		JobCap:            1024,
		TaskRange:         8,
		MachRange:         3,
		PairInconsistency: 1.5,
		LSIters:           5,
		LSMethod:          "LMCTS",
		Lambda:            schedule.DefaultLambda,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.MachCap < 1:
		return fmt.Errorf("daemon: MachCap %d, want >= 1", c.MachCap)
	case c.JobCap < 1:
		return fmt.Errorf("daemon: JobCap %d, want >= 1", c.JobCap)
	case c.PairInconsistency < 1:
		return fmt.Errorf("daemon: PairInconsistency %v, want >= 1", c.PairInconsistency)
	case c.LSIters < 0:
		return fmt.Errorf("daemon: negative LSIters")
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("daemon: Lambda %v outside [0, 1]", c.Lambda)
	}
	_, err := localsearch.ByName(c.LSMethod)
	return err
}

// job slot states.
const (
	slotFree    uint8 = iota
	slotPending       // submitted (or orphaned), parked, awaiting admission
	slotPlaced        // assigned to a live machine
)

type jobSlot struct {
	id    uint64 // 1-based global job id; 0 when free
	base  float64
	state uint8
}

type machSlot struct {
	id       uint64 // 1-based global machine id; 0 when never used
	mult     float64
	alive    bool
	departed bool // left/failed since the last admission; jobs not yet re-pooled
}

// Counters are the grid's monotonic event statistics.
type Counters struct {
	Submitted uint64 `json:"submitted"`
	Placed    uint64 `json:"placed"`
	Completed uint64 `json:"completed"`
	Restarts  uint64 `json:"restarts"` // jobs re-pooled by a machine failure
	Rebalance uint64 `json:"rebalanced"`
	Admits    uint64 `json:"admits"`
	Grows     uint64 `json:"grows"`
	Joined    uint64 `json:"machines_joined"`
	Left      uint64 `json:"machines_left"`
}

// Placement reports one job placed by an admission window.
type Placement struct {
	Job  uint64 // job id
	Mach uint64 // machine id
}

// Grid is the deterministic scheduler state machine behind the daemon.
// It is not safe for concurrent use; the Daemon serialises access.
type Grid struct {
	cfg  Config
	inst *etc.Instance
	st   *schedule.State
	obj  schedule.Objective
	ls   localsearch.Method
	r    rng.Source

	jobs     []jobSlot
	free     []int32 // free slot stack; pop from the end (most recently parked first)
	pending  []int32 // slots awaiting placement, in re-pool/submit order
	byID     map[uint64]int32
	machs    []machSlot
	machByID map[uint64]int

	nextJobID  uint64
	nextMachID uint64
	applied    uint64 // sequence number of the last applied event
	counters   Counters

	// parkSeq counts park operations; parkKeys[s] is the sequence number
	// slot s was last parked under — the slot's position key in the
	// parking machine's job list (ETC = parkKeys[s] * parkEps).
	parkSeq  uint64
	parkKeys []uint64

	// lastPlaced holds the placements of the most recent admission — the
	// daemon reads it for latency accounting and API responses. Not part
	// of the replayed state.
	lastPlaced []Placement
}

// NewGrid builds an empty grid: all job slots free and parked, all
// machine slots dead.
func NewGrid(cfg Config) (*Grid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ls, _ := localsearch.ByName(cfg.LSMethod)
	g := &Grid{
		cfg:      cfg,
		obj:      schedule.Objective{Lambda: cfg.Lambda},
		ls:       ls,
		jobs:     make([]jobSlot, cfg.JobCap),
		machs:    make([]machSlot, cfg.MachCap),
		byID:     make(map[uint64]int32),
		machByID: make(map[uint64]int),
	}
	g.inst = g.blankInstance(cfg.JobCap)
	g.parkKeys = make([]uint64, cfg.JobCap)
	p := g.park()
	for s := 0; s < cfg.JobCap; s++ {
		g.parkSeq++
		g.parkKeys[s] = g.parkSeq
		g.inst.Set(s, p, g.parkVal(g.parkSeq))
	}
	g.st = schedule.NewState(g.inst, g.parkedSchedule(cfg.JobCap))
	g.st.SetScanExempt(p, true)
	g.free = make([]int32, 0, cfg.JobCap)
	for s := 0; s < cfg.JobCap; s++ {
		g.free = append(g.free, int32(s))
	}
	return g, nil
}

// parkVal maps a park sequence number to its parking-column ETC.
func (g *Grid) parkVal(seq uint64) float64 { return float64(seq) * parkEps }

// park is the parking machine's column index.
func (g *Grid) park() int { return g.cfg.MachCap }

// blankInstance allocates a capacity instance with blockETC on every real
// column. The parking column is left zero — every caller assigns each
// row's park cell (the slot's park key or blockETC) before the instance
// reaches a State.
func (g *Grid) blankInstance(jobCap int) *etc.Instance {
	in := etc.New("gridd", jobCap, g.cfg.MachCap+1)
	p := g.park()
	for s := 0; s < jobCap; s++ {
		for m := 0; m < p; m++ {
			in.Set(s, m, blockETC)
		}
	}
	return in
}

func (g *Grid) parkedSchedule(jobCap int) schedule.Schedule {
	sched := make(schedule.Schedule, jobCap)
	p := g.park()
	for s := range sched {
		sched[s] = p
	}
	return sched
}

// pairNoise maps (job id, machine id) to a stable multiplier in
// [1, PairInconsistency) — the same construction as gridsim.Sim, so a
// simulation exported as an event log sees the same ETC structure when
// replayed through the daemon.
func (g *Grid) pairNoise(jobID, machID uint64) float64 {
	if g.cfg.PairInconsistency == 1 {
		return 1
	}
	x := jobID*0x9e3779b97f4a7c15 ^ machID*0xbf58476d1ce4e5b9 ^ g.cfg.Seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	u := float64(x>>11) / (1 << 53)
	return 1 + u*(g.cfg.PairInconsistency-1)
}

// etcOf is the deterministic expected time of a job on a machine.
func (g *Grid) etcOf(jobID uint64, base float64, m *machSlot) float64 {
	return base * m.mult * g.pairNoise(jobID, m.id)
}

// Applied returns the sequence number of the last applied event.
func (g *Grid) Applied() uint64 { return g.applied }

// Counters returns the grid's monotonic statistics.
func (g *Grid) Counters() Counters { return g.counters }

// LastPlacements returns the placements committed by the most recent
// admission window. The slice is reused across admissions.
func (g *Grid) LastPlacements() []Placement { return g.lastPlaced }

// Live returns the number of placed jobs, pending jobs and alive
// machines.
func (g *Grid) Live() (placed, pending, machines int) {
	for i := range g.machs {
		if g.machs[i].alive {
			machines++
		}
	}
	p := 0
	for i := range g.jobs {
		if g.jobs[i].state == slotPlaced {
			p++
		}
	}
	return p, len(g.pending), machines
}

// Quality returns the live schedule's makespan and flowtime over the
// real machines only (the parking column's parked-slot residue, ~1e-6
// per parked slot, is excluded by construction).
func (g *Grid) Quality() (makespan, flowtime float64) {
	for m := 0; m < g.cfg.MachCap; m++ {
		if c := g.st.Completion(m); c > makespan {
			makespan = c
		}
		flowtime += g.machFlow(m)
	}
	return makespan, flowtime
}

// machFlow sums job completion times on real machine m from the state's
// prefix caches (the machine's own flowtime contribution).
func (g *Grid) machFlow(m int) float64 {
	jobs := g.st.JobsOn(m)
	f := 0.0
	t := 0.0
	for _, j := range jobs {
		t += g.inst.At(int(j), m)
		f += t
	}
	return f
}

// JobInfo reports one job's externally visible state.
type JobInfo struct {
	ID    uint64  `json:"id"`
	State string  `json:"state"` // "pending", "placed", "done"/"unknown"
	Base  float64 `json:"base,omitempty"`
	Mach  uint64  `json:"mach,omitempty"` // machine id when placed
}

// Job looks up a job by id.
func (g *Grid) Job(id uint64) JobInfo {
	s, ok := g.byID[id]
	if !ok {
		if id >= 1 && id < g.nextJobID {
			return JobInfo{ID: id, State: "done"}
		}
		return JobInfo{ID: id, State: "unknown"}
	}
	js := &g.jobs[s]
	info := JobInfo{ID: id, Base: js.base}
	switch js.state {
	case slotPending:
		info.State = "pending"
	case slotPlaced:
		info.State = "placed"
		info.Mach = g.machs[g.st.Assign(int(s))].id
	}
	return info
}

// Apply validates e against the current state and applies it. On error
// the grid is unchanged. The event's sequence number, when set, must be
// the next one (applied+1); zero means "assign next".
func (g *Grid) Apply(e eventlog.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Seq != 0 && e.Seq != g.applied+1 {
		return fmt.Errorf("daemon: event seq %d, want %d", e.Seq, g.applied+1)
	}
	var err error
	switch e.Type {
	case eventlog.Submit:
		err = g.applySubmit(e)
	case eventlog.Join:
		err = g.applyJoin(e)
	case eventlog.Leave, eventlog.Fail:
		err = g.applyLeave(e)
	case eventlog.Complete:
		err = g.applyComplete(e)
	case eventlog.Admit:
		err = g.applyAdmit()
	}
	if err != nil {
		return err
	}
	g.applied++
	return nil
}

// NextJobID returns the id the next submitted job will receive.
func (g *Grid) NextJobID() uint64 { return g.nextJobID + 1 }

// NextMachID returns the id the next joining machine will receive.
func (g *Grid) NextMachID() uint64 { return g.nextMachID + 1 }

func (g *Grid) applySubmit(e eventlog.Event) error {
	if e.Job != g.nextJobID+1 {
		return fmt.Errorf("daemon: submit job id %d, want %d", e.Job, g.nextJobID+1)
	}
	if len(g.free) == 0 {
		g.grow()
	}
	s := g.free[len(g.free)-1]
	g.free = g.free[:len(g.free)-1]
	g.nextJobID++
	g.jobs[s] = jobSlot{id: e.Job, base: e.Base, state: slotPending}
	g.byID[e.Job] = s
	g.pending = append(g.pending, s)
	// Fill the row for the machines alive now; later joins rewrite their
	// column. The parking column keeps the slot's park key until
	// placement. The row of a parked slot is invisible to the live state
	// beyond that untouched cell, so this needs no invalidation.
	for m := range g.machs {
		if g.machs[m].alive {
			g.inst.Set(int(s), m, g.etcOf(e.Job, e.Base, &g.machs[m]))
		} else {
			g.inst.Set(int(s), m, blockETC)
		}
	}
	g.counters.Submitted++
	return nil
}

func (g *Grid) applyJoin(e eventlog.Event) error {
	if e.Mach != g.nextMachID+1 {
		return fmt.Errorf("daemon: join machine id %d, want %d", e.Mach, g.nextMachID+1)
	}
	slot := -1
	for m := range g.machs {
		if !g.machs[m].alive && !g.machs[m].departed && len(g.st.JobsOn(m)) == 0 {
			slot = m
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("daemon: machine capacity %d exhausted", g.cfg.MachCap)
	}
	g.nextMachID++
	g.machs[slot] = machSlot{id: e.Mach, mult: e.Mult, alive: true}
	g.machByID[e.Mach] = slot
	// Rewrite the column for every occupied row. The machine is empty, so
	// no list order depends on the old column; invalidating the machine
	// forces cached scans involving it to recompute.
	for s := range g.jobs {
		if g.jobs[s].state != slotFree {
			g.inst.Set(s, slot, g.etcOf(g.jobs[s].id, g.jobs[s].base, &g.machs[slot]))
		}
	}
	g.st.InvalidateMachine(slot)
	g.st.SyncScans()
	g.counters.Joined++
	return nil
}

func (g *Grid) applyLeave(e eventlog.Event) error {
	slot, ok := g.machByID[e.Mach]
	if !ok || !g.machs[slot].alive {
		return fmt.Errorf("daemon: machine %d not alive", e.Mach)
	}
	alive := 0
	for m := range g.machs {
		if g.machs[m].alive {
			alive++
		}
	}
	if alive == 1 && len(g.st.JobsOn(slot)) > 0 {
		return fmt.Errorf("daemon: machine %d is the last alive machine with jobs", e.Mach)
	}
	g.machs[slot].alive = false
	g.machs[slot].departed = true
	delete(g.machByID, e.Mach)
	if e.Type == eventlog.Fail {
		g.counters.Restarts += uint64(len(g.st.JobsOn(slot)))
	}
	g.counters.Left++
	// The jobs stay physically on the dead slot until the next admission
	// re-pools and re-places them; no search runs in between, so the
	// stale completion is never consulted.
	return nil
}

func (g *Grid) applyComplete(e eventlog.Event) error {
	s, ok := g.byID[e.Job]
	if !ok {
		return fmt.Errorf("daemon: job %d not live", e.Job)
	}
	js := &g.jobs[s]
	p := g.park()
	if js.state == slotPlaced {
		// The producer's machine id, when present, is advisory: a
		// replayed log's producer scheduled independently. A fresh park
		// key puts the slot at the tail of the parking list, so the Move
		// is an O(1) append there.
		g.parkSeq++
		g.parkKeys[s] = g.parkSeq
		g.inst.Set(int(s), p, g.parkVal(g.parkSeq))
		g.st.Move(int(s), p)
		g.st.SyncScans()
		g.st.RefreshFlowtime()
	} else {
		// Completed while pending (e.g. orphaned here but finished by the
		// producer's executor): drop it from the pending queue.
		for i, ps := range g.pending {
			if ps == s {
				g.pending = append(g.pending[:i], g.pending[i+1:]...)
				break
			}
		}
		if g.st.Assign(int(s)) != p {
			// Pending but physically stranded on a departed machine (an
			// admission ran with zero alive machines): park it before the
			// slot is recycled, or a later submission would inherit a
			// live assignment.
			g.parkSeq++
			g.parkKeys[s] = g.parkSeq
			g.inst.Set(int(s), p, g.parkVal(g.parkSeq))
			g.st.Move(int(s), p)
			g.st.SyncScans()
			g.st.RefreshFlowtime()
		}
	}
	for m := 0; m < p; m++ {
		g.inst.Set(int(s), m, blockETC)
	}
	delete(g.byID, e.Job)
	g.jobs[s] = jobSlot{}
	g.free = append(g.free, s)
	g.counters.Completed++
	return nil
}

// applyAdmit closes the admission window: re-pool jobs stranded on
// departed machines, place every pending job (greedy MCT on a scratch
// completion view, lowest-index ties), commit the whole batch through
// SetScheduleDiff — dirtying only the touched machines — and run the
// bounded warm-start improvement pass over the live scan cache.
func (g *Grid) applyAdmit() error {
	g.counters.Admits++
	g.lastPlaced = g.lastPlaced[:0]

	// Re-pool: jobs on departed machines go back to pending, in list
	// order (JobsOn is (ETC, id)-ordered — deterministic). A job already
	// pending was re-pooled by an earlier window that found no machine to
	// place it on; don't queue it twice.
	for m := range g.machs {
		if !g.machs[m].departed {
			continue
		}
		for _, s := range g.st.JobsOn(m) {
			if g.jobs[s].state == slotPending {
				continue
			}
			g.jobs[s].state = slotPending
			g.pending = append(g.pending, s)
			g.counters.Rebalance++
		}
	}

	aliveMachs := make([]int, 0, len(g.machs))
	for m := range g.machs {
		if g.machs[m].alive {
			aliveMachs = append(aliveMachs, m)
		}
	}
	if len(aliveMachs) == 0 {
		// Nothing to place against; pending jobs wait, departed slots
		// keep their stranded jobs until a machine exists.
		return nil
	}

	// Greedy MCT placement over a scratch completion view.
	placed := g.pending
	if len(g.pending) > 0 {
		cand := g.st.Schedule()
		comp := make([]float64, len(g.machs))
		for _, m := range aliveMachs {
			comp[m] = g.st.Completion(m)
		}
		for _, s := range g.pending {
			best, bestC := -1, math.Inf(1)
			for _, m := range aliveMachs {
				if c := comp[m] + g.inst.At(int(s), m); c < bestC {
					best, bestC = m, c
				}
			}
			cand[s] = best
			comp[best] += g.inst.At(int(s), best)
			g.jobs[s].state = slotPlaced
		}
		g.st.SetScheduleDiff(cand)
		g.st.SyncScans()
		// Placed jobs must not be parkable by the search.
		p := g.park()
		for _, s := range g.pending {
			g.inst.Set(int(s), p, blockETC)
		}
		g.counters.Placed += uint64(len(g.pending))
		g.pending = nil // placed aliases the old backing array until the window ends
	}

	// Departed slots are empty now; block their columns and invalidate.
	for m := range g.machs {
		if !g.machs[m].departed {
			continue
		}
		for s := range g.jobs {
			if g.jobs[s].state != slotFree {
				g.inst.Set(s, m, blockETC)
			}
		}
		g.machs[m].departed = false
		g.st.InvalidateMachine(m)
	}

	// Warm-start improvement: the scan cache re-sweeps only the machines
	// this window dirtied.
	if g.cfg.LSIters > 0 {
		g.r.Reseed(g.cfg.Seed ^ g.counters.Admits*0x9e3779b97f4a7c15)
		g.ls.Improve(g.st, g.obj, g.cfg.LSIters, &g.r)
	}
	g.st.SyncScans()
	g.st.RefreshFlowtime()
	// Report placements as they stand after the improvement pass — the
	// search may have moved a job off its greedy machine.
	for _, s := range placed {
		g.lastPlaced = append(g.lastPlaced, Placement{
			Job:  g.jobs[s].id,
			Mach: g.machs[g.st.Assign(int(s))].id,
		})
	}
	g.pending = placed[:0]
	return nil
}

// grow doubles the job capacity: a new instance and state carrying the
// current assignment, every new slot free and parked. This is the one
// cold restart in the grid's life (the scan cache re-warms on the next
// queries); it is deterministic — triggered purely by the event stream —
// and amortised by the doubling.
func (g *Grid) grow() {
	oldCap := len(g.jobs)
	newCap := oldCap * 2
	inst := g.blankInstance(newCap)
	p := g.park()
	for s := 0; s < oldCap; s++ {
		// Park cells carry the slot's park key (or blockETC when placed)
		// for free and occupied slots alike — the parking list order is
		// part of the trajectory.
		inst.Set(s, p, g.inst.At(s, p))
		if g.jobs[s].state == slotFree {
			continue
		}
		for m := 0; m < p; m++ {
			inst.Set(s, m, g.inst.At(s, m))
		}
	}
	g.parkKeys = append(g.parkKeys, make([]uint64, newCap-oldCap)...)
	for s := oldCap; s < newCap; s++ {
		g.parkSeq++
		g.parkKeys[s] = g.parkSeq
		inst.Set(s, p, g.parkVal(g.parkSeq))
	}
	sched := g.parkedSchedule(newCap)
	old := g.st.ScheduleView()
	copy(sched, old)
	g.inst = inst
	g.st = schedule.NewState(inst, sched)
	g.st.SetScanExempt(p, true)
	g.jobs = append(g.jobs, make([]jobSlot, newCap-oldCap)...)
	for s := oldCap; s < newCap; s++ {
		g.free = append(g.free, int32(s))
	}
	g.counters.Grows++
}

// Digest returns a hex SHA-256 over the grid's canonical value state:
// counters, job and machine records, the assignment vector and the raw
// float bits of every real machine completion and the state flowtime.
// Two grids with equal digests are bit-identical as schedulers; the
// replay tests compare digest trajectories.
func (g *Grid) Digest() string {
	h := sha256.New()
	var buf [8]byte
	u := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	f := func(v float64) { u(math.Float64bits(v)) }
	u(g.nextJobID)
	u(g.nextMachID)
	u(g.applied)
	u(g.counters.Admits)
	u(g.parkSeq)
	u(uint64(len(g.jobs)))
	for s := range g.jobs {
		u(g.jobs[s].id)
		u(uint64(g.jobs[s].state))
		u(g.parkKeys[s])
		f(g.jobs[s].base)
	}
	for m := range g.machs {
		u(g.machs[m].id)
		f(g.machs[m].mult)
		b := uint64(0)
		if g.machs[m].alive {
			b = 1
		}
		if g.machs[m].departed {
			b |= 2
		}
		u(b)
	}
	for _, s := range g.pending {
		u(uint64(s))
	}
	for _, s := range g.free {
		u(uint64(s))
	}
	view := g.st.ScheduleView()
	for _, m := range view {
		u(uint64(m))
	}
	for m := 0; m <= g.cfg.MachCap; m++ {
		f(g.st.Completion(m))
	}
	f(g.st.Flowtime())
	return hex.EncodeToString(h.Sum(nil))
}

// PendingCount returns the number of jobs awaiting admission — the
// quantity the daemon's backpressure bound is enforced against.
func (g *Grid) PendingCount() int { return len(g.pending) }

// CheckInvariants verifies the grid's structural consistency: the id
// maps, the free/pending/placed slot partition, assignment ranges and
// the parking discipline. It is the health probe the daemon runs after
// a handler panic — a clean result means the panic unwound without
// half-applying a transition, so the daemon can keep serving; a
// violation means the state machine is corrupt and must be rebuilt from
// the WAL. It reads but never mutates.
func (g *Grid) CheckInvariants() error {
	p := g.park()
	free := make(map[int32]bool, len(g.free))
	for _, s := range g.free {
		if s < 0 || int(s) >= len(g.jobs) {
			return fmt.Errorf("daemon: free slot %d out of range", s)
		}
		if free[s] {
			return fmt.Errorf("daemon: slot %d on the free stack twice", s)
		}
		free[s] = true
	}
	pending := make(map[int32]bool, len(g.pending))
	for _, s := range g.pending {
		if s < 0 || int(s) >= len(g.jobs) {
			return fmt.Errorf("daemon: pending slot %d out of range", s)
		}
		if pending[s] {
			return fmt.Errorf("daemon: slot %d pending twice", s)
		}
		pending[s] = true
	}
	var occupied int
	for s := range g.jobs {
		js := &g.jobs[s]
		a := g.st.Assign(s)
		if a < 0 || a > p {
			return fmt.Errorf("daemon: slot %d assigned to machine %d outside [0, %d]", s, a, p)
		}
		switch js.state {
		case slotFree:
			if js.id != 0 {
				return fmt.Errorf("daemon: free slot %d carries job id %d", s, js.id)
			}
			if !free[int32(s)] {
				return fmt.Errorf("daemon: free slot %d missing from the free stack", s)
			}
			if a != p {
				return fmt.Errorf("daemon: free slot %d not parked (on machine %d)", s, a)
			}
		case slotPending:
			occupied++
			if js.id == 0 {
				return fmt.Errorf("daemon: pending slot %d without a job id", s)
			}
			if !pending[int32(s)] && a == p {
				return fmt.Errorf("daemon: parked pending slot %d missing from the pending queue", s)
			}
			if got, ok := g.byID[js.id]; !ok || got != int32(s) {
				return fmt.Errorf("daemon: job %d on slot %d not indexed (byID says %d, %v)", js.id, s, got, ok)
			}
		case slotPlaced:
			occupied++
			if js.id == 0 {
				return fmt.Errorf("daemon: placed slot %d without a job id", s)
			}
			if a == p {
				return fmt.Errorf("daemon: placed job %d parked", js.id)
			}
			if g.machs[a].id == 0 {
				return fmt.Errorf("daemon: job %d placed on never-used machine slot %d", js.id, a)
			}
			if got, ok := g.byID[js.id]; !ok || got != int32(s) {
				return fmt.Errorf("daemon: job %d on slot %d not indexed (byID says %d, %v)", js.id, s, got, ok)
			}
		default:
			return fmt.Errorf("daemon: slot %d in unknown state %d", s, js.state)
		}
	}
	if len(g.byID) != occupied {
		return fmt.Errorf("daemon: byID holds %d entries for %d occupied slots", len(g.byID), occupied)
	}
	for id, m := range g.machByID {
		if m < 0 || m >= len(g.machs) {
			return fmt.Errorf("daemon: machine %d indexed to slot %d out of range", id, m)
		}
		if g.machs[m].id != id || !g.machs[m].alive {
			return fmt.Errorf("daemon: machByID[%d]=%d disagrees with slot (id %d, alive %v)",
				id, m, g.machs[m].id, g.machs[m].alive)
		}
	}
	return nil
}

// LiveInstance extracts the current placed jobs and alive machines as a
// clean batch instance (no parking column, no capacity slack) plus the
// live assignment mapped onto it — the input a cold re-solve would see.
// Returns nil when no jobs are placed or no machine is alive.
func (g *Grid) LiveInstance() (*etc.Instance, schedule.Schedule) {
	var slots []int32
	for s := range g.jobs {
		if g.jobs[s].state == slotPlaced {
			slots = append(slots, int32(s))
		}
	}
	var machs []int
	machIdx := make([]int, len(g.machs))
	for m := range g.machs {
		machIdx[m] = -1
		if g.machs[m].alive {
			machIdx[m] = len(machs)
			machs = append(machs, m)
		}
	}
	if len(slots) == 0 || len(machs) == 0 {
		return nil, nil
	}
	in := etc.New(fmt.Sprintf("gridd-live-%d", g.counters.Admits), len(slots), len(machs))
	sched := make(schedule.Schedule, len(slots))
	for i, s := range slots {
		for k, m := range machs {
			in.Set(i, k, g.inst.At(int(s), m))
		}
		sched[i] = machIdx[g.st.Assign(int(s))]
	}
	in.Finalize()
	return in, sched
}
