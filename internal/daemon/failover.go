package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"gridcma/internal/eventlog"
	"gridcma/internal/rng"
	"gridcma/internal/transport"
)

// Script generates a deterministic, grid-acceptable event script: the
// stream the crash and failover tortures and the replication bench all
// drive their daemons with. Same (seed, machCap, n) → same events.
func Script(seed uint64, machCap, n int) []eventlog.Event {
	gen := newScriptGen(seed, machCap)
	events := make([]eventlog.Event, n)
	for i := range events {
		e := gen.next()
		if e.Type == eventlog.Admit {
			gen.used = len(gen.alive)
		}
		events[i] = e
	}
	return events
}

// FailoverTestConfig parameterises a failover-torture run.
type FailoverTestConfig struct {
	Grid Config `json:"grid"`
	// Seed drives the event scripts, the chaos schedule and every
	// harness decision; one seed reproduces one run exactly.
	Seed uint64 `json:"seed"`
	// Cases is the number of independent kill-and-promote scenarios
	// (0 = 8). Every third case bootstraps the follower via snapshot
	// (the primary starts from a snapshot-truncated WAL).
	Cases int `json:"cases"`
	// Events is the script length per case (0 = 300).
	Events int `json:"events"`
	// Faults is the chaos fault budget per case (0 = 12).
	Faults int `json:"faults"`
	// Dir is the scratch directory ("" = fresh temp dir, removed on
	// return).
	Dir string `json:"dir,omitempty"`
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any) `json:"-"`
}

// FailoverTestResult summarises a completed run.
type FailoverTestResult struct {
	Cases         int            `json:"cases"`
	Events        int            `json:"events_per_case"`
	Promotions    int            `json:"promotions"`
	SnapshotBoots int            `json:"snapshot_boots"`
	Fenced        int            `json:"fenced_rejections"`
	StaleTerm     int            `json:"stale_term_rejections"`
	StepErrors    int            `json:"step_errors"`
	Faults        map[string]int `json:"faults"`
	FinalDigest   string         `json:"final_digest"`
}

// chaosDialer manufactures fault-injecting clients over the primary's
// replication handler. The fault schedule is a pure function of its rng
// stream and the call sequence, so a seed reproduces the exact
// interleaving of drops, delays, duplicates, partitions and connection
// kills the follower survived (or didn't).
type chaosDialer struct {
	handler transport.Handler
	r       *rng.Source
	budget  int
	faults  map[string]int

	partition int // calls still inside a partition window
}

func (cd *chaosDialer) dial() (transport.Client, error) {
	return &chaosClient{cd: cd, inner: transport.NewLocal(cd.handler)}, nil
}

type chaosClient struct {
	cd    *chaosDialer
	inner transport.Client
}

func (c *chaosClient) Close() error { return c.inner.Close() }

func (c *chaosClient) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	cd := c.cd
	if cd.partition > 0 {
		cd.partition--
		return nil, errors.New("chaos: partitioned")
	}
	if cd.budget > 0 && cd.r.Bool(0.25) {
		cd.budget--
		switch cd.r.Intn(5) {
		case 0: // drop: the request never reaches the primary
			cd.faults["drop"]++
			return nil, errors.New("chaos: request dropped")
		case 1: // dup: the request is delivered twice (a retried frame);
			// the first response is lost, the second served. The primary's
			// cursor must tolerate re-pulling the same position.
			cd.faults["dup"]++
			if _, err := c.inner.Call(ctx, req); err != nil {
				return nil, err
			}
			return c.inner.Call(ctx, req)
		case 2: // delay: delivered late but delivered — in a synchronous
			// harness that is indistinguishable from on-time, so it only
			// counts; reordering effects are covered by dup + drop.
			cd.faults["delay"]++
			return c.inner.Call(ctx, req)
		case 3: // partition: this call and the next few all vanish
			cd.faults["partition"]++
			cd.partition = 2
			return nil, errors.New("chaos: partition opened")
		default: // kill: the connection dies mid-call; the next Step
			// must redial through the retry path.
			cd.faults["kill"]++
			c.inner.Close()
			return nil, errors.New("chaos: connection killed")
		}
	}
	return c.inner.Call(ctx, req)
}

// killableHandler lets the harness simulate the primary's death: once
// killed, every replication call fails at the "network".
type killableHandler struct {
	inner  transport.Handler
	killed atomic.Bool
}

func (k *killableHandler) Handle(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	if k.killed.Load() {
		return nil, errors.New("chaos: primary is dead")
	}
	return k.inner.Handle(ctx, req)
}

// FailoverTest is the replication torture: for each seeded case it
// builds a primary + follower pair connected through a fault-injecting
// transport, drives the primary with a deterministic script while the
// follower pulls through drops, delays, duplicated frames, partitions
// and killed connections, then kills the primary at a seeded point and
// promotes the follower. It asserts, per case:
//
//   - the follower's digest trajectory is bit-identical to the dead
//     primary's acked prefix (via both digest rings against a reference
//     grid replay of the same script);
//   - the follower's WAL is byte-for-byte a prefix of the primary's;
//   - promotion bumps the term, and the term survives on disk;
//   - the stale primary is fenced by the new term: its shipping path
//     rejects, and its own write path refuses (split-brain is dead);
//   - a stale-term pull against the promoted node is rejected;
//   - the promoted node, resuming the script where its replica stopped,
//     lands on exactly the reference digest — failover cost events that
//     were never shipped, never correctness.
//
// Every third case routes the follower through snapshot bootstrap (the
// primary's WAL starts past a snapshot, so log shipping alone cannot
// bring a blank follower up).
func FailoverTest(cfg FailoverTestConfig) (*FailoverTestResult, error) {
	if cfg.Cases <= 0 {
		cfg.Cases = 8
	}
	if cfg.Events <= 0 {
		cfg.Events = 300
	}
	if cfg.Faults <= 0 {
		cfg.Faults = 12
	}
	if cfg.Grid.MachCap == 0 {
		cfg.Grid = DefaultConfig()
		cfg.Grid.Seed = cfg.Seed
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "failovertest-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	res := &FailoverTestResult{
		Cases:  cfg.Cases,
		Events: cfg.Events,
		Faults: make(map[string]int),
	}
	for c := 0; c < cfg.Cases; c++ {
		if err := runFailoverCase(cfg, dir, c, res, logf); err != nil {
			return nil, fmt.Errorf("case %d (seed %d): %w", c, cfg.Seed, err)
		}
	}
	logf("failovertest: %d cases, %d promotions, %d snapshot boots, faults %v",
		res.Cases, res.Promotions, res.SnapshotBoots, res.Faults)
	return res, nil
}

func runFailoverCase(cfg FailoverTestConfig, dir string, c int, res *FailoverTestResult, logf func(string, ...any)) error {
	caseSeed := cfg.Seed + uint64(c)*1_000_003
	script := Script(caseSeed, cfg.Grid.MachCap, cfg.Events)
	caseDir := filepath.Join(dir, fmt.Sprintf("case-%d", c))
	if err := os.MkdirAll(caseDir, 0o755); err != nil {
		return err
	}

	// Reference trajectory: a plain grid replaying the script. The state
	// digest excludes wall-clock fields, so it is the yardstick both
	// daemons must match event for event.
	refDigest := make([]string, cfg.Events+1)
	ref, err := NewGrid(cfg.Grid)
	if err != nil {
		return err
	}
	for i, e := range script {
		e.Seq = uint64(i + 1)
		if err := ref.Apply(e); err != nil {
			return fmt.Errorf("reference apply %d: %w", i, err)
		}
		refDigest[i+1] = ref.Digest()
	}

	// Primary. Every third case it is born from a snapshot taken part
	// way into the script, so its WAL cannot serve a blank follower and
	// the bootstrap path must carry it.
	snapCase := c%3 == 2
	bootSeq := 0
	var pg *Grid
	if snapCase {
		bootSeq = cfg.Events / 4
		g, err := NewGrid(cfg.Grid)
		if err != nil {
			return err
		}
		for i := 0; i < bootSeq; i++ {
			e := script[i]
			e.Seq = uint64(i + 1)
			if err := g.Apply(e); err != nil {
				return err
			}
		}
		pg, err = Restore(g.Snapshot())
		if err != nil {
			return err
		}
	} else {
		pg, err = NewGrid(cfg.Grid)
		if err != nil {
			return err
		}
	}
	primary, err := NewDaemonWith(pg, ServerConfig{Grid: cfg.Grid, LogPath: filepath.Join(caseDir, "primary.log")})
	if err != nil {
		return err
	}
	defer primary.Stop()
	replSrv, err := NewReplServer(primary, ReplConfig{Batch: 32, Ring: cfg.Events + 16})
	if err != nil {
		return err
	}
	defer replSrv.Close()
	wire := &killableHandler{inner: replSrv}

	// Follower, pulling through chaos.
	follower, err := NewDaemon(ServerConfig{Grid: cfg.Grid, LogPath: filepath.Join(caseDir, "follower.log")})
	if err != nil {
		return err
	}
	defer follower.Stop()
	follower.EnableReplication(cfg.Events + 16)
	dialer := &chaosDialer{
		handler: wire,
		r:       rng.New(caseSeed ^ 0xc4a05),
		budget:  cfg.Faults,
		faults:  res.Faults,
	}
	repl, err := NewReplicator(follower, ReplicatorConfig{
		ID:    fmt.Sprintf("case-%d", c),
		Dial:  dialer.dial,
		Batch: 24,
	})
	if err != nil {
		return err
	}
	defer repl.Stop()

	// Drive: apply the script to the primary, interleaving 0–2 follower
	// pull rounds after each event, all sequenced by the harness rng —
	// no goroutines, no timers, one deterministic interleaving per seed.
	hr := rng.New(caseSeed ^ 0xfa110)
	kill := bootSeq + (cfg.Events-bootSeq)/2 + hr.Intn((cfg.Events-bootSeq)/4+1)
	ctx := context.Background()
	for i := bootSeq; i < kill; i++ {
		if _, err := primary.ApplyEvent(script[i]); err != nil {
			return fmt.Errorf("primary apply %d: %w", i, err)
		}
		for s := hr.Intn(3); s > 0; s-- {
			if _, err := repl.Step(ctx); err != nil {
				if errors.Is(err, ErrDiverged) {
					return err
				}
				res.StepErrors++ // chaos casualties are expected; divergence is not
			}
		}
	}

	// The primary dies mid-stream.
	wire.killed.Store(true)
	if _, err := repl.Step(ctx); err == nil {
		return errors.New("pull from a dead primary succeeded")
	} else {
		res.StepErrors++
	}

	// Promote whatever the follower managed to replicate. F is the acked
	// prefix the new primary owns; events F..kill died with the old one —
	// async replication loses tail, never integrity.
	f := follower.AppliedSeq()
	newTerm, err := repl.Promote()
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if newTerm != 2 {
		return fmt.Errorf("promoted to term %d, want 2", newTerm)
	}
	if follower.Role() != "primary" {
		return fmt.Errorf("promoted node reports role %q", follower.Role())
	}
	res.Promotions++
	if snapCase {
		if repl.Stats().Snapshots == 0 {
			return errors.New("snapshot case never bootstrapped via snapshot")
		}
		res.SnapshotBoots++
	}
	if uint64(bootSeq) > f {
		return fmt.Errorf("follower applied %d, below its own bootstrap point %d", f, bootSeq)
	}
	// The follower's trajectory starts at its own bootstrap point, which
	// can sit past the primary's (the bootstrap snapshot is whatever the
	// primary had applied when the gap was detected).
	fFrom := uint64(bootSeq) + 1
	if b := repl.BootstrapSeq(); b > 0 {
		fFrom = b + 1
	}

	// Digest trajectories: both rings must match the reference bit for
	// bit over every sequence they claim.
	checkRing := func(who string, d *Daemon, from, to uint64) error {
		for seq := from; seq <= to; seq++ {
			dig, ok := d.DigestAt(seq)
			if !ok {
				return fmt.Errorf("%s digest ring lost seq %d", who, seq)
			}
			if dig != refDigest[seq] {
				return fmt.Errorf("%s diverged at seq %d: %s != reference %s", who, seq, dig, refDigest[seq])
			}
		}
		return nil
	}
	if err := checkRing("primary", primary, uint64(bootSeq)+1, uint64(kill)); err != nil {
		return err
	}
	if err := checkRing("follower", follower, fFrom, f); err != nil {
		return err
	}

	// WAL bytes: the replica's log must be a byte-for-byte prefix of the
	// dead primary's — same events, same timestamps, same checksums.
	if err := primary.FlushWAL(); err != nil {
		return err
	}
	if err := follower.FlushWAL(); err != nil {
		return err
	}
	pWAL, err := os.ReadFile(filepath.Join(caseDir, "primary.log"))
	if err != nil {
		return err
	}
	fWAL, err := os.ReadFile(filepath.Join(caseDir, "follower.log"))
	if err != nil {
		return err
	}
	if snapCase {
		// A bootstrapped follower's log starts mid-stream: its bytes must
		// appear contiguously inside the primary's log.
		if len(fWAL) > 0 && !bytes.Contains(pWAL, fWAL) {
			return fmt.Errorf("bootstrapped follower WAL (%d bytes) not a contiguous run of the primary's (%d bytes)",
				len(fWAL), len(pWAL))
		}
	} else if !bytes.HasPrefix(pWAL, fWAL) {
		return fmt.Errorf("follower WAL (%d bytes) is not a prefix of the primary's (%d bytes)", len(fWAL), len(pWAL))
	}

	// Split-brain fencing, both directions. The old primary wakes up:
	// the first replication request carrying the new term fences it, and
	// its own write path goes read-only.
	wire.killed.Store(false)
	stale, err := NewDaemon(ServerConfig{Grid: cfg.Grid, LogPath: filepath.Join(caseDir, "stale-probe.log")})
	if err != nil {
		return err
	}
	defer stale.Stop()
	staleRepl, err := NewReplicator(stale, ReplicatorConfig{
		ID:   fmt.Sprintf("case-%d-probe", c),
		Dial: func() (transport.Client, error) { return transport.NewLocal(replSrv), nil },
	})
	if err != nil {
		return err
	}
	defer staleRepl.Stop()
	if err := stale.adoptTerm(newTerm); err != nil {
		return err
	}
	if _, err := staleRepl.Step(ctx); err == nil {
		return errors.New("old primary shipped events to a newer-term follower")
	}
	if !primary.Fenced() {
		return errors.New("old primary not fenced after seeing the new term")
	}
	res.Fenced++
	if _, err := primary.ApplyEvent(script[kill]); err == nil {
		return errors.New("fenced primary accepted a write (split brain)")
	}

	// And the promoted node refuses a stale-term pull.
	promotedSrv, err := NewReplServer(follower, ReplConfig{})
	if err != nil {
		return err
	}
	defer promotedSrv.Close()
	staleBatch, err := promotedSrv.pull(&ReplPull{ID: "stale", Term: 1, After: 0})
	if err != nil {
		return err
	}
	if staleBatch.Reject != RejectStaleTerm {
		return fmt.Errorf("stale-term pull got reject %q, want %q", staleBatch.Reject, RejectStaleTerm)
	}
	res.StaleTerm++

	// The promoted primary resumes the script from its replicated
	// position and must land on the reference trajectory exactly.
	for i := int(f); i < cfg.Events; i++ {
		if _, err := follower.ApplyEvent(script[i]); err != nil {
			return fmt.Errorf("promoted apply %d: %w", i, err)
		}
		if dig := follower.GridDigest(); dig != refDigest[i+1] {
			return fmt.Errorf("promoted node diverged at seq %d after failover", i+1)
		}
	}
	res.FinalDigest = follower.GridDigest()
	if res.FinalDigest != refDigest[cfg.Events] {
		return errors.New("final digest differs from reference")
	}

	// The bumped term survives on disk: a restarted promoted node must
	// not fall back to a fenced term.
	t, err := loadTerm(filepath.Join(caseDir, "follower.log.term"))
	if err != nil {
		return err
	}
	if t != newTerm {
		return fmt.Errorf("persisted term %d, want %d", t, newTerm)
	}
	logf("failovertest: case %d ok: killed at %d, promoted at %d (term %d)", c, kill, f, newTerm)
	return nil
}
