package daemon

import (
	"bytes"
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/eventlog"
	"gridcma/internal/gridsim"
	"gridcma/internal/heuristics"
	"gridcma/internal/schedule"
)

// simTrace runs one churny simulation with the Record hook installed and
// returns the exported gridd event stream.
func simTrace(t *testing.T, seed uint64) []eventlog.Event {
	t.Helper()
	cfg := gridsim.DefaultConfig()
	cfg.Horizon = 300
	cfg.InitialMachines = 8
	cfg.ArrivalRate = 0.8
	cfg.JoinRate = 0.01
	cfg.LeaveRate = 0.01
	cfg.Seed = seed
	var events []eventlog.Event
	cfg.Record = func(e eventlog.Event) { events = append(events, e) }
	policy := gridsim.PolicyFunc{
		PolicyName: "mct",
		Fn: func(in *etc.Instance, _ uint64) schedule.Schedule {
			return heuristics.MCT(in)
		},
	}
	m, err := gridsim.Simulate(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsArrived == 0 || m.JobsCompleted == 0 || m.Activations == 0 {
		t.Fatalf("degenerate simulation: %+v", m)
	}
	if len(events) == 0 {
		t.Fatal("Record hook never fired")
	}
	return events
}

// TestSimTraceReplaysThroughGrid is the gridsim→gridd round trip: the
// simulator's exported event stream must be a valid sequential gridd
// stream — every event accepted by a daemon Grid — and identical whether
// applied directly or serialised through the event-log writer and reader
// first.
func TestSimTraceReplaysThroughGrid(t *testing.T) {
	events := simTrace(t, 11)

	gcfg := DefaultConfig()
	gcfg.MachCap = 32 // initial fleet + churn joins
	gcfg.JobCap = 64
	gcfg.LSIters = 2
	direct, err := NewGrid(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i, e := range events {
		if err := direct.Apply(e); err != nil {
			t.Fatalf("event %d (%+v) rejected: %v", i, e, err)
		}
		counts[string(e.Type)]++
	}
	if counts["submit"] == 0 || counts["complete"] == 0 || counts["admit"] == 0 || counts["fail"] == 0 {
		t.Fatalf("trace lacks event diversity: %v", counts)
	}

	// Serialise through the wire format and replay into a second grid.
	var buf bytes.Buffer
	w := eventlog.NewWriter(&buf)
	for _, e := range events {
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := eventlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("wire round trip lost events: %d != %d", len(decoded), len(events))
	}
	wire, err := NewGrid(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range decoded {
		if err := wire.Apply(e); err != nil {
			t.Fatalf("decoded event %d rejected: %v", i, err)
		}
	}
	if dd, wd := direct.Digest(), wire.Digest(); dd != wd {
		t.Fatalf("direct and wire-replayed grids diverge:\n%s\n%s", dd, wd)
	}
}

// TestSimTraceDeterministic pins the Record stream itself: two identical
// simulations emit byte-identical event streams.
func TestSimTraceDeterministic(t *testing.T) {
	a := simTrace(t, 7)
	b := simTrace(t, 7)
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
