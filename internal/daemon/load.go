package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gridcma/internal/etc"
	"gridcma/internal/eventlog"
	"gridcma/internal/heuristics"
	"gridcma/internal/retry"
	"gridcma/internal/rng"
	"gridcma/internal/schedule"
)

// ColdCheck compares the live warm-started schedule against a cold
// re-solve of the same job/machine set: extract a clean instance, seed
// with MCT, improve with the daemon's own method run to its local
// optimum. WallMs is the full cold cost — matrix extraction, seeding,
// state construction and converged search — i.e. what a scheduler
// without the warm-start path would pay to reschedule the grid from
// scratch at an admission. The asymmetric budget is the point of the
// comparison: a re-solve that stops after a handful of swaps is not a
// re-solve, while the warm path is always near its local optimum and
// absorbs each admission delta with a constant-bounded touch-up — the
// convergence cost was amortised across every earlier window.
type ColdCheck struct {
	Jobs         int     `json:"jobs"`
	Machines     int     `json:"machines"`
	Iters        int     `json:"iters"` // convergence cap handed to the search
	WallMs       float64 `json:"wall_ms"`
	ColdMakespan float64 `json:"cold_makespan"`
	ColdFlowtime float64 `json:"cold_flowtime"`
	WarmMakespan float64 `json:"warm_makespan"`
	WarmFlowtime float64 `json:"warm_flowtime"`
}

// ColdResolve runs the cold baseline against the current live set. The
// grid is read, never mutated. Returns false when there is nothing to
// solve (no live jobs or no alive machines).
func (g *Grid) ColdResolve() (ColdCheck, bool) {
	t0 := time.Now()
	in, _ := g.LiveInstance()
	if in == nil {
		return ColdCheck{}, false
	}
	st := schedule.NewState(in, heuristics.MCT(in))
	// One swap per live job caps the convergence run; LMCTS (and every
	// descent method here) stops on its own at the first iteration with
	// no improving candidate, so the cap only bites on pathological
	// plateaus.
	iters := in.Jobs
	if iters < g.cfg.LSIters {
		iters = g.cfg.LSIters
	}
	if g.cfg.LSIters > 0 {
		r := rng.New(g.cfg.Seed ^ 0xc01dca11 ^ g.counters.Admits)
		g.ls.Improve(st, g.obj, iters, r)
	} else {
		iters = 0
	}
	st.SyncScans()
	wall := time.Since(t0)
	wmk, wfl := g.Quality()
	return ColdCheck{
		Jobs:         in.Jobs,
		Machines:     in.Machs,
		Iters:        iters,
		WallMs:       wall.Seconds() * 1e3,
		ColdMakespan: st.Makespan(),
		ColdFlowtime: st.Flowtime(),
		WarmMakespan: wmk,
		WarmFlowtime: wfl,
	}, true
}

// LoadConfig parameterises the synthetic load harness: a client that
// drives a running daemon over its real HTTP API with a deterministic
// open-loop workload, keeping roughly LiveTarget jobs in flight.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8437".
	BaseURL string `json:"base_url"`
	// Jobs is the total number of submissions to replay.
	Jobs int `json:"jobs"`
	// Machines joined before the load starts.
	Machines int `json:"machines"`
	// LiveTarget is the steady-state number of in-flight jobs; the oldest
	// jobs beyond it are completed in batches.
	LiveTarget int `json:"live_target"`
	// Batch is the submission batch size per HTTP request.
	Batch int `json:"batch"`
	// ColdEvery samples a cold re-solve comparison every N batches
	// (0 disables).
	ColdEvery int `json:"cold_every"`
	// Seed drives the workload generator (job bases, machine speeds).
	Seed uint64 `json:"seed"`
	// TaskRange and MachRange bound the generated bases and multipliers.
	TaskRange int `json:"task_range"`
	MachRange int `json:"mach_range"`
	// CVB selects the frontier generator's gamma task-base model instead
	// of small uniform integers: "hi" or "lo" (CV 0.6 / 0.1 around mean
	// etc.GenTaskMean). Empty keeps the legacy uniform workload; the CVB
	// stream is seeded independently, so enabling it does not perturb the
	// machine-speed draws.
	CVB string `json:"cvb,omitempty"`
	// FailEvery triggers a machine-failure storm every N batches: one
	// random alive machine fails mid-load and a replacement joins (when
	// the grid has slot headroom; otherwise the fleet stays shrunk until
	// the next admission recycles the slot). 0 disables storms.
	FailEvery int `json:"fail_every,omitempty"`
}

// LoadRow is one benchmark artifact row: scale, throughput, placement
// latency and the warm-vs-cold comparison.
type LoadRow struct {
	Jobs       int `json:"jobs"`
	Machines   int `json:"machines"`
	LiveTarget int `json:"live_target"`
	Window     int `json:"window"`
	// Workload names the task-base model: "uniform" or "cvb-hi"/"cvb-lo".
	Workload string `json:"workload"`

	ElapsedS     float64 `json:"elapsed_s"`
	ThroughputPS float64 `json:"throughput_jobs_per_s"`
	Admits       uint64  `json:"admits"`
	Placed       uint64  `json:"placed"`

	LatP50Ms  float64 `json:"latency_p50_ms"`
	LatP99Ms  float64 `json:"latency_p99_ms"`
	LatMeanMs float64 `json:"latency_mean_ms"`

	WarmAdmitP50Ms  float64 `json:"warm_admit_p50_ms"`
	WarmAdmitP99Ms  float64 `json:"warm_admit_p99_ms"`
	WarmAdmitMeanMs float64 `json:"warm_admit_mean_ms"`

	// Fsync is the daemon's WAL durability policy during the run.
	Fsync string `json:"fsync,omitempty"`
	// Storms counts machine-failure storms injected by the harness;
	// Rejected429 counts submissions the daemon pushed back on (each was
	// retried after the advertised Retry-After).
	Storms      int    `json:"storms,omitempty"`
	Rejected429 uint64 `json:"rejected_429,omitempty"`

	ColdSamples    int     `json:"cold_samples"`
	ColdMeanMs     float64 `json:"cold_mean_ms"`
	WarmSpeedup    float64 `json:"warm_speedup"`
	WarmMakespan   float64 `json:"warm_makespan"`
	ColdMakespan   float64 `json:"cold_makespan"`
	MakespanRatio  float64 `json:"makespan_warm_over_cold"`
	WarmFlowtime   float64 `json:"warm_flowtime"`
	ColdFlowtime   float64 `json:"cold_flowtime"`
	FlowtimeRatio  float64 `json:"flowtime_warm_over_cold"`
	FinalSnapshotB int     `json:"final_snapshot_bytes"`
}

// LoadReport is the BENCH_gridd.json document.
type LoadReport struct {
	Name      string    `json:"name"`
	Generated string    `json:"generated"`
	GoArch    string    `json:"goarch,omitempty"`
	Rows      []LoadRow `json:"rows"`
}

// loadClient is a thin JSON client over the daemon API.
type loadClient struct {
	base   string
	c      *http.Client
	rej429 uint64
}

// errBackpressure tags a 429 so the retry policy keeps waiting it out.
var errBackpressure = errors.New("daemon: backpressure (429)")

// post sends one JSON request, honouring backpressure through the shared
// retry policy (internal/retry, the same stack the distributed island
// transport rides): a 429 is waited out — the advertised Retry-After,
// capped by Policy.Max so the harness keeps pace with short admission
// windows, 100ms when the server names no delay — and retried without
// bound; every other failure is permanent. The well-behaved-client half
// of the bounded-queue contract.
func (lc *loadClient) post(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	p := retry.Policy{
		MaxAttempts: -1, // backpressure can outlast any fixed budget
		Initial:     100 * time.Millisecond,
		Max:         250 * time.Millisecond,
		Jitter:      -1, // keep the harness's pacing deterministic
	}
	return p.Do(context.Background(), func(int) error {
		resp, err := lc.c.Post(lc.base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return retry.Permanent(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			lc.rej429++
			wait, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After"))
			if !ok || wait <= 0 {
				wait = 100 * time.Millisecond
			}
			return retry.After(errBackpressure, wait)
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			return retry.Permanent(fmt.Errorf("POST %s: %s (%s)", path, resp.Status, e.Error))
		}
		if out == nil {
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		return retry.Permanent(err)
	})
}

func (lc *loadClient) get(path string, out any) error {
	resp, err := lc.c.Get(lc.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RunLoad drives the daemon at cfg.BaseURL: joins machines, streams
// cfg.Jobs submissions in batches while completing the oldest jobs
// beyond the live target, samples cold re-solves along the way, and
// summarises the run as one benchmark row. window is the daemon's
// AdmitPending setting, recorded in the row for context.
func RunLoad(cfg LoadConfig, window int, progress func(done int)) (*LoadRow, error) {
	if cfg.Batch <= 0 {
		cfg.Batch = 512
	}
	if cfg.TaskRange <= 0 {
		cfg.TaskRange = 8
	}
	if cfg.MachRange <= 0 {
		cfg.MachRange = 3
	}
	// The CVB base stream is drawn from its own seed offset so that
	// switching workloads leaves the legacy draws (machine multipliers)
	// bit-identical.
	var cvbBase func() float64
	switch cfg.CVB {
	case "":
	case "hi":
		cvbBase = etc.BaseStream(cfg.Seed^0xcbb5eed, etc.High)
	case "lo":
		cvbBase = etc.BaseStream(cfg.Seed^0xcbb5eed, etc.Low)
	default:
		return nil, fmt.Errorf("daemon: load cvb %q: want \"hi\", \"lo\" or empty", cfg.CVB)
	}
	lc := &loadClient{base: cfg.BaseURL, c: &http.Client{Timeout: 5 * time.Minute}}
	r := rng.New(cfg.Seed)

	// Machines join first, as one batch of events; the applied events
	// carry the assigned ids, which the storm injector draws victims from.
	joins := make([]map[string]any, cfg.Machines)
	for i := range joins {
		joins[i] = map[string]any{"type": "join", "mult": float64(1 + r.Intn(cfg.MachRange))}
	}
	var joined []eventlog.Event
	if err := lc.post("/event", joins, &joined); err != nil {
		return nil, err
	}
	alive := make([]uint64, 0, len(joined))
	for _, e := range joined {
		alive = append(alive, e.Mach)
	}

	t0 := time.Now()
	var oldest uint64 = 1 // next job id to complete
	var submitted int
	coldWall := 0.0
	coldN := 0
	batchNo := 0
	storms := 0
	for submitted < cfg.Jobs {
		n := cfg.Batch
		if rem := cfg.Jobs - submitted; rem < n {
			n = rem
		}
		bases := make([]float64, n)
		if cvbBase != nil {
			for i := range bases {
				bases[i] = cvbBase()
			}
		} else {
			for i := range bases {
				bases[i] = float64(1 + r.Intn(cfg.TaskRange))
			}
		}
		var sr SubmitResponse
		if err := lc.post("/submit", SubmitRequest{Bases: bases}, &sr); err != nil {
			return nil, err
		}
		submitted += n
		batchNo++

		// Trim the live set back to target: complete the oldest jobs.
		live := uint64(submitted) - (oldest - 1)
		if over := int(live) - cfg.LiveTarget; over > 0 {
			completes := make([]map[string]any, over)
			for i := 0; i < over; i++ {
				completes[i] = map[string]any{"type": "complete", "job": oldest}
				oldest++
			}
			if err := lc.post("/event", completes, nil); err != nil {
				return nil, err
			}
		}

		// Machine-failure storm: one random alive machine fails, a
		// replacement joins. A join refusal (no slot headroom until the
		// next admission recycles the departed slot) shrinks the fleet —
		// degraded capacity is part of what the storm exercises.
		if cfg.FailEvery > 0 && batchNo%cfg.FailEvery == 0 && len(alive) > 1 {
			k := r.Intn(len(alive))
			victim := alive[k]
			if err := lc.post("/event",
				[]map[string]any{{"type": "fail", "mach": victim}}, nil); err != nil {
				return nil, err
			}
			alive = append(alive[:k], alive[k+1:]...)
			var rj []eventlog.Event
			if err := lc.post("/event", []map[string]any{
				{"type": "join", "mult": float64(1 + r.Intn(cfg.MachRange))},
			}, &rj); err == nil && len(rj) == 1 {
				alive = append(alive, rj[0].Mach)
			}
			storms++
		}

		if cfg.ColdEvery > 0 && batchNo%cfg.ColdEvery == 0 {
			var cc ColdCheck
			if err := lc.get("/coldcheck", &cc); err == nil && cc.Jobs > 0 {
				coldWall += cc.WallMs
				coldN++
			}
		}
		if progress != nil {
			progress(submitted)
		}
	}
	// Drain: close the final window so every submission is placed.
	if err := lc.post("/admit", struct{}{}, nil); err != nil {
		return nil, err
	}
	elapsed := time.Since(t0).Seconds()

	var final ColdCheck
	if err := lc.get("/coldcheck", &final); err != nil {
		return nil, err
	}
	var stats Stats
	if err := lc.get("/stats", &stats); err != nil {
		return nil, err
	}
	snapResp, err := lc.c.Get(cfg.BaseURL + "/snapshot")
	if err != nil {
		return nil, err
	}
	var snapBuf bytes.Buffer
	if _, err := snapBuf.ReadFrom(snapResp.Body); err != nil {
		return nil, err
	}
	snapResp.Body.Close()

	workload := "uniform"
	if cfg.CVB != "" {
		workload = "cvb-" + cfg.CVB
	}
	row := &LoadRow{
		Jobs:            cfg.Jobs,
		Machines:        cfg.Machines,
		LiveTarget:      cfg.LiveTarget,
		Window:          window,
		Workload:        workload,
		ElapsedS:        elapsed,
		ThroughputPS:    float64(cfg.Jobs) / elapsed,
		Admits:          stats.Counters.Admits,
		Placed:          stats.Counters.Placed,
		LatP50Ms:        stats.Latency.P50Ms,
		LatP99Ms:        stats.Latency.P99Ms,
		LatMeanMs:       stats.Latency.MeanMs,
		WarmAdmitP50Ms:  stats.AdmitWall.P50Ms,
		WarmAdmitP99Ms:  stats.AdmitWall.P99Ms,
		WarmAdmitMeanMs: stats.AdmitWall.MeanMs,
		Fsync:           stats.Fsync,
		Storms:          storms,
		Rejected429:     lc.rej429,
		ColdSamples:     coldN,
		WarmMakespan:    final.WarmMakespan,
		ColdMakespan:    final.ColdMakespan,
		WarmFlowtime:    final.WarmFlowtime,
		ColdFlowtime:    final.ColdFlowtime,
		FinalSnapshotB:  snapBuf.Len(),
	}
	if coldN > 0 {
		row.ColdMeanMs = coldWall / float64(coldN)
		if stats.AdmitWall.MeanMs > 0 {
			row.WarmSpeedup = row.ColdMeanMs / stats.AdmitWall.MeanMs
		}
	}
	if final.ColdMakespan > 0 {
		row.MakespanRatio = final.WarmMakespan / final.ColdMakespan
	}
	if final.ColdFlowtime > 0 {
		row.FlowtimeRatio = final.WarmFlowtime / final.ColdFlowtime
	}
	return row, nil
}
