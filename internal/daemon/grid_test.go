package daemon

import (
	"math"
	"testing"

	"gridcma/internal/eventlog"
	"gridcma/internal/schedule"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MachCap = 8
	cfg.JobCap = 32
	cfg.LSIters = 3
	return cfg
}

// driver is the tests' name for the deterministic event generator the
// crash-torture harness owns (crashtest.go).
type driver = scriptGen

func newDriver(seed uint64, machCap int) *driver {
	return newScriptGen(seed, machCap)
}

// admitEvent returns an admission window close.
func admitEvent() eventlog.Event { return eventlog.Event{Type: eventlog.Admit} }

// drive applies n generated events (plus a trailing admit) and returns
// the full stream for replay.
func drive(t *testing.T, g *Grid, seed uint64, n int) []eventlog.Event {
	t.Helper()
	d := newDriver(seed, len(g.machs))
	var out []eventlog.Event
	for i := 0; i < n; i++ {
		e := d.next()
		if err := g.Apply(e); err != nil {
			t.Fatalf("event %d (%+v): %v", i, e, err)
		}
		out = append(out, e)
		// Mirror the admit's departed-slot recycling: slots free up once
		// the admission window has drained them.
		if e.Type == eventlog.Admit {
			d.used = len(d.alive)
		}
	}
	e := admitEvent()
	if err := g.Apply(e); err != nil {
		t.Fatalf("trailing admit: %v", err)
	}
	return append(out, e)
}

func TestGridLifecycle(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	apply := func(e eventlog.Event) {
		t.Helper()
		if err := g.Apply(e); err != nil {
			t.Fatalf("apply %+v: %v", e, err)
		}
	}
	apply(eventlog.Event{Type: eventlog.Join, Mach: 1, Mult: 1})
	apply(eventlog.Event{Type: eventlog.Join, Mach: 2, Mult: 2})
	for j := uint64(1); j <= 6; j++ {
		apply(eventlog.Event{Type: eventlog.Submit, Job: j, Base: float64(j)})
	}
	if _, pending, _ := g.Live(); pending != 6 {
		t.Fatalf("pending %d before admit, want 6", pending)
	}
	apply(admitEvent())
	placed, pending, machines := g.Live()
	if placed != 6 || pending != 0 || machines != 2 {
		t.Fatalf("after admit: placed %d pending %d machines %d", placed, pending, machines)
	}
	if got := len(g.LastPlacements()); got != 6 {
		t.Fatalf("LastPlacements %d, want 6", got)
	}
	for _, p := range g.LastPlacements() {
		if info := g.Job(p.Job); info.State != "placed" || info.Mach != p.Mach {
			t.Fatalf("job %d: info %+v, placement %+v", p.Job, info, p)
		}
	}
	mk, fl := g.Quality()
	if mk <= 0 || fl <= 0 || mk >= blockETC/2 || fl >= blockETC/2 {
		t.Fatalf("quality makespan=%v flowtime=%v out of range", mk, fl)
	}

	apply(eventlog.Event{Type: eventlog.Complete, Job: 3})
	if info := g.Job(3); info.State != "done" {
		t.Fatalf("job 3 state %q after complete, want done", info.State)
	}
	if placed, _, _ := g.Live(); placed != 5 {
		t.Fatalf("placed %d after complete, want 5", placed)
	}

	// A failing machine re-pools its jobs at the next admit.
	apply(eventlog.Event{Type: eventlog.Fail, Mach: 2})
	apply(admitEvent())
	placed, pending, machines = g.Live()
	if placed != 5 || pending != 0 || machines != 1 {
		t.Fatalf("after fail+admit: placed %d pending %d machines %d", placed, pending, machines)
	}
	for j := uint64(1); j <= 6; j++ {
		if j == 3 {
			continue
		}
		if info := g.Job(j); info.State != "placed" || info.Mach != 1 {
			t.Fatalf("job %d: %+v, want placed on machine 1", j, info)
		}
	}
	if g.Counters().Restarts == 0 {
		t.Fatal("fail with jobs did not count restarts")
	}
}

func TestGridRejectsInvalidEvents(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []eventlog.Event{
		{Type: eventlog.Submit, Job: 2, Base: 1}, // id gap
		{Type: eventlog.Join, Mach: 5, Mult: 1},  // id gap
		{Type: eventlog.Leave, Mach: 1},          // not alive
		{Type: eventlog.Complete, Job: 1},        // unknown job
		{Type: eventlog.Admit, Seq: 7},           // wrong sequence
	}
	for _, e := range bad {
		if err := g.Apply(e); err == nil {
			t.Errorf("Apply(%+v) accepted an invalid event", e)
		}
	}
	if g.Applied() != 0 {
		t.Fatalf("rejected events advanced the sequence to %d", g.Applied())
	}
	// Machine capacity exhaustion is an error, not a panic.
	for m := uint64(1); m <= uint64(g.cfg.MachCap); m++ {
		if err := g.Apply(eventlog.Event{Type: eventlog.Join, Mach: m, Mult: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Apply(eventlog.Event{Type: eventlog.Join, Mach: uint64(g.cfg.MachCap) + 1, Mult: 1}); err == nil {
		t.Fatal("join beyond machine capacity accepted")
	}
}

// TestGridDigestTrajectoryDeterministic is the replay core: two grids fed
// the same event stream report identical digests after every event.
func TestGridDigestTrajectoryDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := drive(t, a, 101, 400)

	b, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trajB []string
	for _, e := range events {
		if err := b.Apply(e); err != nil {
			t.Fatalf("replay b %+v: %v", e, err)
		}
		trajB = append(trajB, b.Digest())
	}
	for i, e := range events {
		if err := c.Apply(e); err != nil {
			t.Fatalf("replay c %+v: %v", e, err)
		}
		if d := c.Digest(); d != trajB[i] {
			t.Fatalf("digest diverged at event %d (%+v)", i, e)
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatal("live grid digest differs from its own replay")
	}
}

// TestGridQualityMatchesCleanExtraction pins the parking-column design:
// the live capacity state's quality over real machines is bit-identical
// to a clean instance holding only the live jobs and alive machines —
// parked slots, dead columns and the parking machine leave no residue.
func TestGridQualityMatchesCleanExtraction(t *testing.T) {
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drive(t, g, 7, 300)
	in, sched := g.LiveInstance()
	if in == nil {
		t.Skip("driver left no live jobs")
	}
	clean := schedule.NewState(in, sched)
	mk, fl := g.Quality()
	if math.Float64bits(mk) != math.Float64bits(clean.Makespan()) {
		t.Fatalf("makespan differs: live %v, clean %v", mk, clean.Makespan())
	}
	if math.Float64bits(fl) != math.Float64bits(clean.Flowtime()) {
		t.Fatalf("flowtime differs: live %v, clean %v", fl, clean.Flowtime())
	}
}

// TestGridAdmissionCyclesLeakFree runs the full admission loop under the
// dirty-set audit gauge: every Apply returns with the event log drained,
// so the daemon can never hand a stale scan cache to the next query.
func TestGridAdmissionCyclesLeakFree(t *testing.T) {
	schedule.DirtyAuditStart()
	defer schedule.DirtyAuditStop()
	g, err := NewGrid(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(77, g.cfg.MachCap)
	for i := 0; i < 500; i++ {
		e := d.next()
		if err := g.Apply(e); err != nil {
			t.Fatalf("event %d (%+v): %v", i, e, err)
		}
		if e.Type == eventlog.Admit {
			d.used = len(d.alive)
		}
		if n := schedule.DirtyAuditPending(); n != 0 {
			t.Fatalf("event %d (%s): %d dirty marks leaked past Apply", i, e.Type, n)
		}
	}
}

// TestGridSlotReuseAndGrowth floods the grid past its job capacity,
// completes everything, floods again — exercising doubling growth and
// slot recycling — and checks the replay digest still matches.
func TestGridSlotReuseAndGrowth(t *testing.T) {
	cfg := testConfig()
	cfg.JobCap = 8
	g, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []eventlog.Event
	apply := func(e eventlog.Event) {
		t.Helper()
		if err := g.Apply(e); err != nil {
			t.Fatalf("apply %+v: %v", e, err)
		}
		events = append(events, e)
	}
	apply(eventlog.Event{Type: eventlog.Join, Mach: 1, Mult: 1})
	apply(eventlog.Event{Type: eventlog.Join, Mach: 2, Mult: 1})
	next := uint64(0)
	for round := 0; round < 3; round++ {
		first := next + 1
		for k := 0; k < 20; k++ {
			next++
			apply(eventlog.Event{Type: eventlog.Submit, Job: next, Base: 2})
		}
		apply(admitEvent())
		for j := first; j <= next; j++ {
			apply(eventlog.Event{Type: eventlog.Complete, Job: j})
		}
	}
	if g.Counters().Grows == 0 {
		t.Fatal("20 live jobs never grew an 8-slot grid")
	}
	if placed, pending, _ := g.Live(); placed != 0 || pending != 0 {
		t.Fatalf("placed %d pending %d after completing everything", placed, pending)
	}
	r, err := NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := r.Apply(e); err != nil {
			t.Fatalf("replay %+v: %v", e, err)
		}
	}
	if g.Digest() != r.Digest() {
		t.Fatal("growth/reuse trajectory does not replay to the same digest")
	}
}
