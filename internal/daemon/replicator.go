package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridcma/internal/eventlog"
	"gridcma/internal/retry"
	"gridcma/internal/transport"
)

// ErrDiverged is the replication tripwire: the follower applied the
// same event prefix as the primary and computed a different state
// digest. That is not lag — it is a broken determinism contract (or a
// corrupted ship), and the only safe move is to stop replicating and
// flag the node degraded rather than let two "replicas" drift apart.
var ErrDiverged = errors.New("daemon: replica diverged from primary (digest mismatch at identical applied prefix)")

// ReplicatorConfig parameterises a follower's pull loop.
type ReplicatorConfig struct {
	// Primary is the primary's replication listener address (dialed with
	// internal/transport) — ignored when Dial is set.
	Primary string
	// ID names this follower to the primary (cursor key). Defaults to
	// "follower"; give each follower of one primary a distinct ID.
	ID string
	// Dial overrides how the primary is reached; tests and the failover
	// torture inject in-process (and chaos-wrapped) clients here.
	Dial func() (transport.Client, error)
	// Batch caps events requested per pull (0 = 512).
	Batch int
	// Poll is the idle wait between pulls once caught up (0 = 50ms).
	Poll time.Duration
	// MaxLag is the /readyz "replica-lag" threshold in events
	// (0 = 4096).
	MaxLag uint64
	// SnapPath persists a bootstrap snapshot next to the follower's WAL
	// so a restart can recover locally (empty = LogPath+".snap" when the
	// follower has a WAL, else no persistence).
	SnapPath string
	// CallTimeout bounds each pull RPC (0 = 10s).
	CallTimeout time.Duration
	// Retry governs reconnection to a dead primary.
	Retry retry.Policy
	// OnApply, when set, observes every replicated event after it is
	// applied (outside the daemon lock); the bench uses it to timestamp
	// arrivals for lag percentiles.
	OnApply func(e eventlog.Event)
}

// Replicator drives a follower daemon: it pulls WAL batches from the
// primary, applies them verbatim, checks the primary's digest against
// its own after every batch, and can Promote the follower to primary
// with a bumped fencing term. Pull-based: the follower owns its
// position, so a restart resumes from its applied sequence number with
// no primary-side bookkeeping to recover.
type Replicator struct {
	d   *Daemon
	cfg ReplicatorConfig

	mu     sync.Mutex // guards client + Step; Run/Step/Promote serialise here
	client transport.Client
	nextID uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	running  atomic.Bool

	// Counters (observability).
	pulls      atomic.Uint64
	events     atomic.Uint64
	snapshots  atomic.Uint64
	reconnects atomic.Uint64
	rejects    atomic.Uint64
	bootSeq    atomic.Uint64 // applied seq of the last snapshot bootstrap
}

// NewReplicator demotes d to follower and returns its pull loop
// (not yet running: call Run, or Step for deterministic tests).
func NewReplicator(d *Daemon, cfg ReplicatorConfig) (*Replicator, error) {
	if cfg.Primary == "" && cfg.Dial == nil {
		return nil, errors.New("daemon: replicator needs a primary address or a Dial hook")
	}
	if cfg.ID == "" {
		cfg.ID = "follower"
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 512
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = 4096
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.SnapPath == "" && d.cfg.LogPath != "" {
		cfg.SnapPath = d.cfg.LogPath + ".snap"
	}
	r := &Replicator{
		d:    d,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	d.setFollower(r.Promote, cfg.MaxLag)
	return r, nil
}

func (r *Replicator) dial() (transport.Client, error) {
	if r.cfg.Dial != nil {
		return r.cfg.Dial()
	}
	return transport.Dial(r.cfg.Primary, r.cfg.CallTimeout)
}

// connectLocked ensures a live client, reconnecting through the retry
// policy's backoff schedule; r.mu held.
func (r *Replicator) connectLocked(ctx context.Context) error {
	if r.client != nil {
		return nil
	}
	return r.cfg.Retry.Do(ctx, func(int) error {
		c, err := r.dial()
		if err != nil {
			r.reconnects.Add(1)
			return err
		}
		r.client = c
		return nil
	})
}

func (r *Replicator) dropClientLocked() {
	if r.client != nil {
		r.client.Close()
		r.client = nil
	}
}

// call performs one replication RPC and decodes its payload into out.
func (r *Replicator) call(ctx context.Context, kind string, pull *ReplPull, out any) error {
	payload, err := json.Marshal(pull)
	if err != nil {
		return retry.Permanent(err)
	}
	r.nextID++
	resp, err := r.client.Call(ctx, &transport.Request{ID: r.nextID, Kind: kind, Repl: payload})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	if err := json.Unmarshal(resp.Repl, out); err != nil {
		return fmt.Errorf("daemon: replication response payload: %v", err)
	}
	return nil
}

// Step performs exactly one pull round: connect if needed, pull one
// batch, apply it, commit, and verify the shipped digest. It returns
// the number of events applied; 0 with a nil error means caught up.
// Step is the determinism lever for the failover torture — no timers,
// no goroutines, every side effect sequenced by the caller.
func (r *Replicator) Step(ctx context.Context) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.connectLocked(ctx); err != nil {
		return 0, err
	}
	pull := &ReplPull{
		ID:    r.cfg.ID,
		Term:  r.d.Term(),
		After: r.d.AppliedSeq(),
		Max:   r.cfg.Batch,
	}
	var batch ReplBatch
	r.pulls.Add(1)
	if err := r.call(ctx, transport.KindReplPull, pull, &batch); err != nil {
		// Transport failure: the connection is suspect, drop it so the
		// next Step redials (with backoff) rather than reusing a socket
		// in an unknown framing state.
		r.dropClientLocked()
		return 0, err
	}
	if batch.Term > r.d.Term() {
		if err := r.d.adoptTerm(batch.Term); err != nil {
			return 0, retry.Permanent(err)
		}
	}
	if batch.Reject != "" {
		r.rejects.Add(1)
		switch batch.Reject {
		case RejectStaleTerm:
			// Term adopted above; the next pull carries it.
			return 0, fmt.Errorf("daemon: pull rejected: %s (term now %d)", batch.Reject, r.d.Term())
		case RejectAhead:
			// We hold events the primary never acked: irreconcilable
			// without operator intervention.
			r.d.degraded.Store(true)
			return 0, retry.Permanent(fmt.Errorf("daemon: pull rejected: %s (local %d > primary %d)",
				batch.Reject, pull.After, batch.Applied))
		default:
			return 0, fmt.Errorf("daemon: pull rejected: %s", batch.Reject)
		}
	}
	if batch.NeedSnapshot {
		if err := r.bootstrapLocked(ctx); err != nil {
			return 0, err
		}
		return 0, nil
	}
	for _, e := range batch.Events {
		if err := r.d.ApplyReplicated(e); err != nil {
			r.d.degraded.Store(true)
			return 0, retry.Permanent(err)
		}
	}
	if len(batch.Events) > 0 {
		if err := r.d.CommitReplicated(); err != nil {
			return 0, retry.Permanent(err)
		}
		r.events.Add(uint64(len(batch.Events)))
		if r.cfg.OnApply != nil {
			for _, e := range batch.Events {
				r.cfg.OnApply(e)
			}
		}
	}
	applied := r.d.AppliedSeq()
	lag := uint64(0)
	if batch.Applied > applied {
		lag = batch.Applied - applied
	}
	r.d.replLag.Store(lag)
	if lag == 0 {
		r.d.replCaught.Store(true)
	}
	// Continuous divergence detection: whenever the primary stamped the
	// batch end with its digest and we sit exactly there, the digests
	// must agree bit for bit.
	if batch.Digest != "" && batch.DigestSeq == applied {
		if local := r.d.GridDigest(); local != batch.Digest {
			r.d.degraded.Store(true)
			return len(batch.Events), retry.Permanent(fmt.Errorf(
				"%w: seq %d primary %s local %s", ErrDiverged, applied, batch.Digest, local))
		}
	}
	return len(batch.Events), nil
}

// bootstrapLocked fetches the primary's snapshot, restores a grid from
// it (the restore self-verifies against the embedded digest), swaps it
// into the daemon and persists the snapshot file when configured.
func (r *Replicator) bootstrapLocked(ctx context.Context) error {
	pull := &ReplPull{ID: r.cfg.ID, Term: r.d.Term()}
	var snap ReplSnap
	if err := r.call(ctx, transport.KindReplSnapshot, pull, &snap); err != nil {
		r.dropClientLocked()
		return err
	}
	if snap.Term > r.d.Term() {
		if err := r.d.adoptTerm(snap.Term); err != nil {
			return retry.Permanent(err)
		}
	}
	if snap.Reject != "" {
		r.rejects.Add(1)
		return fmt.Errorf("daemon: snapshot rejected: %s", snap.Reject)
	}
	if snap.Snapshot == nil {
		return errors.New("daemon: snapshot response carried no snapshot")
	}
	g, err := Restore(snap.Snapshot)
	if err != nil {
		return retry.Permanent(fmt.Errorf("daemon: restoring bootstrap snapshot: %w", err))
	}
	if err := r.d.ReplaceGrid(g); err != nil {
		return retry.Permanent(err)
	}
	if r.cfg.SnapPath != "" {
		if err := SaveSnapshot(snap.Snapshot, r.cfg.SnapPath); err != nil {
			return fmt.Errorf("daemon: persisting bootstrap snapshot: %w", err)
		}
	}
	r.snapshots.Add(1)
	r.bootSeq.Store(r.d.AppliedSeq())
	return nil
}

// BootstrapSeq returns the applied sequence number of the last snapshot
// bootstrap (0 = never bootstrapped; the follower's log starts at 1).
func (r *Replicator) BootstrapSeq() uint64 { return r.bootSeq.Load() }

// Run starts the pull loop: Step until stopped, sleeping Poll between
// caught-up rounds and backing off (via the retry policy's schedule)
// after errors. Divergence and other permanent errors latch the daemon
// degraded and end the loop — a replica that cannot trust its state
// must stop, not retry.
func (r *Replicator) Run() {
	if !r.running.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(r.done)
		var wait, backoff time.Duration
		for {
			if wait > 0 {
				select {
				case <-r.stop:
					return
				case <-time.After(wait):
				}
			} else {
				select {
				case <-r.stop:
					return
				default:
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.CallTimeout)
			n, err := r.Step(ctx)
			cancel()
			switch {
			case err != nil:
				if retry.IsPermanent(err) {
					// Divergence, degraded apply, irreconcilable positions:
					// retrying cannot make this replica trustworthy again.
					return
				}
				backoff = r.nextBackoff(backoff)
				wait = backoff
			case n == 0:
				backoff, wait = 0, r.cfg.Poll
			default:
				backoff, wait = 0, 0
			}
		}
	}()
}

// nextBackoff advances the loop's error backoff along the retry
// policy's schedule (initial, doubling, capped at max).
func (r *Replicator) nextBackoff(cur time.Duration) time.Duration {
	initial := r.cfg.Retry.Initial
	if initial <= 0 {
		initial = 50 * time.Millisecond
	}
	max := r.cfg.Retry.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	if cur < initial {
		return initial
	}
	cur *= 2
	if cur > max {
		cur = max
	}
	return cur
}

// Stop ends the pull loop and waits for it; safe to call repeatedly
// and without a prior Run.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.running.Load() {
		<-r.done
	}
	r.mu.Lock()
	r.dropClientLocked()
	r.mu.Unlock()
}

// Promote fails the follower over to primary: the pull loop stops, the
// term bumps past everything this node has seen (persisting before the
// role flips), and the daemon starts accepting writes. The returned
// term is the fence that locks the old primary out.
func (r *Replicator) Promote() (uint64, error) {
	r.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	newTerm := r.d.Term() + 1
	if err := r.d.promoteToPrimary(newTerm); err != nil {
		return 0, err
	}
	return newTerm, nil
}

// ReplStats snapshots the replicator's counters.
type ReplStats struct {
	Pulls      uint64 `json:"pulls"`
	Events     uint64 `json:"events"`
	Snapshots  uint64 `json:"snapshots"`
	Reconnects uint64 `json:"reconnects"`
	Rejects    uint64 `json:"rejects"`
}

// Stats returns the replicator's counters.
func (r *Replicator) Stats() ReplStats {
	return ReplStats{
		Pulls:      r.pulls.Load(),
		Events:     r.events.Load(),
		Snapshots:  r.snapshots.Load(),
		Reconnects: r.reconnects.Load(),
		Rejects:    r.rejects.Load(),
	}
}
