package daemon

import (
	"strings"
	"testing"
)

// TestCrashTestSmall runs the full torture with a small budget: every
// kill must recover to the reference digest trajectory and resume to a
// byte-identical WAL. The harness asserts everything internally; the
// test checks the run covered what it claims to cover.
func TestCrashTestSmall(t *testing.T) {
	res, err := CrashTest(CrashTestConfig{
		Grid:   testConfig(),
		Seed:   11,
		Events: 150,
		Kills:  40,
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 40 {
		t.Fatalf("survived %d kills, want 40", res.Kills)
	}
	if res.TornTails == 0 {
		t.Fatal("no kill produced a torn tail — the plan is not tearing records")
	}
	if res.SnapshotRuns == 0 {
		t.Fatal("no kill recovered through the snapshot path")
	}
	for _, kind := range []string{"crash", "short-write", "enospc", "sync-fail"} {
		if res.ByKind[kind] == 0 {
			t.Fatalf("fault kind %s never drawn (by_kind %v)", kind, res.ByKind)
		}
	}
	if !strings.HasPrefix(res.FinalDigest, "") || res.FinalDigest == "" {
		t.Fatal("empty final digest")
	}
}

// TestCrashTestDeterministic pins that two runs with the same seed
// produce the same reference trajectory.
func TestCrashTestDeterministic(t *testing.T) {
	run := func() *CrashTestResult {
		res, err := CrashTest(CrashTestConfig{
			Grid: testConfig(), Seed: 5, Events: 80, Kills: 6, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalDigest != b.FinalDigest || a.WALBytes != b.WALBytes || a.TornTails != b.TornTails {
		t.Fatalf("same seed, different runs:\n%+v\n%+v", a, b)
	}
}
