package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeHandValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample std with n-1: variance = 32/7.
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 || s.CI95() != 0 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if got := Summarize([]float64{9, 1, 5}).Median; got != 5 {
		t.Errorf("median = %v", got)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestRelStd(t *testing.T) {
	s := Summary{Mean: 100, Std: 1}
	if got := s.RelStd(); got != 0.01 {
		t.Errorf("RelStd = %v", got)
	}
	if (Summary{}).RelStd() != 0 {
		t.Error("zero mean should give 0")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	a := Summary{N: 10, Std: 2}
	b := Summary{N: 40, Std: 2}
	if !(b.CI95() < a.CI95()) {
		t.Error("CI should shrink with larger n")
	}
	if math.Abs(a.CI95()-1.96*2/math.Sqrt(10)) > 1e-12 {
		t.Error("CI formula wrong")
	}
}

func TestPercentDelta(t *testing.T) {
	if got := PercentDelta(200, 150); got != 25 {
		t.Errorf("delta = %v, want 25", got)
	}
	if got := PercentDelta(100, 110); got != -10 {
		t.Errorf("delta = %v, want -10", got)
	}
	if PercentDelta(0, 5) != 0 {
		t.Error("zero ref should give 0")
	}
}

func TestSummaryStringContainsFields(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if str := s.String(); len(str) == 0 {
		t.Error("empty string")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
