// Package stats provides the small set of descriptive statistics the
// experiment harness reports: mean, standard deviation, min/max, median
// and normal-approximation confidence intervals. The paper reports best
// and averaged makespans over 10 runs and cites the ~1 % standard
// deviation as its robustness evidence, so these are exactly the
// quantities EXPERIMENTS.md needs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It panics on an empty sample: every
// experiment performs at least one run, so an empty sample is a harness
// bug, not a data condition.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// RelStd returns the coefficient of variation (std/mean), the "roughly
// 1 %" robustness number of §5.1. It returns 0 for a zero mean.
func (s Summary) RelStd() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / math.Abs(s.Mean)
}

// CI95 returns the half-width of the normal-approximation 95 % confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f (%.2f%%) min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.Std, 100*s.RelStd(), s.Min, s.Median, s.Max)
}

// PercentDelta returns the improvement of got over ref in percent,
// positive when got is lower (better): 100·(ref−got)/ref. It is the Δ(%)
// column of the paper's tables.
func PercentDelta(ref, got float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (ref - got) / ref
}
