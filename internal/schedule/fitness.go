package schedule

import "gridcma/internal/etc"

// DefaultLambda is the makespan weight the paper fixed after tuning
// (Table 1): fitness = 0.75·makespan + 0.25·mean_flowtime.
const DefaultLambda = 0.75

// Objective is the paper's scalarised bi-objective fitness. The zero value
// is invalid; use NewObjective or take DefaultObjective.
type Objective struct {
	// Lambda weighs makespan against mean flowtime; both are expressed in
	// the same time units, and mean flowtime (flowtime / nb_machines)
	// keeps the two terms on comparable magnitudes.
	Lambda float64
}

// DefaultObjective is the tuned objective of the paper.
var DefaultObjective = Objective{Lambda: DefaultLambda}

// Of returns the fitness of an evaluated state. Lower is better.
func (o Objective) Of(st *State) float64 {
	return o.Lambda*st.Makespan() + (1-o.Lambda)*st.MeanFlowtime()
}

// Combine scalarises explicit makespan and mean flowtime values.
func (o Objective) Combine(makespan, meanFlowtime float64) float64 {
	return o.Lambda*makespan + (1-o.Lambda)*meanFlowtime
}

// Evaluate computes the fitness of schedule s on instance in from scratch.
// It allocates a throwaway State; algorithms with hot loops should keep a
// State and use Of instead.
func (o Objective) Evaluate(in *etc.Instance, s Schedule) float64 {
	return o.Of(NewState(in, s))
}
