package schedule

import "math"

// Generic ETC-matrix kernels for the float32 backing
// (etc.GenSpec.Float32, halving a frontier matrix's footprint): the few
// evaluation loops hot enough to read the flat matrix directly dispatch
// once on the backing and run these stencils under ETC32, mirroring the
// hand-written float64 loops at their call sites line for line. (The
// float64 originals stay hand-written rather than instantiating these
// with E = float64: the generic instantiation measured 10–40% slower on
// the scan benchmarks, and those loops carry the bit-identity contract.)
// Entries are widened to float64 at the load; all arithmetic downstream
// of the load is identical for both backings.
//
// Everything else reads through At, whose backing branch is one perfectly
// predicted test per call.

type etcElem interface{ ~float32 | ~float64 }

// swapSweepFill is CompletionAfterSwapSweep's scan of partner machine m's
// job list: per slot, the post-swap completion pair against critical-side
// terms hoisted by the caller (caBase, w) and m's own completion cm.
func swapSweepFill[E etcElem](etc []E, machs, ma, m int, caBase, w, cm float64, jobs []int32, aOut, bOut []float64) {
	for k, b := range jobs {
		row := int(b) * machs
		aOut[k] = caBase + float64(etc[row+ma])
		bOut[k] = (cm - float64(etc[row+m])) + w
	}
}

// appendPartnerInvariants is BeginSwapScan's per-machine capture: partner
// job b contributes u = ETC[b][crit] and v = completion[m] − ETC[b][m].
func appendPartnerInvariants[E etcElem](etc []E, machs, crit, m int, cm float64, jobs []int32, u, v []float64, ids []int32) ([]float64, []float64, []int32) {
	for _, b := range jobs {
		row := int(b) * machs
		u = append(u, float64(etc[row+crit]))
		v = append(v, cm-float64(etc[row+m]))
		ids = append(ids, b)
	}
	return u, v, ids
}

// bestOnKernel is ScanCache.bestOn's pair scan: the minimum over critical
// jobs a and partner jobs b on machine m of max(aC, bC), with bestOn's
// lexicographic (value, aPos, b) tie-break. See bestOn for the exactness
// argument; this is the same loop parameterised over the matrix element.
func bestOnKernel[E etcElem](etc []E, machs int, critC, cm float64, critJobs, jobs []int32, crit, m int) (float64, int32, int32) {
	best := math.Inf(1)
	bestAPos, bestB := int32(-1), int32(-1)
	for apos, a := range critJobs {
		aRow := etc[int(a)*machs : int(a)*machs+machs]
		ca := critC - float64(aRow[crit])
		w := float64(aRow[m])
		for _, b := range jobs {
			row := int(b) * machs
			x := ca + float64(etc[row+crit])
			if y := (cm - float64(etc[row+m])) + w; y > x {
				x = y
			}
			if x < best || (x == best && int32(apos) == bestAPos && b < bestB) {
				best, bestAPos, bestB = x, int32(apos), b
			}
		}
	}
	return best, bestAPos, bestB
}
