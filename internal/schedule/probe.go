package schedule

// Speculative probe evaluation: the exact scalarised fitness a
// hypothetical Move or Swap would produce, computed without mutating the
// state and without allocating.
//
// The bit-identity contract. A probe returns the same float64, bit for
// bit, that the historical apply→Objective.Of→revert sequence observed:
// the hypothetical per-machine completion and flowtime are recomputed by
// replaying refreshMachine's summation loop (same terms, same order) over
// the machine's job list with the moved job skipped or spliced in, and
// the state flowtime is composed with the exact subtract-then-add
// expression Move and Swap use. Search methods can therefore switch from
// apply+revert probing to probe-then-commit without changing a single
// accept decision, which keeps every engine's output schedules
// byte-identical (locked by testdata/golden.json and the differential
// tests in probe_test.go).
//
// Costs: the makespan side is O(log M) — the tournament tree answers
// "max completion excluding the two touched machines" and only the two
// hypothetical completions are folded in — and the flowtime side is one
// read-only pass over the two affected machines' job lists. An
// apply+revert probe paid two Moves: slice shifts, slot repairs, binary
// searches and four refreshMachine passes, plus two full fitness reads.

// FitnessAfterMove returns the fitness Objective.Of would report after
// Move(j, to), without modifying the state. Moving a job to its current
// machine is a no-op, so the current fitness is returned.
func (st *State) FitnessAfterMove(o Objective, j, to int) float64 {
	from := st.assign[j]
	if from == to {
		return o.Of(st)
	}
	fromC, fromFlow := st.completionFlowWithout(from, int32(j))
	toC, toFlow := st.completionFlowWith(to, int32(j))
	mk := st.top.maxExcluding2(from, to)
	if fromC > mk {
		mk = fromC
	}
	if toC > mk {
		mk = toC
	}
	if mk < 0 {
		mk = 0
	}
	f := st.flowtime - (st.machFlow[from] + st.machFlow[to])
	f += fromFlow + toFlow
	return o.Combine(mk, f/float64(st.inst.Machs))
}

// FitnessAfterSwap returns the fitness Objective.Of would report after
// Swap(a, b), without modifying the state. Swapping jobs of the same
// machine is a no-op, so the current fitness is returned.
func (st *State) FitnessAfterSwap(o Objective, a, b int) float64 {
	ma, mb := st.assign[a], st.assign[b]
	if ma == mb {
		return o.Of(st)
	}
	aC, aFlow := st.completionFlowReplace(ma, int32(a), int32(b))
	bC, bFlow := st.completionFlowReplace(mb, int32(b), int32(a))
	mk := st.top.maxExcluding2(ma, mb)
	if aC > mk {
		mk = aC
	}
	if bC > mk {
		mk = bC
	}
	if mk < 0 {
		mk = 0
	}
	f := st.flowtime - (st.machFlow[ma] + st.machFlow[mb])
	f += aFlow + bFlow
	return o.Combine(mk, f/float64(st.inst.Machs))
}

// insertPos returns the (ETC, id) insertion index of job j in machine
// m's sorted list — the same binary search insert performs.
func (st *State) insertPos(m int, j int32) int {
	jobs := st.machJobs[m]
	lo, hi := 0, len(jobs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.less(jobs[mid], j, m) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// prefix returns machine m's recorded partial sums before slot k: the
// completion and flowtime refreshMachine had produced after the first k
// jobs. Reusing the recorded bits (rather than resumming) keeps probes
// exact and halves their work on average.
func (st *State) prefix(m, k int) (completion, flow float64) {
	if k > 0 {
		return st.machCumC[m][k-1], st.machCumF[m][k-1]
	}
	return st.inst.Ready[m], 0
}

// completionFlowWithout replays refreshMachine over machine m's job list
// with job j skipped: the completion and flowtime m would have after
// remove(j, m). Only the suffix after j's slot is resummed.
func (st *State) completionFlowWithout(m int, j int32) (completion, flow float64) {
	jobs := st.machJobs[m]
	s := int(st.slot[j])
	t, f := st.prefix(m, s)
	if e := st.etc64; e != nil {
		machs := st.inst.Machs
		for _, x := range jobs[s+1:] {
			t += e[int(x)*machs+m]
			f += t
		}
		return t, f
	}
	for _, x := range jobs[s+1:] {
		t += st.inst.At(int(x), m)
		f += t
	}
	return t, f
}

// completionFlowWith replays refreshMachine over machine m's job list
// with job j spliced in at its (ETC, id) position: the completion and
// flowtime m would have after insert(j, m). Only the suffix from the
// insertion point is resummed.
func (st *State) completionFlowWith(m int, j int32) (completion, flow float64) {
	jobs := st.machJobs[m]
	p := st.insertPos(m, j)
	t, f := st.prefix(m, p)
	if e := st.etc64; e != nil {
		machs := st.inst.Machs
		t += e[int(j)*machs+m]
		f += t
		for _, x := range jobs[p:] {
			t += e[int(x)*machs+m]
			f += t
		}
		return t, f
	}
	t += st.inst.At(int(j), m)
	f += t
	for _, x := range jobs[p:] {
		t += st.inst.At(int(x), m)
		f += t
	}
	return t, f
}

// completionFlowReplace replays refreshMachine over machine m's job list
// with job out skipped and job in spliced at its (ETC, id) position among
// the remaining jobs — the per-machine half of a Swap. The resummation
// starts at the first affected slot.
//
// The float64 body loads each survivor's entry once and inlines the
// (ETC, id) comparison against it — the same two-term predicate less
// evaluates, over the same loaded values, so the splice point and every
// emitted float are bit-identical to the accessor-based replay. This is
// the hottest replay in the engine (every cached-scan iteration probes
// its candidate swap through it), which is why it gets the hand-tuned
// path rather than leaning on At.
func (st *State) completionFlowReplace(m int, out, in int32) (completion, flow float64) {
	jobs := st.machJobs[m]
	start := int(st.slot[out])
	if p := st.insertPos(m, in); p < start {
		start = p
	}
	t, f := st.prefix(m, start)
	inserted := false
	if e64 := st.etc64; e64 != nil {
		machs := st.inst.Machs
		e := e64[int(in)*machs+m]
		for _, x := range jobs[start:] {
			if x == out {
				continue
			}
			xe := e64[int(x)*machs+m]
			if !inserted && !(xe < e || (xe == e && x < in)) {
				t += e
				f += t
				inserted = true
			}
			t += xe
			f += t
		}
		if !inserted {
			t += e
			f += t
		}
		return t, f
	}
	e := st.inst.At(int(in), m)
	for _, x := range jobs[start:] {
		if x == out {
			continue
		}
		if !inserted && !st.less(x, in, m) {
			t += e
			f += t
			inserted = true
		}
		t += st.inst.At(int(x), m)
		f += t
	}
	if !inserted {
		t += e
		f += t
	}
	return t, f
}
