package schedule

import (
	"math"
	"sync/atomic"
)

// Event-driven scan caching: the delta layer over the batched sweep
// kernels (sweep.go). The sweeps made each neighborhood scan optimal *per
// candidate*; iteration cost was still O(M) machines re-swept per step,
// even though a committed Move or Swap changes exactly two machines and
// leaves every other machine's cached scan result bit-for-bit valid.
//
// ScanCache turns that observation into an invalidation protocol. The
// state stamps every machine with the epoch of its last content change
// (state.go: machEpoch, advanced by the noteCommit hook); the cache
// memoizes, per machine, the result of scanning that machine — currently
// the machine's best critical-swap partner entry — together with the
// epoch it was computed at. A query then re-sweeps only the machines
// whose epoch moved and folds the memoized per-machine bests, anchored on
// the max-tree's root (the critical machine): per-iteration scan work
// drops from O(M) machines to O(changed), and to a plain O(M) fold of
// cached scalars once the cache is warm.
//
// Exactness. Every memoized entry is produced by the same arithmetic, in
// the same order, as SwapScan.BestPartner's flat scan, and an entry is
// reused only while both its machine's epoch and the critical machine's
// (identity, epoch) pair are unchanged — the inputs of every float in the
// entry. The per-machine/fold decomposition reproduces the historical
// ascending-id scan's winner exactly (see bestOn for the tie-break
// argument), so a cached query equals a full rescan bit for bit; the
// differential fuzz in scancache_test.go pins this across thousands of
// random commit/invalidate sequences, tie-heavy integer instances
// included.
//
// The critical-swap scan is the memoizable neighborhood because it
// factorizes: with the critical machine fixed, each partner machine's
// contribution depends only on that machine's own contents (and the
// shared critical context). Move neighborhoods scored by the scalarised
// fitness do not factorize per machine — a candidate's fitness folds the
// flowtime and completions of *every* machine, so any commit anywhere
// invalidates a memoized per-machine "best move" — which is why the move
// side of the cache memoizes the frozen-state probe context (MoveScan)
// keyed on the global epoch instead of per-machine bests.
type ScanCache struct {
	st *State
	o  Objective

	// Move side: the frozen-state probe context of BeginMoveScan,
	// revalidated only when the global epoch moves — between commits,
	// every probe and every accept baseline is served from it without
	// re-reading the state or re-walking the tournament tree.
	move      MoveScan
	moveEpoch uint64 // epoch the context was captured at; 0 = never

	// Swap side: per-partner-machine memo of the critical-swap scan,
	// valid against (swapCrit, swapCritEpoch).
	swapCrit      int    // critical machine the entries were computed against
	swapCritEpoch uint64 // its machine epoch at computation; 0 = never
	entryEpoch    []uint64
	entryVal      []float64 // best max(aC, bC) over (a ∈ crit, b ∈ m)
	entryAPos     []int32   // winning critical job's position in SPT order
	entryB        []int32   // winning partner id; -1 = machine empty
}

// Scans returns the state's scan cache bound to objective o, sizing its
// memo arrays on first use (the only allocation; every query afterwards
// is allocation-free). Changing the objective invalidates the move-side
// context; the swap-side entries are completion-based and survive.
func (st *State) Scans(o Objective) *ScanCache {
	sc := &st.scanCache
	if sc.st == nil {
		sc.st = st
		sc.swapCrit = -1
		machs := st.inst.Machs
		sc.entryEpoch = make([]uint64, machs)
		sc.entryVal = make([]float64, machs)
		sc.entryAPos = make([]int32, machs)
		sc.entryB = make([]int32, machs)
		sc.o = o
	} else if sc.o != o {
		sc.o = o
		sc.moveEpoch = 0
	}
	return sc
}

// sync acknowledges all pending commit events: the cache's validity is
// carried by the epoch stamps it compares on every entry, so observing a
// query boundary is all the drain has to do.
func (sc *ScanCache) sync() { sc.st.drainDirty() }

// freshenMove recaptures the frozen-state probe context iff the state
// changed since the last capture.
func (sc *ScanCache) freshenMove() {
	if sc.moveEpoch != sc.st.epoch {
		sc.move = sc.st.BeginMoveScan(sc.o)
		sc.moveEpoch = sc.st.epoch
	}
}

// Fitness returns the state's current fitness under the cache's
// objective — bit-identical to Objective.Of, served from the cached probe
// context between commits.
func (sc *ScanCache) Fitness() float64 {
	sc.sync()
	sc.freshenMove()
	return sc.move.cur
}

// FitnessAfterMove is State.FitnessAfterMove through the cached probe
// context: bit-identical, with the tournament-tree walk memoized across
// every probe between two commits (the LM and SA/tabu candidate loops).
func (sc *ScanCache) FitnessAfterMove(j, to int) float64 {
	sc.sync()
	sc.freshenMove()
	return sc.move.FitnessAfterMove(j, to)
}

// BestMoveTarget scores moving job j to every machine through one batched
// sweep and returns the steepest target with the historical fold: the
// current fitness is the baseline, candidates are scanned in ascending
// machine order with a strict-< fold (so among exact ties the lowest
// target wins), and the job's own machine is returned when no target
// improves — exactly the SLM inner loop, bit for bit.
func (sc *ScanCache) BestMoveTarget(j int) (float64, int) {
	sc.sync()
	st := sc.st
	fits := st.FitnessAfterMoveSweep(sc.o, j, nil)
	from := st.assign[j]
	bestFit, bestTo := fits[from], from
	for to, f := range fits {
		if to != from && f < bestFit {
			bestFit, bestTo = f, to
		}
	}
	return bestFit, bestTo
}

// BestCriticalSwap returns the best swap between the current critical
// machine and the rest — the LMCTS full-scan neighborhood — as the
// minimal max(aC, bC) completion pair with its jobs (a on the critical
// machine, b elsewhere; b = -1 when no partner exists). The winner is the
// historical ascending-scan one: strict-< across critical jobs in SPT
// order, smallest partner id within a critical job.
//
// Event-driven: per-machine bests are memoized and only machines whose
// epoch moved since their entry was computed are re-swept; a change of
// the critical machine's identity or contents invalidates every entry
// (each one is computed against the critical context). Steady state — no
// commits since the last query — costs one O(M) fold of cached scalars.
func (sc *ScanCache) BestCriticalSwap() (float64, int, int) {
	sc.sync()
	st := sc.st
	crit := st.MakespanMachine()
	if st.scanExempt != nil && st.scanExempt[crit] {
		// An exempt machine's jobs are never scanned — when the exempt
		// machine is itself critical (the daemon's parking column with no
		// jobs placed on real machines), no swap involves it either.
		return math.Inf(1), -1, -1
	}
	critJobs := st.machJobs[crit]
	if len(critJobs) == 0 {
		return math.Inf(1), -1, -1
	}
	if crit != sc.swapCrit || st.machEpoch[crit] != sc.swapCritEpoch {
		for m := range sc.entryEpoch {
			sc.entryEpoch[m] = 0
		}
		sc.swapCrit, sc.swapCritEpoch = crit, st.machEpoch[crit]
	}
	bestVal := math.Inf(1)
	bestAPos, bestB := int32(-1), int32(-1)
	for m := range sc.entryEpoch {
		if m == crit || (st.scanExempt != nil && st.scanExempt[m]) {
			continue
		}
		if sc.entryEpoch[m] != st.machEpoch[m] {
			sc.entryVal[m], sc.entryAPos[m], sc.entryB[m] = st.bestOn(m, crit, critJobs)
			sc.entryEpoch[m] = st.machEpoch[m]
		}
		if sc.entryB[m] < 0 {
			continue
		}
		v, apos, b := sc.entryVal[m], sc.entryAPos[m], sc.entryB[m]
		if v < bestVal ||
			(v == bestVal && (apos < bestAPos || (apos == bestAPos && b < bestB))) {
			bestVal, bestAPos, bestB = v, apos, b
		}
	}
	if bestB < 0 {
		return math.Inf(1), -1, -1
	}
	return bestVal, int(critJobs[bestAPos]), int(bestB)
}

// bestOn computes partner machine m's memo entry: the minimum over
// critical jobs a and jobs b on m of max(aC, bC) — the completion pair
// CompletionAfterSwap(a, b) reports — with the winning critical job's SPT
// position and partner id. Same arithmetic, same order as
// SwapScan.BestPartner's flat scan, so every emitted float is
// bit-identical to the full-sweep path.
//
// The tie-break makes the per-machine/fold decomposition exact. The
// historical scan folds strict-< across critical jobs (first a in SPT
// order wins a tie) and smallest-id within one (per-a BestPartner).
// bestOn keeps the lexicographic minimum of (value, aPos, b): a later
// critical job never displaces an equal value, and a smaller partner id
// only displaces within the same critical job. Folding the per-machine
// entries by the same lexicographic order then yields the global
// (value, aPos, b) minimum — the exact winner of the flat scan, because
// no machine can hold a pair lexicographically below its own entry.
func (st *State) bestOn(m, crit int, critJobs []int32) (float64, int32, int32) {
	jobs := st.machJobs[m]
	if len(jobs) == 0 {
		return math.Inf(1), -1, -1
	}
	machs := st.inst.Machs
	cm := st.completion[m]
	critC := st.completion[crit]
	etcs := st.inst.ETC
	if etcs == nil {
		// Narrow frontier backing: same loop, stenciled over float32
		// (kernels.go). The float64 path below stays hand-written — this
		// scan is the hottest loop in the engine and the generic
		// instantiation measures ~40ns/query slower.
		return bestOnKernel(st.inst.ETC32, machs, critC, cm, critJobs, jobs, crit, m)
	}
	best := math.Inf(1)
	bestAPos, bestB := int32(-1), int32(-1)
	for apos, a := range critJobs {
		aRow := etcs[int(a)*machs : int(a)*machs+machs]
		ca := critC - aRow[crit]
		w := aRow[m]
		for _, b := range jobs {
			row := int(b) * machs
			x := ca + etcs[row+crit]
			if y := (cm - etcs[row+m]) + w; y > x {
				x = y
			}
			if x < best || (x == best && int32(apos) == bestAPos && b < bestB) {
				best, bestAPos, bestB = x, int32(apos), b
			}
		}
	}
	return best, bestAPos, bestB
}

// dirtyAudit is a test-support gauge of pending dirty marks across every
// live State: markDirty increments it, drains decrement it, so after a
// public Run returns it must read exactly what it read before the run —
// any state that died (or was pooled) carrying pending invalidation
// events shows up as a positive residue. The audit is off by default and
// costs one predictable branch per commit; DirtyAuditStart must be called
// before the audited states exist (tests only), never concurrently with
// running engines.
var dirtyAudit struct {
	on      bool
	pending atomic.Int64
}

func dirtyAuditAdd(n int64) {
	if dirtyAudit.on {
		dirtyAudit.pending.Add(n)
	}
}

// DirtyAuditStart enables the dirty-set leak gauge and zeroes it.
func DirtyAuditStart() {
	dirtyAudit.on = true
	dirtyAudit.pending.Store(0)
}

// DirtyAuditStop disables the gauge.
func DirtyAuditStop() { dirtyAudit.on = false }

// DirtyAuditPending reads the gauge: the number of pending dirty marks
// across all audited states. Zero after every well-behaved Run.
func DirtyAuditPending() int64 { return dirtyAudit.pending.Load() }
