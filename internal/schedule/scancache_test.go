package schedule

import (
	"math"
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
)

// Differential fuzz for the event-driven scan cache: across thousands of
// random commit/invalidate sequences the cached critical-swap query must
// return, bit for bit, the winner of a from-scratch full sweep — value,
// critical job and partner id — including on tie-heavy integer instances
// where the (value, SPT-position, id) tie-break contract actually binds.

// scanInstances mixes generic random instances with tie-heavy integer
// ones (tieInstance lives in sweep_test.go).
func scanInstances() []*etc.Instance {
	return []*etc.Instance{
		etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
			0, etc.GenerateOptions{Seed: 81, Jobs: 72, Machs: 9}),
		etc.Generate(etc.Class{Consistency: etc.Consistent, JobHet: etc.Low, MachineHet: etc.High},
			0, etc.GenerateOptions{Seed: 82, Jobs: 90, Machs: 6}),
		tieInstance(60, 8, 83),
		tieInstance(36, 4, 84),
		tieInstance(20, 3, 85),
	}
}

// refCriticalSwap is the uncached reference: a fresh full sweep of the
// critical neighborhood through BeginSwapScan/BestPartner (itself pinned
// against the scalar pair query by sweep_test.go), folded with the
// historical strict-< across critical jobs in SPT order.
func refCriticalSwap(st *State) (float64, int, int) {
	crit := st.MakespanMachine()
	critJobs := st.JobsOn(crit)
	if len(critJobs) == 0 {
		return math.Inf(1), -1, -1
	}
	scan := st.BeginSwapScan(crit)
	best, bestA, bestB := math.Inf(1), -1, -1
	for _, a := range critJobs {
		if v, b := scan.BestPartner(int(a)); b >= 0 && v < best {
			best, bestA, bestB = v, int(a), b
		}
	}
	if bestB < 0 {
		return math.Inf(1), -1, -1
	}
	return best, bestA, bestB
}

// TestCachedScanMatchesFullSweep drives a state through long random
// commit sequences — single moves, swaps, occasional wholesale
// SetSchedule/CopyFrom invalidations, repeated queries with nothing dirty
// — and checks the cached query against the reference sweep after every
// step. The reference runs on a mirror state so its BeginSwapScan cannot
// share buffers with the cache's sweeps.
func TestCachedScanMatchesFullSweep(t *testing.T) {
	o := DefaultObjective
	for i, in := range scanInstances() {
		r := rng.New(uint64(i) + 800)
		start := NewRandom(in, r)
		st := NewState(in, start)
		mirror := NewState(in, start.Clone())
		sc := st.Scans(o)
		queries := 0
		for step := 0; step < 900; step++ {
			switch op := r.Intn(10); {
			case op < 5: // committed move
				j, to := r.Intn(in.Jobs), r.Intn(in.Machs)
				st.Move(j, to)
				mirror.Move(j, to)
			case op < 8: // committed swap
				a, b := r.Intn(in.Jobs), r.Intn(in.Jobs)
				st.Swap(a, b)
				mirror.Swap(a, b)
			case op == 8: // wholesale invalidation
				s := NewRandom(in, r)
				st.SetSchedule(s)
				mirror.SetSchedule(s)
			default: // no-op: next query folds a fully warm cache
			}
			for q := 0; q < 2; q++ { // second query hits the warm path
				gv, ga, gb := sc.BestCriticalSwap()
				wv, wa, wb := refCriticalSwap(mirror)
				if gv != wv || ga != wa || gb != wb {
					t.Fatalf("instance %d step %d: cached scan (%x,%d,%d) != full sweep (%x,%d,%d)",
						i, step, gv, ga, gb, wv, wa, wb)
				}
				queries++
			}
			if st.PendingDirty() != 0 {
				t.Fatalf("instance %d step %d: %d pending dirty after query", i, step, st.PendingDirty())
			}
		}
		if queries < 1500 {
			t.Fatalf("instance %d: only %d differential queries", i, queries)
		}
	}
}

// TestCachedMoveProbesMatchScalar pins the cache's move-side context:
// Fitness and FitnessAfterMove served through the epoch-revalidated
// MoveScan must equal the direct reads bit for bit across random
// commit/probe interleavings.
func TestCachedMoveProbesMatchScalar(t *testing.T) {
	o := DefaultObjective
	for i, in := range scanInstances() {
		r := rng.New(uint64(i) + 900)
		st := NewState(in, NewRandom(in, r))
		sc := st.Scans(o)
		for step := 0; step < 600; step++ {
			j, to := r.Intn(in.Jobs), r.Intn(in.Machs)
			if got, want := sc.Fitness(), o.Of(st); got != want {
				t.Fatalf("instance %d step %d: cached fitness %x != %x", i, step, got, want)
			}
			if got, want := sc.FitnessAfterMove(j, to), st.FitnessAfterMove(o, j, to); got != want {
				t.Fatalf("instance %d step %d: cached probe %x != %x", i, step, got, want)
			}
			if step%3 == 0 {
				st.Move(j, to)
			}
		}
	}
}

// TestScanExemptCriticalMachine pins that exemption covers both sides of
// the critical-swap scan: an exempt machine is skipped as a sweep
// partner, and when it is itself the critical machine its jobs are not
// swept as swap sources either — the query reports no candidate, per the
// SetScanExempt contract that no proposed swap ever involves an exempt
// machine. Re-admitting the machine restores the full-sweep winner.
func TestScanExemptCriticalMachine(t *testing.T) {
	in := scanInstances()[0]
	r := rng.New(990)
	st := NewState(in, NewRandom(in, r))
	sc := st.Scans(DefaultObjective)
	crit := st.MakespanMachine()
	st.SetScanExempt(crit, true)
	if v, a, b := sc.BestCriticalSwap(); !math.IsInf(v, 1) || a != -1 || b != -1 {
		t.Fatalf("exempt critical machine still scanned: (%v,%d,%d)", v, a, b)
	}
	st.SetScanExempt(crit, false)
	gv, ga, gb := sc.BestCriticalSwap()
	mirror := NewState(in, st.Schedule())
	wv, wa, wb := refCriticalSwap(mirror)
	if gv != wv || ga != wa || gb != wb {
		t.Fatalf("re-admitted scan (%x,%d,%d) != full sweep (%x,%d,%d)", gv, ga, gb, wv, wa, wb)
	}
}

// TestBestMoveTargetMatchesSweepFold pins the cache's steepest-transfer
// helper against a direct fold over the move sweep.
func TestBestMoveTargetMatchesSweepFold(t *testing.T) {
	o := DefaultObjective
	in := scanInstances()[2] // tie-heavy: the strict-< fold must bind
	r := rng.New(77)
	st := NewState(in, NewRandom(in, r))
	sc := st.Scans(o)
	out := make([]float64, in.Machs)
	for step := 0; step < 400; step++ {
		j := r.Intn(in.Jobs)
		fits := st.FitnessAfterMoveSweep(o, j, out)
		from := st.Assign(j)
		wantFit, wantTo := fits[from], from
		for to, f := range fits {
			if to != from && f < wantFit {
				wantFit, wantTo = f, to
			}
		}
		gotFit, gotTo := sc.BestMoveTarget(j)
		if gotFit != wantFit || gotTo != wantTo {
			t.Fatalf("step %d: BestMoveTarget (%x,%d) != fold (%x,%d)", step, gotFit, gotTo, wantFit, wantTo)
		}
		if wantTo != from {
			st.Move(j, wantTo)
		}
	}
}

// TestSwapScanIDsMatchesFullScan checks BeginSwapScanIDs against
// BeginSwapScan: handed every non-critical job, machine-grouped, the
// restricted scan must reproduce the full scan's BestPartner results
// exactly.
func TestSwapScanIDsMatchesFullScan(t *testing.T) {
	for i, in := range scanInstances() {
		r := rng.New(uint64(i) + 950)
		st := NewState(in, NewRandom(in, r))
		ref := NewState(in, st.Schedule())
		for step := 0; step < 60; step++ {
			crit := st.MakespanMachine()
			ids := st.PartnerSampleBuf(in.Jobs)
			for m := 0; m < in.Machs; m++ {
				if m != crit {
					ids = append(ids, st.JobsOn(m)...)
				}
			}
			scan := st.BeginSwapScanIDs(crit, ids)
			full := ref.BeginSwapScan(crit)
			for _, a := range st.JobsOn(crit) {
				gv, gb := scan.BestPartner(int(a))
				wv, wb := full.BestPartner(int(a))
				if gv != wv || gb != wb {
					t.Fatalf("instance %d step %d job %d: ids scan (%x,%d) != full (%x,%d)",
						i, step, a, gv, gb, wv, wb)
				}
			}
			j, to := r.Intn(in.Jobs), r.Intn(in.Machs)
			st.Move(j, to)
			ref.Move(j, to)
		}
	}
}

// TestDirtySetSemantics pins the commit event log: a Move marks source
// and target (plus the critical machines when the tree root moves), a
// no-op marks nothing, drains empty the log, and wholesale invalidations
// reset it — so a pooled state is reused clean.
func TestDirtySetSemantics(t *testing.T) {
	in := etc.Generate(etc.Class{}, 0, etc.GenerateOptions{Jobs: 40, Machs: 5, Seed: 60})
	r := rng.New(3)
	st := NewState(in, NewRandom(in, r))
	if st.PendingDirty() != 0 {
		t.Fatalf("fresh state has %d pending dirty", st.PendingDirty())
	}
	j := 0
	from := st.Assign(j)
	to := (from + 1) % in.Machs
	critBefore := st.MakespanMachine()
	st.Move(j, to)
	marked := map[int32]bool{}
	for _, m := range st.DirtyMachines() {
		marked[m] = true
	}
	if !marked[int32(from)] || !marked[int32(to)] {
		t.Fatalf("Move(%d→%d) marked %v, want source+target", from, to, st.DirtyMachines())
	}
	if critAfter := st.MakespanMachine(); critAfter != critBefore &&
		(!marked[int32(critBefore)] || !marked[int32(critAfter)]) {
		t.Fatalf("critical machine moved %d→%d but marks are %v", critBefore, critAfter, st.DirtyMachines())
	}
	st.SyncScans()
	if st.PendingDirty() != 0 {
		t.Fatal("SyncScans left pending dirty")
	}
	st.Move(j, to) // no-op: already there
	if st.PendingDirty() != 0 {
		t.Fatal("no-op Move marked machines")
	}
	st.Swap(j, j) // no-op
	if st.PendingDirty() != 0 {
		t.Fatal("no-op Swap marked machines")
	}
	st.Move(j, from)
	if st.PendingDirty() == 0 {
		t.Fatal("commit did not mark")
	}
	st.SetSchedule(NewRandom(in, r))
	if st.PendingDirty() != 0 {
		t.Fatal("SetSchedule left pending dirty")
	}
	st.Move(0, (st.Assign(0)+1)%in.Machs)
	other := NewState(in, NewRandom(in, r))
	st.CopyFrom(other)
	if st.PendingDirty() != 0 {
		t.Fatal("CopyFrom left pending dirty")
	}
	// Epochs must still have advanced across the wholesale reset, so any
	// cached entry computed before it is stale.
	if st.Epoch() == 0 || st.MachEpoch(0) != st.Epoch() {
		t.Fatalf("wholesale reset: epoch %d, machEpoch %d", st.Epoch(), st.MachEpoch(0))
	}
}

// TestDirtyAuditGauge exercises the cross-state leak gauge the public
// Run leak check builds on.
func TestDirtyAuditGauge(t *testing.T) {
	DirtyAuditStart()
	defer DirtyAuditStop()
	in := etc.Generate(etc.Class{}, 0, etc.GenerateOptions{Jobs: 30, Machs: 4, Seed: 61})
	r := rng.New(9)
	st := NewState(in, NewRandom(in, r))
	st.Move(0, (st.Assign(0)+1)%in.Machs)
	if DirtyAuditPending() == 0 {
		t.Fatal("commit not audited")
	}
	st.SyncScans()
	if n := DirtyAuditPending(); n != 0 {
		t.Fatalf("audit gauge %d after drain", n)
	}
}

// TestCachedScanAllocationFree asserts the steady-state query path of the
// cache — including re-sweeps of dirtied machines — never allocates.
func TestCachedScanAllocationFree(t *testing.T) {
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 86, Jobs: 128, Machs: 16})
	o := DefaultObjective
	r := rng.New(4)
	st := NewState(in, NewRandom(in, r))
	sc := st.Scans(o)
	sc.BestCriticalSwap() // size the memo arrays
	if n := testing.AllocsPerRun(100, func() {
		st.Move(r.Intn(in.Jobs), r.Intn(in.Machs)) // dirty two machines
		sc.BestCriticalSwap()                      // O(changed) revalidation
		sc.BestCriticalSwap()                      // warm fold
		sc.FitnessAfterMove(r.Intn(in.Jobs), r.Intn(in.Machs))
	}); n != 0 {
		t.Errorf("cached scan allocates %v per query cycle", n)
	}
}

// BenchmarkCachedScanQuery measures one warm cached critical-swap query —
// the steady-state O(M) fold — at the paper's 512×16 shape. Must report 0
// allocs/op: CI runs every CachedScan benchmark with -benchtime=1x and
// fails otherwise.
func BenchmarkCachedScanQuery(b *testing.B) {
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1, Jobs: 512, Machs: 16})
	r := rng.New(7)
	st := NewState(in, NewRandom(in, r))
	sc := st.Scans(DefaultObjective)
	sc.BestCriticalSwap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.BestCriticalSwap()
	}
}

// BenchmarkCachedScanRevalidate measures the event-driven path: one
// committed move dirties two machines, the next query re-sweeps exactly
// those and folds the rest from the memo — the O(changed) cost the delta
// engine replaces the O(M) full sweep with. 0 allocs/op, CI-guarded.
func BenchmarkCachedScanRevalidate(b *testing.B) {
	in := etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: 1, Jobs: 512, Machs: 16})
	r := rng.New(7)
	st := NewState(in, NewRandom(in, r))
	sc := st.Scans(DefaultObjective)
	sc.BestCriticalSwap()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Move(r.Intn(in.Jobs), r.Intn(in.Machs))
		sc.BestCriticalSwap()
	}
}
