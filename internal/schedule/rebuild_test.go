package schedule

import (
	"slices"
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
)

// refEval is the historical rebuild, reimplemented naively: bucket the
// jobs per machine, sort each bucket with a SortFunc over the At
// accessor, and resum completions and flowtime in list order. The bucket
// rebuild in state.go must reproduce every list, every prefix sum and
// every scalar bit for bit against this reference — (ETC, id) is a total
// order, so the sorted lists are unique regardless of how they were
// produced.
func refEval(in *etc.Instance, s Schedule) (machJobs [][]int32, cumC, cumF [][]float64, completion []float64, flowtime float64) {
	machJobs = make([][]int32, in.Machs)
	for j, m := range s {
		machJobs[m] = append(machJobs[m], int32(j))
	}
	cumC = make([][]float64, in.Machs)
	cumF = make([][]float64, in.Machs)
	completion = make([]float64, in.Machs)
	for m := range machJobs {
		slices.SortFunc(machJobs[m], func(a, b int32) int {
			ea, eb := in.At(int(a), m), in.At(int(b), m)
			switch {
			case ea < eb:
				return -1
			case ea > eb:
				return 1
			default:
				return int(a - b)
			}
		})
		t := in.Ready[m]
		f := 0.0
		for _, j := range machJobs[m] {
			t += in.At(int(j), m)
			f += t
			cumC[m] = append(cumC[m], t)
			cumF[m] = append(cumF[m], f)
		}
		completion[m] = t
		flowtime += f
	}
	return
}

func checkAgainstRef(t *testing.T, tag string, in *etc.Instance, s Schedule, st *State) {
	t.Helper()
	jobs, cumC, cumF, completion, flowtime := refEval(in, s)
	for m := 0; m < in.Machs; m++ {
		if !slices.Equal(st.JobsOn(m), jobs[m]) {
			t.Fatalf("%s: machine %d jobs = %v, want %v", tag, m, st.JobsOn(m), jobs[m])
		}
		if !slices.Equal(st.machCumC[m], cumC[m]) || !slices.Equal(st.machCumF[m], cumF[m]) {
			t.Fatalf("%s: machine %d prefix sums differ", tag, m)
		}
		if st.Completion(m) != completion[m] {
			t.Fatalf("%s: completion[%d] = %v, want %v", tag, m, st.Completion(m), completion[m])
		}
		for k, j := range jobs[m] {
			if st.slot[j] != int32(k) {
				t.Fatalf("%s: slot[%d] = %d, want %d", tag, j, st.slot[j], k)
			}
		}
	}
	if st.Flowtime() != flowtime {
		t.Fatalf("%s: flowtime = %v, want %v", tag, st.Flowtime(), flowtime)
	}
}

// TestRebuildBucketDifferential pins the bucket rebuild against the
// reference evaluation across random, tie-heavy and float32-backed
// instances, and across SetSchedule transitions that drift the per-machine
// counts (including a full pile-up on one machine, which forces regions
// far beyond the balanced slack).
func TestRebuildBucketDifferential(t *testing.T) {
	f32 := func(jobs, machs int, seed uint64) *etc.Instance {
		g := etc.GenSpec{Jobs: jobs, Machs: machs,
			Class: etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
			Seed:  seed, Float32: true}
		in, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	instances := []*etc.Instance{
		randInstance(11, 64, 8),
		randInstance(12, 96, 5),
		randInstance(13, 30, 1),
		tieInstance(60, 8, 14), // integer ETC: the id tie-break binds
		tieInstance(48, 4, 15),
		f32(64, 8, 16),
		f32(40, 6, 17),
	}
	for i, in := range instances {
		r := rng.New(uint64(100 + i))
		s := make(Schedule, in.Jobs)
		for j := range s {
			s[j] = r.Intn(in.Machs)
		}
		st := NewState(in, s)
		checkAgainstRef(t, in.Name+"/new", in, s, st)

		// Re-point the same state at fresh schedules: the carve must
		// track count drift without corrupting neighbours.
		for round := 0; round < 5; round++ {
			for j := range s {
				s[j] = r.Intn(in.Machs)
			}
			st.SetSchedule(s)
			checkAgainstRef(t, in.Name+"/drift", in, s, st)
		}

		// Extreme skew: every job on one machine, then back to spread.
		for j := range s {
			s[j] = 0
		}
		st.SetSchedule(s)
		checkAgainstRef(t, in.Name+"/skew", in, s, st)
		for j := range s {
			s[j] = r.Intn(in.Machs)
		}
		st.SetSchedule(s)
		checkAgainstRef(t, in.Name+"/respread", in, s, st)

		// Clone and CopyFrom route list copies through the same regions.
		cp := st.Clone()
		checkAgainstRef(t, in.Name+"/clone", in, s, cp)
		other := NewState(in, make(Schedule, in.Jobs))
		other.CopyFrom(st)
		checkAgainstRef(t, in.Name+"/copyfrom", in, s, other)
	}
}

// BenchmarkRebuildBucket is the steady-state SetSchedule path under the
// bucket rebuild: re-pointing a warm State at alternating schedules must
// not allocate (CI's allocation guard runs this at -benchtime 1x).
func BenchmarkRebuildBucket(b *testing.B) {
	in := randInstance(1, 512, 16)
	r := rng.New(2)
	a := make(Schedule, in.Jobs)
	c := make(Schedule, in.Jobs)
	for j := range a {
		a[j] = r.Intn(in.Machs)
		c[j] = r.Intn(in.Machs)
	}
	st := NewState(in, a)
	st.SetSchedule(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			st.SetSchedule(a)
		} else {
			st.SetSchedule(c)
		}
	}
}
