package schedule

import (
	"fmt"
	"slices"

	"gridcma/internal/etc"
)

// State is an incrementally maintained evaluation of one schedule.
//
// Per machine it tracks the set of assigned jobs sorted ascending by ETC
// (shortest-processing-time order, the per-machine sequencing convention
// for flowtime on this benchmark), the completion time
//
//	completion[m] = ready[m] + Σ_{j on m} ETC[j][m]
//
// and the machine's flowtime contribution. Move and Swap update these in
// O(jobs-on-machine); the machine completions additionally feed an indexed
// tournament tree (maxtree.go) maintained in O(log M) per machine refresh,
// which makes Makespan and MakespanMachine O(1) reads and answers the
// "max completion excluding machine(s)" query behind the speculative
// FitnessAfterMove / FitnessAfterSwap probes (probe.go).
type State struct {
	inst *etc.Instance
	// etc64 is inst.ETC, hoisted at construction: the per-element replay
	// loops (probe.go, refreshMachine, rebuild's key fill) index it
	// directly when the instance has the float64 backing, falling back to
	// the At accessor under the narrow float32 backing — one predictable
	// branch per call instead of one per matrix read, which measurably
	// matters in the sub-microsecond cached-scan path.
	etc64    []float64
	assign   Schedule
	machJobs [][]int32 // per machine, job ids sorted by (ETC, id)
	slot     []int32   // slot[j] = index of job j within machJobs[assign[j]]
	// machCumC[m][k] / machCumF[m][k] are the running completion and
	// flowtime of machine m after its k-th job — refreshMachine's partial
	// sums, recorded as they are produced. A speculative probe reuses the
	// prefix before the edited slot verbatim (the bits are refreshMachine's
	// own) and only resums the suffix, halving its work on average.
	machCumC   [][]float64
	machCumF   [][]float64
	completion []float64
	machFlow   []float64
	flowtime   float64
	top        maxTree // argmax over completion, O(log M) maintenance

	// Change tracking for the event-driven scan cache (scancache.go).
	// epoch counts committed mutations; machEpoch[m] is the epoch of
	// machine m's last content change — a cached per-machine scan result
	// is valid exactly while the machine's epoch is unchanged. The dirty
	// set (mark + id list, both bounded by the machine count) is the
	// commit event log: a Move or Swap marks its source and target
	// machines, plus the old and new critical machine when the tournament
	// tree's root moved. The attached ScanCache drains it on every query;
	// wholesale re-evaluations (SetSchedule, CopyFrom, rebuild) clear it
	// outright, because bumping every machine's epoch already invalidates
	// every cached entry — a pooled state is therefore reused with an
	// empty dirty set, never carrying pending marks across runs.
	epoch     uint64
	machEpoch []uint64
	dirtyIDs  []int32
	dirtyMark []bool

	// Output buffers of the batched sweep kernels (sweep.go), owned by
	// the state so the stateless search methods stay allocation-free.
	// Pure scratch: lazily grown, never read across calls, not part of
	// the state's value (Clone starts them empty, CopyFrom leaves them
	// alone).
	sweepFit []float64
	sweepA   []float64
	sweepB   []float64
	swapScan SwapScan

	// Scratch of SetScheduleDiff: changed job ids, changed machine ids and
	// the per-machine membership mark. Pure scratch like the sweep buffers
	// (lazily grown, empty between calls, not part of the state's value).
	diffJobs  []int32
	diffMachs []int32
	diffMark  []bool

	// scanExempt[m] excludes machine m from the cached critical-swap
	// sweep (SetScanExempt). Nil when no machine is exempt.
	scanExempt []bool

	// sampleIDs backs the batched sampled-partner draws of
	// SampledLMCTSBatch (localsearch): partner ids drawn upfront, sorted
	// machine-grouped, scanned through BeginSwapScanIDs.
	sampleIDs []int32

	// Region backing of the per-machine lists: machJobs/machCumC/machCumF
	// are carved out of these three arrays by ensureRegions, each machine
	// getting a capacity-capped region (three-index slices) sized
	// max(count, slack). A rebuild or CopyFrom re-carves in O(M) from the
	// same arrays — reallocating all three only when the total need
	// outgrows the backing — so per-machine count drift never triggers
	// per-machine reallocation. counts/regOff are the carving scratch and
	// jobKey the rebuild's sort-key cache (jobKey[j] = ETC[j][assign[j]],
	// so bucket sorting compares against a J-sized array instead of
	// gathering from a frontier-scale matrix).
	backing  []int32
	backCumC []float64
	backCumF []float64
	counts   []int32
	regOff   []int32
	jobKey   []float64

	// scanCache is the event-driven memo layer over the sweep kernels
	// (scancache.go), lazily sized by Scans. Like the sweep scratch it is
	// not part of the state's value: Clone and CopyFrom leave it cold and
	// the machine epochs make every stale entry self-invalidating.
	scanCache ScanCache
}

// NewState evaluates s against in. The schedule is copied; the State owns
// its copy and keeps it in sync under Move/Swap.
func NewState(in *etc.Instance, s Schedule) *State {
	if err := s.Validate(in); err != nil {
		panic(err)
	}
	st := &State{
		inst:       in,
		etc64:      in.ETC,
		assign:     s.Clone(),
		machJobs:   make([][]int32, in.Machs),
		machCumC:   make([][]float64, in.Machs),
		machCumF:   make([][]float64, in.Machs),
		slot:       make([]int32, in.Jobs),
		completion: make([]float64, in.Machs),
		machFlow:   make([]float64, in.Machs),
		machEpoch:  make([]uint64, in.Machs),
		dirtyIDs:   make([]int32, 0, in.Machs),
		dirtyMark:  make([]bool, in.Machs),
		counts:     make([]int32, in.Machs),
		regOff:     make([]int32, in.Machs+1),
	}
	st.top.init(in.Machs)
	st.rebuild()
	return st
}

// ensureRegions re-carves the per-machine lists out of the shared backing
// arrays: machine m gets an empty region of capacity max(counts[m], slack)
// where slack is twice the balanced share plus headroom (Move and insert
// then rarely outgrow a region; one that does reallocates on its own
// until the next carve reabsorbs it). The three backing arrays are
// reallocated only when the total need exceeds their capacity — count
// drift between machines re-slices in O(M) without allocating, which is
// what keeps SetSchedule allocation-free in the per-offspring hot loop at
// any instance scale.
func (st *State) ensureRegions(counts []int32) {
	machs := len(st.machJobs)
	slack := int32(2*len(st.assign)/machs + 8)
	off := st.regOff
	need := int32(0)
	for m, c := range counts {
		off[m] = need
		if c < slack {
			c = slack
		}
		need += c
	}
	off[machs] = need
	if cap(st.backing) < int(need) {
		st.backing = make([]int32, need)
		st.backCumC = make([]float64, need)
		st.backCumF = make([]float64, need)
	}
	b := st.backing[:need]
	bc := st.backCumC[:need]
	bf := st.backCumF[:need]
	for m := range st.machJobs {
		s, e := off[m], off[m+1]
		st.machJobs[m] = b[s:s:e]
		st.machCumC[m] = bc[s:s:e]
		st.machCumF[m] = bf[s:s:e]
	}
}

// rebuild recomputes all derived state from st.assign. Every machine's
// content changes, so every machine advances to a fresh epoch and the
// pending dirty set is cleared — the epoch bump subsumes it.
//
// The pass is bucket-by-machine over the shared backing: count each
// machine's jobs, carve regions, drop every job into its machine's bucket
// in ascending job order, then sort each bucket by (ETC, id) against the
// jobKey cache. (ETC, id) is a total order, so the sorted buckets — and
// every downstream prefix sum — are byte-identical to the historical
// per-machine SortFunc over At; the differential test in
// rebuild_test.go pins this, ETC ties included. The key cache matters at
// frontier scale: comparators touch a J-sized array with high locality
// instead of gather-loading a multi-hundred-MB matrix.
func (st *State) rebuild() {
	st.touchAll()
	counts := st.counts
	for m := range counts {
		counts[m] = 0
	}
	for _, m := range st.assign {
		counts[m]++
	}
	st.ensureRegions(counts)
	for j, m := range st.assign {
		st.machJobs[m] = append(st.machJobs[m], int32(j))
	}
	jobs := len(st.assign)
	if cap(st.jobKey) < jobs {
		st.jobKey = make([]float64, jobs)
	}
	key := st.jobKey[:jobs]
	if e := st.etc64; e != nil {
		machs := st.inst.Machs
		for j, m := range st.assign {
			key[j] = e[j*machs+m]
		}
	} else {
		for j, m := range st.assign {
			key[j] = st.inst.At(j, m)
		}
	}
	cmp := func(a, b int32) int {
		ka, kb := key[a], key[b]
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		default:
			return int(a - b)
		}
	}
	st.flowtime = 0
	for m := range st.machJobs {
		bucket := st.machJobs[m]
		slices.SortFunc(bucket, cmp)
		for k, j := range bucket {
			st.slot[j] = int32(k)
		}
		st.refreshMachine(m)
		st.flowtime += st.machFlow[m]
	}
}

// less orders jobs on machine m by (ETC, job id); the id tiebreak makes the
// per-machine order — and therefore flowtime — deterministic.
func (st *State) less(a, b int32, m int) bool {
	var ea, eb float64
	if e := st.etc64; e != nil {
		machs := st.inst.Machs
		ea, eb = e[int(a)*machs+m], e[int(b)*machs+m]
	} else {
		ea, eb = st.inst.At(int(a), m), st.inst.At(int(b), m)
	}
	if ea != eb {
		return ea < eb
	}
	return a < b
}

// refreshMachine recomputes completion and flowtime of machine m from its
// (already sorted) job list, recording the per-slot partial sums the
// speculative probes reuse.
func (st *State) refreshMachine(m int) {
	jobs := st.machJobs[m]
	cumC := st.machCumC[m][:0]
	cumF := st.machCumF[m][:0]
	t := st.inst.Ready[m]
	flow := 0.0
	if e := st.etc64; e != nil {
		machs := st.inst.Machs
		for _, j := range jobs {
			t += e[int(j)*machs+m]
			flow += t
			cumC = append(cumC, t)
			cumF = append(cumF, flow)
		}
	} else {
		for _, j := range jobs {
			t += st.inst.At(int(j), m)
			flow += t
			cumC = append(cumC, t)
			cumF = append(cumF, flow)
		}
	}
	st.machCumC[m] = cumC
	st.machCumF[m] = cumF
	st.completion[m] = t
	st.machFlow[m] = flow
	st.top.update(m, t)
}

// touchAll advances every machine to a fresh epoch and clears the dirty
// set: the wholesale invalidation of rebuild, SetSchedule and CopyFrom.
func (st *State) touchAll() {
	st.epoch++
	for m := range st.machEpoch {
		st.machEpoch[m] = st.epoch
	}
	st.drainDirty()
}

// markDirty records machine m in the commit event log (idempotent per
// drain interval; the list is bounded by the machine count).
func (st *State) markDirty(m int) {
	if !st.dirtyMark[m] {
		st.dirtyMark[m] = true
		st.dirtyIDs = append(st.dirtyIDs, int32(m))
		dirtyAuditAdd(1)
	}
}

// drainDirty consumes the event log: clears every mark and empties the
// list. The machine epochs remain the validity truth, so draining never
// loses information — it only acknowledges that the observer (the scan
// cache, or a wholesale re-evaluation) has caught up.
func (st *State) drainDirty() {
	if len(st.dirtyIDs) == 0 {
		return
	}
	dirtyAuditAdd(-int64(len(st.dirtyIDs)))
	for _, m := range st.dirtyIDs {
		st.dirtyMark[m] = false
	}
	st.dirtyIDs = st.dirtyIDs[:0]
}

// noteCommit is the Move/Swap commit hook: machines m1 and m2 changed
// content (they advance to a fresh epoch and enter the dirty set), and if
// the tournament tree's root — the critical machine — moved across the
// commit, the old and new critical machines are marked too, so an
// event-driven consumer sees every machine whose role in the next scan
// changed, not just the two whose lists did.
func (st *State) noteCommit(m1, m2, critBefore int) {
	st.epoch++
	st.machEpoch[m1] = st.epoch
	st.machEpoch[m2] = st.epoch
	st.markDirty(m1)
	st.markDirty(m2)
	if critAfter := st.top.argmax(); critAfter != critBefore {
		st.markDirty(critBefore)
		st.markDirty(critAfter)
	}
}

// SyncScans drains the pending dirty set. Search loops that commit moves
// call it before handing the state back (to a pool, or to their caller),
// so a state never carries pending invalidation events out of a run —
// the leak invariant the dirty-set audit (DirtyAuditStart) checks. The
// scan cache drains on every query, so this is only needed when the last
// action was a commit.
func (st *State) SyncScans() { st.drainDirty() }

// PendingDirty reports how many machines are in the commit event log —
// zero whenever the scan cache (or SyncScans) has caught up. White-box
// tests use it to pin the drain discipline.
func (st *State) PendingDirty() int { return len(st.dirtyIDs) }

// DirtyMachines returns the machines currently in the commit event log.
// Callers must not mutate the returned slice; it is valid until the next
// commit or drain.
func (st *State) DirtyMachines() []int32 { return st.dirtyIDs }

// SetScanExempt excludes machine m from (or re-admits it to) the cached
// critical-swap sweep: BestCriticalSwap never scans an exempt machine's
// jobs and never proposes a swap involving them. The caller asserts that
// no such swap can ever be accepted anyway — the use case is a host
// keeping placeholder jobs on a dedicated machine whose swap candidates
// are all blocked by construction (huge ETC entries), as the online
// scheduler daemon does with its parking column. Exempting a machine
// whose jobs could win an improving swap silently narrows the search
// neighborhood; the bit-identity contract then reads "equals a full
// rescan over the non-exempt machines".
//
// The flag is part of the state's search configuration, not its value:
// Clone carries it over, CopyFrom leaves the destination's flags alone,
// and no epoch moves — cached entries stay valid, they are simply
// skipped (and re-validated by epoch as usual if re-admitted).
func (st *State) SetScanExempt(m int, exempt bool) {
	if st.scanExempt == nil {
		if !exempt {
			return
		}
		st.scanExempt = make([]bool, len(st.machJobs))
	}
	st.scanExempt[m] = exempt
}

// Epoch returns the state's mutation counter; MachEpoch the epoch of
// machine m's last content change. A cached per-machine result computed
// at MachEpoch(m) stays exact while that value is unchanged.
func (st *State) Epoch() uint64          { return st.epoch }
func (st *State) MachEpoch(m int) uint64 { return st.machEpoch[m] }

// Instance returns the instance this state evaluates against.
func (st *State) Instance() *etc.Instance { return st.inst }

// Assign returns the machine currently running job j.
func (st *State) Assign(j int) int { return st.assign[j] }

// Schedule returns a copy of the current schedule.
func (st *State) Schedule() Schedule { return st.assign.Clone() }

// ScheduleView returns the underlying schedule without copying. Callers
// must not mutate it; use Move/Swap instead.
func (st *State) ScheduleView() Schedule { return st.assign }

// Completion returns the completion time of machine m.
func (st *State) Completion(m int) float64 { return st.completion[m] }

// JobsOn returns the jobs of machine m in SPT order. Callers must not
// mutate the returned slice.
func (st *State) JobsOn(m int) []int32 { return st.machJobs[m] }

// Makespan returns the finishing time of the latest machine. It is an
// O(1) read of the completion tournament tree (never below 0, matching
// the historical linear scan that started its maximum at zero).
func (st *State) Makespan() float64 {
	if m := st.top.max(); m > 0 {
		return m
	}
	return 0
}

// MakespanMachine returns the index of the machine attaining the
// makespan, in O(1). Tie-breaking is a documented contract: when several
// machines share the maximal completion time, the lowest machine index
// wins. LMCTS derives its critical machine from this, so the choice is
// pinned by a regression test (TestMakespanMachineTieBreak) — an
// implementation that returned any other tied machine would silently
// change which swaps the tuned local search considers.
func (st *State) MakespanMachine() int {
	return st.top.argmax()
}

// MakespanExcluding returns the largest completion time among machines
// other than m, or -Inf when m is the only machine — the query behind
// the speculative fitness probes. O(log M).
func (st *State) MakespanExcluding(m int) float64 {
	return st.top.maxExcluding(m)
}

// Flowtime returns the sum of job finishing times.
func (st *State) Flowtime() float64 { return st.flowtime }

// MeanFlowtime returns flowtime divided by the number of machines, the
// magnitude-normalised quantity the paper's fitness uses.
func (st *State) MeanFlowtime() float64 {
	return st.flowtime / float64(st.inst.Machs)
}

// remove deletes job j from machine m's list; the caller refreshes. The
// job's index is read from the slot table in O(1) instead of scanning the
// list; only the slots of the jobs shifted down need repair.
func (st *State) remove(j int, m int) {
	jobs := st.machJobs[m]
	k := int(st.slot[j])
	if k >= len(jobs) || jobs[k] != int32(j) {
		panic(fmt.Sprintf("schedule: job %d not on machine %d", j, m))
	}
	for ; k < len(jobs)-1; k++ {
		v := jobs[k+1]
		jobs[k] = v
		st.slot[v] = int32(k)
	}
	st.machJobs[m] = jobs[:len(jobs)-1]
}

// insert places job j into machine m's list keeping SPT order. The
// position comes from insertPos (probe.go) — the same binary search the
// speculative probes replay, so commit and probe can never disagree on
// placement.
func (st *State) insert(j int, m int) {
	jobs := st.machJobs[m]
	lo := st.insertPos(m, int32(j))
	jobs = append(jobs, 0)
	for i := len(jobs) - 1; i > lo; i-- {
		v := jobs[i-1]
		jobs[i] = v
		st.slot[v] = int32(i)
	}
	jobs[lo] = int32(j)
	st.slot[j] = int32(lo)
	st.machJobs[m] = jobs
}

// Move reassigns job j to machine to, updating all derived quantities.
// Moving a job to its current machine is a no-op.
func (st *State) Move(j, to int) {
	from := st.assign[j]
	if from == to {
		return
	}
	crit := st.top.argmax()
	st.flowtime -= st.machFlow[from] + st.machFlow[to]
	st.remove(j, from)
	st.insert(j, to)
	st.assign[j] = to
	st.refreshMachine(from)
	st.refreshMachine(to)
	st.flowtime += st.machFlow[from] + st.machFlow[to]
	st.noteCommit(from, to, crit)
}

// Swap exchanges the machines of jobs a and b. Swapping jobs on the same
// machine is a no-op.
func (st *State) Swap(a, b int) {
	ma, mb := st.assign[a], st.assign[b]
	if ma == mb {
		return
	}
	crit := st.top.argmax()
	st.flowtime -= st.machFlow[ma] + st.machFlow[mb]
	st.remove(a, ma)
	st.remove(b, mb)
	st.insert(a, mb)
	st.insert(b, ma)
	st.assign[a], st.assign[b] = mb, ma
	st.refreshMachine(ma)
	st.refreshMachine(mb)
	st.flowtime += st.machFlow[ma] + st.machFlow[mb]
	st.noteCommit(ma, mb, crit)
}

// CompletionAfterMove returns, in O(1), the completion times the source and
// target machines would have if job j moved to machine to. It does not
// modify the state.
func (st *State) CompletionAfterMove(j, to int) (fromC, toC float64) {
	from := st.assign[j]
	e := st.inst.At(j, from)
	if from == to {
		return st.completion[from], st.completion[to]
	}
	return st.completion[from] - e, st.completion[to] + st.inst.At(j, to)
}

// CompletionAfterSwap returns, in O(1), the completion times machines of a
// and b would have after swapping the two jobs. Requires the jobs to be on
// different machines.
func (st *State) CompletionAfterSwap(a, b int) (aC, bC float64) {
	ma, mb := st.assign[a], st.assign[b]
	ea, eb := st.inst.At(a, ma), st.inst.At(b, mb)
	return st.completion[ma] - ea + st.inst.At(b, ma),
		st.completion[mb] - eb + st.inst.At(a, mb)
}

// SetSchedule replaces the whole schedule and re-evaluates, reusing the
// state's buffers. It is the allocation-light way to re-point a scratch
// State at a new candidate solution in hot loops.
func (st *State) SetSchedule(s Schedule) {
	if err := s.Validate(st.inst); err != nil {
		panic(err)
	}
	st.assign.CopyFrom(s)
	st.rebuild()
}

// SetScheduleDiff replaces the schedule like SetSchedule but by diffing s
// against the current assignment: only jobs whose machine changed are
// re-listed, only machines whose job sets changed are refreshed, and only
// those machines advance to a fresh epoch and enter the dirty set (plus
// the old and new critical machine when the tournament root moves,
// mirroring the Move/Swap commit hook). Every cached scan result of an
// untouched machine therefore stays valid — the warm-start admission path
// of the online daemon and cache-aware island migration both depend on
// this, where SetSchedule's wholesale epoch bump would cold-start the
// event-driven scan cache on every batch commit.
//
// The resulting value state is bit-identical to SetSchedule(s): the
// per-machine job lists are (ETC, id)-sorted sets, so they are order
// independent of how the diff is applied; refreshMachine resums each
// changed machine with the exact arithmetic rebuild uses; and the state
// flowtime is re-folded canonically (Σ machFlow in ascending machine
// order — rebuild's own accumulation order) rather than diff-adjusted,
// which keeps the fitness bits equal to a from-scratch evaluation. Only
// the epoch/dirty bookkeeping differs, by design. Pinned by the
// differential tests in statediff_test.go.
func (st *State) SetScheduleDiff(s Schedule) {
	if err := s.Validate(st.inst); err != nil {
		panic(err)
	}
	if st.diffMark == nil {
		st.diffMark = make([]bool, len(st.machJobs))
	}
	st.diffJobs = st.diffJobs[:0]
	st.diffMachs = st.diffMachs[:0]
	for j, m := range s {
		from := st.assign[j]
		if from == m {
			continue
		}
		st.diffJobs = append(st.diffJobs, int32(j))
		if !st.diffMark[from] {
			st.diffMark[from] = true
			st.diffMachs = append(st.diffMachs, int32(from))
		}
		if !st.diffMark[m] {
			st.diffMark[m] = true
			st.diffMachs = append(st.diffMachs, int32(m))
		}
	}
	if len(st.diffJobs) == 0 {
		return
	}
	crit := st.top.argmax()
	// Remove in descending job order: a removal shifts only the list tail
	// behind it, so draining a long (e.g. parking) machine back to front
	// touches each surviving element at most once.
	for i := len(st.diffJobs) - 1; i >= 0; i-- {
		j := st.diffJobs[i]
		st.remove(int(j), st.assign[j])
	}
	for _, j := range st.diffJobs {
		to := s[j]
		st.assign[j] = to
		st.insert(int(j), to)
	}
	st.epoch++
	for _, m := range st.diffMachs {
		st.diffMark[m] = false
		st.machEpoch[m] = st.epoch
		st.markDirty(int(m))
		st.refreshMachine(int(m))
	}
	st.flowtime = 0
	for m := range st.machFlow {
		st.flowtime += st.machFlow[m]
	}
	if critAfter := st.top.argmax(); critAfter != crit {
		st.markDirty(crit)
		st.markDirty(critAfter)
	}
}

// InvalidateMachine advances machine m to a fresh epoch and marks it
// dirty without touching its contents. Callers that mutate inputs the
// state cannot observe — the online daemon rewrites a machine's ETC
// column when grid membership changes — use it to force every cached
// scan result involving the machine to be recomputed on the next query.
// The machine must hold no jobs whose list order the rewritten column
// would change; the daemon guarantees that by only rewriting columns of
// empty (joined or vacated) machines.
func (st *State) InvalidateMachine(m int) {
	st.epoch++
	st.machEpoch[m] = st.epoch
	st.markDirty(m)
}

// RefreshFlowtime re-folds the state flowtime canonically: Σ machFlow in
// ascending machine order, the exact accumulation rebuild performs. Move
// and Swap maintain flowtime with a subtract-then-add update whose float
// bits drift from the canonical fold over long commit sequences (the
// value is exact to rounding either way); a checkpointing caller — the
// daemon canonicalises at every event boundary — refolds so that a state
// restored from a snapshot (which rebuilds, and therefore folds) is
// bit-identical to the live state it was taken from. The per-machine
// flows are refreshMachine products and need no refold. The state epoch
// advances so cached fitness contexts recapture; machine contents are
// untouched, so no machine epoch moves and no dirty mark is added.
func (st *State) RefreshFlowtime() {
	st.flowtime = 0
	for m := range st.machFlow {
		st.flowtime += st.machFlow[m]
	}
	st.epoch++
}

// copyListsFrom re-carves st's per-machine regions to src's counts and
// copies src's lists and prefix sums into them. The regions come out of
// ensureRegions with capacity ≥ count, so the appends never reallocate:
// list copying costs three bulk memmoves' worth of element copies and at
// most one backing growth, independent of the machine count.
func (st *State) copyListsFrom(src *State) {
	counts := st.counts
	for m := range counts {
		counts[m] = int32(len(src.machJobs[m]))
	}
	st.ensureRegions(counts)
	for m := range st.machJobs {
		st.machJobs[m] = append(st.machJobs[m], src.machJobs[m]...)
		st.machCumC[m] = append(st.machCumC[m], src.machCumC[m]...)
		st.machCumF[m] = append(st.machCumF[m], src.machCumF[m]...)
	}
}

// Clone returns an independent copy of the state. The per-machine lists
// land in a freshly carved region backing — a handful of allocations
// total, not three per machine.
func (st *State) Clone() *State {
	machs := len(st.machJobs)
	cp := &State{
		inst:       st.inst,
		etc64:      st.etc64,
		assign:     st.assign.Clone(),
		machJobs:   make([][]int32, machs),
		machCumC:   make([][]float64, machs),
		machCumF:   make([][]float64, machs),
		slot:       append([]int32(nil), st.slot...),
		completion: append([]float64(nil), st.completion...),
		machFlow:   append([]float64(nil), st.machFlow...),
		flowtime:   st.flowtime,
		top:        st.top.clone(),
		epoch:      st.epoch,
		machEpoch:  append([]uint64(nil), st.machEpoch...),
		dirtyIDs:   make([]int32, 0, machs),
		dirtyMark:  make([]bool, machs),
		counts:     make([]int32, machs),
		regOff:     make([]int32, machs+1),
	}
	if st.scanExempt != nil {
		cp.scanExempt = append([]bool(nil), st.scanExempt...)
	}
	cp.copyListsFrom(st)
	return cp
}

// CopyFrom makes st an exact copy of src (same instance), reusing buffers.
func (st *State) CopyFrom(src *State) {
	if st.inst != src.inst {
		panic("schedule: CopyFrom across instances")
	}
	st.touchAll()
	st.assign.CopyFrom(src.assign)
	copy(st.slot, src.slot)
	copy(st.completion, src.completion)
	copy(st.machFlow, src.machFlow)
	st.flowtime = src.flowtime
	st.top.copyFrom(&src.top)
	st.copyListsFrom(src)
}

// MemStats is the state's resident footprint by component, counting
// capacities (pooled headroom included) but not the shared ETC instance —
// that is etc.Instance.Bytes. BytesPerJob is the scale-governing ratio
// the frontier benchmark reports: everything here is O(J + M), so the
// ratio must stay a small constant as instances grow.
type MemStats struct {
	Jobs, Machs  int
	AssignBytes  int // schedule vector, slot table, rebuild key cache
	ListBytes    int // per-machine job-id lists (shared region backing)
	PrefixBytes  int // per-slot completion/flowtime prefix sums
	MachineBytes int // per-machine scalars, epochs, tournament tree, carve scratch
	ScratchBytes int // sweep/diff/sample scratch and the scan-cache memo
	TotalBytes   int
	BytesPerJob  float64
}

// MemStats gauges the state's current memory footprint. Per-machine lists
// are accounted through the shared backing arrays; a list that outgrew
// its region (rare, reabsorbed at the next carve) carries a private
// allocation this gauge does not see.
func (st *State) MemStats() MemStats {
	ms := MemStats{Jobs: len(st.assign), Machs: len(st.machJobs)}
	ms.AssignBytes = cap(st.assign)*8 + cap(st.slot)*4 + cap(st.jobKey)*8
	ms.ListBytes = cap(st.backing) * 4
	ms.PrefixBytes = (cap(st.backCumC) + cap(st.backCumF)) * 8
	ms.MachineBytes = (cap(st.completion)+cap(st.machFlow))*8 +
		cap(st.machEpoch)*8 + cap(st.dirtyIDs)*4 + cap(st.dirtyMark) +
		(cap(st.counts)+cap(st.regOff))*4 +
		cap(st.top.win)*4 + cap(st.top.val)*8 +
		(len(st.machJobs)+len(st.machCumC)+len(st.machCumF))*24 // slice headers
	ms.ScratchBytes = (cap(st.sweepFit)+cap(st.sweepA)+cap(st.sweepB))*8 +
		(cap(st.diffJobs)+cap(st.diffMachs))*4 + cap(st.diffMark) +
		cap(st.scanExempt) + cap(st.sampleIDs)*4 +
		(cap(st.swapScan.u)+cap(st.swapScan.v))*8 +
		(cap(st.swapScan.ids)+cap(st.swapScan.segM)+cap(st.swapScan.off))*4 +
		cap(st.scanCache.entryEpoch)*8 + cap(st.scanCache.entryVal)*8 +
		(cap(st.scanCache.entryAPos)+cap(st.scanCache.entryB))*4
	ms.TotalBytes = ms.AssignBytes + ms.ListBytes + ms.PrefixBytes +
		ms.MachineBytes + ms.ScratchBytes
	if ms.Jobs > 0 {
		ms.BytesPerJob = float64(ms.TotalBytes) / float64(ms.Jobs)
	}
	return ms
}
