package schedule

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Gantt renders an ASCII per-machine timeline of the evaluated schedule,
// width columns wide, scaled to the makespan. Each machine row shows its
// busy span ('█' for ready time carried over, '▒' for scheduled work),
// its completion time and job count — the quick visual answer to "is this
// schedule balanced?".
func (st *State) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	ms := st.Makespan()
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.2f  flowtime %.2f  (%d jobs on %d machines)\n",
		ms, st.Flowtime(), st.inst.Jobs, st.inst.Machs)
	if ms == 0 {
		return b.String()
	}
	scale := float64(width) / ms
	for m := 0; m < st.inst.Machs; m++ {
		ready := st.inst.Ready[m]
		comp := st.Completion(m)
		readyCols := int(ready * scale)
		busyCols := int((comp - ready) * scale)
		if comp > ready && busyCols == 0 {
			busyCols = 1 // visible sliver for tiny loads
		}
		if readyCols+busyCols > width {
			busyCols = width - readyCols
		}
		fmt.Fprintf(&b, "m%02d |%s%s%s| %10.2f  (%d jobs)\n",
			m,
			strings.Repeat("█", readyCols),
			strings.Repeat("▒", busyCols),
			strings.Repeat(" ", width-readyCols-busyCols),
			comp, len(st.JobsOn(m)))
	}
	return b.String()
}

// WriteAssignments writes the schedule as CSV rows
// (job, machine, etc, start, finish), with jobs in per-machine SPT order —
// loadable into any plotting tool for a real Gantt chart.
func (st *State) WriteAssignments(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("job,machine,etc,start,finish\n"); err != nil {
		return err
	}
	for m := 0; m < st.inst.Machs; m++ {
		t := st.inst.Ready[m]
		for _, j := range st.JobsOn(m) {
			e := st.inst.At(int(j), m)
			fmt.Fprintf(bw, "%d,%d,%.6f,%.6f,%.6f\n", j, m, e, t, t+e)
			t += e
		}
	}
	return bw.Flush()
}

// LoadSummary returns per-machine (completion, jobs) pairs plus the
// imbalance ratio max/mean completion — 1.0 is a perfectly balanced
// schedule.
func (st *State) LoadSummary() (completions []float64, jobs []int, imbalance float64) {
	completions = make([]float64, st.inst.Machs)
	jobs = make([]int, st.inst.Machs)
	sum := 0.0
	max := 0.0
	for m := 0; m < st.inst.Machs; m++ {
		completions[m] = st.Completion(m)
		jobs[m] = len(st.JobsOn(m))
		sum += completions[m]
		if completions[m] > max {
			max = completions[m]
		}
	}
	mean := sum / float64(st.inst.Machs)
	if mean > 0 {
		imbalance = max / mean
	}
	return completions, jobs, imbalance
}
