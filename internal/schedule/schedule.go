// Package schedule defines the solution representation shared by every
// scheduler in this library and an incremental evaluator for the two
// objectives of the paper, makespan and flowtime.
//
// A schedule is the paper's direct representation: a vector of length
// nb_jobs whose j-th entry is the machine that runs job j. The evaluator
// (State) maintains per-machine completion times and flowtime under
// single-job moves and two-job swaps, which is what makes the local search
// methods (LM, SLM, LMCTS) and the rebalance mutation affordable inside a
// tight time budget.
package schedule

import (
	"fmt"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
)

// Schedule maps each job to the machine that executes it.
type Schedule []int

// NewRandom returns a uniformly random schedule for the instance.
func NewRandom(in *etc.Instance, r *rng.Source) Schedule {
	s := make(Schedule, in.Jobs)
	for j := range s {
		s[j] = r.Intn(in.Machs)
	}
	return s
}

// Clone returns an independent copy.
func (s Schedule) Clone() Schedule {
	return append(Schedule(nil), s...)
}

// CopyFrom overwrites s with src (lengths must match).
func (s Schedule) CopyFrom(src Schedule) {
	if len(s) != len(src) {
		panic(fmt.Sprintf("schedule: CopyFrom length mismatch %d != %d", len(s), len(src)))
	}
	copy(s, src)
}

// Equal reports whether two schedules assign every job identically.
func (s Schedule) Equal(t Schedule) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Hamming returns the number of jobs assigned to different machines in s
// and t. It is the similarity metric of the Struggle GA replacement.
func (s Schedule) Hamming(t Schedule) int {
	if len(s) != len(t) {
		panic(fmt.Sprintf("schedule: Hamming length mismatch %d != %d", len(s), len(t)))
	}
	d := 0
	for i := range s {
		if s[i] != t[i] {
			d++
		}
	}
	return d
}

// Validate checks that every assignment is a legal machine index for in.
func (s Schedule) Validate(in *etc.Instance) error {
	if len(s) != in.Jobs {
		return fmt.Errorf("schedule: length %d, want %d jobs", len(s), in.Jobs)
	}
	for j, m := range s {
		if m < 0 || m >= in.Machs {
			return fmt.Errorf("schedule: job %d assigned to invalid machine %d", j, m)
		}
	}
	return nil
}

// Perturb reassigns a random fraction frac of jobs to random machines,
// in place. The paper builds the initial population from one LJFR-SJFR
// seed by "large perturbations"; Perturb(s, r, 0.3) is that operation.
func Perturb(s Schedule, in *etc.Instance, r *rng.Source, frac float64) {
	n := int(frac * float64(len(s)))
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		s[r.Intn(len(s))] = r.Intn(in.Machs)
	}
}
