package schedule

import (
	"testing"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
)

// diffInstance builds a random instance of the given shape.
func diffInstance(jobs, machs int, seed uint64) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: jobs, Machs: machs})
}

// applyOfRevertMove is the historical probe: Move, read the fitness,
// Move back. The differential tests pin FitnessAfterMove to its exact
// bits.
func applyOfRevertMove(st *State, o Objective, j, to int) float64 {
	from := st.Assign(j)
	st.Move(j, to)
	f := o.Of(st)
	st.Move(j, from)
	return f
}

func applyOfRevertSwap(st *State, o Objective, a, b int) float64 {
	st.Swap(a, b)
	f := o.Of(st)
	st.Swap(a, b)
	return f
}

// TestFitnessAfterMoveDifferential samples thousands of random moves on
// random instances and asserts the probe equals apply→Of→revert bit for
// bit, including the same-machine no-op edge.
func TestFitnessAfterMoveDifferential(t *testing.T) {
	shapes := []struct{ jobs, machs int }{{8, 1}, {12, 2}, {16, 3}, {64, 8}, {128, 16}, {96, 5}}
	for _, sh := range shapes {
		in := diffInstance(sh.jobs, sh.machs, uint64(41*sh.jobs+int(sh.machs)))
		r := rng.New(uint64(sh.jobs))
		st := NewState(in, NewRandom(in, r))
		o := Objective{Lambda: 0.75}
		for k := 0; k < 3000; k++ {
			j := r.Intn(in.Jobs)
			to := r.Intn(in.Machs) // includes to == Assign(j) no-ops
			// Probe first: the apply/revert reference perturbs the state's
			// running flowtime accumulator in its last ulps (the very
			// artifact the probe path eliminates), so probing after it
			// would compare two different states.
			got := st.FitnessAfterMove(o, j, to)
			want := applyOfRevertMove(st, o, j, to)
			if got != want {
				t.Fatalf("%dx%d probe %d: FitnessAfterMove(%d→%d) = %.17g, apply/revert %.17g",
					sh.jobs, sh.machs, k, j, to, got, want)
			}
			// Keep the walk moving so probes cover many states.
			if k%7 == 0 {
				st.Move(j, to)
			}
		}
	}
}

// TestFitnessAfterSwapDifferential is the swap-side differential,
// including same-machine and a==b no-op edges.
func TestFitnessAfterSwapDifferential(t *testing.T) {
	shapes := []struct{ jobs, machs int }{{12, 2}, {16, 3}, {64, 8}, {128, 16}}
	for _, sh := range shapes {
		in := diffInstance(sh.jobs, sh.machs, uint64(97*sh.jobs+int(sh.machs)))
		r := rng.New(uint64(sh.machs) + 5)
		st := NewState(in, NewRandom(in, r))
		o := Objective{Lambda: 0.75}
		for k := 0; k < 3000; k++ {
			a := r.Intn(in.Jobs)
			b := r.Intn(in.Jobs)                // includes a == b and same-machine pairs
			got := st.FitnessAfterSwap(o, a, b) // probe first, see above
			want := applyOfRevertSwap(st, o, a, b)
			if got != want {
				t.Fatalf("%dx%d probe %d: FitnessAfterSwap(%d,%d) = %.17g, apply/revert %.17g",
					sh.jobs, sh.machs, k, a, b, got, want)
			}
			if k%5 == 0 {
				st.Swap(a, b)
			}
		}
	}
}

// TestProbesDoNotMutate asserts a probe leaves every observable quantity
// of the state untouched.
func TestProbesDoNotMutate(t *testing.T) {
	in := diffInstance(64, 8, 3)
	r := rng.New(11)
	st := NewState(in, NewRandom(in, r))
	o := DefaultObjective
	before := st.Clone()
	for k := 0; k < 500; k++ {
		st.FitnessAfterMove(o, r.Intn(in.Jobs), r.Intn(in.Machs))
		st.FitnessAfterSwap(o, r.Intn(in.Jobs), r.Intn(in.Jobs))
	}
	if st.Makespan() != before.Makespan() || st.Flowtime() != before.Flowtime() {
		t.Fatal("probe mutated makespan/flowtime")
	}
	for m := 0; m < in.Machs; m++ {
		if st.Completion(m) != before.Completion(m) {
			t.Fatalf("probe mutated completion of machine %d", m)
		}
	}
	if !st.Schedule().Equal(before.Schedule()) {
		t.Fatal("probe mutated the schedule")
	}
}

// TestProbesAllocationFree guards the allocation-free property of the
// probe path (also enforced in CI through the probe benchmarks).
func TestProbesAllocationFree(t *testing.T) {
	in := diffInstance(128, 16, 9)
	r := rng.New(2)
	st := NewState(in, NewRandom(in, r))
	o := DefaultObjective
	j, to := 5, (st.Assign(5)+1)%in.Machs
	a := 7
	b := 0
	for st.Assign(b) == st.Assign(a) {
		b++
	}
	if n := testing.AllocsPerRun(200, func() {
		st.FitnessAfterMove(o, j, to)
	}); n != 0 {
		t.Fatalf("FitnessAfterMove allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		st.FitnessAfterSwap(o, a, b)
	}); n != 0 {
		t.Fatalf("FitnessAfterSwap allocates %v per op", n)
	}
}

// TestMakespanMachineTieBreak pins the documented tie-breaking contract:
// among machines sharing the maximal completion time, the lowest index
// wins. LMCTS picks its critical machine through this, so changing the
// tie-break would silently change the tuned search's trajectory.
func TestMakespanMachineTieBreak(t *testing.T) {
	in := etc.New("tie", 4, 4)
	for j := 0; j < 4; j++ {
		for m := 0; m < 4; m++ {
			in.Set(j, m, 100) // any one-job machine completes at 100
		}
	}
	in.Finalize()
	st := NewState(in, Schedule{0, 1, 2, 3}) // four-way tie
	if got := st.MakespanMachine(); got != 0 {
		t.Fatalf("four-way tie: MakespanMachine = %d, want 0", got)
	}
	// Knock machine 0 below the tie: lowest *remaining* index must win.
	st.Move(0, 1) // machine 0 empty; machine 1 completes at 200
	if got := st.MakespanMachine(); got != 1 {
		t.Fatalf("after move: MakespanMachine = %d, want 1", got)
	}
	st.Move(3, 2) // machines 1 and 2 both complete at 200
	if got := st.MakespanMachine(); got != 1 {
		t.Fatalf("two-way tie: MakespanMachine = %d, want 1", got)
	}
	if st.Makespan() != 200 {
		t.Fatalf("makespan %v, want 200", st.Makespan())
	}
}

// TestMakespanExcluding checks the exclusion query against a linear scan
// after a random walk of moves.
func TestMakespanExcluding(t *testing.T) {
	in := diffInstance(48, 7, 13)
	r := rng.New(3)
	st := NewState(in, NewRandom(in, r))
	for k := 0; k < 200; k++ {
		st.Move(r.Intn(in.Jobs), r.Intn(in.Machs))
		ex := r.Intn(in.Machs)
		want := -1.0
		for m := 0; m < in.Machs; m++ {
			if m != ex && st.Completion(m) > want {
				want = st.Completion(m)
			}
		}
		if got := st.MakespanExcluding(ex); got != want {
			t.Fatalf("step %d: MakespanExcluding(%d) = %v, scan %v", k, ex, got, want)
		}
	}
}
