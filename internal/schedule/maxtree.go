package schedule

import "math"

// maxTree is an indexed tournament tree over a fixed-size array of
// float64 values (one leaf per machine). It maintains the argmax under
// point updates in O(log n) and answers three queries in O(1) / O(log n):
// the maximum, the lowest-index leaf attaining it, and the maximum over
// all leaves excluding one or two given indices — the query that lets a
// speculative move probe compute a hypothetical makespan without touching
// the other machines.
//
// Ties break toward the lower leaf index: the leaves are laid out in
// index order under a perfect binary tree, and an internal node keeps its
// left child's winner unless the right child's value is strictly larger,
// so the overall winner is always the first leaf attaining the maximum —
// the same machine the pre-tree linear scan of MakespanMachine returned.
type maxTree struct {
	n    int       // leaf count
	base int       // first leaf slot; power of two, >= n
	win  []int32   // win[v] = winning leaf index of subtree v; -1 when empty
	val  []float64 // leaf values, len n
}

// init sizes the tree for n leaves, all starting at value 0.
func (t *maxTree) init(n int) {
	base := 1
	for base < n {
		base <<= 1
	}
	t.n, t.base = n, base
	t.win = make([]int32, 2*base)
	t.val = make([]float64, n)
	for i := range t.win {
		t.win[i] = -1
	}
	for i := 0; i < n; i++ {
		t.win[base+i] = int32(i)
	}
	for v := base - 1; v >= 1; v-- {
		t.win[v] = t.merge(t.win[2*v], t.win[2*v+1])
	}
}

// clone returns an independent copy of the tree.
func (t maxTree) clone() maxTree {
	t.win = append([]int32(nil), t.win...)
	t.val = append([]float64(nil), t.val...)
	return t
}

// copyFrom overwrites t with src (same leaf count), reusing buffers.
func (t *maxTree) copyFrom(src *maxTree) {
	copy(t.win, src.win)
	copy(t.val, src.val)
}

// merge combines two subtree winners, preferring the left (lower-index)
// one on ties.
func (t *maxTree) merge(l, r int32) int32 {
	switch {
	case l < 0:
		return r
	case r < 0:
		return l
	case t.val[r] > t.val[l]:
		return r
	default:
		return l
	}
}

// update sets leaf i to v and repairs the path to the root.
func (t *maxTree) update(i int, v float64) {
	t.val[i] = v
	for node := (t.base + i) >> 1; node >= 1; node >>= 1 {
		t.win[node] = t.merge(t.win[2*node], t.win[2*node+1])
	}
}

// max returns the largest leaf value.
func (t *maxTree) max() float64 {
	if t.win[1] < 0 {
		return math.Inf(-1)
	}
	return t.val[t.win[1]]
}

// argmax returns the lowest leaf index attaining the maximum.
func (t *maxTree) argmax() int { return int(t.win[1]) }

// maxExcluding returns the largest value among leaves other than i, or
// -Inf when no other leaf exists.
func (t *maxTree) maxExcluding(i int) float64 {
	v, _ := t.maxExcludingArg(i)
	return v
}

// maxExcludingArg is maxExcluding reporting a witness: the largest value
// among leaves other than i together with a leaf attaining it, or
// (-Inf, -1) when no other leaf exists. Among tied leaves the reported
// index is unspecified — callers (the sweep layer's top-completion cache,
// sweep.go) use it only to exclude that leaf from a further query, which
// any tied witness serves equally because the excluded value survives at
// the other tied leaves.
func (t *maxTree) maxExcludingArg(i int) (float64, int) {
	best := int32(-1)
	for v := t.base + i; v > 1; v >>= 1 {
		if w := t.win[v^1]; w >= 0 && (best < 0 || t.val[w] > t.val[best]) {
			best = w
		}
	}
	if best < 0 {
		return math.Inf(-1), -1
	}
	return t.val[best], int(best)
}

// maxExcluding2 returns the largest value among leaves other than i and
// j (i != j), or -Inf when no other leaf exists. Both leaf-to-root paths
// are walked together: below their meeting point each step contributes
// the sibling subtree of each path unless that sibling is the other path
// itself, and above it the walk continues as a single path.
func (t *maxTree) maxExcluding2(i, j int) float64 {
	best := int32(-1)
	note := func(w int32) {
		if w >= 0 && (best < 0 || t.val[w] > t.val[best]) {
			best = w
		}
	}
	vi, vj := t.base+i, t.base+j
	for vi != vj {
		if vi^1 != vj { // not siblings: both sibling subtrees are clean
			note(t.win[vi^1])
			note(t.win[vj^1])
		}
		vi >>= 1
		vj >>= 1
	}
	for ; vi > 1; vi >>= 1 {
		note(t.win[vi^1])
	}
	if best < 0 {
		return math.Inf(-1)
	}
	return t.val[best]
}
