package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"gridcma/internal/etc"
	"gridcma/internal/rng"
)

// tiny returns a hand-checkable 3-job, 2-machine instance.
//
//	       m0  m1
//	job0    2   4
//	job1    6   3
//	job2    5   5
func tiny(t *testing.T) *etc.Instance {
	t.Helper()
	in := etc.New("tiny", 3, 2)
	in.Set(0, 0, 2)
	in.Set(0, 1, 4)
	in.Set(1, 0, 6)
	in.Set(1, 1, 3)
	in.Set(2, 0, 5)
	in.Set(2, 1, 5)
	in.Finalize()
	return in
}

func randInstance(seed uint64, jobs, machs int) *etc.Instance {
	return etc.Generate(etc.Class{Consistency: etc.Inconsistent, JobHet: etc.High, MachineHet: etc.High},
		0, etc.GenerateOptions{Seed: seed, Jobs: jobs, Machs: machs})
}

func TestStateHandEvaluated(t *testing.T) {
	in := tiny(t)
	// job0 -> m0, job1 -> m1, job2 -> m0.
	st := NewState(in, Schedule{0, 1, 0})
	// m0 runs job0 (2) then job2 (5): completion 7, flow 2+7=9.
	// m1 runs job1 (3): completion 3, flow 3.
	if got := st.Completion(0); got != 7 {
		t.Errorf("completion[0] = %v, want 7", got)
	}
	if got := st.Completion(1); got != 3 {
		t.Errorf("completion[1] = %v, want 3", got)
	}
	if got := st.Makespan(); got != 7 {
		t.Errorf("makespan = %v, want 7", got)
	}
	if got := st.Flowtime(); got != 12 {
		t.Errorf("flowtime = %v, want 12", got)
	}
	if got := st.MeanFlowtime(); got != 6 {
		t.Errorf("mean flowtime = %v, want 6", got)
	}
	if got := st.MakespanMachine(); got != 0 {
		t.Errorf("makespan machine = %d, want 0", got)
	}
	o := Objective{Lambda: 0.75}
	if got, want := o.Of(st), 0.75*7+0.25*6; math.Abs(got-want) > 1e-12 {
		t.Errorf("fitness = %v, want %v", got, want)
	}
}

func TestStateRespectsReadyTimes(t *testing.T) {
	in := tiny(t)
	in.Ready[0] = 10
	st := NewState(in, Schedule{0, 1, 0})
	if got := st.Completion(0); got != 17 {
		t.Errorf("completion[0] = %v, want 17", got)
	}
	// flow on m0: finishes at 12 (job0) and 17 (job2) -> 29; m1: 3.
	if got := st.Flowtime(); got != 32 {
		t.Errorf("flowtime = %v, want 32", got)
	}
}

func TestSPTOrderMinimisesFlowtime(t *testing.T) {
	in := tiny(t)
	st := NewState(in, Schedule{0, 0, 0}) // all on m0: 2,5,6 in SPT order
	// finishes: 2, 7, 13 -> flowtime 22. Any other order is worse.
	if got := st.Flowtime(); got != 22 {
		t.Errorf("flowtime = %v, want 22 (SPT)", got)
	}
	jobs := st.JobsOn(0)
	want := []int32{0, 2, 1}
	for i, j := range jobs {
		if j != want[i] {
			t.Fatalf("SPT order %v, want %v", jobs, want)
		}
	}
}

func TestMoveMatchesRebuild(t *testing.T) {
	in := randInstance(1, 60, 6)
	r := rng.New(2)
	st := NewState(in, NewRandom(in, r))
	for step := 0; step < 300; step++ {
		j, m := r.Intn(in.Jobs), r.Intn(in.Machs)
		st.Move(j, m)
		if st.Assign(j) != m {
			t.Fatalf("step %d: assign not updated", step)
		}
	}
	fresh := NewState(in, st.Schedule())
	assertStatesEqual(t, st, fresh)
}

func TestSwapMatchesRebuild(t *testing.T) {
	in := randInstance(3, 60, 6)
	r := rng.New(4)
	st := NewState(in, NewRandom(in, r))
	for step := 0; step < 300; step++ {
		a, b := r.Intn(in.Jobs), r.Intn(in.Jobs)
		st.Swap(a, b)
	}
	fresh := NewState(in, st.Schedule())
	assertStatesEqual(t, st, fresh)
}

// approx compares with a relative tolerance: the O(1) delta predictions sum
// floats in a different order than a fresh rebuild, so last-ulp differences
// are expected.
func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func assertStatesEqual(t *testing.T, a, b *State) {
	t.Helper()
	const eps = 1e-6
	for m := 0; m < a.inst.Machs; m++ {
		if math.Abs(a.Completion(m)-b.Completion(m)) > eps {
			t.Fatalf("completion[%d]: %v vs %v", m, a.Completion(m), b.Completion(m))
		}
	}
	if math.Abs(a.Flowtime()-b.Flowtime()) > eps*math.Max(1, b.Flowtime()) {
		t.Fatalf("flowtime drifted: %v vs %v", a.Flowtime(), b.Flowtime())
	}
	if math.Abs(a.Makespan()-b.Makespan()) > eps {
		t.Fatalf("makespan: %v vs %v", a.Makespan(), b.Makespan())
	}
}

func TestMoveToSameMachineIsNoop(t *testing.T) {
	in := tiny(t)
	st := NewState(in, Schedule{0, 1, 0})
	before := st.Flowtime()
	st.Move(0, 0)
	if st.Flowtime() != before {
		t.Fatal("no-op move changed flowtime")
	}
	st.Swap(0, 2) // both on m0
	if st.Flowtime() != before {
		t.Fatal("same-machine swap changed flowtime")
	}
}

func TestCompletionAfterMove(t *testing.T) {
	in := randInstance(5, 40, 5)
	r := rng.New(6)
	st := NewState(in, NewRandom(in, r))
	for k := 0; k < 200; k++ {
		j, to := r.Intn(in.Jobs), r.Intn(in.Machs)
		from := st.Assign(j)
		fromC, toC := st.CompletionAfterMove(j, to)
		cp := st.Clone()
		cp.Move(j, to)
		if !approx(cp.Completion(from), fromC) || !approx(cp.Completion(to), toC) {
			t.Fatalf("predicted (%v,%v), got (%v,%v)", fromC, toC, cp.Completion(from), cp.Completion(to))
		}
	}
}

func TestCompletionAfterSwap(t *testing.T) {
	in := randInstance(7, 40, 5)
	r := rng.New(8)
	st := NewState(in, NewRandom(in, r))
	for k := 0; k < 200; k++ {
		a, b := r.Intn(in.Jobs), r.Intn(in.Jobs)
		ma, mb := st.Assign(a), st.Assign(b)
		if ma == mb {
			continue
		}
		aC, bC := st.CompletionAfterSwap(a, b)
		cp := st.Clone()
		cp.Swap(a, b)
		if !approx(cp.Completion(ma), aC) || !approx(cp.Completion(mb), bC) {
			t.Fatalf("swap prediction wrong")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	in := tiny(t)
	st := NewState(in, Schedule{0, 1, 0})
	cp := st.Clone()
	cp.Move(0, 1)
	if st.Assign(0) != 0 {
		t.Fatal("Clone shares assignment storage")
	}
	if st.Flowtime() == cp.Flowtime() {
		t.Fatal("move on clone should change flowtime")
	}
}

func TestCopyFrom(t *testing.T) {
	in := randInstance(9, 30, 4)
	r := rng.New(10)
	a := NewState(in, NewRandom(in, r))
	b := NewState(in, NewRandom(in, r))
	b.CopyFrom(a)
	assertStatesEqual(t, a, b)
	b.Move(0, (a.Assign(0)+1)%in.Machs)
	if a.Assign(0) == b.Assign(0) {
		t.Fatal("CopyFrom aliased storage")
	}
}

func TestSetScheduleReusesBuffers(t *testing.T) {
	in := randInstance(11, 30, 4)
	r := rng.New(12)
	st := NewState(in, NewRandom(in, r))
	s2 := NewRandom(in, r)
	st.SetSchedule(s2)
	fresh := NewState(in, s2)
	assertStatesEqual(t, st, fresh)
}

func TestHamming(t *testing.T) {
	a := Schedule{0, 1, 2, 3}
	b := Schedule{0, 1, 2, 3}
	if d := a.Hamming(b); d != 0 {
		t.Errorf("identical distance %d", d)
	}
	b[0], b[3] = 9, 9
	if d := a.Hamming(b); d != 2 {
		t.Errorf("distance %d, want 2", d)
	}
	if !a.Equal(Schedule{0, 1, 2, 3}) || a.Equal(b) {
		t.Error("Equal wrong")
	}
	if a.Equal(Schedule{0, 1}) {
		t.Error("Equal must compare lengths")
	}
}

func TestValidate(t *testing.T) {
	in := tiny(t)
	if err := (Schedule{0, 1}).Validate(in); err == nil {
		t.Error("short schedule accepted")
	}
	if err := (Schedule{0, 1, 5}).Validate(in); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if err := (Schedule{0, 1, 1}).Validate(in); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestPerturbChangesSomething(t *testing.T) {
	in := randInstance(13, 100, 8)
	r := rng.New(14)
	s := NewRandom(in, r)
	orig := s.Clone()
	Perturb(s, in, r, 0.5)
	if s.Equal(orig) {
		t.Fatal("Perturb(0.5) left schedule unchanged (astronomically unlikely)")
	}
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveEvaluateMatchesState(t *testing.T) {
	in := randInstance(15, 50, 6)
	r := rng.New(16)
	o := DefaultObjective
	for k := 0; k < 20; k++ {
		s := NewRandom(in, r)
		if got, want := o.Evaluate(in, s), o.Of(NewState(in, s)); got != want {
			t.Fatalf("Evaluate %v != Of %v", got, want)
		}
	}
}

// Property: after any random sequence of moves and swaps, the incremental
// state matches a from-scratch evaluation.
func TestIncrementalMatchesFullProperty(t *testing.T) {
	f := func(seed uint64) bool {
		in := randInstance(seed, 24, 4)
		r := rng.New(seed ^ 0xabcdef)
		st := NewState(in, NewRandom(in, r))
		for k := 0; k < 50; k++ {
			if r.Bool(0.5) {
				st.Move(r.Intn(in.Jobs), r.Intn(in.Machs))
			} else {
				st.Swap(r.Intn(in.Jobs), r.Intn(in.Jobs))
			}
		}
		fresh := NewState(in, st.Schedule())
		return math.Abs(st.Flowtime()-fresh.Flowtime()) < 1e-6*math.Max(1, fresh.Flowtime()) &&
			math.Abs(st.Makespan()-fresh.Makespan()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: makespan is always >= flowtime / jobs (mean finishing time of a
// single job cannot exceed the latest finishing time) and every completion
// is <= makespan.
func TestObjectiveInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		in := randInstance(seed, 32, 5)
		r := rng.New(seed + 1)
		st := NewState(in, NewRandom(in, r))
		ms := st.Makespan()
		for m := 0; m < in.Machs; m++ {
			if st.Completion(m) > ms+1e-9 {
				return false
			}
		}
		return st.Flowtime() <= float64(in.Jobs)*ms+1e-6 && st.Flowtime() >= ms-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMove(b *testing.B) {
	in := randInstance(1, 512, 16)
	r := rng.New(2)
	st := NewState(in, NewRandom(in, r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Move(r.Intn(512), r.Intn(16))
	}
}

func BenchmarkSwap(b *testing.B) {
	in := randInstance(1, 512, 16)
	r := rng.New(2)
	st := NewState(in, NewRandom(in, r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Swap(r.Intn(512), r.Intn(512))
	}
}

func BenchmarkEvalIncrementalVsFull(b *testing.B) {
	in := randInstance(1, 512, 16)
	r := rng.New(2)
	b.Run("incremental-move", func(b *testing.B) {
		st := NewState(in, NewRandom(in, r))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Move(r.Intn(512), r.Intn(16))
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		s := NewRandom(in, r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s[r.Intn(512)] = r.Intn(16)
			_ = NewState(in, s)
		}
	})
}
