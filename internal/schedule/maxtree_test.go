package schedule

import (
	"math"
	"testing"

	"gridcma/internal/rng"
)

// brute-force references for the tree queries.
func scanMax(vals []float64, skip ...int) (float64, int) {
	best, arg := math.Inf(-1), -1
	for i, v := range vals {
		skipped := false
		for _, s := range skip {
			if i == s {
				skipped = true
			}
		}
		if skipped {
			continue
		}
		if v > best { // strict: lowest index wins ties
			best, arg = v, i
		}
	}
	return best, arg
}

// TestMaxTreeRandomised drives a tree of every small size through random
// updates, checking max, argmax and both exclusion queries against linear
// scans. Values are drawn from a tiny set so ties are frequent.
func TestMaxTreeRandomised(t *testing.T) {
	r := rng.New(17)
	for n := 1; n <= 20; n++ {
		var tr maxTree
		tr.init(n)
		vals := make([]float64, n)
		for step := 0; step < 400; step++ {
			i := r.Intn(n)
			v := float64(r.Intn(5)) // few distinct values => many ties
			vals[i] = v
			tr.update(i, v)

			wantMax, wantArg := scanMax(vals)
			if tr.max() != wantMax || tr.argmax() != wantArg {
				t.Fatalf("n=%d step=%d: max/argmax (%v,%d), want (%v,%d)",
					n, step, tr.max(), tr.argmax(), wantMax, wantArg)
			}
			ex := r.Intn(n)
			if got, _ := scanMax(vals, ex); tr.maxExcluding(ex) != got {
				t.Fatalf("n=%d step=%d: maxExcluding(%d) = %v, want %v",
					n, step, ex, tr.maxExcluding(ex), got)
			}
			// The witness variant must agree on the value, and its witness
			// must attain that value (any tied leaf is a valid witness).
			if gotV, gotArg := tr.maxExcludingArg(ex); gotV != tr.maxExcluding(ex) {
				t.Fatalf("n=%d step=%d: maxExcludingArg(%d) value %v, maxExcluding %v",
					n, step, ex, gotV, tr.maxExcluding(ex))
			} else if gotArg >= 0 && (gotArg == ex || vals[gotArg] != gotV) {
				t.Fatalf("n=%d step=%d: maxExcludingArg(%d) witness %d invalid (val %v, want %v)",
					n, step, ex, gotArg, vals[gotArg], gotV)
			} else if gotArg < 0 && n > 1 {
				t.Fatalf("n=%d step=%d: maxExcludingArg(%d) reported no witness", n, step, ex)
			}
			if n > 1 {
				ex2 := (ex + 1 + r.Intn(n-1)) % n
				if got, _ := scanMax(vals, ex, ex2); tr.maxExcluding2(ex, ex2) != got {
					t.Fatalf("n=%d step=%d: maxExcluding2(%d,%d) = %v, want %v",
						n, step, ex, ex2, tr.maxExcluding2(ex, ex2), got)
				}
			}
		}
	}
}

// TestMaxTreeSingleLeaf pins the degenerate single-machine behavior: the
// exclusion queries have no remaining leaves and report -Inf.
func TestMaxTreeSingleLeaf(t *testing.T) {
	var tr maxTree
	tr.init(1)
	tr.update(0, 42)
	if tr.max() != 42 || tr.argmax() != 0 {
		t.Fatalf("max/argmax (%v,%d)", tr.max(), tr.argmax())
	}
	if !math.IsInf(tr.maxExcluding(0), -1) {
		t.Fatalf("maxExcluding(0) = %v, want -Inf", tr.maxExcluding(0))
	}
}
